// Quickstart: publish a Web document as a secure GlobeDoc object,
// replicate it, and fetch it through the full security pipeline.
//
// Everything runs in this process on the simulated wide-area testbed of
// the paper (Amsterdam / Paris / Ithaca). Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"globedoc/internal/deploy"
	"globedoc/internal/document"
	"globedoc/internal/netsim"
	"globedoc/internal/server"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Stand up the world: the paper's four-host testbed, a secure
	// naming service, a location service, and a root CA. TimeScale 0.1
	// runs the wide-area latencies at 10% so the demo is snappy.
	world, err := deploy.NewWorld(deploy.Options{TimeScale: 0.1})
	if err != nil {
		return err
	}
	defer world.Close()
	if _, err := world.StartServer(netsim.AmsterdamPrimary, "srv-ams", nil, nil, server.Limits{}); err != nil {
		return err
	}
	if _, err := world.StartServer(netsim.Ithaca, "srv-ithaca", nil, nil, server.Limits{}); err != nil {
		return err
	}

	// 2. The owner assembles a Web document: a set of page elements.
	doc := document.New()
	doc.Put(document.Element{Name: "index.html",
		Data: []byte(`<html><body><h1>GlobeDoc quickstart</h1><img src="logo.png"></body></html>`)})
	doc.Put(document.Element{Name: "logo.png", Data: []byte{0x89, 'P', 'N', 'G', 1, 2, 3}})

	// 3. Publish: generates the object key pair, derives the
	// self-certifying OID (SHA-1 of the public key), signs the integrity
	// certificate, installs the permanent replica in Amsterdam, gets a CA
	// identity certificate, and registers name + contact address.
	pub, err := world.Publish(doc, deploy.PublishOptions{
		Name:    "home.vu.nl",
		Subject: "Vrije Universiteit Amsterdam",
		TTL:     time.Hour,
	})
	if err != nil {
		return err
	}
	fmt.Printf("published %q\n  OID: %s\n  elements: %v\n\n", pub.Name, pub.OID, doc.Names())

	// 4. Replicate to Ithaca — any untrusted host can hold a replica,
	// because clients verify everything.
	if err := world.ReplicateTo(pub, netsim.Ithaca); err != nil {
		return err
	}
	fmt.Println("replicated to ithaca (an untrusted object server)")

	// 5. A user in Ithaca fetches through the secure pipeline.
	client := world.NewSecureClient(netsim.Ithaca)
	defer client.Close()
	res, err := client.FetchNamed(context.Background(), "home.vu.nl", "index.html")
	if err != nil {
		return err
	}
	fmt.Printf("\nfetched index.html (%d bytes) from %s\n", res.Element.Size(), res.ReplicaAddr)
	fmt.Printf("certified as: %q\n", res.CertifiedAs)
	fmt.Printf("timing: total=%s security=%s (%.1f%% overhead)\n",
		res.Timing.Total().Round(time.Microsecond),
		res.Timing.Security().Round(time.Microsecond),
		res.Timing.OverheadPercent())
	fmt.Printf("  name resolve %s | bind %s | key fetch %s | key verify %s\n",
		res.Timing.NameResolve.Round(time.Microsecond),
		res.Timing.Bind.Round(time.Microsecond),
		res.Timing.KeyFetch.Round(time.Microsecond),
		res.Timing.KeyVerify.Round(time.Microsecond))
	fmt.Printf("  cert fetch %s | cert verify %s | element fetch %s | element verify %s\n",
		res.Timing.CertFetch.Round(time.Microsecond),
		res.Timing.CertVerify.Round(time.Microsecond),
		res.Timing.ElementFetch.Round(time.Microsecond),
		res.Timing.ElementVerify.Round(time.Microsecond))

	// 6. The owner updates the document, re-signs the certificate, and
	// pushes the new state to every replica.
	doc.Put(document.Element{Name: "index.html",
		Data: []byte(`<html><body><h1>GlobeDoc quickstart v2</h1></body></html>`)})
	if err := world.Reissue(pub, time.Hour, time.Now()); err != nil {
		return err
	}
	if err := world.PushUpdate(pub, netsim.Ithaca); err != nil {
		return err
	}
	res2, err := client.FetchNamed(context.Background(), "home.vu.nl", "index.html")
	if err != nil {
		return err
	}
	fmt.Printf("\nafter owner update: fetched %d bytes from %s (version bumped, certificate re-signed)\n",
		res2.Element.Size(), res2.ReplicaAddr)
	return nil
}
