// Auditing: the paper's proposal for dynamic Web content on untrusted
// servers (§6) — the object owner cannot pre-sign every possible query
// result, so untrusted servers sign the responses they generate and the
// owner probabilistically double-checks them. A lying cache is caught
// red-handed with a transferable proof.
//
// Run with:
//
//	go run ./examples/auditing
package main

import (
	"fmt"
	"log"
	"strings"

	"globedoc/internal/audit"
	"globedoc/internal/globeid"
	"globedoc/internal/keys"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// stockQuote is the dynamic content: query -> generated response.
func stockQuote(query string) ([]byte, error) {
	return []byte(fmt.Sprintf("quote(%s) = 42.17", query)), nil
}

// pumpAndDump lies about one specific ticker.
func pumpAndDump(query string) ([]byte, error) {
	if strings.Contains(query, "ACME") {
		return []byte(fmt.Sprintf("quote(%s) = 99999.99", query)), nil
	}
	return stockQuote(query)
}

func run() error {
	ownerKey, err := keys.Generate(keys.Ed25519)
	if err != nil {
		return err
	}
	oid := globeid.FromPublicKey(ownerKey.Public())

	honestKey, _ := keys.Generate(keys.Ed25519)
	lyingKey, _ := keys.Generate(keys.Ed25519)
	honest := audit.NewDynamicServer(oid, "cache-honest", honestKey, stockQuote)
	liar := audit.NewDynamicServer(oid, "cache-evil", lyingKey, pumpAndDump)

	serverKeys := keys.NewKeystore()
	serverKeys.Add("cache-honest", honestKey.Public())
	serverKeys.Add("cache-evil", lyingKey.Public())

	// The owner audits 25% of observed responses.
	auditor := audit.NewAuditor(oid, ownerKey, stockQuote, serverKeys, 0.25, 2005)

	queries := []string{"IBM", "ACME", "SUNW", "ACME", "MSFT", "ACME", "ACME", "INTC", "ACME", "ACME"}
	fmt.Println("clients query both caches; the owner audits 25% of responses")
	fmt.Println()
	var firstProof *audit.Proof
	for round := 0; round < 5; round++ {
		for _, q := range queries {
			for _, srv := range []*audit.DynamicServer{honest, liar} {
				resp, receipt, err := srv.Serve(q)
				if err != nil {
					return err
				}
				proof, err := auditor.Observe(resp, receipt)
				if err != nil {
					return err
				}
				if proof != nil && firstProof == nil {
					firstProof = proof
					fmt.Printf("CAUGHT: server %q signed a bogus answer for query %q\n",
						proof.Receipt.ServerName, proof.Receipt.Query)
					fmt.Printf("  served : %s\n", proof.Response)
					fmt.Printf("  correct: %s\n", proof.Correct)
				}
			}
		}
	}
	st := auditor.Stats()
	fmt.Printf("\naudit stats: observed=%d audited=%d caught=%d bad-signatures=%d\n",
		st.Observed, st.Audited, st.Caught, st.BadSig)
	if firstProof == nil {
		return fmt.Errorf("the lying cache was never sampled — increase rounds")
	}

	// Anyone can verify the proof knowing only the public keys.
	if err := firstProof.Verify(lyingKey.Public(), ownerKey.Public()); err != nil {
		return fmt.Errorf("third-party verification failed: %w", err)
	}
	fmt.Println("misbehaviour proof verified by a third party: the cache cannot repudiate it")
	return nil
}
