// Negotiation: the hosting-negotiation mechanism the paper proposes as
// future work (§6). An object owner expresses QoS requirements in the
// policy language; candidate object servers advertise resource offers;
// the owner places a replica on the best acceptable server — and the
// server's enforced limits actually reject over-quota placements.
//
// Run with:
//
//	go run ./examples/negotiation
package main

import (
	"fmt"
	"log"
	"time"

	"globedoc/internal/deploy"
	"globedoc/internal/netsim"
	"globedoc/internal/policy"
	"globedoc/internal/server"
	"globedoc/internal/workload"
)

const ownerPolicy = `
# Replication requirements for a 600KB news object.
require disk >= 1MB
require bandwidth >= 2Mbps
require region == europe
prefer max_staleness <= 60s
prefer replicas >= 2
`

var serverOffers = map[string]string{
	"paris-big": `
offer disk = 64MB
offer bandwidth = 8Mbps
offer region = europe
offer max_staleness = 30s
offer replicas = 8
`,
	"paris-small": `
offer disk = 512KB          # not enough for this object
offer bandwidth = 8Mbps
offer region = europe
`,
	"ithaca-fast": `
offer disk = 64MB
offer bandwidth = 10Mbps
offer region = northamerica # wrong region
`,
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	owner, err := policy.Parse(ownerPolicy)
	if err != nil {
		return err
	}
	offers := make(map[string]*policy.Policy, len(serverOffers))
	for name, src := range serverOffers {
		p, err := policy.Parse(src)
		if err != nil {
			return fmt.Errorf("offer %q: %w", name, err)
		}
		offers[name] = p
	}

	fmt.Println("owner requirements:")
	for _, c := range owner.Clauses {
		fmt.Printf("  %s\n", c)
	}
	fmt.Println("\nnegotiating against each server offer:")
	for name, offer := range offers {
		agr := policy.Negotiate(owner, offer)
		if agr.Accepted {
			fmt.Printf("  %-12s ACCEPTED (preferences %d/%d, score %.2f)\n",
				name, agr.PreferencesMet, agr.PreferencesTotal, agr.Score())
		} else {
			fmt.Printf("  %-12s rejected:\n", name)
			for _, v := range agr.Violations {
				fmt.Printf("      %s\n", v)
			}
		}
	}

	ranked := policy.RankServers(owner, offers)
	if len(ranked) == 0 {
		return fmt.Errorf("no acceptable server")
	}
	fmt.Printf("\nbest placement: %s\n", ranked[0])

	// Now place the replica for real: the chosen server's limits match
	// its advertised offer, and the server ENFORCES them.
	world, err := deploy.NewWorld(deploy.Options{TimeScale: 0})
	if err != nil {
		return err
	}
	defer world.Close()
	if _, err := world.StartServer(netsim.AmsterdamPrimary, "home", nil, nil, server.Limits{}); err != nil {
		return err
	}
	// paris-big advertises 64MB — configure exactly that.
	if _, err := world.StartServer(netsim.Paris, "paris-big", nil, nil, server.Limits{MaxBytes: 64 << 20}); err != nil {
		return err
	}

	doc := workload.SingleElementDoc(600*workload.KB, 3)
	pub, err := world.Publish(doc, deploy.PublishOptions{Name: "news.nl", TTL: time.Minute})
	if err != nil {
		return err
	}
	if err := world.ReplicateTo(pub, netsim.Paris); err != nil {
		return err
	}
	fmt.Printf("replica of %s placed on paris-big (600KB of 64MB quota used)\n", pub.OID.Short())

	// A server whose real limits are below the object size refuses.
	tiny, err := world.StartServer(netsim.AmsterdamSecondary, "tiny", nil, nil, server.Limits{MaxBytes: 512 * workload.KB})
	if err != nil {
		return err
	}
	bundle, err := world.Servers[netsim.AmsterdamPrimary].ExportBundle(pub.OID)
	if err != nil {
		return err
	}
	if err := tiny.Install(bundle, "owner:news.nl"); err != nil {
		fmt.Printf("under-provisioned server correctly refused: %v\n", err)
		return nil
	}
	return fmt.Errorf("tiny server accepted an over-quota replica")
}
