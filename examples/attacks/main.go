// Attacks: drives the full GlobeDoc security pipeline against every
// adversary in the paper's threat model (§3.2.1) and shows that each one
// is detected — untrusted replicas and a lying location service can cause
// at most denial of service, never undetected corruption.
//
// Run with:
//
//	go run ./examples/attacks
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"globedoc/internal/attack"
	"globedoc/internal/cert"
	"globedoc/internal/core"
	"globedoc/internal/document"
	"globedoc/internal/globeid"
	"globedoc/internal/keys"
	"globedoc/internal/location"
	"globedoc/internal/netsim"
	"globedoc/internal/object"
	"globedoc/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	owner, err := keys.Generate(keys.RSA2048)
	if err != nil {
		return err
	}
	oid := globeid.FromPublicKey(owner.Public())
	now := time.Now()

	// The genuine object state every adversary starts from.
	doc := document.New()
	doc.Put(document.Element{Name: "index.html", Data: []byte("<html>the genuine page</html>")})
	doc.Put(document.Element{Name: "prices.html", Data: []byte("<html>today's prices</html>")})
	icert, err := document.IssueCertificate(doc, oid, owner, now, document.UniformTTL(time.Hour))
	if err != nil {
		return err
	}
	state := attack.ReplicaState{OID: oid, Key: owner.Public(), Doc: doc, Cert: icert}

	fmt.Printf("object %s, 2 elements, certificate valid 1h\n", oid.Short())
	fmt.Println("running the secure client against six replica behaviours:")
	fmt.Println()

	modes := append([]attack.Mode{attack.Honest}, attack.AllModes...)
	for _, mode := range modes {
		if err := runMode(mode, owner, state, now); err != nil {
			return err
		}
	}

	fmt.Println("\nevery attack was detected; the honest replica was accepted.")
	fmt.Println("a malicious location service is at most denial of service:")
	return maliciousLocationDemo(oid)
}

func runMode(mode attack.Mode, owner *keys.KeyPair, state attack.ReplicaState, now time.Time) error {
	n := netsim.PaperTestbed(0)
	defer n.Close()
	l, err := n.Listen(netsim.Paris, "replica")
	if err != nil {
		return err
	}
	srv := attack.NewMaliciousServer(mode, state)
	defer srv.Close()

	switch mode {
	case attack.StaleReplay:
		// An old version whose certificate expired half an hour ago.
		oldDoc := document.New()
		oldDoc.Put(document.Element{Name: "index.html", Data: []byte("<html>LAST YEAR'S page</html>")})
		oldDoc.Put(document.Element{Name: "prices.html", Data: []byte("<html>LAST YEAR'S prices</html>")})
		oldCert, err := document.IssueCertificate(oldDoc, state.OID, owner, now.Add(-2*time.Hour), document.UniformTTL(time.Hour))
		if err != nil {
			return err
		}
		srv.SetStale(attack.ReplicaState{OID: state.OID, Key: owner.Public(), Doc: oldDoc, Cert: oldCert})
	case attack.WrongObject:
		decoyOwner, err := keys.Generate(keys.Ed25519)
		if err != nil {
			return err
		}
		decoyDoc := document.New()
		decoyDoc.Put(document.Element{Name: "index.html", Data: []byte("<html>phishing page</html>")})
		decoyCert, err := document.IssueCertificate(decoyDoc, globeid.FromPublicKey(decoyOwner.Public()), decoyOwner, now, document.UniformTTL(time.Hour))
		if err != nil {
			return err
		}
		srv.SetDecoy(attack.ReplicaState{
			OID: globeid.FromPublicKey(decoyOwner.Public()), Key: decoyOwner.Public(),
			Doc: decoyDoc, Cert: decoyCert,
		})
	case attack.ForgeCertificate:
		attacker, err := keys.Generate(keys.Ed25519)
		if err != nil {
			return err
		}
		tampered := []byte("<html>the genuine page</html>")
		tampered[0] ^= 0xff
		forged := &cert.IntegrityCertificate{ObjectID: state.OID, Version: 999, Issued: now}
		forged.Entries = []cert.ElementEntry{{
			Name: "index.html", Hash: globeid.HashElement(tampered),
			NotBefore: now, Expires: now.Add(time.Hour),
		}}
		if err := forged.Sign(attacker); err != nil {
			return err
		}
		srv.SetForgery(attacker, forged)
	}
	srv.Start(l)

	client, err := core.NewClient(&object.Binder{
		Locator: attack.MaliciousLocation{
			Rogue: location.ContactAddress{Address: "paris:replica", Protocol: object.Protocol},
		},
		Dial: func(addr string) transport.DialFunc {
			return n.Dialer(netsim.AmsterdamSecondary, addr)
		},
		Site: netsim.AmsterdamSecondary,
	}, core.Options{})
	if err != nil {
		return err
	}
	defer client.Close()

	res, err := client.Fetch(context.Background(), state.OID, "index.html")
	switch {
	case err == nil:
		fmt.Printf("  %-20s ACCEPTED: %q\n", mode, res.Element.Data)
	case errors.Is(err, core.ErrSecurityCheckFailed):
		var se *core.SecurityError
		phase := "?"
		if errors.As(err, &se) {
			phase = se.Phase
		}
		fmt.Printf("  %-20s DETECTED at %s\n", mode, phase)
	default:
		fmt.Printf("  %-20s failed: %v\n", mode, err)
	}
	return nil
}

func maliciousLocationDemo(oid globeid.OID) error {
	n := netsim.PaperTestbed(0)
	defer n.Close()
	client, err := core.NewClient(&object.Binder{
		Locator: attack.MaliciousLocation{
			Rogue: location.ContactAddress{Address: "paris:nothing-there", Protocol: object.Protocol},
		},
		Dial: func(addr string) transport.DialFunc {
			return n.Dialer(netsim.AmsterdamSecondary, addr)
		},
		Site: netsim.AmsterdamSecondary,
	}, core.Options{})
	if err != nil {
		return err
	}
	defer client.Close()
	_, err = client.Fetch(context.Background(), oid, "index.html")
	fmt.Printf("  bogus contact address -> %v\n", err)
	if err == nil {
		return fmt.Errorf("fetch through bogus address unexpectedly succeeded")
	}
	return nil
}
