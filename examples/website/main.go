// Website: publish a complete multi-document Web site. The site compiler
// partitions a directory tree into GlobeDoc objects (one per section, as
// the paper's document model prescribes), rewrites cross-document links
// into hybrid URLs, signs and publishes every object, and then a browser
// walks the whole site through the secure proxy — following links across
// objects, each hop fully verified.
//
// Run with:
//
//	go run ./examples/website
package main

import (
	"context"
	"fmt"
	"log"
	"testing/fstest"
	"time"

	"globedoc/internal/core"
	"globedoc/internal/deploy"
	"globedoc/internal/document"
	"globedoc/internal/netsim"
	"globedoc/internal/server"
	"globedoc/internal/sitepub"
)

// The site as its author writes it: one tree, ordinary links.
var siteFS = fstest.MapFS{
	"www/index.html": {Data: []byte(`<html><h1>Vrije Universiteit</h1>
<a href="contact.html">contact</a>
<a href="/news/flood.html">news: flood in the lab</a>
<a href="/research/globe.html">research: the Globe project</a></html>`)},
	"www/contact.html":        {Data: []byte(`<html>De Boelelaan 1081a, Amsterdam</html>`)},
	"www/news/flood.html":     {Data: []byte(`<html>A burst pipe... <img src="img/pipe.png"> <a href="../index.html">home</a></html>`)},
	"www/news/img/pipe.png":   {Data: []byte{0x89, 'P', 'N', 'G', 9, 9}},
	"www/research/globe.html": {Data: []byte(`<html>Globe: wide-area distributed objects. <a href="../news/flood.html">see also</a></html>`)},
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. Compile: one GlobeDoc object per section.
	compiled, err := sitepub.Compile(siteFS, "www", "vu.nl")
	if err != nil {
		return err
	}
	fmt.Printf("compiled site %q into %d objects: %v\n",
		compiled.Domain, len(compiled.Objects), compiled.ObjectNames())
	for _, d := range compiled.Diagnostics {
		fmt.Println("  warning:", d)
	}

	// 2. Publish every object into a running world.
	world, err := deploy.NewWorld(deploy.Options{TimeScale: 0.05})
	if err != nil {
		return err
	}
	defer world.Close()
	if _, err := world.StartServer(netsim.AmsterdamPrimary, "srv", nil, nil, server.Limits{}); err != nil {
		return err
	}
	err = compiled.PublishAll(func(objectName string, doc *document.Document) error {
		pub, err := world.Publish(doc, deploy.PublishOptions{
			Name: objectName, Subject: "Vrije Universiteit", TTL: time.Hour,
		})
		if err != nil {
			return err
		}
		fmt.Printf("  published %-18s -> %s (%d elements, own key pair)\n",
			objectName, pub.OID.Short(), doc.Len())
		return nil
	})
	if err != nil {
		return err
	}

	// 3. A Paris user crawls the site through the security pipeline,
	// following every link (intra- and cross-object).
	client, err := world.NewSecureClientOpts(netsim.Paris, core.Options{CacheBindings: true})
	if err != nil {
		return err
	}
	defer client.Close()

	type page struct{ object, element string }
	queue := []page{{"vu.nl", "index.html"}}
	visited := map[page]bool{}
	fetched := 0
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if visited[p] {
			continue
		}
		visited[p] = true
		res, err := client.FetchNamed(context.Background(), p.object, p.element)
		if err != nil {
			return fmt.Errorf("crawling %s/%s: %w", p.object, p.element, err)
		}
		fetched++
		fmt.Printf("crawled %s/%s (%d bytes, certified as %q)\n",
			p.object, p.element, res.Element.Size(), res.CertifiedAs)
		for _, link := range document.ExtractLinks(res.Element.Data) {
			switch {
			case link.Hybrid != nil:
				queue = append(queue, page{link.Hybrid.ObjectName, link.Hybrid.Element})
			case link.Relative:
				queue = append(queue, page{p.object, link.Target})
			}
		}
	}
	fmt.Printf("\ncrawled the whole site: %d pages across %d objects, every byte verified\n",
		fetched, len(compiled.Objects))
	return nil
}
