// Flashcrowd: the scalability scenario of the paper's introduction. A
// document hosted in Amsterdam suddenly becomes popular in Ithaca; the
// dynamic replication machinery detects the flash crowd, pushes a replica
// to an Ithaca object server (authenticated server-to-server, per §4),
// and client latency collapses — while every fetch stays fully verified.
//
// The example also runs the per-document strategy selector of ref [13]
// on the observed trace, showing which replication strategy the document
// would pick for itself.
//
// Run with:
//
//	go run ./examples/flashcrowd
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"globedoc/internal/bench"
	"globedoc/internal/deploy"
	"globedoc/internal/globeid"
	"globedoc/internal/keys"
	"globedoc/internal/netsim"
	"globedoc/internal/replication"
	"globedoc/internal/server"
	"globedoc/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	world, err := deploy.NewWorld(deploy.Options{TimeScale: 0.25})
	if err != nil {
		return err
	}
	defer world.Close()

	// The Amsterdam primary can push replicas: it has an identity key
	// that the Ithaca server's keystore authorizes.
	primaryKey, err := keys.Generate(keys.Ed25519)
	if err != nil {
		return err
	}
	primary, err := world.StartServer(netsim.AmsterdamPrimary, "srv-ams", nil, primaryKey, server.Limits{})
	if err != nil {
		return err
	}
	peerKS := keys.NewKeystore()
	peerKS.Add("srv-ams", primaryKey.Public())
	if _, err := world.StartServer(netsim.Ithaca, "srv-ithaca", peerKS, nil, server.Limits{}); err != nil {
		return err
	}

	doc := workload.SingleElementDoc(100*workload.KB, 7)
	pub, err := world.Publish(doc, deploy.PublishOptions{Name: "story.news.nl", TTL: time.Hour})
	if err != nil {
		return err
	}
	fmt.Printf("published %q (100KB) with its permanent replica in Amsterdam\n\n", pub.Name)

	// Dynamic replication: 3 requests from one site within a minute
	// trigger a replica push there.
	repl := server.NewReplicator(primary,
		[]server.Peer{{Site: netsim.Ithaca, Addr: world.Addrs[netsim.Ithaca]}},
		world.DialFrom(netsim.AmsterdamPrimary), world.LocationTree,
		3, time.Minute)
	repl.OnReplicate = func(oid globeid.OID, site string) {
		fmt.Printf("  >> flash crowd detected: pushed replica of %s to %s\n", oid.Short(), site)
	}

	client := world.NewSecureClient(netsim.Ithaca)
	defer client.Close()

	fmt.Println("flash crowd: 8 Ithaca clients request the story...")
	var before, after []time.Duration
	for i := 1; i <= 8; i++ {
		res, err := client.Fetch(context.Background(), pub.OID, "image.bin")
		if err != nil {
			return err
		}
		local := res.ReplicaAddr == "ithaca:"+deploy.ObjectService
		marker := "transatlantic fetch from " + res.ReplicaAddr
		if local {
			marker = "LOCAL fetch from " + res.ReplicaAddr
			after = append(after, res.Timing.Total())
		} else {
			before = append(before, res.Timing.Total())
		}
		fmt.Printf("  request %d: %8s  (%s)\n", i, res.Timing.Total().Round(time.Millisecond), marker)
	}
	if len(after) == 0 {
		return fmt.Errorf("dynamic replication never kicked in")
	}
	b := bench.Collect(before)
	a := bench.Collect(after)
	fmt.Printf("\nmean latency before replica: %s   after: %s   (%.1fx faster)\n",
		b.Mean.Round(time.Millisecond), a.Mean.Round(time.Millisecond),
		float64(b.Mean)/float64(a.Mean))
	fmt.Printf("replica sites now: %v\n", repl.ReplicaSites(pub.OID))

	// What would the per-document strategy selector say about this
	// workload? (ref [13]: per-document beats one-size-fits-all.)
	fc := workload.FlashCrowd{
		Start:          time.Now(),
		Duration:       2 * time.Minute,
		BackgroundSite: netsim.AmsterdamSecondary,
		BackgroundRPS:  0.2,
		SpikeSite:      netsim.Ithaca,
		SpikeAfter:     30 * time.Second,
		SpikeRPS:       5,
	}
	trace := fc.Trace(1)
	env := replication.Env{
		PrimarySite: netsim.AmsterdamPrimary,
		Sites:       []string{netsim.AmsterdamPrimary, netsim.AmsterdamSecondary, netsim.Ithaca},
		DocSize:     doc.TotalSize(),
		RTT: func(x, y string) time.Duration {
			return world.Net.Link(x, y).RTT()
		},
		Bandwidth: func(x, y string) float64 {
			return world.Net.Link(x, y).Bandwidth
		},
	}
	fmt.Printf("\nstrategy selection over the observed trace (%d events):\n", len(trace))
	for i, ev := range replication.Select(trace, env, replication.DefaultCandidates(), replication.DefaultWeights) {
		marker := "  "
		if i == 0 {
			marker = "->"
		}
		fmt.Printf(" %s %-16s cost=%8.2f  latency=%8s  bandwidth=%6.1fMB  stale=%d\n",
			marker, ev.Strategy.Name(), ev.Cost,
			ev.Metrics.TotalLatency.Round(time.Millisecond),
			float64(ev.Metrics.Bandwidth)/1e6, ev.Metrics.Stale)
	}
	return nil
}
