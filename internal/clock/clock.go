// Package clock provides an injectable time source shared by the network
// simulator's fault schedules, the transport retry backoff, and the
// client-side caches' TTL checks.
//
// Production code uses Real, which delegates to package time. Tests use
// Fake, which only moves when Advance is called, so backoff sequences,
// cache expirations and scripted fault schedules run instantly and
// deterministically — no time.Sleep walls, no flakiness under -race.
package clock

import (
	"sync"
	"time"
)

// Clock is the minimal time surface the rest of the system needs.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Sleep blocks for d.
	Sleep(d time.Duration)
	// After returns a channel that receives the clock's time once d has
	// elapsed.
	After(d time.Duration) <-chan time.Time
}

// Real is the wall clock.
var Real Clock = realClock{}

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Fake is a manually advanced clock. Sleepers and After channels wake
// only when Advance (or Set) moves the clock past their deadline.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*waiter
}

type waiter struct {
	deadline time.Time
	ch       chan time.Time
}

// NewFake returns a fake clock starting at start.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

// Now returns the fake clock's current time.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Sleep blocks until the clock has been advanced by at least d.
// A non-positive d returns immediately.
func (f *Fake) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-f.After(d)
}

// After returns a channel that fires when the clock passes now+d.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- f.now
		return ch
	}
	f.waiters = append(f.waiters, &waiter{deadline: f.now.Add(d), ch: ch})
	return ch
}

// Advance moves the clock forward by d, waking every sleeper whose
// deadline is reached.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.fireLocked()
	f.mu.Unlock()
}

// Set jumps the clock to t (which must not move backwards) and wakes
// sleepers accordingly.
func (f *Fake) Set(t time.Time) {
	f.mu.Lock()
	if t.After(f.now) {
		f.now = t
	}
	f.fireLocked()
	f.mu.Unlock()
}

// Waiters reports how many sleepers are currently blocked — used by
// tests that must advance only once a sleeper has parked.
func (f *Fake) Waiters() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.waiters)
}

func (f *Fake) fireLocked() {
	remaining := f.waiters[:0]
	for _, w := range f.waiters {
		if !f.now.Before(w.deadline) {
			w.ch <- f.now
		} else {
			remaining = append(remaining, w)
		}
	}
	f.waiters = remaining
}

var _ Clock = (*Fake)(nil)
