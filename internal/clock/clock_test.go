package clock_test

import (
	"sync"
	"testing"
	"time"

	"globedoc/internal/clock"
)

func TestRealClockAdvances(t *testing.T) {
	a := clock.Real.Now()
	clock.Real.Sleep(time.Millisecond)
	if !clock.Real.Now().After(a) {
		t.Fatal("real clock did not advance")
	}
}

func TestFakeNowIsFixed(t *testing.T) {
	start := time.Date(2005, 4, 4, 0, 0, 0, 0, time.UTC)
	f := clock.NewFake(start)
	if !f.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", f.Now(), start)
	}
	f.Advance(time.Hour)
	if !f.Now().Equal(start.Add(time.Hour)) {
		t.Fatalf("Now after advance = %v", f.Now())
	}
}

func TestFakeSleepWakesOnAdvance(t *testing.T) {
	f := clock.NewFake(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		f.Sleep(10 * time.Second)
		close(done)
	}()
	for f.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("sleep returned before advance")
	default:
	}
	f.Advance(9 * time.Second)
	select {
	case <-done:
		t.Fatal("sleep returned before its deadline")
	case <-time.After(10 * time.Millisecond):
	}
	f.Advance(time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("sleep did not wake at deadline")
	}
}

func TestFakeAfterZeroFiresImmediately(t *testing.T) {
	f := clock.NewFake(time.Unix(0, 0))
	select {
	case <-f.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestFakeSetNeverMovesBackwards(t *testing.T) {
	f := clock.NewFake(time.Unix(100, 0))
	f.Set(time.Unix(50, 0))
	if !f.Now().Equal(time.Unix(100, 0)) {
		t.Fatalf("clock moved backwards to %v", f.Now())
	}
}

func TestFakeConcurrentSleepers(t *testing.T) {
	f := clock.NewFake(time.Unix(0, 0))
	var wg sync.WaitGroup
	for i := 1; i <= 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			f.Sleep(time.Duration(n) * time.Second)
		}(i)
	}
	for f.Waiters() < 8 {
		time.Sleep(time.Millisecond)
	}
	f.Advance(8 * time.Second)
	wg.Wait()
}
