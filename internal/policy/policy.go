// Package policy implements the hosting-negotiation policy language the
// paper sketches as future work (§6): "a policy language that would allow
// object owners to express quality of service requirements before
// instantiating new object replicas. At the same time server
// administrators will be able to specify resource limitations ... for the
// replicas they are willing to host."
//
// The language is deliberately small and declarative. An owner policy is
// a sequence of clauses:
//
//	require disk >= 2MB
//	require bandwidth >= 1Mbps
//	require region == "europe"
//	prefer replicas >= 2
//
// and a server offer is a sequence of attribute bindings:
//
//	offer disk = 10MB
//	offer bandwidth = 5Mbps
//	offer region = "europe"
//	offer replicas = 4
//
// Negotiate checks every require clause against the offer (any violation
// rejects the placement) and scores prefer clauses (soft constraints used
// to rank acceptable servers). Quantities carry units: bytes (KB, MB,
// GB), durations (s, m, h) and rates (Kbps, Mbps, Gbps), all normalized
// before comparison.
package policy

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Errors reported by the parser and evaluator.
var (
	ErrSyntax      = errors.New("policy: syntax error")
	ErrUnknownUnit = errors.New("policy: unknown unit")
	ErrTypeClash   = errors.New("policy: incomparable value types")
)

// Kind distinguishes clause kinds.
type Kind int

// Clause kinds.
const (
	Require Kind = iota // hard constraint (owner side)
	Prefer              // soft constraint (owner side)
	Offer               // attribute binding (server side)
)

func (k Kind) String() string {
	switch k {
	case Require:
		return "require"
	case Prefer:
		return "prefer"
	case Offer:
		return "offer"
	default:
		return "unknown"
	}
}

// Op is a comparison operator.
type Op string

// Supported operators.
const (
	OpGE Op = ">="
	OpLE Op = "<="
	OpGT Op = ">"
	OpLT Op = "<"
	OpEQ Op = "=="
	OpNE Op = "!="
)

// Value is a typed policy value: either a normalized quantity or a string.
type Value struct {
	// Num is the normalized magnitude (bytes, seconds, or bits/second);
	// valid when IsNum.
	Num   float64
	Str   string
	IsNum bool
	// Unit records the dimension ("bytes", "seconds", "bps", "") for
	// type checking.
	Unit string
}

// String renders the value in its source-ish form.
func (v Value) String() string {
	if !v.IsNum {
		return fmt.Sprintf("%q", v.Str)
	}
	switch v.Unit {
	case "bytes":
		return fmtQuantity(v.Num, []unitDef{{1 << 30, "GB"}, {1 << 20, "MB"}, {1 << 10, "KB"}, {1, "B"}})
	case "seconds":
		return fmtQuantity(v.Num, []unitDef{{3600, "h"}, {60, "m"}, {1, "s"}})
	case "bps":
		return fmtQuantity(v.Num, []unitDef{{1e9, "Gbps"}, {1e6, "Mbps"}, {1e3, "Kbps"}, {1, "bps"}})
	default:
		return strconv.FormatFloat(v.Num, 'g', -1, 64)
	}
}

type unitDef struct {
	factor float64
	suffix string
}

func fmtQuantity(n float64, units []unitDef) string {
	for _, u := range units {
		if n >= u.factor {
			return strconv.FormatFloat(n/u.factor, 'g', 4, 64) + u.suffix
		}
	}
	return strconv.FormatFloat(n, 'g', -1, 64)
}

// Clause is one parsed policy line.
type Clause struct {
	Kind  Kind
	Attr  string
	Op    Op
	Value Value
	Line  int
}

func (c Clause) String() string {
	return fmt.Sprintf("%s %s %s %s", c.Kind, c.Attr, c.Op, c.Value)
}

// Policy is a parsed policy document.
type Policy struct {
	Clauses []Clause
}

// unit suffix table, longest-first so "Mbps" wins over "s".
var unitTable = []struct {
	suffix string
	factor float64
	dim    string
}{
	{"Gbps", 1e9, "bps"},
	{"Mbps", 1e6, "bps"},
	{"Kbps", 1e3, "bps"},
	{"bps", 1, "bps"},
	{"GB", 1 << 30, "bytes"},
	{"MB", 1 << 20, "bytes"},
	{"KB", 1 << 10, "bytes"},
	{"B", 1, "bytes"},
	{"ms", 1e-3, "seconds"},
	{"h", 3600, "seconds"},
	{"m", 60, "seconds"},
	{"s", 1, "seconds"},
}

// parseValue interprets a token as a quoted string, a number with an
// optional unit suffix, or a bare word (treated as a string).
func parseValue(tok string, line int) (Value, error) {
	if len(tok) >= 2 && tok[0] == '"' && tok[len(tok)-1] == '"' {
		return Value{Str: tok[1 : len(tok)-1]}, nil
	}
	for _, u := range unitTable {
		if strings.HasSuffix(tok, u.suffix) {
			numPart := strings.TrimSuffix(tok, u.suffix)
			if numPart == "" {
				continue
			}
			n, err := strconv.ParseFloat(numPart, 64)
			if err != nil {
				continue // "Bob" ends in "B" but isn't a quantity
			}
			return Value{Num: n * u.factor, IsNum: true, Unit: u.dim}, nil
		}
	}
	if n, err := strconv.ParseFloat(tok, 64); err == nil {
		return Value{Num: n, IsNum: true}, nil
	}
	// Bare word: a string like europe.
	if strings.ContainsAny(tok, "<>=!") {
		return Value{}, fmt.Errorf("%w: line %d: bad value %q", ErrSyntax, line, tok)
	}
	return Value{Str: tok}, nil
}

var validOps = map[Op]bool{OpGE: true, OpLE: true, OpGT: true, OpLT: true, OpEQ: true, OpNE: true}

// Parse parses a policy document. Lines are clauses; blank lines and
// #-comments are skipped. Offer clauses accept "=" as sugar for "==".
func Parse(src string) (*Policy, error) {
	p := &Policy{}
	for i, raw := range strings.Split(src, "\n") {
		line := i + 1
		text := strings.TrimSpace(raw)
		if idx := strings.Index(text, "#"); idx >= 0 {
			text = strings.TrimSpace(text[:idx])
		}
		if text == "" {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 4 {
			return nil, fmt.Errorf("%w: line %d: want `<kind> <attr> <op> <value>`, got %q", ErrSyntax, line, text)
		}
		if len(fields) > 4 {
			// Quoted strings may contain (single) spaces.
			fields = append(fields[:3], strings.Join(fields[3:], " "))
		}
		var kind Kind
		switch fields[0] {
		case "require":
			kind = Require
		case "prefer":
			kind = Prefer
		case "offer":
			kind = Offer
		default:
			return nil, fmt.Errorf("%w: line %d: unknown clause kind %q", ErrSyntax, line, fields[0])
		}
		op := Op(fields[2])
		if op == "=" {
			op = OpEQ
		}
		if !validOps[op] {
			return nil, fmt.Errorf("%w: line %d: unknown operator %q", ErrSyntax, line, fields[2])
		}
		if kind == Offer && op != OpEQ {
			return nil, fmt.Errorf("%w: line %d: offers must bind with `=`", ErrSyntax, line)
		}
		val, err := parseValue(fields[3], line)
		if err != nil {
			return nil, err
		}
		p.Clauses = append(p.Clauses, Clause{Kind: kind, Attr: fields[1], Op: op, Value: val, Line: line})
	}
	return p, nil
}

// Offers extracts the attribute bindings of a server-side policy.
func (p *Policy) Offers() map[string]Value {
	out := make(map[string]Value)
	for _, c := range p.Clauses {
		if c.Kind == Offer {
			out[c.Attr] = c.Value
		}
	}
	return out
}

// compare evaluates `have <op> want`.
func compare(have, want Value, op Op) (bool, error) {
	if have.IsNum != want.IsNum {
		return false, fmt.Errorf("%w: %s vs %s", ErrTypeClash, have, want)
	}
	if have.IsNum {
		if have.Unit != want.Unit && have.Unit != "" && want.Unit != "" {
			return false, fmt.Errorf("%w: %s vs %s", ErrTypeClash, have.Unit, want.Unit)
		}
		switch op {
		case OpGE:
			return have.Num >= want.Num, nil
		case OpLE:
			return have.Num <= want.Num, nil
		case OpGT:
			return have.Num > want.Num, nil
		case OpLT:
			return have.Num < want.Num, nil
		case OpEQ:
			return have.Num == want.Num, nil
		case OpNE:
			return have.Num != want.Num, nil
		default:
			return false, fmt.Errorf("policy: unknown operator %q", op)
		}
	}
	switch op {
	case OpEQ:
		return have.Str == want.Str, nil
	case OpNE:
		return have.Str != want.Str, nil
	default:
		return false, fmt.Errorf("%w: ordering strings with %s", ErrTypeClash, op)
	}
}

// Agreement is the outcome of a negotiation.
type Agreement struct {
	// Accepted is true when every require clause holds.
	Accepted bool
	// Violations lists failed (or unanswerable) require clauses.
	Violations []string
	// PreferencesMet / PreferencesTotal score the soft constraints.
	PreferencesMet   int
	PreferencesTotal int
}

// Score ranks acceptable agreements: higher is better. Rejected
// agreements score negative.
func (a Agreement) Score() float64 {
	if !a.Accepted {
		return -1
	}
	if a.PreferencesTotal == 0 {
		return 1
	}
	return 1 + float64(a.PreferencesMet)/float64(a.PreferencesTotal)
}

// Negotiate evaluates an owner's requirements against a server's offer.
func Negotiate(owner, srv *Policy) Agreement {
	offers := srv.Offers()
	var agr Agreement
	agr.Accepted = true
	for _, c := range owner.Clauses {
		switch c.Kind {
		case Require:
			have, ok := offers[c.Attr]
			if !ok {
				agr.Accepted = false
				agr.Violations = append(agr.Violations, fmt.Sprintf("%s: attribute not offered", c))
				continue
			}
			holds, err := compare(have, c.Value, c.Op)
			if err != nil {
				agr.Accepted = false
				agr.Violations = append(agr.Violations, fmt.Sprintf("%s: %v", c, err))
				continue
			}
			if !holds {
				agr.Accepted = false
				agr.Violations = append(agr.Violations, fmt.Sprintf("%s: offer is %s", c, have))
			}
		case Prefer:
			agr.PreferencesTotal++
			if have, ok := offers[c.Attr]; ok {
				if holds, err := compare(have, c.Value, c.Op); err == nil && holds {
					agr.PreferencesMet++
				}
			}
		}
	}
	return agr
}

// RankServers negotiates owner against every named offer and returns the
// acceptable server names, best score first (ties broken by name).
func RankServers(owner *Policy, offers map[string]*Policy) []string {
	type ranked struct {
		name  string
		score float64
	}
	var acc []ranked
	for name, offer := range offers {
		agr := Negotiate(owner, offer)
		if agr.Accepted {
			acc = append(acc, ranked{name, agr.Score()})
		}
	}
	sort.Slice(acc, func(i, j int) bool {
		if acc[i].score != acc[j].score {
			return acc[i].score > acc[j].score
		}
		return acc[i].name < acc[j].name
	})
	names := make([]string, len(acc))
	for i, r := range acc {
		names[i] = r.name
	}
	return names
}
