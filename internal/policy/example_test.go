package policy_test

import (
	"fmt"

	"globedoc/internal/policy"
)

// ExampleNegotiate shows a hosting negotiation (paper §6): the owner's
// QoS requirements against a server's resource offer.
func ExampleNegotiate() {
	owner, _ := policy.Parse(`
require disk >= 2MB
require region == europe
prefer replicas >= 2
`)
	offer, _ := policy.Parse(`
offer disk = 10MB
offer region = europe
offer replicas = 4
`)
	agr := policy.Negotiate(owner, offer)
	fmt.Println("accepted:", agr.Accepted)
	fmt.Printf("preferences: %d/%d\n", agr.PreferencesMet, agr.PreferencesTotal)

	weak, _ := policy.Parse("offer disk = 1MB\noffer region = europe")
	rejected := policy.Negotiate(owner, weak)
	fmt.Println("weak offer accepted:", rejected.Accepted)
	fmt.Println("violation:", rejected.Violations[0])
	// Output:
	// accepted: true
	// preferences: 1/1
	// weak offer accepted: false
	// violation: require disk >= 2MB: offer is 1MB
}
