package policy_test

import (
	"testing"

	"globedoc/internal/policy"
)

// FuzzParse checks the policy parser never panics and that every parsed
// clause renders back to a string the parser accepts again (print/parse
// stability).
func FuzzParse(f *testing.F) {
	f.Add("require disk >= 2MB")
	f.Add("offer region = europe")
	f.Add("prefer replicas >= 2 # comment")
	f.Add("")
	f.Add("require a == \"x y\"")
	f.Fuzz(func(t *testing.T, src string) {
		p, err := policy.Parse(src)
		if err != nil {
			return
		}
		for _, c := range p.Clauses {
			again, err := policy.Parse(c.String())
			if err != nil {
				t.Fatalf("clause %q does not re-parse: %v", c.String(), err)
			}
			if len(again.Clauses) != 1 {
				t.Fatalf("clause %q re-parsed to %d clauses", c.String(), len(again.Clauses))
			}
		}
	})
}
