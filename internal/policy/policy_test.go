package policy_test

import (
	"errors"
	"strings"
	"testing"

	"globedoc/internal/policy"
)

const ownerSrc = `
# QoS requirements for replicas of home.vu.nl
require disk >= 2MB
require bandwidth >= 1Mbps
require region == europe
prefer max_staleness <= 30s
prefer replicas >= 2
`

const goodOffer = `
offer disk = 10MB
offer bandwidth = 5Mbps
offer region = europe
offer max_staleness = 10s
offer replicas = 4
`

const weakOffer = `
offer disk = 1MB            # too small
offer bandwidth = 5Mbps
offer region = europe
`

func mustParse(t *testing.T, src string) *policy.Policy {
	t.Helper()
	p, err := policy.Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

func TestParseClauses(t *testing.T) {
	p := mustParse(t, ownerSrc)
	if len(p.Clauses) != 5 {
		t.Fatalf("clauses = %d", len(p.Clauses))
	}
	if p.Clauses[0].Kind != policy.Require || p.Clauses[0].Attr != "disk" {
		t.Errorf("clause 0 = %+v", p.Clauses[0])
	}
	if p.Clauses[3].Kind != policy.Prefer {
		t.Errorf("clause 3 = %+v", p.Clauses[3])
	}
	// 2MB normalizes to bytes.
	if got := p.Clauses[0].Value; !got.IsNum || got.Num != 2<<20 || got.Unit != "bytes" {
		t.Errorf("disk value = %+v", got)
	}
	// 1Mbps normalizes to bits/second.
	if got := p.Clauses[1].Value; !got.IsNum || got.Num != 1e6 || got.Unit != "bps" {
		t.Errorf("bandwidth value = %+v", got)
	}
	// 30s normalizes to seconds.
	if got := p.Clauses[3].Value; !got.IsNum || got.Num != 30 || got.Unit != "seconds" {
		t.Errorf("staleness value = %+v", got)
	}
	// bare word is a string.
	if got := p.Clauses[2].Value; got.IsNum || got.Str != "europe" {
		t.Errorf("region value = %+v", got)
	}
}

func TestParseQuotedStringsAndComments(t *testing.T) {
	p := mustParse(t, `require region == "north america" # inline comment`)
	if p.Clauses[0].Value.Str != "north america" {
		t.Errorf("value = %+v", p.Clauses[0].Value)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"require disk",        // too few fields
		"banana disk >= 2MB",  // unknown kind
		"require disk ~= 2MB", // unknown op
		"offer disk >= 2MB",   // offers must use =
		"require disk >= >=",  // bad value
	}
	for _, src := range bad {
		if _, err := policy.Parse(src); !errors.Is(err, policy.ErrSyntax) {
			t.Errorf("Parse(%q) = %v, want ErrSyntax", src, err)
		}
	}
}

func TestNegotiateAccepts(t *testing.T) {
	agr := policy.Negotiate(mustParse(t, ownerSrc), mustParse(t, goodOffer))
	if !agr.Accepted {
		t.Fatalf("rejected: %v", agr.Violations)
	}
	if agr.PreferencesMet != 2 || agr.PreferencesTotal != 2 {
		t.Errorf("preferences = %d/%d", agr.PreferencesMet, agr.PreferencesTotal)
	}
	if agr.Score() != 2 {
		t.Errorf("Score = %v", agr.Score())
	}
}

func TestNegotiateRejectsInsufficientOffer(t *testing.T) {
	agr := policy.Negotiate(mustParse(t, ownerSrc), mustParse(t, weakOffer))
	if agr.Accepted {
		t.Fatal("weak offer accepted")
	}
	// disk too small + max_staleness/replicas not offered are
	// preference misses (not violations); only disk violates.
	if len(agr.Violations) != 1 || !strings.Contains(agr.Violations[0], "disk") {
		t.Errorf("violations = %v", agr.Violations)
	}
	if agr.Score() >= 0 {
		t.Errorf("Score = %v, want negative", agr.Score())
	}
}

func TestNegotiateMissingRequiredAttr(t *testing.T) {
	owner := mustParse(t, "require disk >= 1MB")
	offer := mustParse(t, "offer region = europe")
	agr := policy.Negotiate(owner, offer)
	if agr.Accepted || len(agr.Violations) != 1 {
		t.Errorf("agr = %+v", agr)
	}
}

func TestNegotiateTypeClash(t *testing.T) {
	owner := mustParse(t, "require region >= 5")
	offer := mustParse(t, "offer region = europe")
	agr := policy.Negotiate(owner, offer)
	if agr.Accepted {
		t.Fatal("type clash accepted")
	}
}

func TestStringOrderingRejected(t *testing.T) {
	owner := mustParse(t, "require region >= europe")
	offer := mustParse(t, "offer region = europe")
	agr := policy.Negotiate(owner, offer)
	if agr.Accepted {
		t.Fatal("string ordering comparison accepted")
	}
}

func TestNegotiateNotEqual(t *testing.T) {
	owner := mustParse(t, "require region != asia")
	offer := mustParse(t, "offer region = europe")
	if agr := policy.Negotiate(owner, offer); !agr.Accepted {
		t.Fatalf("rejected: %v", agr.Violations)
	}
}

func TestRankServers(t *testing.T) {
	owner := mustParse(t, ownerSrc)
	offers := map[string]*policy.Policy{
		"full-service": mustParse(t, goodOffer),
		"too-small":    mustParse(t, weakOffer),
		"no-prefs": mustParse(t, `
offer disk = 4MB
offer bandwidth = 2Mbps
offer region = europe
`),
	}
	ranked := policy.RankServers(owner, offers)
	if len(ranked) != 2 {
		t.Fatalf("ranked = %v", ranked)
	}
	if ranked[0] != "full-service" || ranked[1] != "no-prefs" {
		t.Errorf("order = %v", ranked)
	}
}

func TestValueString(t *testing.T) {
	p := mustParse(t, "offer disk = 10MB\noffer rate = 5Mbps\noffer ttl = 90s\noffer region = europe")
	offers := p.Offers()
	cases := map[string]string{
		"disk":   "10MB",
		"rate":   "5Mbps",
		"ttl":    "1.5m",
		"region": `"europe"`,
	}
	for attr, want := range cases {
		if got := offers[attr].String(); got != want {
			t.Errorf("%s.String() = %q, want %q", attr, got, want)
		}
	}
}

func TestUnitSuffixDisambiguation(t *testing.T) {
	// "5Mbps" must parse as a rate, not "5Mbp" + "s" seconds; "3ms" as
	// milliseconds, not meters-something.
	p := mustParse(t, "offer a = 5Mbps\noffer b = 3ms\noffer c = 2m")
	offers := p.Offers()
	if v := offers["a"]; v.Unit != "bps" || v.Num != 5e6 {
		t.Errorf("a = %+v", v)
	}
	if v := offers["b"]; v.Unit != "seconds" || v.Num != 0.003 {
		t.Errorf("b = %+v", v)
	}
	if v := offers["c"]; v.Unit != "seconds" || v.Num != 120 {
		t.Errorf("c = %+v", v)
	}
}
