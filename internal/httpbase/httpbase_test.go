package httpbase_test

import (
	"bytes"
	"testing"
	"time"

	"globedoc/internal/document"
	"globedoc/internal/httpbase"
	"globedoc/internal/netsim"
)

func testDoc() *document.Document {
	d := document.New()
	d.Put(document.Element{Name: "index.html", Data: []byte("<html>baseline</html>")})
	d.Put(document.Element{Name: "img/logo.png", Data: bytes.Repeat([]byte{7}, 1000)})
	return d
}

func TestPlainHTTPServesElements(t *testing.T) {
	n := netsim.PaperTestbed(0)
	defer n.Close()
	l, err := n.Listen(netsim.AmsterdamPrimary, "http")
	if err != nil {
		t.Fatal(err)
	}
	fs := httpbase.NewFileServer(testDoc())
	fs.Start(l)
	defer fs.Close()

	client := httpbase.NewClient(n.Dialer(netsim.Paris, netsim.AmsterdamPrimary+":http"), nil, "amsterdam-primary")
	data, err := client.Get("index.html")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(data) != "<html>baseline</html>" {
		t.Errorf("data = %q", data)
	}
	nested, err := client.Get("img/logo.png")
	if err != nil || len(nested) != 1000 {
		t.Fatalf("nested Get = %d bytes, %v", len(nested), err)
	}
}

func TestPlainHTTPMissingElement(t *testing.T) {
	n := netsim.PaperTestbed(0)
	defer n.Close()
	l, _ := n.Listen(netsim.AmsterdamPrimary, "http")
	fs := httpbase.NewFileServer(testDoc())
	fs.Start(l)
	defer fs.Close()
	client := httpbase.NewClient(n.Dialer(netsim.Paris, netsim.AmsterdamPrimary+":http"), nil, "amsterdam-primary")
	if _, err := client.Get("ghost.html"); err == nil {
		t.Fatal("Get of missing element succeeded")
	}
}

func TestTLSServesElements(t *testing.T) {
	n := netsim.PaperTestbed(0)
	defer n.Close()
	l, err := n.Listen(netsim.AmsterdamPrimary, "https")
	if err != nil {
		t.Fatal(err)
	}
	ts, err := httpbase.NewTLSFileServer(testDoc(), "amsterdam-primary")
	if err != nil {
		t.Fatalf("NewTLSFileServer: %v", err)
	}
	ts.Start(l)
	defer ts.Close()

	client := httpbase.NewClient(n.Dialer(netsim.Ithaca, netsim.AmsterdamPrimary+":https"), ts.Pool, "amsterdam-primary")
	data, err := client.Get("index.html")
	if err != nil {
		t.Fatalf("Get over TLS: %v", err)
	}
	if string(data) != "<html>baseline</html>" {
		t.Errorf("data = %q", data)
	}
}

func TestTLSRejectsUnknownCA(t *testing.T) {
	n := netsim.PaperTestbed(0)
	defer n.Close()
	l, _ := n.Listen(netsim.AmsterdamPrimary, "https")
	ts, err := httpbase.NewTLSFileServer(testDoc(), "amsterdam-primary")
	if err != nil {
		t.Fatal(err)
	}
	ts.Start(l)
	defer ts.Close()

	// A client with a DIFFERENT trust pool must refuse the handshake.
	other, err := httpbase.NewTLSFileServer(testDoc(), "amsterdam-primary")
	if err != nil {
		t.Fatal(err)
	}
	client := httpbase.NewClient(n.Dialer(netsim.Paris, netsim.AmsterdamPrimary+":https"), other.Pool, "amsterdam-primary")
	if _, err := client.Get("index.html"); err == nil {
		t.Fatal("TLS handshake succeeded against unknown CA")
	}
}

func TestGetAllAndTiming(t *testing.T) {
	n := netsim.PaperTestbed(0)
	defer n.Close()
	l, _ := n.Listen(netsim.AmsterdamPrimary, "http")
	fs := httpbase.NewFileServer(testDoc())
	fs.Start(l)
	defer fs.Close()
	client := httpbase.NewClient(n.Dialer(netsim.Paris, netsim.AmsterdamPrimary+":http"), nil, "amsterdam-primary")

	elems := []string{"index.html", "img/logo.png"}
	elapsed, total, err := client.TimedGetAll(elems)
	if err != nil {
		t.Fatalf("TimedGetAll: %v", err)
	}
	if total != len("<html>baseline</html>")+1000 {
		t.Errorf("total = %d", total)
	}
	if elapsed <= 0 {
		t.Errorf("elapsed = %v", elapsed)
	}
	client.CloseIdle()
}

func TestHTTPLatencyCharged(t *testing.T) {
	// With TimeScale 1 and a 30ms one-way link, a single HTTP GET must
	// cost at least 2 RTTs (TCP-free pipe: request + response = 1 RTT;
	// allow 1) but well under a pathological per-chunk charge.
	n := netsim.NewNetwork()
	n.TimeScale = 1
	lat := 20 * time.Millisecond
	n.SetLink("a", "b", netsim.LinkProfile{Latency: lat})
	defer n.Close()
	l, err := n.Listen("b", "http")
	if err != nil {
		t.Fatal(err)
	}
	doc := document.New()
	doc.Put(document.Element{Name: "big.bin", Data: bytes.Repeat([]byte{1}, 256*1024)})
	fs := httpbase.NewFileServer(doc)
	fs.Start(l)
	defer fs.Close()
	client := httpbase.NewClient(n.Dialer("a", "b:http"), nil, "b")
	start := time.Now()
	if _, err := client.Get("big.bin"); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 2*lat {
		t.Errorf("GET took %v, want >= 1 RTT (%v)", elapsed, 2*lat)
	}
	// A 256KB body written in ~64 chunks must NOT pay latency per chunk.
	if elapsed > 20*lat {
		t.Errorf("GET took %v — looks like per-chunk latency charging", elapsed)
	}
}
