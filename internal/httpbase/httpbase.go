// Package httpbase implements the baselines of the paper's second
// experiment (Figures 5–7): a plain-HTTP file server standing in for
// Apache and a TLS file server standing in for Apache+mod_ssl, both
// serving the same page elements as the GlobeDoc object servers, over the
// same simulated wide-area links.
//
// The substitution is documented in DESIGN.md: the baselines' role in the
// evaluation is "a conventional (secure) single-server Web fetch of the
// same bytes", which net/http and crypto/tls provide faithfully. The TLS
// baseline performs a real handshake per connection with a self-signed
// certificate chain the client verifies, reproducing SSL's asymmetric
// crypto cost that the paper contrasts with GlobeDoc's verify-only
// design.
package httpbase

import (
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"fmt"
	"io"
	"math/big"
	"net"
	"net/http"
	"strings"
	"time"

	"globedoc/internal/document"
	"globedoc/internal/transport"
)

// now is the package's injectable time source (the `X = time.Now`
// idiom): certificate validity windows and the Figure 5–7 timing
// measurements read it, so tests can pin the clock.
var now = time.Now

// FileServer serves a document's page elements over plain HTTP — the
// Apache stand-in.
type FileServer struct {
	doc *document.Document
	srv *http.Server
}

// NewFileServer creates a file server over doc.
func NewFileServer(doc *document.Document) *FileServer {
	fs := &FileServer{doc: doc}
	mux := http.NewServeMux()
	mux.HandleFunc("/", fs.serveElement)
	fs.srv = &http.Server{Handler: mux}
	return fs
}

func (fs *FileServer) serveElement(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/")
	if name == "" {
		name = "index.html"
	}
	e, err := fs.doc.Get(name)
	if err != nil {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", e.ContentType)
	w.Header().Set("Content-Length", fmt.Sprint(len(e.Data)))
	_, _ = w.Write(e.Data) // response write failure means the client went away
}

// Serve accepts connections on l until l is closed.
func (fs *FileServer) Serve(l net.Listener) error { return fs.srv.Serve(l) }

// Start serves on a background goroutine; Close unblocks it.
func (fs *FileServer) Start(l net.Listener) { go func() { _ = fs.srv.Serve(l) }() }

// Close shuts the server down.
func (fs *FileServer) Close() { fs.srv.Close() }

// SelfSignedCert generates a throwaway ECDSA certificate for host — the
// baseline's "certified Web server public key". ECDSA P-256 keeps
// handshakes representative without multi-second RSA test setup.
func SelfSignedCert(host string) (tls.Certificate, *x509.CertPool, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, nil, err
	}
	serial, err := rand.Int(rand.Reader, big.NewInt(1<<62))
	if err != nil {
		return tls.Certificate{}, nil, err
	}
	template := x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: host, Organization: []string{"GlobeDoc Baseline"}},
		NotBefore:             now().Add(-time.Hour),
		NotAfter:              now().Add(365 * 24 * time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
		IsCA:                  true,
		DNSNames:              []string{host},
	}
	der, err := x509.CreateCertificate(rand.Reader, &template, &template, &key.PublicKey, key)
	if err != nil {
		return tls.Certificate{}, nil, err
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		return tls.Certificate{}, nil, err
	}
	pool := x509.NewCertPool()
	pool.AddCert(leaf)
	return tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key, Leaf: leaf}, pool, nil
}

// TLSFileServer serves a document's elements over HTTPS — the Apache+SSL
// stand-in.
type TLSFileServer struct {
	inner *FileServer
	cert  tls.Certificate
	// Pool verifies the server's self-signed chain; hand it to clients.
	Pool *x509.CertPool
	// Host is the certificate's server name.
	Host string
}

// NewTLSFileServer creates an HTTPS file server over doc, generating a
// self-signed certificate for host.
func NewTLSFileServer(doc *document.Document, host string) (*TLSFileServer, error) {
	cert, pool, err := SelfSignedCert(host)
	if err != nil {
		return nil, err
	}
	return &TLSFileServer{inner: NewFileServer(doc), cert: cert, Pool: pool, Host: host}, nil
}

// Serve accepts TLS connections on l until l is closed.
func (ts *TLSFileServer) Serve(l net.Listener) error {
	tlsListener := tls.NewListener(l, &tls.Config{Certificates: []tls.Certificate{ts.cert}})
	return ts.inner.Serve(tlsListener)
}

// Start serves on a background goroutine; Close unblocks it.
func (ts *TLSFileServer) Start(l net.Listener) { go func() { _ = ts.Serve(l) }() }

// Close shuts the server down.
func (ts *TLSFileServer) Close() { ts.inner.Close() }

// Client fetches elements from the baseline servers over a fixed dialer,
// timing each request the way the paper's wget runs did.
type Client struct {
	httpClient *http.Client
	host       string
}

// NewClient builds a baseline HTTP client. dial connects to the server;
// pool is nil for plain HTTP or the server's certificate pool for HTTPS;
// host is the URL host (and TLS server name).
func NewClient(dial transport.DialFunc, pool *x509.CertPool, host string) *Client {
	tr := &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			return dial()
		},
		// One request per fetch, like the paper's wget: still allow
		// keep-alive within a composite-object download.
		MaxIdleConns:        4,
		IdleConnTimeout:     30 * time.Second,
		TLSHandshakeTimeout: 30 * time.Second,
	}
	if pool != nil {
		tr.TLSClientConfig = &tls.Config{RootCAs: pool, ServerName: host}
	}
	return &Client{httpClient: &http.Client{Transport: tr}, host: host}
}

// scheme returns the URL scheme matching the client configuration.
func (c *Client) scheme() string {
	if tr, ok := c.httpClient.Transport.(*http.Transport); ok && tr.TLSClientConfig != nil {
		return "https"
	}
	return "http"
}

// Get fetches one element and returns its bytes.
func (c *Client) Get(element string) ([]byte, error) {
	url := fmt.Sprintf("%s://%s/%s", c.scheme(), c.host, element)
	resp, err := c.httpClient.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("httpbase: GET %s: %s", url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// GetAll fetches every named element sequentially (wget-style) and
// returns the total bytes transferred.
func (c *Client) GetAll(elements []string) (int, error) {
	total := 0
	for _, name := range elements {
		data, err := c.Get(name)
		if err != nil {
			return total, err
		}
		total += len(data)
	}
	return total, nil
}

// TimedGetAll fetches every element and reports the elapsed wall time,
// the measurement of Figures 5–7.
func (c *Client) TimedGetAll(elements []string) (time.Duration, int, error) {
	start := now()
	n, err := c.GetAll(elements)
	return now().Sub(start), n, err
}

// CloseIdle drops pooled connections so the next fetch pays connection
// (and TLS handshake) setup again — each Figure 5–7 sample is a fresh
// wget run.
func (c *Client) CloseIdle() {
	c.httpClient.CloseIdleConnections()
}
