package proxy_test

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"globedoc/internal/core"
	"globedoc/internal/deploy"
	"globedoc/internal/document"
	"globedoc/internal/httpbase"
	"globedoc/internal/keys/keytest"
	"globedoc/internal/netsim"
	"globedoc/internal/proxy"
	"globedoc/internal/server"
	"globedoc/internal/transport"
	"globedoc/internal/vcache"
)

// proxyWorld publishes a document and runs a proxy for a Paris user; it
// returns the world and an http.Client that routes everything through the
// proxy (as a browser configured with an HTTP proxy would).
func proxyWorld(t *testing.T) (*deploy.World, *proxy.Proxy, *http.Client) {
	t.Helper()
	return proxyWorldOpts(t, core.Options{CacheBindings: true})
}

// proxyWorldOpts is proxyWorld with caller-chosen secure-client options.
func proxyWorldOpts(t *testing.T, opts core.Options) (*deploy.World, *proxy.Proxy, *http.Client) {
	t.Helper()
	w, err := deploy.NewWorld(deploy.Options{TimeScale: 0})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	if _, err := w.StartServer(netsim.AmsterdamPrimary, "srv", nil, nil, server.Limits{}); err != nil {
		t.Fatal(err)
	}
	doc := document.New()
	doc.Put(document.Element{Name: "index.html", Data: []byte("<html>secure home</html>")})
	doc.Put(document.Element{Name: "img/logo.png", Data: []byte{1, 2, 3}})
	if _, err := w.Publish(doc, deploy.PublishOptions{
		Name: "home.vu.nl", Subject: "Vrije Universiteit", OwnerKey: keytest.RSA(),
	}); err != nil {
		t.Fatal(err)
	}

	secure, err := w.NewSecureClientOpts(netsim.Paris, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(secure.Close)
	p := proxy.New(secure)
	p.PassthroughDial = func(host string) transport.DialFunc {
		return w.Net.Dialer(netsim.Paris, host+":http")
	}

	pl, err := w.Net.Listen(netsim.Paris, "proxy")
	if err != nil {
		t.Fatal(err)
	}
	go p.Serve(pl)

	// The browser is configured to use the proxy for everything, like
	// the paper's wget runs: requests arrive in absolute-URI form.
	proxyURL, err := url.Parse("http://paris-proxy")
	if err != nil {
		t.Fatal(err)
	}
	browser := &http.Client{Transport: &http.Transport{
		Proxy: http.ProxyURL(proxyURL),
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			return w.Net.Dial(netsim.Paris, "paris:proxy")
		},
	}}
	return w, p, browser
}

func TestProxyServesVerifiedElement(t *testing.T) {
	_, p, browser := proxyWorld(t)
	resp, err := browser.Get("http://proxy" + proxy.HybridURL("home.vu.nl", "index.html"))
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "<html>secure home</html>" {
		t.Errorf("body = %q", body)
	}
	if got := resp.Header.Get(proxy.HeaderCertifiedAs); got != "Vrije Universiteit" {
		t.Errorf("Certified-As = %q", got)
	}
	if resp.Header.Get(proxy.HeaderReplica) == "" {
		t.Error("Replica header missing")
	}
	ok, failed, _ := p.Counters()
	if ok != 1 || failed != 0 {
		t.Errorf("counters = %d ok, %d failed", ok, failed)
	}
}

func TestProxyCacheHeader(t *testing.T) {
	// With the verified-content cache enabled, the second request for the
	// same element is served from memory and marked X-GlobeDoc-Cache: hit.
	_, _, browser := proxyWorldOpts(t, core.Options{
		CacheBindings: true,
		VCache:        vcache.New(vcache.Config{}),
	})
	url := "http://proxy" + proxy.HybridURL("home.vu.nl", "index.html")

	first, err := browser.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	firstBody, _ := io.ReadAll(first.Body)
	first.Body.Close()
	if got := first.Header.Get(proxy.HeaderCache); got != "" {
		t.Errorf("cold request: %s = %q, want unset", proxy.HeaderCache, got)
	}

	second, err := browser.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Body.Close()
	if got := second.Header.Get(proxy.HeaderCache); got != "hit" {
		t.Errorf("warm request: %s = %q, want \"hit\"", proxy.HeaderCache, got)
	}
	secondBody, _ := io.ReadAll(second.Body)
	if string(secondBody) != string(firstBody) {
		t.Errorf("cached body %q differs from first fetch %q", secondBody, firstBody)
	}
}

func TestProxySlashElementName(t *testing.T) {
	_, _, browser := proxyWorld(t)
	resp, err := browser.Get("http://proxy" + proxy.HybridURL("home.vu.nl", "img/logo.png"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	body, _ := io.ReadAll(resp.Body)
	if len(body) != 3 {
		t.Errorf("body = %v", body)
	}
}

func TestProxySecurityFailedPage(t *testing.T) {
	_, p, browser := proxyWorld(t)
	// Unknown object: resolution fails; unknown element of a known
	// object would fail later in the pipeline.
	resp, err := browser.Get("http://proxy" + proxy.HybridURL("ghost.vu.nl", "index.html"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("unknown object served OK")
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "GlobeDoc") {
		t.Errorf("error page = %q", body)
	}
	_, failed, _ := p.Counters()
	if failed != 1 {
		t.Errorf("failed counter = %d", failed)
	}
}

func TestProxyWarmBindingHeader(t *testing.T) {
	_, _, browser := proxyWorld(t)
	url := "http://proxy" + proxy.HybridURL("home.vu.nl", "index.html")
	if _, err := browser.Get(url); err != nil {
		t.Fatal(err)
	}
	resp, err := browser.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.Header.Get(proxy.HeaderWarm) != "true" {
		t.Error("second fetch not warm")
	}
}

func TestProxyPassthrough(t *testing.T) {
	w, p, browser := proxyWorld(t)
	// A plain HTTP origin at ithaca.
	origin := document.New()
	origin.Put(document.Element{Name: "plain.html", Data: []byte("plain old web")})
	ol, err := w.Net.Listen(netsim.Ithaca, "http")
	if err != nil {
		t.Fatal(err)
	}
	fs := httpbase.NewFileServer(origin)
	fs.Start(ol)
	t.Cleanup(fs.Close)

	resp, err := browser.Get("http://ithaca/plain.html")
	if err != nil {
		t.Fatalf("passthrough GET: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "plain old web" {
		t.Errorf("body = %q", body)
	}
	_, _, pass := p.Counters()
	if pass != 1 {
		t.Errorf("passthrough counter = %d", pass)
	}
}

func TestProxyRejectsRelativeNonHybrid(t *testing.T) {
	_, _, browser := proxyWorld(t)
	resp, err := browser.Get("http://proxy/not-globedoc.html")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("non-hybrid relative path served OK")
	}
}

func TestProxyObjectIndexPage(t *testing.T) {
	_, _, browser := proxyWorld(t)
	resp, err := browser.Get("http://proxy/GlobeDoc/home.vu.nl/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	body, _ := io.ReadAll(resp.Body)
	html := string(body)
	for _, want := range []string{"Index of GlobeDoc object home.vu.nl", "index.html", "img/logo.png", "valid until"} {
		if !strings.Contains(html, want) {
			t.Errorf("index page missing %q:\n%s", want, html)
		}
	}
	// The index links must themselves be fetchable hybrid URLs.
	ref, ok := document.ParseHybrid(proxy.HybridURL("home.vu.nl", "img/logo.png"))
	if !ok || ref.Element != "img/logo.png" {
		t.Errorf("index link does not parse: %+v", ref)
	}
}

func TestProxyIndexUnknownObject(t *testing.T) {
	_, _, browser := proxyWorld(t)
	resp, err := browser.Get("http://proxy/GlobeDoc/ghost.vu.nl/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("index of unknown object served OK")
	}
}

func TestProxyConditionalGet(t *testing.T) {
	_, _, browser := proxyWorld(t)
	url := "http://proxy" + proxy.HybridURL("home.vu.nl", "index.html")
	first, err := browser.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, first.Body)
	first.Body.Close()
	etag := first.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on verified response")
	}

	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("If-None-Match", etag)
	second, err := browser.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Body.Close()
	if second.StatusCode != http.StatusNotModified {
		t.Fatalf("status = %s, want 304", second.Status)
	}
	body, _ := io.ReadAll(second.Body)
	if len(body) != 0 {
		t.Errorf("304 carried a body: %q", body)
	}

	// A stale ETag gets the full body again.
	req2, _ := http.NewRequest(http.MethodGet, url, nil)
	req2.Header.Set("If-None-Match", `"deadbeef"`)
	third, err := browser.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer third.Body.Close()
	if third.StatusCode != http.StatusOK {
		t.Fatalf("status = %s, want 200", third.Status)
	}
}

func TestHybridURLHelper(t *testing.T) {
	if got := proxy.HybridURL("a.nl", "x.html"); got != "/GlobeDoc/a.nl/x.html" {
		t.Errorf("HybridURL = %q", got)
	}
	if got := proxy.HybridURL("a.nl", "img/x.png"); got != "/GlobeDoc/a.nl!img/x.png" {
		t.Errorf("HybridURL = %q", got)
	}
	for _, c := range []struct{ obj, elem string }{
		{"a.nl", "x.html"}, {"a.nl", "img/x.png"}, {"deep/name", "e.css"},
	} {
		ref, ok := document.ParseHybrid(proxy.HybridURL(c.obj, c.elem))
		if !ok || ref.ObjectName != c.obj || ref.Element != c.elem {
			t.Errorf("round trip %v -> %+v ok=%v", c, ref, ok)
		}
	}
}
