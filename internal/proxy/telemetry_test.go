package proxy_test

// Acceptance tests for the observability layer, end to end: a secure
// fetch through the proxy must produce a span tree covering all 14
// binding-pipeline steps, and the /debugz snapshot's security-overhead
// histogram must agree with the core.Timing the same fetch reported.

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"globedoc/internal/core"
	"globedoc/internal/deploy"
	"globedoc/internal/document"
	"globedoc/internal/keys/keytest"
	"globedoc/internal/netsim"
	"globedoc/internal/proxy"
	"globedoc/internal/server"
	"globedoc/internal/telemetry"
)

// telemetryWorld is proxyWorld with an explicit Telemetry wired through
// the whole deployment.
func telemetryWorld(t *testing.T) (*deploy.World, *telemetry.Telemetry, *core.Client) {
	t.Helper()
	tel := telemetry.New(nil)
	w, err := deploy.NewWorld(deploy.Options{TimeScale: 0, Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	if _, err := w.StartServer(netsim.AmsterdamPrimary, "srv", nil, nil, server.Limits{}); err != nil {
		t.Fatal(err)
	}
	doc := document.New()
	doc.Put(document.Element{Name: "index.html", Data: []byte("<html>observed home</html>")})
	if _, err := w.Publish(doc, deploy.PublishOptions{
		Name: "home.vu.nl", Subject: "Vrije Universiteit", OwnerKey: keytest.RSA(),
	}); err != nil {
		t.Fatal(err)
	}
	secure := w.NewSecureClient(netsim.Paris)
	t.Cleanup(secure.Close)
	return w, tel, secure
}

func TestProxyFetchCoversAll14PipelineSteps(t *testing.T) {
	_, tel, secure := telemetryWorld(t)
	p := proxy.New(secure)
	p.Telemetry = tel
	srv := httptest.NewServer(p)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/GlobeDoc/home.vu.nl/index.html")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("proxy fetch failed: %s\n%s", resp.Status, body)
	}

	// Find the pipeline's root span and collect its direct children.
	spans := tel.Ring.Spans()
	var root *telemetry.SpanRecord
	for i := range spans {
		if spans[i].Name == core.SpanSecureFetch {
			root = &spans[i]
		}
	}
	if root == nil {
		t.Fatalf("no %s span exported; spans: %v", core.SpanSecureFetch, spanNames(spans))
	}
	children := make(map[string]telemetry.SpanRecord)
	for _, s := range spans {
		if s.TraceID == root.TraceID && s.ParentID == root.SpanID {
			children[s.Name] = s
		}
	}
	if len(core.PipelineSteps) != 14 {
		t.Fatalf("PipelineSteps lists %d steps, want 14", len(core.PipelineSteps))
	}
	for _, step := range core.PipelineSteps {
		if _, ok := children[step]; !ok {
			t.Errorf("pipeline step %q missing from span tree (got %v)", step, spanNames(spans))
		}
	}
	// The steps must nest inside the root's interval.
	for name, s := range children {
		if s.Start.Before(root.Start) || s.End.After(root.End) {
			t.Errorf("step %q [%v,%v] escapes root [%v,%v]", name, s.Start, s.End, root.Start, root.End)
		}
	}
	// And the proxy's own request span must exist in its own trace.
	var sawProxy bool
	for _, s := range spans {
		if s.Name == "proxy.request" {
			sawProxy = true
		}
	}
	if !sawProxy {
		t.Error("no proxy.request span exported")
	}
}

func TestDebugzSecurityOverheadAgreesWithTiming(t *testing.T) {
	_, tel, secure := telemetryWorld(t)
	res, err := secure.FetchNamed(context.Background(), "home.vu.nl", "index.html")
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(tel.DebugHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debugz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap telemetry.DebugSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Schema != telemetry.DebugSchema {
		t.Fatalf("schema = %q", snap.Schema)
	}

	hist, ok := snap.Metrics.Histograms[telemetry.MetricSecurityOverhead]
	if !ok {
		t.Fatalf("no %s histogram in snapshot", telemetry.MetricSecurityOverhead)
	}
	if hist.Count != 1 {
		t.Fatalf("security_overhead count = %d, want 1 (exactly this fetch)", hist.Count)
	}
	// The histogram observed Timing.OverheadPercent() of this very run:
	// with one observation, its sum IS that percentage. Both numbers are
	// derived from the same spans, so they agree to float precision.
	if want := res.Timing.OverheadPercent(); math.Abs(hist.Sum-want) > 1e-9 {
		t.Errorf("security_overhead sum = %v, Timing.OverheadPercent = %v", hist.Sum, want)
	}
	lat, ok := snap.Metrics.Histograms[telemetry.MetricFetchLatency]
	if !ok || lat.Count != 1 {
		t.Fatalf("fetch_latency count = %d, want 1", lat.Count)
	}
	if want := res.Timing.Total().Seconds(); math.Abs(lat.Sum-want) > 1e-9 {
		t.Errorf("fetch_latency sum = %v, Timing.Total = %v", lat.Sum, want)
	}
}

func spanNames(spans []telemetry.SpanRecord) []string {
	names := make([]string, len(spans))
	for i, s := range spans {
		names[i] = s.Name
	}
	return names
}
