// Package proxy implements the GlobeDoc client proxy (paper §2.1, §4):
// the HTTP intermediary every client installs to browse GlobeDoc objects
// with a standard Web browser.
//
// The proxy recognizes hybrid URLs — ordinary URLs whose path starts with
// /GlobeDoc/ and embeds an object name and page-element name — and runs
// the full secure browsing pipeline (Figure 3) for them: secure name
// resolution, replica location, self-certification, optional CA identity
// display, integrity-certificate verification and the per-element
// authenticity/freshness/consistency checks. Verified elements are served
// to the browser with a "X-GlobeDoc-Certified-As" header (the paper's
// "Certified as:" window); failed checks produce the "Security Check
// Failed" HTML page. All other requests are transparently forwarded as
// regular HTTP.
package proxy

import (
	"context"
	"errors"
	"fmt"
	"html"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"globedoc/internal/core"
	"globedoc/internal/document"
	"globedoc/internal/telemetry"
	"globedoc/internal/transport"
)

// Headers added by the proxy to verified responses.
const (
	HeaderOID         = "X-GlobeDoc-OID"
	HeaderCertifiedAs = "X-GlobeDoc-Certified-As"
	HeaderReplica     = "X-GlobeDoc-Replica"
	HeaderWarm        = "X-GlobeDoc-Warm-Binding"
	// HeaderCache is "hit" when the element bytes came from the
	// verified-content cache (no transfer; the current certificate
	// vouched for the cached hash).
	HeaderCache = "X-GlobeDoc-Cache"
)

// ErrFetchTimeout is reported (on the failure page) when the secure
// pipeline exceeds the proxy's FetchTimeout.
var ErrFetchTimeout = errors.New("proxy: secure fetch timed out")

// Proxy is an http.Handler implementing the GlobeDoc client proxy.
type Proxy struct {
	// Secure runs the GlobeDoc security pipeline.
	Secure *core.Client
	// FetchTimeout, when positive, bounds each secure pipeline run via
	// a context deadline threaded down to every dial and RPC, so the
	// pipeline is actually cancelled — no goroutine keeps fetching for
	// an abandoned browser request. Overrunning fetches get the failure
	// page with ErrFetchTimeout.
	FetchTimeout time.Duration
	// PassthroughDial opens a connection to a plain-HTTP origin host for
	// non-GlobeDoc requests; nil disables passthrough.
	PassthroughDial func(host string) transport.DialFunc
	// Telemetry receives proxy_requests_total{kind,outcome} and the
	// per-request proxy.request spans; nil falls back to
	// telemetry.Default().
	Telemetry *telemetry.Telemetry

	mu         sync.Mutex
	transports map[string]*http.Transport

	// Stats
	secureOK, secureFail, passthrough uint64
}

// New creates a proxy around a security client.
func New(secure *core.Client) *Proxy {
	return &Proxy{Secure: secure, transports: make(map[string]*http.Transport)}
}

// Counters returns (verified fetches, failed security checks, passthrough
// requests).
func (p *Proxy) Counters() (ok, failed, passthrough uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.secureOK, p.secureFail, p.passthrough
}

func (p *Proxy) bump(counter *uint64) {
	p.mu.Lock()
	*counter++
	p.mu.Unlock()
}

func (p *Proxy) tel() *telemetry.Telemetry { return telemetry.Or(p.Telemetry) }

// observe records one browser-facing request in
// proxy_requests_total{kind,outcome}.
func (p *Proxy) observe(kind, outcome string) {
	p.tel().ProxyRequests.With(kind, outcome).Inc()
}

// ServeHTTP dispatches hybrid URLs to the secure pipeline and everything
// else to passthrough.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if ref, ok := document.ParseHybrid(r.URL.Path); ok {
		p.serveSecure(w, r, ref)
		return
	}
	if objectName, ok := parseIndexURL(r.URL.Path); ok {
		p.serveIndex(w, r, objectName)
		return
	}
	if r.URL.IsAbs() && p.PassthroughDial != nil {
		p.servePassthrough(w, r)
		return
	}
	p.observe("unroutable", "error")
	http.Error(w, "globedoc proxy: not a hybrid URL and no passthrough origin", http.StatusBadRequest)
}

// parseIndexURL recognizes /GlobeDoc/<object>/ — a request for the
// object's verified table of contents.
func parseIndexURL(path string) (string, bool) {
	if !strings.HasPrefix(path, document.HybridPrefix) || !strings.HasSuffix(path, "/") {
		return "", false
	}
	objectName := strings.TrimSuffix(strings.TrimPrefix(path, document.HybridPrefix), "/")
	if objectName == "" || strings.Contains(objectName, "!") {
		return "", false
	}
	return objectName, true
}

// serveIndex renders the object's verified element list as an HTML index
// page — the certificate entries, so the listing itself is authenticated.
func (p *Proxy) serveIndex(w http.ResponseWriter, r *http.Request, objectName string) {
	ctx, cancel := p.fetchContext(r.Context())
	defer cancel()
	entries, err := p.Secure.ElementsNamed(ctx, objectName)
	if err != nil {
		err = p.timeoutError(ctx, err)
		p.bump(&p.secureFail)
		p.observe("index", "fail")
		p.serveSecurityFailure(w, document.HybridRef{ObjectName: objectName, Element: "(index)"}, err)
		return
	}
	p.bump(&p.secureOK)
	p.observe("index", "ok")
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<!DOCTYPE html><html><head><title>Index of %s</title></head><body>
<h1>Index of GlobeDoc object %s</h1>
<p>%d page elements, from the verified integrity certificate:</p><ul>
`, html.EscapeString(objectName), html.EscapeString(objectName), len(entries))
	for _, e := range entries {
		fmt.Fprintf(w, `<li><a href="%s">%s</a> (valid until %s)</li>
`,
			html.EscapeString(HybridURL(objectName, e.Name)),
			html.EscapeString(e.Name),
			e.Expires.UTC().Format("2006-01-02 15:04:05 MST"))
	}
	fmt.Fprint(w, "</ul></body></html>")
}

// fetchContext derives the pipeline context for one browser request:
// the request's own context (cancelled when the browser disconnects),
// bounded by FetchTimeout when configured.
func (p *Proxy) fetchContext(parent context.Context) (context.Context, context.CancelFunc) {
	if p.FetchTimeout <= 0 {
		return parent, func() {}
	}
	return context.WithTimeout(parent, p.FetchTimeout)
}

// timeoutError maps a deadline-expired pipeline failure onto
// ErrFetchTimeout so the failure page names the proxy's bound rather
// than a transport detail.
func (p *Proxy) timeoutError(ctx context.Context, err error) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return fmt.Errorf("%w after %v: %v", ErrFetchTimeout, p.FetchTimeout, err)
	}
	return err
}

func (p *Proxy) serveSecure(w http.ResponseWriter, r *http.Request, ref document.HybridRef) {
	sp := p.tel().Tracer.StartSpan("proxy.request")
	sp.Annotate("object", ref.ObjectName)
	sp.Annotate("element", ref.Element)
	defer sp.End()
	ctx, cancel := p.fetchContext(r.Context())
	defer cancel()
	// The pipeline joins this request's trace: its fetch.secure span
	// (and everything under it, through to the server-side serve spans)
	// nests under proxy.request instead of starting a trace of its own.
	ctx = telemetry.ContextWith(ctx, sp.Context())
	res, err := p.Secure.FetchNamed(ctx, ref.ObjectName, ref.Element)
	if err != nil {
		err = p.timeoutError(ctx, err)
		p.bump(&p.secureFail)
		p.observe("secure", "fail")
		sp.Annotate("outcome", "fail")
		p.serveSecurityFailure(w, ref, err)
		return
	}
	p.bump(&p.secureOK)
	p.observe("secure", "ok")
	sp.Annotate("outcome", "ok")
	h := w.Header()
	h.Set(HeaderReplica, res.ReplicaAddr)
	if res.CertifiedAs != "" {
		h.Set(HeaderCertifiedAs, res.CertifiedAs)
	}
	if res.WarmBinding {
		h.Set(HeaderWarm, "true")
	}
	if res.FromCache {
		h.Set(HeaderCache, "hit")
	}
	// Conditional GET: the ETag is the element's verified content hash,
	// so a browser revalidation costs no body transfer when the (still
	// fully verified) content is unchanged.
	etag := elementETag(res.Element)
	h.Set("ETag", etag)
	if match := r.Header.Get("If-None-Match"); match != "" && etagMatches(match, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h.Set("Content-Type", res.Element.ContentType)
	h.Set("Content-Length", fmt.Sprint(len(res.Element.Data)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(res.Element.Data) // response write failure means the browser went away
}

// elementETag derives a strong ETag from the element's verified SHA-1
// content hash.
func elementETag(e document.Element) string {
	hash := e.Hash()
	return fmt.Sprintf("%q", fmt.Sprintf("%x", hash))
}

// etagMatches implements the If-None-Match comparison for strong ETags,
// including the "*" wildcard and comma-separated lists.
func etagMatches(headerValue, etag string) bool {
	if strings.TrimSpace(headerValue) == "*" {
		return true
	}
	for _, candidate := range strings.Split(headerValue, ",") {
		if strings.TrimSpace(candidate) == etag {
			return true
		}
	}
	return false
}

// serveSecurityFailure renders the paper's "Security Check Failed" page.
func (p *Proxy) serveSecurityFailure(w http.ResponseWriter, ref document.HybridRef, err error) {
	status := http.StatusBadGateway
	title := "GlobeDoc Error"
	if errors.Is(err, core.ErrSecurityCheckFailed) {
		status = http.StatusForbidden
		title = "Security Check Failed"
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.WriteHeader(status)
	fmt.Fprintf(w, `<!DOCTYPE html>
<html><head><title>%s</title></head><body>
<h1>%s</h1>
<p>The GlobeDoc proxy refused to deliver <code>%s</code> of object
<code>%s</code>.</p>
<p><b>Reason:</b> %s</p>
<p>The data offered by the replica did not pass the authenticity,
freshness and consistency checks, or the object could not be reached.
No unverified content has been shown.</p>
</body></html>`,
		title, title,
		html.EscapeString(ref.Element), html.EscapeString(ref.ObjectName),
		html.EscapeString(err.Error()))
}

func (p *Proxy) transportFor(host string) *http.Transport {
	p.mu.Lock()
	defer p.mu.Unlock()
	tr, ok := p.transports[host]
	if !ok {
		dial := p.PassthroughDial(host)
		tr = &http.Transport{
			DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
				return dial()
			},
		}
		p.transports[host] = tr
	}
	return tr
}

// servePassthrough forwards a regular HTTP request unchanged.
func (p *Proxy) servePassthrough(w http.ResponseWriter, r *http.Request) {
	p.bump(&p.passthrough)
	outReq := r.Clone(r.Context())
	outReq.RequestURI = ""
	tr := p.transportFor(r.URL.Host)
	resp, err := tr.RoundTrip(outReq)
	if err != nil {
		p.observe("passthrough", "fail")
		http.Error(w, "globedoc proxy: origin unreachable: "+err.Error(), http.StatusBadGateway)
		return
	}
	p.observe("passthrough", "ok")
	defer resp.Body.Close()
	for key, vals := range resp.Header {
		for _, v := range vals {
			w.Header().Add(key, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body) // passthrough is best-effort once headers are sent
}

// Serve runs the proxy's HTTP server on l.
func (p *Proxy) Serve(l net.Listener) error {
	srv := &http.Server{Handler: p}
	return srv.Serve(l)
}

// HybridURL builds the hybrid URL path for an object/element pair —
// convenience for examples and tests. Elements with slashes in their
// names use the explicit "!" separator so parsing stays unambiguous.
func HybridURL(objectName, element string) string {
	if strings.Contains(element, "/") {
		return document.HybridPrefix + objectName + "!" + element
	}
	return document.HybridRef{ObjectName: objectName, Element: element}.String()
}
