package server

// Internal tests for the precomputed wire payloads: handlers must serve
// the integrity-certificate table, key and element responses without
// per-request marshalling, and Install/update must be the only points
// that rebuild them.

import (
	"bytes"
	"context"
	"testing"
	"time"

	"globedoc/internal/cert"
	"globedoc/internal/document"
	"globedoc/internal/globeid"
	"globedoc/internal/keys"
	"globedoc/internal/keys/keytest"
	"globedoc/internal/object"
)

var wireT0 = time.Date(2005, 4, 4, 12, 0, 0, 0, time.UTC)

// newWireServer installs a small document and returns the server, its
// OID and the owner key pair.
func newWireServer(tb testing.TB, elemSize int) (*Server, globeid.OID, *keys.KeyPair) {
	tb.Helper()
	owner := keytest.RSA()
	oid := globeid.FromPublicKey(owner.Public())
	doc := document.New()
	payload := bytes.Repeat([]byte{0x42}, elemSize)
	for _, name := range []string{"index.html", "logo.png", "style.css"} {
		if err := doc.Put(document.Element{Name: name, ContentType: "text/html", Data: payload}); err != nil {
			tb.Fatal(err)
		}
	}
	icert, err := document.IssueCertificate(doc, oid, owner, wireT0, document.UniformTTL(time.Hour))
	if err != nil {
		tb.Fatal(err)
	}
	s := New("bench-srv", "site", nil, nil, Limits{})
	b := BundleFromDocument(oid, owner.Public(), doc, icert, nil)
	if err := s.Install(b, "owner"); err != nil {
		tb.Fatal(err)
	}
	return s, oid, owner
}

func TestHandlersServePrecomputedPayloads(t *testing.T) {
	s, oid, _ := newWireServer(t, 64)
	req := object.EncodeOIDRequest(oid)

	got, err := s.handleGetCert(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	ic, err := cert.UnmarshalIntegrityCertificate(got)
	if err != nil {
		t.Fatalf("served cert payload does not unmarshal: %v", err)
	}
	if ic.ObjectID != oid {
		t.Fatal("served cert names the wrong object")
	}

	elemReq := object.EncodeElementRequest(oid, "index.html", "")
	wire, err := s.handleGetElement(context.Background(), elemReq)
	if err != nil {
		t.Fatal(err)
	}
	e, err := object.DecodeElement(wire)
	if err != nil {
		t.Fatalf("served element payload does not decode: %v", err)
	}
	if e.Name != "index.html" || len(e.Data) != 64 {
		t.Fatalf("decoded element = %q (%d bytes)", e.Name, len(e.Data))
	}
	if s.Stats().BytesServed != 64 {
		t.Fatalf("BytesServed = %d, want 64", s.Stats().BytesServed)
	}
}

func TestWireRebuiltOnUpdate(t *testing.T) {
	s, oid, owner := newWireServer(t, 64)
	req := object.EncodeOIDRequest(oid)

	before, err := s.handleGetCert(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	doc := document.New()
	doc.Replace([]document.Element{{Name: "index.html", Data: []byte("v2")}}, 2)
	icert, err := document.IssueCertificate(doc, oid, owner, wireT0.Add(time.Minute), document.UniformTTL(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	b := BundleFromDocument(oid, owner.Public(), doc, icert, nil)
	if err := s.Update(b, "owner"); err != nil {
		t.Fatal(err)
	}

	after, err := s.handleGetCert(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(before, after) {
		t.Fatal("GetCert payload not rebuilt after update")
	}
	wire, err := s.handleGetElement(context.Background(), object.EncodeElementRequest(oid, "index.html", ""))
	if err != nil {
		t.Fatal(err)
	}
	e, err := object.DecodeElement(wire)
	if err != nil {
		t.Fatal(err)
	}
	if string(e.Data) != "v2" {
		t.Fatalf("element payload not rebuilt: %q", e.Data)
	}
}

func TestHandleGetElementsServesBatch(t *testing.T) {
	s, oid, _ := newWireServer(t, 64)
	names := []string{"index.html", "logo.png", "style.css"}
	resp, err := s.handleGetElements(context.Background(), object.EncodeElementsRequest(oid, names, "paris"))
	if err != nil {
		t.Fatal(err)
	}
	items, err := object.DecodeElementsResponse(resp)
	if err != nil {
		t.Fatalf("batch response does not decode: %v", err)
	}
	if len(items) != len(names) {
		t.Fatalf("batch returned %d items, want %d", len(items), len(names))
	}
	for i, it := range items {
		if it.Name != names[i] {
			t.Fatalf("item %d = %q, want %q (order must match request)", i, it.Name, names[i])
		}
		if it.Err != nil {
			t.Fatalf("item %q: %v", it.Name, it.Err)
		}
		if it.Element.Name != names[i] || len(it.Element.Data) != 64 {
			t.Fatalf("item %q decoded to %q (%d bytes)", it.Name, it.Element.Name, len(it.Element.Data))
		}
	}
	if got := s.Stats().BytesServed; got != 3*64 {
		t.Fatalf("BytesServed = %d, want %d (per-element stats fire in batch)", got, 3*64)
	}
	if got := s.Stats().ElementFetches; got != 3 {
		t.Fatalf("ElementFetches = %d, want 3", got)
	}
}

func TestHandleGetElementsUnknownNameIsPerItem(t *testing.T) {
	s, oid, _ := newWireServer(t, 64)
	resp, err := s.handleGetElements(context.Background(), object.EncodeElementsRequest(oid, []string{"index.html", "missing.js"}, ""))
	if err != nil {
		t.Fatalf("a missing element must not fail the whole batch: %v", err)
	}
	items, err := object.DecodeElementsResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	if items[0].Err != nil {
		t.Fatalf("known element errored: %v", items[0].Err)
	}
	if items[1].Err == nil {
		t.Fatal("unknown element returned no per-item error")
	}
}

func TestHandleGetElementsBudgetOverflowMarksItems(t *testing.T) {
	// Three 7 MiB elements cannot all fit under the ~16 MiB response
	// frame budget: the overflowing tail must come back as per-item
	// errors telling the client to fetch them individually, and its
	// bytes must not count as served.
	s, oid, _ := newWireServer(t, 7<<20)
	resp, err := s.handleGetElements(context.Background(), object.EncodeElementsRequest(oid, []string{"index.html", "logo.png", "style.css"}, ""))
	if err != nil {
		t.Fatal(err)
	}
	items, err := object.DecodeElementsResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	served, deferred := 0, 0
	for _, it := range items {
		if it.Err != nil {
			deferred++
		} else {
			served++
		}
	}
	if served != 2 || deferred != 1 {
		t.Fatalf("served=%d deferred=%d, want 2 served and 1 deferred under the frame budget", served, deferred)
	}
	if got := s.Stats().ElementFetches; got != 2 {
		t.Fatalf("ElementFetches = %d, want 2 (deferred items are not fetches)", got)
	}
}

// TestGetCertZeroAllocs pins the satellite requirement: serving the
// integrity-certificate table performs zero per-request allocations —
// the marshalling happened once, at install/update time.
func TestGetCertZeroAllocs(t *testing.T) {
	s, oid, _ := newWireServer(t, 1024)
	req := object.EncodeOIDRequest(oid)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := s.handleGetCert(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("handleGetCert allocates %.1f objects per request, want 0", allocs)
	}
}

func BenchmarkHandleGetCert(b *testing.B) {
	s, oid, _ := newWireServer(b, 1024)
	req := object.EncodeOIDRequest(oid)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.handleGetCert(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHandleGetElement(b *testing.B) {
	s, oid, _ := newWireServer(b, 64<<10)
	req := object.EncodeElementRequest(oid, "index.html", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.handleGetElement(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHandleGetKey(b *testing.B) {
	s, oid, _ := newWireServer(b, 64)
	req := object.EncodeOIDRequest(oid)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.handleGetKey(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}
