package server_test

import (
	"context"
	"errors"
	"testing"

	"globedoc/internal/keys"
	"globedoc/internal/keys/keytest"
	"globedoc/internal/netsim"
	"globedoc/internal/server"
	"globedoc/internal/transport"
)

// adminWorld stands up a server on the simulated net with the given
// keystore and returns a dialer for it.
func adminWorld(t *testing.T, ks *keys.Keystore) (*server.Server, transport.DialFunc, *netsim.Network) {
	t.Helper()
	n := netsim.PaperTestbed(0)
	t.Cleanup(n.Close)
	srv := server.New("srv-ams", netsim.AmsterdamPrimary, ks, nil, server.Limits{})
	l, err := n.Listen(netsim.AmsterdamPrimary, "objsvc")
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(l)
	t.Cleanup(srv.Close)
	return srv, n.Dialer(netsim.Paris, netsim.AmsterdamPrimary+":objsvc"), n
}

func TestAdminCreateUpdateDeleteLifecycle(t *testing.T) {
	ownerKey := keytest.RSA()
	ks := keys.NewKeystore()
	ks.Add("alice", ownerKey.Public())
	srv, dial, _ := adminWorld(t, ks)

	admin := server.NewAdminClient("alice", ownerKey, dial)
	defer admin.Close()

	docKey := keytest.Ed()
	b := makeBundle(t, docKey, map[string][]byte{"index.html": []byte("v1")})
	if err := admin.CreateReplica(context.Background(), b); err != nil {
		t.Fatalf("CreateReplica: %v", err)
	}
	if !srv.Hosts(b.OID) {
		t.Fatal("replica not hosted after CreateReplica")
	}

	oids, err := admin.ListReplicas(context.Background())
	if err != nil || len(oids) != 1 || oids[0] != b.OID {
		t.Fatalf("ListReplicas = %v, %v", oids, err)
	}

	b2 := makeBundle(t, docKey, map[string][]byte{"index.html": []byte("v2 updated")})
	if err := admin.UpdateReplica(context.Background(), b2); err != nil {
		t.Fatalf("UpdateReplica: %v", err)
	}

	if err := admin.DeleteReplica(context.Background(), b.OID); err != nil {
		t.Fatalf("DeleteReplica: %v", err)
	}
	if srv.Hosts(b.OID) {
		t.Fatal("replica still hosted after DeleteReplica")
	}
}

func TestAdminRejectsUnknownPrincipal(t *testing.T) {
	_, dial, _ := adminWorld(t, keys.NewKeystore()) // empty keystore
	admin := server.NewAdminClient("stranger", keytest.RSA(), dial)
	defer admin.Close()
	b := makeBundle(t, keytest.Ed(), map[string][]byte{"a": []byte("a")})
	err := admin.CreateReplica(context.Background(), b)
	if err == nil {
		t.Fatal("CreateReplica succeeded for unknown principal")
	}
}

func TestAdminRejectsWrongKey(t *testing.T) {
	realKey := keytest.RSA()
	ks := keys.NewKeystore()
	ks.Add("alice", realKey.Public())
	_, dial, _ := adminWorld(t, ks)

	// Mallory knows alice's name but not her key.
	mallory := server.NewAdminClient("alice", keytest.Ed(), dial)
	defer mallory.Close()
	b := makeBundle(t, keytest.Ed(), map[string][]byte{"a": []byte("a")})
	if err := mallory.CreateReplica(context.Background(), b); err == nil {
		t.Fatal("CreateReplica accepted forged signature")
	}
}

func TestAdminPerCreatorIsolation(t *testing.T) {
	// "Each entity is then allowed to manage only the replicas it
	// creates" (paper §4).
	aliceKey := keytest.RSA()
	bobKey := keytest.RSA()
	if aliceKey == bobKey {
		t.Skip("key pool collision")
	}
	ks := keys.NewKeystore()
	ks.Add("alice", aliceKey.Public())
	ks.Add("bob", bobKey.Public())
	srv, dial, _ := adminWorld(t, ks)

	alice := server.NewAdminClient("alice", aliceKey, dial)
	defer alice.Close()
	bob := server.NewAdminClient("bob", bobKey, dial)
	defer bob.Close()

	docKey := keytest.Ed()
	b := makeBundle(t, docKey, map[string][]byte{"a": []byte("a")})
	if err := alice.CreateReplica(context.Background(), b); err != nil {
		t.Fatal(err)
	}
	// Bob is authorized on the server but did not create this replica.
	if err := bob.DeleteReplica(context.Background(), b.OID); err == nil {
		t.Fatal("bob deleted alice's replica")
	}
	b2 := makeBundle(t, docKey, map[string][]byte{"a": []byte("a2")})
	if err := bob.UpdateReplica(context.Background(), b2); err == nil {
		t.Fatal("bob updated alice's replica")
	}
	if err := alice.DeleteReplica(context.Background(), b.OID); err != nil {
		t.Fatalf("alice delete: %v", err)
	}
	_ = srv
}

func TestAdminNonceSingleUse(t *testing.T) {
	// Replaying an admin call (same nonce) must fail: the server deletes
	// the nonce after first use. We simulate replay by making two calls
	// through one client — each performs its own challenge, so both
	// succeed — then verify a raw second use of a consumed nonce fails
	// by observing that delete-after-delete reports not-hosted rather
	// than access-denied (the nonce path would reject first if replayed).
	ownerKey := keytest.RSA()
	ks := keys.NewKeystore()
	ks.Add("alice", ownerKey.Public())
	_, dial, _ := adminWorld(t, ks)
	admin := server.NewAdminClient("alice", ownerKey, dial)
	defer admin.Close()

	b := makeBundle(t, keytest.Ed(), map[string][]byte{"a": []byte("a")})
	if err := admin.CreateReplica(context.Background(), b); err != nil {
		t.Fatal(err)
	}
	if err := admin.DeleteReplica(context.Background(), b.OID); err != nil {
		t.Fatal(err)
	}
	err := admin.DeleteReplica(context.Background(), b.OID)
	if err == nil {
		t.Fatal("second delete succeeded")
	}
	var remote *transport.RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v", err)
	}
}
