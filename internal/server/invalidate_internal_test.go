package server

// Internal tests for the long-poll machinery: the timeout clamp, and the
// waiter sweep that keeps cancelled or timed-out long-polls from leaking
// channels in the versionWaiters map.

import (
	"sync"
	"testing"
	"time"

	"globedoc/internal/enc"
	"globedoc/internal/globeid"
)

func TestClampWaitTimeout(t *testing.T) {
	cases := []struct {
		in, want time.Duration
	}{
		{0, MaxWaitVersion},
		{-time.Second, MaxWaitVersion},
		{time.Millisecond, time.Millisecond},
		{MaxWaitVersion, MaxWaitVersion},
		{MaxWaitVersion + time.Second, MaxWaitVersion},
		{24 * time.Hour, MaxWaitVersion},
	}
	for _, c := range cases {
		if got := clampWaitTimeout(c.in); got != c.want {
			t.Errorf("clampWaitTimeout(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func waitVersionReq(oid globeid.OID, known uint64, timeout time.Duration) []byte {
	w := enc.NewWriter(32)
	w.Raw(oid[:])
	w.Uvarint(known)
	w.Uvarint(uint64(timeout / time.Millisecond))
	return w.Bytes()
}

func TestWaitVersionTimeoutSweepsWaiter(t *testing.T) {
	s, oid, _ := newWireServer(t, 16)
	known := mustVersion(t, s, oid)
	// Several long-polls time out with no intervening update; each must
	// remove its subscription on the way out.
	for i := 0; i < 4; i++ {
		if _, err := s.handleWaitVersion(waitVersionReq(oid, known, 20*time.Millisecond)); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.waiters.pending(oid); n != 0 {
		t.Fatalf("%d waiters leaked after timed-out long-polls", n)
	}
}

func TestWaitVersionEarlyAnswerSweepsWaiter(t *testing.T) {
	s, oid, _ := newWireServer(t, 16)
	known := mustVersion(t, s, oid)
	// known-1 answers immediately on the first loop iteration, before
	// any subscription; known with an update racing in answers on the
	// re-check path, which must also cancel its fresh subscription.
	if _, err := s.handleWaitVersion(waitVersionReq(oid, known-1, time.Second)); err != nil {
		t.Fatal(err)
	}
	if n := s.waiters.pending(oid); n != 0 {
		t.Fatalf("%d waiters leaked after immediate answer", n)
	}
}

func TestVersionWaitersCancelIsIdempotentAndNotifySafe(t *testing.T) {
	v := newVersionWaiters()
	var oid globeid.OID
	oid[0] = 1

	ch1, cancel1 := v.wait(oid)
	_, cancel2 := v.wait(oid)
	if v.pending(oid) != 2 {
		t.Fatalf("pending = %d, want 2", v.pending(oid))
	}
	cancel2()
	cancel2() // idempotent
	if v.pending(oid) != 1 {
		t.Fatalf("pending after cancel = %d, want 1", v.pending(oid))
	}
	v.notify(oid)
	select {
	case <-ch1:
	default:
		t.Fatal("surviving waiter was not notified")
	}
	cancel1() // cancel after notify is a safe no-op
	if v.pending(oid) != 0 {
		t.Fatalf("pending after notify = %d, want 0", v.pending(oid))
	}
}

func TestVersionWaitersConcurrentCancelAndNotify(t *testing.T) {
	v := newVersionWaiters()
	var oid globeid.OID
	oid[0] = 2
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		_, cancel := v.wait(oid)
		wg.Add(1)
		go func() {
			defer wg.Done()
			cancel()
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		v.notify(oid)
	}()
	wg.Wait()
	if v.pending(oid) != 0 {
		t.Fatalf("pending = %d after concurrent cancel/notify", v.pending(oid))
	}
}
