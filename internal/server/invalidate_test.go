package server_test

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"globedoc/internal/document"
)

func TestWaitVersionImmediateWhenAhead(t *testing.T) {
	_, pub, puller := pullWorld(t)
	// The primary is at some version v; asking with known=v-1 returns
	// immediately.
	v := pub.Doc.Version()
	got, err := puller.WaitVersion(context.Background(), v-1, 5*time.Second)
	if err != nil {
		t.Fatalf("WaitVersion: %v", err)
	}
	if got != v {
		t.Errorf("version = %d, want %d", got, v)
	}
}

func TestWaitVersionTimesOutQuietly(t *testing.T) {
	_, pub, puller := pullWorld(t)
	v := pub.Doc.Version()
	start := time.Now()
	got, err := puller.WaitVersion(context.Background(), v, 100*time.Millisecond)
	if err != nil {
		t.Fatalf("WaitVersion: %v", err)
	}
	if got != v {
		t.Errorf("version = %d, want unchanged %d", got, v)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Errorf("returned after %v, expected to park ~100ms", elapsed)
	}
}

func TestWaitVersionWakesOnUpdate(t *testing.T) {
	w, pub, puller := pullWorld(t)
	v := pub.Doc.Version()

	type outcome struct {
		version uint64
		err     error
	}
	done := make(chan outcome, 1)
	go func() {
		got, err := puller.WaitVersion(context.Background(), v, 10*time.Second)
		done <- outcome{got, err}
	}()
	// Give the long-poll a moment to park, then update the primary.
	time.Sleep(50 * time.Millisecond)
	pub.Doc.Put(document.Element{Name: "index.html", Data: []byte("v2 pushed")})
	if err := w.Reissue(pub, time.Hour, time.Now()); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-done:
		if res.err != nil {
			t.Fatalf("WaitVersion: %v", res.err)
		}
		if res.version <= v {
			t.Errorf("woke with version %d, want > %d", res.version, v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long-poll never woke on update")
	}
}

func TestWaitVersionManyWaitersOneOID(t *testing.T) {
	// Many concurrent long-polls park on the same OID; a single update
	// must wake every one of them with the new version. Run under -race
	// this also exercises the waiter list's concurrent subscribe/notify.
	w, pub, puller := pullWorld(t)
	v := pub.Doc.Version()

	const waiters = 16
	results := make(chan uint64, waiters)
	errs := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			got, err := puller.WaitVersion(context.Background(), v, 10*time.Second)
			if err != nil {
				errs <- err
				return
			}
			results <- got
		}()
	}
	time.Sleep(100 * time.Millisecond) // let the polls park
	pub.Doc.Put(document.Element{Name: "index.html", Data: []byte("wake all")})
	if err := w.Reissue(pub, time.Hour, time.Now()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < waiters; i++ {
		select {
		case got := <-results:
			if got <= v {
				t.Errorf("waiter woke with version %d, want > %d", got, v)
			}
		case err := <-errs:
			t.Fatalf("WaitVersion: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d of %d waiters woke", i, waiters)
		}
	}
}

func TestWaitVersionUpdateRacesPark(t *testing.T) {
	// Fire updates concurrently with long-polls so some polls arrive
	// before the update, some after, and some land exactly in the
	// subscribe window. Every poll must return promptly with a version
	// at least as new as the one it asked about — none may park for the
	// full timeout, and none may deadlock.
	w, pub, puller := pullWorld(t)

	for round := 0; round < 5; round++ {
		v := pub.Doc.Version()
		done := make(chan error, 1)
		go func() {
			got, err := puller.WaitVersion(context.Background(), v, 5*time.Second)
			if err == nil && got <= v {
				err = fmt.Errorf("woke with version %d, want > %d", got, v)
			}
			done <- err
		}()
		// No parking delay: the update races the poll's subscription.
		pub.Doc.Put(document.Element{Name: "index.html", Data: []byte(fmt.Sprintf("race round %d", round))})
		if err := w.Reissue(pub, time.Hour, time.Now()); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
		case <-time.After(4 * time.Second):
			t.Fatalf("round %d: long-poll missed the racing update and parked", round)
		}
	}
}

func TestInvalidationLoopPropagatesUpdates(t *testing.T) {
	w, pub, puller := pullWorld(t)
	stop := make(chan struct{})
	var loopDone atomic.Bool
	go func() {
		puller.RunInvalidationLoop(context.Background(), stop, 2*time.Second)
		loopDone.Store(true)
	}()
	t.Cleanup(func() { close(stop) })

	time.Sleep(50 * time.Millisecond) // let the loop park
	pub.Doc.Put(document.Element{Name: "index.html", Data: []byte("pushed content")})
	if err := w.Reissue(pub, time.Hour, time.Now()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for puller.Pulls() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if puller.Pulls() == 0 {
		t.Fatal("invalidation loop never pulled the update")
	}
	// The secondary replica converged.
	b, err := w.Servers["paris"].ExportBundle(pub.OID)
	if err != nil {
		t.Fatal(err)
	}
	if string(b.Elements[0].Data) != "pushed content" {
		t.Errorf("replica content = %q", b.Elements[0].Data)
	}
	if loopDone.Load() {
		t.Error("loop exited prematurely")
	}
}
