// Package server implements the Globe object server (paper §2.1.3, §4):
// the process that provides address space, contact points and runtime
// services to the replica local representatives it hosts.
//
// Every hosted replica is the full state a GlobeDoc replica must store
// (§3.2.2): all page elements, the object's public key, the integrity
// certificate, and any CA-issued name certificates. The server answers
// the anonymous read protocol of internal/object and an authenticated
// administrative protocol for replica lifecycle management.
//
// Access control follows §4: the administrator configures a keystore of
// public keys for the entities allowed to create replicas here — object
// owners and peer object servers (the latter enabling dynamic
// replication) — and each entity may manage only the replicas it created.
// The paper's prototype authenticated administrators over TLS; this
// implementation uses an equivalent challenge–response signature scheme
// over the same wire protocol, keeping the whole stack on one transport.
package server

import (
	"fmt"

	"globedoc/internal/cert"
	"globedoc/internal/document"
	"globedoc/internal/enc"
	"globedoc/internal/globeid"
	"globedoc/internal/keys"
)

// Bundle is the complete transferable state of one GlobeDoc replica:
// everything an object server needs to host it.
type Bundle struct {
	OID       globeid.OID
	Key       keys.PublicKey
	Elements  []document.Element
	Version   uint64
	Cert      *cert.IntegrityCertificate
	NameCerts []*cert.NameCertificate
}

// Validate performs the server's self-protection checks before hosting:
// the public key must hash to the OID, the integrity certificate must be
// signed by that key and name this object, and every element must match
// its certificate entry. A server that skips these checks would waste
// storage on garbage it can never serve convincingly.
func (b *Bundle) Validate() error {
	if err := b.OID.Verify(b.Key); err != nil {
		return fmt.Errorf("server: bundle key: %w", err)
	}
	if b.Cert == nil {
		return fmt.Errorf("server: bundle for %s has no integrity certificate", b.OID.Short())
	}
	if err := b.Cert.VerifySignature(b.OID, b.Key); err != nil {
		return fmt.Errorf("server: bundle certificate: %w", err)
	}
	for _, e := range b.Elements {
		entry, err := b.Cert.Lookup(e.Name)
		if err != nil {
			return fmt.Errorf("server: bundle element %q not in certificate", e.Name)
		}
		if entry.Hash != e.Hash() {
			return fmt.Errorf("server: bundle element %q does not match certificate hash", e.Name)
		}
	}
	return nil
}

// TotalBytes returns the summed element content size, the quantity
// counted against the server's storage limit.
func (b *Bundle) TotalBytes() int {
	total := 0
	for _, e := range b.Elements {
		total += len(e.Data)
	}
	return total
}

// Marshal encodes the bundle for the wire.
func (b *Bundle) Marshal() []byte {
	w := enc.NewWriter(1024 + b.TotalBytes())
	w.Raw(b.OID[:])
	w.BytesPrefixed(b.Key.Marshal())
	w.Uvarint(b.Version)
	w.Uvarint(uint64(len(b.Elements)))
	for _, e := range b.Elements {
		w.String(e.Name)
		w.String(e.ContentType)
		w.BytesPrefixed(e.Data)
	}
	w.BytesPrefixed(b.Cert.Marshal())
	w.Uvarint(uint64(len(b.NameCerts)))
	for _, nc := range b.NameCerts {
		w.BytesPrefixed(nc.Marshal())
	}
	return w.Bytes()
}

// UnmarshalBundle decodes an encoding from Marshal.
func UnmarshalBundle(data []byte) (*Bundle, error) {
	r := enc.NewReader(data)
	var b Bundle
	copy(b.OID[:], r.Raw(globeid.Size))
	rawKey := r.BytesPrefixed()
	b.Version = r.Uvarint()
	n := r.Uvarint()
	if n > 1<<16 {
		return nil, fmt.Errorf("server: implausible element count %d", n)
	}
	for i := uint64(0); i < n; i++ {
		var e document.Element
		e.Name = r.String()
		e.ContentType = r.String()
		e.Data = append([]byte(nil), r.BytesPrefixed()...)
		b.Elements = append(b.Elements, e)
	}
	rawCert := r.BytesPrefixed()
	nc := r.Uvarint()
	if nc > 1024 {
		return nil, fmt.Errorf("server: implausible name-cert count %d", nc)
	}
	rawNameCerts := make([][]byte, 0, nc)
	for i := uint64(0); i < nc; i++ {
		rawNameCerts = append(rawNameCerts, r.BytesPrefixed())
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("server: bundle decode: %w", err)
	}
	key, err := keys.UnmarshalPublicKey(rawKey)
	if err != nil {
		return nil, fmt.Errorf("server: bundle key decode: %w", err)
	}
	b.Key = key
	c, err := cert.UnmarshalIntegrityCertificate(rawCert)
	if err != nil {
		return nil, fmt.Errorf("server: bundle cert decode: %w", err)
	}
	b.Cert = c
	for _, raw := range rawNameCerts {
		ncert, err := cert.UnmarshalNameCertificate(raw)
		if err != nil {
			return nil, fmt.Errorf("server: bundle name cert decode: %w", err)
		}
		b.NameCerts = append(b.NameCerts, ncert)
	}
	return &b, nil
}

// BundleFromDocument snapshots a live document into a bundle.
func BundleFromDocument(oid globeid.OID, key keys.PublicKey, doc *document.Document, c *cert.IntegrityCertificate, nameCerts []*cert.NameCertificate) *Bundle {
	elems, version := doc.Snapshot()
	return &Bundle{
		OID:       oid,
		Key:       key,
		Elements:  elems,
		Version:   version,
		Cert:      c,
		NameCerts: nameCerts,
	}
}
