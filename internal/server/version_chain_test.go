package server

// Internal tests for the hash-chained version store and the delta
// computation it feeds: chain linkage and monotonicity on every
// install/update, retention trimming, the reset rule for non-monotonic
// republishes, and DeltaSince's changed-only item selection with the
// full-required decline for evicted versions.

import (
	"bytes"
	"testing"
	"time"

	"globedoc/internal/document"
	"globedoc/internal/globeid"
	"globedoc/internal/keys"
)

// chainUpdate re-issues the server's hosted doc with one element
// replaced and a fresh certificate at the given version, via the normal
// Update path.
func chainUpdate(tb testing.TB, s *Server, oid globeid.OID, owner *keys.KeyPair, version uint64, name string, data []byte) *Bundle {
	tb.Helper()
	h, err := s.replica(oid)
	if err != nil {
		tb.Fatal(err)
	}
	elems, _ := h.doc.Snapshot()
	doc := document.New()
	doc.Replace(elems, version)
	if err := doc.Put(document.Element{Name: name, ContentType: "text/html", Data: data}); err != nil {
		tb.Fatal(err)
	}
	// Put bumped the version; pin it back to the requested one.
	es, _ := doc.Snapshot()
	doc.Replace(es, version)
	icert, err := document.IssueCertificate(doc, oid, owner, wireT0.Add(time.Duration(version)*time.Second), document.UniformTTL(time.Hour))
	if err != nil {
		tb.Fatal(err)
	}
	b := BundleFromDocument(oid, owner.Public(), doc, icert, nil)
	if err := s.Update(b, "owner"); err != nil {
		tb.Fatal(err)
	}
	return b
}

func TestVersionChainLinksOnUpdate(t *testing.T) {
	s, oid, owner := newWireServer(t, 64)
	base, err := s.VersionChain(oid)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) != 1 {
		t.Fatalf("fresh install chain length = %d, want 1", len(base))
	}
	if base[0].Prev != ([globeid.Size]byte{}) {
		t.Error("genesis header has a non-zero Prev")
	}

	v := base[0].Version
	for i := 1; i <= 3; i++ {
		chainUpdate(t, s, oid, owner, v+uint64(i), "index.html", []byte{byte(i)})
	}
	chain, err := s.VersionChain(oid)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 4 {
		t.Fatalf("chain length = %d, want 4", len(chain))
	}
	for i := 1; i < len(chain); i++ {
		if chain[i].Version <= chain[i-1].Version {
			t.Errorf("versions not increasing at index %d", i)
		}
		prev := chain[i-1]
		if chain[i].Prev != prev.Hash() {
			t.Errorf("header %d does not link to its predecessor", i)
		}
		if chain[i].OID != oid {
			t.Errorf("header %d names the wrong object", i)
		}
	}
	// The head commits to the served state.
	h, err := s.replica(oid)
	if err != nil {
		t.Fatal(err)
	}
	if head := chain[len(chain)-1]; head.Version != h.doc.Version() {
		t.Errorf("head version %d, doc at %d", head.Version, h.doc.Version())
	}
	if head := chain[len(chain)-1]; head.CertHash != globeid.HashElement(h.icert.Marshal()) {
		t.Error("head CertHash does not commit to the served certificate")
	}
}

func TestVersionChainRetentionTrims(t *testing.T) {
	s, oid, owner := newWireServer(t, 64)
	s.VersionRetention = 3
	v := mustVersion(t, s, oid)
	for i := 1; i <= 6; i++ {
		chainUpdate(t, s, oid, owner, v+uint64(i), "index.html", []byte{byte(i)})
	}
	chain, err := s.VersionChain(oid)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 3 {
		t.Fatalf("chain length = %d, want retention 3", len(chain))
	}
	if chain[len(chain)-1].Version != v+6 {
		t.Errorf("head version = %d, want %d", chain[len(chain)-1].Version, v+6)
	}
	// The retained links still verify even though the oldest header's
	// Prev points at an evicted predecessor.
	for i := 1; i < len(chain); i++ {
		prev := chain[i-1]
		if chain[i].Prev != prev.Hash() {
			t.Errorf("retained chain broken at index %d", i)
		}
	}
}

func TestVersionChainResetsOnNonMonotonicVersion(t *testing.T) {
	s, oid, owner := newWireServer(t, 64)
	v := mustVersion(t, s, oid)
	chainUpdate(t, s, oid, owner, v+1, "index.html", []byte("v2"))
	// An owner republishing at an older version starts a fresh genesis
	// chain: the old history cannot commit to a version that goes
	// backwards.
	chainUpdate(t, s, oid, owner, v, "index.html", []byte("rewound"))
	chain, err := s.VersionChain(oid)
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 1 {
		t.Fatalf("chain length after reset = %d, want 1", len(chain))
	}
	if chain[0].Prev != ([globeid.Size]byte{}) {
		t.Error("reset chain head is not a genesis")
	}
	if chain[0].Version != v {
		t.Errorf("reset head version = %d, want %d", chain[0].Version, v)
	}
}

func mustVersion(tb testing.TB, s *Server, oid globeid.OID) uint64 {
	tb.Helper()
	h, err := s.replica(oid)
	if err != nil {
		tb.Fatal(err)
	}
	return h.doc.Version()
}

func TestVersionHeaderMarshalRoundTrip(t *testing.T) {
	s, oid, owner := newWireServer(t, 64)
	chainUpdate(t, s, oid, owner, mustVersion(t, s, oid)+1, "index.html", []byte("v2"))
	chain, err := s.VersionChain(oid)
	if err != nil {
		t.Fatal(err)
	}
	for _, hd := range chain {
		got, err := UnmarshalVersionHeader(hd.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		if *got != hd {
			t.Fatalf("round trip = %+v, want %+v", *got, hd)
		}
		if !bytes.Equal(got.Marshal(), hd.Marshal()) {
			t.Fatal("re-marshal differs")
		}
	}
	if _, err := UnmarshalVersionHeader([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated header decoded")
	}
}

func TestDeltaSinceReturnsOnlyChangedElements(t *testing.T) {
	s, oid, owner := newWireServer(t, 256)
	have := mustVersion(t, s, oid)
	chainUpdate(t, s, oid, owner, have+1, "index.html", []byte("changed body"))

	d, err := s.DeltaSince(oid, have)
	if err != nil {
		t.Fatal(err)
	}
	if d.FullRequired {
		t.Fatal("retained version declined")
	}
	if d.NewVersion != have+1 {
		t.Errorf("NewVersion = %d, want %d", d.NewVersion, have+1)
	}
	if len(d.Headers) != 2 {
		t.Fatalf("headers = %d, want 2 (have..new inclusive)", len(d.Headers))
	}
	if d.Headers[0].Version != have || d.Headers[len(d.Headers)-1].Version != have+1 {
		t.Error("header range is not have..new")
	}
	changed, unchanged := 0, 0
	for _, it := range d.Items {
		if it.Changed {
			changed++
			if it.Name != "index.html" {
				t.Errorf("unexpected changed item %q", it.Name)
			}
			if string(it.Element.Data) != "changed body" {
				t.Errorf("changed item carries %q", it.Element.Data)
			}
		} else {
			unchanged++
			if len(it.Element.Data) != 0 {
				t.Errorf("unchanged item %q carries element bytes", it.Name)
			}
		}
	}
	if changed != 1 || unchanged != 2 {
		t.Fatalf("changed=%d unchanged=%d, want 1 and 2", changed, unchanged)
	}
}

func TestDeltaSinceDeclinesEvictedVersion(t *testing.T) {
	s, oid, owner := newWireServer(t, 64)
	s.VersionRetention = 2
	have := mustVersion(t, s, oid)
	for i := 1; i <= 4; i++ {
		chainUpdate(t, s, oid, owner, have+uint64(i), "index.html", []byte{byte(i)})
	}
	d, err := s.DeltaSince(oid, have) // long evicted
	if err != nil {
		t.Fatal(err)
	}
	if !d.FullRequired {
		t.Fatal("evicted have-version was not declined")
	}
	if d.NewVersion != have+4 {
		t.Errorf("decline NewVersion = %d, want %d", d.NewVersion, have+4)
	}
	// Unknown versions decline too.
	d, err = s.DeltaSince(oid, 9999)
	if err != nil {
		t.Fatal(err)
	}
	if !d.FullRequired {
		t.Fatal("unknown have-version was not declined")
	}
}

func TestDeltaReplyMarshalRoundTrip(t *testing.T) {
	s, oid, owner := newWireServer(t, 128)
	have := mustVersion(t, s, oid)
	chainUpdate(t, s, oid, owner, have+1, "logo.png", []byte("new logo"))
	d, err := s.DeltaSince(oid, have)
	if err != nil {
		t.Fatal(err)
	}
	wire := d.Marshal()
	got, err := UnmarshalDeltaReply(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Marshal(), wire) {
		t.Fatal("delta reply re-marshal differs (non-canonical)")
	}
	if got.NewVersion != d.NewVersion || len(got.Items) != len(d.Items) || len(got.Headers) != len(d.Headers) {
		t.Fatalf("round trip lost structure: %+v", got)
	}
	if got.Cert == nil || !bytes.Equal(got.Key.Marshal(), d.Key.Marshal()) {
		t.Fatal("round trip lost certificate or key")
	}

	decline := &DeltaReply{FullRequired: true, NewVersion: 42}
	got, err = UnmarshalDeltaReply(decline.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !got.FullRequired || got.NewVersion != 42 {
		t.Fatalf("decline round trip = %+v", got)
	}
	if !bytes.Equal(got.Marshal(), decline.Marshal()) {
		t.Fatal("decline re-marshal differs")
	}
}

func TestDeltaRequestRoundTrip(t *testing.T) {
	_, oid, _ := newWireServer(t, 64)
	gotOID, have, err := DecodeDeltaRequest(EncodeDeltaRequest(oid, 7))
	if err != nil {
		t.Fatal(err)
	}
	if gotOID != oid || have != 7 {
		t.Fatalf("round trip = (%s, %d)", gotOID.Short(), have)
	}
	if _, _, err := DecodeDeltaRequest([]byte{99}); err == nil {
		t.Fatal("bad version byte accepted")
	}
}
