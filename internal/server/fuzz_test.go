package server_test

import (
	"bytes"
	"testing"
	"time"

	"globedoc/internal/document"
	"globedoc/internal/globeid"
	"globedoc/internal/keys/keytest"
	"globedoc/internal/server"
)

// FuzzUnmarshalBundle checks the replica-bundle decoder — the surface an
// untrusted peer server controls — never panics and only accepts
// canonical encodings.
func FuzzUnmarshalBundle(f *testing.F) {
	owner := keytest.Ed()
	oid := globeid.FromPublicKey(owner.Public())
	doc := document.New()
	if err := doc.Put(document.Element{Name: "index.html", Data: []byte("seed")}); err != nil {
		f.Fatal(err)
	}
	icert, err := document.IssueCertificate(doc, oid, owner, time.Unix(1e9, 0), document.UniformTTL(time.Hour))
	if err != nil {
		f.Fatal(err)
	}
	bundle := server.BundleFromDocument(oid, owner.Public(), doc, icert, nil)
	f.Add(bundle.Marshal())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x01}, 21))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := server.UnmarshalBundle(data)
		if err != nil {
			return
		}
		if !bytes.Equal(got.Marshal(), data) {
			t.Fatalf("accepted non-canonical encoding")
		}
		// Validation must never panic either, whatever was decoded.
		_ = got.Validate()
	})
}
