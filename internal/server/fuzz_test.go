package server_test

import (
	"bytes"
	"testing"
	"time"

	"globedoc/internal/document"
	"globedoc/internal/globeid"
	"globedoc/internal/keys/keytest"
	"globedoc/internal/server"
)

// FuzzUnmarshalBundle checks the replica-bundle decoder — the surface an
// untrusted peer server controls — never panics and only accepts
// canonical encodings.
func FuzzUnmarshalBundle(f *testing.F) {
	owner := keytest.Ed()
	oid := globeid.FromPublicKey(owner.Public())
	doc := document.New()
	if err := doc.Put(document.Element{Name: "index.html", Data: []byte("seed")}); err != nil {
		f.Fatal(err)
	}
	icert, err := document.IssueCertificate(doc, oid, owner, time.Unix(1e9, 0), document.UniformTTL(time.Hour))
	if err != nil {
		f.Fatal(err)
	}
	bundle := server.BundleFromDocument(oid, owner.Public(), doc, icert, nil)
	f.Add(bundle.Marshal())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x01}, 21))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := server.UnmarshalBundle(data)
		if err != nil {
			return
		}
		if !bytes.Equal(got.Marshal(), data) {
			t.Fatalf("accepted non-canonical encoding")
		}
		// Validation must never panic either, whatever was decoded.
		_ = got.Validate()
	})
}

// FuzzDeltaDecode checks the obj.getdelta reply decoder — bytes a lying
// primary fully controls — never panics and only accepts canonical
// encodings, so a forged delta can at worst fail validation later.
func FuzzDeltaDecode(f *testing.F) {
	owner := keytest.Ed()
	oid := globeid.FromPublicKey(owner.Public())
	doc := document.New()
	if err := doc.Put(document.Element{Name: "index.html", ContentType: "text/html", Data: []byte("seed")}); err != nil {
		f.Fatal(err)
	}
	if err := doc.Put(document.Element{Name: "logo.png", ContentType: "image/png", Data: []byte("png")}); err != nil {
		f.Fatal(err)
	}
	icert, err := document.IssueCertificate(doc, oid, owner, time.Unix(1e9, 0), document.UniformTTL(time.Hour))
	if err != nil {
		f.Fatal(err)
	}
	hdr := &server.VersionHeader{OID: oid, Version: doc.Version(), CertHash: globeid.HashElement(icert.Marshal())}
	ok := &server.DeltaReply{
		NewVersion: doc.Version(),
		Headers:    []*server.VersionHeader{hdr},
		Key:        owner.Public(),
		Cert:       icert,
		Items: []server.DeltaItem{
			{Name: "index.html", Changed: true, Element: document.Element{Name: "index.html", ContentType: "text/html", Data: []byte("seed")}},
			{Name: "logo.png"},
		},
	}
	f.Add(ok.Marshal())
	f.Add((&server.DeltaReply{FullRequired: true, NewVersion: 7}).Marshal())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x01}, 21))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := server.UnmarshalDeltaReply(data)
		if err != nil {
			return
		}
		if !bytes.Equal(got.Marshal(), data) {
			t.Fatalf("accepted non-canonical delta encoding")
		}
	})
}
