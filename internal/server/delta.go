package server

import (
	"fmt"

	"globedoc/internal/cert"
	"globedoc/internal/document"
	"globedoc/internal/enc"
	"globedoc/internal/globeid"
	"globedoc/internal/keys"
	"globedoc/internal/merkle"
)

// OpGetDelta is the Merkle-delta consistency transfer (DESIGN.md §16):
// the request carries (OID, have-version); the reply carries the chain
// headers linking have to the current version, the new version's key and
// certificate tables, and — per element, tagged with a status byte —
// either nothing (cert-listed hash unchanged since have) or the new
// element bytes. When have has been evicted from the primary's retained
// chain the reply is a full-bundle-required decline. The reply is
// UNTRUSTED input: the puller composes a candidate bundle from it and
// hands that to the same Update validation a full pull goes through, so
// a lying primary can at worst force a fallback (DoS), never install a
// byte that does not verify.
const OpGetDelta = "obj.getdelta"

// deltaWireVersion versions both the request and reply encodings, so the
// format can evolve the way the transport's frame version does.
const deltaWireVersion = 1

// Reply status bytes.
const (
	deltaStatusOK           byte = 1
	deltaStatusFullRequired byte = 2
)

// Per-item status bytes.
const (
	deltaItemUnchanged byte = 0
	deltaItemChanged   byte = 1
)

// Decoder bounds, mirroring UnmarshalBundle's.
const (
	maxDeltaHeaders = 1024
	maxDeltaItems   = 1 << 16
)

// DeltaItem is one element's entry in a delta reply. Unchanged items
// carry only the name: the client already holds bytes with the
// cert-listed hash. Changed items carry the new element.
type DeltaItem struct {
	Name    string
	Changed bool
	Element document.Element // set only when Changed
}

// DeltaReply is the decoded obj.getdelta reply.
type DeltaReply struct {
	// FullRequired reports a decline: the have-version is not in the
	// primary's retained chain, so the client must fall back to a full
	// obj.getbundle transfer. Only NewVersion is populated.
	FullRequired bool
	// NewVersion is the primary's current version.
	NewVersion uint64
	// Headers is the retained chain from the have-version to the current
	// version inclusive, oldest first.
	Headers []*VersionHeader
	Key     keys.PublicKey
	Cert    *cert.IntegrityCertificate
	NameCerts []*cert.NameCertificate
	// Items lists every element of the new version, sorted by name.
	Items []DeltaItem
}

// EncodeDeltaRequest encodes an obj.getdelta request.
func EncodeDeltaRequest(oid globeid.OID, have uint64) []byte {
	w := enc.NewWriter(globeid.Size + 16)
	w.Byte(deltaWireVersion)
	w.Raw(oid[:])
	w.Uvarint(have)
	return w.Bytes()
}

// DecodeDeltaRequest decodes an encoding from EncodeDeltaRequest.
func DecodeDeltaRequest(body []byte) (globeid.OID, uint64, error) {
	r := enc.NewReader(body)
	var oid globeid.OID
	if v := r.Byte(); r.Err() == nil && v != deltaWireVersion {
		return oid, 0, fmt.Errorf("server: unsupported delta request version %d", v)
	}
	copy(oid[:], r.Raw(globeid.Size))
	have := r.Uvarint()
	if err := r.Finish(); err != nil {
		return oid, 0, fmt.Errorf("server: delta request decode: %w", err)
	}
	return oid, have, nil
}

// Marshal encodes the reply for the wire.
func (d *DeltaReply) Marshal() []byte {
	w := enc.NewWriter(1024)
	w.Byte(deltaWireVersion)
	if d.FullRequired {
		w.Byte(deltaStatusFullRequired)
		w.Uvarint(d.NewVersion)
		return w.Bytes()
	}
	w.Byte(deltaStatusOK)
	w.Uvarint(d.NewVersion)
	w.Uvarint(uint64(len(d.Headers)))
	for _, h := range d.Headers {
		w.BytesPrefixed(h.Marshal())
	}
	w.BytesPrefixed(d.Key.Marshal())
	w.BytesPrefixed(d.Cert.Marshal())
	w.Uvarint(uint64(len(d.NameCerts)))
	for _, nc := range d.NameCerts {
		w.BytesPrefixed(nc.Marshal())
	}
	w.Uvarint(uint64(len(d.Items)))
	for _, it := range d.Items {
		w.String(it.Name)
		if !it.Changed {
			w.Byte(deltaItemUnchanged)
			continue
		}
		w.Byte(deltaItemChanged)
		w.String(it.Element.ContentType)
		w.BytesPrefixed(it.Element.Data)
	}
	return w.Bytes()
}

// UnmarshalDeltaReply decodes an encoding from Marshal. The result is
// untrusted: callers must route any state composed from it through
// Bundle.Validate (via Server.Update) before trusting a byte of it.
func UnmarshalDeltaReply(data []byte) (*DeltaReply, error) {
	r := enc.NewReader(data)
	if v := r.Byte(); r.Err() == nil && v != deltaWireVersion {
		return nil, fmt.Errorf("server: unsupported delta reply version %d", v)
	}
	status := r.Byte()
	var d DeltaReply
	switch status {
	case deltaStatusFullRequired:
		d.FullRequired = true
		d.NewVersion = r.Uvarint()
		if err := r.Finish(); err != nil {
			return nil, fmt.Errorf("server: delta reply decode: %w", err)
		}
		return &d, nil
	case deltaStatusOK:
	default:
		if r.Err() == nil {
			return nil, fmt.Errorf("server: unknown delta reply status %d", status)
		}
	}
	d.NewVersion = r.Uvarint()
	nh := r.Uvarint()
	if r.Err() == nil && nh > maxDeltaHeaders {
		return nil, fmt.Errorf("server: implausible delta header count %d", nh)
	}
	rawHeaders := make([][]byte, 0, nh)
	for i := uint64(0); i < nh && r.Err() == nil; i++ {
		rawHeaders = append(rawHeaders, r.BytesPrefixed())
	}
	rawKey := r.BytesPrefixed()
	rawCert := r.BytesPrefixed()
	nc := r.Uvarint()
	if r.Err() == nil && nc > 1024 {
		return nil, fmt.Errorf("server: implausible delta name-cert count %d", nc)
	}
	rawNameCerts := make([][]byte, 0, nc)
	for i := uint64(0); i < nc && r.Err() == nil; i++ {
		rawNameCerts = append(rawNameCerts, r.BytesPrefixed())
	}
	ni := r.Uvarint()
	if r.Err() == nil && ni > maxDeltaItems {
		return nil, fmt.Errorf("server: implausible delta item count %d", ni)
	}
	for i := uint64(0); i < ni && r.Err() == nil; i++ {
		var it DeltaItem
		it.Name = r.String()
		switch st := r.Byte(); st {
		case deltaItemUnchanged:
		case deltaItemChanged:
			it.Changed = true
			it.Element.Name = it.Name
			it.Element.ContentType = r.String()
			it.Element.Data = append([]byte(nil), r.BytesPrefixed()...)
		default:
			if r.Err() == nil {
				return nil, fmt.Errorf("server: unknown delta item status %d", st)
			}
		}
		d.Items = append(d.Items, it)
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("server: delta reply decode: %w", err)
	}
	for _, raw := range rawHeaders {
		h, err := UnmarshalVersionHeader(raw)
		if err != nil {
			return nil, err
		}
		d.Headers = append(d.Headers, h)
	}
	key, err := keys.UnmarshalPublicKey(rawKey)
	if err != nil {
		return nil, fmt.Errorf("server: delta key decode: %w", err)
	}
	d.Key = key
	c, err := cert.UnmarshalIntegrityCertificate(rawCert)
	if err != nil {
		return nil, fmt.Errorf("server: delta cert decode: %w", err)
	}
	d.Cert = c
	for _, raw := range rawNameCerts {
		ncert, err := cert.UnmarshalNameCertificate(raw)
		if err != nil {
			return nil, fmt.Errorf("server: delta name cert decode: %w", err)
		}
		d.NameCerts = append(d.NameCerts, ncert)
	}
	return &d, nil
}

// DeltaSince computes the delta reply for a hosted replica from the
// client's have-version to the current head. When have is not among the
// retained versions (evicted, never existed, or from a divergent reset
// history) the reply is a full-required decline.
func (s *Server) DeltaSince(oid globeid.OID, have uint64) (*DeltaReply, error) {
	h, err := s.replica(oid)
	if err != nil {
		return nil, err
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	chain := h.chain
	head := chain[len(chain)-1]
	base := -1
	for i, snap := range chain {
		if snap.header.Version == have {
			base = i
			break
		}
	}
	if base < 0 {
		return &DeltaReply{FullRequired: true, NewVersion: head.header.Version}, nil
	}
	changed, _ := merkle.DiffLeaves(chain[base].hashes, head.hashes)
	changedSet := make(map[string]bool, len(changed))
	for _, name := range changed {
		changedSet[name] = true
	}
	d := &DeltaReply{
		NewVersion: head.header.Version,
		Key:        h.key,
		Cert:       head.cert,
		NameCerts:  head.nameCerts,
	}
	for _, snap := range chain[base:] {
		d.Headers = append(d.Headers, snap.header)
	}
	for _, name := range h.doc.Names() {
		it := DeltaItem{Name: name}
		if changedSet[name] {
			e, err := h.doc.Get(name)
			if err != nil {
				return nil, err
			}
			it.Changed = true
			it.Element = e
		}
		d.Items = append(d.Items, it)
	}
	return d, nil
}

// handleGetDelta serves obj.getdelta. Like obj.getbundle, everything in
// the reply is public data the anonymous read protocol already exposes
// piecewise.
func (s *Server) handleGetDelta(body []byte) ([]byte, error) {
	oid, have, err := DecodeDeltaRequest(body)
	if err != nil {
		return nil, err
	}
	d, err := s.DeltaSince(oid, have)
	if err != nil {
		return nil, err
	}
	return d.Marshal(), nil
}
