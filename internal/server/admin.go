package server

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"fmt"

	"globedoc/internal/enc"
	"globedoc/internal/globeid"
	"globedoc/internal/keys"
	"globedoc/internal/transport"
)

// Administrative wire operations. All admin verbs travel inside a signed
// envelope carried by OpAdmin; OpChallenge hands out the nonce the
// envelope must sign.
const (
	OpChallenge = "adm.challenge"
	OpAdmin     = "adm.exec"
)

// Admin verbs carried inside the signed envelope.
const (
	VerbCreate = "create"
	VerbUpdate = "update"
	VerbDelete = "delete"
	VerbList   = "list"
)

const nonceSize = 32

// handleChallenge issues a single-use nonce for the named principal.
// Anyone may request a challenge; only a principal whose key is in the
// server keystore can turn it into an accepted admin call.
func (s *Server) handleChallenge(body []byte) ([]byte, error) {
	r := enc.NewReader(body)
	principal := r.String()
	if err := r.Finish(); err != nil {
		return nil, err
	}
	if principal == "" {
		return nil, fmt.Errorf("server: empty principal")
	}
	nonce := make([]byte, nonceSize)
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("server: nonce generation: %w", err)
	}
	s.nonceMu.Lock()
	s.nonces[principal] = nonce
	s.nonceMu.Unlock()
	return nonce, nil
}

// adminSignedBytes is the exact byte string an admin envelope signs:
// domain tag, principal, verb, nonce, and a hash of the payload.
func adminSignedBytes(principal, verb string, nonce []byte, payload []byte) []byte {
	digest := sha256.Sum256(payload)
	w := enc.NewWriter(128)
	w.String("globedoc-admin-request")
	w.String(principal)
	w.String(verb)
	w.BytesPrefixed(nonce)
	w.Raw(digest[:])
	return w.Bytes()
}

func encodeAdminEnvelope(principal, verb string, nonce, sig, payload []byte) []byte {
	w := enc.NewWriter(128 + len(payload))
	w.String(principal)
	w.String(verb)
	w.BytesPrefixed(nonce)
	w.BytesPrefixed(sig)
	w.BytesPrefixed(payload)
	return w.Bytes()
}

func decodeAdminEnvelope(body []byte) (principal, verb string, nonce, sig, payload []byte, err error) {
	r := enc.NewReader(body)
	principal = r.String()
	verb = r.String()
	nonce = r.BytesPrefixed()
	sig = r.BytesPrefixed()
	payload = r.BytesPrefixed()
	if ferr := r.Finish(); ferr != nil {
		return "", "", nil, nil, nil, ferr
	}
	return principal, verb, nonce, sig, payload, nil
}

// handleAdmin validates the signed envelope and dispatches the verb.
func (s *Server) handleAdmin(body []byte) ([]byte, error) {
	principal, verb, nonce, sig, payload, err := decodeAdminEnvelope(body)
	if err != nil {
		return nil, err
	}
	pk, ok := s.keystore.Get(principal)
	if !ok {
		return nil, fmt.Errorf("%w: unknown principal %q", ErrAccessDenied, principal)
	}
	s.nonceMu.Lock()
	expected, ok := s.nonces[principal]
	if ok {
		delete(s.nonces, principal) // single use
	}
	s.nonceMu.Unlock()
	if !ok || subtle.ConstantTimeCompare(expected, nonce) != 1 {
		return nil, fmt.Errorf("%w: stale or missing challenge for %q", ErrAccessDenied, principal)
	}
	if err := pk.Verify(adminSignedBytes(principal, verb, nonce, payload), sig); err != nil {
		return nil, fmt.Errorf("%w: bad request signature from %q", ErrAccessDenied, principal)
	}
	switch verb {
	case VerbCreate:
		b, err := UnmarshalBundle(payload)
		if err != nil {
			return nil, err
		}
		return nil, s.Install(b, principal)
	case VerbUpdate:
		b, err := UnmarshalBundle(payload)
		if err != nil {
			return nil, err
		}
		return nil, s.update(b, principal)
	case VerbDelete:
		oid, err := globeid.FromBytes(payload)
		if err != nil {
			return nil, err
		}
		return nil, s.remove(oid, principal)
	case VerbList:
		oids := s.Hosted()
		w := enc.NewWriter(len(oids)*globeid.Size + 8)
		w.Uvarint(uint64(len(oids)))
		for _, oid := range oids {
			w.Raw(oid[:])
		}
		return w.Bytes(), nil
	default:
		return nil, fmt.Errorf("server: unknown admin verb %q", verb)
	}
}

// AdminClient manages replicas on a remote object server on behalf of a
// principal (an object owner or a peer object server).
type AdminClient struct {
	principal string
	key       *keys.KeyPair
	c         *transport.Client
}

// NewAdminClient returns an admin client authenticating as principal with
// key, connecting via dial.
func NewAdminClient(principal string, key *keys.KeyPair, dial transport.DialFunc) *AdminClient {
	return &AdminClient{principal: principal, key: key, c: transport.NewClient(dial)}
}

// Close releases the connection.
func (a *AdminClient) Close() { a.c.Close() }

// exec performs one challenge–response authenticated verb.
func (a *AdminClient) exec(ctx context.Context, verb string, payload []byte) ([]byte, error) {
	w := enc.NewWriter(len(a.principal) + 8)
	w.String(a.principal)
	nonce, err := a.c.Call(ctx, OpChallenge, w.Bytes())
	if err != nil {
		return nil, fmt.Errorf("server: challenge: %w", err)
	}
	sig, err := a.key.Sign(adminSignedBytes(a.principal, verb, nonce, payload))
	if err != nil {
		return nil, fmt.Errorf("server: signing admin request: %w", err)
	}
	return a.c.Call(ctx, OpAdmin, encodeAdminEnvelope(a.principal, verb, nonce, sig, payload))
}

// CreateReplica installs a bundle on the remote server.
func (a *AdminClient) CreateReplica(ctx context.Context, b *Bundle) error {
	_, err := a.exec(ctx, VerbCreate, b.Marshal())
	return err
}

// UpdateReplica replaces the remote replica's state.
func (a *AdminClient) UpdateReplica(ctx context.Context, b *Bundle) error {
	_, err := a.exec(ctx, VerbUpdate, b.Marshal())
	return err
}

// DeleteReplica destroys the remote replica.
func (a *AdminClient) DeleteReplica(ctx context.Context, oid globeid.OID) error {
	_, err := a.exec(ctx, VerbDelete, oid[:])
	return err
}

// ListReplicas returns the OIDs hosted on the remote server.
func (a *AdminClient) ListReplicas(ctx context.Context) ([]globeid.OID, error) {
	body, err := a.exec(ctx, VerbList, nil)
	if err != nil {
		return nil, err
	}
	r := enc.NewReader(body)
	n := r.Uvarint()
	if n > 1<<20 {
		return nil, fmt.Errorf("server: implausible replica count %d", n)
	}
	oids := make([]globeid.OID, 0, n)
	for i := uint64(0); i < n; i++ {
		var oid globeid.OID
		copy(oid[:], r.Raw(globeid.Size))
		oids = append(oids, oid)
	}
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return oids, nil
}
