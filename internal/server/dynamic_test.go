package server_test

import (
	"context"
	"testing"
	"time"

	"globedoc/internal/deploy"
	"globedoc/internal/document"
	"globedoc/internal/keys"
	"globedoc/internal/keys/keytest"
	"globedoc/internal/netsim"
	"globedoc/internal/server"
)

// dynamicWorld builds a deployment where the amsterdam primary pushes
// replicas to a paris peer under flash crowds.
func dynamicWorld(t *testing.T, threshold int) (*deploy.World, *deploy.Publication, *server.Replicator) {
	t.Helper()
	w, err := deploy.NewWorld(deploy.Options{TimeScale: 0})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)

	// The primary server has an identity key; the paris peer's keystore
	// authorizes it — the server-to-server entry of paper §4.
	primaryKey := keytest.Ed()
	primary, err := w.StartServer(netsim.AmsterdamPrimary, "srv-ams", nil, primaryKey, server.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	peerKS := keys.NewKeystore()
	peerKS.Add("srv-ams", primaryKey.Public())
	if _, err := w.StartServer(netsim.Paris, "srv-paris", peerKS, nil, server.Limits{}); err != nil {
		t.Fatal(err)
	}

	doc := document.New()
	doc.Put(document.Element{Name: "hot.html", Data: []byte("suddenly popular")})
	pub, err := w.Publish(doc, deploy.PublishOptions{Name: "hot.nl", OwnerKey: keytest.RSA()})
	if err != nil {
		t.Fatal(err)
	}

	repl := server.NewReplicator(primary,
		[]server.Peer{{Site: netsim.Paris, Addr: w.Addrs[netsim.Paris]}},
		w.DialFrom(netsim.AmsterdamPrimary),
		w.LocationTree,
		threshold, time.Minute)
	repl.Logf = t.Logf
	return w, pub, repl
}

func TestFlashCrowdCreatesReplica(t *testing.T) {
	w, pub, repl := dynamicWorld(t, 3)
	parisSrv := w.Servers[netsim.Paris]

	client := w.NewSecureClient(netsim.Paris)
	t.Cleanup(client.Close)
	for i := 0; i < 3; i++ {
		if _, err := client.Fetch(context.Background(), pub.OID, "hot.html"); err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
	}
	if !parisSrv.Hosts(pub.OID) {
		t.Fatal("flash crowd did not create paris replica")
	}
	sites := repl.ReplicaSites(pub.OID)
	if len(sites) != 1 || sites[0] != netsim.Paris {
		t.Errorf("ReplicaSites = %v", sites)
	}
	// The new replica is registered: a fresh binding from paris lands on
	// the local replica.
	client2 := w.NewSecureClient(netsim.Paris)
	t.Cleanup(client2.Close)
	res, err := client2.Fetch(context.Background(), pub.OID, "hot.html")
	if err != nil {
		t.Fatal(err)
	}
	if res.ReplicaAddr != "paris:"+deploy.ObjectService {
		t.Errorf("ReplicaAddr = %q, want paris replica", res.ReplicaAddr)
	}
	// The pushed replica still passes every security check (verified by
	// the successful Fetch above), and the integrity certificate came
	// through unmodified.
}

func TestNoReplicationBelowThreshold(t *testing.T) {
	w, pub, _ := dynamicWorld(t, 100)
	client := w.NewSecureClient(netsim.Paris)
	t.Cleanup(client.Close)
	for i := 0; i < 5; i++ {
		if _, err := client.Fetch(context.Background(), pub.OID, "hot.html"); err != nil {
			t.Fatal(err)
		}
	}
	if w.Servers[netsim.Paris].Hosts(pub.OID) {
		t.Fatal("replica created below threshold")
	}
}

func TestLocalTrafficDoesNotTrigger(t *testing.T) {
	w, pub, _ := dynamicWorld(t, 2)
	// Traffic from the primary's own site must not push replicas.
	client := w.NewSecureClient(netsim.AmsterdamPrimary)
	t.Cleanup(client.Close)
	for i := 0; i < 5; i++ {
		if _, err := client.Fetch(context.Background(), pub.OID, "hot.html"); err != nil {
			t.Fatal(err)
		}
	}
	if w.Servers[netsim.Paris].Hosts(pub.OID) {
		t.Fatal("replica created from primary-site traffic")
	}
}

func TestWithdrawColdReplica(t *testing.T) {
	w, pub, repl := dynamicWorld(t, 2)
	now := time.Now()
	repl.Now = func() time.Time { return now }

	client := w.NewSecureClient(netsim.Paris)
	t.Cleanup(client.Close)
	for i := 0; i < 2; i++ {
		if _, err := client.Fetch(context.Background(), pub.OID, "hot.html"); err != nil {
			t.Fatal(err)
		}
	}
	if !w.Servers[netsim.Paris].Hosts(pub.OID) {
		t.Fatal("replica not created")
	}
	// An hour of silence: the replica is cold and withdrawn.
	now = now.Add(time.Hour)
	withdrawn := repl.WithdrawCold(context.Background(), pub.OID)
	if len(withdrawn) != 1 || withdrawn[0] != netsim.Paris {
		t.Fatalf("withdrawn = %v", withdrawn)
	}
	if w.Servers[netsim.Paris].Hosts(pub.OID) {
		t.Fatal("replica still hosted after withdrawal")
	}
	// Location record is gone: a paris client now binds to amsterdam.
	client2 := w.NewSecureClient(netsim.Paris)
	t.Cleanup(client2.Close)
	res, err := client2.Fetch(context.Background(), pub.OID, "hot.html")
	if err != nil {
		t.Fatal(err)
	}
	if res.ReplicaAddr != netsim.AmsterdamPrimary+":"+deploy.ObjectService {
		t.Errorf("ReplicaAddr = %q", res.ReplicaAddr)
	}
}

func TestExportBundle(t *testing.T) {
	w, pub, _ := dynamicWorld(t, 2)
	b, err := w.Servers[netsim.AmsterdamPrimary].ExportBundle(pub.OID)
	if err != nil {
		t.Fatalf("ExportBundle: %v", err)
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("exported bundle invalid: %v", err)
	}
	if b.OID != pub.OID {
		t.Error("OID mismatch")
	}
}
