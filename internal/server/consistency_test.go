package server_test

import (
	"context"
	"testing"
	"time"

	"globedoc/internal/deploy"
	"globedoc/internal/document"
	"globedoc/internal/keys/keytest"
	"globedoc/internal/netsim"
	"globedoc/internal/server"
)

// pullWorld stands up primary (amsterdam) and secondary (paris) replicas
// of one document and a puller keeping paris in sync.
func pullWorld(t *testing.T) (*deploy.World, *deploy.Publication, *server.Puller) {
	t.Helper()
	w, err := deploy.NewWorld(deploy.Options{TimeScale: 0})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	if _, err := w.StartServer(netsim.AmsterdamPrimary, "srv-ams", nil, nil, server.Limits{}); err != nil {
		t.Fatal(err)
	}
	paris, err := w.StartServer(netsim.Paris, "srv-paris", nil, nil, server.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	doc := document.New()
	doc.Put(document.Element{Name: "index.html", Data: []byte("v1")})
	pub, err := w.Publish(doc, deploy.PublishOptions{Name: "pull.nl", OwnerKey: keytest.RSA()})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ReplicateTo(pub, netsim.Paris); err != nil {
		t.Fatal(err)
	}
	puller := server.NewPuller(paris, pub.OID, "owner:pull.nl",
		w.Addrs[netsim.AmsterdamPrimary], w.DialFrom(netsim.Paris), 10*time.Millisecond)
	t.Cleanup(puller.Stop)
	return w, pub, puller
}

func TestPullerNoopWhenFresh(t *testing.T) {
	_, _, puller := pullWorld(t)
	pulled, err := puller.CheckOnce(context.Background())
	if err != nil {
		t.Fatalf("CheckOnce: %v", err)
	}
	if pulled {
		t.Fatal("pulled despite being up to date")
	}
	if puller.Checks() != 1 || puller.Pulls() != 0 {
		t.Errorf("checks=%d pulls=%d", puller.Checks(), puller.Pulls())
	}
}

func TestPullerTransfersNewVersion(t *testing.T) {
	w, pub, puller := pullWorld(t)
	// Owner updates the primary only.
	pub.Doc.Put(document.Element{Name: "index.html", Data: []byte("v2 fresh")})
	if err := w.Reissue(pub, time.Hour, time.Now()); err != nil {
		t.Fatal(err)
	}
	pulled, err := puller.CheckOnce(context.Background())
	if err != nil {
		t.Fatalf("CheckOnce: %v", err)
	}
	if !pulled {
		t.Fatal("stale replica did not pull")
	}
	// The Paris replica now serves v2, verified end to end.
	client := w.NewSecureClient(netsim.Paris)
	t.Cleanup(client.Close)
	res, err := client.Fetch(context.Background(), pub.OID, "index.html")
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Element.Data) != "v2 fresh" {
		t.Errorf("Data = %q", res.Element.Data)
	}
	if res.ReplicaAddr != "paris:"+deploy.ObjectService {
		t.Errorf("served from %q", res.ReplicaAddr)
	}
}

func TestPullerBackgroundLoop(t *testing.T) {
	w, pub, puller := pullWorld(t)
	puller.Start(context.Background())
	puller.Start(context.Background()) // idempotent

	pub.Doc.Put(document.Element{Name: "index.html", Data: []byte("v2 via loop")})
	if err := w.Reissue(pub, time.Hour, time.Now()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for puller.Pulls() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	puller.Stop()
	if puller.Pulls() == 0 {
		t.Fatal("background loop never pulled")
	}
	e, err := w.Servers[netsim.Paris].ExportBundle(pub.OID)
	if err != nil {
		t.Fatal(err)
	}
	if string(e.Elements[0].Data) != "v2 via loop" {
		t.Errorf("replica content = %q", e.Elements[0].Data)
	}
}

func TestPullerRejectsPoisonedPrimary(t *testing.T) {
	// A primary that serves a bundle failing validation cannot poison
	// the replica: Update re-validates everything.
	w, pub, puller := pullWorld(t)
	// Install a DIFFERENT object's state under the same op by updating
	// the primary's hosted doc directly with a mismatched certificate:
	// simplest poisoning attempt here is a version bump without a
	// re-signed certificate. Mutate the primary's document only.
	primary := w.Servers[netsim.AmsterdamPrimary]
	b, err := primary.ExportBundle(pub.OID)
	if err != nil {
		t.Fatal(err)
	}
	b.Elements[0].Data = []byte("poisoned content")
	b.Version += 10
	// Force-install on the primary without validation by bypassing:
	// primary.Update would reject it, so emulate a malicious primary by
	// swapping the stored doc — use the owner path with a forged bundle
	// and expect the *puller* to reject.
	if err := primary.Update(b, "owner:pull.nl"); err == nil {
		t.Fatal("primary accepted invalid bundle (test setup)")
	}
	// The honest primary is intact, so the puller sees nothing to do.
	pulled, err := puller.CheckOnce(context.Background())
	if err != nil || pulled {
		t.Fatalf("CheckOnce = %v, %v", pulled, err)
	}
}

func TestPullerFailureCounting(t *testing.T) {
	w, pub, _ := pullWorld(t)
	// A puller pointed at a dead address fails but counts it.
	dead := server.NewPuller(w.Servers[netsim.Paris], pub.OID, "owner:pull.nl",
		"amsterdam-primary:nothing", w.DialFrom(netsim.Paris), time.Minute)
	t.Cleanup(dead.Stop)
	if _, err := dead.CheckOnce(context.Background()); err == nil {
		t.Fatal("CheckOnce against dead address succeeded")
	}
	if dead.Failures() != 1 {
		t.Errorf("Failures = %d", dead.Failures())
	}
}
