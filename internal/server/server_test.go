package server_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"globedoc/internal/cert"
	"globedoc/internal/document"
	"globedoc/internal/globeid"
	"globedoc/internal/keys"
	"globedoc/internal/keys/keytest"
	"globedoc/internal/netsim"
	"globedoc/internal/object"
	"globedoc/internal/server"
)

var t0 = time.Date(2005, 4, 4, 12, 0, 0, 0, time.UTC)

// makeBundle builds a valid test bundle signed by owner.
func makeBundle(t *testing.T, owner *keys.KeyPair, elems map[string][]byte) *server.Bundle {
	t.Helper()
	oid := globeid.FromPublicKey(owner.Public())
	doc := document.New()
	for name, data := range elems {
		if err := doc.Put(document.Element{Name: name, Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	icert, err := document.IssueCertificate(doc, oid, owner, t0, document.UniformTTL(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	return server.BundleFromDocument(oid, owner.Public(), doc, icert, nil)
}

func TestBundleValidate(t *testing.T) {
	owner := keytest.Ed()
	b := makeBundle(t, owner, map[string][]byte{"index.html": []byte("hi")})
	if err := b.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBundleValidateRejectsWrongKey(t *testing.T) {
	owner := keytest.Ed()
	b := makeBundle(t, owner, map[string][]byte{"a": []byte("a")})
	b.Key = keytest.RSA().Public() // key no longer hashes to OID
	if err := b.Validate(); err == nil {
		t.Fatal("Validate accepted mismatched key")
	}
}

func TestBundleValidateRejectsTamperedElement(t *testing.T) {
	owner := keytest.Ed()
	b := makeBundle(t, owner, map[string][]byte{"a": []byte("genuine")})
	b.Elements[0].Data = []byte("tampered")
	if err := b.Validate(); err == nil {
		t.Fatal("Validate accepted tampered element")
	}
}

func TestBundleValidateRejectsExtraElement(t *testing.T) {
	owner := keytest.Ed()
	b := makeBundle(t, owner, map[string][]byte{"a": []byte("a")})
	b.Elements = append(b.Elements, document.Element{Name: "smuggled", Data: []byte("x")})
	if err := b.Validate(); err == nil {
		t.Fatal("Validate accepted element not in certificate")
	}
}

func TestBundleMarshalRoundTrip(t *testing.T) {
	owner := keytest.Ed()
	b := makeBundle(t, owner, map[string][]byte{"index.html": []byte("<html>"), "logo.png": []byte{1, 2, 3}})
	got, err := server.UnmarshalBundle(b.Marshal())
	if err != nil {
		t.Fatalf("UnmarshalBundle: %v", err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("round-tripped bundle invalid: %v", err)
	}
	if got.TotalBytes() != b.TotalBytes() || len(got.Elements) != 2 {
		t.Errorf("bundle corrupted: %+v", got)
	}
}

func TestUnmarshalBundleRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{nil, {1}, make([]byte, 64)} {
		if _, err := server.UnmarshalBundle(data); err == nil {
			t.Errorf("UnmarshalBundle(%v) succeeded", data)
		}
	}
}

func TestInstallAndServePublicOps(t *testing.T) {
	owner := keytest.Ed()
	srv := server.New("srv", "amsterdam-primary", keys.NewKeystore(), nil, server.Limits{})
	b := makeBundle(t, owner, map[string][]byte{"index.html": []byte("<html>home</html>")})
	if err := srv.Install(b, "owner"); err != nil {
		t.Fatalf("Install: %v", err)
	}

	n := netsim.PaperTestbed(0)
	defer n.Close()
	l, err := n.Listen(netsim.AmsterdamPrimary, "objsvc")
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(l)
	defer srv.Close()

	client := object.NewClient(b.OID, netsim.AmsterdamPrimary+":objsvc",
		n.Dialer(netsim.Paris, netsim.AmsterdamPrimary+":objsvc"))
	defer client.Close()

	if err := client.Ping(context.Background()); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	pk, err := client.GetPublicKey(context.Background())
	if err != nil {
		t.Fatalf("GetPublicKey: %v", err)
	}
	if err := b.OID.Verify(pk); err != nil {
		t.Fatalf("served key fails self-certification: %v", err)
	}
	icert, err := client.GetIntegrityCert(context.Background())
	if err != nil {
		t.Fatalf("GetIntegrityCert: %v", err)
	}
	if err := icert.VerifySignature(b.OID, pk); err != nil {
		t.Fatalf("served certificate invalid: %v", err)
	}
	elem, err := client.GetElement(context.Background(), "index.html")
	if err != nil {
		t.Fatalf("GetElement: %v", err)
	}
	if err := icert.VerifyElement("index.html", elem.Data, t0.Add(time.Minute)); err != nil {
		t.Fatalf("served element fails verification: %v", err)
	}
	names, err := client.ListElements(context.Background())
	if err != nil || len(names) != 1 || names[0] != "index.html" {
		t.Fatalf("ListElements = %v, %v", names, err)
	}
	v, err := client.Version(context.Background())
	if err != nil || v == 0 {
		t.Fatalf("Version = %d, %v", v, err)
	}
	ncs, err := client.GetNameCerts(context.Background())
	if err != nil || len(ncs) != 0 {
		t.Fatalf("GetNameCerts = %v, %v", ncs, err)
	}
	stats := srv.Stats()
	if stats.KeyFetches != 1 || stats.CertFetches != 1 || stats.ElementFetches != 1 {
		t.Errorf("Stats = %+v", stats)
	}
	if srv.ReadCount(b.OID) != 1 {
		t.Errorf("ReadCount = %d", srv.ReadCount(b.OID))
	}
}

func TestInstallValidatesBundle(t *testing.T) {
	srv := server.New("srv", "site", keys.NewKeystore(), nil, server.Limits{})
	owner := keytest.Ed()
	b := makeBundle(t, owner, map[string][]byte{"a": []byte("a")})
	b.Elements[0].Data = []byte("tampered")
	if err := srv.Install(b, "owner"); err == nil {
		t.Fatal("Install accepted invalid bundle")
	}
}

func TestInstallDuplicate(t *testing.T) {
	srv := server.New("srv", "site", keys.NewKeystore(), nil, server.Limits{})
	owner := keytest.Ed()
	b := makeBundle(t, owner, map[string][]byte{"a": []byte("a")})
	if err := srv.Install(b, "owner"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Install(b, "owner"); !errors.Is(err, server.ErrAlreadyHosted) {
		t.Fatalf("err = %v", err)
	}
}

func TestLimitsEnforced(t *testing.T) {
	srv := server.New("srv", "site", keys.NewKeystore(), nil, server.Limits{MaxObjects: 1, MaxBytes: 100})
	a := makeBundle(t, keytest.Ed(), map[string][]byte{"a": make([]byte, 200)})
	if err := srv.Install(a, "owner"); !errors.Is(err, server.ErrOverCapacity) {
		t.Fatalf("byte limit: err = %v", err)
	}
	small := makeBundle(t, keytest.Ed(), map[string][]byte{"a": make([]byte, 10)})
	if err := srv.Install(small, "owner"); err != nil {
		t.Fatalf("Install small: %v", err)
	}
	second := makeBundle(t, keytest.RSA(), map[string][]byte{"b": make([]byte, 10)})
	if err := srv.Install(second, "owner"); !errors.Is(err, server.ErrOverCapacity) {
		t.Fatalf("object limit: err = %v", err)
	}
	if srv.StoredBytes() != 10 {
		t.Errorf("StoredBytes = %d", srv.StoredBytes())
	}
}

func TestUpdateRequiresOwner(t *testing.T) {
	srv := server.New("srv", "site", keys.NewKeystore(), nil, server.Limits{})
	owner := keytest.Ed()
	b := makeBundle(t, owner, map[string][]byte{"a": []byte("v1")})
	if err := srv.Install(b, "alice"); err != nil {
		t.Fatal(err)
	}
	b2 := makeBundle(t, owner, map[string][]byte{"a": []byte("v2")})
	if err := srv.Update(b2, "mallory"); !errors.Is(err, server.ErrAccessDenied) {
		t.Fatalf("err = %v", err)
	}
	if err := srv.Update(b2, "alice"); err != nil {
		t.Fatalf("owner update: %v", err)
	}
}

func TestHostedListing(t *testing.T) {
	srv := server.New("srv", "site", keys.NewKeystore(), nil, server.Limits{})
	b := makeBundle(t, keytest.Ed(), map[string][]byte{"a": []byte("a")})
	srv.Install(b, "owner")
	hosted := srv.Hosted()
	if len(hosted) != 1 || hosted[0] != b.OID {
		t.Errorf("Hosted = %v", hosted)
	}
	if !srv.Hosts(b.OID) {
		t.Error("Hosts = false")
	}
	var other globeid.OID
	other[0] = 0xFF
	if srv.Hosts(other) {
		t.Error("Hosts(unknown) = true")
	}
}

func TestNotHostedErrors(t *testing.T) {
	srv := server.New("srv", "amsterdam-primary", keys.NewKeystore(), nil, server.Limits{})
	n := netsim.PaperTestbed(0)
	defer n.Close()
	l, _ := n.Listen(netsim.AmsterdamPrimary, "objsvc")
	srv.Start(l)
	defer srv.Close()

	var ghost globeid.OID
	ghost[5] = 7
	client := object.NewClient(ghost, netsim.AmsterdamPrimary+":objsvc",
		n.Dialer(netsim.Paris, netsim.AmsterdamPrimary+":objsvc"))
	defer client.Close()
	if _, err := client.GetPublicKey(context.Background()); err == nil {
		t.Fatal("GetPublicKey for unhosted object succeeded")
	}
	if _, err := client.GetElement(context.Background(), "x"); err == nil {
		t.Fatal("GetElement for unhosted object succeeded")
	}
}

func TestNameCertsServed(t *testing.T) {
	owner := keytest.Ed()
	oid := globeid.FromPublicKey(owner.Public())
	ca := &cert.CA{Name: "CA", Key: keytest.Ed()}
	nc, err := ca.IssueNameCertificate(oid, "Subject Corp", t0, t0.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	doc := document.New()
	doc.Put(document.Element{Name: "a", Data: []byte("a")})
	icert, _ := document.IssueCertificate(doc, oid, owner, t0, document.UniformTTL(time.Hour))
	b := server.BundleFromDocument(oid, owner.Public(), doc, icert, []*cert.NameCertificate{nc})

	srv := server.New("srv", "amsterdam-primary", keys.NewKeystore(), nil, server.Limits{})
	if err := srv.Install(b, "owner"); err != nil {
		t.Fatal(err)
	}
	n := netsim.PaperTestbed(0)
	defer n.Close()
	l, _ := n.Listen(netsim.AmsterdamPrimary, "objsvc")
	srv.Start(l)
	defer srv.Close()
	client := object.NewClient(oid, netsim.AmsterdamPrimary+":objsvc",
		n.Dialer(netsim.AmsterdamSecondary, netsim.AmsterdamPrimary+":objsvc"))
	defer client.Close()
	ncs, err := client.GetNameCerts(context.Background())
	if err != nil || len(ncs) != 1 || ncs[0].Subject != "Subject Corp" {
		t.Fatalf("GetNameCerts = %v, %v", ncs, err)
	}
}
