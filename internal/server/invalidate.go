package server

import (
	"context"
	"sync"
	"time"

	"globedoc/internal/enc"
	"globedoc/internal/globeid"
)

// OpWaitVersion is the long-poll consistency operation: the request
// carries (OID, known version, timeout); the reply carries the current
// version, sent immediately if it already exceeds the known version and
// otherwise as soon as an update lands or the timeout lapses. Combined
// with Puller this turns pull consistency into push-latency invalidation
// — the "server invalidation" strategy of ref [13] — without giving the
// untrusted server a channel to push unsolicited (unverifiable) data:
// the reply is just a version number; the replica still pulls and
// validates the bundle itself.
const OpWaitVersion = "obj.waitversion"

// MaxWaitVersion bounds how long a single long-poll may park.
const MaxWaitVersion = 5 * time.Minute

// versionWaiters tracks parked long-polls per object.
type versionWaiters struct {
	mu      sync.Mutex
	waiters map[globeid.OID][]chan struct{}
}

func newVersionWaiters() *versionWaiters {
	return &versionWaiters{waiters: make(map[globeid.OID][]chan struct{})}
}

// wait returns a channel closed at the next update notification for oid,
// plus a cancel function that unsubscribes the channel. A waiter that
// returns without being notified — timeout, cancelled long-poll, early
// answer — MUST call cancel, or its channel would sit in the map until
// the next update for that OID (or forever, for an object never updated
// again): the long-poll waiter leak. cancel is idempotent and safe to
// call after notify.
func (v *versionWaiters) wait(oid globeid.OID) (<-chan struct{}, func()) {
	ch := make(chan struct{})
	v.mu.Lock()
	v.waiters[oid] = append(v.waiters[oid], ch)
	v.mu.Unlock()
	cancel := func() {
		v.mu.Lock()
		defer v.mu.Unlock()
		list := v.waiters[oid]
		for i, c := range list {
			if c == ch {
				list[i] = list[len(list)-1]
				list[len(list)-1] = nil
				v.waiters[oid] = list[:len(list)-1]
				break
			}
		}
		if len(v.waiters[oid]) == 0 {
			delete(v.waiters, oid)
		}
	}
	return ch, cancel
}

// notify wakes every parked waiter for oid.
func (v *versionWaiters) notify(oid globeid.OID) {
	v.mu.Lock()
	chans := v.waiters[oid]
	delete(v.waiters, oid)
	v.mu.Unlock()
	for _, ch := range chans {
		close(ch)
	}
}

// pending reports how many waiters are parked for oid (leak tests).
func (v *versionWaiters) pending(oid globeid.OID) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.waiters[oid])
}

// handleWaitVersion parks until the hosted replica's version exceeds the
// caller's, an update notification arrives, or the timeout lapses; it
// always answers with the current version.
func (s *Server) handleWaitVersion(body []byte) ([]byte, error) {
	r := enc.NewReader(body)
	var oid globeid.OID
	copy(oid[:], r.Raw(globeid.Size))
	known := r.Uvarint()
	timeoutMillis := r.Uvarint()
	if err := r.Finish(); err != nil {
		return nil, err
	}
	deadline := time.NewTimer(clampWaitTimeout(time.Duration(timeoutMillis) * time.Millisecond))
	defer deadline.Stop()
	for {
		h, err := s.replica(oid)
		if err != nil {
			return nil, err
		}
		if v := h.doc.Version(); v > known {
			w := enc.NewWriter(8)
			w.Uvarint(v)
			return w.Bytes(), nil
		}
		updated, cancelWait := s.waiters.wait(oid)
		// Re-check after subscribing: an update may have landed between
		// the version read and the subscription.
		if v := h.doc.Version(); v > known {
			cancelWait()
			w := enc.NewWriter(8)
			w.Uvarint(v)
			return w.Bytes(), nil
		}
		select {
		case <-updated:
			// Loop to read the fresh version.
		case <-deadline.C:
			// Sweep the subscription: without this, every timed-out
			// long-poll leaves a dead channel parked until the next
			// update for the OID.
			cancelWait()
			w := enc.NewWriter(8)
			w.Uvarint(h.doc.Version())
			return w.Bytes(), nil
		}
	}
}

// clampWaitTimeout bounds a client-requested long-poll timeout to
// (0, MaxWaitVersion]: non-positive and over-limit requests both park
// for the maximum.
func clampWaitTimeout(d time.Duration) time.Duration {
	if d <= 0 || d > MaxWaitVersion {
		return MaxWaitVersion
	}
	return d
}

// WaitVersion long-polls the primary at the puller's address until its
// version exceeds known (or the timeout lapses) and returns the current
// remote version.
func (p *Puller) WaitVersion(ctx context.Context, known uint64, timeout time.Duration) (uint64, error) {
	w := enc.NewWriter(32)
	w.Raw(p.oid[:])
	w.Uvarint(known)
	w.Uvarint(uint64(timeout / time.Millisecond))
	body, err := p.client.Call(ctx, OpWaitVersion, w.Bytes())
	if err != nil {
		return 0, err
	}
	r := enc.NewReader(body)
	v := r.Uvarint()
	if err := r.Finish(); err != nil {
		return 0, err
	}
	return v, nil
}

// RunInvalidationLoop keeps the local replica synchronized with
// push-latency: it long-polls the primary for version changes and pulls
// (with full validation) whenever one is signalled. It returns when stop
// is closed or ctx is cancelled.
func (p *Puller) RunInvalidationLoop(ctx context.Context, stop <-chan struct{}, pollTimeout time.Duration) {
	for {
		select {
		case <-stop:
			return
		case <-ctx.Done():
			return
		default:
		}
		h, err := p.server.replica(p.oid)
		if err != nil {
			return // replica withdrawn locally
		}
		local := h.doc.Version()
		remote, err := p.WaitVersion(ctx, local, pollTimeout)
		if err != nil {
			p.failures.Add(1)
			select {
			case <-stop:
				return
			case <-ctx.Done():
				return
			case <-time.After(pollTimeout / 4):
				continue // back off briefly, then retry
			}
		}
		if remote > local {
			if _, err := p.CheckOnce(ctx); err != nil {
				p.failures.Add(1)
			}
		}
	}
}
