package server

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"globedoc/internal/globeid"
	"globedoc/internal/location"
	"globedoc/internal/object"
	"globedoc/internal/replication"
)

// ExportBundle snapshots a hosted replica into a transferable bundle,
// the unit pushed to peer servers during dynamic replication.
func (s *Server) ExportBundle(oid globeid.OID) (*Bundle, error) {
	h, err := s.replica(oid)
	if err != nil {
		return nil, err
	}
	h.mu.RLock()
	icert, nameCerts := h.icert, h.nameCerts
	h.mu.RUnlock()
	return BundleFromDocument(oid, h.key, h.doc, icert, nameCerts), nil
}

// Peer describes a cooperating object server at another site.
type Peer struct {
	Site string
	Addr string
}

// LocationWriter is the slice of the location service the replicator
// needs: recording new contact addresses.
type LocationWriter interface {
	Insert(site string, oid globeid.OID, addr location.ContactAddress) error
	Delete(site string, oid globeid.OID, addr location.ContactAddress) error
}

// Replicator implements dynamic replication (paper §2, §4): it watches
// per-site demand for each hosted object and, when a flash crowd appears
// at a site with a cooperating peer server, pushes a replica there and
// records the new contact address in the location service. This is the
// mechanism the keystore's server-to-server entries exist for.
type Replicator struct {
	server *Server
	peers  map[string]Peer // site -> peer
	dial   object.DialTo
	loc    LocationWriter
	// Now is the clock; tests may replace it.
	Now func() time.Time
	// Threshold and Window configure the flash-crowd trigger per object.
	Threshold int
	Window    time.Duration
	// OnReplicate, if set, is called after each successful push.
	OnReplicate func(oid globeid.OID, site string)
	// Logf, if set, receives diagnostic messages (defaults to log.Printf).
	Logf func(format string, args ...any)

	mu        sync.Mutex
	detectors map[globeid.OID]*replication.FlashCrowdDetector
}

// NewReplicator wires dynamic replication into s: every element read
// observed by s feeds the per-object flash-crowd detector, and triggered
// sites receive a replica via the admin protocol (authenticated with the
// server's own identity key, which must be present in each peer's
// keystore).
func NewReplicator(s *Server, peers []Peer, dial object.DialTo, loc LocationWriter, threshold int, window time.Duration) *Replicator {
	r := &Replicator{
		server:    s,
		peers:     make(map[string]Peer, len(peers)),
		dial:      dial,
		loc:       loc,
		Now:       time.Now,
		Threshold: threshold,
		Window:    window,
		Logf:      log.Printf,
		detectors: make(map[globeid.OID]*replication.FlashCrowdDetector),
	}
	for _, p := range peers {
		r.peers[p.Site] = p
	}
	s.AccessObserver = r.observe
	return r
}

func (r *Replicator) detector(oid globeid.OID) *replication.FlashCrowdDetector {
	r.mu.Lock()
	defer r.mu.Unlock()
	d, ok := r.detectors[oid]
	if !ok {
		d = replication.NewFlashCrowdDetector(r.Threshold, r.Window)
		r.detectors[oid] = d
	}
	return d
}

// observe is installed as the server's AccessObserver.
func (r *Replicator) observe(oid globeid.OID, element, fromSite string) {
	if fromSite == "" || fromSite == r.server.Site {
		return
	}
	peer, ok := r.peers[fromSite]
	if !ok {
		return // nowhere to replicate to at that site
	}
	if !r.detector(oid).RecordAccess(fromSite, r.Now()) {
		return
	}
	//lint:ignore ctxfirst the AccessObserver callback runs on the serving path, which carries no request context; a replication push owns its own lifetime
	ctx := context.Background()
	if err := r.replicateTo(ctx, oid, peer); err != nil {
		r.detector(oid).MarkRemoved(fromSite) // allow retry
		if r.Logf != nil {
			r.Logf("globedoc: dynamic replication of %s to %s failed: %v", oid.Short(), peer.Site, err)
		}
	}
}

// replicateTo pushes oid's bundle to peer and records the new address.
func (r *Replicator) replicateTo(ctx context.Context, oid globeid.OID, peer Peer) error {
	if r.server.identity == nil {
		return fmt.Errorf("server: %s has no identity key for peer pushes", r.server.Name)
	}
	bundle, err := r.server.ExportBundle(oid)
	if err != nil {
		return err
	}
	admin := NewAdminClient(r.server.Name, r.server.identity, r.dial(peer.Addr))
	defer admin.Close()
	if err := admin.CreateReplica(ctx, bundle); err != nil {
		return err
	}
	if r.loc != nil {
		addr := location.ContactAddress{Address: peer.Addr, Protocol: object.Protocol}
		if err := r.loc.Insert(peer.Site, oid, addr); err != nil {
			return fmt.Errorf("server: registering new replica: %w", err)
		}
	}
	if r.OnReplicate != nil {
		r.OnReplicate(oid, peer.Site)
	}
	return nil
}

// ReplicaSites returns the sites this replicator has pushed oid to.
func (r *Replicator) ReplicaSites(oid globeid.OID) []string {
	return r.detector(oid).ReplicaSites()
}

// WithdrawCold removes replicas that have gone cold: for each site whose
// detector reports no recent traffic, the peer replica is deleted and its
// contact address withdrawn from the location service.
func (r *Replicator) WithdrawCold(ctx context.Context, oid globeid.OID) []string {
	d := r.detector(oid)
	var withdrawn []string
	for _, site := range d.ColdReplicas(r.Now()) {
		peer, ok := r.peers[site]
		if !ok {
			continue
		}
		admin := NewAdminClient(r.server.Name, r.server.identity, r.dial(peer.Addr))
		err := admin.DeleteReplica(ctx, oid)
		admin.Close()
		if err != nil {
			if r.Logf != nil {
				r.Logf("globedoc: withdrawing %s from %s failed: %v", oid.Short(), site, err)
			}
			continue
		}
		if r.loc != nil {
			addr := location.ContactAddress{Address: peer.Addr, Protocol: object.Protocol}
			if err := r.loc.Delete(peer.Site, oid, addr); err != nil && r.Logf != nil {
				r.Logf("globedoc: deregistering %s at %s failed: %v", oid.Short(), site, err)
			}
		}
		d.MarkRemoved(site)
		withdrawn = append(withdrawn, site)
	}
	return withdrawn
}
