package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"globedoc/internal/cert"
	"globedoc/internal/document"
	"globedoc/internal/enc"
	"globedoc/internal/globeid"
	"globedoc/internal/keys"
	"globedoc/internal/object"
	"globedoc/internal/telemetry"
	"globedoc/internal/transport"
)

// Errors reported by the object server.
var (
	ErrNotHosted     = errors.New("server: object not hosted here")
	ErrAccessDenied  = errors.New("server: access denied")
	ErrAlreadyHosted = errors.New("server: object already hosted")
	ErrOverCapacity  = errors.New("server: resource limits exceeded")
)

// Limits bounds the resources a server commits to hosted replicas — the
// raw material of the hosting-negotiation mechanism (paper §6).
type Limits struct {
	// MaxObjects caps the number of hosted replicas (0 = unlimited).
	MaxObjects int
	// MaxBytes caps the summed element storage (0 = unlimited).
	MaxBytes int64
}

// hostedReplica is one replica local representative, decomposed into the
// four classic Globe subobjects:
//
//	semantics     — the document state itself,
//	replication   — the consistency bookkeeping (version),
//	communication — handled by the shared transport server,
//	control       — the handler glue in this package.
type hostedReplica struct {
	oid globeid.OID
	key keys.PublicKey

	// semantics subobject
	doc *document.Document
	// security state every replica must store (paper §3.2.2)
	mu        sync.RWMutex
	icert     *cert.IntegrityCertificate
	nameCerts []*cert.NameCertificate
	// wire holds the marshalled response payloads, precomputed once per
	// document version (rebuilt only by Install/update, the sole state
	// mutation points). Handlers serve these shared slices copy-free:
	// the table and certificate payloads for a version are immutable, so
	// per-request marshalling — dominated by the O(elements) certificate
	// table — would be pure waste.
	wire wirePayloads
	// chain holds the retained versions as immutable snapshots linked by
	// a hash chain, oldest first; the last entry is the version currently
	// served (its wire payloads ARE h.wire). Guarded by mu. See
	// version.go and DESIGN.md §16.
	chain []*versionSnapshot

	// administrative metadata
	owner string // principal that created this replica (may manage it)

	// access statistics feeding dynamic replication
	reads atomic.Uint64
}

// wirePayloads are a replica's precomputed wire responses for one
// document version. The byte slices are shared with every response and
// must never be mutated.
type wirePayloads struct {
	key       []byte
	icert     []byte
	nameCerts []byte
	elements  map[string]elementPayload
}

// elementPayload pairs an element's encoded response with its content
// size (the stats and AccessObserver inputs).
type elementPayload struct {
	wire []byte
	size int
}

// buildWire precomputes every response payload for the replica's current
// state. Callers must hold h.mu (or have exclusive access to a replica
// not yet published).
func buildWire(key keys.PublicKey, doc *document.Document, icert *cert.IntegrityCertificate, nameCerts []*cert.NameCertificate) wirePayloads {
	w := wirePayloads{
		key:       key.Marshal(),
		icert:     icert.Marshal(),
		nameCerts: object.EncodeCertList(nameCerts),
		elements:  make(map[string]elementPayload),
	}
	for _, name := range doc.Names() {
		e, err := doc.Get(name)
		if err != nil {
			continue
		}
		w.elements[name] = elementPayload{wire: object.EncodeElement(e), size: len(e.Data)}
	}
	return w
}

// wireFromBundle precomputes the wire payloads for a validated bundle's
// state, byte-identical to buildWire over a document holding the same
// elements. update uses it so the version chain can be extended and
// verified before the bundle's state commits.
func wireFromBundle(b *Bundle) wirePayloads {
	w := wirePayloads{
		key:       b.Key.Marshal(),
		icert:     b.Cert.Marshal(),
		nameCerts: object.EncodeCertList(b.NameCerts),
		elements:  make(map[string]elementPayload, len(b.Elements)),
	}
	for _, e := range b.Elements {
		w.elements[e.Name] = elementPayload{wire: object.EncodeElement(e), size: len(e.Data)}
	}
	return w
}

// Stats are cumulative per-category request counters, split the way the
// paper's Figure 4 instrumentation splits time: security-specific
// operations (key and certificate retrieval) versus data operations.
type Stats struct {
	KeyFetches     uint64
	CertFetches    uint64
	ElementFetches uint64
	BytesServed    uint64
}

// Server is a Globe object server.
type Server struct {
	// Name identifies the server principal (for peer keystores).
	Name string
	// Site is the location-service site this server lives at.
	Site string

	keystore *keys.Keystore
	identity *keys.KeyPair // the server's own key pair (for pushing to peers)
	limits   Limits

	// VersionRetention caps how many versions of each hosted replica are
	// retained for delta serving (0 = DefaultVersionRetention). Set
	// before the server starts hosting replicas.
	VersionRetention int

	mu     sync.RWMutex
	hosted map[globeid.OID]*hostedReplica
	bytes  int64

	waiters *versionWaiters

	nonceMu sync.Mutex
	nonces  map[string][]byte

	srv *transport.Server

	statKeyFetches     atomic.Uint64
	statCertFetches    atomic.Uint64
	statElementFetches atomic.Uint64
	statBytesServed    atomic.Uint64

	// AccessObserver, if set, is called for every element read with the
	// client's advisory site hint (empty when unknown); dynamic
	// replication hooks in here.
	AccessObserver func(oid globeid.OID, element, fromSite string)
}

// New creates an object server. keystore lists the principals allowed to
// create replicas; identity is the server's own key pair, used when this
// server pushes replicas to peers (may be nil for a leaf server).
func New(name, site string, keystore *keys.Keystore, identity *keys.KeyPair, limits Limits) *Server {
	s := &Server{
		Name:     name,
		Site:     site,
		keystore: keystore,
		identity: identity,
		limits:   limits,
		hosted:   make(map[globeid.OID]*hostedReplica),
		nonces:   make(map[string][]byte),
		srv:      transport.NewServer(),
		waiters:  newVersionWaiters(),
	}
	s.srv.Handle(object.OpPing, func(body []byte) ([]byte, error) { return nil, nil })
	s.srv.HandleCtx(object.OpGetKey, s.traced("serve.getkey", s.handleGetKey))
	s.srv.HandleCtx(object.OpGetCert, s.traced("serve.getcert", s.handleGetCert))
	s.srv.HandleCtx(object.OpGetNameCerts, s.traced("serve.getnamecerts", s.handleGetNameCerts))
	s.srv.HandleCtx(object.OpGetElement, s.traced("serve.getelement", s.handleGetElement))
	s.srv.HandleCtx(object.OpGetElements, s.traced("serve.getelements", s.handleGetElements))
	s.srv.HandleCtx(object.OpListElements, s.traced("serve.listelements", s.handleListElements))
	s.srv.Handle(object.OpVersion, s.handleVersion)
	s.srv.Handle(object.OpGetBundle, s.handleGetBundle)
	s.srv.Handle(OpGetDelta, s.handleGetDelta)
	s.srv.Handle(OpWaitVersion, s.handleWaitVersion)
	s.srv.Handle(OpChallenge, s.handleChallenge)
	s.srv.Handle(OpAdmin, s.handleAdmin)
	return s
}

// SetIdleTimeout bounds how long a client connection may sit silent
// between frames before the server drops it, so stalled or half-dead
// peers cannot pin handler goroutines forever. Call before Start/Serve.
func (s *Server) SetIdleTimeout(d time.Duration) { s.srv.IdleTimeout = d }

// SetTelemetry wires the transport layer's per-RPC spans and
// rpc_served_total counters to tel. Call before Start/Serve.
func (s *Server) SetTelemetry(tel *telemetry.Telemetry) { s.srv.Telemetry = tel }

// Serve accepts connections on l until closed.
func (s *Server) Serve(l net.Listener) error { return s.srv.Serve(l) }

// Start serves on a background goroutine.
func (s *Server) Start(l net.Listener) { s.srv.Start(l) }

// Close shuts the server down.
func (s *Server) Close() { s.srv.Close() }

// Stats returns a snapshot of the request counters.
func (s *Server) Stats() Stats {
	return Stats{
		KeyFetches:     s.statKeyFetches.Load(),
		CertFetches:    s.statCertFetches.Load(),
		ElementFetches: s.statElementFetches.Load(),
		BytesServed:    s.statBytesServed.Load(),
	}
}

// Hosted returns the OIDs of all hosted replicas, sorted by string form.
func (s *Server) Hosted() []globeid.OID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	oids := make([]globeid.OID, 0, len(s.hosted))
	for oid := range s.hosted {
		oids = append(oids, oid)
	}
	sort.Slice(oids, func(i, j int) bool { return oids[i].String() < oids[j].String() })
	return oids
}

// Hosts reports whether this server has a replica of oid.
func (s *Server) Hosts(oid globeid.OID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.hosted[oid]
	return ok
}

// StoredBytes returns the element bytes currently hosted.
func (s *Server) StoredBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// Install hosts a validated bundle directly (the in-process path used by
// owners co-located with their permanent-storage server; remote callers
// go through the admin protocol). owner is the managing principal.
func (s *Server) Install(b *Bundle, owner string) error {
	if err := b.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.hosted[b.OID]; exists {
		return fmt.Errorf("%w: %s", ErrAlreadyHosted, b.OID.Short())
	}
	size := int64(b.TotalBytes())
	if s.limits.MaxObjects > 0 && len(s.hosted) >= s.limits.MaxObjects {
		return fmt.Errorf("%w: object limit %d", ErrOverCapacity, s.limits.MaxObjects)
	}
	if s.limits.MaxBytes > 0 && s.bytes+size > s.limits.MaxBytes {
		return fmt.Errorf("%w: byte limit %d", ErrOverCapacity, s.limits.MaxBytes)
	}
	doc := document.New()
	doc.Replace(b.Elements, b.Version)
	wire := buildWire(b.Key, doc, b.Cert, b.NameCerts)
	chain := []*versionSnapshot{newSnapshot(b, [globeid.Size]byte{}, wire)}
	if err := verifyChain(chain); err != nil {
		return err
	}
	s.hosted[b.OID] = &hostedReplica{
		oid:       b.OID,
		key:       b.Key,
		doc:       doc,
		icert:     b.Cert,
		nameCerts: b.NameCerts,
		owner:     owner,
		wire:      wire,
		chain:     chain,
	}
	s.bytes += size
	return nil
}

// Update replaces a hosted replica's state; principal must match the
// owner recorded at Install time. This is the in-process owner path; the
// remote path is AdminClient.UpdateReplica.
func (s *Server) Update(b *Bundle, principal string) error {
	return s.update(b, principal)
}

// update replaces a hosted replica's state; principal must be the owner.
func (s *Server) update(b *Bundle, principal string) error {
	if err := b.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.hosted[b.OID]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotHosted, b.OID.Short())
	}
	if h.owner != principal {
		return fmt.Errorf("%w: replica owned by %q", ErrAccessDenied, h.owner)
	}
	oldSize := int64(h.doc.TotalSize())
	newSize := int64(b.TotalBytes())
	if s.limits.MaxBytes > 0 && s.bytes-oldSize+newSize > s.limits.MaxBytes {
		return fmt.Errorf("%w: byte limit %d", ErrOverCapacity, s.limits.MaxBytes)
	}
	// The new wire table is computed from the validated bundle directly
	// so the chain can be extended and checked before any state commits;
	// it is byte-identical to rebuilding from the document afterwards.
	wire := wireFromBundle(b)
	h.mu.Lock()
	chain, err := appendVersion(h.chain, b, wire, s.retention())
	if err != nil {
		h.mu.Unlock()
		return err
	}
	h.doc.Replace(b.Elements, b.Version)
	h.icert = b.Cert
	h.nameCerts = b.NameCerts
	h.wire = wire
	h.chain = chain
	h.mu.Unlock()
	s.bytes += newSize - oldSize
	s.waiters.notify(b.OID)
	return nil
}

// remove destroys a hosted replica; principal must be the owner.
func (s *Server) remove(oid globeid.OID, principal string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.hosted[oid]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotHosted, oid.Short())
	}
	if h.owner != principal {
		return fmt.Errorf("%w: replica owned by %q", ErrAccessDenied, h.owner)
	}
	s.bytes -= int64(h.doc.TotalSize())
	delete(s.hosted, oid)
	return nil
}

func (s *Server) replica(oid globeid.OID) (*hostedReplica, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h, ok := s.hosted[oid]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotHosted, oid.Short())
	}
	return h, nil
}

// --- public (anonymous) handlers -----------------------------------------

// traced wraps a fetch-path handler in a server-side span that continues
// the trace context the transport layer adopted from the wire (the
// rpc.serve span). The wrapped handler sees a context carrying the new
// span, so it can hang further child spans (e.g. per-element serves)
// under it; handler errors are annotated so errored serves export even
// when the trace is unsampled.
func (s *Server) traced(name string, h transport.HandlerCtx) transport.HandlerCtx {
	return func(ctx context.Context, body []byte) ([]byte, error) {
		sp := telemetry.Or(s.srv.Telemetry).Tracer.StartSpanFrom(name, telemetry.SpanContextFrom(ctx))
		defer sp.End()
		resp, err := h(telemetry.ContextWith(ctx, sp.Context()), body)
		if err != nil {
			sp.Annotate("error", err.Error())
		}
		return resp, err
	}
}

func (s *Server) handleGetKey(ctx context.Context, body []byte) ([]byte, error) {
	oid, err := object.DecodeOIDRequest(body)
	if err != nil {
		return nil, err
	}
	h, err := s.replica(oid)
	if err != nil {
		return nil, err
	}
	s.statKeyFetches.Add(1)
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.wire.key, nil
}

func (s *Server) handleGetCert(ctx context.Context, body []byte) ([]byte, error) {
	oid, err := object.DecodeOIDRequest(body)
	if err != nil {
		return nil, err
	}
	h, err := s.replica(oid)
	if err != nil {
		return nil, err
	}
	s.statCertFetches.Add(1)
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.wire.icert, nil
}

func (s *Server) handleGetNameCerts(ctx context.Context, body []byte) ([]byte, error) {
	oid, err := object.DecodeOIDRequest(body)
	if err != nil {
		return nil, err
	}
	h, err := s.replica(oid)
	if err != nil {
		return nil, err
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.wire.nameCerts, nil
}

// serveElement records stats, fires the access observer and emits the
// per-element payload-serve span common to the single and batched
// element paths.
func (s *Server) serveElement(ctx context.Context, h *hostedReplica, oid globeid.OID, name, fromSite string, size int) {
	sp := telemetry.Or(s.srv.Telemetry).Tracer.StartSpanFrom("serve.element", telemetry.SpanContextFrom(ctx))
	sp.Annotate("element", name)
	h.reads.Add(1)
	s.statElementFetches.Add(1)
	s.statBytesServed.Add(uint64(size))
	if obs := s.AccessObserver; obs != nil {
		obs(oid, name, fromSite)
	}
	sp.End()
}

func (s *Server) handleGetElement(ctx context.Context, body []byte) ([]byte, error) {
	oid, name, fromSite, err := object.DecodeElementRequest(body)
	if err != nil {
		return nil, err
	}
	h, err := s.replica(oid)
	if err != nil {
		return nil, err
	}
	h.mu.RLock()
	p, ok := h.wire.elements[name]
	h.mu.RUnlock()
	if !ok {
		// Fall through to the document for the precise not-found error.
		if _, derr := h.doc.Get(name); derr != nil {
			return nil, derr
		}
		return nil, fmt.Errorf("server: element %q has no precomputed payload", name)
	}
	s.serveElement(ctx, h, oid, name, fromSite, p.size)
	return p.wire, nil
}

// handleGetElements serves a whole batch of elements from the replica's
// precomputed wire payloads in one exchange. Items that cannot be
// served — unknown names, or elements past the response frame budget —
// are marked per item so the client fetches them individually;
// per-element stats and the access observer fire exactly as they do for
// serial fetches.
func (s *Server) handleGetElements(ctx context.Context, body []byte) ([]byte, error) {
	oid, names, fromSite, err := object.DecodeElementsRequest(body)
	if err != nil {
		return nil, err
	}
	h, err := s.replica(oid)
	if err != nil {
		return nil, err
	}
	const budget = transport.MaxFrame - 64*1024 // headroom for item framing
	items := make([]object.BatchWireItem, 0, len(names))
	total := 0
	for _, name := range names {
		it := object.BatchWireItem{Name: name}
		h.mu.RLock()
		p, ok := h.wire.elements[name]
		h.mu.RUnlock()
		switch {
		case !ok:
			if _, derr := h.doc.Get(name); derr != nil {
				it.ErrMsg = derr.Error()
			} else {
				it.ErrMsg = fmt.Sprintf("element %q has no precomputed payload", name)
			}
		case total+len(p.wire) > budget:
			it.ErrMsg = "batch response frame budget exceeded; fetch element individually"
		default:
			it.Wire = p.wire
			total += len(p.wire)
			s.serveElement(ctx, h, oid, name, fromSite, p.size)
		}
		items = append(items, it)
	}
	return object.EncodeElementsResponse(items), nil
}

func (s *Server) handleListElements(ctx context.Context, body []byte) ([]byte, error) {
	oid, err := object.DecodeOIDRequest(body)
	if err != nil {
		return nil, err
	}
	h, err := s.replica(oid)
	if err != nil {
		return nil, err
	}
	return object.EncodeStringList(h.doc.Names()), nil
}

func (s *Server) handleVersion(body []byte) ([]byte, error) {
	oid, err := object.DecodeOIDRequest(body)
	if err != nil {
		return nil, err
	}
	h, err := s.replica(oid)
	if err != nil {
		return nil, err
	}
	w := enc.NewWriter(8)
	w.Uvarint(h.doc.Version())
	return w.Bytes(), nil
}

// ReadCount returns how many element reads a hosted replica has served
// (0 for objects not hosted here).
func (s *Server) ReadCount(oid globeid.OID) uint64 {
	h, err := s.replica(oid)
	if err != nil {
		return 0
	}
	return h.reads.Load()
}
