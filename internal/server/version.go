package server

import (
	"fmt"

	"globedoc/internal/cert"
	"globedoc/internal/document"
	"globedoc/internal/enc"
	"globedoc/internal/globeid"
	"globedoc/internal/merkle"
)

// DefaultVersionRetention is how many versions of a hosted replica a
// server keeps when Server.VersionRetention is unset. Retained versions
// are what obj.getdelta can diff against; a client whose have-version has
// been evicted gets a full-bundle-required decline.
const DefaultVersionRetention = 8

// VersionHeader commits one replica version to the hash chain
// (DESIGN.md §16). CertHash and ElemRoot commit to the version's
// *content* (the integrity certificate and the element-hash set it
// lists); Prev commits to the entire history by naming the previous
// header's hash. Two servers that applied the same bundle always agree
// on CertHash/ElemRoot even when their local histories differ, which is
// what lets a delta client match a remote chain against its own state.
type VersionHeader struct {
	OID     globeid.OID
	Version uint64
	// CertHash is the hash of the version's marshalled integrity
	// certificate.
	CertHash [globeid.Size]byte
	// ElemRoot is merkle.RootFromLeaves over the version's present
	// elements' cert-listed content hashes.
	ElemRoot [globeid.Size]byte
	// Prev is the previous header's Hash (zero for a chain genesis).
	Prev [globeid.Size]byte
}

// Marshal encodes the header canonically.
func (h *VersionHeader) Marshal() []byte {
	w := enc.NewWriter(4 * globeid.Size)
	w.Raw(h.OID[:])
	w.Uvarint(h.Version)
	w.Raw(h.CertHash[:])
	w.Raw(h.ElemRoot[:])
	w.Raw(h.Prev[:])
	return w.Bytes()
}

// UnmarshalVersionHeader decodes an encoding from Marshal.
func UnmarshalVersionHeader(data []byte) (*VersionHeader, error) {
	r := enc.NewReader(data)
	var h VersionHeader
	copy(h.OID[:], r.Raw(globeid.Size))
	h.Version = r.Uvarint()
	copy(h.CertHash[:], r.Raw(globeid.Size))
	copy(h.ElemRoot[:], r.Raw(globeid.Size))
	copy(h.Prev[:], r.Raw(globeid.Size))
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("server: version header decode: %w", err)
	}
	return &h, nil
}

// Hash returns the header's chain hash: the content hash of its
// canonical encoding.
func (h *VersionHeader) Hash() [globeid.Size]byte {
	return globeid.HashElement(h.Marshal())
}

// versionSnapshot is one immutable retained version of a hosted replica:
// its chain header, the element-hash leaf set the header's ElemRoot
// commits to, the certificates, and the precomputed wire payloads
// (reused as the live wire table while the snapshot is the head).
type versionSnapshot struct {
	header    *VersionHeader
	hashes    map[string][globeid.Size]byte
	cert      *cert.IntegrityCertificate
	nameCerts []*cert.NameCertificate
	wire      wirePayloads
}

// bundleLeaves extracts a bundle's (element name -> cert-listed content
// hash) leaf map. Bundle.Validate has already pinned each present
// element's data to the certificate entry, so the cert hash and the
// content hash agree.
func bundleLeaves(b *Bundle) map[string][globeid.Size]byte {
	leaves := make(map[string][globeid.Size]byte, len(b.Elements))
	for _, e := range b.Elements {
		if entry, err := b.Cert.Lookup(e.Name); err == nil {
			leaves[e.Name] = entry.Hash
		}
	}
	return leaves
}

// newSnapshot builds the retained version for a validated bundle, linked
// to the previous header's hash (zero for a genesis).
func newSnapshot(b *Bundle, prev [globeid.Size]byte, wire wirePayloads) *versionSnapshot {
	leaves := bundleLeaves(b)
	return &versionSnapshot{
		header: &VersionHeader{
			OID:      b.OID,
			Version:  b.Version,
			CertHash: globeid.HashElement(b.Cert.Marshal()),
			ElemRoot: merkle.RootFromLeaves(leaves),
			Prev:     prev,
		},
		hashes:    leaves,
		cert:      b.Cert,
		nameCerts: b.NameCerts,
		wire:      wire,
	}
}

// verifyChain walks a replica's retained chain and checks the hash-chain
// invariants: one OID throughout, strictly increasing versions, and
// every header's Prev equal to its predecessor's hash. The oldest
// retained header may point at an evicted predecessor (or be a genesis);
// only the links between retained headers are checkable. Install and
// update run this before committing, so a broken chain can never become
// the served state.
func verifyChain(chain []*versionSnapshot) error {
	if len(chain) == 0 {
		return fmt.Errorf("server: empty version chain")
	}
	for i, snap := range chain {
		if snap.header.OID != chain[0].header.OID {
			return fmt.Errorf("server: version chain mixes OIDs at index %d", i)
		}
		if i == 0 {
			continue
		}
		prev := chain[i-1].header
		if snap.header.Version <= prev.Version {
			return fmt.Errorf("server: version chain not increasing: %d after %d", snap.header.Version, prev.Version)
		}
		if snap.header.Prev != prev.Hash() {
			return fmt.Errorf("server: version chain broken between %d and %d", prev.Version, snap.header.Version)
		}
	}
	return nil
}

// appendVersion produces the replica's next retained chain for a
// validated update bundle. A bundle whose version does not advance past
// the current head (owners may republish or reset version counters)
// starts a fresh genesis chain — the old history cannot commit to it, so
// retaining the old links would break the chain invariant. Otherwise the
// new header links to the head and the chain is trimmed to retention.
func appendVersion(chain []*versionSnapshot, b *Bundle, wire wirePayloads, retention int) ([]*versionSnapshot, error) {
	head := chain[len(chain)-1]
	var next []*versionSnapshot
	if b.Version <= head.header.Version {
		next = []*versionSnapshot{newSnapshot(b, [globeid.Size]byte{}, wire)}
	} else {
		next = append(next, chain...)
		next = append(next, newSnapshot(b, head.header.Hash(), wire))
		if len(next) > retention {
			next = next[len(next)-retention:]
		}
	}
	if err := verifyChain(next); err != nil {
		return nil, err
	}
	return next, nil
}

// retention returns the effective per-replica version retention.
func (s *Server) retention() int {
	if s.VersionRetention > 0 {
		return s.VersionRetention
	}
	return DefaultVersionRetention
}

// VersionChain returns copies of the retained version headers for a
// hosted replica, oldest first. The head entry describes the currently
// served state.
func (s *Server) VersionChain(oid globeid.OID) ([]VersionHeader, error) {
	h, err := s.replica(oid)
	if err != nil {
		return nil, err
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]VersionHeader, len(h.chain))
	for i, snap := range h.chain {
		out[i] = *snap.header
	}
	return out, nil
}

// snapshotElements returns copies of the head snapshot's elements from
// the live document; callers must hold h.mu (read or write) so the doc
// and the chain head agree.
func snapshotElements(h *hostedReplica, names []string) ([]document.Element, error) {
	out := make([]document.Element, 0, len(names))
	for _, name := range names {
		e, err := h.doc.Get(name)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}
