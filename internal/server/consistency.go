package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"globedoc/internal/enc"
	"globedoc/internal/globeid"
	"globedoc/internal/object"
	"globedoc/internal/transport"
)

// handleGetBundle serves a replica's complete state for consistency
// transfers. Everything in the bundle is public data the anonymous read
// protocol already exposes piecewise.
func (s *Server) handleGetBundle(body []byte) ([]byte, error) {
	oid, err := object.DecodeOIDRequest(body)
	if err != nil {
		return nil, err
	}
	b, err := s.ExportBundle(oid)
	if err != nil {
		return nil, err
	}
	return b.Marshal(), nil
}

// Puller implements pull-based replica consistency — the replication
// subobject of a secondary replica LR. It periodically asks the primary
// replica for its state version and, when the local copy is stale,
// transfers and validates the new bundle. Combined with the owner's
// certificate re-issuing this yields the "cache with TTL refresh"
// strategies of internal/replication at runtime.
type Puller struct {
	server      *Server
	oid         globeid.OID
	owner       string // principal the local replica is managed under
	primaryAddr string
	client      *transport.Client
	// Interval between version checks.
	Interval time.Duration

	checks   atomic.Uint64
	pulls    atomic.Uint64
	failures atomic.Uint64

	mu      sync.Mutex
	stop    chan struct{}
	stopped sync.WaitGroup
}

// NewPuller builds a consistency puller keeping s's replica of oid in
// sync with the primary replica at primaryAddr. owner must be the
// principal the local replica was installed under.
func NewPuller(s *Server, oid globeid.OID, owner, primaryAddr string, dial object.DialTo, interval time.Duration) *Puller {
	return &Puller{
		server:      s,
		oid:         oid,
		owner:       owner,
		primaryAddr: primaryAddr,
		client:      transport.NewClient(dial(primaryAddr)),
		Interval:    interval,
	}
}

// Checks returns how many version probes the puller has made.
func (p *Puller) Checks() uint64 { return p.checks.Load() }

// Pulls returns how many state transfers the puller has performed.
func (p *Puller) Pulls() uint64 { return p.pulls.Load() }

// Failures returns how many check/pull attempts errored.
func (p *Puller) Failures() uint64 { return p.failures.Load() }

// CheckOnce probes the primary's version and pulls the new state if the
// local replica is stale. It reports whether a transfer happened.
func (p *Puller) CheckOnce(ctx context.Context) (bool, error) {
	p.checks.Add(1)
	remoteVersion, err := p.remoteVersion(ctx)
	if err != nil {
		p.failures.Add(1)
		return false, err
	}
	h, err := p.server.replica(p.oid)
	if err != nil {
		p.failures.Add(1)
		return false, err
	}
	if h.doc.Version() >= remoteVersion {
		return false, nil
	}
	body, err := p.client.Call(ctx, object.OpGetBundle, object.EncodeOIDRequest(p.oid))
	if err != nil {
		p.failures.Add(1)
		return false, fmt.Errorf("server: pulling bundle: %w", err)
	}
	bundle, err := UnmarshalBundle(body)
	if err != nil {
		p.failures.Add(1)
		return false, err
	}
	if bundle.OID != p.oid {
		p.failures.Add(1)
		return false, fmt.Errorf("server: primary returned bundle for %s", bundle.OID.Short())
	}
	// Update validates the bundle (key vs OID, certificate signature,
	// element hashes) before installing — a lying primary cannot poison
	// the replica.
	if err := p.server.Update(bundle, p.owner); err != nil {
		p.failures.Add(1)
		return false, err
	}
	p.pulls.Add(1)
	return true, nil
}

func (p *Puller) remoteVersion(ctx context.Context) (uint64, error) {
	body, err := p.client.Call(ctx, object.OpVersion, object.EncodeOIDRequest(p.oid))
	if err != nil {
		return 0, err
	}
	r := enc.NewReader(body)
	v := r.Uvarint()
	if err := r.Finish(); err != nil {
		return 0, err
	}
	return v, nil
}

// Start launches the periodic check loop; ctx cancellation and Stop
// both halt it. Calling Start twice without Stop is a no-op.
func (p *Puller) Start(ctx context.Context) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stop != nil {
		return
	}
	stop := make(chan struct{})
	p.stop = stop
	p.stopped.Add(1)
	go func() {
		defer p.stopped.Done()
		ticker := time.NewTicker(p.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				return
			case <-ticker.C:
				_, _ = p.CheckOnce(ctx) // failures are counted; loop continues
			}
		}
	}()
}

// Stop halts the loop and releases the connection.
func (p *Puller) Stop() {
	p.mu.Lock()
	stop := p.stop
	p.stop = nil
	p.mu.Unlock()
	if stop != nil {
		close(stop)
		p.stopped.Wait()
	}
	p.client.Close()
}
