package server

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"globedoc/internal/document"
	"globedoc/internal/enc"
	"globedoc/internal/globeid"
	"globedoc/internal/merkle"
	"globedoc/internal/object"
	"globedoc/internal/telemetry"
	"globedoc/internal/transport"
)

// handleGetBundle serves a replica's complete state for consistency
// transfers. Everything in the bundle is public data the anonymous read
// protocol already exposes piecewise.
func (s *Server) handleGetBundle(body []byte) ([]byte, error) {
	oid, err := object.DecodeOIDRequest(body)
	if err != nil {
		return nil, err
	}
	b, err := s.ExportBundle(oid)
	if err != nil {
		return nil, err
	}
	return b.Marshal(), nil
}

// Puller implements pull-based replica consistency — the replication
// subobject of a secondary replica LR. It periodically asks the primary
// replica for its state version and, when the local copy is stale,
// transfers and validates the new state. Transfers prefer the
// Merkle-delta path (obj.getdelta, DESIGN.md §16), which moves only the
// elements whose cert-listed hash changed; any delta failure — decode
// error, broken chain, decline, or validation rejection — falls back to
// the full obj.getbundle transfer, and a primary that predates the delta
// op latches the fallback permanently (the lookup2Unsupported pattern).
// Combined with the owner's certificate re-issuing this yields the
// "cache with TTL refresh" strategies of internal/replication at runtime.
type Puller struct {
	server      *Server
	oid         globeid.OID
	owner       string // principal the local replica is managed under
	primaryAddr string
	client      *transport.Client
	// Interval between version checks.
	Interval time.Duration
	// DisableDelta forces every transfer down the full-bundle path (the
	// bench ablation knob and an operational escape hatch).
	DisableDelta bool

	tel atomic.Pointer[telemetry.Telemetry]

	checks   atomic.Uint64
	pulls    atomic.Uint64
	failures atomic.Uint64

	// deltaUnsupported latches after the primary refuses obj.getdelta as
	// an unknown operation, so a fleet of old primaries costs one failed
	// probe per puller, not one per check.
	deltaUnsupported atomic.Bool

	fullPulls      atomic.Uint64
	deltaPulls     atomic.Uint64
	bytesFull      atomic.Uint64
	bytesDelta     atomic.Uint64
	deltaDeclines  atomic.Uint64
	deltaFallbacks atomic.Uint64

	mu      sync.Mutex
	stop    chan struct{}
	stopped sync.WaitGroup
}

// NewPuller builds a consistency puller keeping s's replica of oid in
// sync with the primary replica at primaryAddr. owner must be the
// principal the local replica was installed under.
func NewPuller(s *Server, oid globeid.OID, owner, primaryAddr string, dial object.DialTo, interval time.Duration) *Puller {
	return &Puller{
		server:      s,
		oid:         oid,
		owner:       owner,
		primaryAddr: primaryAddr,
		client:      transport.NewClient(dial(primaryAddr)),
		Interval:    interval,
	}
}

// SetTelemetry wires the puller's transfer counters (puller_pulls_total,
// puller_bytes_total, ...) to tel, surfacing them on /debugz. Unwired
// pullers record to the shared Default().
func (p *Puller) SetTelemetry(tel *telemetry.Telemetry) { p.tel.Store(tel) }

func (p *Puller) telemetry() *telemetry.Telemetry { return telemetry.Or(p.tel.Load()) }

// Checks returns how many version probes the puller has made.
func (p *Puller) Checks() uint64 { return p.checks.Load() }

// Pulls returns how many state transfers the puller has performed.
func (p *Puller) Pulls() uint64 { return p.pulls.Load() }

// Failures returns how many check/pull attempts errored.
func (p *Puller) Failures() uint64 { return p.failures.Load() }

// FullPulls returns how many transfers used the full-bundle path.
func (p *Puller) FullPulls() uint64 { return p.fullPulls.Load() }

// DeltaPulls returns how many transfers used the delta path.
func (p *Puller) DeltaPulls() uint64 { return p.deltaPulls.Load() }

// BytesFull returns the request+reply payload bytes moved by full pulls.
func (p *Puller) BytesFull() uint64 { return p.bytesFull.Load() }

// BytesDelta returns the request+reply payload bytes moved by delta
// pulls, including declined and failed attempts.
func (p *Puller) BytesDelta() uint64 { return p.bytesDelta.Load() }

// DeltaDeclines returns how many delta requests the primary declined
// with full-bundle-required (have-version evicted from its chain).
func (p *Puller) DeltaDeclines() uint64 { return p.deltaDeclines.Load() }

// DeltaFallbacks returns how many delta attempts failed (bad reply,
// broken chain, rejected bundle) and fell back to a full pull.
func (p *Puller) DeltaFallbacks() uint64 { return p.deltaFallbacks.Load() }

// CheckOnce probes the primary's version and pulls the new state if the
// local replica is stale. It reports whether a transfer happened.
func (p *Puller) CheckOnce(ctx context.Context) (bool, error) {
	p.checks.Add(1)
	remoteVersion, err := p.remoteVersion(ctx)
	if err != nil {
		p.failures.Add(1)
		return false, err
	}
	h, err := p.server.replica(p.oid)
	if err != nil {
		p.failures.Add(1)
		return false, err
	}
	have := h.doc.Version()
	if have >= remoteVersion {
		return false, nil
	}
	if !p.DisableDelta && !p.deltaUnsupported.Load() {
		pulled, derr := p.pullDelta(ctx, h, have)
		if derr == nil && pulled {
			p.pulls.Add(1)
			return true, nil
		}
		if derr != nil {
			if transport.IsUnknownOp(derr) {
				// The primary predates obj.getdelta: latch the fallback
				// so this probe happens exactly once per puller.
				p.deltaUnsupported.Store(true)
			} else {
				p.deltaFallbacks.Add(1)
				p.telemetry().PullerDeltaFallbacks.Inc()
			}
		}
		// Declines and every delta failure fall through to the full
		// transfer: a lying primary can at worst cost this round trip.
	}
	if err := p.pullFull(ctx); err != nil {
		p.failures.Add(1)
		return false, err
	}
	p.pulls.Add(1)
	return true, nil
}

// pullFull transfers and validates the primary's complete bundle.
func (p *Puller) pullFull(ctx context.Context) error {
	req := object.EncodeOIDRequest(p.oid)
	body, err := p.client.Call(ctx, object.OpGetBundle, req)
	if err != nil {
		return fmt.Errorf("server: pulling bundle: %w", err)
	}
	moved := uint64(len(req) + len(body))
	p.bytesFull.Add(moved)
	tel := p.telemetry()
	tel.PullerBytes.With("full").Add(moved)
	bundle, err := UnmarshalBundle(body)
	if err != nil {
		return err
	}
	if bundle.OID != p.oid {
		return fmt.Errorf("server: primary returned bundle for %s", bundle.OID.Short())
	}
	// Update validates the bundle (key vs OID, certificate signature,
	// element hashes) before installing — a lying primary cannot poison
	// the replica.
	if err := p.server.Update(bundle, p.owner); err != nil {
		return err
	}
	p.fullPulls.Add(1)
	tel.PullerPulls.With("full").Inc()
	tel.PullerElements.With("full").Add(uint64(len(bundle.Elements)))
	return nil
}

// pullDelta attempts the Merkle-delta transfer: fetch only the elements
// whose cert-listed hash changed since have, compose a candidate bundle
// from local unchanged elements plus the fetched ones, and hand it to
// the SAME Update validation a full pull goes through. Nothing in the
// reply is trusted before that validation passes; the chain check here
// exists to reject malformed or non-extending replies cheaply, before
// signature verification. It returns (false, nil) on a decline.
func (p *Puller) pullDelta(ctx context.Context, h *hostedReplica, have uint64) (bool, error) {
	req := EncodeDeltaRequest(p.oid, have)
	body, err := p.client.Call(ctx, OpGetDelta, req)
	if err != nil {
		return false, err
	}
	moved := uint64(len(req) + len(body))
	p.bytesDelta.Add(moved)
	tel := p.telemetry()
	tel.PullerBytes.With("delta").Add(moved)
	d, err := UnmarshalDeltaReply(body)
	if err != nil {
		return false, err
	}
	if d.FullRequired {
		p.deltaDeclines.Add(1)
		tel.PullerDeltaDeclines.Inc()
		return false, nil
	}
	h.mu.RLock()
	local := h.chain[len(h.chain)-1].header
	h.mu.RUnlock()
	if err := verifyDeltaChain(d, p.oid, local); err != nil {
		return false, err
	}
	elems := make([]document.Element, 0, len(d.Items))
	changed := uint64(0)
	for _, it := range d.Items {
		if it.Changed {
			elems = append(elems, it.Element)
			changed++
			continue
		}
		e, err := h.doc.Get(it.Name)
		if err != nil {
			return false, fmt.Errorf("server: delta claims %q unchanged but it is not held locally: %w", it.Name, err)
		}
		elems = append(elems, e)
	}
	bundle := &Bundle{
		OID:       p.oid,
		Key:       d.Key,
		Elements:  elems,
		Version:   d.NewVersion,
		Cert:      d.Cert,
		NameCerts: d.NameCerts,
	}
	if err := p.server.Update(bundle, p.owner); err != nil {
		return false, err
	}
	p.deltaPulls.Add(1)
	tel.PullerPulls.With("delta").Inc()
	tel.PullerElements.With("delta").Add(changed)
	return true, nil
}

// verifyDeltaChain checks that a delta reply's header chain really
// extends the local replica's state: the first header must carry the
// local head's content commitments (version, certificate hash, element
// root — Prev is excluded, since two replicas that converged through
// different histories legitimately disagree on it), consecutive headers
// must be hash-linked with strictly increasing versions, and the last
// header must commit to exactly the certificate and element set the
// reply proposes. A reply that fails here is discarded before any
// signature work.
func verifyDeltaChain(d *DeltaReply, oid globeid.OID, local *VersionHeader) error {
	if len(d.Headers) == 0 {
		return fmt.Errorf("server: delta reply carries no version headers")
	}
	for _, hd := range d.Headers {
		if hd.OID != oid {
			return fmt.Errorf("server: delta header names object %s", hd.OID.Short())
		}
	}
	first := d.Headers[0]
	if first.Version != local.Version || first.CertHash != local.CertHash || first.ElemRoot != local.ElemRoot {
		return fmt.Errorf("server: delta chain does not start at the local version %d", local.Version)
	}
	for i := 1; i < len(d.Headers); i++ {
		prev, cur := d.Headers[i-1], d.Headers[i]
		if cur.Version <= prev.Version {
			return fmt.Errorf("server: delta chain versions not increasing at %d", cur.Version)
		}
		if cur.Prev != prev.Hash() {
			return fmt.Errorf("server: delta chain broken between versions %d and %d", prev.Version, cur.Version)
		}
	}
	last := d.Headers[len(d.Headers)-1]
	if last.Version != d.NewVersion {
		return fmt.Errorf("server: delta chain head is version %d, reply claims %d", last.Version, d.NewVersion)
	}
	if d.Cert == nil {
		return fmt.Errorf("server: delta reply has no integrity certificate")
	}
	if last.CertHash != globeid.HashElement(d.Cert.Marshal()) {
		return fmt.Errorf("server: delta chain head does not commit to the reply certificate")
	}
	leaves := make(map[string][globeid.Size]byte, len(d.Items))
	for _, it := range d.Items {
		entry, err := d.Cert.Lookup(it.Name)
		if err != nil {
			return fmt.Errorf("server: delta item %q not in reply certificate", it.Name)
		}
		leaves[it.Name] = entry.Hash
	}
	if last.ElemRoot != merkle.RootFromLeaves(leaves) {
		return fmt.Errorf("server: delta chain head does not commit to the reply element set")
	}
	return nil
}

func (p *Puller) remoteVersion(ctx context.Context) (uint64, error) {
	body, err := p.client.Call(ctx, object.OpVersion, object.EncodeOIDRequest(p.oid))
	if err != nil {
		return 0, err
	}
	r := enc.NewReader(body)
	v := r.Uvarint()
	if err := r.Finish(); err != nil {
		return 0, err
	}
	return v, nil
}

// Start launches the periodic check loop; ctx cancellation and Stop
// both halt it. Calling Start twice without Stop is a no-op.
func (p *Puller) Start(ctx context.Context) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stop != nil {
		return
	}
	stop := make(chan struct{})
	p.stop = stop
	p.stopped.Add(1)
	go func() {
		defer p.stopped.Done()
		ticker := time.NewTicker(p.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				return
			case <-ticker.C:
				_, _ = p.CheckOnce(ctx) // failures are counted; loop continues
			}
		}
	}()
}

// Stop halts the loop and releases the connection.
func (p *Puller) Stop() {
	p.mu.Lock()
	stop := p.stop
	p.stop = nil
	p.mu.Unlock()
	if stop != nil {
		close(stop)
		p.stopped.Wait()
	}
	p.client.Close()
}
