package server_test

// End-to-end tests for the Merkle-delta puller path: delta transfers
// move only changed elements, declines and failures fall back to the
// full bundle, primaries that predate obj.getdelta latch the fallback
// after one probe, and the transfer counters surface on telemetry.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"globedoc/internal/deploy"
	"globedoc/internal/document"
	"globedoc/internal/enc"
	"globedoc/internal/keys/keytest"
	"globedoc/internal/netsim"
	"globedoc/internal/object"
	"globedoc/internal/server"
	"globedoc/internal/telemetry"
	"globedoc/internal/transport"
)

// deltaWorld is pullWorld with a wider document: one small mutable page
// plus a large static asset, so byte proportionality is observable.
func deltaWorld(t *testing.T) (*deploy.World, *deploy.Publication, *server.Puller) {
	t.Helper()
	w, err := deploy.NewWorld(deploy.Options{TimeScale: 0})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	if _, err := w.StartServer(netsim.AmsterdamPrimary, "srv-ams", nil, nil, server.Limits{}); err != nil {
		t.Fatal(err)
	}
	paris, err := w.StartServer(netsim.Paris, "srv-paris", nil, nil, server.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	doc := document.New()
	doc.Put(document.Element{Name: "index.html", Data: []byte("v1")})
	doc.Put(document.Element{Name: "big.bin", Data: bytes.Repeat([]byte{0xAB}, 32<<10)})
	pub, err := w.Publish(doc, deploy.PublishOptions{Name: "delta.nl", OwnerKey: keytest.RSA()})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ReplicateTo(pub, netsim.Paris); err != nil {
		t.Fatal(err)
	}
	puller := server.NewPuller(paris, pub.OID, "owner:delta.nl",
		w.Addrs[netsim.AmsterdamPrimary], w.DialFrom(netsim.Paris), 10*time.Millisecond)
	t.Cleanup(puller.Stop)
	return w, pub, puller
}

func TestPullerUsesDeltaPath(t *testing.T) {
	w, pub, puller := deltaWorld(t)
	tel := telemetry.New(nil)
	puller.SetTelemetry(tel)

	pub.Doc.Put(document.Element{Name: "index.html", Data: []byte("v2 small change")})
	if err := w.Reissue(pub, time.Hour, time.Now()); err != nil {
		t.Fatal(err)
	}
	pulled, err := puller.CheckOnce(context.Background())
	if err != nil {
		t.Fatalf("CheckOnce: %v", err)
	}
	if !pulled {
		t.Fatal("stale replica did not pull")
	}
	if puller.DeltaPulls() != 1 || puller.FullPulls() != 0 {
		t.Fatalf("delta=%d full=%d, want the delta path", puller.DeltaPulls(), puller.FullPulls())
	}
	// The 32 KiB static asset must not have crossed the wire.
	if got := puller.BytesDelta(); got == 0 || got > 16<<10 {
		t.Fatalf("delta moved %d bytes; want nonzero and well under the 32 KiB asset", got)
	}
	// The secondary converged to the primary's exact state.
	pb, err := w.Servers[netsim.AmsterdamPrimary].ExportBundle(pub.OID)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := w.Servers[netsim.Paris].ExportBundle(pub.OID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pb.Marshal(), sb.Marshal()) {
		t.Fatal("secondary state differs from primary after delta pull")
	}
	// The win is observable on telemetry, not just the local counters.
	if v := tel.PullerPulls.With("delta").Value(); v != 1 {
		t.Errorf("puller_pulls_total{delta} = %d, want 1", v)
	}
	if v := tel.PullerBytes.With("delta").Value(); v != puller.BytesDelta() {
		t.Errorf("puller_bytes_total{delta} = %d, want %d", v, puller.BytesDelta())
	}
	if v := tel.PullerElements.With("delta").Value(); v != 1 {
		t.Errorf("puller_elements_total{delta} = %d, want 1 changed element", v)
	}
}

func TestPullerDeltaChainExtendsAcrossSeveralVersions(t *testing.T) {
	w, pub, puller := deltaWorld(t)
	// Let the primary advance several versions before one delta pull:
	// the reply chain must link have..new across all of them.
	for i := 2; i <= 4; i++ {
		pub.Doc.Put(document.Element{Name: "index.html", Data: []byte(fmt.Sprintf("v%d", i))})
		if err := w.Reissue(pub, time.Hour, time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	pulled, err := puller.CheckOnce(context.Background())
	if err != nil {
		t.Fatalf("CheckOnce: %v", err)
	}
	if !pulled || puller.DeltaPulls() != 1 {
		t.Fatalf("pulled=%v delta=%d, want one delta pull spanning the gap", pulled, puller.DeltaPulls())
	}
	sb, err := w.Servers[netsim.Paris].ExportBundle(pub.OID)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range sb.Elements {
		if e.Name == "index.html" && string(e.Data) != "v4" {
			t.Fatalf("secondary at %q, want v4", e.Data)
		}
	}
}

func TestPullerFallsBackOnDecline(t *testing.T) {
	w, pub, puller := deltaWorld(t)
	// Shrink the primary's retention so the secondary's have-version is
	// evicted before it checks.
	w.Servers[netsim.AmsterdamPrimary].VersionRetention = 1
	for i := 2; i <= 4; i++ {
		pub.Doc.Put(document.Element{Name: "index.html", Data: []byte(fmt.Sprintf("v%d", i))})
		if err := w.Reissue(pub, time.Hour, time.Now()); err != nil {
			t.Fatal(err)
		}
	}
	pulled, err := puller.CheckOnce(context.Background())
	if err != nil {
		t.Fatalf("CheckOnce: %v", err)
	}
	if !pulled {
		t.Fatal("declined delta did not fall back to a full pull")
	}
	if puller.DeltaDeclines() != 1 || puller.FullPulls() != 1 || puller.DeltaPulls() != 0 {
		t.Fatalf("declines=%d full=%d delta=%d, want a decline then a full pull",
			puller.DeltaDeclines(), puller.FullPulls(), puller.DeltaPulls())
	}
	sb, err := w.Servers[netsim.Paris].ExportBundle(pub.OID)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range sb.Elements {
		if e.Name == "index.html" && string(e.Data) != "v4" {
			t.Fatalf("secondary at %q after fallback, want v4", e.Data)
		}
	}
}

func TestPullerDisableDeltaForcesFull(t *testing.T) {
	w, pub, puller := deltaWorld(t)
	puller.DisableDelta = true
	pub.Doc.Put(document.Element{Name: "index.html", Data: []byte("v2")})
	if err := w.Reissue(pub, time.Hour, time.Now()); err != nil {
		t.Fatal(err)
	}
	pulled, err := puller.CheckOnce(context.Background())
	if err != nil || !pulled {
		t.Fatalf("CheckOnce = %v, %v", pulled, err)
	}
	if puller.DeltaPulls() != 0 || puller.FullPulls() != 1 || puller.BytesDelta() != 0 {
		t.Fatalf("delta=%d full=%d deltaBytes=%d, want the full path only",
			puller.DeltaPulls(), puller.FullPulls(), puller.BytesDelta())
	}
}

// TestPullerLatchesWhenPrimaryLacksDelta points a puller at a primary
// that predates obj.getdelta (a v1-era object server) and checks the
// unknown-op refusal latches: exactly one probe, then full pulls only.
func TestPullerLatchesWhenPrimaryLacksDelta(t *testing.T) {
	w, pub, _ := deltaWorld(t)
	primary := w.Servers[netsim.AmsterdamPrimary]

	// An old-style primary: version and bundle ops only, delegating to
	// the genuine server's state. obj.getdelta is answered with the
	// wire-contract unknown-operation refusal, counted per probe.
	probes := 0
	old := transport.NewServer()
	old.Handle(object.OpVersion, func(body []byte) ([]byte, error) {
		oid, err := object.DecodeOIDRequest(body)
		if err != nil {
			return nil, err
		}
		b, err := primary.ExportBundle(oid)
		if err != nil {
			return nil, err
		}
		w := enc.NewWriter(8)
		w.Uvarint(b.Version)
		return w.Bytes(), nil
	})
	old.Handle(object.OpGetBundle, func(body []byte) ([]byte, error) {
		oid, err := object.DecodeOIDRequest(body)
		if err != nil {
			return nil, err
		}
		b, err := primary.ExportBundle(oid)
		if err != nil {
			return nil, err
		}
		return b.Marshal(), nil
	})
	old.Handle(server.OpGetDelta, func(body []byte) ([]byte, error) {
		probes++
		return nil, errors.New("unknown operation " + server.OpGetDelta)
	})
	l, err := w.Net.Listen(netsim.AmsterdamPrimary, "oldsrv")
	if err != nil {
		t.Fatal(err)
	}
	old.Start(l)
	t.Cleanup(old.Close)

	puller := server.NewPuller(w.Servers[netsim.Paris], pub.OID, "owner:delta.nl",
		netsim.AmsterdamPrimary+":oldsrv", w.DialFrom(netsim.Paris), 10*time.Millisecond)
	t.Cleanup(puller.Stop)

	for i := 2; i <= 3; i++ {
		pub.Doc.Put(document.Element{Name: "index.html", Data: []byte(fmt.Sprintf("v%d", i))})
		if err := w.Reissue(pub, time.Hour, time.Now()); err != nil {
			t.Fatal(err)
		}
		pulled, err := puller.CheckOnce(context.Background())
		if err != nil {
			t.Fatalf("CheckOnce %d: %v", i, err)
		}
		if !pulled {
			t.Fatalf("CheckOnce %d did not pull", i)
		}
	}
	if probes != 1 {
		t.Fatalf("obj.getdelta probed %d times, want exactly 1 (latch)", probes)
	}
	if puller.FullPulls() != 2 || puller.DeltaPulls() != 0 {
		t.Fatalf("full=%d delta=%d, want 2 full pulls", puller.FullPulls(), puller.DeltaPulls())
	}
	if puller.DeltaFallbacks() != 0 {
		t.Fatalf("unknown-op probe counted as %d fallbacks, want 0", puller.DeltaFallbacks())
	}
}
