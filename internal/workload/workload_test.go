package workload_test

import (
	"bytes"
	"testing"
	"time"

	"globedoc/internal/workload"
)

func TestRandDeterministic(t *testing.T) {
	a := workload.NewRand(42)
	b := workload.NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := workload.NewRand(43)
	if workload.NewRand(42).Uint64() == c.Uint64() {
		t.Fatal("different seeds collided on first draw")
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := workload.NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced zero stream")
	}
}

func TestRandBounds(t *testing.T) {
	r := workload.NewRand(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(10); v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
	if workload.NewRand(1).Intn(0) != 0 {
		t.Fatal("Intn(0) != 0")
	}
}

func TestBytesDeterministicAndSized(t *testing.T) {
	a := workload.NewRand(5).Bytes(1000)
	b := workload.NewRand(5).Bytes(1000)
	if !bytes.Equal(a, b) {
		t.Fatal("Bytes not deterministic")
	}
	if len(a) != 1000 {
		t.Fatalf("len = %d", len(a))
	}
	for _, n := range []int{0, 1, 7, 8, 9} {
		if got := len(workload.NewRand(1).Bytes(n)); got != n {
			t.Errorf("Bytes(%d) len = %d", n, got)
		}
	}
}

func TestSingleElementDoc(t *testing.T) {
	for _, size := range workload.Fig4Sizes {
		d := workload.SingleElementDoc(size, 1)
		if d.Len() != 1 {
			t.Fatalf("Len = %d", d.Len())
		}
		if d.TotalSize() != size {
			t.Errorf("TotalSize = %d, want %d", d.TotalSize(), size)
		}
	}
}

func TestCompositeDocTotals(t *testing.T) {
	// The paper's totals: 15 KB, 105 KB, 1005 KB.
	wantTotals := []int{15 * workload.KB, 105 * workload.KB, 1005 * workload.KB}
	for i, imgSize := range workload.Fig5ImageSizes {
		d := workload.CompositeDoc(imgSize, 1)
		if d.Len() != 11 {
			t.Fatalf("Len = %d, want 11", d.Len())
		}
		if d.TotalSize() != wantTotals[i] {
			t.Errorf("TotalSize = %d, want %d", d.TotalSize(), wantTotals[i])
		}
	}
}

func TestFlashCrowdTrace(t *testing.T) {
	start := time.Date(2005, 4, 4, 12, 0, 0, 0, time.UTC)
	fc := workload.FlashCrowd{
		Start:          start,
		Duration:       time.Minute,
		BackgroundSite: "paris",
		BackgroundRPS:  1,
		SpikeSite:      "ithaca",
		SpikeAfter:     30 * time.Second,
		SpikeRPS:       10,
	}
	trace := fc.Trace(1)
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	// Chronologically ordered.
	for i := 1; i < len(trace); i++ {
		if trace[i].T.Before(trace[i-1].T) {
			t.Fatal("trace out of order")
		}
	}
	// No spike traffic before SpikeAfter.
	var before, after int
	for _, ev := range trace {
		if ev.Site != "ithaca" {
			continue
		}
		if ev.T.Before(start.Add(30 * time.Second)) {
			before++
		} else {
			after++
		}
	}
	if before != 0 {
		t.Errorf("%d spike events before onset", before)
	}
	if after < 200 {
		t.Errorf("spike events = %d, want ~300", after)
	}
	// Deterministic.
	again := fc.Trace(1)
	if len(again) != len(trace) {
		t.Error("trace not deterministic")
	}
}

func TestUpdateTrace(t *testing.T) {
	start := time.Date(2005, 4, 4, 12, 0, 0, 0, time.UTC)
	fc := workload.FlashCrowd{Start: start, Duration: 10 * time.Second, BackgroundSite: "paris", BackgroundRPS: 1}
	trace := fc.Trace(1)
	withUpdates := workload.UpdateTrace(trace, 2*time.Second)
	updates := 0
	for _, ev := range withUpdates {
		if ev.Update {
			updates++
		}
	}
	if updates < 3 {
		t.Errorf("updates = %d", updates)
	}
	if len(withUpdates) != len(trace)+updates {
		t.Error("reads lost while interleaving updates")
	}
	for i := 1; i < len(withUpdates); i++ {
		if withUpdates[i].T.Before(withUpdates[i-1].T) {
			t.Fatal("interleaved trace out of order")
		}
	}
	if got := workload.UpdateTrace(nil, time.Second); got != nil {
		t.Error("UpdateTrace(nil) != nil")
	}
}
