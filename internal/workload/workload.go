// Package workload generates the deterministic documents and access
// patterns used by the benchmark harness and examples.
//
// All content is produced by a seeded xorshift generator, so repeated
// runs measure identical byte streams — the stand-in for the paper's
// fixed image files.
package workload

import (
	"fmt"
	"time"

	"globedoc/internal/document"
	"globedoc/internal/replication"
)

// Paper element sizes.
const KB = 1024

// Fig4Sizes are the single-element object sizes of Figure 4.
var Fig4Sizes = []int{1 * KB, 10 * KB, 100 * KB, 300 * KB, 600 * KB, 1024 * KB}

// Fig5ImageSizes are the per-image sizes of the three composite objects
// of Figures 5–7 (10 images each, plus a 5 KB text element; totals 15 KB,
// 105 KB and 1005 KB).
var Fig5ImageSizes = []int{1 * KB, 10 * KB, 100 * KB}

// Rand is a tiny deterministic xorshift64* generator.
type Rand struct{ state uint64 }

// NewRand seeds a generator; seed 0 is remapped to a fixed constant.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next pseudorandom value.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a pseudorandom int in [0, n).
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudorandom float in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bytes fills a deterministic pseudorandom buffer of length n.
func (r *Rand) Bytes(n int) []byte {
	out := make([]byte, n)
	for i := 0; i < n; i += 8 {
		v := r.Uint64()
		for j := 0; j < 8 && i+j < n; j++ {
			out[i+j] = byte(v >> (8 * j))
		}
	}
	return out
}

// SingleElementDoc builds a Figure-4 object: one image element of the
// given size.
func SingleElementDoc(size int, seed uint64) *document.Document {
	r := NewRand(seed)
	d := document.New()
	d.Put(document.Element{
		Name:        "image.bin",
		ContentType: "application/octet-stream",
		Data:        r.Bytes(size),
	})
	return d
}

// CompositeDoc builds a Figures-5–7 object: a 5 KB text element plus 10
// images of imageSize bytes each.
func CompositeDoc(imageSize int, seed uint64) *document.Document {
	r := NewRand(seed)
	d := document.New()
	d.Put(document.Element{
		Name:        "page.txt",
		ContentType: "text/plain",
		Data:        r.Bytes(5 * KB),
	})
	for i := 0; i < 10; i++ {
		d.Put(document.Element{
			Name:        fmt.Sprintf("img-%02d.bin", i),
			ContentType: "application/octet-stream",
			Data:        r.Bytes(imageSize),
		})
	}
	return d
}

// WideDoc builds a multiplex-experiment object: n equally sized
// elements named el-00.bin, el-01.bin, … — wide enough that the number
// of element round trips, not any single transfer, dominates a cold
// whole-object fetch.
func WideDoc(n, size int, seed uint64) *document.Document {
	r := NewRand(seed)
	d := document.New()
	for i := 0; i < n; i++ {
		d.Put(document.Element{
			Name:        fmt.Sprintf("el-%02d.bin", i),
			ContentType: "application/octet-stream",
			Data:        r.Bytes(size),
		})
	}
	return d
}

// FlashCrowd generates an access trace with a background request rate
// from backgroundSite and a sudden spike from spikeSite: the scalability
// scenario of the paper's introduction.
type FlashCrowd struct {
	Start          time.Time
	Duration       time.Duration
	BackgroundSite string
	// BackgroundRPS is the steady request rate before/throughout.
	BackgroundRPS float64
	SpikeSite     string
	// SpikeAfter is when the crowd arrives, SpikeRPS its request rate.
	SpikeAfter time.Duration
	SpikeRPS   float64
}

// Trace renders the flash crowd as a replication event trace.
func (f FlashCrowd) Trace(seed uint64) []replication.Event {
	r := NewRand(seed)
	var events []replication.Event
	emit := func(site string, rps float64, from, until time.Duration) {
		if rps <= 0 {
			return
		}
		interval := time.Duration(float64(time.Second) / rps)
		for t := from; t < until; t += interval {
			// Jitter within the interval keeps arrivals aperiodic.
			jitter := time.Duration(r.Float64() * float64(interval) / 4)
			events = append(events, replication.Event{
				T:    f.Start.Add(t + jitter),
				Site: site,
			})
		}
	}
	emit(f.BackgroundSite, f.BackgroundRPS, 0, f.Duration)
	emit(f.SpikeSite, f.SpikeRPS, f.SpikeAfter, f.Duration)
	sortEvents(events)
	return events
}

func sortEvents(events []replication.Event) {
	// Insertion sort is fine for the sizes involved and keeps the
	// package dependency-free.
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && events[j].T.Before(events[j-1].T); j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
}

// UpdateTrace interleaves owner updates every updateEvery into a copy of
// trace, for strategy-selection experiments on mutable documents.
func UpdateTrace(trace []replication.Event, updateEvery time.Duration) []replication.Event {
	if len(trace) == 0 || updateEvery <= 0 {
		return trace
	}
	out := make([]replication.Event, 0, len(trace)+len(trace)/4)
	next := trace[0].T.Add(updateEvery)
	for _, ev := range trace {
		for !next.After(ev.T) {
			out = append(out, replication.Event{T: next, Update: true})
			next = next.Add(updateEvery)
		}
		out = append(out, ev)
	}
	return out
}
