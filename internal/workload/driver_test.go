package workload

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestComputeLatencyStatsEmpty(t *testing.T) {
	if got := ComputeLatencyStats(nil); got != (LatencyStats{}) {
		t.Errorf("ComputeLatencyStats(nil) = %+v, want zero", got)
	}
}

func TestComputeLatencyStatsQuantiles(t *testing.T) {
	// 100 samples of 1ms..100ms: nearest-rank quantiles land exactly on
	// the corresponding sample.
	samples := make([]time.Duration, 100)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond
	}
	got := ComputeLatencyStats(samples)
	want := LatencyStats{
		N:    100,
		Mean: 50500 * time.Microsecond,
		P50:  50 * time.Millisecond,
		P95:  95 * time.Millisecond,
		P99:  99 * time.Millisecond,
		Max:  100 * time.Millisecond,
	}
	if got != want {
		t.Errorf("ComputeLatencyStats = %+v, want %+v", got, want)
	}
}

func TestComputeLatencyStatsSingleSample(t *testing.T) {
	got := ComputeLatencyStats([]time.Duration{7 * time.Millisecond})
	if got.N != 1 || got.P50 != 7*time.Millisecond || got.P99 != 7*time.Millisecond || got.Max != 7*time.Millisecond {
		t.Errorf("single-sample stats = %+v", got)
	}
}

func TestRunClosedLoopDispatchesEveryOpOnce(t *testing.T) {
	const workers, totalOps = 7, 200
	var seen [totalOps]atomic.Int32
	res := RunClosedLoop(context.Background(), workers, totalOps,
		func(_ context.Context, worker, seq int) error {
			if worker < 0 || worker >= workers {
				t.Errorf("worker index %d out of range", worker)
			}
			seen[seq].Add(1)
			return nil
		})
	for seq := range seen {
		if n := seen[seq].Load(); n != 1 {
			t.Errorf("seq %d dispatched %d times, want 1", seq, n)
		}
	}
	if res.Ops != totalOps || res.Errors != 0 || res.FirstError != nil {
		t.Errorf("result = %+v, want %d ops and no errors", res, totalOps)
	}
	if res.Latency.N != totalOps {
		t.Errorf("latency samples = %d, want %d", res.Latency.N, totalOps)
	}
}

func TestRunClosedLoopCountsErrorsAndKeepsFirst(t *testing.T) {
	boom := errors.New("boom")
	res := RunClosedLoop(context.Background(), 3, 30,
		func(_ context.Context, _, seq int) error {
			if seq%3 == 0 {
				return boom
			}
			return nil
		})
	if res.Errors != 10 {
		t.Errorf("Errors = %d, want 10", res.Errors)
	}
	if !errors.Is(res.FirstError, boom) {
		t.Errorf("FirstError = %v, want boom", res.FirstError)
	}
	if res.Ops != 20 {
		t.Errorf("Ops = %d, want 20 (errors excluded)", res.Ops)
	}
}

func TestRunClosedLoopStopsDispatchOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started sync.Once
	var dispatched atomic.Int64
	res := RunClosedLoop(ctx, 2, 1_000_000,
		func(ctx context.Context, _, _ int) error {
			dispatched.Add(1)
			started.Do(cancel)
			return ctx.Err()
		})
	// Cancellation after the first op stops dispatch: at most one
	// in-flight op per worker can still run.
	if n := dispatched.Load(); n > 3 {
		t.Errorf("dispatched %d ops after cancel, want <= 3", n)
	}
	if res.Ops+res.Errors != int(dispatched.Load()) {
		t.Errorf("ops %d + errors %d != dispatched %d", res.Ops, res.Errors, dispatched.Load())
	}
}

func TestRunClosedLoopClampsWorkersToOps(t *testing.T) {
	var maxWorker atomic.Int64
	res := RunClosedLoop(context.Background(), 16, 3,
		func(_ context.Context, worker, _ int) error {
			for {
				cur := maxWorker.Load()
				if int64(worker) <= cur || maxWorker.CompareAndSwap(cur, int64(worker)) {
					return nil
				}
			}
		})
	if res.Ops != 3 {
		t.Errorf("Ops = %d, want 3", res.Ops)
	}
	if mw := maxWorker.Load(); mw > 2 {
		t.Errorf("worker index %d observed with 3 ops, want workers clamped to 3", mw)
	}
}
