package workload

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// now is the driver's injectable time source (the `X = time.Now`
// idiom); tests pin it to make latency accounting deterministic.
var now = time.Now

// LatencyStats summarises a set of per-operation latencies.
type LatencyStats struct {
	N    int
	Mean time.Duration
	P50  time.Duration
	P95  time.Duration
	P99  time.Duration
	Max  time.Duration
}

// ComputeLatencyStats reduces raw samples to tail-latency quantiles.
// Quantiles use the nearest-rank method on the sorted samples.
func ComputeLatencyStats(samples []time.Duration) LatencyStats {
	if len(samples) == 0 {
		return LatencyStats{}
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, s := range sorted {
		sum += s
	}
	rank := func(q float64) time.Duration {
		i := int(q*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return LatencyStats{
		N:    len(sorted),
		Mean: sum / time.Duration(len(sorted)),
		P50:  rank(0.50),
		P95:  rank(0.95),
		P99:  rank(0.99),
		Max:  sorted[len(sorted)-1],
	}
}

// ClosedLoopResult is the outcome of one RunClosedLoop drive: how many
// operations completed, how long the whole run took, and the latency
// distribution of the successful operations.
type ClosedLoopResult struct {
	Ops        int
	Errors     int
	FirstError error
	Elapsed    time.Duration
	// Throughput is successful operations per second of wall time.
	Throughput float64
	Latency    LatencyStats
}

// RunClosedLoop drives op from `workers` goroutines in a closed loop: each
// worker issues its next operation as soon as the previous one returns,
// until totalOps operations have been dispatched or ctx is cancelled.
// op receives the worker index and a global operation sequence number,
// so workloads can vary per request deterministically. The run keeps
// going past individual op errors (they are counted, and the first is
// kept); cancellation stops dispatch but lets in-flight ops finish.
func RunClosedLoop(ctx context.Context, workers, totalOps int, op func(ctx context.Context, worker, seq int) error) ClosedLoopResult {
	if workers < 1 {
		workers = 1
	}
	if totalOps < 1 {
		totalOps = 1
	}
	if workers > totalOps {
		workers = totalOps
	}

	var (
		next      atomic.Int64
		mu        sync.Mutex
		latencies = make([]time.Duration, 0, totalOps)
		errs      int
		firstErr  error
		wg        sync.WaitGroup
	)
	start := now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				seq := int(next.Add(1)) - 1
				if seq >= totalOps || ctx.Err() != nil {
					return
				}
				opStart := now()
				err := op(ctx, worker, seq)
				elapsed := now().Sub(opStart)
				mu.Lock()
				if err != nil {
					errs++
					if firstErr == nil {
						firstErr = err
					}
				} else {
					latencies = append(latencies, elapsed)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	total := now().Sub(start)

	res := ClosedLoopResult{
		Ops:        len(latencies),
		Errors:     errs,
		FirstError: firstErr,
		Elapsed:    total,
		Latency:    ComputeLatencyStats(latencies),
	}
	if total > 0 {
		res.Throughput = float64(res.Ops) / total.Seconds()
	}
	return res
}
