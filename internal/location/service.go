package location

import (
	"context"
	"fmt"
	"net"
	"sync/atomic"

	"globedoc/internal/enc"
	"globedoc/internal/globeid"
	"globedoc/internal/telemetry"
	"globedoc/internal/transport"
)

// Wire operation names of the location service.
//
// OpLookup2 is the extended lookup introduced in PR 8: same request body
// as OpLookup, but the response carries per-address metadata (zone label,
// advertised weight). The v1 encodings are frozen — enc.Reader.Finish
// rejects trailing bytes, so appending fields to an existing operation
// would break BOTH old-decodes-new and new-decodes-old. A new client
// probes OpLookup2 and, on the peer's "unknown operation" refusal,
// latches a permanent fallback to OpLookup (metadata-less results); an
// old client never sends OpLookup2 and sees byte-identical OpLookup
// responses.
const (
	OpInsert  = "loc.insert"
	OpDelete  = "loc.delete"
	OpLookup  = "loc.lookup"
	OpLookup2 = "loc.lookup2"
	OpAll     = "loc.all"
)

// Resolver is the client-side view of the location service: anything that
// can turn an OID into contact addresses. The in-process Tree, the remote
// Client, and the adversarial wrappers in internal/attack all implement it.
type Resolver interface {
	// Lookup returns contact addresses for oid, nearest-first relative
	// to fromSite. Implementations that do no I/O may ignore ctx.
	Lookup(ctx context.Context, fromSite string, oid globeid.OID) (LookupResult, error)
}

var (
	_ Resolver = (*Tree)(nil)
	_ Resolver = (*Client)(nil)
)

// Service exposes a Tree over the GlobeDoc wire protocol.
type Service struct {
	tree *Tree
	srv  *transport.Server
}

// NewService wraps tree in a transport server.
func NewService(tree *Tree) *Service {
	s := &Service{tree: tree, srv: transport.NewServer()}
	s.srv.Handle(OpInsert, s.handleInsert)
	s.srv.Handle(OpDelete, s.handleDelete)
	s.srv.Handle(OpLookup, s.handleLookup)
	s.srv.Handle(OpLookup2, s.handleLookup2)
	s.srv.Handle(OpAll, s.handleAll)
	return s
}

// Serve accepts connections on l until closed.
func (s *Service) Serve(l net.Listener) error { return s.srv.Serve(l) }

// Start serves on a background goroutine.
func (s *Service) Start(l net.Listener) { s.srv.Start(l) }

// Close shuts the service down.
func (s *Service) Close() { s.srv.Close() }

// SetTelemetry wires the transport layer's per-RPC spans and
// rpc_served_total counters to tel. Call before Start/Serve.
func (s *Service) SetTelemetry(tel *telemetry.Telemetry) { s.srv.Telemetry = tel }

// Tree returns the underlying search tree (used by administrative tools
// co-located with the service).
func (s *Service) Tree() *Tree { return s.tree }

func encodeSiteOIDAddr(site string, oid globeid.OID, addr ContactAddress) []byte {
	w := enc.NewWriter(64)
	w.String(site)
	w.Raw(oid[:])
	addr.Marshal(w)
	return w.Bytes()
}

func decodeSiteOIDAddr(body []byte) (string, globeid.OID, ContactAddress, error) {
	r := enc.NewReader(body)
	site := r.String()
	var oid globeid.OID
	copy(oid[:], r.Raw(globeid.Size))
	addr := UnmarshalContactAddress(r)
	if err := r.Finish(); err != nil {
		return "", globeid.Zero, ContactAddress{}, err
	}
	return site, oid, addr, nil
}

func (s *Service) handleInsert(body []byte) ([]byte, error) {
	site, oid, addr, err := decodeSiteOIDAddr(body)
	if err != nil {
		return nil, err
	}
	return nil, s.tree.Insert(site, oid, addr)
}

func (s *Service) handleDelete(body []byte) ([]byte, error) {
	site, oid, addr, err := decodeSiteOIDAddr(body)
	if err != nil {
		return nil, err
	}
	return nil, s.tree.Delete(site, oid, addr)
}

func encodeLookupResult(res LookupResult) []byte {
	w := enc.NewWriter(64)
	w.Uvarint(uint64(res.Rings))
	w.Uvarint(uint64(len(res.Addresses)))
	for _, a := range res.Addresses {
		a.Marshal(w)
	}
	return w.Bytes()
}

func decodeLookupResult(body []byte) (LookupResult, error) {
	r := enc.NewReader(body)
	var res LookupResult
	res.Rings = int(r.Uvarint())
	n := r.Uvarint()
	if n > 1<<16 {
		return LookupResult{}, fmt.Errorf("location: implausible address count %d", n)
	}
	for i := uint64(0); i < n; i++ {
		res.Addresses = append(res.Addresses, UnmarshalContactAddress(r))
	}
	if err := r.Finish(); err != nil {
		return LookupResult{}, err
	}
	return res, nil
}

// encodeLookupResultExt is the OpLookup2 response body: the same shape
// as the v1 encoding with per-address metadata appended to each entry.
func encodeLookupResultExt(res LookupResult) []byte {
	w := enc.NewWriter(64)
	w.Uvarint(uint64(res.Rings))
	w.Uvarint(uint64(len(res.Addresses)))
	for _, a := range res.Addresses {
		a.MarshalExt(w)
	}
	return w.Bytes()
}

func decodeLookupResultExt(body []byte) (LookupResult, error) {
	r := enc.NewReader(body)
	var res LookupResult
	res.Rings = int(r.Uvarint())
	n := r.Uvarint()
	if n > 1<<16 {
		return LookupResult{}, fmt.Errorf("location: implausible address count %d", n)
	}
	for i := uint64(0); i < n; i++ {
		res.Addresses = append(res.Addresses, UnmarshalContactAddressExt(r))
	}
	if err := r.Finish(); err != nil {
		return LookupResult{}, err
	}
	return res, nil
}

func (s *Service) lookup(body []byte) (LookupResult, error) {
	r := enc.NewReader(body)
	site := r.String()
	var oid globeid.OID
	copy(oid[:], r.Raw(globeid.Size))
	if err := r.Finish(); err != nil {
		return LookupResult{}, err
	}
	//lint:ignore ctxfirst the transport handler boundary carries no request context; per-request cancellation would need a wire protocol change
	return s.tree.Lookup(context.Background(), site, oid)
}

func (s *Service) handleLookup(body []byte) ([]byte, error) {
	res, err := s.lookup(body)
	if err != nil {
		return nil, err
	}
	return encodeLookupResult(res), nil
}

func (s *Service) handleLookup2(body []byte) ([]byte, error) {
	res, err := s.lookup(body)
	if err != nil {
		return nil, err
	}
	return encodeLookupResultExt(res), nil
}

func (s *Service) handleAll(body []byte) ([]byte, error) {
	r := enc.NewReader(body)
	var oid globeid.OID
	copy(oid[:], r.Raw(globeid.Size))
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return encodeLookupResult(LookupResult{Addresses: s.tree.AllAddresses(oid)}), nil
}

// Client is a typed client for a remote location service.
type Client struct {
	c *transport.Client
	// lookup2Unsupported latches after the peer refuses OpLookup2 with an
	// unknown-operation error: the service predates per-address metadata,
	// so every further Lookup goes straight to the v1 operation. One
	// wasted round trip per client lifetime, mirroring the transport's
	// version-negotiation fallback.
	lookup2Unsupported atomic.Bool
}

// NewClient returns a client that dials the service with dial.
func NewClient(dial transport.DialFunc) *Client {
	return &Client{c: transport.NewClient(dial)}
}

// Close releases the pooled connection.
func (c *Client) Close() { c.c.Close() }

// Configure applies transport timeouts and retry policy to the
// underlying RPC client and returns c for chaining.
func (c *Client) Configure(cfg transport.Config) *Client {
	c.c.Configure(cfg)
	return c
}

// Transport exposes the underlying RPC client so callers can inspect
// retry counters or tune it directly.
func (c *Client) Transport() *transport.Client { return c.c }

// Insert records addr for oid at site.
func (c *Client) Insert(ctx context.Context, site string, oid globeid.OID, addr ContactAddress) error {
	_, err := c.c.Call(ctx, OpInsert, encodeSiteOIDAddr(site, oid, addr))
	return err
}

// Delete removes addr for oid at site.
func (c *Client) Delete(ctx context.Context, site string, oid globeid.OID, addr ContactAddress) error {
	_, err := c.c.Call(ctx, OpDelete, encodeSiteOIDAddr(site, oid, addr))
	return err
}

// Lookup finds contact addresses for oid, nearest-first from fromSite.
// It prefers the metadata-carrying OpLookup2 and falls back permanently
// to OpLookup against a service that does not implement it; results from
// such a service simply carry no zone/weight metadata.
func (c *Client) Lookup(ctx context.Context, fromSite string, oid globeid.OID) (LookupResult, error) {
	w := enc.NewWriter(64)
	w.String(fromSite)
	w.Raw(oid[:])
	req := w.Bytes()
	if !c.lookup2Unsupported.Load() {
		body, err := c.c.Call(ctx, OpLookup2, req)
		if err == nil {
			return decodeLookupResultExt(body)
		}
		if !transport.IsUnknownOp(err) {
			return LookupResult{}, err
		}
		c.lookup2Unsupported.Store(true)
	}
	body, err := c.c.Call(ctx, OpLookup, req)
	if err != nil {
		return LookupResult{}, err
	}
	return decodeLookupResult(body)
}

// All returns every recorded address for oid.
func (c *Client) All(ctx context.Context, oid globeid.OID) ([]ContactAddress, error) {
	w := enc.NewWriter(32)
	w.Raw(oid[:])
	body, err := c.c.Call(ctx, OpAll, w.Bytes())
	if err != nil {
		return nil, err
	}
	res, err := decodeLookupResult(body)
	if err != nil {
		return nil, err
	}
	return res.Addresses, nil
}
