package location_test

import (
	"context"
	"errors"
	"testing"

	"globedoc/internal/location"
	"globedoc/internal/netsim"
	"globedoc/internal/transport"
)

// startLocationService runs a location service on the simulated network
// and returns a client dialing it from fromHost.
func startLocationService(t *testing.T, n *netsim.Network, fromHost string) (*location.Client, *location.Tree) {
	t.Helper()
	tree, err := location.NewTree(location.PaperDomains())
	if err != nil {
		t.Fatal(err)
	}
	l, err := n.Listen(netsim.AmsterdamPrimary, "locsvc")
	if err != nil {
		t.Fatal(err)
	}
	svc := location.NewService(tree)
	svc.Start(l)
	t.Cleanup(svc.Close)
	client := location.NewClient(n.Dialer(fromHost, netsim.AmsterdamPrimary+":locsvc"))
	t.Cleanup(client.Close)
	return client, tree
}

func TestServiceInsertLookupDelete(t *testing.T) {
	n := netsim.PaperTestbed(0)
	defer n.Close()
	client, _ := startLocationService(t, n, netsim.Paris)

	oid := testOID(11)
	a := addr("amsterdam-primary:objsrv")
	if err := client.Insert(context.Background(), "amsterdam-primary", oid, a); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	res, err := client.Lookup(context.Background(), "paris", oid)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if len(res.Addresses) != 1 || !res.Addresses[0].SameEndpoint(a) || res.Rings != 1 {
		t.Errorf("res = %+v", res)
	}
	// OpLookup2 carries the metadata the tree filled in at insert.
	if res.Addresses[0].Zone != "europe" {
		t.Errorf("res = %+v", res)
	}
	all, err := client.All(context.Background(), oid)
	if err != nil || len(all) != 1 {
		t.Errorf("All = %v, %v", all, err)
	}
	if err := client.Delete(context.Background(), "amsterdam-primary", oid, a); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := client.Lookup(context.Background(), "paris", oid); err == nil {
		t.Fatal("Lookup succeeded after Delete")
	}
}

func TestServiceErrorsCrossWire(t *testing.T) {
	n := netsim.PaperTestbed(0)
	defer n.Close()
	client, _ := startLocationService(t, n, netsim.Ithaca)

	if err := client.Insert(context.Background(), "atlantis", testOID(12), addr("x:y")); err == nil {
		t.Fatal("Insert to unknown site succeeded")
	} else {
		var remote *transport.RemoteError
		if !errors.As(err, &remote) {
			t.Fatalf("err = %T %v, want RemoteError", err, err)
		}
	}
	if _, err := client.Lookup(context.Background(), "paris", testOID(13)); err == nil {
		t.Fatal("Lookup of unrecorded OID succeeded")
	}
}

func TestClientImplementsResolver(t *testing.T) {
	var _ location.Resolver = (*location.Client)(nil)
	var _ location.Resolver = (*location.Tree)(nil)
}
