package location_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"globedoc/internal/clock"
	"globedoc/internal/globeid"
	"globedoc/internal/location"
)

// countingResolver counts backend lookups.
type countingResolver struct {
	tree  *location.Tree
	calls int
}

func (c *countingResolver) Lookup(ctx context.Context, fromSite string, oid globeid.OID) (location.LookupResult, error) {
	c.calls++
	return c.tree.Lookup(ctx, fromSite, oid)
}

func newCachingFixture(t *testing.T) (*location.CachingResolver, *countingResolver, globeid.OID, func(time.Duration)) {
	t.Helper()
	tree := newPaperTree(t)
	oid := testOID(50)
	if err := tree.Insert("amsterdam-primary", oid, addr("amsterdam-primary:objsvc")); err != nil {
		t.Fatal(err)
	}
	backend := &countingResolver{tree: tree}
	c := location.NewCachingResolver(backend, time.Minute)
	fake := clock.NewFake(time.Date(2005, 4, 4, 12, 0, 0, 0, time.UTC))
	c.Clock = fake
	return c, backend, oid, fake.Advance
}

func TestCachingResolverHitsAndMisses(t *testing.T) {
	c, backend, oid, _ := newCachingFixture(t)
	for i := 0; i < 5; i++ {
		res, err := c.Lookup(context.Background(), "paris", oid)
		if err != nil || len(res.Addresses) != 1 {
			t.Fatalf("lookup %d: %v %v", i, res, err)
		}
	}
	if backend.calls != 1 {
		t.Errorf("backend calls = %d, want 1", backend.calls)
	}
	hits, misses := c.Stats()
	if hits != 4 || misses != 1 {
		t.Errorf("hits=%d misses=%d", hits, misses)
	}
}

func TestCachingResolverTTLExpiry(t *testing.T) {
	c, backend, oid, advance := newCachingFixture(t)
	if _, err := c.Lookup(context.Background(), "paris", oid); err != nil {
		t.Fatal(err)
	}
	advance(2 * time.Minute)
	if _, err := c.Lookup(context.Background(), "paris", oid); err != nil {
		t.Fatal(err)
	}
	if backend.calls != 2 {
		t.Errorf("backend calls = %d, want 2 after TTL expiry", backend.calls)
	}
}

func TestCachingResolverPerSiteEntries(t *testing.T) {
	c, backend, oid, _ := newCachingFixture(t)
	if _, err := c.Lookup(context.Background(), "paris", oid); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Lookup(context.Background(), "ithaca", oid); err != nil {
		t.Fatal(err)
	}
	if backend.calls != 2 {
		t.Errorf("backend calls = %d, want 2 (distinct sites)", backend.calls)
	}
}

func TestCachingResolverInvalidate(t *testing.T) {
	c, backend, oid, _ := newCachingFixture(t)
	c.Lookup(context.Background(), "paris", oid)
	c.Invalidate(oid)
	c.Lookup(context.Background(), "paris", oid)
	if backend.calls != 2 {
		t.Errorf("backend calls = %d, want 2 after Invalidate", backend.calls)
	}
}

func TestCachingResolverFlush(t *testing.T) {
	c, backend, oid, _ := newCachingFixture(t)
	c.Lookup(context.Background(), "paris", oid)
	c.Flush()
	c.Lookup(context.Background(), "paris", oid)
	if backend.calls != 2 {
		t.Errorf("backend calls = %d, want 2 after Flush", backend.calls)
	}
}

func TestCachingResolverErrorNotCached(t *testing.T) {
	c, backend, _, _ := newCachingFixture(t)
	ghost := testOID(51)
	if _, err := c.Lookup(context.Background(), "paris", ghost); !errors.Is(err, location.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Lookup(context.Background(), "paris", ghost); !errors.Is(err, location.ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if backend.calls != 2 {
		t.Errorf("backend calls = %d; negative results must not be cached", backend.calls)
	}
}
