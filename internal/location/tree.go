// Package location implements the Globe Location Service (paper §2.1.2).
//
// The location service maps location-independent OIDs onto contact
// addresses of object replicas. It is organized as a distributed search
// tree over a hierarchy of domains: at the lowest level there is one
// domain per site; sites form regions, regions form larger regions, up to
// a single root. An object is recorded at each site where it has a
// contact address and, recursively, in each enclosing region up to the
// root: site-level records hold the actual contact addresses, while
// records at higher levels hold pointers to the next lower level.
// Lookups proceed with expanding rings — local site first, then the
// enclosing regions, eventually the root — so a nearby replica is found
// without ever consulting distant parts of the tree.
//
// Crucially, the location service is NOT trusted (paper §3.1.2): a
// malicious node can at worst cause denial of service, because clients
// verify everything they retrieve against the object's self-certifying
// OID.
package location

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"globedoc/internal/enc"
	"globedoc/internal/globeid"
)

// Errors reported by the location service.
var (
	ErrUnknownSite = errors.New("location: unknown site")
	ErrNotFound    = errors.New("location: no contact addresses recorded")
	ErrBadSpec     = errors.New("location: invalid domain specification")
)

// ContactAddress tells a client where and how to contact an object
// replica. Address and Protocol identify the endpoint; Zone and Weight
// are advisory per-address metadata for client-side replica selection.
// Like everything the location service says, the metadata is UNTRUSTED:
// a forged zone or weight can at worst steer a client toward a slower
// (or dead) replica — the security pipeline still verifies whatever the
// replica serves, so misdirection is denial of service, never corruption.
type ContactAddress struct {
	// Address is the network address of the hosting object server, in
	// the simulator's "host:service" form.
	Address string
	// Protocol names the wire protocol spoken at the address.
	Protocol string
	// Zone labels the address's coarse network locality (the top-level
	// region of the site the address is recorded at, e.g. "europe").
	// Empty when unknown — pre-PR-8 services never report one.
	Zone string
	// Weight is the advertised capacity preference among otherwise
	// equivalent replicas; higher is preferred. Zero means unspecified.
	Weight uint32
}

// SameEndpoint reports whether b names the same replica endpoint,
// ignoring the advisory metadata.
func (a ContactAddress) SameEndpoint(b ContactAddress) bool {
	return a.Address == b.Address && a.Protocol == b.Protocol
}

// Marshal appends the address to w in the v1 wire form: endpoint only,
// no metadata. This layout is FROZEN — pre-PR-8 decoders reject trailing
// bytes (enc.Reader.Finish), so the extended form must travel on new wire
// operations (OpLookup2), never by appending here.
func (a ContactAddress) Marshal(w *enc.Writer) {
	w.String(a.Address)
	w.String(a.Protocol)
}

// UnmarshalContactAddress reads a v1 (endpoint-only) address from r.
func UnmarshalContactAddress(r *enc.Reader) ContactAddress {
	return ContactAddress{Address: r.String(), Protocol: r.String()}
}

// MarshalExt appends the address with its metadata — the extended form
// carried by the v2 lookup operation.
func (a ContactAddress) MarshalExt(w *enc.Writer) {
	w.String(a.Address)
	w.String(a.Protocol)
	w.String(a.Zone)
	w.Uvarint(uint64(a.Weight))
}

// UnmarshalContactAddressExt reads an extended address from r.
func UnmarshalContactAddressExt(r *enc.Reader) ContactAddress {
	return ContactAddress{
		Address:  r.String(),
		Protocol: r.String(),
		Zone:     r.String(),
		Weight:   uint32(r.Uvarint()),
	}
}

// DomainSpec declares one node of the domain hierarchy. A node with no
// children is a site (leaf domain); anything else is a region.
type DomainSpec struct {
	Name     string
	Children []DomainSpec
}

// node is one domain in the search tree.
type node struct {
	name     string
	parent   *node
	children map[string]*node
	// addrs holds actual contact addresses; only populated at sites.
	addrs map[globeid.OID][]ContactAddress
	// pointers holds, per OID, the names of children whose subtree has a
	// record; only populated at regions.
	pointers map[globeid.OID]map[string]bool
}

func (n *node) isSite() bool { return len(n.children) == 0 }

// Tree is the in-memory search tree, shared by the per-domain service
// frontends. It is safe for concurrent use.
type Tree struct {
	mu    sync.RWMutex
	root  *node
	sites map[string]*node
}

// NewTree builds a search tree from spec. Every leaf name must be unique;
// leaf names are the site identifiers used by Insert and Lookup.
func NewTree(spec DomainSpec) (*Tree, error) {
	t := &Tree{sites: make(map[string]*node)}
	root, err := t.build(spec, nil)
	if err != nil {
		return nil, err
	}
	t.root = root
	if len(t.sites) == 0 {
		return nil, fmt.Errorf("%w: no sites", ErrBadSpec)
	}
	return t, nil
}

func (t *Tree) build(spec DomainSpec, parent *node) (*node, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("%w: empty domain name", ErrBadSpec)
	}
	n := &node{
		name:     spec.Name,
		parent:   parent,
		children: make(map[string]*node),
		addrs:    make(map[globeid.OID][]ContactAddress),
		pointers: make(map[globeid.OID]map[string]bool),
	}
	for _, child := range spec.Children {
		c, err := t.build(child, n)
		if err != nil {
			return nil, err
		}
		if _, dup := n.children[c.name]; dup {
			return nil, fmt.Errorf("%w: duplicate child %q under %q", ErrBadSpec, c.name, n.name)
		}
		n.children[c.name] = c
	}
	if n.isSite() {
		if _, dup := t.sites[n.name]; dup {
			return nil, fmt.Errorf("%w: duplicate site %q", ErrBadSpec, n.name)
		}
		t.sites[n.name] = n
	}
	return n, nil
}

// Sites returns the sorted site names.
func (t *Tree) Sites() []string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	names := make([]string, 0, len(t.sites))
	for name := range t.sites {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Insert records a contact address for oid at the given site and installs
// forwarding pointers in every enclosing region up to the root. The
// endpoint (Address, Protocol) is the record's identity: re-inserting an
// existing endpoint refreshes its metadata instead of duplicating it. An
// address inserted without a zone label inherits the site's zone, so
// every stored record carries locality metadata even when the registrar
// predates it.
func (t *Tree) Insert(site string, oid globeid.OID, addr ContactAddress) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.sites[site]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSite, site)
	}
	if addr.Zone == "" {
		addr.Zone = zoneOfNode(s)
	}
	for i, existing := range s.addrs[oid] {
		if existing.SameEndpoint(addr) {
			s.addrs[oid][i] = addr // idempotent; refresh metadata
			return nil
		}
	}
	s.addrs[oid] = append(s.addrs[oid], addr)
	// Install pointers upward.
	for child, region := s, s.parent; region != nil; child, region = region, region.parent {
		set := region.pointers[oid]
		if set == nil {
			set = make(map[string]bool)
			region.pointers[oid] = set
		}
		set[child.name] = true
	}
	return nil
}

// Delete removes a contact address for oid at site and prunes pointers
// that no longer lead to any record. Matching is by endpoint: the caller
// does not need to know the stored metadata to remove a record.
func (t *Tree) Delete(site string, oid globeid.OID, addr ContactAddress) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.sites[site]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownSite, site)
	}
	addrs := s.addrs[oid]
	kept := addrs[:0]
	removed := false
	for _, a := range addrs {
		if a.SameEndpoint(addr) {
			removed = true
			continue
		}
		kept = append(kept, a)
	}
	if !removed {
		return fmt.Errorf("%w: %s at %q", ErrNotFound, oid.Short(), site)
	}
	if len(kept) == 0 {
		delete(s.addrs, oid)
		// Prune pointers upward while the child subtree holds no record.
		for child, region := s, s.parent; region != nil; child, region = region, region.parent {
			if childHasRecord(child, oid) {
				break
			}
			set := region.pointers[oid]
			delete(set, child.name)
			if len(set) == 0 {
				delete(region.pointers, oid)
			}
		}
	} else {
		s.addrs[oid] = kept
	}
	return nil
}

func childHasRecord(n *node, oid globeid.OID) bool {
	if n.isSite() {
		return len(n.addrs[oid]) > 0
	}
	return len(n.pointers[oid]) > 0
}

// LookupResult carries the contact addresses found for an OID together
// with the number of tree levels the expanding-ring search had to climb
// (0 = found at the local site), a proxy for lookup locality.
type LookupResult struct {
	Addresses []ContactAddress
	Rings     int
}

// Lookup performs an expanding-ring search for oid starting at fromSite.
// The returned addresses are ordered nearest-first: addresses found in a
// smaller ring precede those from larger rings, and within a ring the
// site order is deterministic. Rings records the ring of the FIRST hit
// (0 = local site); outer rings are still collected so a client whose
// nearest replica is unreachable has fallback candidates.
func (t *Tree) Lookup(_ context.Context, fromSite string, oid globeid.OID) (LookupResult, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	start, ok := t.sites[fromSite]
	if !ok {
		return LookupResult{}, fmt.Errorf("%w: %q", ErrUnknownSite, fromSite)
	}
	result := LookupResult{Rings: -1}
	var visited *node
	for ring, n := 0, start; n != nil; ring, n = ring+1, n.parent {
		var found []ContactAddress
		if n.isSite() {
			found = append(found, n.addrs[oid]...)
		} else {
			// Collect from the subtree, excluding the child we came from
			// (already searched in the previous rings).
			found = collect(n, oid, visited)
		}
		visited = n
		if len(found) > 0 {
			if result.Rings < 0 {
				result.Rings = ring
			}
			result.Addresses = append(result.Addresses, found...)
		}
	}
	if result.Rings < 0 {
		return LookupResult{}, fmt.Errorf("%w: %s from %q", ErrNotFound, oid.Short(), fromSite)
	}
	return result, nil
}

// collect gathers all contact addresses for oid in n's subtree, skipping
// the subtree rooted at exclude, in deterministic (sorted child name)
// order.
func collect(n *node, oid globeid.OID, exclude *node) []ContactAddress {
	if n.isSite() {
		return append([]ContactAddress(nil), n.addrs[oid]...)
	}
	set := n.pointers[oid]
	if len(set) == 0 {
		return nil
	}
	names := make([]string, 0, len(set))
	for name := range set {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []ContactAddress
	for _, name := range names {
		child := n.children[name]
		if child == exclude {
			continue
		}
		out = append(out, collect(child, oid, exclude)...)
	}
	return out
}

// AllAddresses returns every contact address recorded for oid anywhere in
// the tree, nearest-first is not defined here (root-down deterministic
// order). Used by administrative tooling.
func (t *Tree) AllAddresses(oid globeid.OID) []ContactAddress {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return collect(t.root, oid, nil)
}

// SiteOf returns the site at which addr is recorded for oid, if any.
// Matching is by endpoint.
func (t *Tree) SiteOf(oid globeid.OID, addr ContactAddress) (string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for name, s := range t.sites {
		for _, a := range s.addrs[oid] {
			if a.SameEndpoint(addr) {
				return name, true
			}
		}
	}
	return "", false
}

// ZoneOf returns the zone label of a site: the name of the top-level
// region (child of the root) containing it, or the site's own name when
// the site hangs directly off the root.
func (t *Tree) ZoneOf(site string) (string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s, ok := t.sites[site]
	if !ok {
		return "", false
	}
	return zoneOfNode(s), true
}

// zoneOfNode walks up from n to the child of the root. Caller holds a
// tree lock.
func zoneOfNode(n *node) string {
	for n.parent != nil && n.parent.parent != nil {
		n = n.parent
	}
	return n.name
}

// String renders the tree structure, for debugging and the admin tool.
func (t *Tree) String() string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var b strings.Builder
	var walk func(n *node, depth int)
	walk = func(n *node, depth int) {
		fmt.Fprintf(&b, "%s%s", strings.Repeat("  ", depth), n.name)
		if n.isSite() {
			fmt.Fprintf(&b, " [site, %d records]", len(n.addrs))
		}
		b.WriteByte('\n')
		names := make([]string, 0, len(n.children))
		for name := range n.children {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			walk(n.children[name], depth+1)
		}
	}
	walk(t.root, 0)
	return b.String()
}

// PaperDomains returns the domain hierarchy matching the paper's testbed:
// a world root, continental regions, and one site per testbed host city.
func PaperDomains() DomainSpec {
	return DomainSpec{
		Name: "world",
		Children: []DomainSpec{
			{Name: "europe", Children: []DomainSpec{
				{Name: "amsterdam-primary"},
				{Name: "amsterdam-secondary"},
				{Name: "paris"},
			}},
			{Name: "northamerica", Children: []DomainSpec{
				{Name: "ithaca"},
			}},
		},
	}
}
