package location_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"globedoc/internal/globeid"
	"globedoc/internal/location"
)

func testOID(b byte) globeid.OID {
	var oid globeid.OID
	for i := range oid {
		oid[i] = b
	}
	return oid
}

func newPaperTree(t *testing.T) *location.Tree {
	t.Helper()
	tree, err := location.NewTree(location.PaperDomains())
	if err != nil {
		t.Fatalf("NewTree: %v", err)
	}
	return tree
}

func addr(s string) location.ContactAddress {
	return location.ContactAddress{Address: s, Protocol: "globedoc"}
}

func TestNewTreeValidation(t *testing.T) {
	cases := []location.DomainSpec{
		{},             // empty name
		{Name: "root"}, // no ... wait, single node IS a site
	}
	_ = cases
	if _, err := location.NewTree(location.DomainSpec{}); !errors.Is(err, location.ErrBadSpec) {
		t.Error("empty spec accepted")
	}
	dup := location.DomainSpec{Name: "r", Children: []location.DomainSpec{{Name: "a"}, {Name: "a"}}}
	if _, err := location.NewTree(dup); !errors.Is(err, location.ErrBadSpec) {
		t.Error("duplicate children accepted")
	}
	dupSite := location.DomainSpec{Name: "r", Children: []location.DomainSpec{
		{Name: "x", Children: []location.DomainSpec{{Name: "s"}}},
		{Name: "y", Children: []location.DomainSpec{{Name: "s"}}},
	}}
	if _, err := location.NewTree(dupSite); !errors.Is(err, location.ErrBadSpec) {
		t.Error("duplicate site names accepted")
	}
}

func TestSites(t *testing.T) {
	tree := newPaperTree(t)
	sites := tree.Sites()
	want := []string{"amsterdam-primary", "amsterdam-secondary", "ithaca", "paris"}
	if len(sites) != len(want) {
		t.Fatalf("Sites = %v", sites)
	}
	for i := range want {
		if sites[i] != want[i] {
			t.Errorf("Sites[%d] = %q, want %q", i, sites[i], want[i])
		}
	}
}

func TestInsertAndLocalLookup(t *testing.T) {
	tree := newPaperTree(t)
	oid := testOID(1)
	a := addr("amsterdam-primary:objsrv")
	if err := tree.Insert("amsterdam-primary", oid, a); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	res, err := tree.Lookup(context.Background(), "amsterdam-primary", oid)
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if res.Rings != 0 {
		t.Errorf("Rings = %d, want 0 (local hit)", res.Rings)
	}
	if len(res.Addresses) != 1 || !res.Addresses[0].SameEndpoint(a) {
		t.Errorf("Addresses = %v", res.Addresses)
	}
	if res.Addresses[0].Zone != "europe" {
		t.Errorf("Zone = %q, want europe (auto-filled at insert)", res.Addresses[0].Zone)
	}
}

func TestExpandingRingSearch(t *testing.T) {
	tree := newPaperTree(t)
	oid := testOID(2)
	a := addr("amsterdam-primary:objsrv")
	if err := tree.Insert("amsterdam-primary", oid, a); err != nil {
		t.Fatal(err)
	}
	// Paris is in the same region (europe): expect the hit at ring 1.
	res, err := tree.Lookup(context.Background(), "paris", oid)
	if err != nil {
		t.Fatalf("Lookup from paris: %v", err)
	}
	if res.Rings != 1 {
		t.Errorf("paris Rings = %d, want 1", res.Rings)
	}
	// Ithaca must climb to the world root: ring 2.
	res, err = tree.Lookup(context.Background(), "ithaca", oid)
	if err != nil {
		t.Fatalf("Lookup from ithaca: %v", err)
	}
	if res.Rings != 2 {
		t.Errorf("ithaca Rings = %d, want 2", res.Rings)
	}
	if len(res.Addresses) != 1 || !res.Addresses[0].SameEndpoint(a) {
		t.Errorf("Addresses = %v", res.Addresses)
	}
}

func TestNearestFirstOrdering(t *testing.T) {
	tree := newPaperTree(t)
	oid := testOID(3)
	amsAddr := addr("amsterdam-primary:objsrv")
	parisAddr := addr("paris:objsrv")
	if err := tree.Insert("amsterdam-primary", oid, amsAddr); err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert("paris", oid, parisAddr); err != nil {
		t.Fatal(err)
	}
	// From paris, the local replica is ring 0 and must come first; the
	// amsterdam replica follows as a fallback candidate.
	res, err := tree.Lookup(context.Background(), "paris", oid)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rings != 0 || len(res.Addresses) != 2 || !res.Addresses[0].SameEndpoint(parisAddr) || !res.Addresses[1].SameEndpoint(amsAddr) {
		t.Errorf("paris lookup = %+v", res)
	}
	// From amsterdam-secondary both are in ring 1 (europe).
	res, err = tree.Lookup(context.Background(), "amsterdam-secondary", oid)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rings != 1 || len(res.Addresses) != 2 {
		t.Errorf("secondary lookup = %+v", res)
	}
}

func TestLookupMiss(t *testing.T) {
	tree := newPaperTree(t)
	_, err := tree.Lookup(context.Background(), "paris", testOID(9))
	if !errors.Is(err, location.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestUnknownSite(t *testing.T) {
	tree := newPaperTree(t)
	oid := testOID(4)
	if err := tree.Insert("atlantis", oid, addr("x:y")); !errors.Is(err, location.ErrUnknownSite) {
		t.Errorf("Insert: %v", err)
	}
	if _, err := tree.Lookup(context.Background(), "atlantis", oid); !errors.Is(err, location.ErrUnknownSite) {
		t.Errorf("Lookup: %v", err)
	}
	if err := tree.Delete("atlantis", oid, addr("x:y")); !errors.Is(err, location.ErrUnknownSite) {
		t.Errorf("Delete: %v", err)
	}
}

func TestInsertIdempotent(t *testing.T) {
	tree := newPaperTree(t)
	oid := testOID(5)
	a := addr("paris:objsrv")
	for i := 0; i < 3; i++ {
		if err := tree.Insert("paris", oid, a); err != nil {
			t.Fatal(err)
		}
	}
	res, err := tree.Lookup(context.Background(), "paris", oid)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Addresses) != 1 {
		t.Errorf("Addresses = %v, want exactly one", res.Addresses)
	}
}

func TestDeleteRemovesAndPrunes(t *testing.T) {
	tree := newPaperTree(t)
	oid := testOID(6)
	a := addr("amsterdam-primary:objsrv")
	if err := tree.Insert("amsterdam-primary", oid, a); err != nil {
		t.Fatal(err)
	}
	if err := tree.Delete("amsterdam-primary", oid, a); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := tree.Lookup(context.Background(), "ithaca", oid); !errors.Is(err, location.ErrNotFound) {
		t.Fatalf("lookup after delete: %v (pointers not pruned?)", err)
	}
	// Deleting again fails.
	if err := tree.Delete("amsterdam-primary", oid, a); !errors.Is(err, location.ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestDeleteKeepsOtherReplicas(t *testing.T) {
	tree := newPaperTree(t)
	oid := testOID(7)
	a1 := addr("amsterdam-primary:objsrv")
	a2 := addr("paris:objsrv")
	tree.Insert("amsterdam-primary", oid, a1)
	tree.Insert("paris", oid, a2)
	if err := tree.Delete("amsterdam-primary", oid, a1); err != nil {
		t.Fatal(err)
	}
	res, err := tree.Lookup(context.Background(), "ithaca", oid)
	if err != nil {
		t.Fatalf("lookup: %v", err)
	}
	if len(res.Addresses) != 1 || !res.Addresses[0].SameEndpoint(a2) {
		t.Errorf("Addresses = %v", res.Addresses)
	}
}

func TestAllAddressesAndSiteOf(t *testing.T) {
	tree := newPaperTree(t)
	oid := testOID(8)
	a1 := addr("amsterdam-primary:objsrv")
	a2 := addr("ithaca:objsrv")
	tree.Insert("amsterdam-primary", oid, a1)
	tree.Insert("ithaca", oid, a2)
	all := tree.AllAddresses(oid)
	if len(all) != 2 {
		t.Errorf("AllAddresses = %v", all)
	}
	site, ok := tree.SiteOf(oid, a2)
	if !ok || site != "ithaca" {
		t.Errorf("SiteOf = %q, %v", site, ok)
	}
	if _, ok := tree.SiteOf(oid, addr("mars:x")); ok {
		t.Error("SiteOf found unrecorded address")
	}
}

func TestTreeString(t *testing.T) {
	tree := newPaperTree(t)
	s := tree.String()
	for _, want := range []string{"world", "europe", "northamerica", "paris", "[site"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestQuickInsertLookupDelete(t *testing.T) {
	tree := newPaperTree(t)
	sites := tree.Sites()
	f := func(seed byte, siteIdx uint8, fromIdx uint8) bool {
		oid := testOID(seed)
		site := sites[int(siteIdx)%len(sites)]
		from := sites[int(fromIdx)%len(sites)]
		a := addr(site + ":objsrv-" + string('a'+rune(seed%26)))
		if tree.Insert(site, oid, a) != nil {
			return false
		}
		res, err := tree.Lookup(context.Background(), from, oid)
		if err != nil {
			return false
		}
		found := false
		for _, got := range res.Addresses {
			if got.SameEndpoint(a) {
				found = true
			}
		}
		if !found {
			return false
		}
		if tree.Delete(site, oid, a) != nil {
			return false
		}
		// After deletion the address must be unreachable.
		res, err = tree.Lookup(context.Background(), from, oid)
		if err == nil {
			for _, got := range res.Addresses {
				if got.SameEndpoint(a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
