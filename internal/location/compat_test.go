package location

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"globedoc/internal/enc"
	"globedoc/internal/globeid"
	"globedoc/internal/netsim"
	"globedoc/internal/telemetry"
	"globedoc/internal/transport"
)

// These tests pin the v1 ↔ v2 wire-compatibility contract of the
// location service in both directions:
//
//   - the v1 encodings (ContactAddress.Marshal, OpLookup responses) are
//     byte-frozen — a pre-PR-8 peer must keep decoding them exactly;
//   - a new client against a v1-only service falls back to OpLookup
//     (losing only metadata) and latches the fallback after one probe;
//   - an old-style client calling OpLookup against a new service gets
//     byte-identical v1 responses, metadata silently dropped.

func compatOID(b byte) globeid.OID {
	var oid globeid.OID
	for i := range oid {
		oid[i] = b
	}
	return oid
}

// TestContactAddressV1GoldenBytes pins the frozen v1 encoding: endpoint
// only, regardless of what metadata the address carries. If this test
// fails, old services can no longer decode our inserts (and vice versa).
func TestContactAddressV1GoldenBytes(t *testing.T) {
	a := ContactAddress{Address: "ams:1", Protocol: "globedoc", Zone: "europe", Weight: 300}
	w := enc.NewWriter(32)
	a.Marshal(w)
	want := []byte("\x05ams:1\x08globedoc")
	if !bytes.Equal(w.Bytes(), want) {
		t.Fatalf("v1 bytes = %q, want %q", w.Bytes(), want)
	}
	r := enc.NewReader(want)
	got := UnmarshalContactAddress(r)
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if got.Address != "ams:1" || got.Protocol != "globedoc" || got.Zone != "" || got.Weight != 0 {
		t.Errorf("decoded %+v", got)
	}
}

// TestContactAddressExtGoldenBytes pins the extended encoding carried by
// OpLookup2.
func TestContactAddressExtGoldenBytes(t *testing.T) {
	a := ContactAddress{Address: "ams:1", Protocol: "globedoc", Zone: "europe", Weight: 300}
	w := enc.NewWriter(32)
	a.MarshalExt(w)
	want := []byte("\x05ams:1\x08globedoc\x06europe\xac\x02") // 300 = 0xac 0x02 uvarint
	if !bytes.Equal(w.Bytes(), want) {
		t.Fatalf("ext bytes = %q, want %q", w.Bytes(), want)
	}
	r := enc.NewReader(want)
	got := UnmarshalContactAddressExt(r)
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
	if got != a {
		t.Errorf("decoded %+v, want %+v", got, a)
	}
}

// TestLookupResultV1RejectsExtBytes proves WHY the dual-op design exists:
// a v1 decoder must refuse an extended body rather than misread it.
func TestLookupResultV1RejectsExtBytes(t *testing.T) {
	res := LookupResult{
		Rings: 1,
		Addresses: []ContactAddress{
			{Address: "ams:1", Protocol: "globedoc", Zone: "europe", Weight: 3},
		},
	}
	if _, err := decodeLookupResult(encodeLookupResultExt(res)); err == nil {
		t.Fatal("v1 decoder accepted extended bytes; trailing metadata went undetected")
	}
	if _, err := decodeLookupResultExt(encodeLookupResult(res)); err == nil {
		t.Fatal("ext decoder accepted v1 bytes; it must notice the missing metadata")
	}
}

// startV1OnlyService runs a location service that predates OpLookup2 —
// only the v1 operations are registered, so the transport itself refuses
// the probe with its unknown-operation error.
func startV1OnlyService(t *testing.T, n *netsim.Network, tree *Tree) {
	t.Helper()
	srv := transport.NewServer()
	srv.Handle(OpInsert, func(body []byte) ([]byte, error) {
		site, oid, addr, err := decodeSiteOIDAddr(body)
		if err != nil {
			return nil, err
		}
		return nil, tree.Insert(site, oid, addr)
	})
	srv.Handle(OpLookup, func(body []byte) ([]byte, error) {
		r := enc.NewReader(body)
		site := r.String()
		var oid globeid.OID
		copy(oid[:], r.Raw(globeid.Size))
		if err := r.Finish(); err != nil {
			return nil, err
		}
		res, err := tree.Lookup(context.Background(), site, oid)
		if err != nil {
			return nil, err
		}
		return encodeLookupResult(res), nil
	})
	l, err := n.Listen(netsim.AmsterdamPrimary, "locsvc")
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(l)
	t.Cleanup(srv.Close)
}

// TestNewClientFallsBackToV1Service: a metadata-aware client against a
// pre-PR-8 service probes OpLookup2 once, latches the refusal, and keeps
// working over OpLookup — results simply carry no metadata.
func TestNewClientFallsBackToV1Service(t *testing.T) {
	n := netsim.PaperTestbed(0)
	defer n.Close()
	tree, err := NewTree(PaperDomains())
	if err != nil {
		t.Fatal(err)
	}
	startV1OnlyService(t, n, tree)

	tel := telemetry.New(nil)
	client := NewClient(n.Dialer(netsim.Paris, netsim.AmsterdamPrimary+":locsvc"))
	client.Configure(transport.Config{Telemetry: tel})
	t.Cleanup(client.Close)

	oid := compatOID(0x21)
	a := ContactAddress{Address: "amsterdam-primary:objsrv", Protocol: "globedoc"}
	if err := tree.Insert("amsterdam-primary", oid, a); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		res, err := client.Lookup(context.Background(), "paris", oid)
		if err != nil {
			t.Fatalf("Lookup %d: %v", i, err)
		}
		if len(res.Addresses) != 1 || !res.Addresses[0].SameEndpoint(a) {
			t.Fatalf("Lookup %d = %+v", i, res.Addresses)
		}
		if res.Addresses[0].Zone != "" || res.Addresses[0].Weight != 0 {
			t.Fatalf("Lookup %d carried metadata over v1: %+v", i, res.Addresses[0])
		}
	}
	if !client.lookup2Unsupported.Load() {
		t.Fatal("fallback not latched after unknown-operation refusal")
	}
	// Exactly one OpLookup2 probe across all three lookups.
	probes := uint64(0)
	for labels, v := range tel.Registry.Snapshot().LabeledCounters[telemetry.MetricRPCCalls] {
		if strings.Contains(labels, OpLookup2) {
			probes += v
		}
	}
	if probes != 1 {
		t.Errorf("OpLookup2 probes = %d, want exactly 1 (latched after first refusal)", probes)
	}
}

// TestNewClientDoesNotLatchOnOtherErrors: a genuine lookup failure from a
// metadata-aware service (not-found) must surface as-is, NOT trigger the
// v1 fallback — only the unknown-operation refusal means "old service".
func TestNewClientDoesNotLatchOnOtherErrors(t *testing.T) {
	n := netsim.PaperTestbed(0)
	defer n.Close()
	tree, err := NewTree(PaperDomains())
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(tree)
	l, err := n.Listen(netsim.AmsterdamPrimary, "locsvc")
	if err != nil {
		t.Fatal(err)
	}
	svc.Start(l)
	t.Cleanup(svc.Close)

	client := NewClient(n.Dialer(netsim.Paris, netsim.AmsterdamPrimary+":locsvc"))
	t.Cleanup(client.Close)

	if _, err := client.Lookup(context.Background(), "paris", compatOID(0x7e)); err == nil {
		t.Fatal("lookup of unrecorded OID succeeded")
	}
	if client.lookup2Unsupported.Load() {
		t.Fatal("a not-found error latched the v1 fallback")
	}

	// Metadata still flows after the failed lookup.
	oid := compatOID(0x7f)
	a := ContactAddress{Address: "paris:objsrv", Protocol: "globedoc"}
	if err := tree.Insert("paris", oid, a); err != nil {
		t.Fatal(err)
	}
	res, err := client.Lookup(context.Background(), "paris", oid)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Addresses) != 1 || res.Addresses[0].Zone != "europe" {
		t.Fatalf("metadata lost after remote error: %+v", res.Addresses)
	}
}

// TestOldClientAgainstNewService: a pre-PR-8 client calls OpLookup
// directly; the new service's response must be byte-decodable by the v1
// decoder and carry no metadata.
func TestOldClientAgainstNewService(t *testing.T) {
	n := netsim.PaperTestbed(0)
	defer n.Close()
	tree, err := NewTree(PaperDomains())
	if err != nil {
		t.Fatal(err)
	}
	svc := NewService(tree)
	l, err := n.Listen(netsim.AmsterdamPrimary, "locsvc")
	if err != nil {
		t.Fatal(err)
	}
	svc.Start(l)
	t.Cleanup(svc.Close)

	oid := compatOID(0x42)
	a := ContactAddress{Address: "amsterdam-primary:objsrv", Protocol: "globedoc", Weight: 9}
	if err := tree.Insert("amsterdam-primary", oid, a); err != nil {
		t.Fatal(err)
	}

	// An old client is exactly a raw transport client speaking OpLookup.
	old := transport.NewClient(n.Dialer(netsim.Ithaca, netsim.AmsterdamPrimary+":locsvc"))
	t.Cleanup(old.Close)
	w := enc.NewWriter(64)
	w.String("ithaca")
	w.Raw(oid[:])
	body, err := old.Call(context.Background(), OpLookup, w.Bytes())
	if err != nil {
		t.Fatalf("v1 Call: %v", err)
	}
	res, err := decodeLookupResult(body)
	if err != nil {
		t.Fatalf("v1 decode of new service's response: %v", err)
	}
	if len(res.Addresses) != 1 || !res.Addresses[0].SameEndpoint(a) {
		t.Fatalf("res = %+v", res)
	}
	if res.Addresses[0].Zone != "" || res.Addresses[0].Weight != 0 {
		t.Fatalf("v1 response leaked metadata: %+v", res.Addresses[0])
	}
}

// TestZoneOfAndAutoFill covers the tree-side metadata semantics the
// service relies on.
func TestZoneOfAndAutoFill(t *testing.T) {
	tree, err := NewTree(PaperDomains())
	if err != nil {
		t.Fatal(err)
	}
	if z, ok := tree.ZoneOf("ithaca"); !ok || z != "northamerica" {
		t.Errorf("ZoneOf(ithaca) = %q, %v", z, ok)
	}
	if z, ok := tree.ZoneOf("amsterdam-secondary"); !ok || z != "europe" {
		t.Errorf("ZoneOf(amsterdam-secondary) = %q, %v", z, ok)
	}
	if _, ok := tree.ZoneOf("atlantis"); ok {
		t.Error("ZoneOf(atlantis) resolved")
	}

	oid := compatOID(0x51)
	// A legacy registrar inserts without metadata: the tree fills the zone.
	if err := tree.Insert("ithaca", oid, ContactAddress{Address: "ithaca:objsrv", Protocol: "globedoc"}); err != nil {
		t.Fatal(err)
	}
	res, err := tree.Lookup(context.Background(), "ithaca", oid)
	if err != nil {
		t.Fatal(err)
	}
	if res.Addresses[0].Zone != "northamerica" {
		t.Errorf("Zone = %q, want auto-filled northamerica", res.Addresses[0].Zone)
	}

	// Re-inserting the same endpoint refreshes metadata in place: the
	// endpoint is the record's identity.
	if err := tree.Insert("ithaca", oid, ContactAddress{Address: "ithaca:objsrv", Protocol: "globedoc", Zone: "northamerica", Weight: 5}); err != nil {
		t.Fatal(err)
	}
	res, err = tree.Lookup(context.Background(), "ithaca", oid)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Addresses) != 1 {
		t.Fatalf("metadata refresh duplicated the record: %+v", res.Addresses)
	}
	if res.Addresses[0].Weight != 5 {
		t.Errorf("Weight = %d, want refreshed 5", res.Addresses[0].Weight)
	}
}
