package location

import (
	"context"
	"sync"
	"time"

	"globedoc/internal/clock"
	"globedoc/internal/globeid"
	"globedoc/internal/telemetry"
)

// CachingResolver wraps any Resolver with a client-side cache of lookup
// results. Replica sets change on replication-system timescales (minutes)
// while a browsing session issues many lookups per second, so caching
// amortizes the location round trip the same way the verified-binding
// cache amortizes the security exchanges.
//
// Because the location service is untrusted anyway, caching it weakens
// nothing: a stale (or poisoned) cached address at worst fails the
// security pipeline, whose failover then calls Invalidate and re-queries.
type CachingResolver struct {
	// Backend answers cache misses.
	Backend Resolver
	// TTL bounds entry lifetime.
	TTL time.Duration
	// Clock is the time source for TTL expiry (nil = real clock). Tests
	// inject a fake clock to exercise expiry deterministically.
	Clock clock.Clock
	// Telemetry receives location_cache_{hits,misses}_total; nil falls
	// back to telemetry.Default().
	Telemetry *telemetry.Telemetry

	mu      sync.Mutex
	entries map[string]map[globeid.OID]cachedLookup

	hits, misses uint64
}

type cachedLookup struct {
	res     LookupResult
	expires time.Time
}

// NewCachingResolver wraps backend with a TTL-bounded cache.
func NewCachingResolver(backend Resolver, ttl time.Duration) *CachingResolver {
	return &CachingResolver{
		Backend: backend,
		TTL:     ttl,
		entries: make(map[string]map[globeid.OID]cachedLookup),
	}
}

func (c *CachingResolver) now() time.Time {
	if c.Clock != nil {
		return c.Clock.Now()
	}
	return clock.Real.Now()
}

// Lookup implements Resolver with caching.
func (c *CachingResolver) Lookup(ctx context.Context, fromSite string, oid globeid.OID) (LookupResult, error) {
	now := c.now()
	tel := telemetry.Or(c.Telemetry)
	c.mu.Lock()
	if bySite := c.entries[fromSite]; bySite != nil {
		if e, ok := bySite[oid]; ok && now.Before(e.expires) {
			c.hits++
			c.mu.Unlock()
			tel.LocationCacheHits.Inc()
			return e.res, nil
		}
	}
	c.misses++
	c.mu.Unlock()
	tel.LocationCacheMisses.Inc()

	res, err := c.Backend.Lookup(ctx, fromSite, oid)
	if err != nil {
		return LookupResult{}, err
	}
	c.mu.Lock()
	bySite := c.entries[fromSite]
	if bySite == nil {
		bySite = make(map[globeid.OID]cachedLookup)
		c.entries[fromSite] = bySite
	}
	bySite[oid] = cachedLookup{res: res, expires: now.Add(c.TTL)}
	c.mu.Unlock()
	return res, nil
}

// Invalidate drops any cached entry for oid (all sites) — called when a
// cached address turned out dead or malicious.
func (c *CachingResolver) Invalidate(oid globeid.OID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, bySite := range c.entries {
		delete(bySite, oid)
	}
}

// Flush empties the cache.
func (c *CachingResolver) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]map[globeid.OID]cachedLookup)
}

// Stats returns (hits, misses).
func (c *CachingResolver) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

var _ Resolver = (*CachingResolver)(nil)
