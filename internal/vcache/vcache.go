// Package vcache implements the verified-content cache: reuse of bytes
// and signature verdicts that the GlobeDoc security pipeline has already
// paid to verify.
//
// The paper's evaluation attributes nearly all of GlobeDoc's overhead
// versus plain HTTP to per-request cryptography — the integrity
// certificate's signature check and the per-element SHA-1 verification
// (§3.2.2). The integrity certificate itself carries exactly what a cache
// needs to make warm fetches nearly crypto-free: a content address (the
// element hash, signed into the certificate) and a validity interval
// (freshness). This package exploits both:
//
//   - Cache is a bounded, content-addressed element cache keyed by the
//     certificate's SHA-1 element hash. An entry is served only after the
//     caller has re-checked the CURRENT verified certificate's entry for
//     the requested name — the hash match IS the authenticity check, so
//     a hit costs neither an RPC nor a digest computation. Entry TTLs
//     track the certificate validity interval; when the interval lapses
//     the client revalidates by fetching a fresh certificate only, never
//     the element bytes.
//   - The same Cache memoizes signature verification verdicts (see
//     sigcache.go): a bounded LRU keyed by (public key, message,
//     signature) digests with singleflight on misses, so one certificate
//     signature is checked once per validity window no matter how many
//     fetches reuse it.
//
// Freshness-handling follows the signed-document approach of Berbecaru &
// Marian (PAPERS.md): the signature's validity interval, not the bytes'
// transport, decides reuse.
//
// This package is verify-only by project invariant (globedoclint
// cryptoscope): it may consume the audited digest types from
// internal/globeid and verify through internal/keys, but it must never
// produce a signature.
//
// All methods are safe for concurrent use. The cache never reads the
// wall clock: callers pass `now`, so fault-injection replays stay
// deterministic.
package vcache

import (
	"container/list"
	"sync"
	"time"

	"globedoc/internal/globeid"
	"globedoc/internal/telemetry"
)

// Default capacity bounds.
const (
	// DefaultMaxBytes bounds the summed element payload bytes retained.
	DefaultMaxBytes = 64 << 20
	// DefaultMaxSignatures bounds the memoized signature verdicts.
	DefaultMaxSignatures = 4096
)

// Element is the cached unit: verified content plus the (unverified,
// advisory) content type it was served with.
type Element struct {
	ContentType string
	Data        []byte
}

// Config sizes a Cache. The zero value uses the documented defaults.
type Config struct {
	// MaxBytes bounds the summed cached element bytes (0 = DefaultMaxBytes).
	MaxBytes int64
	// MaxSignatures bounds the memoized signature verdicts
	// (0 = DefaultMaxSignatures).
	MaxSignatures int
}

// entry is one cached element, tagged with the object whose verified
// certificate vouched for it (the invalidation handle).
type entry struct {
	hash    [globeid.Size]byte
	oid     globeid.OID
	elem    Element
	expires time.Time // latest verified validity bound; zero = no bound
}

// Cache is the verified-content cache. Construct with New; the zero
// value is not usable.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	entries  map[[globeid.Size]byte]*list.Element
	lru      *list.List // of *entry; front = most recently used
	byOID    map[globeid.OID]map[[globeid.Size]byte]struct{}

	evictions *telemetry.Counter

	sig sigCache
}

// New returns an empty cache sized by cfg.
func New(cfg Config) *Cache {
	if cfg.MaxBytes == 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	if cfg.MaxSignatures == 0 {
		cfg.MaxSignatures = DefaultMaxSignatures
	}
	c := &Cache{
		maxBytes: cfg.MaxBytes,
		entries:  make(map[[globeid.Size]byte]*list.Element),
		lru:      list.New(),
		byOID:    make(map[globeid.OID]map[[globeid.Size]byte]struct{}),
	}
	c.sig.init(cfg.MaxSignatures)
	return c
}

// WireMetrics attaches nil-safe telemetry instruments: evictions counts
// every entry removed by capacity pressure or invalidation
// (vcache_evictions_total), sigHits counts memoized signature verdicts
// served without running crypto (signature_cache_hits_total). Fields
// already wired are kept, so several clients can share one cache.
func (c *Cache) WireMetrics(evictions, sigHits *telemetry.Counter) {
	c.mu.Lock()
	if c.evictions == nil {
		c.evictions = evictions
	}
	c.mu.Unlock()
	c.sig.wireMetrics(sigHits)
}

// Get returns the cached element for a content hash the caller has just
// re-verified against the object's CURRENT integrity certificate.
// validUntil is that certificate entry's expiry; the cached entry's TTL
// is re-armed to it, which is how a certificate-only revalidation
// re-freshens bytes without moving them.
//
// The returned Data slice is shared with the cache and must be treated
// as read-only.
func (c *Cache) Get(hash [globeid.Size]byte, now, validUntil time.Time) (Element, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	node, ok := c.entries[hash]
	if !ok {
		return Element{}, false
	}
	e := node.Value.(*entry)
	e.expires = validUntil
	c.lru.MoveToFront(node)
	return e.elem, true
}

// Contains reports whether the content hash is cached, without promoting
// the entry. Revalidation accounting uses it: a lapsed certificate whose
// bytes are still held means the refresh will move no content.
func (c *Cache) Contains(hash [globeid.Size]byte) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[hash]
	return ok
}

// Put stores a freshly verified element under its certificate hash,
// tagged with the object it was verified for. validUntil is the
// certificate entry's expiry. Data is copied, so later caller-side
// mutation cannot poison the cache. Elements larger than the whole
// cache budget are not retained.
func (c *Cache) Put(oid globeid.OID, hash [globeid.Size]byte, elem Element, validUntil time.Time) {
	size := int64(len(elem.Data))
	if size > c.maxBytes {
		return
	}
	data := append([]byte(nil), elem.Data...)
	c.mu.Lock()
	defer c.mu.Unlock()
	if node, ok := c.entries[hash]; ok {
		e := node.Value.(*entry)
		c.untagLocked(e.oid, hash)
		c.bytes += size - int64(len(e.elem.Data))
		e.oid = oid
		e.elem = Element{ContentType: elem.ContentType, Data: data}
		e.expires = validUntil
		c.tagLocked(oid, hash)
		c.lru.MoveToFront(node)
	} else {
		e := &entry{hash: hash, oid: oid, elem: Element{ContentType: elem.ContentType, Data: data}, expires: validUntil}
		c.entries[hash] = c.lru.PushFront(e)
		c.tagLocked(oid, hash)
		c.bytes += size
	}
	for c.bytes > c.maxBytes {
		tail := c.lru.Back()
		if tail == nil {
			break
		}
		c.removeLocked(tail)
	}
}

// InvalidateOID drops every entry verified under oid's certificate —
// called when a binding to that object fails over or fails a security
// check, so nothing vouched for by a now-distrusted interaction
// survives.
func (c *Cache) InvalidateOID(oid globeid.OID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for hash := range c.byOID[oid] {
		if node, ok := c.entries[hash]; ok {
			c.removeLocked(node)
		}
	}
}

// Reconcile drops every entry tagged with oid whose hash the object's
// freshly verified certificate no longer lists — the "cache loses to
// revocation" rule: a superseded certificate version immediately stops
// vouching for its old bytes.
func (c *Cache) Reconcile(oid globeid.OID, listed map[[globeid.Size]byte]bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for hash := range c.byOID[oid] {
		if !listed[hash] {
			if node, ok := c.entries[hash]; ok {
				c.removeLocked(node)
			}
		}
	}
}

// Purge drops entries whose last verified validity bound is behind now.
// Expiry is advisory (every Get is gated by a current-certificate
// freshness check first); Purge just returns the memory early.
func (c *Cache) Purge(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var expired []*list.Element
	for node := c.lru.Back(); node != nil; node = node.Prev() {
		e := node.Value.(*entry)
		if !e.expires.IsZero() && now.After(e.expires) {
			expired = append(expired, node)
		}
	}
	for _, node := range expired {
		c.removeLocked(node)
	}
}

// Len returns the number of cached elements.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Bytes returns the summed cached element payload size.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

func (c *Cache) tagLocked(oid globeid.OID, hash [globeid.Size]byte) {
	set, ok := c.byOID[oid]
	if !ok {
		set = make(map[[globeid.Size]byte]struct{})
		c.byOID[oid] = set
	}
	set[hash] = struct{}{}
}

func (c *Cache) untagLocked(oid globeid.OID, hash [globeid.Size]byte) {
	if set, ok := c.byOID[oid]; ok {
		delete(set, hash)
		if len(set) == 0 {
			delete(c.byOID, oid)
		}
	}
}

func (c *Cache) removeLocked(node *list.Element) {
	e := node.Value.(*entry)
	c.lru.Remove(node)
	delete(c.entries, e.hash)
	c.untagLocked(e.oid, e.hash)
	c.bytes -= int64(len(e.elem.Data))
	c.evictions.Inc()
}
