package vcache

import (
	"container/list"
	"sync"
	"time"

	"globedoc/internal/globeid"
	"globedoc/internal/keys"
	"globedoc/internal/telemetry"
)

// sigCache memoizes successful signature verifications. The key is the
// concatenated audited digests of (public key, message, signature), so a
// verdict can never be replayed for different bytes. Only successes are
// cached: a forged signature must fail the full check every time, and
// caching failures would let an attacker pin garbage in the LRU.
//
// Concurrent misses for the same key are singleflighted: one goroutine
// runs the (expensive, CPU-bound) verification while the rest wait on
// its result. The wait has no context hook — verification is a local
// computation of bounded cost, not an RPC.
type sigCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	lru     *list.List // of *sigEntry; front = most recently used
	flights map[string]*sigFlight

	hits *telemetry.Counter
}

// sigEntry records one verified (key, message, signature) triple and the
// end of the validity window it was verified for.
type sigEntry struct {
	key     string
	expires time.Time // zero = no bound
}

type sigFlight struct {
	done chan struct{}
	err  error
}

func (s *sigCache) init(max int) {
	s.max = max
	s.entries = make(map[string]*list.Element)
	s.lru = list.New()
	s.flights = make(map[string]*sigFlight)
}

func (s *sigCache) wireMetrics(hits *telemetry.Counter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.hits == nil {
		s.hits = hits
	}
}

// VerifySignature is pk.Verify(message, sig) memoized per validity
// window. validUntil bounds how long a success may be replayed from
// cache — pass the certificate's expiry so "checked once per validity
// window" holds exactly; a zero validUntil never expires.
func (c *Cache) VerifySignature(pk keys.PublicKey, message, sig []byte, validUntil, now time.Time) error {
	return c.sig.verify(pk, message, sig, validUntil, now)
}

// SigLen returns the number of memoized signature verdicts.
func (c *Cache) SigLen() int {
	c.sig.mu.Lock()
	defer c.sig.mu.Unlock()
	return len(c.sig.entries)
}

func (s *sigCache) verify(pk keys.PublicKey, message, sig []byte, validUntil, now time.Time) error {
	key := sigKey(pk, message, sig)
	for {
		s.mu.Lock()
		if node, ok := s.entries[key]; ok {
			e := node.Value.(*sigEntry)
			if e.expires.IsZero() || !now.After(e.expires) {
				s.lru.MoveToFront(node)
				hits := s.hits
				s.mu.Unlock()
				hits.Inc()
				return nil
			}
			// The verified window lapsed; the verdict no longer covers
			// this check.
			s.lru.Remove(node)
			delete(s.entries, key)
		}
		if f, ok := s.flights[key]; ok {
			s.mu.Unlock()
			<-f.done
			if f.err != nil {
				return f.err
			}
			// The leader verified these exact bytes; sharing its success
			// is a cache hit. Loop to pick up the cached entry so the
			// expiry check still applies.
			continue
		}
		f := &sigFlight{done: make(chan struct{})}
		s.flights[key] = f
		s.mu.Unlock()

		err := pk.Verify(message, sig)

		s.mu.Lock()
		delete(s.flights, key)
		if err == nil {
			s.insertLocked(key, validUntil)
		}
		s.mu.Unlock()
		f.err = err
		close(f.done)
		return err
	}
}

func (s *sigCache) insertLocked(key string, expires time.Time) {
	if node, ok := s.entries[key]; ok {
		node.Value.(*sigEntry).expires = expires
		s.lru.MoveToFront(node)
		return
	}
	s.entries[key] = s.lru.PushFront(&sigEntry{key: key, expires: expires})
	for len(s.entries) > s.max {
		tail := s.lru.Back()
		if tail == nil {
			break
		}
		s.lru.Remove(tail)
		delete(s.entries, tail.Value.(*sigEntry).key)
	}
}

// sigKey derives the memoization key from the audited element digest
// over each component, length-prefix-free because the digests are
// fixed-size.
func sigKey(pk keys.PublicKey, message, sig []byte) string {
	kh := globeid.HashElement(pk.Marshal())
	mh := globeid.HashElement(message)
	sh := globeid.HashElement(sig)
	buf := make([]byte, 0, 3*globeid.Size)
	buf = append(buf, kh[:]...)
	buf = append(buf, mh[:]...)
	buf = append(buf, sh[:]...)
	return string(buf)
}
