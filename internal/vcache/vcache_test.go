package vcache

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"globedoc/internal/globeid"
	"globedoc/internal/keys"
	"globedoc/internal/keys/keytest"
	"globedoc/internal/telemetry"
)

var t0 = time.Date(2005, 4, 4, 12, 0, 0, 0, time.UTC)

func oidN(n byte) globeid.OID {
	var oid globeid.OID
	oid[0] = n
	return oid
}

func elemN(n int) ([globeid.Size]byte, Element) {
	data := []byte(fmt.Sprintf("element-%d", n))
	return globeid.HashElement(data), Element{ContentType: "text/html", Data: data}
}

func TestGetPutRoundTrip(t *testing.T) {
	c := New(Config{})
	hash, elem := elemN(1)
	if _, ok := c.Get(hash, t0, t0.Add(time.Hour)); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(oidN(1), hash, elem, t0.Add(time.Hour))
	got, ok := c.Get(hash, t0, t0.Add(time.Hour))
	if !ok {
		t.Fatal("miss after Put")
	}
	if got.ContentType != elem.ContentType || !bytes.Equal(got.Data, elem.Data) {
		t.Fatalf("got %+v, want %+v", got, elem)
	}
	if c.Len() != 1 || c.Bytes() != int64(len(elem.Data)) {
		t.Fatalf("Len=%d Bytes=%d", c.Len(), c.Bytes())
	}
}

func TestPutCopiesData(t *testing.T) {
	c := New(Config{})
	data := []byte("mutate me")
	hash := globeid.HashElement(data)
	c.Put(oidN(1), hash, Element{Data: data}, t0.Add(time.Hour))
	data[0] = 'X'
	got, ok := c.Get(hash, t0, t0.Add(time.Hour))
	if !ok || got.Data[0] != 'm' {
		t.Fatalf("cache shares the caller's slice: %q", got.Data)
	}
}

func TestLRUEvictionByBytes(t *testing.T) {
	h1, e1 := elemN(1)
	h2, e2 := elemN(2)
	h3, e3 := elemN(3)
	budget := int64(len(e1.Data) + len(e2.Data))
	reg := telemetry.NewRegistry()
	evictions := reg.Counter(telemetry.MetricVCacheEvictions)
	c := New(Config{MaxBytes: budget})
	c.WireMetrics(evictions, nil)

	c.Put(oidN(1), h1, e1, t0.Add(time.Hour))
	c.Put(oidN(1), h2, e2, t0.Add(time.Hour))
	// Touch e1 so e2 is the LRU victim.
	if _, ok := c.Get(h1, t0, t0.Add(time.Hour)); !ok {
		t.Fatal("e1 missing")
	}
	c.Put(oidN(1), h3, e3, t0.Add(time.Hour))

	if _, ok := c.Get(h2, t0, t0.Add(time.Hour)); ok {
		t.Fatal("LRU entry e2 survived eviction")
	}
	if _, ok := c.Get(h1, t0, t0.Add(time.Hour)); !ok {
		t.Fatal("recently used e1 was evicted")
	}
	if _, ok := c.Get(h3, t0, t0.Add(time.Hour)); !ok {
		t.Fatal("new entry e3 missing")
	}
	if evictions.Value() != 1 {
		t.Fatalf("evictions = %d, want 1", evictions.Value())
	}
	if c.Bytes() > budget {
		t.Fatalf("Bytes=%d over budget %d", c.Bytes(), budget)
	}
}

func TestOversizedElementNotCached(t *testing.T) {
	c := New(Config{MaxBytes: 4})
	hash, elem := elemN(1)
	c.Put(oidN(1), hash, elem, t0.Add(time.Hour))
	if c.Len() != 0 {
		t.Fatal("oversized element was cached")
	}
}

func TestInvalidateOID(t *testing.T) {
	c := New(Config{})
	h1, e1 := elemN(1)
	h2, e2 := elemN(2)
	c.Put(oidN(1), h1, e1, t0.Add(time.Hour))
	c.Put(oidN(2), h2, e2, t0.Add(time.Hour))
	c.InvalidateOID(oidN(1))
	if _, ok := c.Get(h1, t0, t0.Add(time.Hour)); ok {
		t.Fatal("invalidated OID entry survived")
	}
	if _, ok := c.Get(h2, t0, t0.Add(time.Hour)); !ok {
		t.Fatal("unrelated OID entry was dropped")
	}
}

func TestReconcileDropsDelisted(t *testing.T) {
	c := New(Config{})
	h1, e1 := elemN(1)
	h2, e2 := elemN(2)
	c.Put(oidN(1), h1, e1, t0.Add(time.Hour))
	c.Put(oidN(1), h2, e2, t0.Add(time.Hour))
	// The refreshed certificate only lists h1: h2's bytes were revoked.
	c.Reconcile(oidN(1), map[[globeid.Size]byte]bool{h1: true})
	if _, ok := c.Get(h2, t0, t0.Add(time.Hour)); ok {
		t.Fatal("revoked entry survived Reconcile")
	}
	if _, ok := c.Get(h1, t0, t0.Add(time.Hour)); !ok {
		t.Fatal("still-listed entry was dropped")
	}
}

func TestPurgeDropsExpired(t *testing.T) {
	c := New(Config{})
	h1, e1 := elemN(1)
	h2, e2 := elemN(2)
	c.Put(oidN(1), h1, e1, t0.Add(time.Minute))
	c.Put(oidN(1), h2, e2, t0.Add(time.Hour))
	c.Purge(t0.Add(30 * time.Minute))
	if c.Contains(h1) {
		t.Fatal("expired entry survived Purge")
	}
	if !c.Contains(h2) {
		t.Fatal("live entry was purged")
	}
}

func TestGetRearmsExpiry(t *testing.T) {
	c := New(Config{})
	hash, elem := elemN(1)
	c.Put(oidN(1), hash, elem, t0.Add(time.Minute))
	// A certificate-only revalidation re-verifies freshness and re-arms
	// the entry with the new interval; the bytes stay put.
	if _, ok := c.Get(hash, t0.Add(2*time.Minute), t0.Add(time.Hour)); !ok {
		t.Fatal("revalidated entry missing")
	}
	c.Purge(t0.Add(30 * time.Minute))
	if !c.Contains(hash) {
		t.Fatal("re-armed entry was purged inside its new interval")
	}
}

func TestPutReplacesAndRetags(t *testing.T) {
	c := New(Config{})
	hash, elem := elemN(1)
	c.Put(oidN(1), hash, elem, t0.Add(time.Minute))
	c.Put(oidN(2), hash, elem, t0.Add(time.Hour))
	if c.Len() != 1 {
		t.Fatalf("Len=%d after same-hash Put, want 1", c.Len())
	}
	c.InvalidateOID(oidN(1))
	if !c.Contains(hash) {
		t.Fatal("entry retagged to oid2 was dropped by oid1 invalidation")
	}
	c.InvalidateOID(oidN(2))
	if c.Contains(hash) {
		t.Fatal("entry survived invalidation of its current OID")
	}
}

func TestVerifySignatureMemoized(t *testing.T) {
	kp := keytest.Ed()
	msg := []byte("signed bytes")
	sig, err := kp.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	hits := reg.Counter(telemetry.MetricSigCacheHits)
	c := New(Config{})
	c.WireMetrics(nil, hits)

	until := t0.Add(time.Hour)
	for i := 0; i < 5; i++ {
		if err := c.VerifySignature(kp.Public(), msg, sig, until, t0); err != nil {
			t.Fatalf("verify %d: %v", i, err)
		}
	}
	if hits.Value() != 4 {
		t.Fatalf("signature cache hits = %d, want 4", hits.Value())
	}
	if c.SigLen() != 1 {
		t.Fatalf("SigLen=%d, want 1", c.SigLen())
	}
}

func TestVerifySignatureExpiryForcesRecheck(t *testing.T) {
	kp := keytest.Ed()
	msg := []byte("windowed")
	sig, err := kp.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	hits := reg.Counter(telemetry.MetricSigCacheHits)
	c := New(Config{})
	c.WireMetrics(nil, hits)

	if err := c.VerifySignature(kp.Public(), msg, sig, t0.Add(time.Minute), t0); err != nil {
		t.Fatal(err)
	}
	// Past the validity window the memoized verdict no longer applies.
	if err := c.VerifySignature(kp.Public(), msg, sig, t0.Add(time.Hour), t0.Add(2*time.Minute)); err != nil {
		t.Fatal(err)
	}
	if hits.Value() != 0 {
		t.Fatalf("hits = %d, want 0 (verdict expired)", hits.Value())
	}
}

func TestVerifySignatureFailureNotCached(t *testing.T) {
	kp := keytest.Ed()
	msg := []byte("message")
	bad := bytes.Repeat([]byte{0x42}, 64)
	c := New(Config{})
	for i := 0; i < 3; i++ {
		if err := c.VerifySignature(kp.Public(), msg, bad, t0.Add(time.Hour), t0); !errors.Is(err, keys.ErrBadSignature) {
			t.Fatalf("verify %d: %v, want ErrBadSignature", i, err)
		}
	}
	if c.SigLen() != 0 {
		t.Fatalf("SigLen=%d, failures must not be cached", c.SigLen())
	}
}

func TestVerifySignatureDistinguishesTriples(t *testing.T) {
	kpA, kpB := keytest.Ed(), keytest.RSA()
	msg := []byte("shared message")
	sigA, err := kpA.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	c := New(Config{})
	if err := c.VerifySignature(kpA.Public(), msg, sigA, t0.Add(time.Hour), t0); err != nil {
		t.Fatal(err)
	}
	// Same message+signature under a different key must not hit.
	if err := c.VerifySignature(kpB.Public(), msg, sigA, t0.Add(time.Hour), t0); !errors.Is(err, keys.ErrBadSignature) {
		t.Fatalf("cross-key verify: %v, want ErrBadSignature", err)
	}
	// Tampered message under the right key must not hit either.
	if err := c.VerifySignature(kpA.Public(), []byte("other message"), sigA, t0.Add(time.Hour), t0); !errors.Is(err, keys.ErrBadSignature) {
		t.Fatalf("tampered-message verify: %v, want ErrBadSignature", err)
	}
}

func TestSignatureLRUBound(t *testing.T) {
	kp := keytest.Ed()
	c := New(Config{MaxSignatures: 2})
	for i := 0; i < 5; i++ {
		msg := []byte(fmt.Sprintf("message-%d", i))
		sig, err := kp.Sign(msg)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.VerifySignature(kp.Public(), msg, sig, t0.Add(time.Hour), t0); err != nil {
			t.Fatal(err)
		}
	}
	if c.SigLen() != 2 {
		t.Fatalf("SigLen=%d, want bound 2", c.SigLen())
	}
}

// TestConcurrentElementCache hammers lookup/insert/evict/invalidate from
// many goroutines; run under -race it is the data-race regression test
// for the element side of the cache.
func TestConcurrentElementCache(t *testing.T) {
	const workers = 8
	hashes := make([][globeid.Size]byte, 32)
	elems := make([]Element, 32)
	for i := range hashes {
		hashes[i], elems[i] = elemN(i)
	}
	// A budget of roughly half the working set keeps eviction churning.
	var budget int64
	for _, e := range elems[:16] {
		budget += int64(len(e.Data))
	}
	c := New(Config{MaxBytes: budget})
	c.WireMetrics(telemetry.NewRegistry().Counter(telemetry.MetricVCacheEvictions), nil)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			until := t0.Add(time.Hour)
			for i := 0; i < 500; i++ {
				n := (i*7 + w*13) % len(hashes)
				switch i % 5 {
				case 0:
					c.Put(oidN(byte(n%4)), hashes[n], elems[n], until)
				case 1:
					if got, ok := c.Get(hashes[n], t0, until); ok && !bytes.Equal(got.Data, elems[n].Data) {
						panic("cache returned wrong bytes")
					}
				case 2:
					c.Contains(hashes[n])
				case 3:
					c.InvalidateOID(oidN(byte(n % 4)))
				default:
					c.Purge(t0)
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Bytes() > budget {
		t.Fatalf("Bytes=%d over budget %d after concurrent churn", c.Bytes(), budget)
	}
}

// TestConcurrentSignatureSingleflight launches many goroutines verifying
// the same signature at once and asserts the underlying crypto ran far
// fewer times than the number of verifications — concurrent misses share
// one in-flight check, later calls hit the memo.
func TestConcurrentSignatureSingleflight(t *testing.T) {
	kp := keytest.RSA()
	msg := []byte("hot certificate bytes")
	sig, err := kp.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	c := New(Config{})
	reg := telemetry.NewRegistry()
	hits := reg.Counter(telemetry.MetricSigCacheHits)
	c.WireMetrics(nil, hits)

	const goroutines = 16
	const perG = 20
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < perG; i++ {
				if err := c.VerifySignature(kp.Public(), msg, sig, t0.Add(time.Hour), t0); err != nil {
					panic(err)
				}
			}
		}()
	}
	close(start)
	wg.Wait()

	total := uint64(goroutines * perG)
	cryptoRuns := total - hits.Value()
	if cryptoRuns < 1 || cryptoRuns > goroutines {
		t.Fatalf("crypto ran %d times for %d verifications; singleflight should bound it by %d", cryptoRuns, total, goroutines)
	}
	if c.SigLen() != 1 {
		t.Fatalf("SigLen=%d, want 1", c.SigLen())
	}
}

// TestNilMetricsSafe exercises every mutation path with no instruments
// wired; the nil-safe telemetry contract means nothing may panic.
func TestNilMetricsSafe(t *testing.T) {
	c := New(Config{MaxBytes: 8})
	hash, elem := elemN(1)
	c.Put(oidN(1), hash, elem, t0.Add(time.Hour))
	h2, e2 := elemN(2)
	c.Put(oidN(1), h2, e2, t0.Add(time.Hour))
	c.InvalidateOID(oidN(1))
	c.Purge(t0.Add(2 * time.Hour))

	kp := keytest.Ed()
	sig, err := kp.Sign([]byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.VerifySignature(kp.Public(), []byte("m"), sig, t0.Add(time.Hour), t0); err != nil {
		t.Fatal(err)
	}
	if err := c.VerifySignature(kp.Public(), []byte("m"), sig, t0.Add(time.Hour), t0); err != nil {
		t.Fatal(err)
	}
}
