package replication

import (
	"fmt"
	"testing"

	"globedoc/internal/globeid"
)

func placementOID(i int) globeid.OID {
	var oid globeid.OID
	oid[0] = byte(i)
	oid[1] = byte(i >> 8)
	oid[19] = 0x5a
	return oid
}

func fleet(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("srv-%02d", i)
	}
	return out
}

func TestPlacementValidation(t *testing.T) {
	if _, err := NewPlacement(nil, 0, 3); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := NewPlacement(fleet(3), 0, 0); err == nil {
		t.Error("zero factor accepted")
	}
	if _, err := NewPlacement([]string{"a", ""}, 0, 1); err == nil {
		t.Error("empty server name accepted")
	}
	if _, err := NewPlacement(fleet(3), -1, 1); err == nil {
		t.Error("negative vnodes accepted")
	}
	// Factor beyond the fleet is capped, not an error.
	p, err := NewPlacement(fleet(2), 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Factor() != 2 {
		t.Errorf("Factor = %d, want capped to 2", p.Factor())
	}
}

func TestPlacementDeterministicAndOrderIndependent(t *testing.T) {
	a, err := NewPlacement(fleet(12), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Same fleet, shuffled and with duplicates: identical ring.
	shuffled := append(fleet(12)[6:], fleet(12)[:6]...)
	shuffled = append(shuffled, "srv-03", "srv-09")
	b, err := NewPlacement(shuffled, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		oid := placementOID(i)
		sa, sb := a.ServersFor(oid), b.ServersFor(oid)
		if len(sa) != 3 || len(sb) != 3 {
			t.Fatalf("oid %d: %v vs %v", i, sa, sb)
		}
		for j := range sa {
			if sa[j] != sb[j] {
				t.Fatalf("oid %d: placement differs: %v vs %v", i, sa, sb)
			}
		}
		// Distinct servers.
		if sa[0] == sa[1] || sa[1] == sa[2] || sa[0] == sa[2] {
			t.Fatalf("oid %d: duplicate server in %v", i, sa)
		}
	}
}

func TestPlacementSpreadsLoad(t *testing.T) {
	p, err := NewPlacement(fleet(12), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	const objects = 1200
	load := make(map[string]int)
	for i := 0; i < objects; i++ {
		for _, s := range p.ServersFor(placementOID(i)) {
			load[s]++
		}
	}
	if len(load) != 12 {
		t.Fatalf("only %d of 12 servers received replicas: %v", len(load), load)
	}
	// Perfect balance is 300 replicas per server; consistent hashing with
	// 64 vnodes stays within a loose 2x band.
	for s, n := range load {
		if n < 100 || n > 600 {
			t.Errorf("server %s carries %d replicas (expected ~300)", s, n)
		}
	}
}

func TestPlacementRebalanceIsMinimal(t *testing.T) {
	cur, err := NewPlacement(fleet(12), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	// One server leaves the fleet.
	next, err := NewPlacement(fleet(11), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	const objects = 600
	oids := make([]globeid.OID, objects)
	for i := range oids {
		oids[i] = placementOID(i)
	}
	moves := cur.Rebalance(next, oids)
	// Every move must only add replicas for objects that lost srv-11 (or
	// whose walk order shifted past its vnodes); no object should move
	// more than one replica for a single-server removal.
	for _, m := range moves {
		if len(m.Add) > 1 || len(m.Remove) > 1 {
			t.Errorf("oid %s: non-minimal move %+v", m.OID.Short(), m)
		}
		for _, s := range m.Add {
			if s == "srv-11" {
				t.Errorf("oid %s: rebalance added a replica on the removed server", m.OID.Short())
			}
		}
	}
	// With factor 3 of 12 servers, removing one should move roughly
	// 3/12 = 25% of objects; allow a broad band around it.
	if n := len(moves); n < objects/10 || n > objects/2 {
		t.Errorf("rebalance moved %d/%d objects, want roughly 25%%", n, objects)
	}
	// Identity rebalance is empty.
	if n := len(cur.Rebalance(cur, oids)); n != 0 {
		t.Errorf("identity rebalance produced %d moves", n)
	}
}

func TestPlacementSingleServer(t *testing.T) {
	p, err := NewPlacement([]string{"only"}, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	got := p.ServersFor(placementOID(7))
	if len(got) != 1 || got[0] != "only" {
		t.Errorf("ServersFor = %v", got)
	}
}
