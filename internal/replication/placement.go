package replication

import (
	"fmt"
	"hash/fnv"
	"sort"

	"globedoc/internal/globeid"
)

// DefaultVirtualNodes is how many ring positions each server occupies
// when Placement is built with vnodes == 0. Enough that a 12-server
// fleet's arc lengths even out to within a few percent, small enough
// that ring construction stays trivial.
const DefaultVirtualNodes = 64

// Placement assigns object replicas to servers of a fleet by consistent
// hashing: every server occupies VirtualNodes positions on a 64-bit hash
// ring, and an OID's replicas live on the first Factor distinct servers
// found walking clockwise from the OID's own hash. Adding or removing a
// server moves only the arcs adjacent to its virtual nodes — on average
// a 1/N share of the objects — which Rebalance reports as an explicit
// per-OID diff for the deployment layer to execute.
//
// Placement is deterministic and immutable after construction: the same
// fleet and parameters yield the same ring on every process, so any
// component (deploy tooling, servers, debugging CLIs) can compute where
// an object belongs without coordination.
type Placement struct {
	servers []string // sorted, deduplicated
	factor  int
	vnodes  int
	ring    []ringPoint // sorted by hash
}

type ringPoint struct {
	hash   uint64
	server int // index into servers
}

// NewPlacement builds the ring for the given fleet. factor is the
// replication factor (replicas per object); it is capped at the fleet
// size. vnodes == 0 means DefaultVirtualNodes. The server list is
// deduplicated; order does not matter (the ring depends only on the
// set). An empty fleet or non-positive factor is an error.
func NewPlacement(servers []string, vnodes, factor int) (*Placement, error) {
	if len(servers) == 0 {
		return nil, fmt.Errorf("replication: placement needs at least one server")
	}
	if factor <= 0 {
		return nil, fmt.Errorf("replication: replication factor %d is not positive", factor)
	}
	if vnodes == 0 {
		vnodes = DefaultVirtualNodes
	}
	if vnodes < 0 {
		return nil, fmt.Errorf("replication: virtual node count %d is negative", vnodes)
	}
	seen := make(map[string]bool, len(servers))
	uniq := make([]string, 0, len(servers))
	for _, s := range servers {
		if s == "" {
			return nil, fmt.Errorf("replication: empty server name in fleet")
		}
		if !seen[s] {
			seen[s] = true
			uniq = append(uniq, s)
		}
	}
	sort.Strings(uniq)
	if factor > len(uniq) {
		factor = len(uniq)
	}
	p := &Placement{
		servers: uniq,
		factor:  factor,
		vnodes:  vnodes,
		ring:    make([]ringPoint, 0, len(uniq)*vnodes),
	}
	for si, s := range uniq {
		for v := 0; v < vnodes; v++ {
			p.ring = append(p.ring, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", s, v)), server: si})
		}
	}
	sort.Slice(p.ring, func(i, j int) bool {
		if p.ring[i].hash != p.ring[j].hash {
			return p.ring[i].hash < p.ring[j].hash
		}
		return p.ring[i].server < p.ring[j].server
	})
	return p, nil
}

func ringHash(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key)) // fnv never errors
	return mix64(h.Sum64())
}

// mix64 is a splitmix64-style finalizer. Raw FNV-1a values of short,
// similar keys ("srv-03#17") differ mostly in their low bits and cluster
// on the ring, skewing arc lengths badly; the avalanche spreads them.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Servers returns the fleet, sorted.
func (p *Placement) Servers() []string {
	return append([]string(nil), p.servers...)
}

// Factor returns the effective replication factor.
func (p *Placement) Factor() int { return p.factor }

// ServersFor returns the factor distinct servers that should host oid's
// replicas, in ring order starting at the OID's hash. The first entry is
// the object's home server.
func (p *Placement) ServersFor(oid globeid.OID) []string {
	start := sort.Search(len(p.ring), func(i int) bool {
		return p.ring[i].hash >= ringHash(oid.String())
	})
	out := make([]string, 0, p.factor)
	taken := make(map[int]bool, p.factor)
	for i := 0; i < len(p.ring) && len(out) < p.factor; i++ {
		pt := p.ring[(start+i)%len(p.ring)]
		if !taken[pt.server] {
			taken[pt.server] = true
			out = append(out, p.servers[pt.server])
		}
	}
	return out
}

// Move is one replica relocation a fleet change requires for one object.
type Move struct {
	OID globeid.OID
	// Add lists servers that must gain a replica of OID.
	Add []string
	// Remove lists servers that must drop their replica of OID.
	Remove []string
}

// Rebalance diffs this placement against next for the given objects: for
// each OID whose server set changes it reports which servers gain and
// lose a replica. OIDs whose placement is unchanged are omitted, so the
// result's size is the migration cost of the fleet change. The output is
// ordered like oids (deduplicated, first occurrence wins).
func (p *Placement) Rebalance(next *Placement, oids []globeid.OID) []Move {
	var moves []Move
	done := make(map[globeid.OID]bool, len(oids))
	for _, oid := range oids {
		if done[oid] {
			continue
		}
		done[oid] = true
		cur := p.ServersFor(oid)
		nxt := next.ServersFor(oid)
		curSet := make(map[string]bool, len(cur))
		for _, s := range cur {
			curSet[s] = true
		}
		nxtSet := make(map[string]bool, len(nxt))
		for _, s := range nxt {
			nxtSet[s] = true
		}
		var m Move
		for _, s := range nxt {
			if !curSet[s] {
				m.Add = append(m.Add, s)
			}
		}
		for _, s := range cur {
			if !nxtSet[s] {
				m.Remove = append(m.Remove, s)
			}
		}
		if len(m.Add) == 0 && len(m.Remove) == 0 {
			continue
		}
		m.OID = oid
		moves = append(moves, m)
	}
	return moves
}
