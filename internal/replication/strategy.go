// Package replication implements per-document replication strategies and
// the adaptive strategy selector of Pierre, van Steen & Tanenbaum,
// "Dynamically Selecting Optimal Distribution Strategies for Web
// Documents" (the paper's ref [13]).
//
// GlobeDoc's distinguishing feature over one-size-fits-all CDNs is that
// every document carries its own replication policy as part of the object
// (paper §2). This package provides:
//
//   - a trace-driven cost model that evaluates candidate strategies on a
//     document's recent access trace (Simulate), reporting client
//     latency, consumed bandwidth and stale documents served;
//   - a selector that picks the strategy minimizing a weighted cost
//     (Select), mirroring ref [13]'s approach;
//   - a runtime flash-crowd detector (dynamic.go) that the object server
//     uses to trigger replica creation while a document is live.
package replication

import (
	"fmt"
	"sort"
	"time"
)

// Event is one entry of a document access trace.
type Event struct {
	T    time.Time
	Site string // client site issuing the request
	// Update marks a write by the owner rather than a client read.
	Update bool
}

// Env describes the world a strategy is evaluated in.
type Env struct {
	// PrimarySite hosts the master copy.
	PrimarySite string
	// Sites lists every site where replicas could be placed.
	Sites []string
	// RTT returns the round-trip time between two sites.
	RTT func(a, b string) time.Duration
	// DocSize is the document transfer size in bytes.
	DocSize int
	// Bandwidth returns bytes/second between two sites (0 = unlimited).
	Bandwidth func(a, b string) float64
}

// transfer returns the client-perceived time to move size bytes from a to
// b: one RTT plus serialization.
func (e Env) transfer(a, b string, size int) time.Duration {
	d := e.RTT(a, b)
	if bw := e.Bandwidth(a, b); bw > 0 {
		d += time.Duration(float64(size) / bw * float64(time.Second))
	}
	return d
}

// Metrics aggregates what a strategy cost on a trace. They correspond to
// the three axes of ref [13]: client-perceived latency r, network
// bandwidth b, and served-stale documents w.
type Metrics struct {
	// TotalLatency sums client-perceived retrieval latency over reads.
	TotalLatency time.Duration
	// Bandwidth sums bytes moved over wide-area links.
	Bandwidth int64
	// Stale counts reads served from a copy older than the latest update.
	Stale int
	// Replicas is the peak number of full replicas maintained.
	Replicas int
}

// Reads returns latency averaged over n reads.
func (m Metrics) MeanLatency(reads int) time.Duration {
	if reads == 0 {
		return 0
	}
	return m.TotalLatency / time.Duration(reads)
}

// Strategy evaluates itself over a trace. Implementations are
// deterministic and side-effect free.
type Strategy interface {
	Name() string
	Simulate(trace []Event, env Env) Metrics
}

// NoReplication serves every request from the primary.
type NoReplication struct{}

// Name implements Strategy.
func (NoReplication) Name() string { return "NoRepl" }

// Simulate implements Strategy.
func (NoReplication) Simulate(trace []Event, env Env) Metrics {
	var m Metrics
	m.Replicas = 1
	for _, ev := range trace {
		if ev.Update {
			continue
		}
		m.TotalLatency += env.transfer(env.PrimarySite, ev.Site, env.DocSize)
		if ev.Site != env.PrimarySite {
			m.Bandwidth += int64(env.DocSize)
		}
	}
	return m
}

// CacheTTL places a cache at every client site; a cached copy is reused
// until its TTL lapses, with no regard to updates (the classic Alex/TTL
// web-cache policy). Cheap, but serves stale documents.
type CacheTTL struct {
	TTL time.Duration
}

// Name implements Strategy.
func (s CacheTTL) Name() string { return fmt.Sprintf("CacheTTL(%s)", s.TTL) }

// Simulate implements Strategy.
func (s CacheTTL) Simulate(trace []Event, env Env) Metrics {
	var m Metrics
	m.Replicas = 1
	type cacheState struct {
		fetched time.Time
		version int
		valid   bool
	}
	caches := make(map[string]*cacheState)
	version := 0
	for _, ev := range trace {
		if ev.Update {
			version++
			continue
		}
		c := caches[ev.Site]
		if c == nil {
			c = &cacheState{}
			caches[ev.Site] = c
		}
		if c.valid && ev.T.Sub(c.fetched) < s.TTL {
			// Local cache hit: LAN-speed, charge no wide-area traffic.
			if c.version != version {
				m.Stale++
			}
			continue
		}
		m.TotalLatency += env.transfer(env.PrimarySite, ev.Site, env.DocSize)
		if ev.Site != env.PrimarySite {
			m.Bandwidth += int64(env.DocSize)
		}
		*c = cacheState{fetched: ev.T, version: version, valid: true}
	}
	return m
}

// CacheVerify places a cache at every client site and revalidates each
// hit with the primary (an If-Modified-Since round trip): never stale,
// but every access pays at least one RTT.
type CacheVerify struct{}

// Name implements Strategy.
func (CacheVerify) Name() string { return "CacheVerify" }

// Simulate implements Strategy.
func (CacheVerify) Simulate(trace []Event, env Env) Metrics {
	const checkSize = 256 // revalidation request+response bytes
	var m Metrics
	m.Replicas = 1
	cached := make(map[string]int) // site -> version held
	version := 0
	for _, ev := range trace {
		if ev.Update {
			version++
			continue
		}
		held, ok := cached[ev.Site]
		if ok && held == version {
			// Revalidation round trip only.
			m.TotalLatency += env.transfer(env.PrimarySite, ev.Site, checkSize)
			if ev.Site != env.PrimarySite {
				m.Bandwidth += checkSize
			}
			continue
		}
		m.TotalLatency += env.transfer(env.PrimarySite, ev.Site, env.DocSize)
		if ev.Site != env.PrimarySite {
			m.Bandwidth += int64(env.DocSize)
		}
		cached[ev.Site] = version
	}
	return m
}

// ServerInvalidation places a cache at every client site; the primary
// pushes invalidations on update. Reads are never stale; each update
// costs one small message per caching site.
type ServerInvalidation struct{}

// Name implements Strategy.
func (ServerInvalidation) Name() string { return "ServerInval" }

// Simulate implements Strategy.
func (ServerInvalidation) Simulate(trace []Event, env Env) Metrics {
	const invalSize = 128
	var m Metrics
	m.Replicas = 1
	valid := make(map[string]bool)
	for _, ev := range trace {
		if ev.Update {
			for site, ok := range valid {
				if ok && site != env.PrimarySite {
					m.Bandwidth += invalSize
				}
				valid[site] = false
			}
			continue
		}
		if valid[ev.Site] {
			continue // local hit, fresh by construction
		}
		m.TotalLatency += env.transfer(env.PrimarySite, ev.Site, env.DocSize)
		if ev.Site != env.PrimarySite {
			m.Bandwidth += int64(env.DocSize)
		}
		valid[ev.Site] = true
	}
	return m
}

// FullReplication keeps a full replica at every site and pushes the whole
// document to all of them on each update. Reads are local and fresh;
// updates are expensive.
type FullReplication struct{}

// Name implements Strategy.
func (FullReplication) Name() string { return "FullRepl" }

// Simulate implements Strategy.
func (FullReplication) Simulate(trace []Event, env Env) Metrics {
	var m Metrics
	m.Replicas = len(env.Sites)
	pushed := make(map[string]bool)
	for _, site := range env.Sites {
		if site == env.PrimarySite {
			continue
		}
		// Initial placement.
		m.Bandwidth += int64(env.DocSize)
		pushed[site] = true
	}
	for _, ev := range trace {
		if ev.Update {
			m.Bandwidth += int64(len(pushed)) * int64(env.DocSize)
			continue
		}
		// Read is local: no wide-area latency or bandwidth.
	}
	return m
}

// Weights expresses the relative importance of the three cost axes when
// selecting a strategy, as in ref [13].
type Weights struct {
	// LatencyPerSecond is cost units per second of summed client latency.
	LatencyPerSecond float64
	// PerMegabyte is cost units per MB of wide-area traffic.
	PerMegabyte float64
	// PerStaleRead is cost units per stale document served.
	PerStaleRead float64
}

// DefaultWeights reproduce ref [13]'s bias: staleness is heavily
// penalized, client latency and wide-area bandwidth are both first-class
// costs (bandwidth must be priced high enough that blind full replication
// does not dominate write-heavy documents).
var DefaultWeights = Weights{LatencyPerSecond: 1.0, PerMegabyte: 2.0, PerStaleRead: 5.0}

// Cost collapses metrics to a scalar under w.
func (w Weights) Cost(m Metrics) float64 {
	return w.LatencyPerSecond*m.TotalLatency.Seconds() +
		w.PerMegabyte*float64(m.Bandwidth)/1e6 +
		w.PerStaleRead*float64(m.Stale)
}

// Evaluation records one strategy's simulated outcome.
type Evaluation struct {
	Strategy Strategy
	Metrics  Metrics
	Cost     float64
}

// DefaultCandidates returns the standard candidate set evaluated for
// every document.
func DefaultCandidates() []Strategy {
	return []Strategy{
		NoReplication{},
		CacheTTL{TTL: time.Minute},
		CacheTTL{TTL: time.Hour},
		CacheVerify{},
		ServerInvalidation{},
		FullReplication{},
	}
}

// Select simulates every candidate on the trace and returns the full
// ranking, cheapest first. This is the per-document decision of ref
// [13]: different documents (different traces) select different
// strategies.
func Select(trace []Event, env Env, candidates []Strategy, w Weights) []Evaluation {
	evals := make([]Evaluation, 0, len(candidates))
	for _, s := range candidates {
		m := s.Simulate(trace, env)
		evals = append(evals, Evaluation{Strategy: s, Metrics: m, Cost: w.Cost(m)})
	}
	sort.SliceStable(evals, func(i, j int) bool { return evals[i].Cost < evals[j].Cost })
	return evals
}
