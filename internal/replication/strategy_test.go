package replication_test

import (
	"testing"
	"time"

	"globedoc/internal/replication"
)

var sites = []string{"primary", "paris", "ithaca"}

func testEnv(docSize int) replication.Env {
	rtt := map[[2]string]time.Duration{
		{"primary", "paris"}:  20 * time.Millisecond,
		{"primary", "ithaca"}: 90 * time.Millisecond,
		{"paris", "ithaca"}:   100 * time.Millisecond,
	}
	return replication.Env{
		PrimarySite: "primary",
		Sites:       sites,
		DocSize:     docSize,
		RTT: func(a, b string) time.Duration {
			if a == b {
				return 0
			}
			if a > b {
				a, b = b, a
			}
			return rtt[[2]string{a, b}]
		},
		Bandwidth: func(a, b string) float64 {
			if a == b {
				return 0
			}
			return 1e6
		},
	}
}

// readTrace produces n reads from site, secs apart.
func readTrace(site string, n int, gap time.Duration) []replication.Event {
	t0 := time.Date(2005, 4, 4, 12, 0, 0, 0, time.UTC)
	out := make([]replication.Event, n)
	for i := range out {
		out[i] = replication.Event{T: t0.Add(time.Duration(i) * gap), Site: site}
	}
	return out
}

func TestNoReplicationChargesEveryRead(t *testing.T) {
	env := testEnv(10_000)
	trace := readTrace("paris", 10, time.Second)
	m := replication.NoReplication{}.Simulate(trace, env)
	if m.Bandwidth != 10*10_000 {
		t.Errorf("Bandwidth = %d", m.Bandwidth)
	}
	if m.Stale != 0 {
		t.Errorf("Stale = %d", m.Stale)
	}
	perRead := env.RTT("primary", "paris") + 10*time.Millisecond // 10KB at 1MB/s
	if m.TotalLatency != 10*perRead {
		t.Errorf("TotalLatency = %v, want %v", m.TotalLatency, 10*perRead)
	}
}

func TestCacheTTLHitsAreFree(t *testing.T) {
	env := testEnv(10_000)
	trace := readTrace("paris", 10, time.Second)
	m := replication.CacheTTL{TTL: time.Hour}.Simulate(trace, env)
	if m.Bandwidth != 10_000 {
		t.Errorf("Bandwidth = %d, want one fetch", m.Bandwidth)
	}
}

func TestCacheTTLServesStaleAfterUpdate(t *testing.T) {
	env := testEnv(10_000)
	t0 := time.Date(2005, 4, 4, 12, 0, 0, 0, time.UTC)
	trace := []replication.Event{
		{T: t0, Site: "paris"},                      // cold fetch
		{T: t0.Add(time.Second), Update: true},      // owner update
		{T: t0.Add(2 * time.Second), Site: "paris"}, // stale hit
		{T: t0.Add(3 * time.Second), Site: "paris"}, // stale hit
	}
	m := replication.CacheTTL{TTL: time.Hour}.Simulate(trace, env)
	if m.Stale != 2 {
		t.Errorf("Stale = %d, want 2", m.Stale)
	}
}

func TestCacheVerifyNeverStale(t *testing.T) {
	env := testEnv(10_000)
	t0 := time.Date(2005, 4, 4, 12, 0, 0, 0, time.UTC)
	trace := []replication.Event{
		{T: t0, Site: "paris"},
		{T: t0.Add(time.Second), Update: true},
		{T: t0.Add(2 * time.Second), Site: "paris"}, // must re-fetch
	}
	m := replication.CacheVerify{}.Simulate(trace, env)
	if m.Stale != 0 {
		t.Errorf("Stale = %d", m.Stale)
	}
	if m.Bandwidth != 2*10_000 {
		t.Errorf("Bandwidth = %d, want two full fetches", m.Bandwidth)
	}
}

func TestCacheVerifyPaysRevalidation(t *testing.T) {
	env := testEnv(10_000)
	trace := readTrace("paris", 5, time.Second)
	m := replication.CacheVerify{}.Simulate(trace, env)
	// 1 full fetch + 4 revalidations of 256B.
	if m.Bandwidth != 10_000+4*256 {
		t.Errorf("Bandwidth = %d", m.Bandwidth)
	}
	if m.TotalLatency <= env.RTT("primary", "paris") {
		t.Error("revalidation latency not charged")
	}
}

func TestServerInvalidationFreshAndCheapReads(t *testing.T) {
	env := testEnv(10_000)
	t0 := time.Date(2005, 4, 4, 12, 0, 0, 0, time.UTC)
	trace := []replication.Event{
		{T: t0, Site: "paris"},
		{T: t0.Add(time.Second), Site: "paris"}, // free local hit
		{T: t0.Add(2 * time.Second), Update: true},
		{T: t0.Add(3 * time.Second), Site: "paris"}, // re-fetch
	}
	m := replication.ServerInvalidation{}.Simulate(trace, env)
	if m.Stale != 0 {
		t.Errorf("Stale = %d", m.Stale)
	}
	if m.Bandwidth != 2*10_000+128 {
		t.Errorf("Bandwidth = %d, want 2 fetches + 1 invalidation", m.Bandwidth)
	}
}

func TestFullReplicationLocalReads(t *testing.T) {
	env := testEnv(10_000)
	trace := readTrace("ithaca", 100, time.Second)
	m := replication.FullReplication{}.Simulate(trace, env)
	if m.TotalLatency != 0 {
		t.Errorf("TotalLatency = %v, want 0 (local reads)", m.TotalLatency)
	}
	if m.Replicas != len(sites) {
		t.Errorf("Replicas = %d", m.Replicas)
	}
	// Placement cost: 2 non-primary sites.
	if m.Bandwidth != 2*10_000 {
		t.Errorf("Bandwidth = %d", m.Bandwidth)
	}
}

func TestFullReplicationUpdateCost(t *testing.T) {
	env := testEnv(10_000)
	t0 := time.Date(2005, 4, 4, 12, 0, 0, 0, time.UTC)
	trace := []replication.Event{
		{T: t0, Update: true},
		{T: t0.Add(time.Second), Update: true},
	}
	m := replication.FullReplication{}.Simulate(trace, env)
	// 2 placements + 2 updates * 2 replicas.
	if m.Bandwidth != (2+4)*10_000 {
		t.Errorf("Bandwidth = %d", m.Bandwidth)
	}
}

func TestSelectPrefersReplicationForHotReadOnlyDoc(t *testing.T) {
	env := testEnv(100_000)
	trace := readTrace("ithaca", 500, time.Second) // hot, never updated
	evals := replication.Select(trace, env, replication.DefaultCandidates(), replication.DefaultWeights)
	best := evals[0].Strategy.Name()
	if best == "NoRepl" {
		t.Errorf("hot read-only doc selected %q; expected a caching/replicating strategy", best)
	}
	// NoRepl must be the worst or near-worst.
	if evals[0].Cost >= evals[len(evals)-1].Cost {
		t.Error("ranking not sorted by cost")
	}
}

func TestSelectPrefersPrimaryForWriteHeavyDoc(t *testing.T) {
	env := testEnv(100_000)
	t0 := time.Date(2005, 4, 4, 12, 0, 0, 0, time.UTC)
	var trace []replication.Event
	for i := 0; i < 200; i++ {
		trace = append(trace, replication.Event{T: t0.Add(time.Duration(i) * time.Second), Update: true})
	}
	// One lonely read.
	trace = append(trace, replication.Event{T: t0.Add(300 * time.Second), Site: "paris"})
	evals := replication.Select(trace, env, replication.DefaultCandidates(), replication.DefaultWeights)
	if evals[0].Strategy.Name() == "FullRepl" {
		t.Error("write-heavy doc selected FullRepl; push cost should dominate")
	}
}

func TestSelectDisagreesAcrossDocuments(t *testing.T) {
	// The core claim of ref [13]: different documents pick different
	// strategies. A hot static document and a frequently-updated one
	// must not select the same winner.
	env := testEnv(50_000)
	hotStatic := readTrace("ithaca", 300, time.Second)
	t0 := time.Date(2005, 4, 4, 12, 0, 0, 0, time.UTC)
	var churny []replication.Event
	for i := 0; i < 150; i++ {
		churny = append(churny,
			replication.Event{T: t0.Add(time.Duration(2*i) * time.Second), Update: true},
			replication.Event{T: t0.Add(time.Duration(2*i+1) * time.Second), Site: "paris"})
	}
	w := replication.DefaultWeights
	bestStatic := replication.Select(hotStatic, env, replication.DefaultCandidates(), w)[0].Strategy.Name()
	bestChurny := replication.Select(churny, env, replication.DefaultCandidates(), w)[0].Strategy.Name()
	if bestStatic == bestChurny {
		t.Errorf("both documents selected %q; per-document selection is pointless", bestStatic)
	}
}

func TestWeightsCost(t *testing.T) {
	w := replication.Weights{LatencyPerSecond: 1, PerMegabyte: 2, PerStaleRead: 3}
	m := replication.Metrics{TotalLatency: 2 * time.Second, Bandwidth: 5e6, Stale: 4}
	if got := w.Cost(m); got != 2+10+12 {
		t.Errorf("Cost = %v", got)
	}
}

func TestMeanLatency(t *testing.T) {
	m := replication.Metrics{TotalLatency: time.Second}
	if got := m.MeanLatency(4); got != 250*time.Millisecond {
		t.Errorf("MeanLatency = %v", got)
	}
	if got := m.MeanLatency(0); got != 0 {
		t.Errorf("MeanLatency(0) = %v", got)
	}
}
