package replication_test

import (
	"testing"
	"time"

	"globedoc/internal/replication"
)

var dt0 = time.Date(2005, 4, 4, 12, 0, 0, 0, time.UTC)

func TestFlashCrowdTriggersOnce(t *testing.T) {
	d := replication.NewFlashCrowdDetector(3, time.Minute)
	if d.RecordAccess("paris", dt0) {
		t.Fatal("triggered on first access")
	}
	if d.RecordAccess("paris", dt0.Add(time.Second)) {
		t.Fatal("triggered on second access")
	}
	if !d.RecordAccess("paris", dt0.Add(2*time.Second)) {
		t.Fatal("did not trigger on third access within window")
	}
	// Already replicated: no re-trigger.
	if d.RecordAccess("paris", dt0.Add(3*time.Second)) {
		t.Fatal("re-triggered for a site that already has a replica")
	}
	sites := d.ReplicaSites()
	if len(sites) != 1 || sites[0] != "paris" {
		t.Errorf("ReplicaSites = %v", sites)
	}
}

func TestFlashCrowdWindowExpiry(t *testing.T) {
	d := replication.NewFlashCrowdDetector(3, time.Minute)
	d.RecordAccess("paris", dt0)
	d.RecordAccess("paris", dt0.Add(time.Second))
	// Third access far outside the window: earlier ones are pruned.
	if d.RecordAccess("paris", dt0.Add(10*time.Minute)) {
		t.Fatal("triggered on accesses spread outside the window")
	}
}

func TestFlashCrowdPerSiteIndependence(t *testing.T) {
	d := replication.NewFlashCrowdDetector(2, time.Minute)
	d.RecordAccess("paris", dt0)
	if d.RecordAccess("ithaca", dt0) {
		t.Fatal("ithaca triggered by paris traffic")
	}
	if !d.RecordAccess("paris", dt0.Add(time.Second)) {
		t.Fatal("paris did not trigger")
	}
}

func TestColdReplicasAndRemoval(t *testing.T) {
	d := replication.NewFlashCrowdDetector(2, time.Minute)
	d.RecordAccess("paris", dt0)
	d.RecordAccess("paris", dt0.Add(time.Second)) // replica created
	// No further traffic: an hour later the replica is cold.
	cold := d.ColdReplicas(dt0.Add(time.Hour))
	if len(cold) != 1 || cold[0] != "paris" {
		t.Fatalf("ColdReplicas = %v", cold)
	}
	d.MarkRemoved("paris")
	if got := d.ReplicaSites(); len(got) != 0 {
		t.Errorf("ReplicaSites after removal = %v", got)
	}
	// And the site can trigger again later.
	d.RecordAccess("paris", dt0.Add(2*time.Hour))
	if !d.RecordAccess("paris", dt0.Add(2*time.Hour+time.Second)) {
		t.Error("site cannot re-trigger after removal")
	}
}

func TestHotReplicaNotCold(t *testing.T) {
	d := replication.NewFlashCrowdDetector(2, time.Minute)
	d.RecordAccess("paris", dt0)
	d.RecordAccess("paris", dt0.Add(time.Second))
	d.RecordAccess("paris", dt0.Add(30*time.Second))
	if cold := d.ColdReplicas(dt0.Add(40 * time.Second)); len(cold) != 0 {
		t.Errorf("ColdReplicas = %v for active site", cold)
	}
}
