package replication_test

import (
	"fmt"
	"time"

	"globedoc/internal/replication"
)

// ExampleSelect shows per-document strategy selection (ref [13]): a hot
// read-only document and a write-heavy document pick different winners.
func ExampleSelect() {
	env := replication.Env{
		PrimarySite: "amsterdam",
		Sites:       []string{"amsterdam", "ithaca"},
		DocSize:     100 << 10,
		RTT: func(a, b string) time.Duration {
			if a == b {
				return 0
			}
			return 90 * time.Millisecond
		},
		Bandwidth: func(a, b string) float64 { return 1e6 },
	}
	t0 := time.Date(2005, 4, 4, 12, 0, 0, 0, time.UTC)

	var hot []replication.Event
	for i := 0; i < 500; i++ {
		hot = append(hot, replication.Event{T: t0.Add(time.Duration(i) * time.Second), Site: "ithaca"})
	}
	var churny []replication.Event
	for i := 0; i < 200; i++ {
		churny = append(churny, replication.Event{T: t0.Add(time.Duration(i) * time.Second), Update: true})
	}
	churny = append(churny, replication.Event{T: t0.Add(time.Hour), Site: "ithaca"})

	candidates := replication.DefaultCandidates()
	w := replication.DefaultWeights
	fmt.Println("hot read-only picks:", replication.Select(hot, env, candidates, w)[0].Strategy.Name())
	fmt.Println("write-heavy picks: ", replication.Select(churny, env, candidates, w)[0].Strategy.Name())
	// Output:
	// hot read-only picks: FullRepl
	// write-heavy picks:  NoRepl
}
