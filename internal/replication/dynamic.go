package replication

import (
	"sort"
	"sync"
	"time"
)

// FlashCrowdDetector is the runtime half of dynamic replication: it
// watches the per-site request rate of one document and reports when a
// site is hot enough to deserve its own replica (and when a replica has
// gone cold and should be withdrawn).
//
// The object server feeds it every access; when RecordAccess returns
// true, the server asks a peer object server at that site to create a
// replica (paper §4 notes that object servers may create replicas on each
// other precisely "to support dynamic replication algorithms").
type FlashCrowdDetector struct {
	mu sync.Mutex
	// CreateThreshold is the number of accesses within Window that
	// triggers replica creation at a site.
	CreateThreshold int
	// DeleteThreshold is the access count within Window below which an
	// existing replica is considered cold.
	DeleteThreshold int
	// Window is the sliding observation window.
	Window time.Duration

	accesses map[string][]time.Time // site -> recent access times
	replicas map[string]bool        // sites currently holding a replica
}

// NewFlashCrowdDetector returns a detector with the given trigger: create
// a replica at a site once it produces createThreshold accesses within
// window.
func NewFlashCrowdDetector(createThreshold int, window time.Duration) *FlashCrowdDetector {
	return &FlashCrowdDetector{
		CreateThreshold: createThreshold,
		DeleteThreshold: 1,
		Window:          window,
		accesses:        make(map[string][]time.Time),
		replicas:        make(map[string]bool),
	}
}

// RecordAccess notes a request from site at time now and reports whether
// a replica should be created there.
func (d *FlashCrowdDetector) RecordAccess(site string, now time.Time) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	recent := prune(d.accesses[site], now.Add(-d.Window))
	recent = append(recent, now)
	d.accesses[site] = recent
	if d.replicas[site] {
		return false
	}
	if len(recent) >= d.CreateThreshold {
		d.replicas[site] = true
		return true
	}
	return false
}

// ColdReplicas returns the sites whose replicas have fallen below
// DeleteThreshold accesses within the window ending at now. The caller
// decides whether to withdraw them; MarkRemoved records the outcome.
func (d *FlashCrowdDetector) ColdReplicas(now time.Time) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var cold []string
	cutoff := now.Add(-d.Window)
	for site, have := range d.replicas {
		if !have {
			continue
		}
		d.accesses[site] = prune(d.accesses[site], cutoff)
		if len(d.accesses[site]) < d.DeleteThreshold {
			cold = append(cold, site)
		}
	}
	sort.Strings(cold)
	return cold
}

// MarkRemoved records that the replica at site was withdrawn.
func (d *FlashCrowdDetector) MarkRemoved(site string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.replicas, site)
}

// ReplicaSites returns the sites currently believed to hold replicas,
// sorted.
func (d *FlashCrowdDetector) ReplicaSites() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	sites := make([]string, 0, len(d.replicas))
	for site, have := range d.replicas {
		if have {
			sites = append(sites, site)
		}
	}
	sort.Strings(sites)
	return sites
}

// prune drops timestamps at or before cutoff (the slice is
// chronologically ordered).
func prune(times []time.Time, cutoff time.Time) []time.Time {
	i := sort.Search(len(times), func(i int) bool { return times[i].After(cutoff) })
	return append(times[:0:0], times[i:]...)
}
