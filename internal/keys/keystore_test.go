package keys_test

import (
	"path/filepath"
	"reflect"
	"testing"

	"globedoc/internal/keys"
	"globedoc/internal/keys/keytest"
)

func TestKeystoreAddGetRemove(t *testing.T) {
	ks := keys.NewKeystore()
	pk := keytest.RSA().Public()
	ks.Add("alice", pk)

	got, ok := ks.Get("alice")
	if !ok || !got.Equal(pk) {
		t.Fatal("Get did not return stored key")
	}
	if _, ok := ks.Get("bob"); ok {
		t.Fatal("Get returned key for absent name")
	}
	ks.Remove("alice")
	if _, ok := ks.Get("alice"); ok {
		t.Fatal("key still present after Remove")
	}
}

func TestKeystoreContainsAndNameOf(t *testing.T) {
	ks := keys.NewKeystore()
	a := keytest.RSA().Public()
	b := keytest.Ed().Public()
	ks.Add("alice", a)

	if !ks.Contains(a) {
		t.Error("Contains(a) = false")
	}
	if ks.Contains(b) {
		t.Error("Contains(b) = true for unstored key")
	}
	name, ok := ks.NameOf(a)
	if !ok || name != "alice" {
		t.Errorf("NameOf = %q, %v", name, ok)
	}
}

func TestKeystoreNamesSorted(t *testing.T) {
	ks := keys.NewKeystore()
	ks.Add("zoe", keytest.Ed().Public())
	ks.Add("alice", keytest.RSA().Public())
	ks.Add("mallory", keytest.Ed().Public())
	want := []string{"alice", "mallory", "zoe"}
	if got := ks.Names(); !reflect.DeepEqual(got, want) {
		t.Errorf("Names = %v, want %v", got, want)
	}
	if ks.Len() != 3 {
		t.Errorf("Len = %d, want 3", ks.Len())
	}
}

func TestKeystoreSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keystore.json")
	ks := keys.NewKeystore()
	a := keytest.RSA().Public()
	b := keytest.Ed().Public()
	ks.Add("owner", a)
	ks.Add("server-2", b)
	if err := ks.SaveFile(path); err != nil {
		t.Fatalf("SaveFile: %v", err)
	}
	loaded, err := keys.LoadKeystore(path)
	if err != nil {
		t.Fatalf("LoadKeystore: %v", err)
	}
	got, ok := loaded.Get("owner")
	if !ok || !got.Equal(a) {
		t.Fatal("owner key did not survive round trip")
	}
	got, ok = loaded.Get("server-2")
	if !ok || !got.Equal(b) {
		t.Fatal("server-2 key did not survive round trip")
	}
}

func TestKeystoreLoadMissingFile(t *testing.T) {
	if _, err := keys.LoadKeystore(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("LoadKeystore succeeded on missing file")
	}
}
