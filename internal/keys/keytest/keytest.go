// Package keytest provides shared, lazily generated key pairs for tests
// and benchmarks.
//
// RSA key generation costs tens of milliseconds; tests that each generate
// fresh keys dominate suite runtime. keytest generates a small pool of
// pairs per algorithm once per process and hands them out round-robin, so
// distinct callers still get distinct keys without paying generation cost
// repeatedly.
package keytest

import (
	"fmt"
	"sync"
	"sync/atomic"

	"globedoc/internal/keys"
)

const poolSize = 8

type pool struct {
	once  sync.Once
	pairs [poolSize]*keys.KeyPair
	next  atomic.Uint64
}

var pools = map[keys.Algorithm]*pool{
	keys.RSA2048: {},
	keys.Ed25519: {},
}

// Pair returns a key pair of the given algorithm from the shared pool.
// Successive calls cycle through a fixed number of distinct pairs.
func Pair(alg keys.Algorithm) *keys.KeyPair {
	p, ok := pools[alg]
	if !ok {
		panic(fmt.Sprintf("keytest: unsupported algorithm %v", alg))
	}
	p.once.Do(func() {
		var wg sync.WaitGroup
		for i := range p.pairs {
			wg.Add(1)
			go func() {
				defer wg.Done()
				kp, err := keys.Generate(alg)
				if err != nil {
					panic(fmt.Sprintf("keytest: generate %v: %v", alg, err))
				}
				p.pairs[i] = kp
			}()
		}
		wg.Wait()
	})
	return p.pairs[p.next.Add(1)%poolSize]
}

// RSA returns a pooled RSA-2048 key pair.
func RSA() *keys.KeyPair { return Pair(keys.RSA2048) }

// Ed returns a pooled Ed25519 key pair.
func Ed() *keys.KeyPair { return Pair(keys.Ed25519) }
