package keys_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"globedoc/internal/keys"
	"globedoc/internal/keys/keytest"
)

var algorithms = []keys.Algorithm{keys.RSA2048, keys.Ed25519}

func TestSignVerify(t *testing.T) {
	for _, alg := range algorithms {
		t.Run(alg.String(), func(t *testing.T) {
			kp := keytest.Pair(alg)
			msg := []byte("the quick brown fox")
			sig, err := kp.Sign(msg)
			if err != nil {
				t.Fatalf("Sign: %v", err)
			}
			if err := kp.Public().Verify(msg, sig); err != nil {
				t.Fatalf("Verify: %v", err)
			}
		})
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	for _, alg := range algorithms {
		t.Run(alg.String(), func(t *testing.T) {
			kp := keytest.Pair(alg)
			msg := []byte("original message")
			sig, err := kp.Sign(msg)
			if err != nil {
				t.Fatalf("Sign: %v", err)
			}
			msg[0] ^= 0xff
			if err := kp.Public().Verify(msg, sig); err == nil {
				t.Fatal("Verify accepted tampered message")
			}
		})
	}
}

func TestVerifyRejectsTamperedSignature(t *testing.T) {
	for _, alg := range algorithms {
		t.Run(alg.String(), func(t *testing.T) {
			kp := keytest.Pair(alg)
			msg := []byte("message")
			sig, err := kp.Sign(msg)
			if err != nil {
				t.Fatalf("Sign: %v", err)
			}
			sig[len(sig)/2] ^= 0x01
			if err := kp.Public().Verify(msg, sig); err == nil {
				t.Fatal("Verify accepted tampered signature")
			}
		})
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	a := keytest.RSA()
	b := keytest.RSA()
	if a == b {
		t.Skip("pool returned identical pairs")
	}
	msg := []byte("message")
	sig, err := a.Sign(msg)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := b.Public().Verify(msg, sig); err == nil {
		t.Fatal("Verify accepted signature from a different key")
	}
}

func TestPublicKeyMarshalRoundTrip(t *testing.T) {
	for _, alg := range algorithms {
		t.Run(alg.String(), func(t *testing.T) {
			pk := keytest.Pair(alg).Public()
			data := pk.Marshal()
			got, err := keys.UnmarshalPublicKey(data)
			if err != nil {
				t.Fatalf("UnmarshalPublicKey: %v", err)
			}
			if !got.Equal(pk) {
				t.Fatal("round-tripped key differs")
			}
			if !bytes.Equal(got.Marshal(), data) {
				t.Fatal("re-marshalled encoding differs")
			}
		})
	}
}

func TestPublicKeyMarshalDeterministic(t *testing.T) {
	pk := keytest.RSA().Public()
	if !bytes.Equal(pk.Marshal(), pk.Marshal()) {
		t.Fatal("Marshal not deterministic")
	}
}

func TestKeyPairMarshalRoundTrip(t *testing.T) {
	for _, alg := range algorithms {
		t.Run(alg.String(), func(t *testing.T) {
			kp := keytest.Pair(alg)
			got, err := keys.UnmarshalKeyPair(kp.Marshal())
			if err != nil {
				t.Fatalf("UnmarshalKeyPair: %v", err)
			}
			if !got.Public().Equal(kp.Public()) {
				t.Fatal("round-tripped pair has different public key")
			}
			// The restored private key must produce verifiable signatures.
			msg := []byte("round trip")
			sig, err := got.Sign(msg)
			if err != nil {
				t.Fatalf("Sign: %v", err)
			}
			if err := kp.Public().Verify(msg, sig); err != nil {
				t.Fatalf("Verify: %v", err)
			}
		})
	}
}

func TestUnmarshalPublicKeyRejectsGarbage(t *testing.T) {
	cases := [][]byte{nil, {}, {99}, {1, 5, 1, 2, 3}, {2, 3, 1, 2, 3}}
	for _, data := range cases {
		if _, err := keys.UnmarshalPublicKey(data); err == nil {
			t.Errorf("UnmarshalPublicKey(%v) succeeded", data)
		}
	}
}

func TestQuickGarbagePublicKeysRejectedOrRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		pk, err := keys.UnmarshalPublicKey(data)
		if err != nil {
			return true // rejection is fine
		}
		// If parsing succeeded the key must re-marshal to the input.
		return bytes.Equal(pk.Marshal(), data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAlgorithmStringParse(t *testing.T) {
	for _, alg := range algorithms {
		got, err := keys.ParseAlgorithm(alg.String())
		if err != nil {
			t.Fatalf("ParseAlgorithm(%q): %v", alg.String(), err)
		}
		if got != alg {
			t.Errorf("ParseAlgorithm(%q) = %v", alg.String(), got)
		}
	}
	if _, err := keys.ParseAlgorithm("dsa"); err == nil {
		t.Error("ParseAlgorithm accepted unknown algorithm")
	}
}

func TestDistinctKeysNotEqual(t *testing.T) {
	a := keytest.RSA().Public()
	b := keytest.Ed().Public()
	if a.Equal(b) {
		t.Fatal("keys with different algorithms reported equal")
	}
}
