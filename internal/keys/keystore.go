package keys

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
)

// Keystore is a named collection of trusted public keys.
//
// The paper uses keystores in two places (§4): object servers keep a
// keystore of the entities allowed to create replicas on them (owners and
// peer object servers), and user proxies keep a keystore of the CAs the
// user trusts for name certificates.
type Keystore struct {
	mu      sync.RWMutex
	entries map[string]PublicKey
}

// NewKeystore returns an empty keystore.
func NewKeystore() *Keystore {
	return &Keystore{entries: make(map[string]PublicKey)}
}

// Add records pk under name, replacing any previous key with that name.
func (ks *Keystore) Add(name string, pk PublicKey) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	ks.entries[name] = pk
}

// Remove deletes the key stored under name, if any.
func (ks *Keystore) Remove(name string) {
	ks.mu.Lock()
	defer ks.mu.Unlock()
	delete(ks.entries, name)
}

// Get returns the key stored under name.
func (ks *Keystore) Get(name string) (PublicKey, bool) {
	ks.mu.RLock()
	defer ks.mu.RUnlock()
	pk, ok := ks.entries[name]
	return pk, ok
}

// Contains reports whether any stored key equals pk.
func (ks *Keystore) Contains(pk PublicKey) bool {
	_, ok := ks.NameOf(pk)
	return ok
}

// NameOf returns the name under which pk is stored.
func (ks *Keystore) NameOf(pk PublicKey) (string, bool) {
	ks.mu.RLock()
	defer ks.mu.RUnlock()
	for name, k := range ks.entries {
		if k.Equal(pk) {
			return name, true
		}
	}
	return "", false
}

// Names returns the sorted list of entry names.
func (ks *Keystore) Names() []string {
	ks.mu.RLock()
	defer ks.mu.RUnlock()
	names := make([]string, 0, len(ks.entries))
	for name := range ks.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Len reports the number of stored keys.
func (ks *Keystore) Len() int {
	ks.mu.RLock()
	defer ks.mu.RUnlock()
	return len(ks.entries)
}

// keystoreFile is the on-disk JSON representation of a keystore.
type keystoreFile struct {
	Entries map[string]string `json:"entries"` // name -> hex(PublicKey.Marshal())
}

// MarshalJSON encodes the keystore as a JSON document.
func (ks *Keystore) MarshalJSON() ([]byte, error) {
	ks.mu.RLock()
	defer ks.mu.RUnlock()
	f := keystoreFile{Entries: make(map[string]string, len(ks.entries))}
	for name, pk := range ks.entries {
		f.Entries[name] = hex.EncodeToString(pk.Marshal())
	}
	return json.Marshal(f)
}

// UnmarshalJSON decodes a JSON document produced by MarshalJSON.
func (ks *Keystore) UnmarshalJSON(data []byte) error {
	var f keystoreFile
	if err := json.Unmarshal(data, &f); err != nil {
		return err
	}
	entries := make(map[string]PublicKey, len(f.Entries))
	for name, hexKey := range f.Entries {
		raw, err := hex.DecodeString(hexKey)
		if err != nil {
			return fmt.Errorf("keys: keystore entry %q: %w", name, err)
		}
		pk, err := UnmarshalPublicKey(raw)
		if err != nil {
			return fmt.Errorf("keys: keystore entry %q: %w", name, err)
		}
		entries[name] = pk
	}
	ks.mu.Lock()
	defer ks.mu.Unlock()
	ks.entries = entries
	return nil
}

// SaveFile writes the keystore to path as JSON.
func (ks *Keystore) SaveFile(path string) error {
	data, err := json.MarshalIndent(ks, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o600)
}

// LoadKeystore reads a keystore previously written by SaveFile.
func LoadKeystore(path string) (*Keystore, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ks := NewKeystore()
	if err := json.Unmarshal(data, ks); err != nil {
		return nil, err
	}
	return ks, nil
}
