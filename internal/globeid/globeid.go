// Package globeid implements GlobeDoc object identifiers.
//
// Every GlobeDoc object is identified by a unique 160-bit object ID (OID)
// that contains no location information and is not human readable (paper
// §2). The security architecture makes OIDs self-certifying (§3.1.2): the
// OID is the SHA-1 hash of the object's public key, so a client holding an
// OID can verify, with no trusted third party, that a public key offered
// by an (untrusted) replica really belongs to the object.
//
// SHA-1 is retained deliberately for fidelity with the paper; the OID
// derivation is isolated here so the digest could be swapped in one place.
package globeid

import (
	"crypto/sha1"
	"crypto/subtle"
	"encoding/hex"
	"errors"
	"fmt"

	"globedoc/internal/keys"
)

// Size is the OID length in bytes (160 bits).
const Size = sha1.Size

// OID is a 160-bit GlobeDoc object identifier.
type OID [Size]byte

// Zero is the all-zero OID; it identifies no object.
var Zero OID

// ErrKeyMismatch is returned by Verify when a public key does not hash to
// the OID.
var ErrKeyMismatch = errors.New("globeid: public key does not match self-certifying OID")

// FromPublicKey derives the self-certifying OID for pk: the SHA-1 hash of
// the key's canonical encoding.
func FromPublicKey(pk keys.PublicKey) OID {
	return OID(sha1.Sum(pk.Marshal()))
}

// HashElement computes the SHA-1 hash of element content, as stored in
// integrity-certificate entries (paper §3.2.2, Fig. 2).
func HashElement(data []byte) [Size]byte {
	return sha1.Sum(data)
}

// Verify checks that pk hashes to oid. A nil return means pk is the
// authentic public key of the object identified by oid; no certificate
// authority is involved.
func (oid OID) Verify(pk keys.PublicKey) error {
	derived := FromPublicKey(pk)
	if subtle.ConstantTimeCompare(oid[:], derived[:]) != 1 {
		return ErrKeyMismatch
	}
	return nil
}

// IsZero reports whether oid is the zero OID.
func (oid OID) IsZero() bool { return oid == Zero }

// String returns the OID as 40 lowercase hex digits.
func (oid OID) String() string { return hex.EncodeToString(oid[:]) }

// Short returns the first 8 hex digits, for logs.
func (oid OID) Short() string { return oid.String()[:8] }

// Parse converts a 40-hex-digit string into an OID.
func Parse(s string) (OID, error) {
	var oid OID
	if len(s) != 2*Size {
		return Zero, fmt.Errorf("globeid: OID must be %d hex digits, got %d", 2*Size, len(s))
	}
	raw, err := hex.DecodeString(s)
	if err != nil {
		return Zero, fmt.Errorf("globeid: %w", err)
	}
	copy(oid[:], raw)
	return oid, nil
}

// FromBytes converts a 20-byte slice into an OID.
func FromBytes(b []byte) (OID, error) {
	var oid OID
	if len(b) != Size {
		return Zero, fmt.Errorf("globeid: OID must be %d bytes, got %d", Size, len(b))
	}
	copy(oid[:], b)
	return oid, nil
}
