package globeid_test

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"globedoc/internal/globeid"
	"globedoc/internal/keys/keytest"
)

func TestSelfCertifyingOID(t *testing.T) {
	kp := keytest.RSA()
	oid := globeid.FromPublicKey(kp.Public())
	if oid.IsZero() {
		t.Fatal("derived OID is zero")
	}
	if err := oid.Verify(kp.Public()); err != nil {
		t.Fatalf("Verify rejected the key the OID was derived from: %v", err)
	}
}

func TestVerifyRejectsForeignKey(t *testing.T) {
	a := keytest.RSA()
	b := keytest.Ed()
	oid := globeid.FromPublicKey(a.Public())
	err := oid.Verify(b.Public())
	if !errors.Is(err, globeid.ErrKeyMismatch) {
		t.Fatalf("Verify = %v, want ErrKeyMismatch", err)
	}
}

func TestOIDDeterministic(t *testing.T) {
	kp := keytest.RSA()
	if globeid.FromPublicKey(kp.Public()) != globeid.FromPublicKey(kp.Public()) {
		t.Fatal("FromPublicKey not deterministic")
	}
}

func TestDistinctKeysDistinctOIDs(t *testing.T) {
	a := globeid.FromPublicKey(keytest.RSA().Public())
	b := globeid.FromPublicKey(keytest.Ed().Public())
	if a == b {
		t.Fatal("two distinct keys produced the same OID")
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	oid := globeid.FromPublicKey(keytest.RSA().Public())
	s := oid.String()
	if len(s) != 40 {
		t.Fatalf("String length = %d, want 40", len(s))
	}
	if s != strings.ToLower(s) {
		t.Fatalf("String not lowercase: %q", s)
	}
	parsed, err := globeid.Parse(s)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if parsed != oid {
		t.Fatal("Parse(String()) != original OID")
	}
}

func TestParseRejectsBadInput(t *testing.T) {
	bad := []string{"", "abc", strings.Repeat("g", 40), strings.Repeat("a", 39), strings.Repeat("a", 41)}
	for _, s := range bad {
		if _, err := globeid.Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded", s)
		}
	}
}

func TestFromBytes(t *testing.T) {
	oid := globeid.FromPublicKey(keytest.RSA().Public())
	got, err := globeid.FromBytes(oid[:])
	if err != nil {
		t.Fatalf("FromBytes: %v", err)
	}
	if got != oid {
		t.Fatal("FromBytes round trip failed")
	}
	if _, err := globeid.FromBytes(oid[:19]); err == nil {
		t.Fatal("FromBytes accepted short slice")
	}
}

func TestShort(t *testing.T) {
	oid := globeid.FromPublicKey(keytest.RSA().Public())
	if got := oid.Short(); len(got) != 8 || !strings.HasPrefix(oid.String(), got) {
		t.Errorf("Short = %q", got)
	}
}

func TestHashElementMatchesContent(t *testing.T) {
	a := globeid.HashElement([]byte("content-a"))
	b := globeid.HashElement([]byte("content-b"))
	if a == b {
		t.Fatal("distinct contents hashed identically")
	}
	if a != globeid.HashElement([]byte("content-a")) {
		t.Fatal("HashElement not deterministic")
	}
}

func TestQuickHashAvalanche(t *testing.T) {
	f := func(data []byte, flip uint) bool {
		if len(data) == 0 {
			return true
		}
		orig := globeid.HashElement(data)
		mutated := append([]byte(nil), data...)
		mutated[flip%uint(len(mutated))] ^= 1 << (flip % 8)
		return globeid.HashElement(mutated) != orig
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParseStringRoundTrip(t *testing.T) {
	f := func(raw [20]byte) bool {
		oid, err := globeid.FromBytes(raw[:])
		if err != nil {
			return false
		}
		back, err := globeid.Parse(oid.String())
		return err == nil && back == oid
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
