// Package naming implements the GlobeDoc secure naming service (paper
// §2.1.1 and §3.1.2).
//
// The naming service maps human-readable object names onto OIDs. Because
// GlobeDoc OIDs are self-certifying (SHA-1 of the object public key) and
// contain no location information, the naming service stores only
// location-independent data — exactly the property that lets a
// DNSsec-like design track massively replicated objects whose replica
// addresses change frequently (the location-dependent step is delegated
// to the location service).
//
// The design mirrors DNSsec: names are dot-separated
// ("home.science.vu.nl"); authority over a name space is divided into
// zones, each holding a key pair; a parent zone signs delegations of
// child zones (name + child zone key), and the owning zone signs resource
// records binding a name to an OID. A resolver that knows only the root
// zone's public key verifies the whole chain, so a compromised naming
// server can at worst deny service — it cannot forge a binding.
package naming

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"globedoc/internal/enc"
	"globedoc/internal/globeid"
	"globedoc/internal/keys"
)

// Errors reported by the naming service.
var (
	ErrNoSuchName    = errors.New("naming: name not registered")
	ErrNoSuchZone    = errors.New("naming: zone does not exist")
	ErrZoneExists    = errors.New("naming: zone already exists")
	ErrBadName       = errors.New("naming: malformed name")
	ErrChainInvalid  = errors.New("naming: delegation chain does not verify")
	ErrRecordInvalid = errors.New("naming: resource record does not verify")
	ErrExpired       = errors.New("naming: record or delegation expired")
)

// Root is the name of the root zone.
const Root = "."

// Record binds an object name to its self-certifying OID, signed by the
// owning zone's key. It is the DNSsec resource record of §3.1.2 with the
// OID stored "instead of IP-addresses".
type Record struct {
	Name    string
	OID     globeid.OID
	Issued  time.Time
	Expires time.Time
	Sig     []byte
}

func (rec *Record) signedBytes() []byte {
	w := enc.NewWriter(96)
	w.String("globedoc-name-record")
	w.String(rec.Name)
	w.Raw(rec.OID[:])
	w.Time(rec.Issued)
	w.Time(rec.Expires)
	return w.Bytes()
}

// Delegation transfers authority over child from parent: the parent
// zone's key signs the child zone's name and public key.
type Delegation struct {
	Parent   string
	Child    string
	ChildKey keys.PublicKey
	Issued   time.Time
	Expires  time.Time
	Sig      []byte
}

func (d *Delegation) signedBytes() []byte {
	w := enc.NewWriter(128)
	w.String("globedoc-name-delegation")
	w.String(d.Parent)
	w.String(d.Child)
	w.BytesPrefixed(d.ChildKey.Marshal())
	w.Time(d.Issued)
	w.Time(d.Expires)
	return w.Bytes()
}

// Chain is everything a resolver needs to validate one name binding:
// the delegations from the root zone down to the owning zone, in order,
// followed by the signed record itself.
type Chain struct {
	Delegations []Delegation
	Record      Record
}

// zone is one unit of naming authority.
type zone struct {
	name       string
	key        *keys.KeyPair
	parent     *zone
	delegation *Delegation // signed by parent; nil for the root
	records    map[string]*Record
	children   map[string]*zone
}

// Authority is the authoritative store of zones and records — the server
// side of the naming service. It is safe for concurrent use.
type Authority struct {
	mu    sync.RWMutex
	root  *zone
	zones map[string]*zone
	alg   keys.Algorithm
	// Now is the clock used when issuing records; tests may replace it.
	Now func() time.Time
	// DelegationTTL and RecordTTL bound the validity of issued
	// signatures.
	DelegationTTL time.Duration
	RecordTTL     time.Duration
}

// NewAuthority creates an authority with a fresh root zone key of the
// given algorithm.
func NewAuthority(alg keys.Algorithm) (*Authority, error) {
	rootKey, err := keys.Generate(alg)
	if err != nil {
		return nil, err
	}
	root := &zone{
		name:     Root,
		key:      rootKey,
		records:  make(map[string]*Record),
		children: make(map[string]*zone),
	}
	return &Authority{
		root:          root,
		zones:         map[string]*zone{Root: root},
		alg:           alg,
		Now:           time.Now,
		DelegationTTL: 30 * 24 * time.Hour,
		RecordTTL:     24 * time.Hour,
	}, nil
}

// RootKey returns the root zone's public key — the resolver's single
// trust anchor.
func (a *Authority) RootKey() keys.PublicKey {
	return a.root.key.Public()
}

// ValidateName checks that name is a well-formed dot-separated name.
func ValidateName(name string) error {
	if name == "" || name == Root {
		return fmt.Errorf("%w: %q", ErrBadName, name)
	}
	for _, label := range strings.Split(name, ".") {
		if label == "" {
			return fmt.Errorf("%w: empty label in %q", ErrBadName, name)
		}
	}
	return nil
}

// CreateZone carves the name space zoneName out of parentZone, generating
// a fresh zone key and a delegation signed by the parent. parentZone must
// already exist (use naming.Root for top-level zones), and zoneName must
// be a strict dot-suffix extension of the parent (e.g. parent "nl", child
// "vu.nl") unless the parent is the root.
func (a *Authority) CreateZone(parentZone, zoneName string) error {
	if err := ValidateName(zoneName); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	parent, ok := a.zones[parentZone]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchZone, parentZone)
	}
	if _, exists := a.zones[zoneName]; exists {
		return fmt.Errorf("%w: %q", ErrZoneExists, zoneName)
	}
	if parent.name != Root && !strings.HasSuffix(zoneName, "."+parent.name) {
		return fmt.Errorf("%w: %q is not inside zone %q", ErrBadName, zoneName, parent.name)
	}
	key, err := keys.Generate(a.alg)
	if err != nil {
		return err
	}
	now := a.Now()
	d := &Delegation{
		Parent:   parent.name,
		Child:    zoneName,
		ChildKey: key.Public(),
		Issued:   now,
		Expires:  now.Add(a.DelegationTTL),
	}
	sig, err := parent.key.Sign(d.signedBytes())
	if err != nil {
		return err
	}
	d.Sig = sig
	z := &zone{
		name:       zoneName,
		key:        key,
		parent:     parent,
		delegation: d,
		records:    make(map[string]*Record),
		children:   make(map[string]*zone),
	}
	parent.children[zoneName] = z
	a.zones[zoneName] = z
	return nil
}

// Zones returns the sorted names of all zones, including the root.
func (a *Authority) Zones() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	names := make([]string, 0, len(a.zones))
	for name := range a.zones {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// owningZoneLocked returns the registered zone with the longest dot-suffix
// match for name, falling back to the root.
func (a *Authority) owningZoneLocked(name string) *zone {
	best := a.root
	for zoneName, z := range a.zones {
		if zoneName == Root {
			continue
		}
		if name == zoneName || strings.HasSuffix(name, "."+zoneName) {
			if best == a.root || len(zoneName) > len(best.name) {
				best = z
			}
		}
	}
	return best
}

// Register binds name to oid in its owning zone, signing a fresh record.
// Re-registering a name replaces its record (and can change the OID —
// names are mutable bindings; OIDs are the immutable identities).
func (a *Authority) Register(name string, oid globeid.OID) error {
	if err := ValidateName(name); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	z := a.owningZoneLocked(name)
	now := a.Now()
	rec := &Record{Name: name, OID: oid, Issued: now, Expires: now.Add(a.RecordTTL)}
	sig, err := z.key.Sign(rec.signedBytes())
	if err != nil {
		return err
	}
	rec.Sig = sig
	z.records[name] = rec
	return nil
}

// Unregister removes the binding for name.
func (a *Authority) Unregister(name string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	z := a.owningZoneLocked(name)
	if _, ok := z.records[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchName, name)
	}
	delete(z.records, name)
	return nil
}

// ResolveChain returns the verifiable chain for name: delegations from
// the root to the owning zone, then the signed record.
func (a *Authority) ResolveChain(name string) (Chain, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	z := a.owningZoneLocked(name)
	rec, ok := z.records[name]
	if !ok {
		return Chain{}, fmt.Errorf("%w: %q", ErrNoSuchName, name)
	}
	var dels []Delegation
	for cur := z; cur.delegation != nil; cur = cur.parent {
		dels = append(dels, *cur.delegation)
	}
	// Reverse into root-first order.
	for i, j := 0, len(dels)-1; i < j; i, j = i+1, j-1 {
		dels[i], dels[j] = dels[j], dels[i]
	}
	return Chain{Delegations: dels, Record: *rec}, nil
}

// VerifyChain validates a chain against the root trust anchor at time
// now, returning the bound OID. This is the client-side check: it
// succeeds only if every delegation signature, the record signature, the
// zone nesting, the queried name, and all validity intervals are good.
func VerifyChain(chain Chain, name string, rootKey keys.PublicKey, now time.Time) (globeid.OID, error) {
	key := rootKey
	zoneName := Root
	for i := range chain.Delegations {
		d := &chain.Delegations[i]
		if d.Parent != zoneName {
			return globeid.Zero, fmt.Errorf("%w: delegation parent %q, expected %q",
				ErrChainInvalid, d.Parent, zoneName)
		}
		if zoneName != Root && d.Child != zoneName && !strings.HasSuffix(d.Child, "."+zoneName) {
			return globeid.Zero, fmt.Errorf("%w: zone %q not inside %q",
				ErrChainInvalid, d.Child, zoneName)
		}
		if err := key.Verify(d.signedBytes(), d.Sig); err != nil {
			return globeid.Zero, fmt.Errorf("%w: bad signature on delegation of %q",
				ErrChainInvalid, d.Child)
		}
		if now.After(d.Expires) || now.Before(d.Issued) {
			return globeid.Zero, fmt.Errorf("%w: delegation of %q", ErrExpired, d.Child)
		}
		key = d.ChildKey
		zoneName = d.Child
	}
	rec := &chain.Record
	if rec.Name != name {
		return globeid.Zero, fmt.Errorf("%w: record is for %q, asked for %q",
			ErrRecordInvalid, rec.Name, name)
	}
	if zoneName != Root && rec.Name != zoneName && !strings.HasSuffix(rec.Name, "."+zoneName) {
		return globeid.Zero, fmt.Errorf("%w: record %q outside zone %q",
			ErrRecordInvalid, rec.Name, zoneName)
	}
	if err := key.Verify(rec.signedBytes(), rec.Sig); err != nil {
		return globeid.Zero, fmt.Errorf("%w: bad signature on record %q", ErrRecordInvalid, name)
	}
	if now.After(rec.Expires) || now.Before(rec.Issued) {
		return globeid.Zero, fmt.Errorf("%w: record %q", ErrExpired, name)
	}
	return rec.OID, nil
}
