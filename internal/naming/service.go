package naming

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"globedoc/internal/enc"
	"globedoc/internal/globeid"
	"globedoc/internal/keys"
	"globedoc/internal/telemetry"
	"globedoc/internal/transport"
)

// Wire operation names of the naming service.
const (
	OpResolve    = "name.resolve"
	OpRegister   = "name.register"
	OpUnregister = "name.unregister"
)

// Service exposes an Authority over the GlobeDoc wire protocol.
type Service struct {
	auth *Authority
	srv  *transport.Server
}

// NewService wraps auth in a transport server.
func NewService(auth *Authority) *Service {
	s := &Service{auth: auth, srv: transport.NewServer()}
	s.srv.Handle(OpResolve, s.handleResolve)
	s.srv.Handle(OpRegister, s.handleRegister)
	s.srv.Handle(OpUnregister, s.handleUnregister)
	return s
}

// Serve accepts connections on l until closed.
func (s *Service) Serve(l net.Listener) error { return s.srv.Serve(l) }

// Start serves on a background goroutine.
func (s *Service) Start(l net.Listener) { s.srv.Start(l) }

// Close shuts the service down.
func (s *Service) Close() { s.srv.Close() }

// SetTelemetry wires the transport layer's per-RPC spans and
// rpc_served_total counters to tel. Call before Start/Serve.
func (s *Service) SetTelemetry(tel *telemetry.Telemetry) { s.srv.Telemetry = tel }

// Authority returns the wrapped authority.
func (s *Service) Authority() *Authority { return s.auth }

func marshalDelegation(w *enc.Writer, d *Delegation) {
	w.String(d.Parent)
	w.String(d.Child)
	w.BytesPrefixed(d.ChildKey.Marshal())
	w.Time(d.Issued)
	w.Time(d.Expires)
	w.BytesPrefixed(d.Sig)
}

func unmarshalDelegation(r *enc.Reader) (Delegation, error) {
	var d Delegation
	d.Parent = r.String()
	d.Child = r.String()
	rawKey := r.BytesPrefixed()
	d.Issued = r.Time()
	d.Expires = r.Time()
	d.Sig = append([]byte(nil), r.BytesPrefixed()...)
	if r.Err() != nil {
		return Delegation{}, r.Err()
	}
	pk, err := keys.UnmarshalPublicKey(rawKey)
	if err != nil {
		return Delegation{}, err
	}
	d.ChildKey = pk
	return d, nil
}

func marshalRecord(w *enc.Writer, rec *Record) {
	w.String(rec.Name)
	w.Raw(rec.OID[:])
	w.Time(rec.Issued)
	w.Time(rec.Expires)
	w.BytesPrefixed(rec.Sig)
}

func unmarshalRecord(r *enc.Reader) Record {
	var rec Record
	rec.Name = r.String()
	copy(rec.OID[:], r.Raw(globeid.Size))
	rec.Issued = r.Time()
	rec.Expires = r.Time()
	rec.Sig = append([]byte(nil), r.BytesPrefixed()...)
	return rec
}

// MarshalChain encodes a chain for the wire.
func MarshalChain(chain Chain) []byte {
	w := enc.NewWriter(256)
	w.Uvarint(uint64(len(chain.Delegations)))
	for i := range chain.Delegations {
		marshalDelegation(w, &chain.Delegations[i])
	}
	marshalRecord(w, &chain.Record)
	return w.Bytes()
}

// UnmarshalChain decodes a chain from the wire.
func UnmarshalChain(data []byte) (Chain, error) {
	r := enc.NewReader(data)
	n := r.Uvarint()
	if n > 64 {
		return Chain{}, fmt.Errorf("naming: implausible delegation count %d", n)
	}
	var chain Chain
	for i := uint64(0); i < n; i++ {
		d, err := unmarshalDelegation(r)
		if err != nil {
			return Chain{}, err
		}
		chain.Delegations = append(chain.Delegations, d)
	}
	chain.Record = unmarshalRecord(r)
	if err := r.Finish(); err != nil {
		return Chain{}, err
	}
	return chain, nil
}

func (s *Service) handleResolve(body []byte) ([]byte, error) {
	r := enc.NewReader(body)
	name := r.String()
	if err := r.Finish(); err != nil {
		return nil, err
	}
	chain, err := s.auth.ResolveChain(name)
	if err != nil {
		return nil, err
	}
	return MarshalChain(chain), nil
}

func (s *Service) handleRegister(body []byte) ([]byte, error) {
	r := enc.NewReader(body)
	name := r.String()
	var oid globeid.OID
	copy(oid[:], r.Raw(globeid.Size))
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return nil, s.auth.Register(name, oid)
}

func (s *Service) handleUnregister(body []byte) ([]byte, error) {
	r := enc.NewReader(body)
	name := r.String()
	if err := r.Finish(); err != nil {
		return nil, err
	}
	return nil, s.auth.Unregister(name)
}

// OIDResolver is the client-side view of secure name resolution: anything
// that can turn an object name into a verified OID.
type OIDResolver interface {
	Resolve(ctx context.Context, name string) (globeid.OID, error)
}

// Resolver is a verifying, caching naming-service client. It trusts only
// the root zone key given at construction: every response is validated
// with VerifyChain before being returned or cached, so a malicious naming
// server (or network) can at worst deny service.
type Resolver struct {
	client  *transport.Client
	rootKey keys.PublicKey
	// Now is the clock used for validity checks; tests may replace it.
	Now func() time.Time

	mu    sync.Mutex
	cache map[string]cacheEntry
	// Hits and Misses count cache outcomes, for the binding-cache
	// ablation benchmark.
	Hits, Misses uint64
}

type cacheEntry struct {
	oid     globeid.OID
	expires time.Time
}

// NewResolver returns a resolver that dials the naming service with dial
// and trusts rootKey.
func NewResolver(dial transport.DialFunc, rootKey keys.PublicKey) *Resolver {
	return &Resolver{
		client:  transport.NewClient(dial),
		rootKey: rootKey,
		Now:     time.Now,
		cache:   make(map[string]cacheEntry),
	}
}

// Close releases the pooled connection.
func (r *Resolver) Close() { r.client.Close() }

// Configure applies transport timeouts and retry policy to the
// underlying RPC client and returns r for chaining.
func (r *Resolver) Configure(cfg transport.Config) *Resolver {
	r.client.Configure(cfg)
	return r
}

// Transport exposes the underlying RPC client so callers can inspect
// retry counters or tune it directly.
func (r *Resolver) Transport() *transport.Client { return r.client }

// Resolve returns the verified OID bound to name, consulting the cache
// first.
func (r *Resolver) Resolve(ctx context.Context, name string) (globeid.OID, error) {
	now := r.Now()
	r.mu.Lock()
	if e, ok := r.cache[name]; ok && now.Before(e.expires) {
		r.Hits++
		r.mu.Unlock()
		return e.oid, nil
	}
	r.Misses++
	r.mu.Unlock()

	w := enc.NewWriter(len(name) + 8)
	w.String(name)
	body, err := r.client.Call(ctx, OpResolve, w.Bytes())
	if err != nil {
		return globeid.Zero, err
	}
	chain, err := UnmarshalChain(body)
	if err != nil {
		return globeid.Zero, err
	}
	oid, err := VerifyChain(chain, name, r.rootKey, now)
	if err != nil {
		return globeid.Zero, err
	}
	r.mu.Lock()
	r.cache[name] = cacheEntry{oid: oid, expires: chain.Record.Expires}
	r.mu.Unlock()
	return oid, nil
}

// FlushCache empties the resolver cache (used by cold-path benchmarks).
func (r *Resolver) FlushCache() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cache = make(map[string]cacheEntry)
}

// Register binds name to oid via the remote authority (administrative
// path; production deployments would authenticate this channel).
func (r *Resolver) Register(ctx context.Context, name string, oid globeid.OID) error {
	w := enc.NewWriter(len(name) + globeid.Size + 8)
	w.String(name)
	w.Raw(oid[:])
	_, err := r.client.Call(ctx, OpRegister, w.Bytes())
	return err
}

var _ OIDResolver = (*Resolver)(nil)
