package naming_test

import (
	"context"
	"testing"
	"time"

	"globedoc/internal/keys"
	"globedoc/internal/naming"
	"globedoc/internal/netsim"
)

// startNamingService runs a naming service on the simulated testbed and
// returns a verifying resolver dialing from fromHost.
func startNamingService(t *testing.T, n *netsim.Network, fromHost string) (*naming.Resolver, *naming.Authority) {
	t.Helper()
	auth, err := naming.NewAuthority(keys.Ed25519)
	if err != nil {
		t.Fatal(err)
	}
	auth.Now = func() time.Time { return clock }
	l, err := n.Listen(netsim.AmsterdamPrimary, "namesvc")
	if err != nil {
		t.Fatal(err)
	}
	svc := naming.NewService(auth)
	svc.Start(l)
	t.Cleanup(svc.Close)
	r := naming.NewResolver(n.Dialer(fromHost, netsim.AmsterdamPrimary+":namesvc"), auth.RootKey())
	r.Now = func() time.Time { return clock }
	t.Cleanup(r.Close)
	return r, auth
}

func TestResolverEndToEnd(t *testing.T) {
	n := netsim.PaperTestbed(0)
	defer n.Close()
	r, auth := startNamingService(t, n, netsim.Paris)

	oid := testOID(31)
	if err := auth.Register("home.vu.nl", oid); err != nil {
		t.Fatal(err)
	}
	got, err := r.Resolve(context.Background(), "home.vu.nl")
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if got != oid {
		t.Error("OID mismatch")
	}
}

func TestResolverCaches(t *testing.T) {
	n := netsim.PaperTestbed(0)
	defer n.Close()
	r, auth := startNamingService(t, n, netsim.Ithaca)
	auth.Register("cached.nl", testOID(32))

	if _, err := r.Resolve(context.Background(), "cached.nl"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Resolve(context.Background(), "cached.nl"); err != nil {
		t.Fatal(err)
	}
	if r.Hits != 1 || r.Misses != 1 {
		t.Errorf("Hits=%d Misses=%d, want 1/1", r.Hits, r.Misses)
	}
	r.FlushCache()
	if _, err := r.Resolve(context.Background(), "cached.nl"); err != nil {
		t.Fatal(err)
	}
	if r.Misses != 2 {
		t.Errorf("Misses after flush = %d, want 2", r.Misses)
	}
}

func TestResolverRegisterOverWire(t *testing.T) {
	n := netsim.PaperTestbed(0)
	defer n.Close()
	r, _ := startNamingService(t, n, netsim.AmsterdamSecondary)
	oid := testOID(33)
	if err := r.Register(context.Background(), "remote.nl", oid); err != nil {
		t.Fatalf("Register: %v", err)
	}
	got, err := r.Resolve(context.Background(), "remote.nl")
	if err != nil || got != oid {
		t.Fatalf("Resolve = %v, %v", got, err)
	}
}

func TestResolverRejectsMissingName(t *testing.T) {
	n := netsim.PaperTestbed(0)
	defer n.Close()
	r, _ := startNamingService(t, n, netsim.Paris)
	if _, err := r.Resolve(context.Background(), "ghost.nl"); err == nil {
		t.Fatal("Resolve of unregistered name succeeded")
	}
}

func TestChainMarshalRoundTrip(t *testing.T) {
	a := newAuthority(t)
	a.CreateZone(naming.Root, "nl")
	a.Register("x.nl", testOID(34))
	chain, err := a.ResolveChain("x.nl")
	if err != nil {
		t.Fatal(err)
	}
	data := naming.MarshalChain(chain)
	got, err := naming.UnmarshalChain(data)
	if err != nil {
		t.Fatalf("UnmarshalChain: %v", err)
	}
	oid, err := naming.VerifyChain(got, "x.nl", a.RootKey(), clock)
	if err != nil {
		t.Fatalf("round-tripped chain rejected: %v", err)
	}
	if oid != testOID(34) {
		t.Error("OID mismatch after round trip")
	}
}

func TestUnmarshalChainRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{nil, {0xff}, {1, 2, 3, 4}} {
		if _, err := naming.UnmarshalChain(data); err == nil {
			t.Errorf("UnmarshalChain(%v) succeeded", data)
		}
	}
}
