package naming_test

import (
	"errors"
	"testing"
	"time"

	"globedoc/internal/globeid"
	"globedoc/internal/keys"
	"globedoc/internal/naming"
)

var clock = time.Date(2005, 4, 4, 12, 0, 0, 0, time.UTC)

func newAuthority(t *testing.T) *naming.Authority {
	t.Helper()
	a, err := naming.NewAuthority(keys.Ed25519)
	if err != nil {
		t.Fatalf("NewAuthority: %v", err)
	}
	a.Now = func() time.Time { return clock }
	return a
}

func testOID(b byte) globeid.OID {
	var oid globeid.OID
	for i := range oid {
		oid[i] = b
	}
	return oid
}

func TestRegisterResolveRoundTrip(t *testing.T) {
	a := newAuthority(t)
	oid := testOID(1)
	if err := a.Register("home.vu.nl", oid); err != nil {
		t.Fatalf("Register: %v", err)
	}
	chain, err := a.ResolveChain("home.vu.nl")
	if err != nil {
		t.Fatalf("ResolveChain: %v", err)
	}
	got, err := naming.VerifyChain(chain, "home.vu.nl", a.RootKey(), clock)
	if err != nil {
		t.Fatalf("VerifyChain: %v", err)
	}
	if got != oid {
		t.Errorf("OID = %s, want %s", got, oid)
	}
}

func TestDelegatedZoneChain(t *testing.T) {
	a := newAuthority(t)
	if err := a.CreateZone(naming.Root, "nl"); err != nil {
		t.Fatalf("CreateZone nl: %v", err)
	}
	if err := a.CreateZone("nl", "vu.nl"); err != nil {
		t.Fatalf("CreateZone vu.nl: %v", err)
	}
	oid := testOID(2)
	if err := a.Register("home.science.vu.nl", oid); err != nil {
		t.Fatal(err)
	}
	chain, err := a.ResolveChain("home.science.vu.nl")
	if err != nil {
		t.Fatal(err)
	}
	if len(chain.Delegations) != 2 {
		t.Fatalf("delegations = %d, want 2 (root->nl->vu.nl)", len(chain.Delegations))
	}
	if chain.Delegations[0].Child != "nl" || chain.Delegations[1].Child != "vu.nl" {
		t.Fatalf("chain order wrong: %+v", chain.Delegations)
	}
	got, err := naming.VerifyChain(chain, "home.science.vu.nl", a.RootKey(), clock)
	if err != nil {
		t.Fatalf("VerifyChain: %v", err)
	}
	if got != oid {
		t.Errorf("OID mismatch")
	}
}

func TestVerifyChainRejectsForgedRecord(t *testing.T) {
	a := newAuthority(t)
	a.Register("victim.nl", testOID(3))
	chain, _ := a.ResolveChain("victim.nl")
	// Attacker swaps the OID but cannot re-sign.
	chain.Record.OID = testOID(66)
	if _, err := naming.VerifyChain(chain, "victim.nl", a.RootKey(), clock); !errors.Is(err, naming.ErrRecordInvalid) {
		t.Fatalf("err = %v, want ErrRecordInvalid", err)
	}
}

func TestVerifyChainRejectsForgedDelegation(t *testing.T) {
	a := newAuthority(t)
	a.CreateZone(naming.Root, "nl")
	a.Register("x.nl", testOID(4))
	chain, _ := a.ResolveChain("x.nl")
	if len(chain.Delegations) != 1 {
		t.Fatalf("delegations = %d", len(chain.Delegations))
	}
	// Attacker substitutes their own zone key.
	mallory, _ := naming.NewAuthority(keys.Ed25519)
	chain.Delegations[0].ChildKey = mallory.RootKey()
	if _, err := naming.VerifyChain(chain, "x.nl", a.RootKey(), clock); !errors.Is(err, naming.ErrChainInvalid) {
		t.Fatalf("err = %v, want ErrChainInvalid", err)
	}
}

func TestVerifyChainRejectsWrongRoot(t *testing.T) {
	a := newAuthority(t)
	a.Register("x.nl", testOID(5))
	chain, _ := a.ResolveChain("x.nl")
	other := newAuthority(t)
	if _, err := naming.VerifyChain(chain, "x.nl", other.RootKey(), clock); err == nil {
		t.Fatal("chain verified under a different trust anchor")
	}
}

func TestVerifyChainRejectsNameMismatch(t *testing.T) {
	a := newAuthority(t)
	a.Register("a.nl", testOID(6))
	chain, _ := a.ResolveChain("a.nl")
	if _, err := naming.VerifyChain(chain, "b.nl", a.RootKey(), clock); !errors.Is(err, naming.ErrRecordInvalid) {
		t.Fatalf("err = %v, want ErrRecordInvalid", err)
	}
}

func TestVerifyChainRejectsExpiredRecord(t *testing.T) {
	a := newAuthority(t)
	a.Register("x.nl", testOID(7))
	chain, _ := a.ResolveChain("x.nl")
	late := clock.Add(48 * time.Hour) // past the 24h record TTL
	if _, err := naming.VerifyChain(chain, "x.nl", a.RootKey(), late); !errors.Is(err, naming.ErrExpired) {
		t.Fatalf("err = %v, want ErrExpired", err)
	}
}

func TestReRegisterReplacesBinding(t *testing.T) {
	a := newAuthority(t)
	a.Register("x.nl", testOID(8))
	a.Register("x.nl", testOID(9))
	chain, _ := a.ResolveChain("x.nl")
	got, err := naming.VerifyChain(chain, "x.nl", a.RootKey(), clock)
	if err != nil {
		t.Fatal(err)
	}
	if got != testOID(9) {
		t.Error("re-registration did not replace binding")
	}
}

func TestUnregister(t *testing.T) {
	a := newAuthority(t)
	a.Register("x.nl", testOID(10))
	if err := a.Unregister("x.nl"); err != nil {
		t.Fatalf("Unregister: %v", err)
	}
	if _, err := a.ResolveChain("x.nl"); !errors.Is(err, naming.ErrNoSuchName) {
		t.Fatalf("ResolveChain after Unregister: %v", err)
	}
	if err := a.Unregister("x.nl"); !errors.Is(err, naming.ErrNoSuchName) {
		t.Fatalf("double Unregister: %v", err)
	}
}

func TestCreateZoneValidation(t *testing.T) {
	a := newAuthority(t)
	if err := a.CreateZone("absent", "x.nl"); !errors.Is(err, naming.ErrNoSuchZone) {
		t.Errorf("err = %v", err)
	}
	if err := a.CreateZone(naming.Root, "nl"); err != nil {
		t.Fatal(err)
	}
	if err := a.CreateZone(naming.Root, "nl"); !errors.Is(err, naming.ErrZoneExists) {
		t.Errorf("duplicate zone: %v", err)
	}
	if err := a.CreateZone("nl", "example.com"); !errors.Is(err, naming.ErrBadName) {
		t.Errorf("out-of-zone child: %v", err)
	}
	if err := a.CreateZone("nl", ""); !errors.Is(err, naming.ErrBadName) {
		t.Errorf("empty child: %v", err)
	}
}

func TestValidateName(t *testing.T) {
	good := []string{"a", "a.b", "home.science.vu.nl"}
	for _, name := range good {
		if err := naming.ValidateName(name); err != nil {
			t.Errorf("ValidateName(%q) = %v", name, err)
		}
	}
	bad := []string{"", ".", "a..b", ".a", "a."}
	for _, name := range bad {
		if err := naming.ValidateName(name); err == nil {
			t.Errorf("ValidateName(%q) succeeded", name)
		}
	}
}

func TestZonesListing(t *testing.T) {
	a := newAuthority(t)
	a.CreateZone(naming.Root, "nl")
	a.CreateZone("nl", "vu.nl")
	zones := a.Zones()
	if len(zones) != 3 { // ".", "nl", "vu.nl"
		t.Errorf("Zones = %v", zones)
	}
}

func TestRegisterRejectsBadNames(t *testing.T) {
	a := newAuthority(t)
	if err := a.Register("", testOID(1)); !errors.Is(err, naming.ErrBadName) {
		t.Errorf("err = %v", err)
	}
	if err := a.Register(".", testOID(1)); !errors.Is(err, naming.ErrBadName) {
		t.Errorf("err = %v", err)
	}
}

func TestLongestSuffixZoneWins(t *testing.T) {
	a := newAuthority(t)
	a.CreateZone(naming.Root, "nl")
	a.CreateZone("nl", "vu.nl")
	a.Register("www.vu.nl", testOID(21))
	chain, err := a.ResolveChain("www.vu.nl")
	if err != nil {
		t.Fatal(err)
	}
	// Record must be signed by vu.nl, i.e. the chain ends with that zone.
	if len(chain.Delegations) != 2 || chain.Delegations[1].Child != "vu.nl" {
		t.Fatalf("chain = %+v", chain.Delegations)
	}
	if _, err := naming.VerifyChain(chain, "www.vu.nl", a.RootKey(), clock); err != nil {
		t.Fatal(err)
	}
}
