package naming_test

import (
	"testing"
	"time"

	"globedoc/internal/keys"
	"globedoc/internal/naming"
)

// FuzzUnmarshalChain checks the resolver-side chain decoder — fed by an
// untrusted naming server — never panics, and that verification of
// whatever it decodes never panics either.
func FuzzUnmarshalChain(f *testing.F) {
	a, err := naming.NewAuthority(keys.Ed25519)
	if err != nil {
		f.Fatal(err)
	}
	a.Now = func() time.Time { return time.Unix(1e9, 0) }
	if err := a.CreateZone(naming.Root, "nl"); err != nil {
		f.Fatal(err)
	}
	if err := a.Register("x.nl", testOID(1)); err != nil {
		f.Fatal(err)
	}
	chain, err := a.ResolveChain("x.nl")
	if err != nil {
		f.Fatal(err)
	}
	f.Add(naming.MarshalChain(chain))
	f.Add([]byte{})
	f.Add([]byte{0x05, 0xff, 0x00})
	rootKey := a.RootKey()
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := naming.UnmarshalChain(data)
		if err != nil {
			return
		}
		// Verifying arbitrary decoded chains must be panic-free and,
		// when the input was mutated, must not validate under the real
		// root for the registered name unless it IS the genuine chain.
		_, _ = naming.VerifyChain(got, "x.nl", rootKey, time.Unix(1e9, 0))
	})
}
