// Package sitepub compiles a conventional Web-site directory tree into a
// set of publishable GlobeDoc objects.
//
// The paper's document model (§2) splits a Web site into documents — "a
// collection of logically related Web resources" — each encapsulated in
// its own GlobeDoc object with its own key, certificate and replication
// policy. Authors, however, write sites as one directory tree with
// ordinary links. sitepub bridges the two:
//
//   - each top-level directory under the site root becomes one GlobeDoc
//     object, named "<dir>.<domain>" (files at the root itself form the
//     "home" object "<domain>");
//   - links within a directory stay relative (same object — the paper's
//     relative hyper-links);
//   - site-absolute links ("/news/story.html") and parent-relative links
//     ("../news/story.html") are rewritten to hybrid URLs
//     ("/GlobeDoc/news.<domain>/story.html") so the proxy routes them to
//     the right object (the paper's absolute hyper-links);
//   - dangling intra-object links are reported as diagnostics before
//     anything is signed.
package sitepub

import (
	"fmt"
	"io/fs"
	"sort"
	"strings"

	"globedoc/internal/document"
)

// Compiled is the result of compiling a site tree.
type Compiled struct {
	// Domain is the site's name suffix, e.g. "vu.nl".
	Domain string
	// Objects maps object names to their documents, e.g.
	// "news.vu.nl" -> the news document; "vu.nl" is the home object.
	Objects map[string]*document.Document
	// Diagnostics lists dangling intra-object links found after
	// rewriting ("objectName/element: target").
	Diagnostics []string
}

// ObjectNames returns the sorted object names.
func (c *Compiled) ObjectNames() []string {
	names := make([]string, 0, len(c.Objects))
	for name := range c.Objects {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Compile walks the site tree rooted at root in fsys and produces one
// document per top-level directory, rewriting cross-document links.
func Compile(fsys fs.FS, root, domain string) (*Compiled, error) {
	if domain == "" {
		return nil, fmt.Errorf("sitepub: empty domain")
	}
	c := &Compiled{Domain: domain, Objects: make(map[string]*document.Document)}
	err := fs.WalkDir(fsys, root, func(p string, entry fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if entry.IsDir() {
			return nil
		}
		rel := strings.TrimPrefix(strings.TrimPrefix(p, root), "/")
		if rel == "" {
			rel = entry.Name()
		}
		objName, elemName := split(rel, domain)
		doc := c.Objects[objName]
		if doc == nil {
			doc = document.New()
			c.Objects[objName] = doc
		}
		data, err := fs.ReadFile(fsys, p)
		if err != nil {
			return err
		}
		elem := document.Element{Name: elemName, Data: data}
		elem.ContentType = document.GuessContentType(elemName)
		if strings.HasPrefix(elem.ContentType, "text/html") {
			elem.Data = rewriteLinks(data, objName, domain)
		}
		return doc.Put(elem)
	})
	if err != nil {
		return nil, fmt.Errorf("sitepub: walking site: %w", err)
	}
	if len(c.Objects) == 0 {
		return nil, fmt.Errorf("sitepub: no files under %q", root)
	}
	c.checkLinks()
	return c, nil
}

// split maps a site-relative path to (objectName, elementName).
func split(rel, domain string) (string, string) {
	dir, rest, ok := strings.Cut(rel, "/")
	if !ok {
		return domain, rel // root-level file -> home object
	}
	return dir + "." + domain, rest
}

// rewriteLinks rewrites cross-document href/src targets in HTML to hybrid
// URLs. Targets beginning with "/" are site-absolute; targets beginning
// with "../" climb out of the current object.
func rewriteLinks(html []byte, objName, domain string) []byte {
	s := string(html)
	var b strings.Builder
	b.Grow(len(s))
	for {
		i := findAttr(s)
		if i < 0 {
			b.WriteString(s)
			break
		}
		// i points at the first byte of the quoted value.
		b.WriteString(s[:i])
		quote := s[i]
		end := strings.IndexByte(s[i+1:], quote)
		if end < 0 {
			b.WriteString(s[i:])
			break
		}
		target := s[i+1 : i+1+end]
		b.WriteByte(quote)
		b.WriteString(rewriteTarget(target, domain))
		b.WriteByte(quote)
		s = s[i+1+end+1:]
	}
	return []byte(b.String())
}

// asciiLower lowercases ASCII letters only, preserving byte offsets
// (strings.ToLower may resize non-ASCII runes, corrupting indices).
func asciiLower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

// findAttr returns the index of the opening quote of the next href=/src=
// attribute value, or -1.
func findAttr(s string) int {
	lower := asciiLower(s)
	best := -1
	for _, attr := range []string{"href=", "src="} {
		from := 0
		for {
			j := strings.Index(lower[from:], attr)
			if j < 0 {
				break
			}
			k := from + j + len(attr)
			if k < len(s) && (s[k] == '"' || s[k] == '\'') {
				if best == -1 || k < best {
					best = k
				}
				break
			}
			from = from + j + len(attr)
		}
	}
	return best
}

// rewriteTarget maps one link target to its hybrid form if it crosses
// document boundaries.
func rewriteTarget(target, domain string) string {
	switch {
	case strings.Contains(target, "://") || strings.HasPrefix(target, "//"):
		return target // external
	case strings.HasPrefix(target, "/GlobeDoc/"):
		return target // already hybrid
	case strings.HasPrefix(target, "/"):
		rel := strings.TrimPrefix(target, "/")
		obj, elem := split(rel, domain)
		return document.HybridRef{ObjectName: obj, Element: elem}.String()
	case strings.HasPrefix(target, "../"):
		rel := strings.TrimPrefix(target, "../")
		obj, elem := split(rel, domain)
		return document.HybridRef{ObjectName: obj, Element: elem}.String()
	default:
		return target // relative: same object
	}
}

// checkLinks fills Diagnostics with dangling intra-object links.
func (c *Compiled) checkLinks() {
	site := document.NewSite(c.Domain)
	for name, doc := range c.Objects {
		_ = site.Add(name, doc)
	}
	dangling := site.DanglingLinks()
	keys := make([]string, 0, len(dangling))
	for k := range dangling {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, target := range dangling[k] {
			c.Diagnostics = append(c.Diagnostics, fmt.Sprintf("%s: dangling link %q", k, target))
		}
	}
}

// PublishAll invokes publish for every compiled object in name order —
// the caller supplies the actual publication mechanism (deploy.World,
// admin client, ...).
func (c *Compiled) PublishAll(publish func(objectName string, doc *document.Document) error) error {
	for _, name := range c.ObjectNames() {
		if err := publish(name, c.Objects[name]); err != nil {
			return fmt.Errorf("sitepub: publishing %q: %w", name, err)
		}
	}
	return nil
}
