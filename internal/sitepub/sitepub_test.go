package sitepub_test

import (
	"context"
	"strings"
	"testing"
	"testing/fstest"

	"globedoc/internal/deploy"
	"globedoc/internal/document"
	"globedoc/internal/keys/keytest"
	"globedoc/internal/netsim"
	"globedoc/internal/server"
	"globedoc/internal/sitepub"
)

var siteFS = fstest.MapFS{
	"site/index.html": {Data: []byte(
		`<html><a href="about.html">about</a> <a href="/news/story.html">news</a></html>`)},
	"site/about.html": {Data: []byte(`<html>about us</html>`)},
	"site/news/story.html": {Data: []byte(
		`<html><img src="img/photo.png"> <a href="../index.html">home</a></html>`)},
	"site/news/img/photo.png": {Data: []byte{0x89, 'P', 'N', 'G'}},
}

func compile(t *testing.T) *sitepub.Compiled {
	t.Helper()
	c, err := sitepub.Compile(siteFS, "site", "vu.nl")
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return c
}

func TestCompileObjectPartitioning(t *testing.T) {
	c := compile(t)
	names := c.ObjectNames()
	if len(names) != 2 || names[0] != "news.vu.nl" || names[1] != "vu.nl" {
		t.Fatalf("ObjectNames = %v", names)
	}
	home := c.Objects["vu.nl"]
	if got := home.Names(); len(got) != 2 || got[0] != "about.html" || got[1] != "index.html" {
		t.Errorf("home elements = %v", got)
	}
	news := c.Objects["news.vu.nl"]
	if got := news.Names(); len(got) != 2 || got[0] != "img/photo.png" || got[1] != "story.html" {
		t.Errorf("news elements = %v", got)
	}
}

func TestCompileRewritesCrossDocumentLinks(t *testing.T) {
	c := compile(t)
	index, err := c.Objects["vu.nl"].Get("index.html")
	if err != nil {
		t.Fatal(err)
	}
	html := string(index.Data)
	if !strings.Contains(html, `href="/GlobeDoc/news.vu.nl/story.html"`) {
		t.Errorf("site-absolute link not rewritten: %s", html)
	}
	if !strings.Contains(html, `href="about.html"`) {
		t.Errorf("intra-object link damaged: %s", html)
	}
	story, err := c.Objects["news.vu.nl"].Get("story.html")
	if err != nil {
		t.Fatal(err)
	}
	html = string(story.Data)
	if !strings.Contains(html, `href="/GlobeDoc/vu.nl/index.html"`) {
		t.Errorf("parent-relative link not rewritten: %s", html)
	}
	if !strings.Contains(html, `src="img/photo.png"`) {
		t.Errorf("intra-object src damaged: %s", html)
	}
}

func TestCompileExternalLinksUntouched(t *testing.T) {
	fsys := fstest.MapFS{
		"s/index.html": {Data: []byte(`<a href="https://example.com/x">x</a><a href="/GlobeDoc/other/e">e</a>`)},
	}
	c, err := sitepub.Compile(fsys, "s", "d.nl")
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := c.Objects["d.nl"].Get("index.html")
	if !strings.Contains(string(idx.Data), `href="https://example.com/x"`) {
		t.Errorf("external link rewritten: %s", idx.Data)
	}
	if !strings.Contains(string(idx.Data), `href="/GlobeDoc/other/e"`) {
		t.Errorf("already-hybrid link rewritten: %s", idx.Data)
	}
}

func TestCompileDiagnosesDanglingLinks(t *testing.T) {
	fsys := fstest.MapFS{
		"s/index.html": {Data: []byte(`<a href="missing.html">gone</a>`)},
	}
	c, err := sitepub.Compile(fsys, "s", "d.nl")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Diagnostics) != 1 || !strings.Contains(c.Diagnostics[0], "missing.html") {
		t.Errorf("Diagnostics = %v", c.Diagnostics)
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := sitepub.Compile(fstest.MapFS{}, "s", "d.nl"); err == nil {
		t.Error("empty site compiled")
	}
	if _, err := sitepub.Compile(siteFS, "site", ""); err == nil {
		t.Error("empty domain accepted")
	}
}

func TestPublishAllEndToEnd(t *testing.T) {
	// Compile the site, publish every object into a world, and browse
	// across the rewritten link with the secure client.
	c := compile(t)
	w, err := deploy.NewWorld(deploy.Options{TimeScale: 0})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	if _, err := w.StartServer(netsim.AmsterdamPrimary, "srv", nil, nil, server.Limits{}); err != nil {
		t.Fatal(err)
	}
	err = c.PublishAll(func(objectName string, doc *document.Document) error {
		_, err := w.Publish(doc, deploy.PublishOptions{Name: objectName, OwnerKey: keytest.RSA()})
		return err
	})
	if err != nil {
		t.Fatalf("PublishAll: %v", err)
	}

	client := w.NewSecureClient(netsim.Paris)
	t.Cleanup(client.Close)
	res, err := client.FetchNamed(context.Background(), "vu.nl", "index.html")
	if err != nil {
		t.Fatal(err)
	}
	// Follow the rewritten hybrid link.
	links := document.ExtractLinks(res.Element.Data)
	var hybrid *document.HybridRef
	for _, l := range links {
		if l.Hybrid != nil {
			hybrid = l.Hybrid
		}
	}
	if hybrid == nil {
		t.Fatalf("no hybrid link in %s", res.Element.Data)
	}
	story, err := client.FetchNamed(context.Background(), hybrid.ObjectName, hybrid.Element)
	if err != nil {
		t.Fatalf("following hybrid link: %v", err)
	}
	if !strings.Contains(string(story.Element.Data), "img/photo.png") {
		t.Errorf("story = %s", story.Element.Data)
	}
}

func TestPublishAllPropagatesErrors(t *testing.T) {
	c := compile(t)
	calls := 0
	err := c.PublishAll(func(string, *document.Document) error {
		calls++
		return strings.NewReader("").UnreadByte() // any error
	})
	if err == nil {
		t.Fatal("error not propagated")
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (stop at first error)", calls)
	}
}
