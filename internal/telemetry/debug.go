package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// DebugSnapshot is the /debugz payload: a point-in-time metrics snapshot
// plus the most recent finished spans. The schema is stable — the
// telemetry-smoke CI target and cmd/globedoc-debugz validate against it.
type DebugSnapshot struct {
	// Schema identifies the payload layout.
	Schema string `json:"schema"`
	// TakenAt is the wall-clock snapshot time.
	TakenAt time.Time `json:"taken_at"`
	// Metrics is the full registry state.
	Metrics MetricsSnapshot `json:"metrics"`
	// Spans are the most recent finished spans, oldest first.
	Spans []SpanRecord `json:"spans"`
	// Health is the per-contact-address replica health state
	// (globedoc-health/1).
	Health HealthSnapshot `json:"health"`
	// Selection is the per-OID replica ranking most recently produced by
	// the client's Selector (globedoc-selection/1).
	Selection SelectionSnapshot `json:"selection"`
}

// DebugSchema is the current DebugSnapshot schema identifier.
const DebugSchema = "globedoc-debugz/1"

// Snapshot captures the current metrics and recent spans. TakenAt is
// read from the tracer's clock, so snapshots taken under a fake clock
// replay identically.
func (t *Telemetry) Snapshot() DebugSnapshot {
	return DebugSnapshot{
		Schema:    DebugSchema,
		TakenAt:   t.Tracer.now().UTC(),
		Metrics:   t.Registry.Snapshot(),
		Spans:     t.Ring.Spans(),
		Health:    t.Health.Snapshot(),
		Selection: t.Selection.Snapshot(),
	}
}

// TraceSchema is the /debugz/trace payload schema identifier.
const TraceSchema = "globedoc-trace/1"

// TraceSnapshot is the /debugz/trace payload: without an id, the trace
// IDs present in the span ring; with ?id=, that trace's retained spans
// plus the stitched tree rendered as text.
type TraceSnapshot struct {
	Schema  string       `json:"schema"`
	Traces  []TraceCount `json:"traces,omitempty"`
	TraceID uint64       `json:"trace_id,omitempty"`
	Spans   []SpanRecord `json:"spans,omitempty"`
	// Rendered is the indented span tree (FormatTrace) for the requested
	// trace ID.
	Rendered string `json:"rendered,omitempty"`
}

// DebugHandler returns the operational HTTP surface for this Telemetry:
//
//	/debugz          — full DebugSnapshot as JSON
//	/debugz/metrics  — metrics snapshot only
//	/debugz/spans    — recent spans only
//	/debugz/trace    — trace IDs in the ring; ?id=N stitches that trace
//	/debug/pprof/*   — the standard Go profiler endpoints
//
// Binaries mount it behind the -debug-addr flag; it is deliberately a
// separate listener from the serving port so operators can firewall it.
func (t *Telemetry) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debugz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, t.Snapshot())
	})
	mux.HandleFunc("/debugz/metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, t.Registry.Snapshot())
	})
	mux.HandleFunc("/debugz/spans", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, t.Ring.Spans())
	})
	mux.HandleFunc("/debugz/trace", func(w http.ResponseWriter, r *http.Request) {
		idArg := r.URL.Query().Get("id")
		if idArg == "" {
			writeJSON(w, TraceSnapshot{Schema: TraceSchema, Traces: TraceIDs(t.Ring.Spans())})
			return
		}
		id, err := strconv.ParseUint(idArg, 10, 64)
		if err != nil || id == 0 {
			http.Error(w, "bad trace id "+strconv.Quote(idArg), http.StatusBadRequest)
			return
		}
		var spans []SpanRecord
		for _, rec := range t.Ring.Spans() {
			if rec.TraceID == id {
				spans = append(spans, rec)
			}
		}
		if len(spans) == 0 {
			http.Error(w, "no retained spans for trace "+idArg, http.StatusNotFound)
			return
		}
		writeJSON(w, TraceSnapshot{
			Schema:   TraceSchema,
			TraceID:  id,
			Spans:    spans,
			Rendered: FormatTrace(BuildTrace(spans, id)),
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // a failed debug-page write means the scraper went away
}

// ServeDebug starts the debug HTTP server on addr. It returns the bound
// address (useful with ":0") and a stop function. An empty addr is a
// no-op returning ("", no-op, nil) so callers can pass the flag value
// straight through.
func (t *Telemetry) ServeDebug(addr string) (string, func(), error) {
	if addr == "" {
		return "", func() {}, nil
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: t.DebugHandler()}
	go func() { _ = srv.Serve(l) }()
	return l.Addr().String(), func() { srv.Close() }, nil
}
