package telemetry_test

import (
	"math"
	"sync"
	"testing"

	"globedoc/internal/telemetry"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := telemetry.NewHistogram([]float64{1, 5, 10})
	// An observation lands in the first bucket whose bound satisfies
	// v <= bound; above the last bound it lands in the overflow bucket.
	cases := []struct {
		v      float64
		bucket int
	}{
		{0, 0},
		{0.5, 0},
		{1, 0}, // exactly on a bound: belongs to that bound's bucket
		{1.1, 1},
		{5, 1},
		{5.0001, 2},
		{10, 2},
		{10.0001, 3}, // overflow
		{1e9, 3},
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	snap := h.Snapshot()
	if len(snap.Buckets) != 4 {
		t.Fatalf("snapshot has %d buckets, want 4 (3 bounds + overflow)", len(snap.Buckets))
	}
	wantCounts := make([]uint64, 4)
	for _, c := range cases {
		wantCounts[c.bucket]++
	}
	for i, want := range wantCounts {
		if got := snap.Buckets[i].Count; got != want {
			t.Errorf("bucket %d count = %d, want %d", i, got, want)
		}
	}
	if snap.Buckets[3].Bound != nil {
		t.Errorf("overflow bucket bound = %v, want nil (+Inf)", *snap.Buckets[3].Bound)
	}
	if *snap.Buckets[0].Bound != 1 || *snap.Buckets[2].Bound != 10 {
		t.Errorf("bucket bounds wrong: %v, %v", *snap.Buckets[0].Bound, *snap.Buckets[2].Bound)
	}
	if snap.Count != uint64(len(cases)) {
		t.Errorf("count = %d, want %d", snap.Count, len(cases))
	}
}

func TestHistogramUnsortedBoundsAreSorted(t *testing.T) {
	h := telemetry.NewHistogram([]float64{10, 1, 5})
	h.Observe(2)
	snap := h.Snapshot()
	if *snap.Buckets[0].Bound != 1 || *snap.Buckets[1].Bound != 5 || *snap.Buckets[2].Bound != 10 {
		t.Fatalf("bounds not sorted: %v %v %v",
			*snap.Buckets[0].Bound, *snap.Buckets[1].Bound, *snap.Buckets[2].Bound)
	}
	if snap.Buckets[1].Count != 1 {
		t.Errorf("observation of 2 landed wrong: %+v", snap.Buckets)
	}
}

func TestHistogramSumAndMean(t *testing.T) {
	h := telemetry.NewHistogram([]float64{100})
	for _, v := range []float64{1.5, 2.5, 6} {
		h.Observe(v)
	}
	if got := h.Sum(); math.Abs(got-10) > 1e-9 {
		t.Errorf("Sum = %v, want 10", got)
	}
	if got := h.Mean(); math.Abs(got-10.0/3) > 1e-9 {
		t.Errorf("Mean = %v, want %v", got, 10.0/3)
	}
	var empty *telemetry.Histogram
	if empty.Mean() != 0 || empty.Sum() != 0 || empty.Count() != 0 {
		t.Error("nil histogram not zero-valued")
	}
	empty.Observe(1) // must not panic
}

func TestConcurrentCounterIncrements(t *testing.T) {
	// Run with -race: concurrent Inc on counters, vec children and
	// histogram observations must be clean and lose nothing.
	reg := telemetry.NewRegistry()
	c := reg.Counter("plain")
	vec := reg.CounterVec("labeled", "op", "outcome")
	h := reg.Histogram("hist", []float64{0.5})
	const goroutines, each = 16, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			outcome := "ok"
			if g%2 == 1 {
				outcome = "error"
			}
			for i := 0; i < each; i++ {
				c.Inc()
				vec.With("fetch", outcome).Inc()
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*each {
		t.Errorf("counter = %d, want %d", got, goroutines*each)
	}
	if got := vec.Total(); got != goroutines*each {
		t.Errorf("vec total = %d, want %d", got, goroutines*each)
	}
	vals := vec.Values()
	if got := vals[`{op="fetch",outcome="ok"}`]; got != goroutines/2*each {
		t.Errorf("ok child = %d, want %d (keys: %v)", got, goroutines/2*each, vals)
	}
	if got := h.Count(); got != goroutines*each {
		t.Errorf("histogram count = %d, want %d", got, goroutines*each)
	}
	if got := h.Sum(); got != float64(goroutines*each) {
		t.Errorf("histogram sum = %v, want %d (lost CAS updates)", got, goroutines*each)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *telemetry.Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	var g *telemetry.Gauge
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	var v *telemetry.CounterVec
	v.With("a", "b").Inc() // nil vec yields nil child; both no-op
	if v.Total() != 0 || v.Values() != nil {
		t.Error("nil vec not empty")
	}
}

func TestRegistryGetOrCreateIsIdempotent(t *testing.T) {
	reg := telemetry.NewRegistry()
	if reg.Counter("x") != reg.Counter("x") {
		t.Error("Counter returned distinct instruments for one name")
	}
	if reg.CounterVec("y", "l") != reg.CounterVec("y", "l") {
		t.Error("CounterVec returned distinct instruments for one name")
	}
	h := reg.Histogram("z", []float64{1, 2})
	if reg.Histogram("z", []float64{9}) != h {
		t.Error("Histogram returned distinct instruments for one name")
	}
	// Existing histograms keep their original bounds.
	if snap := h.Snapshot(); len(snap.Buckets) != 3 {
		t.Errorf("histogram re-registration changed bounds: %d buckets", len(snap.Buckets))
	}
}

func TestRegistrySnapshot(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("a").Add(2)
	reg.CounterVec("b", "op").With("ping").Inc()
	reg.Gauge("c").Set(-7)
	reg.Histogram("d", []float64{1}).Observe(0.5)
	snap := reg.Snapshot()
	if snap.Counters["a"] != 2 {
		t.Errorf("counter a = %d", snap.Counters["a"])
	}
	if snap.LabeledCounters["b"][`{op="ping"}`] != 1 {
		t.Errorf("labeled b = %v", snap.LabeledCounters["b"])
	}
	if snap.Gauges["c"] != -7 {
		t.Errorf("gauge c = %d", snap.Gauges["c"])
	}
	if snap.Histograms["d"].Count != 1 {
		t.Errorf("histogram d = %+v", snap.Histograms["d"])
	}
}
