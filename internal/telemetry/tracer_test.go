package telemetry_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"globedoc/internal/clock"
	"globedoc/internal/telemetry"
)

func TestSpanParentChildStructure(t *testing.T) {
	fake := clock.NewFake(time.Unix(1000, 0))
	tr := telemetry.NewTracer(fake)
	ring := telemetry.NewRingExporter(16)
	tr.AddExporter(ring)

	root := tr.StartSpan("fetch.secure")
	fake.Advance(10 * time.Millisecond)
	child := root.StartChild("key.fetch")
	fake.Advance(5 * time.Millisecond)
	child.End()
	grand := root.StartChild("key.verify")
	fake.Advance(2 * time.Millisecond)
	grand.End()
	root.End()

	spans := ring.Spans()
	if len(spans) != 3 {
		t.Fatalf("exported %d spans, want 3", len(spans))
	}
	// Children export before the root (they end first).
	kf, kv, rt := spans[0], spans[1], spans[2]
	if kf.Name != "key.fetch" || kv.Name != "key.verify" || rt.Name != "fetch.secure" {
		t.Fatalf("span order = %s, %s, %s", kf.Name, kv.Name, rt.Name)
	}
	if rt.ParentID != 0 {
		t.Errorf("root has parent %d", rt.ParentID)
	}
	for _, c := range []telemetry.SpanRecord{kf, kv} {
		if c.ParentID != rt.SpanID {
			t.Errorf("%s parent = %d, want root %d", c.Name, c.ParentID, rt.SpanID)
		}
		if c.TraceID != rt.TraceID {
			t.Errorf("%s trace = %d, want %d", c.Name, c.TraceID, rt.TraceID)
		}
	}
	if kf.Duration() != 5*time.Millisecond {
		t.Errorf("key.fetch duration = %v, want 5ms", kf.Duration())
	}
	if rt.Duration() != 17*time.Millisecond {
		t.Errorf("root duration = %v, want 17ms", rt.Duration())
	}
}

func TestSpanEndIsIdempotent(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	tr := telemetry.NewTracer(fake)
	ring := telemetry.NewRingExporter(8)
	tr.AddExporter(ring)

	sp := tr.StartSpan("once")
	fake.Advance(time.Second)
	sp.End()
	fake.Advance(time.Second)
	sp.End()
	if got := ring.Total(); got != 1 {
		t.Fatalf("span exported %d times, want 1", got)
	}
	if d := sp.Duration(); d != time.Second {
		t.Errorf("duration after second End = %v, want 1s", d)
	}
}

func TestNilTracerAndSpanAreNoOps(t *testing.T) {
	var tr *telemetry.Tracer
	sp := tr.StartSpan("nothing")
	if sp != nil {
		t.Fatal("nil tracer returned a non-nil span")
	}
	// All of these must be safe on the nil span.
	child := sp.StartChild("child")
	if child != nil {
		t.Fatal("nil span returned a non-nil child")
	}
	sp.Annotate("k", "v")
	sp.End()
	if sp.Duration() != 0 {
		t.Error("nil span has non-zero duration")
	}
	if sp.TraceID() != 0 {
		t.Error("nil span has a trace ID")
	}
}

func TestRingExporterEviction(t *testing.T) {
	ring := telemetry.NewRingExporter(3)
	for i := 0; i < 5; i++ {
		ring.ExportSpan(telemetry.SpanRecord{SpanID: uint64(i + 1)})
	}
	spans := ring.Spans()
	if len(spans) != 3 {
		t.Fatalf("retained %d spans, want 3", len(spans))
	}
	for i, want := range []uint64{3, 4, 5} {
		if spans[i].SpanID != want {
			t.Errorf("spans[%d].SpanID = %d, want %d (oldest first)", i, spans[i].SpanID, want)
		}
	}
	if ring.Total() != 5 {
		t.Errorf("Total = %d, want 5", ring.Total())
	}
	ring.Reset()
	if len(ring.Spans()) != 0 {
		t.Error("Reset left spans behind")
	}
}

func TestJSONLExporterOneObjectPerLine(t *testing.T) {
	var buf bytes.Buffer
	exp := telemetry.NewJSONLExporter(&buf)
	fake := clock.NewFake(time.Unix(42, 0))
	tr := telemetry.NewTracer(fake)
	tr.AddExporter(exp)

	a := tr.StartSpan("alpha")
	a.Annotate("outcome", "ok")
	fake.Advance(time.Millisecond)
	a.End()
	tr.StartSpan("beta").End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2:\n%s", len(lines), buf.String())
	}
	var rec telemetry.SpanRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 1 is not valid JSON: %v", err)
	}
	if rec.Name != "alpha" || rec.Duration() != time.Millisecond {
		t.Errorf("round-tripped %q/%v, want alpha/1ms", rec.Name, rec.Duration())
	}
	if len(rec.Attrs) != 1 || rec.Attrs[0].Key != "outcome" || rec.Attrs[0].Value != "ok" {
		t.Errorf("attrs did not round-trip: %+v", rec.Attrs)
	}
}

func TestConcurrentSpansUnderRace(t *testing.T) {
	tr := telemetry.NewTracer(nil)
	ring := telemetry.NewRingExporter(1024)
	tr.AddExporter(ring)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := tr.StartSpan("op")
				child := sp.StartChild("step")
				child.Annotate("i", "x")
				child.End()
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got := ring.Total(); got != 8*50*2 {
		t.Fatalf("exported %d spans, want %d", got, 8*50*2)
	}
	// Span IDs must be unique across goroutines.
	seen := make(map[uint64]bool)
	for _, rec := range ring.Spans() {
		if seen[rec.SpanID] {
			t.Fatalf("duplicate span ID %d", rec.SpanID)
		}
		seen[rec.SpanID] = true
	}
}
