package telemetry

import (
	"sync"

	"globedoc/internal/clock"
)

// Standard metric names, shared by every GlobeDoc component. DESIGN.md §8
// maps each to the evaluation figure it supports.
const (
	MetricRPCCalls         = "rpc_calls_total"               // {op,outcome} client-side RPC attempts that completed
	MetricRPCRetries       = "rpc_retries_total"             // extra attempts beyond the first
	MetricRPCServed        = "rpc_served_total"              // {op,outcome} server-side handled requests
	MetricBindingHits      = "binding_cache_hits_total"      // verified-binding cache (core)
	MetricBindingMisses    = "binding_cache_misses_total"    //
	MetricLocationHits     = "location_cache_hits_total"     // location lookup cache
	MetricLocationMisses   = "location_cache_misses_total"   //
	MetricSecurityFailed   = "security_check_failures_total" // {phase} pipeline rejections
	MetricFailovers        = "failovers_total"               // replicas abandoned mid-pipeline
	MetricProxyRequests    = "proxy_requests_total"          // {kind,outcome} browser-facing requests
	MetricFetchLatency     = "fetch_latency_seconds"         // whole secure-fetch latency
	MetricSecurityOverhead = "security_overhead_percent"     // per-fetch Timing.OverheadPercent()

	// Connection-pool instruments (transport.Client).
	MetricPoolDials      = "transport_pool_dials_total"       // new connections opened
	MetricPoolReuse      = "transport_pool_reuse_total"       // calls served from an idle pooled conn
	MetricPoolIdleClosed = "transport_pool_idle_closed_total" // idle conns reaped past IdleTimeout
	MetricPoolConns      = "transport_pool_conns"             // open pooled connections (gauge)

	// Transport v2 multiplexing instruments (transport.Client/Server).
	MetricStreamsOpened = "transport_streams_opened_total" // v2 streams opened
	MetricStreamsActive = "transport_streams_active"       // in-flight v2 streams (gauge)
	MetricNegotiations  = "transport_negotiations_total"   // {version} concluded version negotiations

	// Batched element fetch instruments (core.Client).
	MetricBatchFetches  = "batch_fetch_total"          // GetElements batch RPCs issued
	MetricBatchElements = "batch_fetch_elements_total" // elements retrieved via batch RPCs

	// Singleflight instruments (core.Client binding establishment).
	MetricSingleflightShared = "binding_singleflight_shared_total" // fetches that joined another caller's pipeline run
	MetricPipelineRuns       = "binding_pipeline_runs_total"       // full secure-binding pipeline executions

	// Delta replication instruments (server.Puller). The mode label is
	// "full" (whole-bundle transfer) or "delta" (obj.getdelta transfer);
	// bytes count request+reply payloads, the quantity the bench-delta
	// gate bounds.
	MetricPullerPulls          = "puller_pulls_total"           // {mode} completed state transfers
	MetricPullerBytes          = "puller_bytes_total"           // {mode} payload bytes moved
	MetricPullerElements       = "puller_elements_total"        // {mode} element bodies transferred
	MetricPullerDeltaDeclines  = "puller_delta_declines_total"  // full-required declines from the primary
	MetricPullerDeltaFallbacks = "puller_delta_fallbacks_total" // delta attempts that fell back to full

	// Verified-content cache instruments (vcache.Cache via core.Client).
	MetricVCacheHits          = "vcache_hits_total"          // element fetches served from verified bytes
	MetricVCacheMisses        = "vcache_misses_total"        // element fetches that had to move bytes
	MetricVCacheRevalidations = "vcache_revalidations_total" // lapsed intervals refreshed cert-only
	MetricVCacheEvictions     = "vcache_evictions_total"     // entries dropped by pressure or invalidation
	MetricSigCacheHits        = "signature_cache_hits_total" // memoized signature verdicts reused
	MetricBindingEntries      = "binding_cache_entries"      // live verified bindings (gauge)
)

// DefaultLatencyBuckets are the fetch-latency histogram bounds, in
// seconds, spanning LAN round trips through the paper's transatlantic
// worst case.
var DefaultLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// PercentBuckets are the security-overhead histogram bounds: Figure 4
// reports overhead from ~1% (large elements) to ~90% (tiny ones).
var PercentBuckets = []float64{1, 2, 5, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100}

// RingSize is how many recent spans a Telemetry retains for /debugz.
const RingSize = 256

// Telemetry bundles a tracer, a registry and the standard GlobeDoc
// instruments, ready to thread through transport, core, location, server
// and proxy. One Telemetry per process is the intended shape; components
// left unwired fall back to the shared Default().
type Telemetry struct {
	Tracer   *Tracer
	Registry *Registry
	// Ring retains the most recent spans for /debugz and span-tree tests.
	Ring *RingExporter
	// Health tracks per-contact-address RTT/error EWMAs, fed by
	// transport.Client attempts and consumed by core's replica Selector.
	Health *HealthTracker
	// Selection retains the most recent per-OID replica ranking produced
	// by core's Selector, for /debugz and cmd/globedoc-debugz.
	Selection *SelectionTracker

	// Client-side RPC instruments (transport.Client).
	RPCCalls   *CounterVec // {op,outcome}
	RPCRetries *Counter
	// Connection-pool instruments (transport.Client).
	PoolDials      *Counter
	PoolReuse      *Counter
	PoolIdleClosed *Counter
	PoolConns      *Gauge
	// Transport v2 multiplexing instruments.
	StreamsOpened *Counter
	StreamsActive *Gauge
	Negotiations  *CounterVec // {version}
	// Batched element fetch instruments (core.Client).
	BatchFetches  *Counter
	BatchElements *Counter
	// Server-side RPC instruments (transport.Server).
	RPCServed *CounterVec // {op,outcome}

	// Pipeline instruments (core.Client).
	BindingCacheHits      *Counter
	BindingCacheMisses    *Counter
	BindingCacheEntries   *Gauge
	SingleflightShared    *Counter
	PipelineRuns          *Counter
	SecurityCheckFailures *CounterVec // {phase}
	Failovers             *Counter
	FetchLatency          *Histogram // seconds
	SecurityOverhead      *Histogram // percent

	// Delta replication instruments (server.Puller).
	PullerPulls          *CounterVec // {mode}
	PullerBytes          *CounterVec // {mode}
	PullerElements       *CounterVec // {mode}
	PullerDeltaDeclines  *Counter
	PullerDeltaFallbacks *Counter

	// Verified-content cache instruments (core.Client + vcache.Cache).
	VCacheHits          *Counter
	VCacheMisses        *Counter
	VCacheRevalidations *Counter
	VCacheEvictions     *Counter
	SigCacheHits        *Counter

	// Location-cache instruments (location.CachingResolver).
	LocationCacheHits   *Counter
	LocationCacheMisses *Counter

	// Proxy instruments (proxy.Proxy).
	ProxyRequests *CounterVec // {kind,outcome}
}

// New returns a Telemetry over the given clock (nil = real clock), with
// the span ring attached and every standard instrument registered.
func New(clk clock.Clock) *Telemetry {
	reg := NewRegistry()
	ring := NewRingExporter(RingSize)
	tracer := NewTracer(clk)
	tracer.AddExporter(ring)
	return &Telemetry{
		Tracer:    tracer,
		Registry:  reg,
		Ring:      ring,
		Health:    NewHealthTracker(clk),
		Selection: NewSelectionTracker(),

		RPCCalls:   reg.CounterVec(MetricRPCCalls, "op", "outcome"),
		RPCRetries: reg.Counter(MetricRPCRetries),
		RPCServed:  reg.CounterVec(MetricRPCServed, "op", "outcome"),

		PoolDials:      reg.Counter(MetricPoolDials),
		PoolReuse:      reg.Counter(MetricPoolReuse),
		PoolIdleClosed: reg.Counter(MetricPoolIdleClosed),
		PoolConns:      reg.Gauge(MetricPoolConns),

		StreamsOpened: reg.Counter(MetricStreamsOpened),
		StreamsActive: reg.Gauge(MetricStreamsActive),
		Negotiations:  reg.CounterVec(MetricNegotiations, "version"),

		BatchFetches:  reg.Counter(MetricBatchFetches),
		BatchElements: reg.Counter(MetricBatchElements),

		BindingCacheHits:      reg.Counter(MetricBindingHits),
		BindingCacheMisses:    reg.Counter(MetricBindingMisses),
		BindingCacheEntries:   reg.Gauge(MetricBindingEntries),
		SingleflightShared:    reg.Counter(MetricSingleflightShared),
		PipelineRuns:          reg.Counter(MetricPipelineRuns),
		SecurityCheckFailures: reg.CounterVec(MetricSecurityFailed, "phase"),
		Failovers:             reg.Counter(MetricFailovers),
		FetchLatency:          reg.Histogram(MetricFetchLatency, DefaultLatencyBuckets),
		SecurityOverhead:      reg.Histogram(MetricSecurityOverhead, PercentBuckets),

		PullerPulls:          reg.CounterVec(MetricPullerPulls, "mode"),
		PullerBytes:          reg.CounterVec(MetricPullerBytes, "mode"),
		PullerElements:       reg.CounterVec(MetricPullerElements, "mode"),
		PullerDeltaDeclines:  reg.Counter(MetricPullerDeltaDeclines),
		PullerDeltaFallbacks: reg.Counter(MetricPullerDeltaFallbacks),

		VCacheHits:          reg.Counter(MetricVCacheHits),
		VCacheMisses:        reg.Counter(MetricVCacheMisses),
		VCacheRevalidations: reg.Counter(MetricVCacheRevalidations),
		VCacheEvictions:     reg.Counter(MetricVCacheEvictions),
		SigCacheHits:        reg.Counter(MetricSigCacheHits),

		LocationCacheHits:   reg.Counter(MetricLocationHits),
		LocationCacheMisses: reg.Counter(MetricLocationMisses),

		ProxyRequests: reg.CounterVec(MetricProxyRequests, "kind", "outcome"),
	}
}

var (
	defaultOnce sync.Once
	defaultTel  *Telemetry
)

// Default returns the shared process-wide Telemetry, created on first
// use. Components whose Telemetry field is nil record here, so nothing
// is ever silently dropped; binaries that care wire an explicit instance
// instead.
func Default() *Telemetry {
	defaultOnce.Do(func() { defaultTel = New(nil) })
	return defaultTel
}

// Or returns t when non-nil and the shared Default() otherwise — the
// one-line fallback every instrumented component uses.
func Or(t *Telemetry) *Telemetry {
	if t != nil {
		return t
	}
	return Default()
}
