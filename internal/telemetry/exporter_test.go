package telemetry_test

// Edge cases of the export path: ring wraparound losing the middle of a
// trace, many goroutines interleaving on one JSON-lines stream, and the
// health EWMAs' decay arithmetic on an injectable clock.

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"globedoc/internal/clock"
	"globedoc/internal/telemetry"
)

func TestRingWraparoundStitchesPartialTrace(t *testing.T) {
	// A ring smaller than the trace: the root and the first children are
	// overwritten, so stitching must surface the survivors as orphaned
	// roots instead of dropping them with their lost parents.
	tracer := telemetry.NewTracer(clock.NewFake(time.Unix(1000, 0)))
	ring := telemetry.NewRingExporter(4)
	tracer.AddExporter(ring)

	root := tracer.StartSpan("fetch.all")
	var children []*telemetry.Span
	for i := 0; i < 8; i++ {
		children = append(children, root.StartChild(fmt.Sprintf("element.%d", i)))
	}
	for _, c := range children {
		c.End()
	}
	root.End() // exports last, evicting all but the newest children... and itself

	spans := ring.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring retained %d spans, want 4", len(spans))
	}
	if total := ring.Total(); total != 9 {
		t.Fatalf("ring total = %d, want 9 exports", total)
	}
	roots := telemetry.BuildTrace(spans, root.TraceID())
	// The root span IS retained (it exported last); the three surviving
	// children attach to it, and nothing is orphaned.
	reachable := 0
	var walk func(n *telemetry.TraceNode)
	walk = func(n *telemetry.TraceNode) {
		reachable++
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	if reachable != 4 {
		t.Errorf("stitched %d spans, want all 4 retained ones", reachable)
	}

	// Now lose the root too: reset and export only children.
	ring.Reset()
	late := root.StartChild("late")
	late.End()
	orphans := telemetry.BuildTrace(ring.Spans(), root.TraceID())
	if len(orphans) != 1 || !orphans[0].Orphaned {
		t.Fatalf("child without retained parent = %+v, want one orphaned root", orphans)
	}
}

func TestJSONLExporterConcurrentWrites(t *testing.T) {
	// Many goroutines finish spans into one JSON-lines stream; under
	// -race this pins the exporter's locking, and the parse-back proves
	// no line interleaves with another.
	var buf bytes.Buffer
	tracer := telemetry.NewTracer(nil)
	tracer.AddExporter(telemetry.NewJSONLExporter(&buf))

	const goroutines, per = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				sp := tracer.StartSpan(fmt.Sprintf("worker.%d", g))
				sp.Annotate("iteration", fmt.Sprint(i))
				sp.End()
			}
		}(g)
	}
	wg.Wait()

	records, err := telemetry.ReadSpans(&buf)
	if err != nil {
		t.Fatalf("concurrent JSONL output failed to parse: %v", err)
	}
	if len(records) != goroutines*per {
		t.Fatalf("parsed %d spans, want %d", len(records), goroutines*per)
	}
	perName := make(map[string]int)
	for _, r := range records {
		if r.SpanID == 0 {
			t.Fatal("span with zero ID in stream")
		}
		perName[r.Name]++
	}
	for g := 0; g < goroutines; g++ {
		if n := perName[fmt.Sprintf("worker.%d", g)]; n != per {
			t.Errorf("worker.%d exported %d spans, want %d", g, n, per)
		}
	}
}

func TestHealthEWMADecayOnFakeClock(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	h := telemetry.NewHealthTracker(fake)

	// Build up a hard failure streak.
	for i := 0; i < 5; i++ {
		h.RecordFailure("paris:objsvc")
	}
	st, ok := h.Lookup("paris:objsvc")
	if !ok {
		t.Fatal("no state after failures")
	}
	if st.ConsecutiveFailures != 5 {
		t.Fatalf("consecutive failures = %d, want 5", st.ConsecutiveFailures)
	}
	high := st.ErrorRate
	if high <= 0.5 {
		t.Fatalf("error EWMA after 5 straight failures = %v, want > 0.5", high)
	}

	// One half-life of quiet halves the error rate — by clock, not by
	// traffic.
	fake.Advance(telemetry.HealthHalfLife)
	st, _ = h.Lookup("paris:objsvc")
	if got, want := st.ErrorRate, high/2; math.Abs(got-want) > 1e-9 {
		t.Errorf("after one half-life: error EWMA = %v, want %v", got, want)
	}
	// Decay is idempotent over repeated lookups at the same instant.
	again, _ := h.Lookup("paris:objsvc")
	if again.ErrorRate != st.ErrorRate {
		t.Errorf("lookup at same instant changed the EWMA: %v -> %v", st.ErrorRate, again.ErrorRate)
	}
	// Ten half-lives later the address has effectively healed, but the
	// consecutive-failure count holds until a success proves recovery.
	fake.Advance(10 * telemetry.HealthHalfLife)
	st, _ = h.Lookup("paris:objsvc")
	if st.ErrorRate > 0.001 {
		t.Errorf("after ten half-lives: error EWMA = %v, want ~0", st.ErrorRate)
	}
	if st.ConsecutiveFailures != 5 {
		t.Errorf("quiet time cleared consecutive failures (%d), only a success may", st.ConsecutiveFailures)
	}
	if h.Penalty("paris:objsvc") < 5 {
		t.Errorf("penalty %v dropped below the consecutive-failure floor", h.Penalty("paris:objsvc"))
	}

	// A success resets the streak and seeds the RTT EWMA exactly.
	h.RecordSuccess("paris:objsvc", 40*time.Millisecond)
	st, _ = h.Lookup("paris:objsvc")
	if st.ConsecutiveFailures != 0 {
		t.Errorf("success left consecutive failures at %d", st.ConsecutiveFailures)
	}
	if st.RTTMillis != 40 {
		t.Errorf("first RTT sample = %vms, want exactly 40", st.RTTMillis)
	}
	// A second success blends at the sample weight: 0.8*40 + 0.2*80.
	h.RecordSuccess("paris:objsvc", 80*time.Millisecond)
	st, _ = h.Lookup("paris:objsvc")
	if got, want := st.RTTMillis, 0.8*40+0.2*80; math.Abs(got-want) > 1e-9 {
		t.Errorf("blended RTT EWMA = %v, want %v", got, want)
	}

	// Unknown addresses and the nil tracker stay inert.
	if _, ok := h.Lookup("never-seen:objsvc"); ok {
		t.Error("lookup invented state for an unseen address")
	}
	if p := h.Penalty("never-seen:objsvc"); p != 0 {
		t.Errorf("penalty for unseen address = %v, want 0", p)
	}
	var nilTracker *telemetry.HealthTracker
	nilTracker.RecordFailure("x")
	nilTracker.RecordSuccess("x", time.Second)
	if p := nilTracker.Penalty("x"); p != 0 {
		t.Errorf("nil tracker penalty = %v", p)
	}

	// The snapshot is sorted and versioned.
	h.RecordSuccess("amsterdam-primary:objsvc", 5*time.Millisecond)
	snap := h.Snapshot()
	if snap.Schema != telemetry.HealthSchema {
		t.Errorf("schema = %q", snap.Schema)
	}
	if len(snap.Addrs) != 2 || snap.Addrs[0].Addr > snap.Addrs[1].Addr {
		t.Errorf("snapshot addrs not sorted: %+v", snap.Addrs)
	}
}

func TestHealthErrorRateSaturates(t *testing.T) {
	// However long the failure streak, the EWMA stays a rate in [0, 1].
	h := telemetry.NewHealthTracker(clock.NewFake(time.Unix(0, 0)))
	for i := 0; i < 1000; i++ {
		h.RecordFailure("ithaca:objsvc")
	}
	st, _ := h.Lookup("ithaca:objsvc")
	if st.ErrorRate <= 0.99 || st.ErrorRate > 1 {
		t.Errorf("saturated error EWMA = %v, want (0.99, 1]", st.ErrorRate)
	}
	if !strings.Contains(fmt.Sprint(st.Samples), "1000") {
		t.Errorf("samples = %d, want 1000", st.Samples)
	}
}
