// Package telemetry is the observability substrate of the GlobeDoc
// reproduction: a dependency-free tracing core (spans over the injectable
// clock), a metrics registry (atomic counters, gauges and fixed-bucket
// histograms), and the /debugz operational surface that snapshots both.
//
// The paper's entire evaluation (§4, Figures 4–7) is an observability
// claim — "security overhead is X% of fetch time" — so the tracer is
// wired through the full 14-step secure-binding pipeline (internal/core)
// and core.Timing is *derived from* span durations: the benchmark
// harness and the tracer measure the same interval by construction and
// can never disagree.
//
// Everything here is safe for concurrent use and nil-tolerant: a nil
// *Span or nil instrument is a no-op, so instrumented code never has to
// guard its telemetry calls.
package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"globedoc/internal/clock"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRecord is a finished span as handed to exporters: plain data, safe
// to retain, marshal or compare after the span itself is gone.
type SpanRecord struct {
	TraceID  uint64    `json:"trace_id"`
	SpanID   uint64    `json:"span_id"`
	ParentID uint64    `json:"parent_id,omitempty"`
	Name     string    `json:"name"`
	Start    time.Time `json:"start"`
	End      time.Time `json:"end"`
	Attrs    []Attr    `json:"attrs,omitempty"`
}

// Duration returns the span's measured interval.
func (r SpanRecord) Duration() time.Duration { return r.End.Sub(r.Start) }

// Exporter receives finished spans. Implementations must be safe for
// concurrent use.
type Exporter interface {
	ExportSpan(SpanRecord)
}

// Tracer creates spans. The zero value is usable: spans are timed with
// the real clock and exported nowhere (timing-only mode, which is how an
// unconfigured core.Client still fills core.Timing from spans).
type Tracer struct {
	// Clock is the time source for span timestamps (nil = the real
	// clock). Real-clock timestamps carry Go's monotonic reading, so
	// durations are immune to wall-clock steps.
	Clock clock.Clock

	mu        sync.RWMutex
	exporters []Exporter

	ids atomic.Uint64 // shared ID sequence for traces and spans
}

// NewTracer returns a tracer over the given clock (nil = real clock).
func NewTracer(clk clock.Clock) *Tracer {
	return &Tracer{Clock: clk}
}

// AddExporter registers e to receive every finished span.
func (t *Tracer) AddExporter(e Exporter) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.exporters = append(t.exporters, e)
}

func (t *Tracer) now() time.Time {
	if t.Clock != nil {
		return t.Clock.Now()
	}
	return clock.Real.Now()
}

// StartSpan begins a new root span (a new trace). Safe on a nil tracer,
// which returns a nil (no-op) span.
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	id := t.ids.Add(1)
	return &Span{
		tracer:  t,
		name:    name,
		traceID: id,
		spanID:  id,
		start:   t.now(),
	}
}

// Span is one timed operation. All methods are safe on a nil span.
type Span struct {
	tracer   *Tracer
	name     string
	traceID  uint64
	spanID   uint64
	parentID uint64
	start    time.Time

	mu    sync.Mutex
	attrs []Attr
	end   time.Time
	ended bool
}

// StartChild begins a child span within the same trace.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		tracer:   s.tracer,
		name:     name,
		traceID:  s.traceID,
		spanID:   s.tracer.ids.Add(1),
		parentID: s.spanID,
		start:    s.tracer.now(),
	}
}

// Annotate attaches a key/value attribute to the span.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// End finishes the span and exports it. Ending twice is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.end = s.tracer.now()
	rec := s.recordLocked()
	s.mu.Unlock()

	s.tracer.mu.RLock()
	exporters := s.tracer.exporters
	s.tracer.mu.RUnlock()
	for _, e := range exporters {
		e.ExportSpan(rec)
	}
}

// Duration returns the span's elapsed time: end-start once ended, the
// running interval otherwise. A nil span reports zero.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.end.Sub(s.start)
	}
	return s.tracer.now().Sub(s.start)
}

// TraceID returns the span's trace identifier (0 for a nil span).
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.traceID
}

func (s *Span) recordLocked() SpanRecord {
	return SpanRecord{
		TraceID:  s.traceID,
		SpanID:   s.spanID,
		ParentID: s.parentID,
		Name:     s.name,
		Start:    s.start,
		End:      s.end,
		Attrs:    append([]Attr(nil), s.attrs...),
	}
}

// RingExporter keeps the most recent spans in a fixed-size ring buffer —
// the in-memory exporter backing tests and the /debugz "recent spans"
// view.
type RingExporter struct {
	mu    sync.Mutex
	buf   []SpanRecord
	next  int
	total uint64
}

// NewRingExporter returns a ring keeping the last n spans (n >= 1).
func NewRingExporter(n int) *RingExporter {
	if n < 1 {
		n = 1
	}
	return &RingExporter{buf: make([]SpanRecord, 0, n)}
}

// ExportSpan implements Exporter.
func (r *RingExporter) ExportSpan(rec SpanRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
		return
	}
	r.buf[r.next] = rec
	r.next = (r.next + 1) % cap(r.buf)
}

// Spans returns the retained spans, oldest first.
func (r *RingExporter) Spans() []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanRecord, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total reports how many spans have ever been exported to the ring.
func (r *RingExporter) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Reset discards every retained span.
func (r *RingExporter) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = r.buf[:0]
	r.next = 0
}

// JSONLExporter writes one JSON object per finished span — the
// machine-readable trace stream the binaries expose behind -trace-out.
type JSONLExporter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewJSONLExporter writes span records to w as JSON lines.
func NewJSONLExporter(w io.Writer) *JSONLExporter {
	return &JSONLExporter{w: w}
}

// ExportSpan implements Exporter. Encoding errors are dropped: telemetry
// must never fail the operation it observes.
func (j *JSONLExporter) ExportSpan(rec SpanRecord) {
	data, err := json.Marshal(rec)
	if err != nil {
		return
	}
	data = append(data, '\n')
	j.mu.Lock()
	_, _ = j.w.Write(data) // see above: export errors must not fail the op
	j.mu.Unlock()
}
