// Package telemetry is the observability substrate of the GlobeDoc
// reproduction: a dependency-free tracing core (spans over the injectable
// clock), a metrics registry (atomic counters, gauges and fixed-bucket
// histograms), and the /debugz operational surface that snapshots both.
//
// The paper's entire evaluation (§4, Figures 4–7) is an observability
// claim — "security overhead is X% of fetch time" — so the tracer is
// wired through the full 14-step secure-binding pipeline (internal/core)
// and core.Timing is *derived from* span durations: the benchmark
// harness and the tracer measure the same interval by construction and
// can never disagree.
//
// Everything here is safe for concurrent use and nil-tolerant: a nil
// *Span or nil instrument is a no-op, so instrumented code never has to
// guard its telemetry calls.
package telemetry

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"globedoc/internal/clock"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// SpanRecord is a finished span as handed to exporters: plain data, safe
// to retain, marshal or compare after the span itself is gone.
type SpanRecord struct {
	TraceID  uint64    `json:"trace_id"`
	SpanID   uint64    `json:"span_id"`
	ParentID uint64    `json:"parent_id,omitempty"`
	Name     string    `json:"name"`
	Start    time.Time `json:"start"`
	End      time.Time `json:"end"`
	Attrs    []Attr    `json:"attrs,omitempty"`
}

// Duration returns the span's measured interval.
func (r SpanRecord) Duration() time.Duration { return r.End.Sub(r.Start) }

// SpanContext is the propagatable identity of a span: everything a
// remote process needs to continue the trace. It crosses the wire in
// transport frames (v2) or the request envelope (v1), so a server-side
// span exports with the same trace ID as the client span that caused it.
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
	// Sampled carries the head-based sampling decision made at the trace
	// root; downstream processes honour it instead of re-deciding.
	Sampled bool
}

// Valid reports whether sc identifies a real span (the zero SpanContext
// means "no trace in progress").
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 && sc.SpanID != 0 }

// Exporter receives finished spans. Implementations must be safe for
// concurrent use.
type Exporter interface {
	ExportSpan(SpanRecord)
}

// Tracer creates spans. The zero value is usable: spans are timed with
// the real clock and exported nowhere (timing-only mode, which is how an
// unconfigured core.Client still fills core.Timing from spans).
type Tracer struct {
	// Clock is the time source for span timestamps (nil = the real
	// clock). Real-clock timestamps carry Go's monotonic reading, so
	// durations are immune to wall-clock steps.
	Clock clock.Clock

	mu        sync.RWMutex
	exporters []Exporter

	// ids is the shared ID sequence for traces and spans. It is seeded
	// once from crypto/rand so two processes stitching one distributed
	// trace cannot mint colliding span IDs (a counter starting at 1 in
	// every process would collide immediately).
	ids      atomic.Uint64
	seedOnce sync.Once

	// sampleBits holds math.Float64bits of the head-sampling rate and
	// sampleSet whether it was ever configured. Unconfigured means
	// sample-everything: an unadorned tracer keeps the PR-2 behaviour of
	// exporting every span.
	sampleSet  atomic.Bool
	sampleBits atomic.Uint64
}

// NewTracer returns a tracer over the given clock (nil = real clock).
func NewTracer(clk clock.Clock) *Tracer {
	return &Tracer{Clock: clk}
}

// AddExporter registers e to receive every finished span.
func (t *Tracer) AddExporter(e Exporter) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.exporters = append(t.exporters, e)
}

func (t *Tracer) now() time.Time {
	if t.Clock != nil {
		return t.Clock.Now()
	}
	return clock.Real.Now()
}

// SetSampleRate configures head-based sampling: rate is the fraction of
// new traces whose spans are exported (<= 0 none, >= 1 all). The
// decision is made once at the trace root — from a deterministic hash of
// the trace ID — and inherited by every child and every remote
// continuation, so a trace is always exported whole or not at all.
// Spans are still *timed* when unsampled (core.Timing is derived from
// span durations), and a span that records an "error" attribute is
// exported regardless of the decision. An unconfigured tracer samples
// everything.
func (t *Tracer) SetSampleRate(rate float64) {
	if t == nil {
		return
	}
	t.sampleBits.Store(math.Float64bits(rate))
	t.sampleSet.Store(true)
}

// sampleRoot decides sampling for a new trace identified by id.
func (t *Tracer) sampleRoot(id uint64) bool {
	if !t.sampleSet.Load() {
		return true
	}
	rate := math.Float64frombits(t.sampleBits.Load())
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	// splitmix64 finalizer: a well-mixed hash of the trace ID compared
	// against the rate as a fraction of the uint64 space. Deterministic,
	// so re-deciding for the same trace always agrees.
	h := id
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h < uint64(rate*float64(math.MaxUint64))
}

// nextID returns a fresh span ID, seeding the sequence on first use.
func (t *Tracer) nextID() uint64 {
	t.seedOnce.Do(func() {
		var b [8]byte
		if _, err := rand.Read(b[:]); err == nil {
			t.ids.CompareAndSwap(0, binary.BigEndian.Uint64(b[:]))
		}
	})
	id := t.ids.Add(1)
	if id == 0 { // zero is the nil-span sentinel; skip it on wraparound
		id = t.ids.Add(1)
	}
	return id
}

// StartSpan begins a new root span (a new trace). Safe on a nil tracer,
// which returns a nil (no-op) span.
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	id := t.nextID()
	return &Span{
		tracer:  t,
		name:    name,
		traceID: id,
		spanID:  id,
		sampled: t.sampleRoot(id),
		start:   t.now(),
	}
}

// StartSpanFrom continues the trace identified by sc: the new span joins
// sc's trace as a child of sc's span and inherits its sampling decision.
// This is both how a client call span nests under the pipeline root
// (sc from the local context) and how a server adopts the trace context
// a frame carried across the wire. An invalid sc degrades to StartSpan.
func (t *Tracer) StartSpanFrom(name string, sc SpanContext) *Span {
	if t == nil {
		return nil
	}
	if !sc.Valid() {
		return t.StartSpan(name)
	}
	return &Span{
		tracer:   t,
		name:     name,
		traceID:  sc.TraceID,
		spanID:   t.nextID(),
		parentID: sc.SpanID,
		sampled:  sc.Sampled,
		start:    t.now(),
	}
}

// Span is one timed operation. All methods are safe on a nil span.
type Span struct {
	tracer   *Tracer
	name     string
	traceID  uint64
	spanID   uint64
	parentID uint64
	sampled  bool // immutable after creation
	start    time.Time

	mu    sync.Mutex
	attrs []Attr
	end   time.Time
	ended bool
}

// StartChild begins a child span within the same trace, inheriting the
// parent's sampling decision.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		tracer:   s.tracer,
		name:     name,
		traceID:  s.traceID,
		spanID:   s.tracer.nextID(),
		parentID: s.spanID,
		sampled:  s.sampled,
		start:    s.tracer.now(),
	}
}

// Context returns the span's propagatable identity, for carrying across
// goroutines (via ContextWith) or across the wire (via the transport).
// A nil span returns the zero (invalid) SpanContext.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.traceID, SpanID: s.spanID, Sampled: s.sampled}
}

// Annotate attaches a key/value attribute to the span.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// End finishes the span and exports it, unless head sampling decided
// against this trace — an "error" attribute overrides the decision, so
// failing operations are always visible. Ending twice is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.end = s.tracer.now()
	export := s.sampled || s.hasErrorLocked()
	var rec SpanRecord
	if export {
		rec = s.recordLocked()
	}
	s.mu.Unlock()
	if !export {
		return
	}

	s.tracer.mu.RLock()
	exporters := s.tracer.exporters
	s.tracer.mu.RUnlock()
	for _, e := range exporters {
		e.ExportSpan(rec)
	}
}

// hasErrorLocked reports whether the span recorded an "error" attribute.
func (s *Span) hasErrorLocked() bool {
	for _, a := range s.attrs {
		if a.Key == "error" {
			return true
		}
	}
	return false
}

// Duration returns the span's elapsed time: end-start once ended, the
// running interval otherwise. A nil span reports zero.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return s.end.Sub(s.start)
	}
	return s.tracer.now().Sub(s.start)
}

// TraceID returns the span's trace identifier (0 for a nil span).
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.traceID
}

func (s *Span) recordLocked() SpanRecord {
	return SpanRecord{
		TraceID:  s.traceID,
		SpanID:   s.spanID,
		ParentID: s.parentID,
		Name:     s.name,
		Start:    s.start,
		End:      s.end,
		Attrs:    append([]Attr(nil), s.attrs...),
	}
}

// RingExporter keeps the most recent spans in a fixed-size ring buffer —
// the in-memory exporter backing tests and the /debugz "recent spans"
// view.
type RingExporter struct {
	mu    sync.Mutex
	buf   []SpanRecord
	next  int
	total uint64
}

// NewRingExporter returns a ring keeping the last n spans (n >= 1).
func NewRingExporter(n int) *RingExporter {
	if n < 1 {
		n = 1
	}
	return &RingExporter{buf: make([]SpanRecord, 0, n)}
}

// ExportSpan implements Exporter.
func (r *RingExporter) ExportSpan(rec SpanRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
		return
	}
	r.buf[r.next] = rec
	r.next = (r.next + 1) % cap(r.buf)
}

// Spans returns the retained spans, oldest first.
func (r *RingExporter) Spans() []SpanRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanRecord, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Total reports how many spans have ever been exported to the ring.
func (r *RingExporter) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Reset discards every retained span.
func (r *RingExporter) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf = r.buf[:0]
	r.next = 0
}

// JSONLExporter writes one JSON object per finished span — the
// machine-readable trace stream the binaries expose behind -trace-out.
type JSONLExporter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewJSONLExporter writes span records to w as JSON lines.
func NewJSONLExporter(w io.Writer) *JSONLExporter {
	return &JSONLExporter{w: w}
}

// ExportSpan implements Exporter. Encoding errors are dropped: telemetry
// must never fail the operation it observes.
func (j *JSONLExporter) ExportSpan(rec SpanRecord) {
	data, err := json.Marshal(rec)
	if err != nil {
		return
	}
	data = append(data, '\n')
	j.mu.Lock()
	_, _ = j.w.Write(data) // see above: export errors must not fail the op
	j.mu.Unlock()
}
