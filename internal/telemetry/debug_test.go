package telemetry_test

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"globedoc/internal/telemetry"
)

func TestDebugHandlerServesSnapshot(t *testing.T) {
	tel := telemetry.New(nil)
	tel.RPCCalls.With("obj.getelement", "ok").Inc()
	tel.FetchLatency.Observe(0.25)
	sp := tel.Tracer.StartSpan("fetch.secure")
	sp.StartChild("key.fetch").End()
	sp.End()

	srv := httptest.NewServer(tel.DebugHandler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debugz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debugz status = %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var snap telemetry.DebugSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding snapshot: %v", err)
	}
	if snap.Schema != telemetry.DebugSchema {
		t.Errorf("schema = %q, want %q", snap.Schema, telemetry.DebugSchema)
	}
	if snap.TakenAt.IsZero() {
		t.Error("taken_at is zero")
	}
	if got := snap.Metrics.LabeledCounters[telemetry.MetricRPCCalls][`{op="obj.getelement",outcome="ok"}`]; got != 1 {
		t.Errorf("rpc_calls_total = %d, want 1 (%v)", got, snap.Metrics.LabeledCounters)
	}
	if got := snap.Metrics.Histograms[telemetry.MetricFetchLatency].Count; got != 1 {
		t.Errorf("fetch_latency count = %d, want 1", got)
	}
	if len(snap.Spans) != 2 {
		t.Errorf("snapshot has %d spans, want 2", len(snap.Spans))
	}

	// The sub-endpoints serve their slices of the same state.
	for _, path := range []string{"/debugz/metrics", "/debugz/spans", "/debug/pprof/"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %s", path, resp.Status)
		}
	}
}

func TestServeDebugEmptyAddrIsNoOp(t *testing.T) {
	tel := telemetry.New(nil)
	addr, stop, err := tel.ServeDebug("")
	if err != nil || addr != "" {
		t.Fatalf("ServeDebug(\"\") = %q, %v", addr, err)
	}
	stop() // must be callable
}

func TestServeDebugBindsAndStops(t *testing.T) {
	tel := telemetry.New(nil)
	addr, stop, err := tel.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/debugz")
	if err != nil {
		t.Fatalf("fetching /debugz from %s: %v", addr, err)
	}
	resp.Body.Close()
	stop()
	if _, err := http.Get("http://" + addr + "/debugz"); err == nil {
		t.Error("endpoint still serving after stop")
	}
}

func TestOrFallsBackToDefault(t *testing.T) {
	if telemetry.Or(nil) != telemetry.Default() {
		t.Error("Or(nil) != Default()")
	}
	own := telemetry.New(nil)
	if telemetry.Or(own) != own {
		t.Error("Or(t) != t")
	}
}
