package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Trace stitching: rebuilding a span tree from exported records. The
// records may come from several processes (one distributed trace) and
// may be incomplete — the ring exporter overwrites old spans, so a
// long trace can lose its middle. The stitcher therefore never assumes
// a parent is present: a span whose parent record is missing becomes an
// extra root, marked as orphaned, instead of disappearing.

// TraceNode is one span in a stitched trace tree.
type TraceNode struct {
	Record   SpanRecord
	Children []*TraceNode
	// Orphaned marks a non-root span whose parent record was not among
	// the input (lost to ring wraparound or an unsampled process).
	Orphaned bool
}

// BuildTrace stitches the spans of one trace into a tree. Records whose
// TraceID differs from traceID are ignored; duplicates (the same span
// exported by two exporters) keep the first occurrence. Roots — true
// roots plus orphans — and children are both ordered by start time.
func BuildTrace(spans []SpanRecord, traceID uint64) []*TraceNode {
	nodes := make(map[uint64]*TraceNode)
	var order []*TraceNode
	for _, r := range spans {
		if r.TraceID != traceID || r.SpanID == 0 {
			continue
		}
		if _, dup := nodes[r.SpanID]; dup {
			continue
		}
		n := &TraceNode{Record: r}
		nodes[r.SpanID] = n
		order = append(order, n)
	}
	var roots []*TraceNode
	for _, n := range order {
		pid := n.Record.ParentID
		if pid == 0 {
			roots = append(roots, n)
			continue
		}
		parent, ok := nodes[pid]
		if !ok || parent == n {
			n.Orphaned = true
			roots = append(roots, n)
			continue
		}
		parent.Children = append(parent.Children, n)
	}
	sortNodes(roots)
	for _, n := range order {
		sortNodes(n.Children)
	}
	return roots
}

func sortNodes(ns []*TraceNode) {
	sort.SliceStable(ns, func(i, j int) bool {
		return ns[i].Record.Start.Before(ns[j].Record.Start)
	})
}

// TraceIDs returns the distinct trace IDs present in spans with the
// number of spans recorded for each, ordered by first appearance.
func TraceIDs(spans []SpanRecord) []TraceCount {
	counts := make(map[uint64]int)
	var order []uint64
	for _, r := range spans {
		if r.TraceID == 0 {
			continue
		}
		if counts[r.TraceID] == 0 {
			order = append(order, r.TraceID)
		}
		counts[r.TraceID]++
	}
	out := make([]TraceCount, 0, len(order))
	for _, id := range order {
		out = append(out, TraceCount{TraceID: id, Spans: counts[id]})
	}
	return out
}

// TraceCount is one trace ID with its span count.
type TraceCount struct {
	TraceID uint64 `json:"trace_id"`
	Spans   int    `json:"spans"`
}

// FormatTrace renders a stitched trace as an indented tree, one span per
// line with its duration. Spans adopted from a remote process (the
// transport annotates them remote=true) are marked with a process-
// boundary arrow, and orphaned subtrees say why they are not attached.
func FormatTrace(roots []*TraceNode) string {
	var b strings.Builder
	for _, r := range roots {
		formatNode(&b, r, 0)
	}
	return b.String()
}

func formatNode(b *strings.Builder, n *TraceNode, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	if attrValue(n.Record.Attrs, "remote") == "true" {
		b.WriteString("⇄ ") // process boundary: span adopted from the wire
	}
	fmt.Fprintf(b, "%s  %s", n.Record.Name, formatDuration(n.Record.Duration()))
	if op := attrValue(n.Record.Attrs, "op"); op != "" {
		fmt.Fprintf(b, "  op=%s", op)
	}
	if out := attrValue(n.Record.Attrs, "outcome"); out != "" && out != "ok" {
		fmt.Fprintf(b, "  outcome=%s", out)
	}
	if n.Orphaned {
		fmt.Fprintf(b, "  (orphaned: parent span %d not retained)", n.Record.ParentID)
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		formatNode(b, c, depth+1)
	}
}

func attrValue(attrs []Attr, key string) string {
	for _, a := range attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// formatDuration renders d with sub-millisecond precision but without
// the ns-level noise time.Duration.String produces for long intervals.
func formatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
	return d.String()
}

// ReadSpans parses a JSON-lines span stream — the JSONLExporter's output
// — back into records. Blank lines are skipped; a malformed line is an
// error (a half-written trailing line means the producer is still
// running; callers decide whether that matters).
func ReadSpans(r io.Reader) ([]SpanRecord, error) {
	var out []SpanRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec SpanRecord
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("telemetry: span line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: reading span stream: %w", err)
	}
	return out, nil
}
