package telemetry

import "context"

// Span-context carriage through context.Context: the pipeline's root
// span publishes its identity into the ctx it threads through the fetch,
// and every RPC call site picks it up so the resulting rpc.call span —
// and, across the wire, the server's rpc.serve span — joins the same
// trace instead of starting its own.

type spanContextKey struct{}

// ContextWith returns ctx carrying sc. An invalid sc returns ctx
// unchanged.
func ContextWith(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, spanContextKey{}, sc)
}

// SpanContextFrom extracts the span context carried by ctx, if any.
// A nil ctx yields the zero (invalid) SpanContext.
func SpanContextFrom(ctx context.Context) SpanContext {
	if ctx == nil {
		return SpanContext{}
	}
	sc, _ := ctx.Value(spanContextKey{}).(SpanContext)
	return sc
}
