package telemetry

import (
	"sort"
	"sync"
)

// Per-OID replica-selection rankings: the observable output of the
// control plane ROADMAP item 1 builds on top of the HealthTracker data
// plane. Every time core's Selector ranks the candidate addresses for an
// OID the result is recorded here, so /debugz (and cmd/globedoc-debugz)
// can show WHICH replica a client would try first and in what order —
// the health EWMAs alone only say how each address has behaved.

// SelectionSchema versions the selection snapshot format.
const SelectionSchema = "globedoc-selection/1"

// DefaultMaxSelections bounds how many OIDs a SelectionTracker retains;
// beyond it the least recently ranked OID is dropped.
const DefaultMaxSelections = 256

// SelectionRanking is the most recent ranking produced for one OID.
type SelectionRanking struct {
	// OID is the short form of the object identifier.
	OID string `json:"oid"`
	// Selector names the Selector implementation that produced the order.
	Selector string `json:"selector"`
	// Ranked lists the candidate contact addresses, best first.
	Ranked []string `json:"ranked"`
}

// SelectionSnapshot is the versioned /debugz selection section.
type SelectionSnapshot struct {
	Schema   string             `json:"schema"`
	Rankings []SelectionRanking `json:"rankings"`
}

// SelectionTracker retains the most recent ranking per OID, bounded to
// MaxOIDs entries. All methods are safe for concurrent use and safe on a
// nil tracker (no-ops).
type SelectionTracker struct {
	// MaxOIDs bounds retained OIDs (0 = DefaultMaxSelections). Set before
	// the first Record.
	MaxOIDs int

	mu      sync.Mutex
	byOID   map[string]*SelectionRanking
	recency []string // oldest first
}

// NewSelectionTracker returns an empty tracker.
func NewSelectionTracker() *SelectionTracker {
	return &SelectionTracker{byOID: make(map[string]*SelectionRanking)}
}

func (s *SelectionTracker) maxOIDs() int {
	if s.MaxOIDs > 0 {
		return s.MaxOIDs
	}
	return DefaultMaxSelections
}

// Record stores the ranking for oid, replacing any previous one. The
// ranked slice is copied.
func (s *SelectionTracker) Record(oid, selector string, ranked []string) {
	if s == nil || oid == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.byOID[oid]; ok {
		r.Selector = selector
		r.Ranked = append(r.Ranked[:0], ranked...)
		for i, o := range s.recency {
			if o == oid {
				s.recency = append(s.recency[:i], s.recency[i+1:]...)
				break
			}
		}
		s.recency = append(s.recency, oid)
		return
	}
	s.byOID[oid] = &SelectionRanking{
		OID:      oid,
		Selector: selector,
		Ranked:   append([]string(nil), ranked...),
	}
	s.recency = append(s.recency, oid)
	for len(s.byOID) > s.maxOIDs() {
		oldest := s.recency[0]
		s.recency = s.recency[1:]
		delete(s.byOID, oldest)
	}
}

// Snapshot exports every retained ranking, sorted by OID for stable
// output.
func (s *SelectionTracker) Snapshot() SelectionSnapshot {
	snap := SelectionSnapshot{Schema: SelectionSchema}
	if s == nil {
		return snap
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.byOID {
		snap.Rankings = append(snap.Rankings, SelectionRanking{
			OID:      r.OID,
			Selector: r.Selector,
			Ranked:   append([]string(nil), r.Ranked...),
		})
	}
	sort.Slice(snap.Rankings, func(i, j int) bool { return snap.Rankings[i].OID < snap.Rankings[j].OID })
	return snap
}

// MergeSelections folds selection snapshots from several processes into
// one view, keeping the first non-empty ranking seen per OID (snapshots
// are passed in priority order; distinct clients may legitimately rank
// the same OID differently from different vantage points).
func MergeSelections(snaps ...SelectionSnapshot) SelectionSnapshot {
	merged := SelectionSnapshot{Schema: SelectionSchema}
	seen := make(map[string]bool)
	for _, snap := range snaps {
		for _, r := range snap.Rankings {
			if seen[r.OID] {
				continue
			}
			seen[r.OID] = true
			merged.Rankings = append(merged.Rankings, r)
		}
	}
	sort.Slice(merged.Rankings, func(i, j int) bool { return merged.Rankings[i].OID < merged.Rankings[j].OID })
	return merged
}
