package telemetry

import (
	"math"
	"sort"
	"sync"
	"time"

	"globedoc/internal/clock"
)

// Per-address replica health: the data plane for ROADMAP item 1's
// geo-aware replica selection. Every RPC attempt against a contact
// address — success or failure, including a failed dial — feeds one
// sample here; core's failover ordering consumes the result as a
// tie-break, and /debugz surfaces it as the versioned globedoc-health/1
// snapshot.
//
// Both EWMAs are time-decayed rather than per-sample: the weight of the
// old average halves every HealthHalfLife regardless of traffic rate, so
// an address that failed hard an hour ago but has been quiet since is
// not forever condemned, and a burst of samples cannot flush history
// faster than real time passes.

// HealthSchema versions the health snapshot format.
const HealthSchema = "globedoc-health/1"

// HealthHalfLife is the default decay half-life for the RTT and
// error-rate EWMAs.
const HealthHalfLife = 30 * time.Second

// AddrHealth is the exported health state of one contact address.
type AddrHealth struct {
	Addr string `json:"addr"`
	// RTTMillis is the time-decayed EWMA of successful-call round-trip
	// times, in milliseconds. Zero until the first success.
	RTTMillis float64 `json:"rtt_ewma_ms"`
	// HasRTT reports whether RTTMillis is backed by at least one
	// successful call. A zero RTTMillis is ambiguous without it: an
	// address that has only ever failed has samples but no RTT estimate.
	HasRTT bool `json:"has_rtt"`
	// ErrorRate is the time-decayed EWMA of per-attempt failure (each
	// sample is 1 for a failure, 0 for a success), in [0, 1].
	ErrorRate float64 `json:"error_ewma"`
	// ConsecutiveFailures counts failures since the last success.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// Samples counts every recorded attempt.
	Samples uint64 `json:"samples"`
}

// HealthSnapshot is the versioned /debugz health section.
type HealthSnapshot struct {
	Schema string       `json:"schema"`
	Addrs  []AddrHealth `json:"addrs"`
}

type addrState struct {
	rttMs   float64
	errRate float64
	consec  int
	samples uint64
	last    time.Time // when the EWMAs were last decayed
	hasRTT  bool
	hasErr  bool
}

// HealthTracker accumulates per-address health samples. All methods are
// safe for concurrent use and safe on a nil tracker (no-ops).
type HealthTracker struct {
	// HalfLife is the EWMA decay half-life (0 = HealthHalfLife). Set
	// before the first sample.
	HalfLife time.Duration

	clk   clock.Clock
	mu    sync.Mutex
	addrs map[string]*addrState
}

// NewHealthTracker returns a tracker over clk (nil = real clock).
func NewHealthTracker(clk clock.Clock) *HealthTracker {
	return &HealthTracker{clk: clk, addrs: make(map[string]*addrState)}
}

func (h *HealthTracker) now() time.Time {
	if h.clk != nil {
		return h.clk.Now()
	}
	return clock.Real.Now()
}

func (h *HealthTracker) halfLife() time.Duration {
	if h.HalfLife > 0 {
		return h.HalfLife
	}
	return HealthHalfLife
}

// state returns the (possibly new) state for addr with its EWMAs decayed
// to now. Caller holds h.mu.
func (h *HealthTracker) state(addr string, now time.Time) *addrState {
	st, ok := h.addrs[addr]
	if !ok {
		st = &addrState{last: now}
		h.addrs[addr] = st
		return st
	}
	if dt := now.Sub(st.last); dt > 0 {
		// Decay toward "no evidence": the error rate keeps weight
		// 0.5^(dt/halflife), so a quiet address heals with real time.
		// The RTT average holds its last estimate — stale latency data
		// is still the best guess, it just blends away at sample time.
		st.errRate *= math.Exp2(-float64(dt) / float64(h.halfLife()))
	}
	st.last = now
	return st
}

// sampleWeight is the weight a single new observation carries against
// the decayed history.
const sampleWeight = 0.2

// RecordSuccess records one successful call attempt against addr with
// the observed round-trip time.
func (h *HealthTracker) RecordSuccess(addr string, rtt time.Duration) {
	if h == nil || addr == "" {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.state(addr, h.now())
	ms := float64(rtt) / float64(time.Millisecond)
	if !st.hasRTT {
		st.rttMs, st.hasRTT = ms, true
	} else {
		st.rttMs = st.rttMs*(1-sampleWeight) + ms*sampleWeight
	}
	if !st.hasErr {
		st.hasErr = true // first sample: error rate starts at exactly 0
	} else {
		st.errRate *= 1 - sampleWeight
	}
	st.consec = 0
	st.samples++
}

// RecordFailure records one failed call attempt (including a failed
// dial) against addr.
func (h *HealthTracker) RecordFailure(addr string) {
	if h == nil || addr == "" {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.state(addr, h.now())
	if !st.hasErr {
		st.errRate, st.hasErr = 1, true
	} else {
		st.errRate = st.errRate*(1-sampleWeight) + sampleWeight
	}
	st.consec++
	st.samples++
}

// Lookup returns the current health of addr, decayed to now.
func (h *HealthTracker) Lookup(addr string) (AddrHealth, bool) {
	if h == nil {
		return AddrHealth{}, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.addrs[addr]; !ok {
		return AddrHealth{}, false
	}
	st := h.state(addr, h.now())
	return AddrHealth{
		Addr:                addr,
		RTTMillis:           st.rttMs,
		HasRTT:              st.hasRTT,
		ErrorRate:           st.errRate,
		ConsecutiveFailures: st.consec,
		Samples:             st.samples,
	}, true
}

// Penalty reduces addr's failure evidence to one ordinal: zero for an
// unknown or healthy address, dominated by consecutive failures, with
// the error-rate EWMA breaking ties among addresses that are equally
// failing right now. Lower is healthier. RTT deliberately does not
// contribute — core's HealthRankedSelector folds the same failure score
// together with the RTT EWMA and zone priors into its latency estimate;
// Penalty remains the RTT-free view for chaos assertions and tooling.
func (h *HealthTracker) Penalty(addr string) float64 {
	st, ok := h.Lookup(addr)
	if !ok {
		return 0
	}
	return float64(st.ConsecutiveFailures) + st.ErrorRate
}

// Snapshot exports every tracked address, decayed to now, sorted by
// address for stable output.
func (h *HealthTracker) Snapshot() HealthSnapshot {
	snap := HealthSnapshot{Schema: HealthSchema}
	if h == nil {
		return snap
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.now()
	for addr := range h.addrs {
		st := h.state(addr, now)
		snap.Addrs = append(snap.Addrs, AddrHealth{
			Addr:                addr,
			RTTMillis:           st.rttMs,
			HasRTT:              st.hasRTT,
			ErrorRate:           st.errRate,
			ConsecutiveFailures: st.consec,
			Samples:             st.samples,
		})
	}
	sort.Slice(snap.Addrs, func(i, j int) bool { return snap.Addrs[i].Addr < snap.Addrs[j].Addr })
	return snap
}

// MergeHealth folds several health snapshots — typically scraped from the
// /debugz endpoints of different processes — into one view. When the same
// contact address appears in more than one snapshot the entry backed by
// more samples wins: each process only knows about the replicas it talked
// to, so the richer history is the better estimate. Output is sorted by
// address like Snapshot.
func MergeHealth(snaps ...HealthSnapshot) HealthSnapshot {
	merged := HealthSnapshot{Schema: HealthSchema}
	best := make(map[string]AddrHealth)
	for _, snap := range snaps {
		for _, ah := range snap.Addrs {
			if prev, ok := best[ah.Addr]; !ok || ah.Samples > prev.Samples {
				best[ah.Addr] = ah
			}
		}
	}
	for _, ah := range best {
		merged.Addrs = append(merged.Addrs, ah)
	}
	sort.Slice(merged.Addrs, func(i, j int) bool { return merged.Addrs[i].Addr < merged.Addrs[j].Addr })
	return merged
}
