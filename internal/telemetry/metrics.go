package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter. All methods are safe on
// a nil counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge reading.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket latency/value histogram. An observation v
// lands in the first bucket whose upper bound satisfies v <= bound; the
// implicit final bucket catches everything above the last bound.
type Histogram struct {
	bounds    []float64
	counts    []atomic.Uint64 // len(bounds)+1; last is the overflow bucket
	exemplars []atomic.Uint64 // per-bucket trace ID of the last sampled observation
	sum       atomic.Uint64   // float64 bits, updated by CAS
	count     atomic.Uint64
}

// NewHistogram returns a histogram over the given ascending upper bounds.
func NewHistogram(bounds []float64) *Histogram {
	sorted := append([]float64(nil), bounds...)
	sort.Float64s(sorted)
	return &Histogram{
		bounds:    sorted,
		counts:    make([]atomic.Uint64, len(sorted)+1),
		exemplars: make([]atomic.Uint64, len(sorted)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[h.bucket(v)].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records one value and remembers traceID as the
// bucket's exemplar — the trace to look at to explain observations in
// that latency range. A zero traceID (unsampled or absent trace) leaves
// the previous exemplar in place.
func (h *Histogram) ObserveExemplar(v float64, traceID uint64) {
	if h == nil {
		return
	}
	if traceID != 0 {
		h.exemplars[h.bucket(v)].Store(traceID)
	}
	h.Observe(v)
}

// bucket returns the index of the bucket v lands in: the first bound
// satisfying v <= bound, or the overflow bucket.
func (h *Histogram) bucket(v float64) int {
	return sort.SearchFloat64s(h.bounds, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Mean returns the average observation (0 with no observations).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// HistogramSnapshot is the JSON-able state of a histogram. Buckets are
// non-cumulative; the final bucket (Bound = +Inf, encoded as null) holds
// observations above the last bound.
type HistogramSnapshot struct {
	Buckets []HistogramBucket `json:"buckets"`
	Sum     float64           `json:"sum"`
	Count   uint64            `json:"count"`
}

// HistogramBucket is one bucket of a snapshot. A nil Bound means +Inf.
type HistogramBucket struct {
	Bound *float64 `json:"le"` // upper bound; null = +Inf
	Count uint64   `json:"count"`
	// ExemplarTraceID is the trace ID of the last sampled observation
	// recorded into this bucket (0 = none): feed it to /debugz/trace to
	// see one concrete trace behind the bucket's latency range.
	ExemplarTraceID uint64 `json:"exemplar_trace_id,omitempty"`
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	snap := HistogramSnapshot{
		Buckets: make([]HistogramBucket, len(h.counts)),
		Sum:     h.Sum(),
		Count:   h.Count(),
	}
	for i := range h.counts {
		snap.Buckets[i].Count = h.counts[i].Load()
		snap.Buckets[i].ExemplarTraceID = h.exemplars[i].Load()
		if i < len(h.bounds) {
			bound := h.bounds[i]
			snap.Buckets[i].Bound = &bound
		}
	}
	return snap
}

// CounterVec is a family of counters distinguished by label values, e.g.
// rpc_calls_total{op,outcome}. Children are created on first use.
type CounterVec struct {
	labels []string

	mu       sync.Mutex
	children map[string]*Counter
}

// NewCounterVec returns a counter family with the given label names.
func NewCounterVec(labels ...string) *CounterVec {
	return &CounterVec{labels: labels, children: make(map[string]*Counter)}
}

// With returns the child counter for the given label values (in label
// order). Safe on a nil vec, which returns a nil (no-op) counter.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	key := labelKey(v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[key]
	if !ok {
		c = &Counter{}
		v.children[key] = c
	}
	return c
}

// Total sums every child counter.
func (v *CounterVec) Total() uint64 {
	if v == nil {
		return 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	var total uint64
	for _, c := range v.children {
		total += c.Value()
	}
	return total
}

// Values returns a label-set → count map, e.g.
// `{op="obj.getelement",outcome="ok"}` → 12.
func (v *CounterVec) Values() map[string]uint64 {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[string]uint64, len(v.children))
	for key, c := range v.children {
		out[key] = c.Value()
	}
	return out
}

// labelKey renders label values in the canonical {k="v",...} form used as
// both map key and snapshot key. Extra or missing values are tolerated
// (rendered positionally) so a miscounted call site still records data.
func labelKey(labels, values []string) string {
	var b strings.Builder
	b.WriteByte('{')
	n := len(labels)
	if len(values) > n {
		n = len(values)
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		label := fmt.Sprintf("label%d", i)
		if i < len(labels) {
			label = labels[i]
		}
		value := ""
		if i < len(values) {
			value = values[i]
		}
		fmt.Fprintf(&b, "%s=%q", label, value)
	}
	b.WriteByte('}')
	return b.String()
}

// Registry holds named instruments. Lookup methods are get-or-create and
// idempotent, so independently wired components share instruments by
// name.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	vecs     map[string]*CounterVec
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		vecs:     make(map[string]*CounterVec),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// CounterVec returns the named counter family, creating it (with the
// given label names) if needed.
func (r *Registry) CounterVec(name string, labels ...string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.vecs[name]
	if !ok {
		v = NewCounterVec(labels...)
		r.vecs[name] = v
	}
	return v
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds if needed (existing histograms keep their bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// MetricsSnapshot is the JSON-able state of a whole registry — the
// payload of /debugz.
type MetricsSnapshot struct {
	Counters        map[string]uint64            `json:"counters,omitempty"`
	LabeledCounters map[string]map[string]uint64 `json:"labeled_counters,omitempty"`
	Gauges          map[string]int64             `json:"gauges,omitempty"`
	Histograms      map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every instrument's current value.
func (r *Registry) Snapshot() MetricsSnapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	vecs := make(map[string]*CounterVec, len(r.vecs))
	for k, v := range r.vecs {
		vecs[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	snap := MetricsSnapshot{
		Counters:        make(map[string]uint64, len(counters)),
		LabeledCounters: make(map[string]map[string]uint64, len(vecs)),
		Gauges:          make(map[string]int64, len(gauges)),
		Histograms:      make(map[string]HistogramSnapshot, len(hists)),
	}
	for k, c := range counters {
		snap.Counters[k] = c.Value()
	}
	for k, v := range vecs {
		snap.LabeledCounters[k] = v.Values()
	}
	for k, g := range gauges {
		snap.Gauges[k] = g.Value()
	}
	for k, h := range hists {
		snap.Histograms[k] = h.Snapshot()
	}
	return snap
}
