package enc

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestRoundTripScalars(t *testing.T) {
	w := NewWriter(64)
	w.Uvarint(0)
	w.Uvarint(1)
	w.Uvarint(math.MaxUint64)
	w.Varint(-1)
	w.Varint(math.MinInt64)
	w.Uint64(42)
	w.Uint32(7)
	w.Byte(0xab)
	w.Bool(true)
	w.Bool(false)
	w.Float64(3.5)

	r := NewReader(w.Bytes())
	if got := r.Uvarint(); got != 0 {
		t.Errorf("Uvarint = %d, want 0", got)
	}
	if got := r.Uvarint(); got != 1 {
		t.Errorf("Uvarint = %d, want 1", got)
	}
	if got := r.Uvarint(); got != math.MaxUint64 {
		t.Errorf("Uvarint = %d, want MaxUint64", got)
	}
	if got := r.Varint(); got != -1 {
		t.Errorf("Varint = %d, want -1", got)
	}
	if got := r.Varint(); got != math.MinInt64 {
		t.Errorf("Varint = %d, want MinInt64", got)
	}
	if got := r.Uint64(); got != 42 {
		t.Errorf("Uint64 = %d, want 42", got)
	}
	if got := r.Uint32(); got != 7 {
		t.Errorf("Uint32 = %d, want 7", got)
	}
	if got := r.Byte(); got != 0xab {
		t.Errorf("Byte = %#x, want 0xab", got)
	}
	if got := r.Bool(); !got {
		t.Error("Bool = false, want true")
	}
	if got := r.Bool(); got {
		t.Error("Bool = true, want false")
	}
	if got := r.Float64(); got != 3.5 {
		t.Errorf("Float64 = %v, want 3.5", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestRoundTripBytesAndStrings(t *testing.T) {
	w := NewWriter(0)
	w.BytesPrefixed([]byte("hello"))
	w.BytesPrefixed(nil)
	w.String("wörld")
	w.String("")
	w.Raw([]byte{1, 2, 3})

	r := NewReader(w.Bytes())
	if got := r.BytesPrefixed(); !bytes.Equal(got, []byte("hello")) {
		t.Errorf("BytesPrefixed = %q", got)
	}
	if got := r.BytesPrefixed(); len(got) != 0 {
		t.Errorf("empty BytesPrefixed = %q", got)
	}
	if got := r.String(); got != "wörld" {
		t.Errorf("String = %q", got)
	}
	if got := r.String(); got != "" {
		t.Errorf("empty String = %q", got)
	}
	if got := r.Raw(3); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Raw = %v", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestTimeRoundTrip(t *testing.T) {
	times := []time.Time{
		{},
		time.Unix(0, 0),
		time.Unix(1234567890, 987654321),
		time.Date(2005, 4, 4, 12, 0, 0, 0, time.UTC),
	}
	w := NewWriter(0)
	for _, tm := range times {
		w.Time(tm)
	}
	r := NewReader(w.Bytes())
	for i, want := range times {
		got := r.Time()
		if want.IsZero() {
			if !got.IsZero() {
				t.Errorf("time %d: got %v, want zero", i, got)
			}
			continue
		}
		if !got.Equal(want) {
			t.Errorf("time %d: got %v, want %v", i, got, want)
		}
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestTruncatedInputs(t *testing.T) {
	w := NewWriter(0)
	w.String("hello world")
	full := w.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		_ = r.String()
		if r.Err() == nil && cut < len(full) {
			t.Errorf("cut=%d: expected decode error", cut)
		}
	}
}

func TestLengthPrefixTooLarge(t *testing.T) {
	w := NewWriter(0)
	w.Uvarint(1 << 40) // claims a huge payload
	r := NewReader(w.Bytes())
	if got := r.BytesPrefixed(); got != nil {
		t.Errorf("BytesPrefixed = %v, want nil", got)
	}
	if r.Err() == nil {
		t.Error("expected error for oversized length prefix")
	}
}

func TestTrailingBytesDetected(t *testing.T) {
	w := NewWriter(0)
	w.Byte(1)
	w.Byte(2)
	r := NewReader(w.Bytes())
	r.Byte()
	if err := r.Finish(); err == nil {
		t.Error("Finish should fail with trailing bytes")
	}
}

func TestErrorsSticky(t *testing.T) {
	r := NewReader(nil)
	r.Uint64() // fails
	if r.Err() == nil {
		t.Fatal("expected error")
	}
	// Subsequent reads return zero values without panicking.
	if got := r.String(); got != "" {
		t.Errorf("String after error = %q", got)
	}
	if got := r.Uvarint(); got != 0 {
		t.Errorf("Uvarint after error = %d", got)
	}
}

func TestQuickStringRoundTrip(t *testing.T) {
	f := func(s string, b []byte, u uint64, i int64) bool {
		w := NewWriter(0)
		w.String(s)
		w.BytesPrefixed(b)
		w.Uvarint(u)
		w.Varint(i)
		r := NewReader(w.Bytes())
		gs := r.String()
		gb := r.BytesPrefixed()
		gu := r.Uvarint()
		gi := r.Varint()
		if r.Finish() != nil {
			return false
		}
		return gs == s && bytes.Equal(gb, b) && gu == u && gi == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeterministicEncoding(t *testing.T) {
	f := func(s string, u uint64) bool {
		w1 := NewWriter(0)
		w1.String(s)
		w1.Uvarint(u)
		w2 := NewWriter(0)
		w2.String(s)
		w2.Uvarint(u)
		return bytes.Equal(w1.Bytes(), w2.Bytes())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(0)
	w.String("abc")
	w.Reset()
	if w.Len() != 0 {
		t.Errorf("Len after Reset = %d", w.Len())
	}
	w.Byte(9)
	if w.Len() != 1 {
		t.Errorf("Len = %d, want 1", w.Len())
	}
}

func TestUvarintRejectsNonMinimalEncoding(t *testing.T) {
	// 0xc8 0x00 decodes to 72 under binary.Uvarint, but 72's canonical
	// encoding is the single byte 0x48. Accepting the padded form would
	// give one value two byte representations, so the reader must reject
	// it — the fuzz corpus holds a name certificate exploiting exactly
	// this.
	cases := [][]byte{
		{0xc8, 0x00},             // 72, padded to two bytes
		{0x80, 0x00},             // 0, padded to two bytes
		{0xff, 0x80, 0x00},       // three-byte padding
		{0x80, 0x80, 0x80, 0x00}, // deep padding
	}
	for _, in := range cases {
		r := NewReader(in)
		r.Uvarint()
		if !errors.Is(r.Err(), ErrNonCanonical) {
			t.Errorf("Uvarint(% x) err = %v, want ErrNonCanonical", in, r.Err())
		}
		r = NewReader(in)
		r.Varint()
		if !errors.Is(r.Err(), ErrNonCanonical) {
			t.Errorf("Varint(% x) err = %v, want ErrNonCanonical", in, r.Err())
		}
	}
	// Minimal multi-byte encodings still decode.
	r := NewReader([]byte{0xc8, 0x01}) // 200
	if got := r.Uvarint(); got != 200 || r.Err() != nil {
		t.Errorf("Uvarint(c8 01) = %d, %v; want 200, nil", got, r.Err())
	}
}
