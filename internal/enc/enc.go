// Package enc provides deterministic binary encoding helpers used across
// the GlobeDoc code base.
//
// Certificates and other signed structures must have a single canonical
// byte representation so that signatures are stable across processes and
// architectures. Package enc implements a small, explicit, length-prefixed
// format: unsigned integers are varint-encoded, byte strings and strings
// are length-prefixed, and times are encoded as Unix nanoseconds. The
// format has no reflection, no type metadata and no alignment: encoding
// the same logical value always produces the same bytes.
package enc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// ErrTruncated is returned when the decoder runs out of input bytes.
var ErrTruncated = errors.New("enc: truncated input")

// ErrTooLarge is returned when a length prefix exceeds the decoder's
// remaining input or the configured maximum.
var ErrTooLarge = errors.New("enc: length prefix too large")

// ErrNonCanonical is returned when a varint uses more bytes than the
// minimal encoding of its value. Accepting such padding would give one
// logical value many byte representations, breaking the one-encoding
// guarantee signatures depend on.
var ErrNonCanonical = errors.New("enc: non-canonical varint")

// Writer accumulates a canonical binary encoding. The zero value is ready
// to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with the given initial capacity.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the accumulated encoding. The returned slice is owned by
// the Writer and must not be modified while the Writer is still in use.
func (w *Writer) Bytes() []byte { return w.buf }

// Len reports the number of bytes accumulated so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reset discards the accumulated encoding, retaining the buffer.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Uvarint appends v in unsigned varint encoding.
func (w *Writer) Uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Varint appends v in signed (zig-zag) varint encoding.
func (w *Writer) Varint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

// Uint64 appends v as 8 fixed big-endian bytes.
func (w *Writer) Uint64(v uint64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
}

// Uint32 appends v as 4 fixed big-endian bytes.
func (w *Writer) Uint32(v uint32) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
}

// Byte appends a single byte.
func (w *Writer) Byte(b byte) {
	w.buf = append(w.buf, b)
}

// Bool appends a boolean as one byte (0 or 1).
func (w *Writer) Bool(b bool) {
	if b {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Bytes8 appends b with a varint length prefix.
func (w *Writer) BytesPrefixed(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends s with a varint length prefix.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Raw appends b verbatim, with no length prefix. Use only for fixed-size
// fields whose length is known to the decoder.
func (w *Writer) Raw(b []byte) {
	w.buf = append(w.buf, b...)
}

// Time appends t as Unix nanoseconds (fixed 8 bytes). The zero time is
// encoded as math.MinInt64 so it round-trips distinguishably.
func (w *Writer) Time(t time.Time) {
	if t.IsZero() {
		w.Uint64(uint64(uint64(1) << 63)) // math.MinInt64 bit pattern
		return
	}
	w.Uint64(uint64(t.UnixNano()))
}

// Float64 appends v as its IEEE-754 bit pattern (fixed 8 bytes).
func (w *Writer) Float64(v float64) {
	w.Uint64(math.Float64bits(v))
}

// Reader decodes values written by Writer. Methods record the first error
// encountered; once an error occurs all subsequent reads return zero
// values. Check Err after decoding.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Remaining reports the number of undecoded bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Finish returns an error if decoding failed or input bytes remain.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("enc: %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Uvarint decodes an unsigned varint, rejecting non-minimal encodings.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	// A multi-byte varint whose final (most-significant) group is zero
	// is padding: the same value encodes in fewer bytes.
	if n > 1 && r.buf[r.off+n-1] == 0 {
		r.fail(ErrNonCanonical)
		return 0
	}
	r.off += n
	return v
}

// Varint decodes a signed varint, rejecting non-minimal encodings.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		r.fail(ErrTruncated)
		return 0
	}
	if n > 1 && r.buf[r.off+n-1] == 0 {
		r.fail(ErrNonCanonical)
		return 0
	}
	r.off += n
	return v
}

// Uint64 decodes 8 fixed big-endian bytes.
func (r *Reader) Uint64() uint64 {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 8 {
		r.fail(ErrTruncated)
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// Uint32 decodes 4 fixed big-endian bytes.
func (r *Reader) Uint32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 4 {
		r.fail(ErrTruncated)
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

// Byte decodes a single byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.Remaining() < 1 {
		r.fail(ErrTruncated)
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Bool decodes a boolean byte.
func (r *Reader) Bool() bool {
	return r.Byte() != 0
}

// BytesPrefixed decodes a varint-length-prefixed byte string. The returned
// slice aliases the Reader's input.
func (r *Reader) BytesPrefixed() []byte {
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining()) {
		r.fail(ErrTooLarge)
		return nil
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b
}

// String decodes a varint-length-prefixed string.
func (r *Reader) String() string {
	return string(r.BytesPrefixed())
}

// Raw decodes n bytes with no length prefix. The returned slice aliases
// the Reader's input.
func (r *Reader) Raw(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > r.Remaining() {
		r.fail(ErrTruncated)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Time decodes a time written by Writer.Time.
func (r *Reader) Time() time.Time {
	v := int64(r.Uint64())
	if r.err != nil {
		return time.Time{}
	}
	if v == math.MinInt64 {
		return time.Time{}
	}
	return time.Unix(0, v)
}

// Float64 decodes an IEEE-754 float written by Writer.Float64.
func (r *Reader) Float64() float64 {
	return math.Float64frombits(r.Uint64())
}
