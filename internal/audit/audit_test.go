package audit_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"globedoc/internal/audit"
	"globedoc/internal/globeid"
	"globedoc/internal/keys"
	"globedoc/internal/keys/keytest"
)

// trusted is the owner's authoritative dynamic-content function.
func trusted(query string) ([]byte, error) {
	return []byte("result(" + query + ")"), nil
}

// lying returns wrong answers for queries containing "victim".
func lying(query string) ([]byte, error) {
	if strings.Contains(query, "victim") {
		return []byte("forged(" + query + ")"), nil
	}
	return trusted(query)
}

type fixture struct {
	oid      globeid.OID
	ownerKey *keys.KeyPair
	server   *audit.DynamicServer
	auditor  *audit.Auditor
}

func newFixture(t *testing.T, handler audit.Handler, probability float64) *fixture {
	t.Helper()
	ownerKey := keytest.Ed()
	serverKey := keytest.Ed()
	if ownerKey == serverKey {
		serverKey = keytest.Ed()
	}
	oid := globeid.FromPublicKey(ownerKey.Public())
	srv := audit.NewDynamicServer(oid, "cache-7", serverKey, handler)
	srv.Now = func() time.Time { return time.Date(2005, 4, 4, 12, 0, 0, 0, time.UTC) }
	ks := keys.NewKeystore()
	ks.Add("cache-7", serverKey.Public())
	aud := audit.NewAuditor(oid, ownerKey, trusted, ks, probability, 42)
	return &fixture{oid: oid, ownerKey: ownerKey, server: srv, auditor: aud}
}

func TestHonestServerNeverCaught(t *testing.T) {
	f := newFixture(t, trusted, 1.0) // audit everything
	for i := 0; i < 50; i++ {
		resp, receipt, err := f.server.Serve(fmt.Sprintf("q%d", i))
		if err != nil {
			t.Fatal(err)
		}
		proof, err := f.auditor.Observe(resp, receipt)
		if err != nil {
			t.Fatalf("Observe: %v", err)
		}
		if proof != nil {
			t.Fatal("honest server caught")
		}
	}
	st := f.auditor.Stats()
	if st.Observed != 50 || st.Audited != 50 || st.Caught != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLyingServerCaughtWithFullAudit(t *testing.T) {
	f := newFixture(t, lying, 1.0)
	resp, receipt, err := f.server.Serve("query-victim-1")
	if err != nil {
		t.Fatal(err)
	}
	proof, err := f.auditor.Observe(resp, receipt)
	if err != nil {
		t.Fatal(err)
	}
	if proof == nil {
		t.Fatal("lying server not caught at p=1")
	}
	// The proof convinces a third party.
	if err := proof.Verify(f.server.Key.Public(), f.ownerKey.Public()); err != nil {
		t.Fatalf("proof rejected by third party: %v", err)
	}
}

func TestProbabilisticAuditEventuallyCatches(t *testing.T) {
	f := newFixture(t, lying, 0.2)
	caught := 0
	for i := 0; i < 200; i++ {
		resp, receipt, err := f.server.Serve(fmt.Sprintf("victim-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		proof, err := f.auditor.Observe(resp, receipt)
		if err != nil {
			t.Fatal(err)
		}
		if proof != nil {
			caught++
		}
	}
	st := f.auditor.Stats()
	// ~20% of 200 = ~40 audits, all of which catch.
	if st.Audited < 20 || st.Audited > 80 {
		t.Errorf("Audited = %d, want around 40", st.Audited)
	}
	if caught != st.Audited {
		t.Errorf("caught %d of %d audited lying responses", caught, st.Audited)
	}
	if caught == 0 {
		t.Error("probabilistic audit never caught a persistent liar")
	}
}

func TestForgedReceiptRejected(t *testing.T) {
	f := newFixture(t, trusted, 1.0)
	resp, receipt, err := f.server.Serve("q")
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with the response after the receipt was issued.
	resp = append(resp, 'x')
	_, err = f.auditor.Observe(resp, receipt)
	if !errors.Is(err, audit.ErrBadReceipt) {
		t.Fatalf("err = %v, want ErrBadReceipt", err)
	}
	if f.auditor.Stats().BadSig != 1 {
		t.Errorf("BadSig = %d", f.auditor.Stats().BadSig)
	}
}

func TestUnknownServerRejected(t *testing.T) {
	f := newFixture(t, trusted, 1.0)
	rogueKey := keytest.RSA()
	rogue := audit.NewDynamicServer(f.oid, "rogue", rogueKey, trusted)
	resp, receipt, err := rogue.Serve("q")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.auditor.Observe(resp, receipt); !errors.Is(err, audit.ErrBadReceipt) {
		t.Fatalf("err = %v", err)
	}
}

func TestProofCannotBeForged(t *testing.T) {
	f := newFixture(t, lying, 1.0)
	resp, receipt, _ := f.server.Serve("victim-q")
	proof, err := f.auditor.Observe(resp, receipt)
	if err != nil || proof == nil {
		t.Fatal("setup failed")
	}
	// Wrong owner key: verification fails.
	if err := proof.Verify(f.server.Key.Public(), keytest.RSA().Public()); err == nil {
		t.Error("proof verified under wrong owner key")
	}
	// Tampered "correct" answer: owner signature fails.
	mutated := *proof
	mutated.Correct = append([]byte(nil), proof.Correct...)
	mutated.Correct[0] ^= 1
	if err := mutated.Verify(f.server.Key.Public(), f.ownerKey.Public()); err == nil {
		t.Error("tampered proof verified")
	}
	// A proof where served == correct is no proof at all.
	same := *proof
	same.Response = proof.Correct
	if err := same.Verify(f.server.Key.Public(), f.ownerKey.Public()); err == nil {
		t.Error("vacuous proof verified")
	}
}

func TestReceiptVerifyDirect(t *testing.T) {
	f := newFixture(t, trusted, 0)
	resp, receipt, err := f.server.Serve("q")
	if err != nil {
		t.Fatal(err)
	}
	if err := receipt.Verify(f.server.Key.Public(), resp); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if err := receipt.Verify(keytest.RSA().Public(), resp); !errors.Is(err, audit.ErrBadReceipt) {
		t.Fatalf("wrong-key Verify = %v", err)
	}
}
