// Package audit implements the paper's proposed approach to dynamic Web
// content on untrusted servers (§6): since the owner cannot pre-sign the
// result of every possible query, untrusted servers sign the responses
// they generate, and the owner probabilistically double-checks them
// against a trusted evaluator. A server that serves bogus dynamic content
// is "eventually caught red-handed" — the Gemini-style accountability
// model of ref [12] — yielding a transferable proof of misbehaviour.
//
// The pieces:
//
//   - Handler: the dynamic-content function (query -> response) run by
//     both the untrusted server and the owner's trusted copy;
//   - Receipt: a server-signed statement "I answered query Q with a
//     response hashing to H at time T";
//   - Auditor: the owner-side checker that re-executes a fraction of
//     audited queries and, on mismatch, emits a Proof;
//   - Proof: receipt + the owner-signed correct answer, verifiable by
//     any third party that knows both public keys.
package audit

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"time"

	"globedoc/internal/enc"
	"globedoc/internal/globeid"
	"globedoc/internal/keys"
	"globedoc/internal/workload"
)

// Errors reported by the auditing machinery.
var (
	ErrBadReceipt = errors.New("audit: receipt signature invalid")
	ErrBadProof   = errors.New("audit: misbehaviour proof invalid")
)

// Handler evaluates a dynamic-content query against the current document
// state. Implementations must be deterministic in (state version, query)
// for auditing to be sound.
type Handler func(query string) ([]byte, error)

// Receipt is a server-signed record of one dynamic response.
type Receipt struct {
	ObjectID     globeid.OID
	ServerName   string
	Query        string
	ResponseHash [sha256.Size]byte
	Served       time.Time
	Sig          []byte
}

func (r *Receipt) signedBytes() []byte {
	w := enc.NewWriter(128)
	w.String("globedoc-audit-receipt")
	w.Raw(r.ObjectID[:])
	w.String(r.ServerName)
	w.String(r.Query)
	w.Raw(r.ResponseHash[:])
	w.Time(r.Served)
	return w.Bytes()
}

// Verify checks the receipt against the server's public key and that it
// covers the given response bytes.
func (r *Receipt) Verify(serverKey keys.PublicKey, response []byte) error {
	if sha256.Sum256(response) != r.ResponseHash {
		return fmt.Errorf("%w: response does not match receipt hash", ErrBadReceipt)
	}
	if err := serverKey.Verify(r.signedBytes(), r.Sig); err != nil {
		return ErrBadReceipt
	}
	return nil
}

// DynamicServer is an (untrusted) server-side evaluator that answers
// queries and signs receipts with the server's own key. Its Handler may
// lie — that is the point.
type DynamicServer struct {
	ObjectID globeid.OID
	Name     string
	Key      *keys.KeyPair
	Handler  Handler
	// Now stamps receipts; tests may replace it.
	Now func() time.Time
}

// NewDynamicServer builds a dynamic-content server.
func NewDynamicServer(oid globeid.OID, name string, key *keys.KeyPair, h Handler) *DynamicServer {
	return &DynamicServer{ObjectID: oid, Name: name, Key: key, Handler: h, Now: time.Now}
}

// Serve answers one query, returning the response and a signed receipt.
func (s *DynamicServer) Serve(query string) ([]byte, *Receipt, error) {
	resp, err := s.Handler(query)
	if err != nil {
		return nil, nil, err
	}
	r := &Receipt{
		ObjectID:     s.ObjectID,
		ServerName:   s.Name,
		Query:        query,
		ResponseHash: sha256.Sum256(resp),
		Served:       s.Now(),
	}
	sig, err := s.Key.Sign(r.signedBytes())
	if err != nil {
		return nil, nil, err
	}
	r.Sig = sig
	return resp, r, nil
}

// Proof is a transferable demonstration that a server signed a wrong
// answer: the server's receipt plus the owner-signed correct response.
type Proof struct {
	Receipt  Receipt
	Response []byte // what the server actually returned
	Correct  []byte // what the trusted evaluator returns
	OwnerSig []byte // owner signature over the whole statement
}

func (p *Proof) signedBytes() []byte {
	w := enc.NewWriter(256 + len(p.Response) + len(p.Correct))
	w.String("globedoc-audit-proof")
	w.BytesPrefixed(p.Receipt.signedBytes())
	w.BytesPrefixed(p.Receipt.Sig)
	w.BytesPrefixed(p.Response)
	w.BytesPrefixed(p.Correct)
	return w.Bytes()
}

// Verify lets any third party check the proof: the receipt is genuinely
// signed by the accused server, the served response matches the receipt,
// the owner vouches for the correct answer, and the two differ.
func (p *Proof) Verify(serverKey, ownerKey keys.PublicKey) error {
	if err := p.Receipt.Verify(serverKey, p.Response); err != nil {
		return fmt.Errorf("%w: %v", ErrBadProof, err)
	}
	if err := ownerKey.Verify(p.signedBytes(), p.OwnerSig); err != nil {
		return fmt.Errorf("%w: owner signature invalid", ErrBadProof)
	}
	if string(p.Response) == string(p.Correct) {
		return fmt.Errorf("%w: served response equals correct response", ErrBadProof)
	}
	return nil
}

// Stats summarizes an auditor's activity.
type Stats struct {
	Observed int // responses seen
	Audited  int // responses re-executed
	Caught   int // misbehaviour proofs produced
	BadSig   int // receipts with invalid signatures
}

// Auditor is the owner-side probabilistic double-checker.
type Auditor struct {
	ObjectID globeid.OID
	OwnerKey *keys.KeyPair
	// Trusted evaluates queries against the owner's authoritative copy.
	Trusted Handler
	// ServerKeys maps server names to their public keys.
	ServerKeys *keys.Keystore
	// Probability is the audit sampling rate in [0,1].
	Probability float64

	rng *workload.Rand
	mu  sync.Mutex
	st  Stats
}

// NewAuditor builds an auditor with a deterministic sampling stream.
func NewAuditor(oid globeid.OID, ownerKey *keys.KeyPair, trusted Handler, serverKeys *keys.Keystore, probability float64, seed uint64) *Auditor {
	return &Auditor{
		ObjectID:    oid,
		OwnerKey:    ownerKey,
		Trusted:     trusted,
		ServerKeys:  serverKeys,
		Probability: probability,
		rng:         workload.NewRand(seed),
	}
}

// Stats returns a snapshot of the audit counters.
func (a *Auditor) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.st
}

// Observe inspects one (response, receipt) pair. With probability
// Probability it re-executes the query on the trusted copy; a mismatch
// yields a signed misbehaviour Proof. A nil proof with nil error means
// the response passed (or was not sampled).
func (a *Auditor) Observe(response []byte, receipt *Receipt) (*Proof, error) {
	a.mu.Lock()
	a.st.Observed++
	sample := a.rng.Float64() < a.Probability
	a.mu.Unlock()

	serverKey, ok := a.ServerKeys.Get(receipt.ServerName)
	if !ok {
		a.count(func(s *Stats) { s.BadSig++ })
		return nil, fmt.Errorf("%w: unknown server %q", ErrBadReceipt, receipt.ServerName)
	}
	if err := receipt.Verify(serverKey, response); err != nil {
		a.count(func(s *Stats) { s.BadSig++ })
		return nil, err
	}
	if !sample {
		return nil, nil
	}
	a.count(func(s *Stats) { s.Audited++ })

	correct, err := a.Trusted(receipt.Query)
	if err != nil {
		return nil, fmt.Errorf("audit: trusted evaluation: %w", err)
	}
	if string(correct) == string(response) {
		return nil, nil
	}
	// Caught red-handed: assemble the transferable proof.
	proof := &Proof{Receipt: *receipt, Response: response, Correct: correct}
	sig, err := a.OwnerKey.Sign(proof.signedBytes())
	if err != nil {
		return nil, err
	}
	proof.OwnerSig = sig
	a.count(func(s *Stats) { s.Caught++ })
	return proof, nil
}

func (a *Auditor) count(f func(*Stats)) {
	a.mu.Lock()
	defer a.mu.Unlock()
	f(&a.st)
}
