package core_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"globedoc/internal/cert"
	"globedoc/internal/core"
	"globedoc/internal/deploy"
	"globedoc/internal/document"
	"globedoc/internal/globeid"
	"globedoc/internal/keys"
	"globedoc/internal/keys/keytest"
	"globedoc/internal/netsim"
	"globedoc/internal/server"
	"globedoc/internal/telemetry"
	"globedoc/internal/vcache"
)

// testClock is a mutable injectable clock shared by the publication and
// the client under test.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// vcacheWorld stands up a one-server world with a document published at
// a fixed clock and TTL, plus a caching client wired to a fresh
// Telemetry and a fresh vcache.Cache.
func vcacheWorld(t *testing.T, ttl time.Duration) (*deploy.World, *deploy.Publication, *core.Client, *vcache.Cache, *telemetry.Telemetry, *testClock) {
	t.Helper()
	clk := &testClock{now: time.Date(2005, 4, 4, 12, 0, 0, 0, time.UTC)}
	w, err := deploy.NewWorld(deploy.Options{TimeScale: 0})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	if _, err := w.StartServer(netsim.AmsterdamPrimary, "srv-ams", nil, nil, server.Limits{}); err != nil {
		t.Fatal(err)
	}
	doc := document.New()
	doc.Put(document.Element{Name: "index.html", ContentType: "text/html", Data: []byte("<html>cached home</html>")})
	doc.Put(document.Element{Name: "logo.png", ContentType: "image/png", Data: []byte{0x89, 0x50, 0x4e, 0x47}})
	pub, err := w.Publish(doc, deploy.PublishOptions{
		Name:     "home.vu.nl",
		Subject:  "Vrije Universiteit Amsterdam",
		OwnerKey: keytest.RSA(),
		TTL:      ttl,
		Clock:    clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New(nil)
	vc := vcache.New(vcache.Config{})
	client, err := w.NewSecureClientOpts(netsim.Paris, core.Options{
		CacheBindings: true,
		VCache:        vc,
		Now:           clk.Now,
		Telemetry:     tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)
	return w, pub, client, vc, tel, clk
}

func elementHash(t *testing.T, pub *deploy.Publication, name string) [globeid.Size]byte {
	t.Helper()
	entry, err := pub.Cert.Lookup(name)
	if err != nil {
		t.Fatalf("Lookup(%q): %v", name, err)
	}
	return entry.Hash
}

func TestVCacheHitSkipsElementTransfer(t *testing.T) {
	w, pub, client, _, tel, _ := vcacheWorld(t, time.Hour)
	ctx := context.Background()

	first, err := client.Fetch(ctx, pub.OID, "index.html")
	if err != nil {
		t.Fatal(err)
	}
	if first.FromCache {
		t.Fatal("cold fetch reported FromCache")
	}
	served := w.Servers[netsim.AmsterdamPrimary].Stats().ElementFetches

	second, err := client.Fetch(ctx, pub.OID, "index.html")
	if err != nil {
		t.Fatal(err)
	}
	if !second.FromCache {
		t.Fatal("warm fetch not served from the verified-content cache")
	}
	if string(second.Element.Data) != string(first.Element.Data) {
		t.Fatalf("cached bytes %q != fetched bytes %q", second.Element.Data, first.Element.Data)
	}
	if second.Element.ContentType != "text/html" {
		t.Fatalf("cached ContentType = %q", second.Element.ContentType)
	}
	if got := w.Servers[netsim.AmsterdamPrimary].Stats().ElementFetches; got != served {
		t.Fatalf("cache hit still moved element bytes: server served %d -> %d", served, got)
	}
	if second.Timing.ElementFetch != 0 {
		t.Fatalf("cache hit recorded element transfer time %v", second.Timing.ElementFetch)
	}
	if tel.VCacheHits.Value() != 1 || tel.VCacheMisses.Value() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", tel.VCacheHits.Value(), tel.VCacheMisses.Value())
	}
}

func TestVCacheSignatureMemoized(t *testing.T) {
	_, pub, client, _, tel, _ := vcacheWorld(t, time.Hour)
	ctx := context.Background()

	if _, err := client.Fetch(ctx, pub.OID, "index.html"); err != nil {
		t.Fatal(err)
	}
	// A second cold pipeline re-verifies the same certificate signature;
	// the memoizer serves the verdict without re-running the crypto.
	client.FlushBindings()
	if _, err := client.Fetch(ctx, pub.OID, "index.html"); err != nil {
		t.Fatal(err)
	}
	if tel.SigCacheHits.Value() != 1 {
		t.Fatalf("signature cache hits = %d, want 1", tel.SigCacheHits.Value())
	}
}

func TestVCacheRevalidationFetchesCertOnly(t *testing.T) {
	w, pub, client, _, tel, clk := vcacheWorld(t, time.Minute)
	ctx := context.Background()

	first, err := client.Fetch(ctx, pub.OID, "index.html")
	if err != nil {
		t.Fatal(err)
	}

	// The validity interval lapses; the owner re-issues the certificate
	// over the unchanged document.
	clk.Advance(2 * time.Minute)
	if err := w.Reissue(pub, time.Hour, clk.Now()); err != nil {
		t.Fatal(err)
	}
	served := w.Servers[netsim.AmsterdamPrimary].Stats().ElementFetches

	second, err := client.Fetch(ctx, pub.OID, "index.html")
	if err != nil {
		t.Fatalf("revalidating fetch: %v", err)
	}
	if !second.FromCache {
		t.Fatal("revalidated fetch re-transferred the element")
	}
	if string(second.Element.Data) != string(first.Element.Data) {
		t.Fatalf("revalidated bytes %q != original %q", second.Element.Data, first.Element.Data)
	}
	if got := w.Servers[netsim.AmsterdamPrimary].Stats().ElementFetches; got != served {
		t.Fatalf("revalidation moved element bytes: server served %d -> %d", served, got)
	}
	if tel.VCacheRevalidations.Value() != 1 {
		t.Fatalf("revalidations = %d, want 1", tel.VCacheRevalidations.Value())
	}
}

func TestVCacheStaleColdCertIsFreshnessFailure(t *testing.T) {
	_, pub, client, _, tel, clk := vcacheWorld(t, time.Minute)
	ctx := context.Background()

	if _, err := client.Fetch(ctx, pub.OID, "index.html"); err != nil {
		t.Fatal(err)
	}
	// The interval lapses but the owner never re-issues: every replica
	// can only replay the stale certificate. The revalidating fetch must
	// fail as a freshness security failure — cached bytes notwithstanding.
	clk.Advance(2 * time.Minute)
	_, err := client.Fetch(ctx, pub.OID, "index.html")
	if !errors.Is(err, core.ErrSecurityCheckFailed) {
		t.Fatalf("err = %v, want ErrSecurityCheckFailed", err)
	}
	if !errors.Is(err, cert.ErrFreshness) {
		t.Fatalf("err = %v, want ErrFreshness cause", err)
	}
	if got := tel.SecurityCheckFailures.With("freshness").Value(); got == 0 {
		t.Fatal("no security_check_failures_total{phase=\"freshness\"} recorded")
	}
}

func TestVCacheLosesToRevocation(t *testing.T) {
	w, pub, client, vc, _, clk := vcacheWorld(t, time.Hour)
	ctx := context.Background()

	first, err := client.Fetch(ctx, pub.OID, "index.html")
	if err != nil {
		t.Fatal(err)
	}
	oldHash := elementHash(t, pub, "index.html")
	if !vc.Contains(oldHash) {
		t.Fatal("fetched element not cached")
	}

	// The owner replaces the element and re-issues: the old bytes are
	// revoked even though their interval had not lapsed.
	pub.Doc.Put(document.Element{Name: "index.html", ContentType: "text/html", Data: []byte("<html>v2</html>")})
	if err := w.Reissue(pub, time.Hour, clk.Now()); err != nil {
		t.Fatal(err)
	}
	client.FlushBindings()

	second, err := client.Fetch(ctx, pub.OID, "index.html")
	if err != nil {
		t.Fatal(err)
	}
	if second.FromCache {
		t.Fatal("revoked bytes served from cache after certificate refresh")
	}
	if string(second.Element.Data) != "<html>v2</html>" {
		t.Fatalf("got %q, want the re-issued content", second.Element.Data)
	}
	if string(second.Element.Data) == string(first.Element.Data) {
		t.Fatal("still serving superseded content")
	}
	if vc.Contains(oldHash) {
		t.Fatal("superseded hash survived certificate reconciliation")
	}
}

func TestBindingCacheLRUBound(t *testing.T) {
	w, err := deploy.NewWorld(deploy.Options{TimeScale: 0})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	if _, err := w.StartServer(netsim.AmsterdamPrimary, "srv", nil, nil, server.Limits{}); err != nil {
		t.Fatal(err)
	}
	var pubs []*deploy.Publication
	for i := 0; i < 3; i++ {
		doc := document.New()
		doc.Put(document.Element{Name: "a.html", Data: []byte{byte('a' + i)}})
		pub, err := w.Publish(doc, deploy.PublishOptions{KeyAlgorithm: keys.Ed25519})
		if err != nil {
			t.Fatal(err)
		}
		pubs = append(pubs, pub)
	}
	tel := telemetry.New(nil)
	client, err := w.NewSecureClientOpts(netsim.Paris, core.Options{
		CacheBindings: true,
		MaxBindings:   2,
		Telemetry:     tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)
	ctx := context.Background()

	for _, pub := range pubs {
		if _, err := client.Fetch(ctx, pub.OID, "a.html"); err != nil {
			t.Fatal(err)
		}
	}
	if got := tel.BindingCacheEntries.Value(); got != 2 {
		t.Fatalf("binding_cache_entries = %d, want the bound 2", got)
	}
	// The first OID was least recently used and must have been evicted.
	res, err := client.Fetch(ctx, pubs[0].OID, "a.html")
	if err != nil {
		t.Fatal(err)
	}
	if res.WarmBinding {
		t.Fatal("evicted binding still reported warm")
	}
	// The most recent OID stayed warm.
	res, err = client.Fetch(ctx, pubs[2].OID, "a.html")
	if err != nil {
		t.Fatal(err)
	}
	if !res.WarmBinding {
		t.Fatal("recently used binding was evicted")
	}
}

// TestBindingEvictOnFailover is the regression test for the
// failover/invalidation contract: when the replica behind a warm binding
// dies, the binding leaves the cache (gauge included) and every content
// entry it vouched for is invalidated.
func TestBindingEvictOnFailover(t *testing.T) {
	w, pub, client, vc, tel, _ := vcacheWorld(t, time.Hour)
	ctx := context.Background()

	if _, err := client.Fetch(ctx, pub.OID, "index.html"); err != nil {
		t.Fatal(err)
	}
	if got := tel.BindingCacheEntries.Value(); got != 1 {
		t.Fatalf("binding_cache_entries = %d, want 1", got)
	}
	hash := elementHash(t, pub, "index.html")
	if !vc.Contains(hash) {
		t.Fatal("element not cached before failover")
	}

	// The only replica dies mid-session. A hit on already-verified bytes
	// would not need the replica, so fetch an uncached element: the warm
	// element fetch fails, the binding is dropped, and the failover
	// re-bind finds no live candidate.
	w.Servers[netsim.AmsterdamPrimary].Close()
	if _, err := client.Fetch(ctx, pub.OID, "logo.png"); err == nil {
		t.Fatal("fetch succeeded with the only replica down")
	}
	if got := tel.BindingCacheEntries.Value(); got != 0 {
		t.Fatalf("binding_cache_entries = %d after failover, want 0", got)
	}
	if vc.Contains(hash) {
		t.Fatal("content vouched for by the failed binding survived invalidation")
	}
}
