package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"globedoc/internal/cert"
	"globedoc/internal/core"
	"globedoc/internal/deploy"
	"globedoc/internal/document"
	"globedoc/internal/keys"
	"globedoc/internal/keys/keytest"
	"globedoc/internal/netsim"
	"globedoc/internal/server"
)

// world stands up a deployment with one published document and returns
// the world, the publication and a secure client at clientHost.
func world(t *testing.T, clientHost string) (*deploy.World, *deploy.Publication, *core.Client) {
	t.Helper()
	w, err := deploy.NewWorld(deploy.Options{TimeScale: 0})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	if _, err := w.StartServer(netsim.AmsterdamPrimary, "srv-ams", nil, nil, server.Limits{}); err != nil {
		t.Fatal(err)
	}
	doc := document.New()
	doc.Put(document.Element{Name: "index.html", Data: []byte("<html>GlobeDoc home</html>")})
	doc.Put(document.Element{Name: "logo.png", Data: []byte{0x89, 0x50, 0x4e, 0x47}})
	pub, err := w.Publish(doc, deploy.PublishOptions{
		Name:     "home.vu.nl",
		Subject:  "Vrije Universiteit Amsterdam",
		OwnerKey: keytest.RSA(),
	})
	if err != nil {
		t.Fatal(err)
	}
	client := w.NewSecureClient(clientHost)
	t.Cleanup(client.Close)
	return w, pub, client
}

func TestSecureFetchEndToEnd(t *testing.T) {
	_, _, client := world(t, netsim.Paris)
	res, err := client.FetchNamed(context.Background(), "home.vu.nl", "index.html")
	if err != nil {
		t.Fatalf("FetchNamed: %v", err)
	}
	if string(res.Element.Data) != "<html>GlobeDoc home</html>" {
		t.Errorf("Data = %q", res.Element.Data)
	}
	if res.CertifiedAs != "Vrije Universiteit Amsterdam" {
		t.Errorf("CertifiedAs = %q", res.CertifiedAs)
	}
	if res.ReplicaAddr == "" {
		t.Error("ReplicaAddr empty")
	}
	if res.Timing.Total() <= 0 || res.Timing.Security() <= 0 {
		t.Errorf("Timing = %+v", res.Timing)
	}
	if res.WarmBinding {
		t.Error("first fetch reported warm binding")
	}
}

func TestFetchByOID(t *testing.T) {
	_, pub, client := world(t, netsim.Ithaca)
	res, err := client.Fetch(context.Background(), pub.OID, "logo.png")
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if len(res.Element.Data) != 4 {
		t.Errorf("Data = %v", res.Element.Data)
	}
	if res.Timing.NameResolve != 0 {
		t.Error("OID fetch should not pay name resolution")
	}
}

func TestFetchUnknownElement(t *testing.T) {
	_, pub, client := world(t, netsim.Paris)
	if _, err := client.Fetch(context.Background(), pub.OID, "ghost.html"); err == nil {
		t.Fatal("fetch of unknown element succeeded")
	}
}

func TestFetchUnknownName(t *testing.T) {
	_, _, client := world(t, netsim.Paris)
	if _, err := client.FetchNamed(context.Background(), "ghost.vu.nl", "index.html"); err == nil {
		t.Fatal("fetch of unregistered name succeeded")
	}
}

func TestWarmBindingCache(t *testing.T) {
	w, pub, _ := world(t, netsim.Paris)
	client, err := w.NewSecureClientOpts(netsim.Paris, core.Options{CacheBindings: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)
	first, err := client.Fetch(context.Background(), pub.OID, "index.html")
	if err != nil {
		t.Fatal(err)
	}
	if first.WarmBinding {
		t.Fatal("first fetch warm")
	}
	second, err := client.Fetch(context.Background(), pub.OID, "index.html")
	if err != nil {
		t.Fatal(err)
	}
	if !second.WarmBinding {
		t.Fatal("second fetch not warm")
	}
	// Warm fetches skip key/cert phases entirely.
	if second.Timing.KeyFetch != 0 || second.Timing.CertFetch != 0 || second.Timing.Bind != 0 {
		t.Errorf("warm timing = %+v", second.Timing)
	}
	client.FlushBindings()
	third, err := client.Fetch(context.Background(), pub.OID, "index.html")
	if err != nil {
		t.Fatal(err)
	}
	if third.WarmBinding {
		t.Fatal("fetch after flush reported warm")
	}
}

func TestFetchAllElements(t *testing.T) {
	_, pub, client := world(t, netsim.AmsterdamSecondary)
	results, err := client.FetchAll(context.Background(), pub.OID)
	if err != nil {
		t.Fatalf("FetchAll: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d elements", len(results))
	}
	// Certificate order is sorted by name.
	if results[0].Element.Name != "index.html" || results[1].Element.Name != "logo.png" {
		t.Errorf("order = %q, %q", results[0].Element.Name, results[1].Element.Name)
	}
}

func TestIdentityOptionalWhenNotRequired(t *testing.T) {
	w, err := deploy.NewWorld(deploy.Options{TimeScale: 0})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	if _, err := w.StartServer(netsim.AmsterdamPrimary, "srv", nil, nil, server.Limits{}); err != nil {
		t.Fatal(err)
	}
	doc := document.New()
	doc.Put(document.Element{Name: "a.html", Data: []byte("anon")})
	// No Subject: object has no identity certificate.
	pub, err := w.Publish(doc, deploy.PublishOptions{Name: "anon.nl", OwnerKey: keytest.RSA()})
	if err != nil {
		t.Fatal(err)
	}
	client := w.NewSecureClient(netsim.Paris)
	t.Cleanup(client.Close)

	res, err := client.Fetch(context.Background(), pub.OID, "a.html")
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if res.CertifiedAs != "" {
		t.Errorf("CertifiedAs = %q for uncertified object", res.CertifiedAs)
	}

	strict, err := w.NewSecureClientOpts(netsim.Paris, core.Options{RequireIdentity: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(strict.Close)
	if _, err := strict.Fetch(context.Background(), pub.OID, "a.html"); err == nil {
		t.Fatal("RequireIdentity fetch succeeded without identity certificate")
	}
}

func TestUntrustedCAIdentityIgnored(t *testing.T) {
	w, pub, _ := world(t, netsim.Paris)
	// Use a trust store that trusts nobody.
	client, err := w.NewSecureClientOpts(netsim.Paris, core.Options{Trust: cert.NewTrustStore()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)
	res, err := client.Fetch(context.Background(), pub.OID, "index.html")
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if res.CertifiedAs != "" {
		t.Errorf("CertifiedAs = %q with empty trust store", res.CertifiedAs)
	}
}

func TestFreshnessExpiryRejected(t *testing.T) {
	w, err := deploy.NewWorld(deploy.Options{TimeScale: 0})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	if _, err := w.StartServer(netsim.AmsterdamPrimary, "srv", nil, nil, server.Limits{}); err != nil {
		t.Fatal(err)
	}
	doc := document.New()
	doc.Put(document.Element{Name: "news.html", Data: []byte("breaking")})
	pub, err := w.Publish(doc, deploy.PublishOptions{Name: "news.nl", TTL: time.Minute, OwnerKey: keytest.RSA()})
	if err != nil {
		t.Fatal(err)
	}
	// Wind the client clock past the certificate TTL: the (genuine)
	// content must be rejected as stale.
	client, err := w.NewSecureClientOpts(netsim.Paris, core.Options{
		Now: func() time.Time { return time.Now().Add(2 * time.Minute) },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)
	_, err = client.Fetch(context.Background(), pub.OID, "news.html")
	if !errors.Is(err, core.ErrSecurityCheckFailed) || !errors.Is(err, cert.ErrFreshness) {
		t.Fatalf("err = %v, want freshness security failure", err)
	}
}

func TestWarmBindingRefreshesExpiredCert(t *testing.T) {
	w, err := deploy.NewWorld(deploy.Options{TimeScale: 0})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	if _, err := w.StartServer(netsim.AmsterdamPrimary, "srv", nil, nil, server.Limits{}); err != nil {
		t.Fatal(err)
	}
	doc := document.New()
	doc.Put(document.Element{Name: "a.html", Data: []byte("v1")})
	pub, err := w.Publish(doc, deploy.PublishOptions{Name: "x.nl", TTL: time.Minute, OwnerKey: keytest.RSA()})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now
	client, err := w.NewSecureClientOpts(netsim.Paris, core.Options{
		CacheBindings: true,
		Now:           func() time.Time { return now() },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)

	if _, err := client.Fetch(context.Background(), pub.OID, "a.html"); err != nil {
		t.Fatal(err)
	}

	// Owner re-issues a fresh certificate dated "later"; the client
	// clock moves past the first certificate's expiry. The warm binding
	// must transparently re-bind rather than fail.
	later := time.Now().Add(10 * time.Minute)
	if err := w.Reissue(pub, time.Hour, later); err != nil {
		t.Fatal(err)
	}
	now = func() time.Time { return later }
	res, err := client.Fetch(context.Background(), pub.OID, "a.html")
	if err != nil {
		t.Fatalf("fetch after reissue: %v", err)
	}
	if res.WarmBinding {
		t.Error("expired-cert fetch should have re-bound cold")
	}
}

func TestTimingPhasesPopulated(t *testing.T) {
	_, _, client := world(t, netsim.Paris)
	res, err := client.FetchNamed(context.Background(), "home.vu.nl", "index.html")
	if err != nil {
		t.Fatal(err)
	}
	tm := res.Timing
	if tm.NameResolve <= 0 || tm.Bind <= 0 || tm.KeyFetch <= 0 || tm.CertFetch <= 0 || tm.ElementFetch <= 0 {
		t.Errorf("missing phases: %+v", tm)
	}
	if tm.Security() >= tm.Total() {
		t.Errorf("Security %v >= Total %v", tm.Security(), tm.Total())
	}
	pct := tm.OverheadPercent()
	if pct <= 0 || pct >= 100 {
		t.Errorf("OverheadPercent = %v", pct)
	}
}

func TestTimingAddScale(t *testing.T) {
	a := core.Timing{KeyFetch: 2 * time.Second, ElementFetch: 4 * time.Second}
	var sum core.Timing
	sum.Add(a)
	sum.Add(a)
	avg := sum.Scale(2)
	if avg.KeyFetch != 2*time.Second || avg.ElementFetch != 4*time.Second {
		t.Errorf("avg = %+v", avg)
	}
	if (core.Timing{}).OverheadPercent() != 0 {
		t.Error("zero timing overhead should be 0")
	}
	if a.Scale(0) != a {
		t.Error("Scale(0) should be identity")
	}
}

func TestNearestReplicaSelected(t *testing.T) {
	w, pub, client := world(t, netsim.Paris)
	// Add a replica at the client's own site; re-binding must pick it.
	if _, err := w.StartServer(netsim.Paris, "srv-paris", nil, nil, server.Limits{}); err != nil {
		t.Fatal(err)
	}
	if err := w.ReplicateTo(pub, netsim.Paris); err != nil {
		t.Fatal(err)
	}
	res, err := client.Fetch(context.Background(), pub.OID, "index.html")
	if err != nil {
		t.Fatal(err)
	}
	if res.ReplicaAddr != "paris:"+deploy.ObjectService {
		t.Errorf("ReplicaAddr = %q, want local paris replica", res.ReplicaAddr)
	}
}

func TestFailoverToFartherReplica(t *testing.T) {
	// Failure injection: the client's nearest replica crashes; binding
	// must fall back to the farther one transparently.
	w, pub, client := world(t, netsim.Paris)
	if _, err := w.StartServer(netsim.Paris, "srv-paris", nil, nil, server.Limits{}); err != nil {
		t.Fatal(err)
	}
	if err := w.ReplicateTo(pub, netsim.Paris); err != nil {
		t.Fatal(err)
	}
	res, err := client.Fetch(context.Background(), pub.OID, "index.html")
	if err != nil {
		t.Fatal(err)
	}
	if res.ReplicaAddr != "paris:"+deploy.ObjectService {
		t.Fatalf("expected local replica first, got %q", res.ReplicaAddr)
	}

	// Sever the path to the local replica's host for new connections by
	// taking the whole paris host down — including the client's own
	// outbound dials? No: only the replica host matters here, and the
	// client IS at paris. Sever the paris->paris local service by
	// closing the server instead.
	w.Servers[netsim.Paris].Close()
	res, err = client.Fetch(context.Background(), pub.OID, "index.html")
	if err != nil {
		t.Fatalf("fetch after local replica crash: %v", err)
	}
	if res.ReplicaAddr != netsim.AmsterdamPrimary+":"+deploy.ObjectService {
		t.Errorf("ReplicaAddr = %q, want amsterdam fallback", res.ReplicaAddr)
	}
}

func TestInfrastructureOutageIsDoSOnly(t *testing.T) {
	// Severing the Ithaca client's link to the primary host cuts both
	// the replica AND the (untrusted) location service. The paper's
	// guarantee is that infrastructure failure or malice is at most
	// denial of service: the fetch fails cleanly, and recovers when the
	// link does — no stale or forged data is ever accepted.
	w, pub, client := world(t, netsim.Ithaca)
	w.Net.SetLinkDown(netsim.Ithaca, netsim.AmsterdamPrimary)
	if _, err := client.Fetch(context.Background(), pub.OID, "index.html"); err == nil {
		t.Fatal("fetch succeeded across a severed link")
	}
	w.Net.SetLinkUp(netsim.Ithaca, netsim.AmsterdamPrimary)
	if _, err := client.Fetch(context.Background(), pub.OID, "index.html"); err != nil {
		t.Fatalf("fetch after link recovery: %v", err)
	}
}

func TestMultipleAlgorithmsInterop(t *testing.T) {
	// Ed25519-keyed object served to a client — exercise the non-default
	// object key algorithm through the whole pipeline.
	w, err := deploy.NewWorld(deploy.Options{TimeScale: 0})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	if _, err := w.StartServer(netsim.AmsterdamPrimary, "srv", nil, nil, server.Limits{}); err != nil {
		t.Fatal(err)
	}
	doc := document.New()
	doc.Put(document.Element{Name: "a", Data: []byte("ed25519 object")})
	pub, err := w.Publish(doc, deploy.PublishOptions{Name: "ed.nl", KeyAlgorithm: keys.Ed25519, OwnerKey: keytest.Ed()})
	if err != nil {
		t.Fatal(err)
	}
	client := w.NewSecureClient(netsim.Ithaca)
	t.Cleanup(client.Close)
	if _, err := client.Fetch(context.Background(), pub.OID, "a"); err != nil {
		t.Fatalf("Fetch: %v", err)
	}
}
