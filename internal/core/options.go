package core

import (
	"errors"
	"fmt"
	"time"

	"globedoc/internal/cert"
	"globedoc/internal/object"
	"globedoc/internal/telemetry"
	"globedoc/internal/transport"
	"globedoc/internal/vcache"
)

// DefaultFetchWorkers is FetchAll's element fan-out when
// Options.FetchWorkers is zero.
const DefaultFetchWorkers = 4

// DefaultMaxBindings bounds the verified-binding cache when
// Options.MaxBindings is zero: enough for every document of the paper's
// testbed workloads, small enough that a many-OID crawl cannot hold a
// connection per object forever.
const DefaultMaxBindings = 256

// ErrInvalidOptions wraps every NewClient validation failure, so callers
// can errors.Is against one sentinel while the message names the exact
// offending field.
var ErrInvalidOptions = errors.New("core: invalid options")

// Options configures a Client at construction. The zero value is valid:
// no identity certification, cold bindings on every fetch, legacy retry
// semantics, default telemetry, the real clock, and default concurrency
// bounds. Zero-valued knobs mean "use the documented default"; negative
// values are rejected by NewClient.
type Options struct {
	// Trust is the user's trusted-CA store; nil disables the identity
	// step entirely.
	Trust *cert.TrustStore
	// RequireIdentity makes fetches fail unless some identity
	// certificate matches the trust store (the e-commerce posture of
	// §3.1.2). When false, identity is best-effort: the subject is
	// reported when available.
	RequireIdentity bool
	// CacheBindings keeps verified bindings warm across fetches; each
	// element access then costs one round trip plus verification.
	// Singleflight deduplication of binding establishment requires it
	// (a shared pipeline run is only useful if its result is shareable).
	CacheBindings bool
	// Retry governs how often an expired cached certificate is
	// refreshed before giving up (the re-bind after a freshness failure
	// on a warm binding). Nil means one refresh attempt, the historical
	// behaviour.
	Retry *transport.RetryPolicy
	// Telemetry receives the pipeline spans, cache/failover counters and
	// latency histograms; nil falls back to telemetry.Default().
	Telemetry *telemetry.Telemetry
	// Now is the clock used for freshness checks; tests replace it.
	// Nil means time.Now.
	Now func() time.Time
	// FetchWorkers bounds how many elements FetchAll retrieves in
	// parallel. 0 means DefaultFetchWorkers; 1 restores the serial
	// behaviour.
	FetchWorkers int
	// PoolSize bounds each replica connection pool (concurrent in-flight
	// RPCs per replica); it is applied to the binder's transport config
	// before any connection is made. 0 keeps the binder's own setting
	// (transport.DefaultMaxConns when that too is zero).
	PoolSize int
	// DisableSingleflight turns off deduplication of concurrent binding
	// establishment, making every cold fetch run its own pipeline — an
	// ablation/debugging knob.
	DisableSingleflight bool
	// DisableBatchFetch makes FetchAll retrieve every element with
	// individual GetElement calls instead of one pipelined GetElements
	// exchange — the serial-RPC ablation the multiplex benchmark compares
	// against. Verification is identical either way.
	DisableBatchFetch bool
	// VCache is the verified-content cache: element bytes reused under
	// their certificate hash and memoized certificate-signature verdicts
	// (DESIGN.md §11). Nil disables both, reproducing the uncached
	// pipeline exactly — the -disable-vcache ablation. A cache may be
	// shared by several clients.
	VCache *vcache.Cache
	// MaxBindings bounds the verified-binding cache; beyond it the
	// least-recently-used binding is evicted and its connection closed.
	// 0 means DefaultMaxBindings. Only meaningful with CacheBindings.
	MaxBindings int
	// Selector is the replica-selection policy: it ranks the location
	// service's candidate addresses before the pipeline tries them, and
	// failover follows its order. Nil means HealthRankedSelector with no
	// zone (rank by measured RTT and failure evidence alone);
	// OrderedSelector restores the pre-selector location-order behaviour.
	Selector Selector
	// TraceSampleRate, when non-nil, configures head-based trace sampling
	// on the client's tracer: the fraction of new traces exported, in
	// [0, 1]. The decision is made once per trace at the root span and
	// propagated with the trace context, so client and server export the
	// same traces; spans recording errors export regardless. Nil leaves
	// the tracer as-is (an unconfigured tracer samples everything).
	TraceSampleRate *float64
}

// validate rejects nonsense configurations with errors that name the
// offending field and wrap ErrInvalidOptions.
func (o Options) validate(binder *object.Binder) error {
	if binder == nil {
		return fmt.Errorf("%w: nil binder", ErrInvalidOptions)
	}
	if o.FetchWorkers < 0 {
		return fmt.Errorf("%w: FetchWorkers %d is negative (0 means the default %d, 1 means serial)",
			ErrInvalidOptions, o.FetchWorkers, DefaultFetchWorkers)
	}
	if o.PoolSize < 0 {
		return fmt.Errorf("%w: PoolSize %d is negative (0 means the default %d)",
			ErrInvalidOptions, o.PoolSize, transport.DefaultMaxConns)
	}
	if o.MaxBindings < 0 {
		return fmt.Errorf("%w: MaxBindings %d is negative (0 means the default %d)",
			ErrInvalidOptions, o.MaxBindings, DefaultMaxBindings)
	}
	if r := o.TraceSampleRate; r != nil && (*r < 0 || *r > 1) {
		return fmt.Errorf("%w: TraceSampleRate %v outside [0, 1] (nil means sample everything)",
			ErrInvalidOptions, *r)
	}
	if binder.Transport.DialTimeout < 0 {
		return fmt.Errorf("%w: binder dial timeout %v is negative (0 means unbounded)",
			ErrInvalidOptions, binder.Transport.DialTimeout)
	}
	if binder.Transport.CallTimeout < 0 {
		return fmt.Errorf("%w: binder call timeout %v is negative (0 means unbounded)",
			ErrInvalidOptions, binder.Transport.CallTimeout)
	}
	if binder.Transport.Pool.MaxConns < 0 {
		return fmt.Errorf("%w: binder pool MaxConns %d is negative (0 means the default %d)",
			ErrInvalidOptions, binder.Transport.Pool.MaxConns, transport.DefaultMaxConns)
	}
	if binder.Transport.Pool.IdleTimeout < 0 {
		return fmt.Errorf("%w: binder pool idle timeout %v is negative (0 disables idle reaping)",
			ErrInvalidOptions, binder.Transport.Pool.IdleTimeout)
	}
	if binder.MaxCandidates < 0 {
		return fmt.Errorf("%w: binder MaxCandidates %d is negative (0 means try all)",
			ErrInvalidOptions, binder.MaxCandidates)
	}
	return nil
}
