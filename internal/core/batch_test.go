package core_test

// Behavioural coverage for FetchAll's batched element prefetch: a
// whole-document download against a batch-capable replica issues exactly
// one GetElements exchange (counted in batch_fetch_total), the
// DisableBatchFetch ablation restores per-element RPCs, and elements
// already held by the verified-content cache are excluded from the batch.

import (
	"context"
	"fmt"
	"testing"

	"globedoc/internal/core"
	"globedoc/internal/deploy"
	"globedoc/internal/document"
	"globedoc/internal/keys/keytest"
	"globedoc/internal/netsim"
	"globedoc/internal/server"
	"globedoc/internal/telemetry"
	"globedoc/internal/vcache"
)

// batchWorld publishes one document with n elements on a single replica
// and returns the world, the publication, and the telemetry sink.
func batchWorld(t *testing.T, n int) (*deploy.World, *deploy.Publication, *telemetry.Telemetry) {
	t.Helper()
	tel := telemetry.New(nil)
	w, err := deploy.NewWorld(deploy.Options{Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	if _, err := w.StartServer(netsim.AmsterdamPrimary, "srv", nil, nil, server.Limits{}); err != nil {
		t.Fatal(err)
	}
	doc := document.New()
	for i := 0; i < n; i++ {
		doc.Put(document.Element{
			Name: fmt.Sprintf("part-%02d.html", i),
			Data: []byte(fmt.Sprintf("<p>element %d</p>", i)),
		})
	}
	pub, err := w.Publish(doc, deploy.PublishOptions{
		Name:     "batch.vu.nl",
		OwnerKey: keytest.RSA(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, pub, tel
}

func TestFetchAllUsesOneBatchExchange(t *testing.T) {
	const n = 8
	w, pub, tel := batchWorld(t, n)
	client, err := w.NewSecureClientOpts(netsim.Paris, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)

	results, err := client.FetchAll(context.Background(), pub.OID)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("FetchAll returned %d elements, want %d", len(results), n)
	}
	for i, res := range results {
		want := fmt.Sprintf("<p>element %d</p>", i)
		if string(res.Element.Data) != want {
			t.Fatalf("element %d = %q, want %q (certificate order)", i, res.Element.Data, want)
		}
		if res.Timing.ElementFetch <= 0 {
			t.Errorf("element %d has no ElementFetch time (batch share must be credited)", i)
		}
	}
	if got := tel.BatchFetches.Value(); got != 1 {
		t.Errorf("batch_fetch_total = %d, want 1 (one exchange for the whole document)", got)
	}
	if got := tel.BatchElements.Value(); got != n {
		t.Errorf("batch_fetch_elements_total = %d, want %d", got, n)
	}
}

func TestFetchAllDisableBatchFetchAblation(t *testing.T) {
	const n = 6
	w, pub, tel := batchWorld(t, n)
	client, err := w.NewSecureClientOpts(netsim.Paris, core.Options{DisableBatchFetch: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)

	results, err := client.FetchAll(context.Background(), pub.OID)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("FetchAll returned %d elements, want %d", len(results), n)
	}
	if got := tel.BatchFetches.Value(); got != 0 {
		t.Errorf("batch_fetch_total = %d with DisableBatchFetch, want 0", got)
	}
}

func TestFetchAllBatchSkipsContentCachedElements(t *testing.T) {
	const n = 5
	w, pub, tel := batchWorld(t, n)
	vc := vcache.New(vcache.Config{})
	client, err := w.NewSecureClientOpts(netsim.Paris, core.Options{
		CacheBindings: true,
		VCache:        vc,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)

	if _, err := client.FetchAll(context.Background(), pub.OID); err != nil {
		t.Fatal(err)
	}
	if got := tel.BatchElements.Value(); got != n {
		t.Fatalf("cold download batched %d elements, want %d", got, n)
	}
	// Second download: every element's bytes are in the verified-content
	// cache, so no batch (nor any element RPC) is needed.
	results, err := client.FetchAll(context.Background(), pub.OID)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if !res.FromCache {
			t.Errorf("element %d not served from the content cache on the warm pass", i)
		}
	}
	if got := tel.BatchElements.Value(); got != n {
		t.Errorf("warm download moved batch elements: batch_fetch_elements_total = %d, want still %d", got, n)
	}
}
