package core_test

// Regression coverage for the warm-binding certificate-refresh path: the
// refresh now runs through transport.RetryPolicy instead of one-off
// recursion, so a cached certificate that is stale AND whose refreshed
// replacement is also stale must fail cleanly and promptly — bounded
// attempts, no hang, no unbounded recursion.

import (
	"context"
	"errors"
	"testing"
	"time"

	"globedoc/internal/cert"
	"globedoc/internal/core"
	"globedoc/internal/deploy"
	"globedoc/internal/document"
	"globedoc/internal/keys/keytest"
	"globedoc/internal/netsim"
	"globedoc/internal/server"
	"globedoc/internal/transport"
)

// staleWorld publishes a one-minute-TTL document, warms a binding and
// moves the client clock past expiry WITHOUT reissuing — so the cached
// certificate is stale and every refreshed copy the server can offer is
// equally stale.
func staleWorld(t *testing.T, retry *transport.RetryPolicy) (*deploy.World, *core.Client) {
	t.Helper()
	w, err := deploy.NewWorld(deploy.Options{TimeScale: 0})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	if _, err := w.StartServer(netsim.AmsterdamPrimary, "srv", nil, nil, server.Limits{}); err != nil {
		t.Fatal(err)
	}
	doc := document.New()
	doc.Put(document.Element{Name: "a.html", Data: []byte("v1")})
	pub, err := w.Publish(doc, deploy.PublishOptions{Name: "x.nl", TTL: time.Minute, OwnerKey: keytest.RSA()})
	if err != nil {
		t.Fatal(err)
	}
	later := time.Now().Add(10 * time.Minute)
	warmed := false
	client, err := w.NewSecureClientOpts(netsim.Paris, core.Options{
		CacheBindings: true,
		Retry:         retry,
		Now: func() time.Time {
			if warmed {
				return later
			}
			return time.Now()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)

	if _, err := client.Fetch(context.Background(), pub.OID, "a.html"); err != nil {
		t.Fatal(err)
	}
	warmed = true
	return w, client
}

func TestDoubleStaleCertificateFailsCleanly(t *testing.T) {
	w, client := staleWorld(t, nil)
	pubOID := w.Servers[netsim.AmsterdamPrimary].Hosted()[0]

	before := w.Servers[netsim.AmsterdamPrimary].Stats().CertFetches
	start := time.Now()
	_, err := client.Fetch(context.Background(), pubOID, "a.html")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("fetch succeeded with a doubly-stale certificate")
	}
	if !errors.Is(err, core.ErrSecurityCheckFailed) {
		t.Errorf("err = %v, want ErrSecurityCheckFailed", err)
	}
	if !errors.Is(err, cert.ErrFreshness) {
		t.Errorf("err = %v, want a freshness failure", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("doubly-stale fetch took %v; must fail promptly", elapsed)
	}
	// The refresh is Permanent-wrapped on security failure, so the
	// policy must not spin: a handful of certificate fetches, not a
	// retry storm.
	after := w.Servers[netsim.AmsterdamPrimary].Stats().CertFetches
	if refetches := after - before; refetches > 3 {
		t.Errorf("server saw %d certificate refetches, want <= 3", refetches)
	}
}

func TestDoubleStaleStopsEvenWithAggressiveRetryPolicy(t *testing.T) {
	// A generous retry budget must not matter: security failures are
	// permanent, so the refresh loop stops after the first refreshed
	// certificate also fails freshness.
	policy := &transport.RetryPolicy{MaxAttempts: 10}
	w, client := staleWorld(t, policy)
	pubOID := w.Servers[netsim.AmsterdamPrimary].Hosted()[0]

	before := w.Servers[netsim.AmsterdamPrimary].Stats().CertFetches
	_, err := client.Fetch(context.Background(), pubOID, "a.html")
	if err == nil {
		t.Fatal("fetch succeeded with a doubly-stale certificate")
	}
	if !errors.Is(err, core.ErrSecurityCheckFailed) {
		t.Errorf("err = %v, want ErrSecurityCheckFailed", err)
	}
	after := w.Servers[netsim.AmsterdamPrimary].Stats().CertFetches
	if refetches := after - before; refetches > 3 {
		t.Errorf("server saw %d certificate refetches despite permanent failure, want <= 3", refetches)
	}
}

func TestWarmRefreshRetriesThroughPolicyOnDeadReplica(t *testing.T) {
	// After the binding is warmed, the whole network goes dark. The
	// refresh path must exhaust its retry policy against the dead
	// replica and return a transport error — bounded, not hanging.
	policy := &transport.RetryPolicy{MaxAttempts: 3}
	w, client := staleWorld(t, policy)
	pubOID := w.Servers[netsim.AmsterdamPrimary].Hosted()[0]

	w.Net.SetHostDown(netsim.AmsterdamPrimary)
	start := time.Now()
	_, err := client.Fetch(context.Background(), pubOID, "a.html")
	if err == nil {
		t.Fatal("fetch succeeded against a dead replica")
	}
	if errors.Is(err, core.ErrSecurityCheckFailed) {
		t.Errorf("dead replica misreported as security failure: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("dead-replica fetch took %v; must fail promptly", elapsed)
	}
}
