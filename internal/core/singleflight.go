package core

import (
	"context"
	"time"

	"globedoc/internal/globeid"
)

// StepBindingFlight is the pipeline span recorded when a fetch joins an
// in-flight binding establishment for the same OID instead of running
// its own pipeline. Its duration is credited to Timing.Bind.
const StepBindingFlight = "binding.singleflight"

// flight is one in-progress binding establishment that concurrent
// fetches of the same OID can attach to. The leader fills vb/err and
// closes done; followers wait on done (or their own ctx).
type flight struct {
	done chan struct{}
	vb   *verifiedBinding
	err  error
}

// establishBinding returns a verified binding for oid, deduplicating
// concurrent establishment: when binding caching is on and another fetch
// is already running the pipeline for oid, this fetch waits for that run
// and shares its verified result instead of repeating the RPC-and-verify
// steps (counted in binding_singleflight_shared_total). shared reports
// that this caller joined another run — or lost a benign race and found
// the binding freshly cached. Failover re-binds (excluded != nil) bypass
// deduplication: they must re-verify against a different replica, and
// sharing a possibly-tainted run would defeat that.
func (c *Client) establishBinding(ctx context.Context, p *pipeline, oid globeid.OID, now time.Time, excluded map[string]bool) (vb *verifiedBinding, shared bool, err error) {
	if !c.cacheBindings || c.noSingleflight || excluded != nil {
		vb, err = c.establish(ctx, p, oid, now, excluded)
		if err != nil {
			return nil, false, err
		}
		if c.cacheBindings {
			c.storeBinding(oid, vb)
		}
		return vb, false, nil
	}

	c.mu.Lock()
	if vb, ok := c.lookupBindingLocked(oid); ok {
		// Another fetch finished establishing between this one's cache
		// miss and now; its verified binding is as good as ours would be.
		c.mu.Unlock()
		c.tel().SingleflightShared.Inc()
		return vb, true, nil
	}
	if f, ok := c.flights[oid]; ok {
		c.mu.Unlock()
		return c.joinFlight(ctx, p, f)
	}
	f := &flight{done: make(chan struct{})}
	c.flights[oid] = f
	c.mu.Unlock()

	vb, err = c.establish(ctx, p, oid, now, nil)
	f.vb, f.err = vb, err
	c.mu.Lock()
	if err == nil {
		c.storeBindingLocked(oid, vb)
	}
	delete(c.flights, oid)
	c.mu.Unlock()
	close(f.done)
	if err != nil {
		return nil, false, err
	}
	return vb, false, nil
}

// joinFlight waits for the leader's pipeline run under a
// binding.singleflight span, sharing the leader's outcome — including
// its error, exactly as if this caller had run the pipeline itself.
func (c *Client) joinFlight(ctx context.Context, p *pipeline, f *flight) (*verifiedBinding, bool, error) {
	var vb *verifiedBinding
	err := p.step(StepBindingFlight, &p.timing.Bind, func() error {
		select {
		case <-f.done:
		case <-ctx.Done():
			return ctx.Err()
		}
		if f.err != nil {
			return f.err
		}
		vb = f.vb
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	c.tel().SingleflightShared.Inc()
	return vb, true, nil
}
