package core_test

// Race-detector coverage for the concurrent fetch engine: many
// goroutines sharing one secure client across cold, warm and failover
// fetches, with singleflight deduplication asserted through the
// telemetry counters and binding lifetimes asserted through the
// connection-pool gauge. Run with -race (make check does).

import (
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"globedoc/internal/core"
	"globedoc/internal/deploy"
	"globedoc/internal/document"
	"globedoc/internal/keys/keytest"
	"globedoc/internal/netsim"
	"globedoc/internal/server"
	"globedoc/internal/telemetry"
	"globedoc/internal/transport"
	"globedoc/internal/workload"
)

// concurrentWorld publishes one two-element document with replicas at
// amsterdam-primary and paris, with tight transport deadlines and a
// retry policy so injected faults cost retries, not hangs.
func concurrentWorld(t *testing.T) (*deploy.World, *deploy.Publication, *telemetry.Telemetry) {
	t.Helper()
	tel := telemetry.New(nil)
	w, err := deploy.NewWorld(deploy.Options{
		TimeScale: 0,
		Client: transport.Config{
			DialTimeout: 300 * time.Millisecond,
			CallTimeout: 300 * time.Millisecond,
			Retry: &transport.RetryPolicy{
				MaxAttempts: 4,
				BaseDelay:   time.Millisecond,
				MaxDelay:    20 * time.Millisecond,
				Multiplier:  2,
				Jitter:      0.5,
			},
		},
		Telemetry: tel,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	for _, site := range []string{netsim.AmsterdamPrimary, netsim.Paris} {
		if _, err := w.StartServer(site, "srv-"+site, nil, nil, server.Limits{}); err != nil {
			t.Fatal(err)
		}
	}
	doc := document.New()
	doc.Put(document.Element{Name: "index.html", ContentType: "text/html",
		Data: []byte("<html>concurrent home</html>")})
	doc.Put(document.Element{Name: "data.bin", Data: []byte("0123456789abcdef")})
	pub, err := w.Publish(doc, deploy.PublishOptions{
		Name:     "concurrent.vu.nl",
		OwnerKey: keytest.RSA(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ReplicateTo(pub, netsim.Paris); err != nil {
		t.Fatal(err)
	}
	return w, pub, tel
}

func TestConcurrentColdBurstSingleflight(t *testing.T) {
	w, pub, tel := concurrentWorld(t)
	client, err := w.NewSecureClientOpts(netsim.Paris, core.Options{
		CacheBindings: true,
		PoolSize:      16,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)

	runsBefore := tel.PipelineRuns.Value()
	const workers = 16
	var wg sync.WaitGroup
	results := make([]core.FetchResult, workers)
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = client.Fetch(context.Background(), pub.OID, "index.html")
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		if string(results[i].Element.Data) != "<html>concurrent home</html>" {
			t.Fatalf("worker %d got %q", i, results[i].Element.Data)
		}
	}
	if runs := tel.PipelineRuns.Value() - runsBefore; runs != 1 {
		t.Errorf("cold burst ran %d binding pipelines, want exactly 1 (singleflight)", runs)
	}
	if shared := tel.SingleflightShared.Value(); shared != workers-1 {
		t.Errorf("binding_singleflight_shared_total = %d, want %d", shared, workers-1)
	}
	// Every worker but the pipeline leader must report a shared or warm
	// binding; the leader reports a cold one.
	cold := 0
	for _, res := range results {
		if !res.SharedBinding && !res.WarmBinding {
			cold++
		}
	}
	if cold != 1 {
		t.Errorf("%d workers report a cold unshared binding, want exactly 1 (the leader)", cold)
	}
}

func TestDisableSingleflightRunsEveryPipeline(t *testing.T) {
	w, pub, tel := concurrentWorld(t)
	client, err := w.NewSecureClientOpts(netsim.Paris, core.Options{
		CacheBindings:       true,
		PoolSize:            8,
		DisableSingleflight: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)

	// Without dedup, racing cold fetches each run their own pipeline
	// (>1; the exact count depends on interleaving with the cache, so
	// the burst starts behind a barrier and retries on the unlucky
	// schedule where one fetch finishes before another starts).
	const workers = 8
	for attempt := 0; attempt < 5; attempt++ {
		client.FlushBindings()
		runsBefore := tel.PipelineRuns.Value()
		start := make(chan struct{})
		var ready, wg sync.WaitGroup
		for i := 0; i < workers; i++ {
			ready.Add(1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				ready.Done()
				<-start
				if _, err := client.Fetch(context.Background(), pub.OID, "index.html"); err != nil {
					t.Error(err)
				}
			}()
		}
		ready.Wait()
		close(start)
		wg.Wait()
		if t.Failed() {
			return
		}
		if runs := tel.PipelineRuns.Value() - runsBefore; runs >= 2 {
			return
		}
	}
	t.Error("DisableSingleflight cold bursts never ran >1 pipeline across 5 attempts")
}

func TestConcurrentFetchColdWarmFailoverUnderFaults(t *testing.T) {
	// Eight goroutines share a client across cold fetches (periodic
	// flushes), warm fetches, and a mid-run replica crash forcing
	// failover — all under seeded link faults. The invariant is safety
	// and liveness, race-clean: every fetch either succeeds with the
	// published bytes or fails cleanly, and after the crash fetches
	// recover via the surviving replica.
	w, pub, _ := concurrentWorld(t)
	w.Net.SetFaultSeed(20050404)
	lossy := netsim.FaultPlan{DropProb: 0.05, StallProb: 0.05, Stall: 50 * time.Millisecond}
	w.Net.SetFaults(netsim.Paris, netsim.Paris, lossy)
	w.Net.SetFaults(netsim.Paris, netsim.AmsterdamPrimary, lossy)

	client, err := w.NewSecureClientOpts(netsim.Paris, core.Options{
		CacheBindings: true,
		PoolSize:      8,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)

	const workers = 8
	const rounds = 12
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if worker == 0 && r == rounds/3 {
					// One worker flushes mid-run: later fetches re-bind
					// cold while others may still be warm.
					client.FlushBindings()
				}
				if worker == 1 && r == rounds/2 {
					// The nearest replica crashes mid-run.
					w.Servers[netsim.Paris].Close()
				}
				element := "index.html"
				if r%2 == 1 {
					element = "data.bin"
				}
				res, err := client.Fetch(context.Background(), pub.OID, element)
				if err != nil {
					// Faults can exhaust retries; that is a clean DoS,
					// not a correctness failure.
					continue
				}
				want, derr := pub.Doc.Get(element)
				if derr != nil {
					t.Errorf("published doc lost %q: %v", element, derr)
					return
				}
				if string(res.Element.Data) != string(want.Data) {
					t.Errorf("worker %d round %d: got %q, want %q",
						worker, r, res.Element.Data, want.Data)
					return
				}
			}
		}(i)
	}
	wg.Wait()

	// Liveness after the crash: with faults cleared, a fetch must
	// succeed via the surviving amsterdam replica.
	w.Net.SetFaults(netsim.Paris, netsim.Paris, netsim.FaultPlan{})
	w.Net.SetFaults(netsim.Paris, netsim.AmsterdamPrimary, netsim.FaultPlan{})
	client.FlushBindings()
	res, err := client.Fetch(context.Background(), pub.OID, "index.html")
	if err != nil {
		t.Fatalf("fetch after replica crash and fault clearing: %v", err)
	}
	if res.ReplicaAddr != netsim.AmsterdamPrimary+":"+deploy.ObjectService {
		t.Errorf("ReplicaAddr = %q, want surviving amsterdam replica", res.ReplicaAddr)
	}
}

func TestConcurrentFetchAllSharedBinding(t *testing.T) {
	// FetchAll from many goroutines at once: element fan-out inside each
	// call, singleflight across calls, one pipeline total.
	w, pub, tel := concurrentWorld(t)
	client, err := w.NewSecureClientOpts(netsim.Paris, core.Options{
		CacheBindings: true,
		PoolSize:      16,
		FetchWorkers:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)

	runsBefore := tel.PipelineRuns.Value()
	const workers = 6
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			results, err := client.FetchAll(context.Background(), pub.OID)
			if err != nil {
				t.Error(err)
				return
			}
			if len(results) != 2 {
				t.Errorf("FetchAll returned %d elements, want 2", len(results))
			}
		}()
	}
	wg.Wait()
	if runs := tel.PipelineRuns.Value() - runsBefore; runs != 1 {
		t.Errorf("concurrent FetchAll ran %d pipelines, want 1", runs)
	}
}

func TestClosedLoopDriverAgainstWorld(t *testing.T) {
	// The benchmark's closed-loop driver against a real deployment:
	// counts must add up and the client must stay race-clean.
	w, pub, _ := concurrentWorld(t)
	client, err := w.NewSecureClientOpts(netsim.Paris, core.Options{
		CacheBindings: true,
		PoolSize:      4,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)

	res := workload.RunClosedLoop(context.Background(), 4, 40,
		func(ctx context.Context, _, _ int) error {
			_, err := client.Fetch(ctx, pub.OID, "index.html")
			return err
		})
	if res.FirstError != nil {
		t.Fatalf("closed loop error: %v", res.FirstError)
	}
	if res.Ops != 40 || res.Errors != 0 {
		t.Errorf("ops = %d errors = %d, want 40/0", res.Ops, res.Errors)
	}
	if res.Latency.N != 40 || res.Latency.Max < res.Latency.P50 {
		t.Errorf("latency stats inconsistent: %+v", res.Latency)
	}
}

func TestNoConnectionLeakOnColdFetch(t *testing.T) {
	// A non-caching client owns its binding per fetch: after each fetch
	// (success or failure) and Close, no pooled connection may survive.
	w, pub, _ := concurrentWorld(t)
	// A dedicated telemetry on the binder's transport config isolates
	// the pool gauge to this client's replica connections.
	tel := telemetry.New(nil)
	binder := w.NewBinder(netsim.Paris)
	binder.Transport.Telemetry = tel
	client, err := core.NewClient(binder, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := client.Fetch(context.Background(), pub.OID, "index.html"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Fetch(context.Background(), pub.OID, "no-such-element"); err == nil {
		t.Fatal("fetch of missing element succeeded")
	}
	if _, err := client.FetchAll(context.Background(), pub.OID); err != nil {
		t.Fatal(err)
	}
	client.Close()
	if conns := tel.PoolConns.Value(); conns != 0 {
		t.Errorf("transport_pool_conns = %d after cold fetches and Close, want 0 (binding leak)", conns)
	}
}

func TestNoConnectionLeakOnWarmRefresh(t *testing.T) {
	// The warm-refresh path (expired cached certificate) historically
	// leaked the replaced binding's connection. Fetch warm, expire the
	// certificate, refresh, then Close: the gauge must return to zero.
	w, err := deploy.NewWorld(deploy.Options{TimeScale: 0})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	tel := telemetry.New(nil)
	if _, err := w.StartServer(netsim.AmsterdamPrimary, "srv", nil, nil, server.Limits{}); err != nil {
		t.Fatal(err)
	}
	doc := document.New()
	doc.Put(document.Element{Name: "a.html", Data: []byte("v1")})
	pub, err := w.Publish(doc, deploy.PublishOptions{Name: "leak.nl", TTL: time.Minute, OwnerKey: keytest.RSA()})
	if err != nil {
		t.Fatal(err)
	}
	later := time.Now().Add(10 * time.Minute)
	warmed := false
	binder := w.NewBinder(netsim.Paris)
	binder.Transport.Telemetry = tel
	client, err := core.NewClient(binder, core.Options{
		CacheBindings: true,
		Now: func() time.Time {
			if warmed {
				return later
			}
			return time.Now()
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := client.Fetch(context.Background(), pub.OID, "a.html"); err != nil {
		t.Fatal(err)
	}
	if err := w.Reissue(pub, time.Hour, later); err != nil {
		t.Fatal(err)
	}
	warmed = true
	// The cached certificate is now expired; this fetch re-binds and
	// must close the stale binding it replaces.
	if _, err := client.Fetch(context.Background(), pub.OID, "a.html"); err != nil {
		t.Fatalf("fetch after reissue: %v", err)
	}
	client.Close()
	if conns := tel.PoolConns.Value(); conns != 0 {
		t.Errorf("transport_pool_conns = %d after warm refresh and Close, want 0 (binding leak)", conns)
	}
}

func TestFetchContextCancellationPropagates(t *testing.T) {
	// A cancelled context must abort an in-flight fetch promptly and
	// surface context.Canceled through the API. The replica dial blocks
	// until the test releases it, and the binder carries no dial or call
	// timeouts and no retry policy — the only thing that can unblock the
	// fetch is the context reaching the transport layer.
	w, pub, _ := concurrentWorld(t)

	hang := make(chan struct{})
	t.Cleanup(func() { close(hang) })
	binder := w.NewBinder(netsim.Paris)
	binder.Transport = transport.Config{}
	binder.Dial = func(addr string) transport.DialFunc {
		return func() (net.Conn, error) {
			<-hang
			return nil, errors.New("dial released by test cleanup")
		}
	}
	client, err := core.NewClient(binder, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := client.Fetch(ctx, pub.OID, "index.html")
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled fetch returned %v, want context.Canceled", err)
		}
		if !errors.Is(err, core.ErrBindingFailed) {
			t.Errorf("cancelled fetch returned %v, want core.ErrBindingFailed wrapping", err)
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			// The dial blocks forever; returning well before the test
			// timeout proves cancellation interrupted it.
			t.Errorf("cancelled fetch took %v, want prompt abort", elapsed)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled fetch never returned")
	}
}
