package core_test

import (
	"math"
	"testing"
	"time"

	"globedoc/internal/core"
)

func fullTiming(unit time.Duration) core.Timing {
	return core.Timing{
		NameResolve:    1 * unit,
		Bind:           2 * unit,
		KeyFetch:       3 * unit,
		KeyVerify:      4 * unit,
		NameCertFetch:  5 * unit,
		NameCertVerify: 6 * unit,
		CertFetch:      7 * unit,
		CertVerify:     8 * unit,
		ElementFetch:   9 * unit,
		ElementVerify:  10 * unit,
	}
}

func TestTimingSecurityAndTotal(t *testing.T) {
	tm := fullTiming(time.Millisecond)
	// Security = KeyFetch+KeyVerify+NameCertFetch+NameCertVerify+
	// CertFetch+CertVerify+ElementVerify = 3+4+5+6+7+8+10 = 43ms.
	if got, want := tm.Security(), 43*time.Millisecond; got != want {
		t.Errorf("Security = %v, want %v", got, want)
	}
	// Total adds NameResolve+Bind+ElementFetch = 1+2+9 on top: 55ms.
	if got, want := tm.Total(), 55*time.Millisecond; got != want {
		t.Errorf("Total = %v, want %v", got, want)
	}
}

func TestTimingOverheadPercent(t *testing.T) {
	tm := fullTiming(time.Millisecond)
	want := 100 * 43.0 / 55.0
	if got := tm.OverheadPercent(); math.Abs(got-want) > 1e-9 {
		t.Errorf("OverheadPercent = %v, want %v", got, want)
	}
}

func TestTimingOverheadPercentZeroTotal(t *testing.T) {
	var zero core.Timing
	if got := zero.OverheadPercent(); got != 0 {
		t.Errorf("zero Timing OverheadPercent = %v, want 0 (not NaN)", got)
	}
	if math.IsNaN(zero.OverheadPercent()) {
		t.Error("zero Timing OverheadPercent is NaN")
	}
}

func TestTimingAddAccumulatesEveryField(t *testing.T) {
	var sum core.Timing
	sum.Add(fullTiming(time.Millisecond))
	sum.Add(fullTiming(2 * time.Millisecond))
	want := fullTiming(3 * time.Millisecond)
	if sum != want {
		t.Errorf("Add missed a field:\n got %+v\nwant %+v", sum, want)
	}
}

func TestTimingScale(t *testing.T) {
	tm := fullTiming(6 * time.Millisecond)
	if got, want := tm.Scale(3), fullTiming(2*time.Millisecond); got != want {
		t.Errorf("Scale(3):\n got %+v\nwant %+v", got, want)
	}
	// Non-positive n returns the input unchanged rather than dividing by
	// zero.
	if got := tm.Scale(0); got != tm {
		t.Errorf("Scale(0) = %+v, want input unchanged", got)
	}
	if got := tm.Scale(-2); got != tm {
		t.Errorf("Scale(-2) = %+v, want input unchanged", got)
	}
}

func TestTimingAddScaleRoundTrip(t *testing.T) {
	// The benchmark harness averages with Add then Scale(n); that must
	// reproduce the mean of identical samples exactly.
	var sum core.Timing
	one := fullTiming(time.Millisecond)
	for i := 0; i < 5; i++ {
		sum.Add(one)
	}
	if got := sum.Scale(5); got != one {
		t.Errorf("mean of 5 identical samples:\n got %+v\nwant %+v", got, one)
	}
}
