package core

import (
	"testing"
	"time"

	"globedoc/internal/location"
	"globedoc/internal/telemetry"
)

func cand(addr, zone string, weight uint32) location.ContactAddress {
	return location.ContactAddress{Address: addr, Protocol: "globedoc", Zone: zone, Weight: weight}
}

func addrsOf(cas []location.ContactAddress) []string {
	out := make([]string, len(cas))
	for i, ca := range cas {
		out[i] = ca.Address
	}
	return out
}

func wantOrder(t *testing.T, got []location.ContactAddress, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("ranked %v, want %v", addrsOf(got), want)
	}
	for i := range want {
		if got[i].Address != want[i] {
			t.Fatalf("ranked %v, want %v", addrsOf(got), want)
		}
	}
}

func TestOrderedSelectorIsIdentity(t *testing.T) {
	cands := []location.ContactAddress{cand("b:1", "", 0), cand("a:1", "", 9)}
	h := telemetry.NewHealthTracker(nil)
	h.RecordFailure("b:1")
	got := OrderedSelector{}.Rank(cands, h)
	wantOrder(t, got, "b:1", "a:1")
	if name := (OrderedSelector{}).Name(); name != "ordered" {
		t.Errorf("Name = %q", name)
	}
}

func TestHealthRankedPreservesOrderWithoutSignals(t *testing.T) {
	// No health data, no zone metadata: the location service's
	// nearest-first order must survive untouched.
	cands := []location.ContactAddress{cand("near:1", "", 0), cand("mid:1", "", 0), cand("far:1", "", 0)}
	got := HealthRankedSelector{}.Rank(cands, nil)
	wantOrder(t, got, "near:1", "mid:1", "far:1")
}

func TestHealthRankedDemotesFailing(t *testing.T) {
	// PR-7 semantics preserved: with no RTT or zone signal, failure
	// evidence alone sinks the near-but-broken replica.
	h := telemetry.NewHealthTracker(nil)
	h.RecordFailure("near:1")
	h.RecordFailure("near:1")
	cands := []location.ContactAddress{cand("near:1", "", 0), cand("far:1", "", 0)}
	got := HealthRankedSelector{}.Rank(cands, h)
	wantOrder(t, got, "far:1", "near:1")
}

func TestHealthRankedPrefersMeasuredFastReplica(t *testing.T) {
	// Both measured: the location order put slow first, but measured RTT
	// overrides distance order.
	h := telemetry.NewHealthTracker(nil)
	h.RecordSuccess("slow:1", 120*time.Millisecond)
	h.RecordSuccess("fast:1", 10*time.Millisecond)
	cands := []location.ContactAddress{cand("slow:1", "", 0), cand("fast:1", "", 0)}
	got := HealthRankedSelector{}.Rank(cands, h)
	wantOrder(t, got, "fast:1", "slow:1")
}

func TestHealthRankedZonePriors(t *testing.T) {
	// Unmeasured candidates: the client-zone prior beats the foreign-zone
	// prior even though the location service listed the foreign zone first.
	cands := []location.ContactAddress{
		cand("asia:1", "asia", 0),
		cand("home:1", "europe", 0),
	}
	got := HealthRankedSelector{Zone: "europe"}.Rank(cands, nil)
	wantOrder(t, got, "home:1", "asia:1")

	// Without a client zone the priors collapse and location order stands.
	got = HealthRankedSelector{}.Rank(cands, nil)
	wantOrder(t, got, "asia:1", "home:1")
}

func TestHealthRankedDistanceOrderOptimism(t *testing.T) {
	// A brand-new unmeasured replica that the location service ranks
	// nearer than a well-measured far one must still be tried first: its
	// prior is capped at the far one's measured RTT, and the stable sort
	// keeps location order on the tie.
	h := telemetry.NewHealthTracker(nil)
	h.RecordSuccess("far:1", 2*time.Millisecond) // fast in absolute terms
	cands := []location.ContactAddress{cand("new-near:1", "europe", 0), cand("far:1", "europe", 0)}
	got := HealthRankedSelector{Zone: "europe"}.Rank(cands, h)
	wantOrder(t, got, "new-near:1", "far:1")
}

func TestHealthRankedWeightBreaksTies(t *testing.T) {
	cands := []location.ContactAddress{
		cand("light:1", "europe", 1),
		cand("heavy:1", "europe", 8),
	}
	got := HealthRankedSelector{Zone: "europe"}.Rank(cands, nil)
	wantOrder(t, got, "heavy:1", "light:1")
}

func TestHealthRankedDoesNotMutateInput(t *testing.T) {
	h := telemetry.NewHealthTracker(nil)
	h.RecordFailure("a:1")
	cands := []location.ContactAddress{cand("a:1", "", 0), cand("b:1", "", 0)}
	got := HealthRankedSelector{}.Rank(cands, h)
	wantOrder(t, got, "b:1", "a:1")
	if cands[0].Address != "a:1" || cands[1].Address != "b:1" {
		t.Errorf("input mutated: %v", addrsOf(cands))
	}
}

func TestHealthRankedSingleCandidate(t *testing.T) {
	cands := []location.ContactAddress{cand("only:1", "", 0)}
	got := HealthRankedSelector{}.Rank(cands, nil)
	wantOrder(t, got, "only:1")
}

func TestDefaultSelectorIsHealthRanked(t *testing.T) {
	var opts Options
	if opts.Selector != nil {
		t.Fatal("zero Options should leave Selector nil")
	}
	// NewClient substitutes the default; verified via the exported name
	// the telemetry ranking records (see establish). Construct directly:
	sel := Selector(HealthRankedSelector{})
	if sel.Name() != "health-ranked" {
		t.Errorf("Name = %q", sel.Name())
	}
}
