// Package core implements the GlobeDoc security architecture — the
// paper's primary contribution (§3): end-to-end integrity guarantees for
// Web documents replicated on untrusted servers.
//
// The exported Client runs the complete secure-browsing pipeline of
// Figure 3 for every fetch:
//
//  1. resolve the object name to a self-certifying OID (secure naming
//     service);
//  2. find the closest replica (untrusted location service);
//  3. retrieve the object's public key from the replica and check
//     SHA-1(key) == OID — self-certification, no CA involved;
//  4. optionally retrieve CA-signed identity certificates and match
//     them against the user's trusted-CA list ("Certified as: ...");
//  5. retrieve the integrity certificate and verify its signature
//     under the object key;
//  6. retrieve the requested page element;
//  7. verify authenticity (hash), consistency (requested name) and
//     freshness (validity interval).
//
// Every fetch is traced as one span tree: a root fetch.secure span with
// one child per pipeline step (the 14 steps of PipelineSteps; DESIGN.md
// §8 maps them to the paper's Figure 3). The per-phase Timing the
// benchmark harness reads is derived from those spans' durations, so the
// tracer and the Figure-4 numbers can never disagree.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"globedoc/internal/cert"
	"globedoc/internal/document"
	"globedoc/internal/globeid"
	"globedoc/internal/keys"
	"globedoc/internal/location"
	"globedoc/internal/object"
	"globedoc/internal/telemetry"
	"globedoc/internal/transport"
)

// Root span names for the operations this client runs.
const (
	SpanSecureFetch = "fetch.secure"   // one FetchNamed/Fetch
	SpanFetchAll    = "fetch.all"      // whole-object download
	SpanElements    = "fetch.elements" // verified table of contents
)

// Span names for the secure-binding pipeline steps (paper §3.2, Fig. 3).
// A cold, identity-checking fetch runs all fourteen; a warm fetch skips
// steps 3–10 (that is the point of the verified-binding cache).
const (
	StepNameResolve        = "name.resolve"                // 1: hybrid name -> OID
	StepBindingCache       = "binding.cache"               // 2: verified-binding cache consult
	StepLocationLookup     = "location.lookup"             // 3: OID -> contact addresses
	StepDial               = "replica.dial"                // 4: connect + liveness ping
	StepKeyFetch           = "key.fetch"                   // 5: retrieve object public key
	StepKeyVerify          = "key.verify"                  // 6: SHA-1(key) == OID
	StepNameCertFetch      = "namecert.fetch"              // 7: retrieve identity certificates
	StepNameCertVerify     = "namecert.verify"             // 8: match against trusted CAs
	StepCertFetch          = "icert.fetch"                 // 9: retrieve integrity certificate
	StepCertVerify         = "icert.verify"                // 10: verify signature under object key
	StepElementFetch       = "element.fetch"               // 11: content transfer
	StepVerifyConsistency  = "element.verify.consistency"  // 12: entry matches requested name
	StepVerifyAuthenticity = "element.verify.authenticity" // 13: SHA-1(content) == entry hash
	StepVerifyFreshness    = "element.verify.freshness"    // 14: validity interval covers now
)

// PipelineSteps lists the 14 binding-pipeline step span names in
// execution order.
var PipelineSteps = []string{
	StepNameResolve,
	StepBindingCache,
	StepLocationLookup,
	StepDial,
	StepKeyFetch,
	StepKeyVerify,
	StepNameCertFetch,
	StepNameCertVerify,
	StepCertFetch,
	StepCertVerify,
	StepElementFetch,
	StepVerifyConsistency,
	StepVerifyAuthenticity,
	StepVerifyFreshness,
}

// ErrSecurityCheckFailed wraps every verification failure: whatever the
// replica or the intermediate services did, the client refused the data.
// The paper's proxy renders this as the "Security Check Failed" page.
var ErrSecurityCheckFailed = errors.New("core: security check failed")

// SecurityError carries which phase of the pipeline rejected the fetch.
type SecurityError struct {
	Phase string // e.g. "self-certification", "integrity-certificate", "element"
	Err   error
}

func (e *SecurityError) Error() string {
	return fmt.Sprintf("core: security check failed at %s: %v", e.Phase, e.Err)
}

// Unwrap makes errors.Is(err, ErrSecurityCheckFailed) and errors.Is
// against the underlying cert/globeid errors both work.
func (e *SecurityError) Unwrap() []error { return []error{ErrSecurityCheckFailed, e.Err} }

// Timing is the per-phase breakdown of one secure fetch, mirroring the
// timers the paper placed "in various parts of the proxy and server
// code". Each field is filled from the corresponding pipeline span's
// duration (Bind sums location.lookup and replica.dial; ElementVerify
// sums the three element.verify.* steps).
type Timing struct {
	NameResolve    time.Duration // hybrid name -> OID
	Bind           time.Duration // location lookup + connect
	KeyFetch       time.Duration // retrieve object public key
	KeyVerify      time.Duration // SHA-1(key) == OID
	NameCertFetch  time.Duration // retrieve CA identity certificates
	NameCertVerify time.Duration // match against trusted CAs
	CertFetch      time.Duration // retrieve integrity certificate
	CertVerify     time.Duration // verify certificate signature
	ElementFetch   time.Duration // retrieve page element content
	ElementVerify  time.Duration // hash + freshness + consistency checks
}

// Security returns the time spent on security-specific operations — the
// paper's Figure 4 numerator: "retrieving the object's public key,
// verifying its SHA-1 hash matches the object Id, retrieving the object
// certificate and verifying it, computing the hash of the page element
// and verifying it against the hash in the certificate".
func (t Timing) Security() time.Duration {
	return t.KeyFetch + t.KeyVerify + t.NameCertFetch + t.NameCertVerify +
		t.CertFetch + t.CertVerify + t.ElementVerify
}

// Total returns the full client-perceived fetch time.
func (t Timing) Total() time.Duration {
	return t.NameResolve + t.Bind + t.Security() + t.ElementFetch
}

// OverheadPercent returns security time as a percentage of total.
func (t Timing) OverheadPercent() float64 {
	total := t.Total()
	if total == 0 {
		return 0
	}
	return 100 * float64(t.Security()) / float64(total)
}

// Add accumulates u into t (for averaging across iterations).
func (t *Timing) Add(u Timing) {
	t.NameResolve += u.NameResolve
	t.Bind += u.Bind
	t.KeyFetch += u.KeyFetch
	t.KeyVerify += u.KeyVerify
	t.NameCertFetch += u.NameCertFetch
	t.NameCertVerify += u.NameCertVerify
	t.CertFetch += u.CertFetch
	t.CertVerify += u.CertVerify
	t.ElementFetch += u.ElementFetch
	t.ElementVerify += u.ElementVerify
}

// Scale divides every phase by n (for averaging).
func (t Timing) Scale(n int) Timing {
	if n <= 0 {
		return t
	}
	d := time.Duration(n)
	return Timing{
		NameResolve:    t.NameResolve / d,
		Bind:           t.Bind / d,
		KeyFetch:       t.KeyFetch / d,
		KeyVerify:      t.KeyVerify / d,
		NameCertFetch:  t.NameCertFetch / d,
		NameCertVerify: t.NameCertVerify / d,
		CertFetch:      t.CertFetch / d,
		CertVerify:     t.CertVerify / d,
		ElementFetch:   t.ElementFetch / d,
		ElementVerify:  t.ElementVerify / d,
	}
}

// FetchResult is one securely fetched page element.
type FetchResult struct {
	Element document.Element
	// CertifiedAs is the real-world subject from the first identity
	// certificate matching the user's trust list, or "" when identity
	// certification was not requested.
	CertifiedAs string
	// ReplicaAddr is the contact address the element came from.
	ReplicaAddr string
	// Timing is the per-phase breakdown.
	Timing Timing
	// WarmBinding reports whether the verified binding cache was used
	// (skipping phases 1–5).
	WarmBinding bool
}

// verifiedBinding is a cached, fully verified attachment to one object
// replica: connection, self-certified key, and checked certificate.
type verifiedBinding struct {
	client      *object.Client
	key         keys.PublicKey
	icert       *cert.IntegrityCertificate
	certifiedAs string
}

// pipeline is the in-flight observability state of one secure operation:
// the root span every step hangs off, and the Timing being accumulated.
// Timing fields are credited from the step spans' own durations, so the
// benchmark harness and the tracer always report the same intervals.
type pipeline struct {
	tel    *telemetry.Telemetry
	root   *telemetry.Span
	timing Timing
}

// step runs one named pipeline step under a child span, crediting the
// span's duration to the given Timing field (nil to time without
// crediting).
func (p *pipeline) step(name string, field *time.Duration, f func() error) error {
	sp := p.root.StartChild(name)
	err := f()
	if err != nil {
		sp.Annotate("error", err.Error())
	}
	sp.End()
	if field != nil {
		*field += sp.Duration()
	}
	return err
}

// fresh returns a pipeline sharing this one's trace but with zeroed
// timing — the retry/failover paths report the timing of the attempt
// that succeeded, not the sum of all attempts.
func (p *pipeline) fresh() *pipeline {
	return &pipeline{tel: p.tel, root: p.root}
}

// Client runs the GlobeDoc security pipeline. Construct with a configured
// object.Binder; zero out Trust to skip CA identity certification.
type Client struct {
	// Binder performs name resolution, location and connection.
	Binder *object.Binder
	// Trust is the user's trusted-CA store; nil disables the identity
	// step entirely.
	Trust *cert.TrustStore
	// RequireIdentity makes fetches fail unless some identity
	// certificate matches the trust store (the e-commerce posture of
	// §3.1.2). When false, identity is best-effort: the subject is
	// reported when available.
	RequireIdentity bool
	// CacheBindings keeps verified bindings warm across fetches; each
	// element access then costs one round trip plus verification.
	CacheBindings bool
	// Retry governs how often an expired cached certificate is
	// refreshed before giving up (the re-bind after a freshness
	// failure on a warm binding). Nil means one refresh attempt, the
	// historical behaviour.
	Retry *transport.RetryPolicy
	// Telemetry receives the pipeline spans, cache/failover counters and
	// latency histograms; nil falls back to telemetry.Default().
	Telemetry *telemetry.Telemetry
	// Now is the clock used for freshness checks; tests replace it.
	Now func() time.Time

	mu    sync.Mutex
	cache map[globeid.OID]*verifiedBinding
}

// NewClient returns a security client over binder with the default clock.
func NewClient(binder *object.Binder) *Client {
	return &Client{
		Binder: binder,
		Now:    time.Now,
		cache:  make(map[globeid.OID]*verifiedBinding),
	}
}

func (c *Client) tel() *telemetry.Telemetry { return telemetry.Or(c.Telemetry) }

// secErr records the failed check in security_check_failures_total{phase}
// and returns the wrapped SecurityError.
func (c *Client) secErr(phase string, err error) error {
	c.tel().SecurityCheckFailures.With(phase).Inc()
	return &SecurityError{Phase: phase, Err: err}
}

// Close drops all cached bindings and their connections.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for oid, vb := range c.cache {
		vb.client.Close()
		delete(c.cache, oid)
	}
}

// FlushBindings drops cached bindings (cold-path benchmarks).
func (c *Client) FlushBindings() { c.Close() }

// FetchNamed securely fetches one element of the object bound to name.
func (c *Client) FetchNamed(name, element string) (FetchResult, error) {
	p := c.newPipeline(SpanSecureFetch)
	p.root.Annotate("object", name)
	p.root.Annotate("element", element)
	var oid globeid.OID
	err := p.step(StepNameResolve, &p.timing.NameResolve, func() error {
		var rerr error
		oid, rerr = c.Binder.Names.Resolve(name)
		return rerr
	})
	if err != nil {
		p.finish("error")
		return FetchResult{}, fmt.Errorf("core: resolving %q: %w", name, err)
	}
	return c.finishFetch(p, oid, element)
}

// Fetch securely fetches one element of the object identified by oid.
func (c *Client) Fetch(oid globeid.OID, element string) (FetchResult, error) {
	p := c.newPipeline(SpanSecureFetch)
	p.root.Annotate("oid", oid.Short())
	p.root.Annotate("element", element)
	return c.finishFetch(p, oid, element)
}

func (c *Client) newPipeline(rootName string) *pipeline {
	tel := c.tel()
	return &pipeline{tel: tel, root: tel.Tracer.StartSpan(rootName)}
}

func (p *pipeline) finish(outcome string) {
	p.root.Annotate("outcome", outcome)
	p.root.End()
}

// finishFetch runs the bind+fetch pipeline below name resolution, closes
// the root span, and feeds the fetch-latency and security-overhead
// histograms from the same Timing the caller receives.
func (c *Client) finishFetch(p *pipeline, oid globeid.OID, element string) (FetchResult, error) {
	res, err := c.fetchExcluding(p, oid, element, nil)
	if err != nil {
		p.finish("error")
		return FetchResult{}, err
	}
	p.finish("ok")
	p.tel.FetchLatency.Observe(res.Timing.Total().Seconds())
	p.tel.SecurityOverhead.Observe(res.Timing.OverheadPercent())
	return res, nil
}

// fetchExcluding is the bind+fetch pipeline with a set of replica
// addresses already caught misbehaving during this operation; they are
// skipped when re-binding.
func (c *Client) fetchExcluding(p *pipeline, oid globeid.OID, element string, excluded map[string]bool) (FetchResult, error) {
	now := c.Now()

	// Step 2: consult the verified-binding cache.
	var vb *verifiedBinding
	var warm bool
	cacheSp := p.root.StartChild(StepBindingCache)
	vb, warm = c.cachedBinding(oid, now)
	if warm {
		cacheSp.Annotate("outcome", "hit")
	} else {
		cacheSp.Annotate("outcome", "miss")
	}
	if !c.CacheBindings {
		cacheSp.Annotate("enabled", "false")
	}
	cacheSp.End()
	if c.CacheBindings {
		if warm {
			p.tel.BindingCacheHits.Inc()
		} else {
			p.tel.BindingCacheMisses.Inc()
		}
	}

	if !warm {
		var err error
		vb, err = c.establish(p, oid, now, excluded)
		if err != nil {
			return FetchResult{}, err
		}
		if c.CacheBindings {
			c.storeBinding(oid, vb)
		}
	}

	// Step 11: retrieve the page element from the (untrusted) replica.
	var elem document.Element
	err := p.step(StepElementFetch, &p.timing.ElementFetch, func() error {
		var ferr error
		elem, ferr = vb.client.GetElement(element)
		return ferr
	})
	if err != nil {
		// A replica that times out, resets, or otherwise fails mid-fetch
		// is handled exactly like a detected attack: abandon it and move
		// to the next candidate. A stalled replica thereby degrades a
		// fetch to the next-nearest honest one instead of hanging the
		// pipeline. Warm bindings get one clean re-bind first (the
		// pooled connection may simply be stale); cold ones blacklist
		// the address for this operation.
		addr := vb.client.Addr()
		c.dropBinding(oid, vb)
		p.tel.Failovers.Inc()
		next := excluded
		if !warm {
			next = make(map[string]bool, len(excluded)+1)
			for a := range excluded {
				next[a] = true
			}
			next[addr] = true
		}
		res, retryErr := c.fetchExcluding(p.fresh(), oid, element, next)
		if retryErr == nil {
			return res, nil
		}
		return FetchResult{}, fmt.Errorf("core: fetching element %q: %w", element, err)
	}

	// Steps 12–14: consistency, authenticity, freshness (paper §3.2.2).
	err = c.verifyElement(p, vb, element, elem.Data, now)
	if err != nil {
		if warm && errors.Is(err, cert.ErrFreshness) {
			// The cached certificate may simply have expired; re-bind
			// through the retry policy and retry with a fresh
			// certificate. A freshly fetched certificate that is
			// *still* stale is a security failure (a replica replaying
			// old signed state), marked permanent so the policy stops
			// instead of hammering the replica.
			c.dropBinding(oid, vb)
			var res FetchResult
			doErr := c.refreshPolicy().Do(func() error {
				r, ferr := c.fetchExcluding(p.fresh(), oid, element, excluded)
				if ferr != nil {
					if errors.Is(ferr, ErrSecurityCheckFailed) {
						return transport.Permanent(ferr)
					}
					return ferr
				}
				res = r
				return nil
			})
			if doErr != nil {
				return FetchResult{}, doErr
			}
			return res, nil
		}
		if !warm && (errors.Is(err, cert.ErrAuthenticity) || errors.Is(err, cert.ErrConsistency)) {
			// The replica served bogus content despite genuine
			// credentials: blacklist it for this operation and try the
			// next candidate. Detection thereby degrades an attack to a
			// slower fetch instead of a failure, as long as any honest
			// replica remains.
			addr := vb.client.Addr()
			c.dropBinding(oid, vb)
			p.tel.Failovers.Inc()
			next := make(map[string]bool, len(excluded)+1)
			for a := range excluded {
				next[a] = true
			}
			next[addr] = true
			res, retryErr := c.fetchExcluding(p.fresh(), oid, element, next)
			if retryErr == nil {
				return res, nil
			}
			return FetchResult{}, c.secErr("element", err)
		}
		return FetchResult{}, c.secErr("element", err)
	}

	res := FetchResult{
		Element:     elem,
		CertifiedAs: vb.certifiedAs,
		ReplicaAddr: vb.client.Addr(),
		Timing:      p.timing,
		WarmBinding: warm,
	}
	if !warm && !c.CacheBindings {
		vb.client.Close()
	}
	return res, nil
}

// verifyElement runs the three per-element checks as separate pipeline
// steps, all credited to Timing.ElementVerify. The decomposed cert
// methods are the same code VerifyElement composes, in the same order.
func (c *Client) verifyElement(p *pipeline, vb *verifiedBinding, element string, content []byte, now time.Time) error {
	var entry cert.ElementEntry
	if err := p.step(StepVerifyConsistency, &p.timing.ElementVerify, func() error {
		var cerr error
		entry, cerr = vb.icert.CheckConsistency(element)
		return cerr
	}); err != nil {
		return err
	}
	if err := p.step(StepVerifyAuthenticity, &p.timing.ElementVerify, func() error {
		return entry.CheckAuthenticity(content)
	}); err != nil {
		return err
	}
	return p.step(StepVerifyFreshness, &p.timing.ElementVerify, func() error {
		return entry.CheckFreshness(now)
	})
}

// establish performs phases 2–5: locate candidate replicas, then for
// each (nearest first) connect, self-certify the key, optionally certify
// identity, and verify the integrity certificate. A replica that fails
// ANY check — unreachable or malicious — is abandoned (counted in
// failovers_total) and the next candidate is tried, so a compromised
// near replica degrades a fetch to the next-nearest honest one rather
// than to an error. Only when every candidate fails does the fetch fail
// (the paper's worst case: denial of service).
func (c *Client) establish(p *pipeline, oid globeid.OID, now time.Time, excluded map[string]bool) (*verifiedBinding, error) {
	var candidates []location.ContactAddress
	err := p.step(StepLocationLookup, &p.timing.Bind, func() error {
		var lerr error
		candidates, _, lerr = c.Binder.Candidates(oid)
		return lerr
	})
	if err != nil {
		return nil, err
	}
	lastErr := error(object.ErrNoReplica)
	for _, ca := range candidates {
		if excluded[ca.Address] {
			continue
		}
		vb, err := c.verifyReplica(p, oid, ca.Address, now)
		if err != nil {
			lastErr = err
			p.tel.Failovers.Inc()
			continue
		}
		return vb, nil
	}
	return nil, lastErr
}

// verifyReplica runs phases 2b–5 against one replica address. The timing
// phases record the most recent attempt; Bind accumulates across
// attempts.
func (c *Client) verifyReplica(p *pipeline, oid globeid.OID, addr string, now time.Time) (*verifiedBinding, error) {
	// Most-recent-attempt semantics: a previous failed candidate's phase
	// times are discarded; only Bind keeps accumulating.
	p.timing.KeyFetch, p.timing.KeyVerify = 0, 0
	p.timing.NameCertFetch, p.timing.NameCertVerify = 0, 0
	p.timing.CertFetch, p.timing.CertVerify = 0, 0

	// Step 4: connect to the (untrusted) replica.
	var client *object.Client
	err := p.step(StepDial, &p.timing.Bind, func() error {
		var derr error
		client, derr = c.Binder.Connect(oid, addr)
		return derr
	})
	if err != nil {
		return nil, err
	}
	client.Site = c.Binder.Site

	fail := func(phase string, cause error) (*verifiedBinding, error) {
		client.Close()
		return nil, c.secErr(phase, cause)
	}

	// Steps 5–6: retrieve the object's public key and self-certify it.
	var pk keys.PublicKey
	err = p.step(StepKeyFetch, &p.timing.KeyFetch, func() error {
		var kerr error
		pk, kerr = client.GetPublicKey()
		return kerr
	})
	if err != nil {
		client.Close()
		return nil, fmt.Errorf("core: fetching object key: %w", err)
	}
	err = p.step(StepKeyVerify, &p.timing.KeyVerify, func() error {
		return oid.Verify(pk)
	})
	if err != nil {
		return fail("self-certification", err)
	}

	// Steps 7–8 (optional): identity certificates against the user's CAs.
	certifiedAs := ""
	if c.Trust != nil {
		var nameCerts []*cert.NameCertificate
		err = p.step(StepNameCertFetch, &p.timing.NameCertFetch, func() error {
			var nerr error
			nameCerts, nerr = client.GetNameCerts()
			return nerr
		})
		if err != nil {
			client.Close()
			return nil, fmt.Errorf("core: fetching identity certificates: %w", err)
		}
		var subject string
		err = p.step(StepNameCertVerify, &p.timing.NameCertVerify, func() error {
			var verr error
			subject, verr = c.Trust.FirstTrusted(nameCerts, oid, now)
			return verr
		})
		if err == nil {
			certifiedAs = subject
		} else if c.RequireIdentity {
			return fail("identity-certificate", err)
		}
	}

	// Steps 9–10: integrity certificate, verified under the object key.
	var icert *cert.IntegrityCertificate
	err = p.step(StepCertFetch, &p.timing.CertFetch, func() error {
		var cerr error
		icert, cerr = client.GetIntegrityCert()
		return cerr
	})
	if err != nil {
		client.Close()
		return nil, fmt.Errorf("core: fetching integrity certificate: %w", err)
	}
	err = p.step(StepCertVerify, &p.timing.CertVerify, func() error {
		return icert.VerifySignature(oid, pk)
	})
	if err != nil {
		return fail("integrity-certificate", err)
	}

	return &verifiedBinding{
		client:      client,
		key:         pk,
		icert:       icert,
		certifiedAs: certifiedAs,
	}, nil
}

// refreshPolicy returns the certificate-refresh retry policy: the
// configured one, or a two-attempt no-delay policy reproducing the
// historical "refresh once" behaviour.
func (c *Client) refreshPolicy() *transport.RetryPolicy {
	if c.Retry != nil {
		return c.Retry
	}
	return &transport.RetryPolicy{MaxAttempts: 2}
}

func (c *Client) cachedBinding(oid globeid.OID, now time.Time) (*verifiedBinding, bool) {
	if !c.CacheBindings {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	vb, ok := c.cache[oid]
	return vb, ok
}

func (c *Client) storeBinding(oid globeid.OID, vb *verifiedBinding) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.cache[oid]; ok && old != vb {
		old.client.Close()
	}
	c.cache[oid] = vb
}

func (c *Client) dropBinding(oid globeid.OID, vb *verifiedBinding) {
	c.mu.Lock()
	if cur, ok := c.cache[oid]; ok && cur == vb {
		delete(c.cache, oid)
	}
	c.mu.Unlock()
	vb.client.Close()
}

// ElementsNamed resolves name and returns the verified integrity
// certificate's entries — the authenticated table of contents of the
// object. No element content is transferred.
func (c *Client) ElementsNamed(name string) ([]cert.ElementEntry, error) {
	oid, err := c.Binder.Names.Resolve(name)
	if err != nil {
		return nil, fmt.Errorf("core: resolving %q: %w", name, err)
	}
	return c.Elements(oid)
}

// Elements returns the verified certificate entries for oid.
func (c *Client) Elements(oid globeid.OID) ([]cert.ElementEntry, error) {
	p := c.newPipeline(SpanElements)
	p.root.Annotate("oid", oid.Short())
	entries, err := c.elements(p, oid)
	if err != nil {
		p.finish("error")
		return nil, err
	}
	p.finish("ok")
	return entries, nil
}

func (c *Client) elements(p *pipeline, oid globeid.OID) ([]cert.ElementEntry, error) {
	now := c.Now()
	vb, warm := c.cachedBinding(oid, now)
	if !warm {
		var err error
		vb, err = c.establish(p, oid, now, nil)
		if err != nil {
			return nil, err
		}
		if c.CacheBindings {
			c.storeBinding(oid, vb)
		} else {
			defer vb.client.Close()
		}
	}
	return append([]cert.ElementEntry(nil), vb.icert.Entries...), nil
}

// FetchAll securely fetches every element listed in the object's
// integrity certificate, returning elements in certificate order. It is
// the "download the whole document" operation the paper's Figures 5–7
// time against Apache.
func (c *Client) FetchAll(oid globeid.OID) ([]FetchResult, error) {
	p := c.newPipeline(SpanFetchAll)
	p.root.Annotate("oid", oid.Short())
	out, err := c.fetchAll(p, oid)
	if err != nil {
		p.finish("error")
		return out, err
	}
	p.finish("ok")
	return out, nil
}

func (c *Client) fetchAll(p *pipeline, oid globeid.OID) ([]FetchResult, error) {
	// Bind once (cold or cached), then fetch each element.
	now := c.Now()
	vb, warm := c.cachedBinding(oid, now)
	if !warm {
		var err error
		vb, err = c.establish(p, oid, now, nil)
		if err != nil {
			return nil, err
		}
		c.storeBindingIfEnabled(oid, vb)
		defer func() {
			if !c.CacheBindings {
				vb.client.Close()
			}
		}()
	}
	var out []FetchResult
	for _, entry := range vb.icert.Entries {
		res, err := c.fetchVia(p.fresh(), vb, entry.Name, now, warm)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

func (c *Client) storeBindingIfEnabled(oid globeid.OID, vb *verifiedBinding) {
	if c.CacheBindings {
		c.storeBinding(oid, vb)
	}
}

func (c *Client) fetchVia(p *pipeline, vb *verifiedBinding, element string, now time.Time, warm bool) (FetchResult, error) {
	var elem document.Element
	err := p.step(StepElementFetch, &p.timing.ElementFetch, func() error {
		var ferr error
		elem, ferr = vb.client.GetElement(element)
		return ferr
	})
	if err != nil {
		return FetchResult{}, fmt.Errorf("core: fetching element %q: %w", element, err)
	}
	if err := c.verifyElement(p, vb, element, elem.Data, now); err != nil {
		return FetchResult{}, c.secErr("element", err)
	}
	return FetchResult{
		Element:     elem,
		CertifiedAs: vb.certifiedAs,
		ReplicaAddr: vb.client.Addr(),
		Timing:      p.timing,
		WarmBinding: warm,
	}, nil
}
