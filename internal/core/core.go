// Package core implements the GlobeDoc security architecture — the
// paper's primary contribution (§3): end-to-end integrity guarantees for
// Web documents replicated on untrusted servers.
//
// The exported Client runs the complete secure-browsing pipeline of
// Figure 3 for every fetch:
//
//  1. resolve the object name to a self-certifying OID (secure naming
//     service);
//  2. find the closest replica (untrusted location service);
//  3. retrieve the object's public key from the replica and check
//     SHA-1(key) == OID — self-certification, no CA involved;
//  4. optionally retrieve CA-signed identity certificates and match
//     them against the user's trusted-CA list ("Certified as: ...");
//  5. retrieve the integrity certificate and verify its signature
//     under the object key;
//  6. retrieve the requested page element;
//  7. verify authenticity (hash), consistency (requested name) and
//     freshness (validity interval).
//
// Every fetch is traced as one span tree: a root fetch.secure span with
// one child per pipeline step (the 14 steps of PipelineSteps; DESIGN.md
// §8 maps them to the paper's Figure 3). The per-phase Timing the
// benchmark harness reads is derived from those spans' durations, so the
// tracer and the Figure-4 numbers can never disagree.
//
// The client is safe for concurrent use. Concurrent fetches of the same
// cold OID share a single pipeline run (singleflight, when binding
// caching is on), RPCs to one replica run in parallel over a bounded
// connection pool, and FetchAll retrieves elements with a bounded worker
// pool. Every public method takes a context.Context that cancels slot
// waits, dials and in-flight RPCs. See DESIGN.md §9 for the full
// concurrency model.
package core

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"globedoc/internal/cert"
	"globedoc/internal/document"
	"globedoc/internal/globeid"
	"globedoc/internal/keys"
	"globedoc/internal/location"
	"globedoc/internal/object"
	"globedoc/internal/telemetry"
	"globedoc/internal/transport"
	"globedoc/internal/vcache"
)

// Root span names for the operations this client runs.
const (
	SpanSecureFetch = "fetch.secure"   // one FetchNamed/Fetch
	SpanFetchAll    = "fetch.all"      // whole-object download
	SpanElements    = "fetch.elements" // verified table of contents
)

// Span names for the secure-binding pipeline steps (paper §3.2, Fig. 3).
// A cold, identity-checking fetch runs all fourteen; a warm fetch skips
// steps 3–10 (that is the point of the verified-binding cache).
const (
	StepNameResolve        = "name.resolve"                // 1: hybrid name -> OID
	StepBindingCache       = "binding.cache"               // 2: verified-binding cache consult
	StepLocationLookup     = "location.lookup"             // 3: OID -> contact addresses
	StepDial               = "replica.dial"                // 4: connect + liveness ping
	StepKeyFetch           = "key.fetch"                   // 5: retrieve object public key
	StepKeyVerify          = "key.verify"                  // 6: SHA-1(key) == OID
	StepNameCertFetch      = "namecert.fetch"              // 7: retrieve identity certificates
	StepNameCertVerify     = "namecert.verify"             // 8: match against trusted CAs
	StepCertFetch          = "icert.fetch"                 // 9: retrieve integrity certificate
	StepCertVerify         = "icert.verify"                // 10: verify signature under object key
	StepElementFetch       = "element.fetch"               // 11: content transfer
	StepVerifyConsistency  = "element.verify.consistency"  // 12: entry matches requested name
	StepVerifyAuthenticity = "element.verify.authenticity" // 13: SHA-1(content) == entry hash
	StepVerifyFreshness    = "element.verify.freshness"    // 14: validity interval covers now
)

// StepBatchFetch is the span recorded when FetchAll retrieves the
// document's not-yet-cached elements in one batched GetElements exchange
// (transport v2 pipelines it over one connection). Each element served
// from the batch credits an amortized share of the exchange to its
// Timing.ElementFetch; verification still runs per element.
const StepBatchFetch = "fetch.batch"

// StepVCacheLookup is the span recorded when the verified-content cache
// is consulted for a certificate-fresh element hash (Options.VCache).
// A hit replaces steps 11–13: the bytes were verified on insertion and
// the current verified certificate still vouches for their hash.
const StepVCacheLookup = "vcache.lookup"

// PipelineSteps lists the 14 binding-pipeline step span names in
// execution order.
var PipelineSteps = []string{
	StepNameResolve,
	StepBindingCache,
	StepLocationLookup,
	StepDial,
	StepKeyFetch,
	StepKeyVerify,
	StepNameCertFetch,
	StepNameCertVerify,
	StepCertFetch,
	StepCertVerify,
	StepElementFetch,
	StepVerifyConsistency,
	StepVerifyAuthenticity,
	StepVerifyFreshness,
}

// ErrSecurityCheckFailed wraps every verification failure: whatever the
// replica or the intermediate services did, the client refused the data.
// The paper's proxy renders this as the "Security Check Failed" page.
var ErrSecurityCheckFailed = errors.New("core: security check failed")

// ErrBindingFailed wraps every failure to establish a verified binding —
// name resolved, but no candidate replica could be located, dialled and
// verified. Callers distinguish it from per-element failures with
// errors.Is; the underlying cause (e.g. transport.ErrDialTimeout,
// object.ErrNoReplica, or a SecurityError) stays reachable through
// errors.Is/As too.
var ErrBindingFailed = errors.New("core: binding establishment failed")

// SecurityError carries which phase of the pipeline rejected the fetch.
type SecurityError struct {
	Phase string // e.g. "self-certification", "integrity-certificate", "element"
	Err   error
}

func (e *SecurityError) Error() string {
	return fmt.Sprintf("core: security check failed at %s: %v", e.Phase, e.Err)
}

// Unwrap makes errors.Is(err, ErrSecurityCheckFailed) and errors.Is
// against the underlying cert/globeid errors both work.
func (e *SecurityError) Unwrap() []error { return []error{ErrSecurityCheckFailed, e.Err} }

// Timing is the per-phase breakdown of one secure fetch, mirroring the
// timers the paper placed "in various parts of the proxy and server
// code". Each field is filled from the corresponding pipeline span's
// duration (Bind sums location.lookup and replica.dial; ElementVerify
// sums the three element.verify.* steps).
type Timing struct {
	NameResolve    time.Duration // hybrid name -> OID
	Bind           time.Duration // location lookup + connect
	KeyFetch       time.Duration // retrieve object public key
	KeyVerify      time.Duration // SHA-1(key) == OID
	NameCertFetch  time.Duration // retrieve CA identity certificates
	NameCertVerify time.Duration // match against trusted CAs
	CertFetch      time.Duration // retrieve integrity certificate
	CertVerify     time.Duration // verify certificate signature
	ElementFetch   time.Duration // retrieve page element content
	ElementVerify  time.Duration // hash + freshness + consistency checks
}

// Security returns the time spent on security-specific operations — the
// paper's Figure 4 numerator: "retrieving the object's public key,
// verifying its SHA-1 hash matches the object Id, retrieving the object
// certificate and verifying it, computing the hash of the page element
// and verifying it against the hash in the certificate".
func (t Timing) Security() time.Duration {
	return t.KeyFetch + t.KeyVerify + t.NameCertFetch + t.NameCertVerify +
		t.CertFetch + t.CertVerify + t.ElementVerify
}

// Total returns the full client-perceived fetch time.
func (t Timing) Total() time.Duration {
	return t.NameResolve + t.Bind + t.Security() + t.ElementFetch
}

// OverheadPercent returns security time as a percentage of total.
func (t Timing) OverheadPercent() float64 {
	total := t.Total()
	if total == 0 {
		return 0
	}
	return 100 * float64(t.Security()) / float64(total)
}

// Add accumulates u into t (for averaging across iterations).
func (t *Timing) Add(u Timing) {
	t.NameResolve += u.NameResolve
	t.Bind += u.Bind
	t.KeyFetch += u.KeyFetch
	t.KeyVerify += u.KeyVerify
	t.NameCertFetch += u.NameCertFetch
	t.NameCertVerify += u.NameCertVerify
	t.CertFetch += u.CertFetch
	t.CertVerify += u.CertVerify
	t.ElementFetch += u.ElementFetch
	t.ElementVerify += u.ElementVerify
}

// Scale divides every phase by n (for averaging).
func (t Timing) Scale(n int) Timing {
	if n <= 0 {
		return t
	}
	d := time.Duration(n)
	return Timing{
		NameResolve:    t.NameResolve / d,
		Bind:           t.Bind / d,
		KeyFetch:       t.KeyFetch / d,
		KeyVerify:      t.KeyVerify / d,
		NameCertFetch:  t.NameCertFetch / d,
		NameCertVerify: t.NameCertVerify / d,
		CertFetch:      t.CertFetch / d,
		CertVerify:     t.CertVerify / d,
		ElementFetch:   t.ElementFetch / d,
		ElementVerify:  t.ElementVerify / d,
	}
}

// FetchResult is one securely fetched page element.
type FetchResult struct {
	Element document.Element
	// CertifiedAs is the real-world subject from the first identity
	// certificate matching the user's trust list, or "" when identity
	// certification was not requested.
	CertifiedAs string
	// ReplicaAddr is the contact address the element came from.
	ReplicaAddr string
	// Timing is the per-phase breakdown.
	Timing Timing
	// WarmBinding reports whether the verified binding cache was used
	// (skipping phases 1–5).
	WarmBinding bool
	// SharedBinding reports that this cold fetch joined a concurrent
	// fetch's binding pipeline run instead of running its own
	// (singleflight deduplication).
	SharedBinding bool
	// FromCache reports that the element bytes came from the
	// verified-content cache: the current verified certificate lists
	// their hash, so no element transfer or hashing was needed.
	FromCache bool
}

// verifiedBinding is a cached, fully verified attachment to one object
// replica: connection, self-certified key, and checked certificate.
type verifiedBinding struct {
	client      *object.Client
	key         keys.PublicKey
	icert       *cert.IntegrityCertificate
	certifiedAs string
}

// pipeline is the in-flight observability state of one secure operation:
// the root span every step hangs off, and the Timing being accumulated.
// Timing fields are credited from the step spans' own durations, so the
// benchmark harness and the tracer always report the same intervals.
type pipeline struct {
	tel    *telemetry.Telemetry
	root   *telemetry.Span
	timing Timing
}

// step runs one named pipeline step under a child span, crediting the
// span's duration to the given Timing field (nil to time without
// crediting).
func (p *pipeline) step(name string, field *time.Duration, f func() error) error {
	sp := p.root.StartChild(name)
	err := f()
	if err != nil {
		sp.Annotate("error", err.Error())
	}
	sp.End()
	if field != nil {
		*field += sp.Duration()
	}
	return err
}

// fresh returns a pipeline sharing this one's trace but with zeroed
// timing — the retry/failover paths report the timing of the attempt
// that succeeded, not the sum of all attempts. FetchAll's workers use it
// too: each element's pipeline hangs off the shared root span with its
// own Timing.
func (p *pipeline) fresh() *pipeline {
	return &pipeline{tel: p.tel, root: p.root}
}

// Client runs the GlobeDoc security pipeline. Construct with NewClient;
// the zero value is not usable. All methods are safe for concurrent use.
type Client struct {
	// Binder performs name resolution, location and connection. Treat as
	// read-only after NewClient (the benchmark harness reaches through
	// it to flush resolver caches).
	Binder *object.Binder

	trust           *cert.TrustStore
	requireIdentity bool
	cacheBindings   bool
	retry           *transport.RetryPolicy
	telem           *telemetry.Telemetry
	nowFn           func() time.Time
	fetchWorkers    int
	noSingleflight  bool
	noBatchFetch    bool
	vcache          *vcache.Cache
	maxBindings     int
	selector        Selector

	mu         sync.Mutex
	cache      map[globeid.OID]*list.Element // of *bindingEntry
	bindingLRU *list.List                    // front = most recently used
	flights    map[globeid.OID]*flight
}

// bindingEntry is one verified-binding cache slot, kept in LRU order so
// many-OID workloads evict the coldest connection instead of growing
// without bound.
type bindingEntry struct {
	oid globeid.OID
	vb  *verifiedBinding
}

// NewClient returns a security client over binder configured by opts.
// It rejects nonsense options (negative worker/pool counts, negative
// timeouts on the binder) with errors wrapping ErrInvalidOptions; the
// zero Options is always valid. When opts.PoolSize is positive it is
// installed as the binder's per-replica connection bound before any
// connection is made.
func NewClient(binder *object.Binder, opts Options) (*Client, error) {
	if err := opts.validate(binder); err != nil {
		return nil, err
	}
	if opts.PoolSize > 0 {
		binder.Transport.Pool.MaxConns = opts.PoolSize
	}
	nowFn := opts.Now
	if nowFn == nil {
		nowFn = time.Now
	}
	workers := opts.FetchWorkers
	if workers == 0 {
		workers = DefaultFetchWorkers
	}
	maxBindings := opts.MaxBindings
	if maxBindings == 0 {
		maxBindings = DefaultMaxBindings
	}
	if opts.VCache != nil {
		tel := telemetry.Or(opts.Telemetry)
		opts.VCache.WireMetrics(tel.VCacheEvictions, tel.SigCacheHits)
	}
	if opts.TraceSampleRate != nil {
		telemetry.Or(opts.Telemetry).Tracer.SetSampleRate(*opts.TraceSampleRate)
	}
	selector := opts.Selector
	if selector == nil {
		selector = HealthRankedSelector{}
	}
	return &Client{
		Binder:          binder,
		trust:           opts.Trust,
		requireIdentity: opts.RequireIdentity,
		cacheBindings:   opts.CacheBindings,
		retry:           opts.Retry,
		telem:           opts.Telemetry,
		nowFn:           nowFn,
		fetchWorkers:    workers,
		noSingleflight:  opts.DisableSingleflight,
		noBatchFetch:    opts.DisableBatchFetch,
		vcache:          opts.VCache,
		maxBindings:     maxBindings,
		selector:        selector,
		cache:           make(map[globeid.OID]*list.Element),
		bindingLRU:      list.New(),
		flights:         make(map[globeid.OID]*flight),
	}, nil
}

// CachesBindings reports whether verified bindings are kept warm across
// fetches (Options.CacheBindings).
func (c *Client) CachesBindings() bool { return c.cacheBindings }

func (c *Client) tel() *telemetry.Telemetry { return telemetry.Or(c.telem) }

func (c *Client) now() time.Time { return c.nowFn() }

// secErr records the failed check in security_check_failures_total{phase}
// and returns the wrapped SecurityError.
func (c *Client) secErr(phase string, err error) error {
	c.tel().SecurityCheckFailures.With(phase).Inc()
	return &SecurityError{Phase: phase, Err: err}
}

// Close drops all cached bindings and their connections.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for oid, node := range c.cache {
		node.Value.(*bindingEntry).vb.client.Close()
		c.bindingLRU.Remove(node)
		delete(c.cache, oid)
	}
	c.tel().BindingCacheEntries.Set(0)
}

// FlushBindings drops cached bindings (cold-path benchmarks).
func (c *Client) FlushBindings() { c.Close() }

// FetchNamed securely fetches one element of the object bound to name.
// ctx cancels name resolution, binding establishment and the element
// transfer.
func (c *Client) FetchNamed(ctx context.Context, name, element string) (FetchResult, error) {
	ctx = orBackground(ctx)
	ctx, p := c.newPipeline(ctx, SpanSecureFetch)
	p.root.Annotate("object", name)
	p.root.Annotate("element", element)
	var oid globeid.OID
	err := p.step(StepNameResolve, &p.timing.NameResolve, func() error {
		var rerr error
		oid, rerr = c.Binder.Names.Resolve(ctx, name)
		return rerr
	})
	if err != nil {
		p.finish("error")
		return FetchResult{}, fmt.Errorf("core: resolving %q: %w", name, err)
	}
	return c.finishFetch(ctx, p, oid, element)
}

// Fetch securely fetches one element of the object identified by oid.
func (c *Client) Fetch(ctx context.Context, oid globeid.OID, element string) (FetchResult, error) {
	ctx = orBackground(ctx)
	ctx, p := c.newPipeline(ctx, SpanSecureFetch)
	p.root.Annotate("oid", oid.Short())
	p.root.Annotate("element", element)
	return c.finishFetch(ctx, p, oid, element)
}

func orBackground(ctx context.Context) context.Context {
	if ctx == nil {
		//lint:ignore ctxfirst nil-ctx compatibility: legacy callers predate the ctx-first API and a nil ctx must mean "no cancellation", not a panic
		return context.Background()
	}
	return ctx
}

// newPipeline starts the root span of one client operation and threads
// its span context into ctx, so every RPC issued below it — including
// name resolution — joins the same trace, and the servers on the far
// side adopt it for their serve spans. A caller that already carries a
// trace in ctx (the proxy's per-request span) is joined rather than
// shadowed, keeping one trace per user-visible request.
func (c *Client) newPipeline(ctx context.Context, rootName string) (context.Context, *pipeline) {
	tel := c.tel()
	p := &pipeline{tel: tel, root: tel.Tracer.StartSpanFrom(rootName, telemetry.SpanContextFrom(ctx))}
	return telemetry.ContextWith(ctx, p.root.Context()), p
}

func (p *pipeline) finish(outcome string) {
	p.root.Annotate("outcome", outcome)
	p.root.End()
}

// finishFetch runs the bind+fetch pipeline below name resolution, closes
// the root span, and feeds the fetch-latency and security-overhead
// histograms from the same Timing the caller receives.
func (c *Client) finishFetch(ctx context.Context, p *pipeline, oid globeid.OID, element string) (FetchResult, error) {
	res, err := c.fetchExcluding(ctx, p, oid, element, nil)
	if err != nil {
		p.finish("error")
		return FetchResult{}, err
	}
	p.finish("ok")
	// Exemplar: stamp the latency bucket with this trace's ID (when the
	// trace is exported) so an outlier bucket links to a concrete trace.
	var exemplar uint64
	if sc := p.root.Context(); sc.Sampled {
		exemplar = sc.TraceID
	}
	p.tel.FetchLatency.ObserveExemplar(res.Timing.Total().Seconds(), exemplar)
	p.tel.SecurityOverhead.Observe(res.Timing.OverheadPercent())
	return res, nil
}

// fetchExcluding is the bind+fetch pipeline with a set of replica
// addresses already caught misbehaving during this operation; they are
// skipped when re-binding.
func (c *Client) fetchExcluding(ctx context.Context, p *pipeline, oid globeid.OID, element string, excluded map[string]bool) (FetchResult, error) {
	now := c.now()

	// Step 2: consult the verified-binding cache.
	var vb *verifiedBinding
	var warm bool
	cacheSp := p.root.StartChild(StepBindingCache)
	vb, warm = c.cachedBinding(oid, now)
	if warm {
		cacheSp.Annotate("outcome", "hit")
	} else {
		cacheSp.Annotate("outcome", "miss")
	}
	if !c.cacheBindings {
		cacheSp.Annotate("enabled", "false")
	}
	cacheSp.End()
	if c.cacheBindings {
		if warm {
			p.tel.BindingCacheHits.Inc()
		} else {
			p.tel.BindingCacheMisses.Inc()
		}
	}

	shared := false
	if !warm {
		var err error
		vb, shared, err = c.establishBinding(ctx, p, oid, now, excluded)
		if err != nil {
			return FetchResult{}, err
		}
	}
	// An operation owns (and must close) its binding only when nothing
	// else can reach it: cold, not shared with a concurrent fetch, and
	// not parked in the cache.
	owned := !warm && !shared && !c.cacheBindings

	// Verified-content cache consult (Options.VCache). The verified
	// certificate in hand names the element's hash and validity interval,
	// so freshness is decided before any bytes move:
	//   - fresh entry, bytes cached  -> serve from cache, no transfer;
	//   - fresh entry, bytes missing -> normal fetch, then insert;
	//   - lapsed entry, warm binding -> certificate-only revalidation
	//     (re-bind fetches a fresh certificate; the recursion serves the
	//     still-cached bytes if the new certificate lists their hash);
	//   - lapsed entry, cold binding -> the replica handed over a
	//     certificate that is already stale: replayed old signed state,
	//     rejected as a freshness security failure.
	var vcEntry cert.ElementEntry
	vcFresh := false
	if c.vcache != nil {
		if entry, cerr := vb.icert.CheckConsistency(element); cerr == nil {
			if ferr := entry.CheckFreshness(now); ferr == nil {
				vcEntry, vcFresh = entry, true
				if cached, hit := c.vcacheGet(p, entry, now); hit {
					res := FetchResult{
						Element:       document.Element{Name: element, ContentType: cached.ContentType, Data: cached.Data},
						CertifiedAs:   vb.certifiedAs,
						ReplicaAddr:   vb.client.Addr(),
						Timing:        p.timing,
						WarmBinding:   warm,
						SharedBinding: shared,
						FromCache:     true,
					}
					if owned {
						vb.client.Close()
					}
					return res, nil
				}
			} else if warm {
				// The cached certificate's interval lapsed. Revalidate by
				// re-binding — which moves only a fresh certificate — and
				// count it when the bytes themselves are still cached, so
				// vcache_revalidations_total measures transfers avoided.
				if c.vcache.Contains(entry.Hash) {
					p.tel.VCacheRevalidations.Inc()
				}
				c.dropBinding(oid, vb)
				return c.refetchFresh(ctx, p, oid, element, excluded)
			} else {
				c.dropBinding(oid, vb)
				c.invalidateContent(oid)
				return FetchResult{}, c.secErr("freshness", ferr)
			}
		}
	}

	// Step 11: retrieve the page element from the (untrusted) replica.
	var elem document.Element
	err := p.step(StepElementFetch, &p.timing.ElementFetch, func() error {
		var ferr error
		elem, ferr = vb.client.GetElement(ctx, element)
		return ferr
	})
	if err != nil {
		// A replica that times out, resets, or otherwise fails mid-fetch
		// is handled exactly like a detected attack: abandon it and move
		// to the next candidate. A stalled replica thereby degrades a
		// fetch to the next-nearest honest one instead of hanging the
		// pipeline. Warm bindings get one clean re-bind first (the
		// pooled connection may simply be stale); cold ones blacklist
		// the address for this operation. Cancellation is the caller's
		// decision, not a replica fault: no failover then.
		addr := vb.client.Addr()
		c.dropBinding(oid, vb)
		if ctx.Err() != nil {
			return FetchResult{}, fmt.Errorf("core: fetching element %q: %w", element, err)
		}
		c.invalidateContent(oid)
		p.tel.Failovers.Inc()
		next := excluded
		if !warm {
			next = make(map[string]bool, len(excluded)+1)
			for a := range excluded {
				next[a] = true
			}
			next[addr] = true
		}
		res, retryErr := c.fetchExcluding(ctx, p.fresh(), oid, element, next)
		if retryErr == nil {
			return res, nil
		}
		return FetchResult{}, fmt.Errorf("core: fetching element %q: %w", element, err)
	}

	// Steps 12–14: consistency, authenticity, freshness (paper §3.2.2).
	err = c.verifyElement(p, vb, element, elem.Data, now)
	if err != nil {
		if warm && errors.Is(err, cert.ErrFreshness) {
			// The cached certificate may simply have expired; re-bind
			// through the retry policy and retry with a fresh
			// certificate. A freshly fetched certificate that is
			// *still* stale is a security failure (a replica replaying
			// old signed state), marked permanent so the policy stops
			// instead of hammering the replica.
			c.dropBinding(oid, vb)
			return c.refetchFresh(ctx, p, oid, element, excluded)
		}
		if !warm && (errors.Is(err, cert.ErrAuthenticity) || errors.Is(err, cert.ErrConsistency)) {
			// The replica served bogus content despite genuine
			// credentials: blacklist it for this operation and try the
			// next candidate. Detection thereby degrades an attack to a
			// slower fetch instead of a failure, as long as any honest
			// replica remains.
			addr := vb.client.Addr()
			c.dropBinding(oid, vb)
			c.invalidateContent(oid)
			p.tel.Failovers.Inc()
			// Tampering is detected above the transport layer, whose
			// health sampling saw only successful RPCs — record the
			// detected attack as failure evidence so the selector stops
			// preferring this replica on future establishments.
			p.tel.Health.RecordFailure(addr)
			next := make(map[string]bool, len(excluded)+1)
			for a := range excluded {
				next[a] = true
			}
			next[addr] = true
			res, retryErr := c.fetchExcluding(ctx, p.fresh(), oid, element, next)
			if retryErr == nil {
				return res, nil
			}
			return FetchResult{}, c.secErr("element", err)
		}
		// Any other element-verification failure: the binding failed a
		// security check, so neither keep it cached nor leak its
		// connection (the historical code lost cold uncached conns here).
		c.dropBinding(oid, vb)
		c.invalidateContent(oid)
		return FetchResult{}, c.secErr("element", err)
	}
	if c.vcache != nil && vcFresh {
		c.vcache.Put(oid, vcEntry.Hash, vcache.Element{ContentType: elem.ContentType, Data: elem.Data}, vcEntry.Expires)
	}

	res := FetchResult{
		Element:       elem,
		CertifiedAs:   vb.certifiedAs,
		ReplicaAddr:   vb.client.Addr(),
		Timing:        p.timing,
		WarmBinding:   warm,
		SharedBinding: shared,
	}
	if owned {
		vb.client.Close()
	}
	return res, nil
}

// vcacheGet consults the verified-content cache for an entry the caller
// has just checked for consistency and freshness against the current
// verified certificate, under a vcache.lookup span. It counts the
// hit/miss and re-arms a hit's TTL to the entry's validity bound.
func (c *Client) vcacheGet(p *pipeline, entry cert.ElementEntry, now time.Time) (vcache.Element, bool) {
	sp := p.root.StartChild(StepVCacheLookup)
	cached, hit := c.vcache.Get(entry.Hash, now, entry.Expires)
	if hit {
		sp.Annotate("outcome", "hit")
	} else {
		sp.Annotate("outcome", "miss")
	}
	sp.End()
	if hit {
		p.tel.VCacheHits.Inc()
	} else {
		p.tel.VCacheMisses.Inc()
	}
	return cached, hit
}

// refetchFresh re-runs the fetch through the certificate-refresh retry
// policy after a freshness lapse on a warm binding. A security failure
// inside the retried fetch — including a freshly fetched certificate
// that is *still* stale (a replica replaying old signed state) — is
// marked permanent so the policy stops instead of hammering the replica.
func (c *Client) refetchFresh(ctx context.Context, p *pipeline, oid globeid.OID, element string, excluded map[string]bool) (FetchResult, error) {
	var res FetchResult
	doErr := c.refreshPolicy().Do(func() error {
		r, ferr := c.fetchExcluding(ctx, p.fresh(), oid, element, excluded)
		if ferr != nil {
			if errors.Is(ferr, ErrSecurityCheckFailed) {
				return transport.Permanent(ferr)
			}
			return ferr
		}
		res = r
		return nil
	})
	if doErr != nil {
		return FetchResult{}, doErr
	}
	return res, nil
}

// verifyElement runs the three per-element checks as separate pipeline
// steps, all credited to Timing.ElementVerify. The decomposed cert
// methods are the same code VerifyElement composes, in the same order.
func (c *Client) verifyElement(p *pipeline, vb *verifiedBinding, element string, content []byte, now time.Time) error {
	var entry cert.ElementEntry
	if err := p.step(StepVerifyConsistency, &p.timing.ElementVerify, func() error {
		var cerr error
		entry, cerr = vb.icert.CheckConsistency(element)
		return cerr
	}); err != nil {
		return err
	}
	if err := p.step(StepVerifyAuthenticity, &p.timing.ElementVerify, func() error {
		return entry.CheckAuthenticity(content)
	}); err != nil {
		return err
	}
	return p.step(StepVerifyFreshness, &p.timing.ElementVerify, func() error {
		return entry.CheckFreshness(now)
	})
}

// establish performs phases 2–5: locate candidate replicas, then for
// each (nearest first) connect, self-certify the key, optionally certify
// identity, and verify the integrity certificate. A replica that fails
// ANY check — unreachable or malicious — is abandoned (counted in
// failovers_total) and the next candidate is tried, so a compromised
// near replica degrades a fetch to the next-nearest honest one rather
// than to an error. Only when every candidate fails does the fetch fail
// (the paper's worst case: denial of service), with the cause wrapped in
// ErrBindingFailed. Every run counts into binding_pipeline_runs_total —
// the singleflight dedupe assertions read it.
func (c *Client) establish(ctx context.Context, p *pipeline, oid globeid.OID, now time.Time, excluded map[string]bool) (*verifiedBinding, error) {
	p.tel.PipelineRuns.Inc()
	var candidates []location.ContactAddress
	err := p.step(StepLocationLookup, &p.timing.Bind, func() error {
		var lerr error
		candidates, _, lerr = c.Binder.Candidates(ctx, oid)
		return lerr
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrBindingFailed, err)
	}
	// The Selector is the one ranking code path: it orders the location
	// service's candidates (by health, RTT and zone metadata for the
	// default HealthRankedSelector) and failover below simply walks that
	// order. The chosen ranking is retained per OID for /debugz.
	candidates = c.selector.Rank(candidates, p.tel.Health)
	if len(candidates) > 0 {
		ranked := make([]string, len(candidates))
		for i, ca := range candidates {
			ranked[i] = ca.Address
		}
		p.tel.Selection.Record(oid.Short(), c.selector.Name(), ranked)
	}
	lastErr := error(object.ErrNoReplica)
	for _, ca := range candidates {
		if excluded[ca.Address] {
			continue
		}
		if ctx.Err() != nil {
			lastErr = ctx.Err()
			break
		}
		vb, err := c.verifyReplica(ctx, p, oid, ca.Address, now)
		if err != nil {
			lastErr = err
			p.tel.Failovers.Inc()
			// A failed verification is failure evidence against the
			// address even when every RPC succeeded at the transport
			// layer (a rogue replica serving a bad key or certificate),
			// so the selector demotes detected attackers exactly like
			// dead replicas.
			p.tel.Health.RecordFailure(ca.Address)
			continue
		}
		return vb, nil
	}
	return nil, fmt.Errorf("%w: %w", ErrBindingFailed, lastErr)
}

// verifyReplica runs phases 2b–5 against one replica address. The timing
// phases record the most recent attempt; Bind accumulates across
// attempts.
func (c *Client) verifyReplica(ctx context.Context, p *pipeline, oid globeid.OID, addr string, now time.Time) (*verifiedBinding, error) {
	// Most-recent-attempt semantics: a previous failed candidate's phase
	// times are discarded; only Bind keeps accumulating.
	p.timing.KeyFetch, p.timing.KeyVerify = 0, 0
	p.timing.NameCertFetch, p.timing.NameCertVerify = 0, 0
	p.timing.CertFetch, p.timing.CertVerify = 0, 0

	// Step 4: connect to the (untrusted) replica.
	var client *object.Client
	err := p.step(StepDial, &p.timing.Bind, func() error {
		var derr error
		client, derr = c.Binder.Connect(ctx, oid, addr)
		return derr
	})
	if err != nil {
		return nil, err
	}
	client.Site = c.Binder.Site

	fail := func(phase string, cause error) (*verifiedBinding, error) {
		client.Close()
		return nil, c.secErr(phase, cause)
	}

	// Steps 5–6: retrieve the object's public key and self-certify it.
	var pk keys.PublicKey
	err = p.step(StepKeyFetch, &p.timing.KeyFetch, func() error {
		var kerr error
		pk, kerr = client.GetPublicKey(ctx)
		return kerr
	})
	if err != nil {
		client.Close()
		return nil, fmt.Errorf("core: fetching object key: %w", err)
	}
	err = p.step(StepKeyVerify, &p.timing.KeyVerify, func() error {
		return oid.Verify(pk)
	})
	if err != nil {
		return fail("self-certification", err)
	}

	// Steps 7–8 (optional): identity certificates against the user's CAs.
	certifiedAs := ""
	if c.trust != nil {
		var nameCerts []*cert.NameCertificate
		err = p.step(StepNameCertFetch, &p.timing.NameCertFetch, func() error {
			var nerr error
			nameCerts, nerr = client.GetNameCerts(ctx)
			return nerr
		})
		if err != nil {
			client.Close()
			return nil, fmt.Errorf("core: fetching identity certificates: %w", err)
		}
		var subject string
		err = p.step(StepNameCertVerify, &p.timing.NameCertVerify, func() error {
			var verr error
			subject, verr = c.trust.FirstTrusted(nameCerts, oid, now)
			return verr
		})
		if err == nil {
			certifiedAs = subject
		} else if c.requireIdentity {
			return fail("identity-certificate", err)
		}
	}

	// Steps 9–10: integrity certificate, verified under the object key.
	var icert *cert.IntegrityCertificate
	err = p.step(StepCertFetch, &p.timing.CertFetch, func() error {
		var cerr error
		icert, cerr = client.GetIntegrityCert(ctx)
		return cerr
	})
	if err != nil {
		client.Close()
		return nil, fmt.Errorf("core: fetching integrity certificate: %w", err)
	}
	err = p.step(StepCertVerify, &p.timing.CertVerify, func() error {
		if c.vcache != nil {
			// Memoized verification: identical certificate signatures are
			// checked once per validity window, concurrent misses share
			// one in-flight check (signature_cache_hits_total).
			return icert.VerifySignatureUsing(oid, pk, func(k keys.PublicKey, message, sig []byte) error {
				return c.vcache.VerifySignature(k, message, sig, icert.MaxExpiry(), now)
			})
		}
		return icert.VerifySignature(oid, pk)
	})
	if err != nil {
		return fail("integrity-certificate", err)
	}

	return &verifiedBinding{
		client:      client,
		key:         pk,
		icert:       icert,
		certifiedAs: certifiedAs,
	}, nil
}

// refreshPolicy returns the certificate-refresh retry policy: the
// configured one, or a two-attempt no-delay policy reproducing the
// historical "refresh once" behaviour.
func (c *Client) refreshPolicy() *transport.RetryPolicy {
	if c.retry != nil {
		return c.retry
	}
	return &transport.RetryPolicy{MaxAttempts: 2}
}

func (c *Client) cachedBinding(oid globeid.OID, now time.Time) (*verifiedBinding, bool) {
	if !c.cacheBindings {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lookupBindingLocked(oid)
}

// lookupBindingLocked returns the cached binding for oid, promoting it
// to most-recently-used. Caller holds c.mu.
func (c *Client) lookupBindingLocked(oid globeid.OID) (*verifiedBinding, bool) {
	node, ok := c.cache[oid]
	if !ok {
		return nil, false
	}
	c.bindingLRU.MoveToFront(node)
	return node.Value.(*bindingEntry).vb, true
}

// storeBindingLocked parks a freshly verified binding, replacing any
// previous one for the same OID (closing its connection) and evicting
// least-recently-used bindings beyond the cache bound. A refreshed
// certificate also reconciles the verified-content cache: entries whose
// hash the new certificate no longer lists stop being servable the
// moment the new version is verified. Caller holds c.mu.
func (c *Client) storeBindingLocked(oid globeid.OID, vb *verifiedBinding) {
	if node, ok := c.cache[oid]; ok {
		old := node.Value.(*bindingEntry)
		if old.vb != vb {
			old.vb.client.Close()
			old.vb = vb
		}
		c.bindingLRU.MoveToFront(node)
	} else {
		c.cache[oid] = c.bindingLRU.PushFront(&bindingEntry{oid: oid, vb: vb})
		for len(c.cache) > c.maxBindings {
			tail := c.bindingLRU.Back()
			if tail == nil {
				break
			}
			evicted := tail.Value.(*bindingEntry)
			c.bindingLRU.Remove(tail)
			delete(c.cache, evicted.oid)
			evicted.vb.client.Close()
		}
	}
	c.tel().BindingCacheEntries.Set(int64(len(c.cache)))
	if c.vcache != nil {
		listed := make(map[[globeid.Size]byte]bool, len(vb.icert.Entries))
		for _, e := range vb.icert.Entries {
			listed[e.Hash] = true
		}
		c.vcache.Reconcile(oid, listed)
	}
}

func (c *Client) storeBinding(oid globeid.OID, vb *verifiedBinding) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.storeBindingLocked(oid, vb)
}

func (c *Client) dropBinding(oid globeid.OID, vb *verifiedBinding) {
	c.mu.Lock()
	if node, ok := c.cache[oid]; ok && node.Value.(*bindingEntry).vb == vb {
		c.bindingLRU.Remove(node)
		delete(c.cache, oid)
		c.tel().BindingCacheEntries.Set(int64(len(c.cache)))
	}
	c.mu.Unlock()
	vb.client.Close()
}

// invalidateContent drops every verified-content cache entry vouched for
// under oid. Called whenever a replica interaction for oid fails a
// security check or fails over: bytes whose provenance is now suspect
// must be re-fetched and re-verified, never served from cache.
func (c *Client) invalidateContent(oid globeid.OID) {
	if c.vcache != nil {
		c.vcache.InvalidateOID(oid)
	}
}

// ElementsNamed resolves name and returns the verified integrity
// certificate's entries — the authenticated table of contents of the
// object. No element content is transferred.
func (c *Client) ElementsNamed(ctx context.Context, name string) ([]cert.ElementEntry, error) {
	ctx = orBackground(ctx)
	oid, err := c.Binder.Names.Resolve(ctx, name)
	if err != nil {
		return nil, fmt.Errorf("core: resolving %q: %w", name, err)
	}
	return c.Elements(ctx, oid)
}

// Elements returns the verified certificate entries for oid.
func (c *Client) Elements(ctx context.Context, oid globeid.OID) ([]cert.ElementEntry, error) {
	ctx = orBackground(ctx)
	ctx, p := c.newPipeline(ctx, SpanElements)
	p.root.Annotate("oid", oid.Short())
	entries, err := c.elements(ctx, p, oid)
	if err != nil {
		p.finish("error")
		return nil, err
	}
	p.finish("ok")
	return entries, nil
}

func (c *Client) elements(ctx context.Context, p *pipeline, oid globeid.OID) ([]cert.ElementEntry, error) {
	now := c.now()
	vb, warm := c.cachedBinding(oid, now)
	if !warm {
		var shared bool
		var err error
		vb, shared, err = c.establishBinding(ctx, p, oid, now, nil)
		if err != nil {
			return nil, err
		}
		if !shared && !c.cacheBindings {
			defer vb.client.Close()
		}
	}
	return append([]cert.ElementEntry(nil), vb.icert.Entries...), nil
}

// FetchAll securely fetches every element listed in the object's
// integrity certificate, returning elements in certificate order. It is
// the "download the whole document" operation the paper's Figures 5–7
// time against Apache. Elements are retrieved by a bounded worker pool
// (Options.FetchWorkers); on the first failure remaining work is
// cancelled and the ordered prefix of verified elements is returned
// alongside the error.
func (c *Client) FetchAll(ctx context.Context, oid globeid.OID) ([]FetchResult, error) {
	ctx = orBackground(ctx)
	ctx, p := c.newPipeline(ctx, SpanFetchAll)
	p.root.Annotate("oid", oid.Short())
	out, err := c.fetchAll(ctx, p, oid)
	if err != nil {
		p.finish("error")
		return out, err
	}
	p.finish("ok")
	return out, nil
}

func (c *Client) fetchAll(ctx context.Context, p *pipeline, oid globeid.OID) ([]FetchResult, error) {
	// Bind once (cold, shared or cached), then fan element fetches out
	// over a bounded worker pool sharing the verified binding. Each
	// element runs its own fresh pipeline under the fetch.all root span,
	// so per-element spans and Timing stay attributable.
	now := c.now()
	vb, warm := c.cachedBinding(oid, now)
	shared := false
	if !warm {
		var err error
		vb, shared, err = c.establishBinding(ctx, p, oid, now, nil)
		if err != nil {
			return nil, err
		}
	}
	owned := !warm && !shared && !c.cacheBindings
	if owned {
		// Close on every exit: the historical code leaked the conn when
		// an element failed mid-loop (and never covered the warm path).
		defer vb.client.Close()
	}
	entries := vb.icert.Entries
	if len(entries) == 0 {
		return nil, nil
	}

	// One pipelined GetElements exchange prefetches every element the
	// verified-content cache cannot already serve; workers then verify
	// from the prefetched bytes and fall back to individual fetches for
	// anything the batch could not carry.
	prefetched, batchShare := c.batchPrefetch(ctx, p, vb, entries, now)

	workers := c.fetchWorkers
	if workers > len(entries) {
		workers = len(entries)
	}
	gctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type slot struct {
		res  FetchResult
		err  error
		done bool
	}
	out := make([]slot, len(entries))
	var next atomic.Int64
	var failOnce sync.Once
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(entries) || gctx.Err() != nil {
					return
				}
				res, err := c.fetchVia(gctx, p.fresh(), vb, entries[i].Name, now, warm, shared, prefetched, batchShare)
				out[i] = slot{res: res, err: err, done: true}
				if err != nil {
					failOnce.Do(func() {
						firstErr = err
						cancel()
					})
					return
				}
			}
		}()
	}
	wg.Wait()

	results := make([]FetchResult, 0, len(entries))
	for i := range out {
		if !out[i].done || out[i].err != nil {
			break
		}
		results = append(results, out[i].res)
	}
	if firstErr != nil {
		// Whatever failed — dead replica or failed check — the binding
		// is suspect: neither keep it cached, nor leak its connection,
		// nor serve content it vouched for from the cache.
		c.dropBinding(oid, vb)
		c.invalidateContent(oid)
		return results, firstErr
	}
	return results, nil
}

// batchPrefetch retrieves the elements the verified-content cache cannot
// serve in one GetElements exchange over the shared binding, returning
// the successfully carried elements keyed by name plus the per-element
// amortized share of the exchange's duration. Every failure mode — a v1
// server without the batch operation, a transport fault, or per-item
// declines — degrades to nil/partial prefill; the workers' individual
// fetches then carry their own error handling, so batching never changes
// failure semantics, only round trips. The prefetched bytes are NOT
// trusted: each element still runs the full verification steps with the
// same phase attribution as a serial fetch.
func (c *Client) batchPrefetch(ctx context.Context, p *pipeline, vb *verifiedBinding, entries []cert.ElementEntry, now time.Time) (map[string]document.Element, time.Duration) {
	if c.noBatchFetch || len(entries) < 2 {
		return nil, 0
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if c.vcache != nil && e.CheckFreshness(now) == nil && c.vcache.Contains(e.Hash) {
			continue // the per-element vcache consult will serve it
		}
		names = append(names, e.Name)
	}
	if len(names) < 2 {
		return nil, 0
	}
	sp := p.root.StartChild(StepBatchFetch)
	sp.Annotate("elements", strconv.Itoa(len(names)))
	items, err := vb.client.GetElements(ctx, names)
	if err != nil {
		sp.Annotate("error", err.Error())
		sp.End()
		return nil, 0
	}
	sp.End()
	got := make(map[string]document.Element, len(items))
	for _, it := range items {
		if it.Err == nil {
			got[it.Name] = it.Element
		}
	}
	c.tel().BatchFetches.Inc()
	c.tel().BatchElements.Add(uint64(len(got)))
	if len(got) == 0 {
		return nil, 0
	}
	return got, sp.Duration() / time.Duration(len(got))
}

func (c *Client) fetchVia(ctx context.Context, p *pipeline, vb *verifiedBinding, element string, now time.Time, warm, shared bool, prefetched map[string]document.Element, batchShare time.Duration) (FetchResult, error) {
	// The verified-content cache serves FetchAll workers too; a
	// whole-document download re-transfers only the elements whose bytes
	// are not already held under the current certificate. Lapsed entries
	// are left to the normal post-fetch freshness check — FetchAll's
	// caller handles the failure, there is no per-element re-bind here.
	var vcEntry cert.ElementEntry
	vcFresh := false
	if c.vcache != nil {
		if entry, cerr := vb.icert.CheckConsistency(element); cerr == nil && entry.CheckFreshness(now) == nil {
			vcEntry, vcFresh = entry, true
			if cached, hit := c.vcacheGet(p, entry, now); hit {
				return FetchResult{
					Element:       document.Element{Name: element, ContentType: cached.ContentType, Data: cached.Data},
					CertifiedAs:   vb.certifiedAs,
					ReplicaAddr:   vb.client.Addr(),
					Timing:        p.timing,
					WarmBinding:   warm,
					SharedBinding: shared,
					FromCache:     true,
				}, nil
			}
		}
	}
	var elem document.Element
	if pre, ok := prefetched[element]; ok {
		// Served from the batch exchange: credit this element's amortized
		// slice of the batch duration to ElementFetch so the Figure-4
		// phase accounting still describes where the time went.
		sp := p.root.StartChild(StepElementFetch)
		sp.Annotate("source", "batch")
		sp.End()
		p.timing.ElementFetch += batchShare
		elem = pre
	} else {
		err := p.step(StepElementFetch, &p.timing.ElementFetch, func() error {
			var ferr error
			elem, ferr = vb.client.GetElement(ctx, element)
			return ferr
		})
		if err != nil {
			return FetchResult{}, fmt.Errorf("core: fetching element %q: %w", element, err)
		}
	}
	if err := c.verifyElement(p, vb, element, elem.Data, now); err != nil {
		return FetchResult{}, c.secErr("element", err)
	}
	if c.vcache != nil && vcFresh {
		c.vcache.Put(vb.icert.ObjectID, vcEntry.Hash, vcache.Element{ContentType: elem.ContentType, Data: elem.Data}, vcEntry.Expires)
	}
	return FetchResult{
		Element:       elem,
		CertifiedAs:   vb.certifiedAs,
		ReplicaAddr:   vb.client.Addr(),
		Timing:        p.timing,
		WarmBinding:   warm,
		SharedBinding: shared,
	}, nil
}
