// Package core implements the GlobeDoc security architecture — the
// paper's primary contribution (§3): end-to-end integrity guarantees for
// Web documents replicated on untrusted servers.
//
// The exported Client runs the complete secure-browsing pipeline of
// Figure 3 for every fetch:
//
//  1. resolve the object name to a self-certifying OID (secure naming
//     service);
//  2. find the closest replica (untrusted location service);
//  3. retrieve the object's public key from the replica and check
//     SHA-1(key) == OID — self-certification, no CA involved;
//  4. optionally retrieve CA-signed identity certificates and match
//     them against the user's trusted-CA list ("Certified as: ...");
//  5. retrieve the integrity certificate and verify its signature
//     under the object key;
//  6. retrieve the requested page element;
//  7. verify authenticity (hash), consistency (requested name) and
//     freshness (validity interval).
//
// Every phase is individually timed; the security-specific phases are
// exactly the set the paper instruments for Figure 4, so the benchmark
// harness reads the overhead directly from a fetch's Timing.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"globedoc/internal/cert"
	"globedoc/internal/document"
	"globedoc/internal/globeid"
	"globedoc/internal/keys"
	"globedoc/internal/object"
	"globedoc/internal/transport"
)

// ErrSecurityCheckFailed wraps every verification failure: whatever the
// replica or the intermediate services did, the client refused the data.
// The paper's proxy renders this as the "Security Check Failed" page.
var ErrSecurityCheckFailed = errors.New("core: security check failed")

// SecurityError carries which phase of the pipeline rejected the fetch.
type SecurityError struct {
	Phase string // e.g. "self-certification", "integrity-certificate", "element"
	Err   error
}

func (e *SecurityError) Error() string {
	return fmt.Sprintf("core: security check failed at %s: %v", e.Phase, e.Err)
}

// Unwrap makes errors.Is(err, ErrSecurityCheckFailed) and errors.Is
// against the underlying cert/globeid errors both work.
func (e *SecurityError) Unwrap() []error { return []error{ErrSecurityCheckFailed, e.Err} }

func secErr(phase string, err error) error { return &SecurityError{Phase: phase, Err: err} }

// Timing is the per-phase breakdown of one secure fetch, mirroring the
// timers the paper placed "in various parts of the proxy and server code".
type Timing struct {
	NameResolve    time.Duration // hybrid name -> OID
	Bind           time.Duration // location lookup + connect
	KeyFetch       time.Duration // retrieve object public key
	KeyVerify      time.Duration // SHA-1(key) == OID
	NameCertFetch  time.Duration // retrieve CA identity certificates
	NameCertVerify time.Duration // match against trusted CAs
	CertFetch      time.Duration // retrieve integrity certificate
	CertVerify     time.Duration // verify certificate signature
	ElementFetch   time.Duration // retrieve page element content
	ElementVerify  time.Duration // hash + freshness + consistency checks
}

// Security returns the time spent on security-specific operations — the
// paper's Figure 4 numerator: "retrieving the object's public key,
// verifying its SHA-1 hash matches the object Id, retrieving the object
// certificate and verifying it, computing the hash of the page element
// and verifying it against the hash in the certificate".
func (t Timing) Security() time.Duration {
	return t.KeyFetch + t.KeyVerify + t.NameCertFetch + t.NameCertVerify +
		t.CertFetch + t.CertVerify + t.ElementVerify
}

// Total returns the full client-perceived fetch time.
func (t Timing) Total() time.Duration {
	return t.NameResolve + t.Bind + t.Security() + t.ElementFetch
}

// OverheadPercent returns security time as a percentage of total.
func (t Timing) OverheadPercent() float64 {
	total := t.Total()
	if total == 0 {
		return 0
	}
	return 100 * float64(t.Security()) / float64(total)
}

// Add accumulates u into t (for averaging across iterations).
func (t *Timing) Add(u Timing) {
	t.NameResolve += u.NameResolve
	t.Bind += u.Bind
	t.KeyFetch += u.KeyFetch
	t.KeyVerify += u.KeyVerify
	t.NameCertFetch += u.NameCertFetch
	t.NameCertVerify += u.NameCertVerify
	t.CertFetch += u.CertFetch
	t.CertVerify += u.CertVerify
	t.ElementFetch += u.ElementFetch
	t.ElementVerify += u.ElementVerify
}

// Scale divides every phase by n (for averaging).
func (t Timing) Scale(n int) Timing {
	if n <= 0 {
		return t
	}
	d := time.Duration(n)
	return Timing{
		NameResolve:    t.NameResolve / d,
		Bind:           t.Bind / d,
		KeyFetch:       t.KeyFetch / d,
		KeyVerify:      t.KeyVerify / d,
		NameCertFetch:  t.NameCertFetch / d,
		NameCertVerify: t.NameCertVerify / d,
		CertFetch:      t.CertFetch / d,
		CertVerify:     t.CertVerify / d,
		ElementFetch:   t.ElementFetch / d,
		ElementVerify:  t.ElementVerify / d,
	}
}

// FetchResult is one securely fetched page element.
type FetchResult struct {
	Element document.Element
	// CertifiedAs is the real-world subject from the first identity
	// certificate matching the user's trust list, or "" when identity
	// certification was not requested.
	CertifiedAs string
	// ReplicaAddr is the contact address the element came from.
	ReplicaAddr string
	// Timing is the per-phase breakdown.
	Timing Timing
	// WarmBinding reports whether the verified binding cache was used
	// (skipping phases 1–5).
	WarmBinding bool
}

// verifiedBinding is a cached, fully verified attachment to one object
// replica: connection, self-certified key, and checked certificate.
type verifiedBinding struct {
	client      *object.Client
	key         keys.PublicKey
	icert       *cert.IntegrityCertificate
	certifiedAs string
}

// Client runs the GlobeDoc security pipeline. Construct with a configured
// object.Binder; zero out Trust to skip CA identity certification.
type Client struct {
	// Binder performs name resolution, location and connection.
	Binder *object.Binder
	// Trust is the user's trusted-CA store; nil disables the identity
	// step entirely.
	Trust *cert.TrustStore
	// RequireIdentity makes fetches fail unless some identity
	// certificate matches the trust store (the e-commerce posture of
	// §3.1.2). When false, identity is best-effort: the subject is
	// reported when available.
	RequireIdentity bool
	// CacheBindings keeps verified bindings warm across fetches; each
	// element access then costs one round trip plus verification.
	CacheBindings bool
	// Retry governs how often an expired cached certificate is
	// refreshed before giving up (the re-bind after a freshness
	// failure on a warm binding). Nil means one refresh attempt, the
	// historical behaviour.
	Retry *transport.RetryPolicy
	// Now is the clock used for freshness checks; tests replace it.
	Now func() time.Time

	mu    sync.Mutex
	cache map[globeid.OID]*verifiedBinding
}

// NewClient returns a security client over binder with the default clock.
func NewClient(binder *object.Binder) *Client {
	return &Client{
		Binder: binder,
		Now:    time.Now,
		cache:  make(map[globeid.OID]*verifiedBinding),
	}
}

// Close drops all cached bindings and their connections.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for oid, vb := range c.cache {
		vb.client.Close()
		delete(c.cache, oid)
	}
}

// FlushBindings drops cached bindings (cold-path benchmarks).
func (c *Client) FlushBindings() { c.Close() }

// FetchNamed securely fetches one element of the object bound to name.
func (c *Client) FetchNamed(name, element string) (FetchResult, error) {
	var timing Timing
	start := time.Now()
	oid, err := c.Binder.Names.Resolve(name)
	timing.NameResolve = time.Since(start)
	if err != nil {
		return FetchResult{}, fmt.Errorf("core: resolving %q: %w", name, err)
	}
	return c.fetch(oid, element, timing)
}

// Fetch securely fetches one element of the object identified by oid.
func (c *Client) Fetch(oid globeid.OID, element string) (FetchResult, error) {
	return c.fetch(oid, element, Timing{})
}

func (c *Client) fetch(oid globeid.OID, element string, timing Timing) (FetchResult, error) {
	return c.fetchExcluding(oid, element, timing, nil)
}

// fetchExcluding is fetch with a set of replica addresses already caught
// misbehaving during this operation; they are skipped when re-binding.
func (c *Client) fetchExcluding(oid globeid.OID, element string, timing Timing, excluded map[string]bool) (FetchResult, error) {
	now := c.Now()

	vb, warm := c.cachedBinding(oid, now)
	if !warm {
		var err error
		vb, err = c.establish(oid, now, &timing, excluded)
		if err != nil {
			return FetchResult{}, err
		}
		if c.CacheBindings {
			c.storeBinding(oid, vb)
		}
	}

	// Phase 6: retrieve the page element from the (untrusted) replica.
	start := time.Now()
	elem, err := vb.client.GetElement(element)
	timing.ElementFetch = time.Since(start)
	if err != nil {
		// A replica that times out, resets, or otherwise fails mid-fetch
		// is handled exactly like a detected attack: abandon it and move
		// to the next candidate. A stalled replica thereby degrades a
		// fetch to the next-nearest honest one instead of hanging the
		// pipeline. Warm bindings get one clean re-bind first (the
		// pooled connection may simply be stale); cold ones blacklist
		// the address for this operation.
		addr := vb.client.Addr()
		c.dropBinding(oid, vb)
		next := excluded
		if !warm {
			next = make(map[string]bool, len(excluded)+1)
			for a := range excluded {
				next[a] = true
			}
			next[addr] = true
		}
		res, retryErr := c.fetchExcluding(oid, element, Timing{}, next)
		if retryErr == nil {
			return res, nil
		}
		return FetchResult{}, fmt.Errorf("core: fetching element %q: %w", element, err)
	}

	// Phase 7: authenticity, consistency, freshness (paper §3.2.2).
	start = time.Now()
	err = vb.icert.VerifyElement(element, elem.Data, now)
	timing.ElementVerify = time.Since(start)
	if err != nil {
		if warm && errors.Is(err, cert.ErrFreshness) {
			// The cached certificate may simply have expired; re-bind
			// through the retry policy and retry with a fresh
			// certificate. A freshly fetched certificate that is
			// *still* stale is a security failure (a replica replaying
			// old signed state), marked permanent so the policy stops
			// instead of hammering the replica.
			c.dropBinding(oid, vb)
			var res FetchResult
			doErr := c.refreshPolicy().Do(func() error {
				r, ferr := c.fetchExcluding(oid, element, Timing{}, excluded)
				if ferr != nil {
					if errors.Is(ferr, ErrSecurityCheckFailed) {
						return transport.Permanent(ferr)
					}
					return ferr
				}
				res = r
				return nil
			})
			if doErr != nil {
				return FetchResult{}, doErr
			}
			return res, nil
		}
		if !warm && (errors.Is(err, cert.ErrAuthenticity) || errors.Is(err, cert.ErrConsistency)) {
			// The replica served bogus content despite genuine
			// credentials: blacklist it for this operation and try the
			// next candidate. Detection thereby degrades an attack to a
			// slower fetch instead of a failure, as long as any honest
			// replica remains.
			addr := vb.client.Addr()
			c.dropBinding(oid, vb)
			next := make(map[string]bool, len(excluded)+1)
			for a := range excluded {
				next[a] = true
			}
			next[addr] = true
			res, retryErr := c.fetchExcluding(oid, element, Timing{}, next)
			if retryErr == nil {
				return res, nil
			}
			return FetchResult{}, secErr("element", err)
		}
		return FetchResult{}, secErr("element", err)
	}

	res := FetchResult{
		Element:     elem,
		CertifiedAs: vb.certifiedAs,
		ReplicaAddr: vb.client.Addr(),
		Timing:      timing,
		WarmBinding: warm,
	}
	if !warm && !c.CacheBindings {
		vb.client.Close()
	}
	return res, nil
}

// establish performs phases 2–5: locate candidate replicas, then for
// each (nearest first) connect, self-certify the key, optionally certify
// identity, and verify the integrity certificate. A replica that fails
// ANY check — unreachable or malicious — is abandoned and the next
// candidate is tried, so a compromised near replica degrades a fetch to
// the next-nearest honest one rather than to an error. Only when every
// candidate fails does the fetch fail (the paper's worst case: denial of
// service).
func (c *Client) establish(oid globeid.OID, now time.Time, timing *Timing, excluded map[string]bool) (*verifiedBinding, error) {
	start := time.Now()
	candidates, _, err := c.Binder.Candidates(oid)
	timing.Bind = time.Since(start)
	if err != nil {
		return nil, err
	}
	lastErr := error(object.ErrNoReplica)
	for _, ca := range candidates {
		if excluded[ca.Address] {
			continue
		}
		vb, err := c.verifyReplica(oid, ca.Address, now, timing)
		if err != nil {
			lastErr = err
			continue
		}
		return vb, nil
	}
	return nil, lastErr
}

// verifyReplica runs phases 2b–5 against one replica address. The timing
// phases record the most recent attempt; Bind accumulates across
// attempts.
func (c *Client) verifyReplica(oid globeid.OID, addr string, now time.Time, timing *Timing) (*verifiedBinding, error) {
	// Phase 2b: connect to the (untrusted) replica.
	start := time.Now()
	client, err := c.Binder.Connect(oid, addr)
	timing.Bind += time.Since(start)
	if err != nil {
		return nil, err
	}
	client.Site = c.Binder.Site

	fail := func(phase string, cause error) (*verifiedBinding, error) {
		client.Close()
		return nil, secErr(phase, cause)
	}

	// Phase 3: retrieve the object's public key and self-certify it.
	start = time.Now()
	pk, err := client.GetPublicKey()
	timing.KeyFetch = time.Since(start)
	if err != nil {
		client.Close()
		return nil, fmt.Errorf("core: fetching object key: %w", err)
	}
	start = time.Now()
	err = oid.Verify(pk)
	timing.KeyVerify = time.Since(start)
	if err != nil {
		return fail("self-certification", err)
	}

	// Phase 4 (optional): identity certificates against the user's CAs.
	certifiedAs := ""
	if c.Trust != nil {
		start = time.Now()
		nameCerts, err := client.GetNameCerts()
		timing.NameCertFetch = time.Since(start)
		if err != nil {
			client.Close()
			return nil, fmt.Errorf("core: fetching identity certificates: %w", err)
		}
		start = time.Now()
		subject, err := c.Trust.FirstTrusted(nameCerts, oid, now)
		timing.NameCertVerify = time.Since(start)
		if err == nil {
			certifiedAs = subject
		} else if c.RequireIdentity {
			return fail("identity-certificate", err)
		}
	}

	// Phase 5: integrity certificate, verified under the object key.
	start = time.Now()
	icert, err := client.GetIntegrityCert()
	timing.CertFetch = time.Since(start)
	if err != nil {
		client.Close()
		return nil, fmt.Errorf("core: fetching integrity certificate: %w", err)
	}
	start = time.Now()
	err = icert.VerifySignature(oid, pk)
	timing.CertVerify = time.Since(start)
	if err != nil {
		return fail("integrity-certificate", err)
	}

	return &verifiedBinding{
		client:      client,
		key:         pk,
		icert:       icert,
		certifiedAs: certifiedAs,
	}, nil
}

// refreshPolicy returns the certificate-refresh retry policy: the
// configured one, or a two-attempt no-delay policy reproducing the
// historical "refresh once" behaviour.
func (c *Client) refreshPolicy() *transport.RetryPolicy {
	if c.Retry != nil {
		return c.Retry
	}
	return &transport.RetryPolicy{MaxAttempts: 2}
}

func (c *Client) cachedBinding(oid globeid.OID, now time.Time) (*verifiedBinding, bool) {
	if !c.CacheBindings {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	vb, ok := c.cache[oid]
	return vb, ok
}

func (c *Client) storeBinding(oid globeid.OID, vb *verifiedBinding) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.cache[oid]; ok && old != vb {
		old.client.Close()
	}
	c.cache[oid] = vb
}

func (c *Client) dropBinding(oid globeid.OID, vb *verifiedBinding) {
	c.mu.Lock()
	if cur, ok := c.cache[oid]; ok && cur == vb {
		delete(c.cache, oid)
	}
	c.mu.Unlock()
	vb.client.Close()
}

// ElementsNamed resolves name and returns the verified integrity
// certificate's entries — the authenticated table of contents of the
// object. No element content is transferred.
func (c *Client) ElementsNamed(name string) ([]cert.ElementEntry, error) {
	oid, err := c.Binder.Names.Resolve(name)
	if err != nil {
		return nil, fmt.Errorf("core: resolving %q: %w", name, err)
	}
	return c.Elements(oid)
}

// Elements returns the verified certificate entries for oid.
func (c *Client) Elements(oid globeid.OID) ([]cert.ElementEntry, error) {
	now := c.Now()
	vb, warm := c.cachedBinding(oid, now)
	if !warm {
		var timing Timing
		var err error
		vb, err = c.establish(oid, now, &timing, nil)
		if err != nil {
			return nil, err
		}
		if c.CacheBindings {
			c.storeBinding(oid, vb)
		} else {
			defer vb.client.Close()
		}
	}
	return append([]cert.ElementEntry(nil), vb.icert.Entries...), nil
}

// FetchAll securely fetches every element listed in the object's
// integrity certificate, returning elements in certificate order. It is
// the "download the whole document" operation the paper's Figures 5–7
// time against Apache.
func (c *Client) FetchAll(oid globeid.OID) ([]FetchResult, error) {
	// Bind once (cold or cached), then fetch each element.
	now := c.Now()
	vb, warm := c.cachedBinding(oid, now)
	if !warm {
		var timing Timing
		var err error
		vb, err = c.establish(oid, now, &timing, nil)
		if err != nil {
			return nil, err
		}
		c.storeBindingIfEnabled(oid, vb)
		defer func() {
			if !c.CacheBindings {
				vb.client.Close()
			}
		}()
	}
	var out []FetchResult
	for _, entry := range vb.icert.Entries {
		res, err := c.fetchVia(vb, entry.Name, now, warm)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

func (c *Client) storeBindingIfEnabled(oid globeid.OID, vb *verifiedBinding) {
	if c.CacheBindings {
		c.storeBinding(oid, vb)
	}
}

func (c *Client) fetchVia(vb *verifiedBinding, element string, now time.Time, warm bool) (FetchResult, error) {
	var timing Timing
	start := time.Now()
	elem, err := vb.client.GetElement(element)
	timing.ElementFetch = time.Since(start)
	if err != nil {
		return FetchResult{}, fmt.Errorf("core: fetching element %q: %w", element, err)
	}
	start = time.Now()
	err = vb.icert.VerifyElement(element, elem.Data, now)
	timing.ElementVerify = time.Since(start)
	if err != nil {
		return FetchResult{}, secErr("element", err)
	}
	return FetchResult{
		Element:     elem,
		CertifiedAs: vb.certifiedAs,
		ReplicaAddr: vb.client.Addr(),
		Timing:      timing,
		WarmBinding: warm,
	}, nil
}
