package core

import (
	"math"
	"sort"

	"globedoc/internal/location"
	"globedoc/internal/telemetry"
)

// Selector is the replica-selection policy of a Client: given the
// candidate contact addresses the (untrusted) location service returned
// for an object — nearest-first in the location tree's expanding-ring
// order — it decides the order in which the secure-binding pipeline will
// try them. Failover iterates the returned order, so the Selector is the
// ONE ranking code path: there is no separate failover sort.
//
// Selection is pure policy, never trust: whatever order a Selector
// produces, every replica tried still runs the full verification
// pipeline (self-certification, certificate checks, per-element
// verification). A bad ranking — whether from a misconfigured selector
// or from forged location metadata — costs latency, not integrity.
//
// Implementations must be safe for concurrent use; a Client calls Rank
// from concurrent fetches.
type Selector interface {
	// Name identifies the policy in telemetry (globedoc-selection/1).
	Name() string
	// Rank returns the candidates in preference order, best first. The
	// input slice must not be mutated; implementations return a new
	// slice (or the input unchanged when no reordering is needed).
	// health carries the client's per-address RTT/error-rate EWMAs and
	// may be nil when the client records no health data.
	Rank(candidates []location.ContactAddress, health *telemetry.HealthTracker) []location.ContactAddress
}

// OrderedSelector preserves the location service's nearest-first order
// unchanged — the pre-PR-8 behaviour, kept as the ablation baseline for
// the placement benchmark (and for deployments that want the location
// tree's distance ranking to be authoritative).
type OrderedSelector struct{}

// Name implements Selector.
func (OrderedSelector) Name() string { return "ordered" }

// Rank implements Selector: the identity ranking.
func (OrderedSelector) Rank(candidates []location.ContactAddress, _ *telemetry.HealthTracker) []location.ContactAddress {
	return candidates
}

// Milli-second cost model of HealthRankedSelector: every candidate is
// reduced to an expected-latency score and sorted ascending.
const (
	// failoverPenaltyMillis is the modelled cost of trying a failing
	// replica first: roughly one worst-case (transatlantic) round trip
	// wasted before failover moves on. Each consecutive failure adds a
	// full penalty, so a dead replica sinks fast; the error-rate EWMA
	// adds a proportional share, so a flaky one sinks gradually and
	// heals (the EWMA decays) once it recovers.
	failoverPenaltyMillis = 250
	// sameZonePriorMillis is the RTT assumed for an unmeasured address
	// advertising the client's own zone.
	sameZonePriorMillis = 5
	// unknownZonePriorMillis is the RTT assumed when zones cannot be
	// compared (no metadata from a pre-PR-8 location service, or the
	// client's zone is unset).
	unknownZonePriorMillis = 100
	// otherZonePriorMillis is the RTT assumed for an unmeasured address
	// in a different zone than the client.
	otherZonePriorMillis = 200
)

// HealthRankedSelector is the default policy: rank candidates by
// expected fetch latency, combining three signals in one score —
//
//   - the measured per-address RTT EWMA, when the client has talked to
//     the address before (telemetry.HealthTracker, fed by every
//     transport call);
//   - a zone prior standing in for RTT until it is measured: an address
//     advertising the client's zone is presumed near, a foreign zone
//     far, and missing metadata in between;
//   - failure evidence, each consecutive failure costing one modelled
//     failover round trip and the error-rate EWMA a proportional share,
//     preserving PR 7's demote-known-bad ordering.
//
// An unmeasured candidate is never priored below what the location
// service's own distance ordering implies: the expanding-ring order IS
// distance information, so a candidate listed before a measured one is
// presumed at least as fast as it (its estimate is capped at the best
// measured RTT among later candidates). Without this, a newly created
// nearby replica could lose to a well-measured far one forever and
// never be tried.
//
// The sort is stable, so the location service's nearest-first order
// breaks exact ties, and among same-scored candidates a higher
// advertised Weight wins. Scores are computed once per address before
// sorting: Penalty/Lookup re-decay under the tracker lock, so a live
// comparator could see a time-shifting order.
type HealthRankedSelector struct {
	// Zone is the client's own zone label (the top-level region of its
	// site). Empty disables the same/other-zone priors — every
	// unmeasured address gets the neutral prior.
	Zone string
}

// Name implements Selector.
func (s HealthRankedSelector) Name() string { return "health-ranked" }

// Rank implements Selector.
func (s HealthRankedSelector) Rank(candidates []location.ContactAddress, health *telemetry.HealthTracker) []location.ContactAddress {
	if len(candidates) < 2 {
		return candidates
	}
	out := append([]location.ContactAddress(nil), candidates...)
	// One health lookup per candidate, snapshotted before sorting.
	rtt := make([]float64, len(out))  // measured EWMA, or -1
	fail := make([]float64, len(out)) // consecutive failures + error rate
	for i, ca := range out {
		rtt[i] = -1
		if ah, ok := health.Lookup(ca.Address); ok {
			if ah.HasRTT {
				rtt[i] = ah.RTTMillis
			}
			fail[i] = float64(ah.ConsecutiveFailures) + ah.ErrorRate
		}
	}
	// Estimate per candidate IN LOCATION ORDER: measured RTT when
	// available; otherwise the zone prior, capped at the best measured
	// RTT among candidates the location service ranked farther (the
	// distance-order optimism documented above). suffixBest[i] is that
	// cap for position i.
	score := make([]float64, len(out))
	suffixBest := math.Inf(1)
	for i := len(out) - 1; i >= 0; i-- {
		est := rtt[i]
		if est < 0 {
			est = math.Min(s.rttPrior(out[i].Zone), suffixBest)
		} else {
			suffixBest = math.Min(suffixBest, est)
		}
		score[i] = est + fail[i]*failoverPenaltyMillis
	}
	idx := make([]int, len(out))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if score[idx[a]] != score[idx[b]] {
			return score[idx[a]] < score[idx[b]]
		}
		return out[idx[a]].Weight > out[idx[b]].Weight
	})
	ranked := make([]location.ContactAddress, len(out))
	for i, j := range idx {
		ranked[i] = out[j]
	}
	return ranked
}

func (s HealthRankedSelector) rttPrior(zone string) float64 {
	if s.Zone == "" || zone == "" {
		return unknownZonePriorMillis
	}
	if zone == s.Zone {
		return sameZonePriorMillis
	}
	return otherZonePriorMillis
}

var (
	_ Selector = OrderedSelector{}
	_ Selector = HealthRankedSelector{}
)
