package attack_test

// Flaky (crashed or lossy, NOT malicious) replicas. The paper's failover
// argument covers byzantine replicas; these tests prove the same
// machinery absorbs plain fail-stop and fail-slow behaviour: a replica
// that resets connections mid-transfer or silently swallows frames is
// skipped like a detected attacker, and an honest replica one ring out
// still serves a verified fetch within a bounded time.

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"globedoc/internal/attack"
	"globedoc/internal/core"
	"globedoc/internal/keys/keytest"
	"globedoc/internal/location"
	"globedoc/internal/netsim"
	"globedoc/internal/object"
	"globedoc/internal/transport"
)

// startFlakyHonest starts an honest replica at host whose accepted
// connections are wrapped with the given fault plan (server side), so the
// replica is genuine but its transport misbehaves.
func startFlakyHonest(t *testing.T, n *netsim.Network, host, svc string, state attack.ReplicaState, plan netsim.FaultPlan) {
	t.Helper()
	l, err := n.Listen(host, svc)
	if err != nil {
		t.Fatal(err)
	}
	var wrapped net.Listener = netsim.FaultListener(l, plan, 7, nil)
	srv := attack.NewMaliciousServer(attack.Honest, state)
	srv.Start(wrapped)
	t.Cleanup(srv.Close)
}

// flakyClient builds a secure client at amsterdam-secondary that sees the
// given contact addresses in order, with tight transport deadlines so a
// dead-air replica costs one timeout, not a hang.
func flakyClient(t *testing.T, n *netsim.Network, addrs []location.ContactAddress) *core.Client {
	t.Helper()
	client, err := core.NewClient(&object.Binder{
		Locator: multiReplicaLocator{addrs: addrs},
		Dial: func(addr string) transport.DialFunc {
			return n.Dialer(netsim.AmsterdamSecondary, addr)
		},
		Site: netsim.AmsterdamSecondary,
		Transport: transport.Config{
			DialTimeout: 200 * time.Millisecond,
			CallTimeout: 200 * time.Millisecond,
		},
	}, core.Options{Now: func() time.Time { return t0.Add(time.Minute) }})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)
	return client
}

func TestFailoverPastCrashedMidTransferReplica(t *testing.T) {
	// The nearest replica is honest but crashes mid-transfer: after a few
	// hundred response bytes its connections reset. The client must treat
	// that like a detected attack and recover via the healthy replica.
	owner := keytest.RSA()
	state := genuineState(t, owner, map[string][]byte{"index.html": []byte("survives crashes")}, t0, time.Hour)

	n := netsim.PaperTestbed(0)
	t.Cleanup(n.Close)
	// Budget of 200 bytes: enough for the ping exchange, dead before the
	// object key (an RSA key alone overruns it) finishes transferring.
	startFlakyHonest(t, n, netsim.Paris, "flaky", state, netsim.FaultPlan{ResetAfterBytes: 200})
	honestL, err := n.Listen(netsim.AmsterdamPrimary, "honest")
	if err != nil {
		t.Fatal(err)
	}
	honest := attack.NewMaliciousServer(attack.Honest, state)
	honest.Start(honestL)
	t.Cleanup(honest.Close)

	client := flakyClient(t, n, []location.ContactAddress{
		{Address: "paris:flaky", Protocol: object.Protocol},
		{Address: "amsterdam-primary:honest", Protocol: object.Protocol},
	})
	res, err := client.Fetch(context.Background(), state.OID, "index.html")
	if err != nil {
		t.Fatalf("fetch with healthy fallback failed: %v", err)
	}
	if string(res.Element.Data) != "survives crashes" {
		t.Fatalf("Data = %q", res.Element.Data)
	}
	if res.ReplicaAddr != "amsterdam-primary:honest" {
		t.Errorf("served from %q, want the healthy replica", res.ReplicaAddr)
	}
}

func TestFailoverPastFrameDroppingReplica(t *testing.T) {
	// The nearest replica swallows every response frame — dead air, not
	// an error. Only the client's deadlines can unstick it; failover must
	// then reach the healthy replica within a bounded time.
	owner := keytest.RSA()
	state := genuineState(t, owner, map[string][]byte{"index.html": []byte("still here")}, t0, time.Hour)

	n := netsim.PaperTestbed(0)
	t.Cleanup(n.Close)
	startFlakyHonest(t, n, netsim.Paris, "blackhole", state, netsim.FaultPlan{DropProb: 1})
	honestL, err := n.Listen(netsim.AmsterdamPrimary, "honest")
	if err != nil {
		t.Fatal(err)
	}
	honest := attack.NewMaliciousServer(attack.Honest, state)
	honest.Start(honestL)
	t.Cleanup(honest.Close)

	client := flakyClient(t, n, []location.ContactAddress{
		{Address: "paris:blackhole", Protocol: object.Protocol},
		{Address: "amsterdam-primary:honest", Protocol: object.Protocol},
	})
	start := time.Now()
	res, err := client.Fetch(context.Background(), state.OID, "index.html")
	if err != nil {
		t.Fatalf("fetch past black-hole replica failed: %v", err)
	}
	if string(res.Element.Data) != "still here" {
		t.Fatalf("Data = %q", res.Element.Data)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("failover took %v; deadlines should bound it well under 5s", elapsed)
	}
}

func TestAllReplicasFlakyIsBoundedDoS(t *testing.T) {
	// Every replica crashes mid-transfer: the fetch must fail cleanly and
	// promptly — flaky infrastructure is at worst denial of service,
	// exactly like malicious infrastructure.
	owner := keytest.RSA()
	state := genuineState(t, owner, map[string][]byte{"index.html": []byte("unreachable")}, t0, time.Hour)

	n := netsim.PaperTestbed(0)
	t.Cleanup(n.Close)
	startFlakyHonest(t, n, netsim.Paris, "flaky", state, netsim.FaultPlan{ResetAfterBytes: 16})
	startFlakyHonest(t, n, netsim.AmsterdamPrimary, "flaky", state, netsim.FaultPlan{ResetAfterBytes: 16})

	client := flakyClient(t, n, []location.ContactAddress{
		{Address: "paris:flaky", Protocol: object.Protocol},
		{Address: "amsterdam-primary:flaky", Protocol: object.Protocol},
	})
	start := time.Now()
	_, err := client.Fetch(context.Background(), state.OID, "index.html")
	if err == nil {
		t.Fatal("fetch succeeded with every replica crashing")
	}
	if errors.Is(err, core.ErrSecurityCheckFailed) {
		t.Errorf("crash-only replicas misreported as security failure: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("clean failure took %v, want prompt bounded error", elapsed)
	}
}
