package attack

import (
	"net"
	"sync/atomic"

	"globedoc/internal/document"
	"globedoc/internal/enc"
	"globedoc/internal/object"
	"globedoc/internal/server"
	"globedoc/internal/transport"
)

// DeltaMode selects how a malicious primary corrupts obj.getdelta
// replies. The delta path hands the composed bundle to the same
// signature/hash validation as a full transfer, so every one of these
// lies must degrade to denial of service: the victim falls back to a
// full obj.getbundle pull and converges on genuine state.
type DeltaMode int

// Delta attack modes.
const (
	// DeltaHonest relays genuine deltas (control case).
	DeltaHonest DeltaMode = iota
	// DeltaForgeContent flips bytes in a changed element's payload while
	// leaving the certificate and chain intact.
	DeltaForgeContent
	// DeltaTruncate drops a changed item from the reply, so the composed
	// bundle no longer matches the chain head's element-root commitment.
	DeltaTruncate
	// DeltaReorderHeaders swaps chain headers, breaking the monotonic
	// have..new linkage.
	DeltaReorderHeaders
	// DeltaBreakChain corrupts a header's Prev link.
	DeltaBreakChain
	// DeltaLieUnchanged marks a changed element unchanged, trying to pin
	// the victim's stale bytes under the new certificate.
	DeltaLieUnchanged
)

// String names the mode for logs and reports.
func (m DeltaMode) String() string {
	switch m {
	case DeltaHonest:
		return "delta-honest"
	case DeltaForgeContent:
		return "delta-forge-content"
	case DeltaTruncate:
		return "delta-truncate"
	case DeltaReorderHeaders:
		return "delta-reorder-headers"
	case DeltaBreakChain:
		return "delta-break-chain"
	case DeltaLieUnchanged:
		return "delta-lie-unchanged"
	default:
		return "unknown"
	}
}

// AllDeltaModes lists every adversarial delta mode (excluding the honest
// control).
var AllDeltaModes = []DeltaMode{
	DeltaForgeContent, DeltaTruncate, DeltaReorderHeaders, DeltaBreakChain, DeltaLieUnchanged,
}

// MaliciousDeltaPrimary is a wire-compatible primary that serves genuine
// versions and full bundles but corrupts obj.getdelta replies according
// to its Mode. It wraps a genuine server's state, modelling a compromised
// primary (or a man-in-the-middle on the delta channel) that tries to
// smuggle unvalidated bytes through the incremental path.
type MaliciousDeltaPrimary struct {
	Mode DeltaMode

	inner       *server.Server
	srv         *transport.Server
	deltaServed atomic.Uint64
}

// NewMaliciousDeltaPrimary wraps a genuine server holding the object's
// true state.
func NewMaliciousDeltaPrimary(mode DeltaMode, inner *server.Server) *MaliciousDeltaPrimary {
	m := &MaliciousDeltaPrimary{Mode: mode, inner: inner, srv: transport.NewServer()}
	m.srv.Handle(object.OpVersion, m.handleVersion)
	m.srv.Handle(object.OpGetBundle, m.handleGetBundle)
	m.srv.Handle(server.OpGetDelta, m.handleGetDelta)
	return m
}

// Start serves on a background goroutine.
func (m *MaliciousDeltaPrimary) Start(l net.Listener) { m.srv.Start(l) }

// Close shuts the server down.
func (m *MaliciousDeltaPrimary) Close() { m.srv.Close() }

// DeltaServed reports how many obj.getdelta replies were sent, so tests
// can assert the corrupted path was actually exercised.
func (m *MaliciousDeltaPrimary) DeltaServed() uint64 { return m.deltaServed.Load() }

func (m *MaliciousDeltaPrimary) handleVersion(body []byte) ([]byte, error) {
	oid, err := object.DecodeOIDRequest(body)
	if err != nil {
		return nil, err
	}
	b, err := m.inner.ExportBundle(oid)
	if err != nil {
		return nil, err
	}
	w := enc.NewWriter(8)
	w.Uvarint(b.Version)
	return w.Bytes(), nil
}

func (m *MaliciousDeltaPrimary) handleGetBundle(body []byte) ([]byte, error) {
	oid, err := object.DecodeOIDRequest(body)
	if err != nil {
		return nil, err
	}
	// The full path stays honest: the attack targets the delta channel,
	// and a corrupted full bundle is already covered by the bundle
	// validation tests.
	b, err := m.inner.ExportBundle(oid)
	if err != nil {
		return nil, err
	}
	return b.Marshal(), nil
}

func (m *MaliciousDeltaPrimary) handleGetDelta(body []byte) ([]byte, error) {
	oid, have, err := server.DecodeDeltaRequest(body)
	if err != nil {
		return nil, err
	}
	d, err := m.inner.DeltaSince(oid, have)
	if err != nil {
		return nil, err
	}
	m.corrupt(d)
	m.deltaServed.Add(1)
	return d.Marshal(), nil
}

// corrupt applies the mode's lie to a genuine delta reply. The reply
// aliases the inner server's chain headers and element data, so every
// mutation copies first.
func (m *MaliciousDeltaPrimary) corrupt(d *server.DeltaReply) {
	if d.FullRequired {
		return
	}
	switch m.Mode {
	case DeltaForgeContent:
		for i := range d.Items {
			if !d.Items[i].Changed {
				continue
			}
			data := append([]byte(nil), d.Items[i].Element.Data...)
			if len(data) == 0 {
				data = []byte{0x66}
			} else {
				data[0] ^= 0xff
			}
			d.Items[i].Element.Data = data
			return
		}
	case DeltaTruncate:
		for i := len(d.Items) - 1; i >= 0; i-- {
			if d.Items[i].Changed {
				d.Items = append(d.Items[:i:i], d.Items[i+1:]...)
				return
			}
		}
	case DeltaReorderHeaders:
		if len(d.Headers) >= 2 {
			hs := append([]*server.VersionHeader(nil), d.Headers...)
			hs[0], hs[len(hs)-1] = hs[len(hs)-1], hs[0]
			d.Headers = hs
		}
	case DeltaBreakChain:
		if n := len(d.Headers); n > 0 {
			hs := append([]*server.VersionHeader(nil), d.Headers...)
			broken := *hs[n-1]
			broken.Prev[0] ^= 0xff
			hs[n-1] = &broken
			d.Headers = hs
		}
	case DeltaLieUnchanged:
		for i := range d.Items {
			if d.Items[i].Changed {
				d.Items[i].Changed = false
				d.Items[i].Element = document.Element{}
				return
			}
		}
	}
}
