package attack_test

// Adversarial coverage for the batched GetElements path (transport v2):
// a malicious replica that interleaves one tampered element among
// otherwise-genuine ones inside a single batch response must be caught
// with the same per-element verification and phase attribution as a
// serial fetch, and replaying an old signed version through a batch must
// fail the freshness check exactly like its serial counterpart.

import (
	"context"
	"errors"
	"testing"
	"time"

	"globedoc/internal/attack"
	"globedoc/internal/cert"
	"globedoc/internal/core"
	"globedoc/internal/document"
	"globedoc/internal/keys/keytest"
	"globedoc/internal/telemetry"
)

func TestBatchInterleavedTamperDetectedPerElement(t *testing.T) {
	owner := keytest.RSA()
	state := genuineState(t, owner, map[string][]byte{
		"index.html": []byte("genuine index"),
		"logo.png":   []byte("genuine logo"),
		"style.css":  []byte("genuine styles"),
		"app.js":     []byte("genuine script"),
	}, t0, time.Hour)
	srv := attack.NewMaliciousServer(attack.TamperContent, state)
	srv.SetTamperTarget("style.css") // every other batch item is honest
	tel := telemetry.New(nil)
	now := t0.Add(time.Minute)
	client := newVictimClientOpts(t, srv, core.Options{
		Now:       func() time.Time { return now },
		Telemetry: tel,
	})

	failuresBefore := tel.SecurityCheckFailures.With("element").Value()
	_, err := client.FetchAll(context.Background(), state.OID)
	if !errors.Is(err, core.ErrSecurityCheckFailed) {
		t.Fatalf("err = %v, want security check failure", err)
	}
	if !errors.Is(err, cert.ErrAuthenticity) {
		t.Fatalf("err = %v, want authenticity violation on the interleaved element", err)
	}
	var sec *core.SecurityError
	if !errors.As(err, &sec) || sec.Phase != "element" {
		t.Fatalf("failure phase = %v, want \"element\" (same attribution as serial)", err)
	}
	if got := tel.SecurityCheckFailures.With("element").Value() - failuresBefore; got == 0 {
		t.Error("security_check_failures_total{element} did not count the batched tamper")
	}
	if tel.BatchFetches.Value() == 0 {
		t.Fatal("batch_fetch_total = 0: the tampered element never travelled in a batch")
	}
}

func TestBatchStaleReplayFailsFreshness(t *testing.T) {
	owner := keytest.RSA()
	// v1 with a short TTL and several elements (so FetchAll batches);
	// the owner later publishes v2.
	v1 := genuineState(t, owner, map[string][]byte{
		"news.html": []byte("old news"),
		"feed.xml":  []byte("old feed"),
	}, t0, time.Minute)
	v2doc := document.New()
	v2doc.Put(document.Element{Name: "news.html", Data: []byte("fresh news")})
	v2doc.Put(document.Element{Name: "feed.xml", Data: []byte("fresh feed")})
	v2cert, err := document.IssueCertificate(v2doc, v1.OID, owner, t0.Add(2*time.Minute), document.UniformTTL(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	current := attack.ReplicaState{OID: v1.OID, Key: owner.Public(), Doc: v2doc, Cert: v2cert}

	srv := attack.NewMaliciousServer(attack.StaleReplay, current)
	srv.SetStale(v1)
	tel := telemetry.New(nil)
	now := t0.Add(2*time.Minute + 30*time.Second) // past v1's validity
	client := newVictimClientOpts(t, srv, core.Options{
		Now:       func() time.Time { return now },
		Telemetry: tel,
	})

	_, err = client.FetchAll(context.Background(), v1.OID)
	if !errors.Is(err, core.ErrSecurityCheckFailed) || !errors.Is(err, cert.ErrFreshness) {
		t.Fatalf("err = %v, want freshness violation on the replayed batch", err)
	}
}
