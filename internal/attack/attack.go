// Package attack implements the adversaries of the paper's threat model
// (§3.2.1): malicious replica servers that tamper with content, replay
// stale versions, or substitute elements, and a malicious location
// service that directs clients to rogue replicas.
//
// Each adversary is a wire-compatible wrapper: it speaks the genuine
// GlobeDoc protocol, holds genuine (or once-genuine) object state, and
// lies in a specific way. The integration tests and the attacks example
// drive the real security pipeline against them and assert the paper's
// claim: every attack is detected, so untrusted infrastructure can cause
// at most denial of service, never undetected corruption.
package attack

import (
	"context"
	"net"
	"sync"

	"globedoc/internal/cert"
	"globedoc/internal/document"
	"globedoc/internal/globeid"
	"globedoc/internal/keys"
	"globedoc/internal/location"
	"globedoc/internal/object"
	"globedoc/internal/transport"
)

// Mode selects how a malicious replica lies.
type Mode int

// Attack modes.
const (
	// Honest serves genuine state (control case).
	Honest Mode = iota
	// TamperContent flips bytes in every element served.
	TamperContent
	// SubstituteElement answers every element request with a different
	// (genuine, fresh) element of the same object.
	SubstituteElement
	// StaleReplay serves an old version of the state with its old (but
	// genuinely signed) integrity certificate.
	StaleReplay
	// ForgeCertificate rewrites the integrity certificate to match
	// tampered content, re-signing with the attacker's own key.
	ForgeCertificate
	// WrongObject serves a completely different object's state and key
	// (content masquerading).
	WrongObject
)

// String names the mode for logs and reports.
func (m Mode) String() string {
	switch m {
	case Honest:
		return "honest"
	case TamperContent:
		return "tamper-content"
	case SubstituteElement:
		return "substitute-element"
	case StaleReplay:
		return "stale-replay"
	case ForgeCertificate:
		return "forge-certificate"
	case WrongObject:
		return "wrong-object"
	default:
		return "unknown"
	}
}

// AllModes lists every adversarial mode (excluding Honest).
var AllModes = []Mode{TamperContent, SubstituteElement, StaleReplay, ForgeCertificate, WrongObject}

// ReplicaState is the (possibly stale) object state a malicious replica
// serves from.
type ReplicaState struct {
	OID       globeid.OID
	Key       keys.PublicKey
	Doc       *document.Document
	Cert      *cert.IntegrityCertificate
	NameCerts []*cert.NameCertificate
}

// MaliciousServer is a wire-compatible object server that lies according
// to its Mode.
type MaliciousServer struct {
	Mode Mode

	mu      sync.RWMutex
	state   ReplicaState
	stale   *ReplicaState // old state for StaleReplay
	forged  *forgedState  // for ForgeCertificate
	decoy   *ReplicaState // for WrongObject
	srv     *transport.Server
	tampers func([]byte) []byte
	// tamperTarget, when non-empty, restricts TamperContent to that one
	// element: every other element is served genuine. This models the
	// batched-fetch adversary that interleaves a single corrupted element
	// among honest ones inside one GetElements response.
	tamperTarget string
}

type forgedState struct {
	key  *keys.KeyPair
	cert *cert.IntegrityCertificate
}

// NewMaliciousServer builds an adversarial replica around genuine state.
func NewMaliciousServer(mode Mode, state ReplicaState) *MaliciousServer {
	m := &MaliciousServer{
		Mode:  mode,
		state: state,
		srv:   transport.NewServer(),
		tampers: func(data []byte) []byte {
			out := append([]byte(nil), data...)
			if len(out) > 0 {
				out[0] ^= 0xff
			} else {
				out = []byte{0x66}
			}
			return out
		},
	}
	m.srv.Handle(object.OpPing, func([]byte) ([]byte, error) { return nil, nil })
	m.srv.Handle(object.OpGetKey, m.handleGetKey)
	m.srv.Handle(object.OpGetCert, m.handleGetCert)
	m.srv.Handle(object.OpGetNameCerts, m.handleGetNameCerts)
	m.srv.Handle(object.OpGetElement, m.handleGetElement)
	m.srv.Handle(object.OpGetElements, m.handleGetElements)
	m.srv.Handle(object.OpListElements, m.handleList)
	m.srv.Handle(object.OpVersion, m.handleVersion)
	return m
}

// SetStale gives a StaleReplay server the old state to replay.
func (m *MaliciousServer) SetStale(old ReplicaState) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stale = &old
}

// SetTamperTarget restricts TamperContent to one element name; all other
// elements are served genuine. Used to hide a single corrupted element
// inside an otherwise-honest batch response.
func (m *MaliciousServer) SetTamperTarget(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tamperTarget = name
}

// SetDecoy gives a WrongObject server the foreign object to masquerade
// with.
func (m *MaliciousServer) SetDecoy(decoy ReplicaState) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.decoy = &decoy
}

// SetForgery equips a ForgeCertificate server with the attacker's key and
// a certificate covering the tampered content, signed by that key.
func (m *MaliciousServer) SetForgery(attackerKey *keys.KeyPair, forgedCert *cert.IntegrityCertificate) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.forged = &forgedState{key: attackerKey, cert: forgedCert}
}

// Serve accepts connections on l.
func (m *MaliciousServer) Serve(l net.Listener) error { return m.srv.Serve(l) }

// Start serves on a background goroutine.
func (m *MaliciousServer) Start(l net.Listener) { m.srv.Start(l) }

// Close shuts the server down.
func (m *MaliciousServer) Close() { m.srv.Close() }

func (m *MaliciousServer) current() ReplicaState {
	m.mu.RLock()
	defer m.mu.RUnlock()
	switch m.Mode {
	case StaleReplay:
		if m.stale != nil {
			return *m.stale
		}
	case WrongObject:
		if m.decoy != nil {
			return *m.decoy
		}
	}
	return m.state
}

func (m *MaliciousServer) handleGetKey(body []byte) ([]byte, error) {
	st := m.current()
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.Mode == ForgeCertificate && m.forged != nil {
		// The forger must also offer its own key, hoping the client
		// skips self-certification.
		return m.forged.key.Public().Marshal(), nil
	}
	return st.Key.Marshal(), nil
}

func (m *MaliciousServer) handleGetCert(body []byte) ([]byte, error) {
	st := m.current()
	m.mu.RLock()
	defer m.mu.RUnlock()
	if m.Mode == ForgeCertificate && m.forged != nil {
		return m.forged.cert.Marshal(), nil
	}
	return st.Cert.Marshal(), nil
}

func (m *MaliciousServer) handleGetNameCerts(body []byte) ([]byte, error) {
	st := m.current()
	return object.EncodeCertList(st.NameCerts), nil
}

func (m *MaliciousServer) handleGetElement(body []byte) ([]byte, error) {
	_, name, _, err := object.DecodeElementRequest(body)
	if err != nil {
		return nil, err
	}
	return m.elementWire(name)
}

// elementWire serves one element through the mode's lie — shared by the
// serial GetElement handler and the batched GetElements handler, so a
// batch carries exactly the same corruption a serial fetch would see.
func (m *MaliciousServer) elementWire(name string) ([]byte, error) {
	st := m.current()
	m.mu.RLock()
	target := m.tamperTarget
	m.mu.RUnlock()
	switch m.Mode {
	case TamperContent, ForgeCertificate:
		e, err := st.Doc.Get(name)
		if err != nil {
			return nil, err
		}
		if target == "" || target == name {
			e.Data = m.tampers(e.Data)
		}
		return object.EncodeElement(e), nil
	case SubstituteElement:
		// Serve some OTHER genuine element under the requested name.
		for _, other := range st.Doc.Names() {
			if other != name {
				e, err := st.Doc.Get(other)
				if err != nil {
					return nil, err
				}
				e.Name = name // lie about which element this is
				return object.EncodeElement(e), nil
			}
		}
		fallthrough
	default:
		e, err := st.Doc.Get(name)
		if err != nil {
			return nil, err
		}
		return object.EncodeElement(e), nil
	}
}

// handleGetElements serves a whole batch through the same per-element
// lies as handleGetElement: a TamperContent server with a tamper target
// interleaves one corrupted element among genuine ones, and a
// StaleReplay server answers the batch from its old signed state.
func (m *MaliciousServer) handleGetElements(body []byte) ([]byte, error) {
	_, names, _, err := object.DecodeElementsRequest(body)
	if err != nil {
		return nil, err
	}
	items := make([]object.BatchWireItem, 0, len(names))
	for _, name := range names {
		it := object.BatchWireItem{Name: name}
		wire, err := m.elementWire(name)
		if err != nil {
			it.ErrMsg = err.Error()
		} else {
			it.Wire = wire
		}
		items = append(items, it)
	}
	return object.EncodeElementsResponse(items), nil
}

func (m *MaliciousServer) handleList(body []byte) ([]byte, error) {
	return object.EncodeStringList(m.current().Doc.Names()), nil
}

func (m *MaliciousServer) handleVersion(body []byte) ([]byte, error) {
	st := m.current()
	w := make([]byte, 0, 8)
	v := st.Doc.Version()
	for v >= 0x80 {
		w = append(w, byte(v)|0x80)
		v >>= 7
	}
	w = append(w, byte(v))
	return w, nil
}

// MaliciousLocation wraps a genuine location resolver and redirects every
// lookup to a fixed rogue address — the "malicious Location Service
// server returning false contact points" of §3.1.2.
type MaliciousLocation struct {
	// Rogue is the contact address handed to every client.
	Rogue location.ContactAddress
}

// Lookup implements location.Resolver by lying.
func (m MaliciousLocation) Lookup(_ context.Context, fromSite string, oid globeid.OID) (location.LookupResult, error) {
	return location.LookupResult{Addresses: []location.ContactAddress{m.Rogue}}, nil
}

var _ location.Resolver = MaliciousLocation{}

// ReorderLocation wraps a genuine location resolver and manipulates
// everything the replica Selector consumes instead of hiding the real
// replicas outright: it prepends rogue contact addresses dressed in
// forged advisory metadata (the client's own zone, a huge capacity
// weight), strips the genuine addresses of their metadata, and reverses
// their proximity order. A selector that trusted this advice blindly
// would bind the rogue first and the farthest genuine replica next.
//
// The security argument (§3.1.2, restated for the selection API): zone,
// weight and ordering are routing ADVICE, consumed only by the selector
// to pick a trial order. Every candidate still runs the full
// verification pipeline, so a lying location service can waste the
// client's time on rogues and far replicas — denial of service — but can
// never make a fetch return unverified bytes.
type ReorderLocation struct {
	// Genuine produces the real lookup results to corrupt.
	Genuine location.Resolver
	// Rogue addresses are prepended to every result.
	Rogue []location.ContactAddress
	// ForgeZone and ForgeWeight are stamped onto every rogue address to
	// make it maximally attractive to a zone-aware selector.
	ForgeZone   string
	ForgeWeight uint32
}

// Lookup implements location.Resolver by corrupting the genuine result.
func (m ReorderLocation) Lookup(ctx context.Context, fromSite string, oid globeid.OID) (location.LookupResult, error) {
	res, err := m.Genuine.Lookup(ctx, fromSite, oid)
	if err != nil {
		return res, err
	}
	out := make([]location.ContactAddress, 0, len(m.Rogue)+len(res.Addresses))
	for _, r := range m.Rogue {
		r.Zone = m.ForgeZone
		r.Weight = m.ForgeWeight
		out = append(out, r)
	}
	for i := len(res.Addresses) - 1; i >= 0; i-- {
		a := res.Addresses[i]
		a.Zone = ""
		a.Weight = 0
		out = append(out, a)
	}
	res.Addresses = out
	return res, nil
}

var _ location.Resolver = ReorderLocation{}
