package attack_test

// Poisoned-delta attacks: a compromised primary (or a man in the middle
// on the delta channel) corrupts obj.getdelta replies. The invariant
// under test is the paper's at-worst-DoS claim extended to incremental
// transfers: every forged, truncated, reordered, chain-broken, or
// lie-unchanged delta is rejected before any state commits, the puller
// falls back to a full validated pull, and the victim converges on state
// byte-identical to the genuine primary's.

import (
	"bytes"
	"context"
	"testing"
	"time"

	"globedoc/internal/attack"
	"globedoc/internal/deploy"
	"globedoc/internal/document"
	"globedoc/internal/keys/keytest"
	"globedoc/internal/netsim"
	"globedoc/internal/server"
)

// deltaVictim stands up a genuine primary+secondary pair, interposes a
// malicious delta primary over the genuine primary's state, and returns
// a puller on the secondary that talks only to the attacker.
func deltaVictim(t *testing.T, mode attack.DeltaMode) (*deploy.World, *deploy.Publication, *server.Puller) {
	t.Helper()
	w, err := deploy.NewWorld(deploy.Options{TimeScale: 0})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(w.Close)
	if _, err := w.StartServer(netsim.AmsterdamPrimary, "srv-ams", nil, nil, server.Limits{}); err != nil {
		t.Fatal(err)
	}
	paris, err := w.StartServer(netsim.Paris, "srv-paris", nil, nil, server.Limits{})
	if err != nil {
		t.Fatal(err)
	}
	doc := document.New()
	doc.Put(document.Element{Name: "index.html", Data: []byte("v1 body")})
	doc.Put(document.Element{Name: "style.css", Data: []byte("body{}")})
	pub, err := w.Publish(doc, deploy.PublishOptions{Name: "victim.nl", OwnerKey: keytest.RSA()})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ReplicateTo(pub, netsim.Paris); err != nil {
		t.Fatal(err)
	}

	evil := attack.NewMaliciousDeltaPrimary(mode, w.Servers[netsim.AmsterdamPrimary])
	l, err := w.Net.Listen(netsim.AmsterdamPrimary, "evil")
	if err != nil {
		t.Fatal(err)
	}
	evil.Start(l)
	t.Cleanup(evil.Close)

	puller := server.NewPuller(paris, pub.OID, "owner:victim.nl",
		netsim.AmsterdamPrimary+":evil", w.DialFrom(netsim.Paris), 10*time.Millisecond)
	t.Cleanup(puller.Stop)
	return w, pub, puller
}

func TestPoisonedDeltaAtWorstDoS(t *testing.T) {
	for _, mode := range attack.AllDeltaModes {
		t.Run(mode.String(), func(t *testing.T) {
			w, pub, puller := deltaVictim(t, mode)
			pub.Doc.Put(document.Element{Name: "index.html", Data: []byte("v2 body")})
			if err := w.Reissue(pub, time.Hour, time.Now()); err != nil {
				t.Fatal(err)
			}
			pulled, err := puller.CheckOnce(context.Background())
			if err != nil {
				t.Fatalf("CheckOnce: %v", err)
			}
			if !pulled {
				t.Fatal("victim did not converge at all (DoS exceeded: no fallback)")
			}
			// The poisoned delta must have been rejected, not applied.
			if puller.DeltaPulls() != 0 {
				t.Fatalf("corrupted delta was accepted (%d delta pulls)", puller.DeltaPulls())
			}
			if puller.DeltaFallbacks() != 1 || puller.FullPulls() != 1 {
				t.Fatalf("fallbacks=%d full=%d, want the delta failure to trigger one full pull",
					puller.DeltaFallbacks(), puller.FullPulls())
			}
			// At-worst-DoS: the final state is byte-identical to the
			// genuine primary's, with a bundle that still validates.
			pb, err := w.Servers[netsim.AmsterdamPrimary].ExportBundle(pub.OID)
			if err != nil {
				t.Fatal(err)
			}
			sb, err := w.Servers[netsim.Paris].ExportBundle(pub.OID)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(pb.Marshal(), sb.Marshal()) {
				t.Fatal("victim state differs from genuine primary: corruption survived")
			}
			if err := sb.Validate(); err != nil {
				t.Fatalf("victim's final bundle does not validate: %v", err)
			}
		})
	}
}

func TestHonestDeltaPrimaryControl(t *testing.T) {
	// The control case: the same wrapper with no lie must let the delta
	// path succeed, proving the attack tests exercise a working channel.
	w, pub, puller := deltaVictim(t, attack.DeltaHonest)
	pub.Doc.Put(document.Element{Name: "index.html", Data: []byte("v2 body")})
	if err := w.Reissue(pub, time.Hour, time.Now()); err != nil {
		t.Fatal(err)
	}
	pulled, err := puller.CheckOnce(context.Background())
	if err != nil {
		t.Fatalf("CheckOnce: %v", err)
	}
	if !pulled || puller.DeltaPulls() != 1 || puller.FullPulls() != 0 {
		t.Fatalf("pulled=%v delta=%d full=%d, want a clean delta pull",
			pulled, puller.DeltaPulls(), puller.FullPulls())
	}
	pb, _ := w.Servers[netsim.AmsterdamPrimary].ExportBundle(pub.OID)
	sb, _ := w.Servers[netsim.Paris].ExportBundle(pub.OID)
	if !bytes.Equal(pb.Marshal(), sb.Marshal()) {
		t.Fatal("honest delta did not converge byte-identically")
	}
}
