package attack_test

import (
	"context"
	"testing"
	"time"

	"globedoc/internal/attack"
	"globedoc/internal/keys/keytest"
	"globedoc/internal/netsim"
	"globedoc/internal/object"
)

func TestModeStrings(t *testing.T) {
	want := map[attack.Mode]string{
		attack.Honest:            "honest",
		attack.TamperContent:     "tamper-content",
		attack.SubstituteElement: "substitute-element",
		attack.StaleReplay:       "stale-replay",
		attack.ForgeCertificate:  "forge-certificate",
		attack.WrongObject:       "wrong-object",
		attack.Mode(99):          "unknown",
	}
	for mode, name := range want {
		if got := mode.String(); got != name {
			t.Errorf("Mode(%d).String() = %q, want %q", mode, got, name)
		}
	}
	if len(attack.AllModes) != 5 {
		t.Errorf("AllModes = %v", attack.AllModes)
	}
}

func TestMaliciousServerAuxiliaryOps(t *testing.T) {
	owner := keytest.RSA()
	state := genuineState(t, owner, map[string][]byte{"a": []byte("1"), "b": []byte("2")}, t0, time.Hour)
	n := netsim.PaperTestbed(0)
	t.Cleanup(n.Close)
	l, err := n.Listen(netsim.Paris, "evil")
	if err != nil {
		t.Fatal(err)
	}
	srv := attack.NewMaliciousServer(attack.Honest, state)
	srv.Start(l)
	t.Cleanup(srv.Close)

	c := object.NewClient(state.OID, "paris:evil", n.Dialer(netsim.Ithaca, "paris:evil"))
	t.Cleanup(c.Close)
	names, err := c.ListElements(context.Background())
	if err != nil || len(names) != 2 {
		t.Fatalf("ListElements = %v, %v", names, err)
	}
	v, err := c.Version(context.Background())
	if err != nil || v == 0 {
		t.Fatalf("Version = %d, %v", v, err)
	}
	ncs, err := c.GetNameCerts(context.Background())
	if err != nil || len(ncs) != 0 {
		t.Fatalf("GetNameCerts = %v, %v", ncs, err)
	}
	if _, err := c.GetElement(context.Background(), "absent"); err == nil {
		t.Fatal("GetElement(absent) succeeded")
	}
}

func TestSubstituteSingleElementFallsBack(t *testing.T) {
	// With only one element there is nothing to substitute; the server
	// serves the genuine element (and the client accepts it).
	owner := keytest.RSA()
	state := genuineState(t, owner, map[string][]byte{"only.html": []byte("single")}, t0, time.Hour)
	srv := attack.NewMaliciousServer(attack.SubstituteElement, state)
	client := newVictimClient(t, srv, t0.Add(time.Minute))
	res, err := client.Fetch(context.Background(), state.OID, "only.html")
	if err != nil {
		t.Fatalf("Fetch: %v", err)
	}
	if string(res.Element.Data) != "single" {
		t.Errorf("Data = %q", res.Element.Data)
	}
}
