package attack_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"globedoc/internal/attack"
	"globedoc/internal/cert"
	"globedoc/internal/core"
	"globedoc/internal/deploy"
	"globedoc/internal/document"
	"globedoc/internal/globeid"
	"globedoc/internal/keys"
	"globedoc/internal/keys/keytest"
	"globedoc/internal/location"
	"globedoc/internal/netsim"
	"globedoc/internal/object"
	"globedoc/internal/server"
	"globedoc/internal/telemetry"
	"globedoc/internal/transport"
	"globedoc/internal/vcache"
)

var t0 = time.Date(2005, 4, 4, 12, 0, 0, 0, time.UTC)

// genuineState builds a signed replica state for a fresh object.
func genuineState(t *testing.T, owner *keys.KeyPair, elems map[string][]byte, issued time.Time, ttl time.Duration) attack.ReplicaState {
	t.Helper()
	oid := globeid.FromPublicKey(owner.Public())
	doc := document.New()
	for name, data := range elems {
		if err := doc.Put(document.Element{Name: name, Data: data}); err != nil {
			t.Fatal(err)
		}
	}
	icert, err := document.IssueCertificate(doc, oid, owner, issued, document.UniformTTL(ttl))
	if err != nil {
		t.Fatal(err)
	}
	return attack.ReplicaState{OID: oid, Key: owner.Public(), Doc: doc, Cert: icert}
}

// newVictimClient stands up a malicious server on the testbed and returns
// a secure client whose (malicious) location service directs every lookup
// to it. now fixes the client clock.
func newVictimClient(t *testing.T, srv *attack.MaliciousServer, now time.Time) *core.Client {
	t.Helper()
	return newVictimClientOpts(t, srv, core.Options{Now: func() time.Time { return now }})
}

// newVictimClientOpts is newVictimClient with full control over the
// client options, for victims with binding or content caches enabled.
func newVictimClientOpts(t *testing.T, srv *attack.MaliciousServer, opts core.Options) *core.Client {
	t.Helper()
	n := netsim.PaperTestbed(0)
	t.Cleanup(n.Close)
	l, err := n.Listen(netsim.Paris, "evil")
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(l)
	t.Cleanup(srv.Close)

	rogue := location.ContactAddress{Address: "paris:evil", Protocol: object.Protocol}
	binder := &object.Binder{
		Locator: attack.MaliciousLocation{Rogue: rogue},
		Dial: func(addr string) transport.DialFunc {
			return n.Dialer(netsim.AmsterdamSecondary, addr)
		},
		Site: netsim.AmsterdamSecondary,
	}
	client, err := core.NewClient(binder, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)
	return client
}

func TestHonestControlPasses(t *testing.T) {
	owner := keytest.RSA()
	state := genuineState(t, owner, map[string][]byte{"index.html": []byte("genuine")}, t0, time.Hour)
	srv := attack.NewMaliciousServer(attack.Honest, state)
	client := newVictimClient(t, srv, t0.Add(time.Minute))
	res, err := client.Fetch(context.Background(), state.OID, "index.html")
	if err != nil {
		t.Fatalf("honest replica rejected: %v", err)
	}
	if string(res.Element.Data) != "genuine" {
		t.Errorf("Data = %q", res.Element.Data)
	}
}

func TestTamperedContentDetected(t *testing.T) {
	owner := keytest.RSA()
	state := genuineState(t, owner, map[string][]byte{"index.html": []byte("genuine content")}, t0, time.Hour)
	srv := attack.NewMaliciousServer(attack.TamperContent, state)
	client := newVictimClient(t, srv, t0.Add(time.Minute))
	_, err := client.Fetch(context.Background(), state.OID, "index.html")
	if !errors.Is(err, core.ErrSecurityCheckFailed) {
		t.Fatalf("err = %v, want security check failure", err)
	}
	if !errors.Is(err, cert.ErrAuthenticity) {
		t.Fatalf("err = %v, want authenticity violation", err)
	}
}

func TestElementSubstitutionDetected(t *testing.T) {
	owner := keytest.RSA()
	state := genuineState(t, owner, map[string][]byte{
		"index.html": []byte("the real index"),
		"other.html": []byte("a different genuine page"),
	}, t0, time.Hour)
	srv := attack.NewMaliciousServer(attack.SubstituteElement, state)
	client := newVictimClient(t, srv, t0.Add(time.Minute))
	_, err := client.Fetch(context.Background(), state.OID, "index.html")
	if !errors.Is(err, core.ErrSecurityCheckFailed) || !errors.Is(err, cert.ErrAuthenticity) {
		t.Fatalf("err = %v, want authenticity violation (consistency attack)", err)
	}
}

func TestStaleReplayDetectedAfterExpiry(t *testing.T) {
	owner := keytest.RSA()
	// v1 with a short TTL; the owner later publishes v2.
	v1 := genuineState(t, owner, map[string][]byte{"news.html": []byte("old news")}, t0, time.Minute)
	v2doc := document.New()
	v2doc.Put(document.Element{Name: "news.html", Data: []byte("fresh news")})
	v2cert, err := document.IssueCertificate(v2doc, v1.OID, owner, t0.Add(2*time.Minute), document.UniformTTL(time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	current := attack.ReplicaState{OID: v1.OID, Key: owner.Public(), Doc: v2doc, Cert: v2cert}

	srv := attack.NewMaliciousServer(attack.StaleReplay, current)
	srv.SetStale(v1)
	// The client asks after v1's certificate expired: replaying v1 must
	// fail the freshness check.
	client := newVictimClient(t, srv, t0.Add(2*time.Minute+30*time.Second))
	_, err = client.Fetch(context.Background(), v1.OID, "news.html")
	if !errors.Is(err, core.ErrSecurityCheckFailed) || !errors.Is(err, cert.ErrFreshness) {
		t.Fatalf("err = %v, want freshness violation", err)
	}
}

func TestStaleReplayWithinValiditySucceeds(t *testing.T) {
	// The paper's freshness guarantee is bounded by the validity
	// interval: replaying a version that is still inside its interval is
	// undetectable BY DESIGN — owners bound staleness via per-element
	// TTLs. This test pins that documented semantics.
	owner := keytest.RSA()
	v1 := genuineState(t, owner, map[string][]byte{"news.html": []byte("old news")}, t0, time.Hour)
	srv := attack.NewMaliciousServer(attack.StaleReplay, v1)
	srv.SetStale(v1)
	client := newVictimClient(t, srv, t0.Add(time.Minute))
	res, err := client.Fetch(context.Background(), v1.OID, "news.html")
	if err != nil {
		t.Fatalf("in-validity replay rejected: %v", err)
	}
	if string(res.Element.Data) != "old news" {
		t.Errorf("Data = %q", res.Element.Data)
	}
}

func TestForgedCertificateDetected(t *testing.T) {
	owner := keytest.RSA()
	state := genuineState(t, owner, map[string][]byte{"index.html": []byte("genuine")}, t0, time.Hour)

	// The attacker crafts a certificate matching the tampered content
	// ("genuine" with first byte flipped) and signs it with their own key.
	attacker := keytest.Ed()
	tampered := append([]byte(nil), []byte("genuine")...)
	tampered[0] ^= 0xff
	forgedCert := &cert.IntegrityCertificate{ObjectID: state.OID, Version: 99, Issued: t0}
	forgedCert.Entries = []cert.ElementEntry{{
		Name:      "index.html",
		Hash:      globeid.HashElement(tampered),
		NotBefore: t0,
		Expires:   t0.Add(time.Hour),
	}}
	if err := forgedCert.Sign(attacker); err != nil {
		t.Fatal(err)
	}

	srv := attack.NewMaliciousServer(attack.ForgeCertificate, state)
	srv.SetForgery(attacker, forgedCert)
	client := newVictimClient(t, srv, t0.Add(time.Minute))
	_, err := client.Fetch(context.Background(), state.OID, "index.html")
	// The attacker's key does not hash to the OID, so the pipeline dies
	// at self-certification — before the forged certificate is even
	// consulted.
	if !errors.Is(err, core.ErrSecurityCheckFailed) || !errors.Is(err, globeid.ErrKeyMismatch) {
		t.Fatalf("err = %v, want self-certification failure", err)
	}
}

func TestWrongObjectMasqueradeDetected(t *testing.T) {
	victim := keytest.RSA()
	state := genuineState(t, victim, map[string][]byte{"index.html": []byte("victim site")}, t0, time.Hour)
	// A completely different, internally consistent object.
	decoyOwner := keytest.Ed()
	decoy := genuineState(t, decoyOwner, map[string][]byte{"index.html": []byte("decoy site")}, t0, time.Hour)

	srv := attack.NewMaliciousServer(attack.WrongObject, state)
	srv.SetDecoy(decoy)
	client := newVictimClient(t, srv, t0.Add(time.Minute))
	_, err := client.Fetch(context.Background(), state.OID, "index.html")
	if !errors.Is(err, core.ErrSecurityCheckFailed) || !errors.Is(err, globeid.ErrKeyMismatch) {
		t.Fatalf("err = %v, want self-certification failure", err)
	}
}

func TestAllAttackModesAtMostDoS(t *testing.T) {
	// The paper's bottom line (§3.1.2): whatever the untrusted
	// infrastructure does, the client either gets verified data or an
	// error — never silently wrong data.
	owner := keytest.RSA()
	genuineContent := []byte("the one true content")
	for _, mode := range attack.AllModes {
		t.Run(mode.String(), func(t *testing.T) {
			state := genuineState(t, owner, map[string][]byte{
				"index.html": genuineContent,
				"other.html": []byte("another element"),
			}, t0, time.Hour)
			srv := attack.NewMaliciousServer(mode, state)
			switch mode {
			case attack.StaleReplay:
				old := genuineState(t, owner, map[string][]byte{"index.html": []byte("ancient")}, t0.Add(-2*time.Hour), time.Hour)
				srv.SetStale(old)
			case attack.WrongObject:
				srv.SetDecoy(genuineState(t, keytest.Ed(), map[string][]byte{"index.html": []byte("decoy")}, t0, time.Hour))
			case attack.ForgeCertificate:
				attacker := keytest.Ed()
				forged := &cert.IntegrityCertificate{ObjectID: state.OID, Issued: t0}
				forged.Entries = []cert.ElementEntry{{Name: "index.html", Hash: globeid.HashElement([]byte("x")), Expires: t0.Add(time.Hour)}}
				if err := forged.Sign(attacker); err != nil {
					t.Fatal(err)
				}
				srv.SetForgery(attacker, forged)
			}
			client := newVictimClient(t, srv, t0.Add(time.Minute))
			res, err := client.Fetch(context.Background(), state.OID, "index.html")
			if err == nil && string(res.Element.Data) != string(genuineContent) {
				t.Fatalf("mode %s: client ACCEPTED wrong data %q", mode, res.Element.Data)
			}
		})
	}
}

// multiReplicaLocator returns several fixed contact addresses in order.
type multiReplicaLocator struct {
	addrs []location.ContactAddress
}

func (m multiReplicaLocator) Lookup(_ context.Context, fromSite string, oid globeid.OID) (location.LookupResult, error) {
	return location.LookupResult{Addresses: m.addrs}, nil
}

func TestFailoverPastMaliciousReplica(t *testing.T) {
	// The NEAREST replica is malicious (tampering); an honest replica
	// exists one ring out. The client must detect the tampering and
	// transparently recover via the honest replica — an attack degrades
	// to a slower fetch, not a failure.
	owner := keytest.RSA()
	state := genuineState(t, owner, map[string][]byte{"index.html": []byte("the real thing")}, t0, time.Hour)

	n := netsim.PaperTestbed(0)
	t.Cleanup(n.Close)
	evilL, err := n.Listen(netsim.Paris, "evil")
	if err != nil {
		t.Fatal(err)
	}
	evil := attack.NewMaliciousServer(attack.TamperContent, state)
	evil.Start(evilL)
	t.Cleanup(evil.Close)
	honestL, err := n.Listen(netsim.AmsterdamPrimary, "honest")
	if err != nil {
		t.Fatal(err)
	}
	honest := attack.NewMaliciousServer(attack.Honest, state)
	honest.Start(honestL)
	t.Cleanup(honest.Close)

	client, err := core.NewClient(&object.Binder{
		Locator: multiReplicaLocator{addrs: []location.ContactAddress{
			{Address: "paris:evil", Protocol: object.Protocol},
			{Address: "amsterdam-primary:honest", Protocol: object.Protocol},
		}},
		Dial: func(addr string) transport.DialFunc {
			return n.Dialer(netsim.AmsterdamSecondary, addr)
		},
		Site: netsim.AmsterdamSecondary,
	}, core.Options{Now: func() time.Time { return t0.Add(time.Minute) }})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)

	res, err := client.Fetch(context.Background(), state.OID, "index.html")
	if err != nil {
		t.Fatalf("fetch with honest fallback failed: %v", err)
	}
	if string(res.Element.Data) != "the real thing" {
		t.Fatalf("Data = %q", res.Element.Data)
	}
	if res.ReplicaAddr != "amsterdam-primary:honest" {
		t.Errorf("served from %q, want honest replica", res.ReplicaAddr)
	}
}

func TestFailoverPastMasqueradingReplica(t *testing.T) {
	// The nearest replica fails self-certification (wrong object); the
	// establish loop must move on without ever fetching an element.
	owner := keytest.RSA()
	state := genuineState(t, owner, map[string][]byte{"index.html": []byte("genuine")}, t0, time.Hour)
	decoy := genuineState(t, keytest.Ed(), map[string][]byte{"index.html": []byte("decoy")}, t0, time.Hour)

	n := netsim.PaperTestbed(0)
	t.Cleanup(n.Close)
	evilL, _ := n.Listen(netsim.Paris, "evil")
	evil := attack.NewMaliciousServer(attack.WrongObject, state)
	evil.SetDecoy(decoy)
	evil.Start(evilL)
	t.Cleanup(evil.Close)
	honestL, _ := n.Listen(netsim.AmsterdamPrimary, "honest")
	honest := attack.NewMaliciousServer(attack.Honest, state)
	honest.Start(honestL)
	t.Cleanup(honest.Close)

	client, err := core.NewClient(&object.Binder{
		Locator: multiReplicaLocator{addrs: []location.ContactAddress{
			{Address: "paris:evil", Protocol: object.Protocol},
			{Address: "amsterdam-primary:honest", Protocol: object.Protocol},
		}},
		Dial: func(addr string) transport.DialFunc {
			return n.Dialer(netsim.AmsterdamSecondary, addr)
		},
		Site: netsim.AmsterdamSecondary,
	}, core.Options{Now: func() time.Time { return t0.Add(time.Minute) }})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)

	res, err := client.Fetch(context.Background(), state.OID, "index.html")
	if err != nil {
		t.Fatalf("fetch: %v", err)
	}
	if string(res.Element.Data) != "genuine" {
		t.Fatalf("Data = %q", res.Element.Data)
	}
}

func TestAllReplicasMaliciousIsDoS(t *testing.T) {
	// With no honest replica anywhere, the fetch fails — but never
	// returns wrong data.
	owner := keytest.RSA()
	state := genuineState(t, owner, map[string][]byte{"index.html": []byte("genuine")}, t0, time.Hour)
	n := netsim.PaperTestbed(0)
	t.Cleanup(n.Close)
	for i, host := range []string{netsim.Paris, netsim.AmsterdamPrimary} {
		l, err := n.Listen(host, "evil")
		if err != nil {
			t.Fatal(err)
		}
		srv := attack.NewMaliciousServer(attack.TamperContent, state)
		srv.Start(l)
		t.Cleanup(srv.Close)
		_ = i
	}
	client, err := core.NewClient(&object.Binder{
		Locator: multiReplicaLocator{addrs: []location.ContactAddress{
			{Address: "paris:evil", Protocol: object.Protocol},
			{Address: "amsterdam-primary:evil", Protocol: object.Protocol},
		}},
		Dial: func(addr string) transport.DialFunc {
			return n.Dialer(netsim.AmsterdamSecondary, addr)
		},
		Site: netsim.AmsterdamSecondary,
	}, core.Options{Now: func() time.Time { return t0.Add(time.Minute) }})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(client.Close)

	_, err = client.Fetch(context.Background(), state.OID, "index.html")
	if !errors.Is(err, core.ErrSecurityCheckFailed) {
		t.Fatalf("err = %v, want security failure", err)
	}
}

// attackClock is a mutable test clock shared with the victim client.
type attackClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *attackClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *attackClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestStaleCachedElementAfterExpiryDetected(t *testing.T) {
	// A victim with the verified-content cache warm cannot be fed its own
	// cached bytes past the certificate's validity: when the replica can
	// only produce the expired certificate again, the fetch fails the
	// freshness check (counted under phase="freshness") and the stale
	// entry is evicted — cached content is never fresher than its
	// certificate.
	owner := keytest.RSA()
	state := genuineState(t, owner, map[string][]byte{"index.html": []byte("short-lived")}, t0, time.Minute)
	entry, err := state.Cert.Lookup("index.html")
	if err != nil {
		t.Fatal(err)
	}

	clk := &attackClock{t: t0.Add(10 * time.Second)}
	tel := telemetry.New(nil)
	vc := vcache.New(vcache.Config{})
	srv := attack.NewMaliciousServer(attack.Honest, state)
	client := newVictimClientOpts(t, srv, core.Options{
		Now:           clk.Now,
		CacheBindings: true,
		VCache:        vc,
		Telemetry:     tel,
	})

	// Warm the cache inside the validity interval.
	res, err := client.Fetch(context.Background(), state.OID, "index.html")
	if err != nil {
		t.Fatalf("warming fetch: %v", err)
	}
	if res.FromCache || !vc.Contains(entry.Hash) {
		t.Fatal("warming fetch did not populate the content cache")
	}

	// Past expiry the replica still replays the same certificate; the
	// cached bytes must not be served.
	clk.Advance(2 * time.Minute)
	_, err = client.Fetch(context.Background(), state.OID, "index.html")
	if !errors.Is(err, core.ErrSecurityCheckFailed) || !errors.Is(err, cert.ErrFreshness) {
		t.Fatalf("err = %v, want freshness violation", err)
	}
	if got := tel.SecurityCheckFailures.With("freshness").Value(); got == 0 {
		t.Error("security_check_failures_total{phase=\"freshness\"} not incremented")
	}
	if vc.Contains(entry.Hash) {
		t.Error("stale element still cached after freshness failure")
	}
}

func TestSeededCacheLosesToRevocation(t *testing.T) {
	// Under every attack mode, a verified-content cache seeded with a
	// revoked (superseded) version never resurfaces it: the client serves
	// the current version or fails — and on any successful fetch the
	// reconciliation against the current certificate has evicted the
	// seeded entry.
	owner := keytest.RSA()
	oldContent := []byte("revoked version")
	oldHash := globeid.HashElement(oldContent)
	current := []byte("current version")
	for _, mode := range attack.AllModes {
		t.Run(mode.String(), func(t *testing.T) {
			state := genuineState(t, owner, map[string][]byte{
				"index.html": current,
				"other.html": []byte("another element"),
			}, t0, time.Hour)
			srv := attack.NewMaliciousServer(mode, state)
			switch mode {
			case attack.StaleReplay:
				old := genuineState(t, owner, map[string][]byte{"index.html": oldContent}, t0.Add(-2*time.Hour), time.Hour)
				srv.SetStale(old)
			case attack.WrongObject:
				srv.SetDecoy(genuineState(t, keytest.Ed(), map[string][]byte{"index.html": []byte("decoy")}, t0, time.Hour))
			case attack.ForgeCertificate:
				attacker := keytest.Ed()
				forged := &cert.IntegrityCertificate{ObjectID: state.OID, Issued: t0}
				forged.Entries = []cert.ElementEntry{{Name: "index.html", Hash: oldHash, Expires: t0.Add(time.Hour)}}
				if err := forged.Sign(attacker); err != nil {
					t.Fatal(err)
				}
				srv.SetForgery(attacker, forged)
			}

			// Seed the cache with the revoked bytes, marked valid far into
			// the future — only certificate reconciliation can drop them.
			vc := vcache.New(vcache.Config{})
			vc.Put(state.OID, oldHash, vcache.Element{ContentType: "text/html", Data: oldContent}, t0.Add(24*time.Hour))

			client := newVictimClientOpts(t, srv, core.Options{
				Now:           func() time.Time { return t0.Add(time.Minute) },
				CacheBindings: true,
				VCache:        vc,
			})
			res, err := client.Fetch(context.Background(), state.OID, "index.html")
			if err != nil {
				return // at most denial of service
			}
			if string(res.Element.Data) != string(current) {
				t.Fatalf("mode %s: client ACCEPTED non-current data %q", mode, res.Element.Data)
			}
			if vc.Contains(oldHash) {
				t.Errorf("mode %s: revoked entry survived certificate reconciliation", mode)
			}
		})
	}
}

func TestMaliciousLocationIsOnlyDoS(t *testing.T) {
	// A malicious location service pointing at a dead address causes
	// denial of service, nothing worse.
	owner := keytest.RSA()
	oid := globeid.FromPublicKey(owner.Public())
	n := netsim.PaperTestbed(0)
	defer n.Close()
	binder := &object.Binder{
		Locator: attack.MaliciousLocation{Rogue: location.ContactAddress{Address: "paris:void", Protocol: object.Protocol}},
		Dial: func(addr string) transport.DialFunc {
			return n.Dialer(netsim.AmsterdamSecondary, addr)
		},
		Site: netsim.AmsterdamSecondary,
	}
	client, err := core.NewClient(binder, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.Fetch(context.Background(), oid, "index.html"); err == nil {
		t.Fatal("fetch through dead rogue address succeeded")
	}
}

func TestLocationReorderAndForgeIsOnlyDoS(t *testing.T) {
	// The full selector-targeted location attack: a lying location
	// service prepends a rogue replica dressed in forged same-zone,
	// high-weight metadata (plus a dead address), strips and reverses the
	// genuine results. The rogue serves tampered bytes for the real OID
	// under a genuinely-signed certificate. The selector, trusting the
	// forged advice, must be allowed to try the rogue first — and the
	// pipeline must still only ever return genuine bytes from a genuine
	// replica, at the price of failovers. At worst DoS, never corruption.
	tel := telemetry.New(nil)
	w, err := deploy.NewWorld(deploy.Options{Telemetry: tel})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for _, site := range []string{netsim.AmsterdamPrimary, netsim.Paris} {
		if _, err := w.StartServer(site, "srv-"+site, nil, nil, server.Limits{}); err != nil {
			t.Fatal(err)
		}
	}

	owner := keytest.RSA()
	doc := document.New()
	if err := doc.Put(document.Element{Name: "index.html", Data: []byte("the genuine page")}); err != nil {
		t.Fatal(err)
	}
	pub, err := w.Publish(doc, deploy.PublishOptions{Name: "victim.example", OwnerKey: owner})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.ReplicateTo(pub, netsim.Paris); err != nil {
		t.Fatal(err)
	}

	// The rogue replica holds the genuine state (it could have fetched it
	// like anyone) but tampers with every element it serves.
	srv := attack.NewMaliciousServer(attack.TamperContent, attack.ReplicaState{
		OID: pub.OID, Key: owner.Public(), Doc: pub.Doc, Cert: pub.Cert,
	})
	l, err := w.Net.Listen(netsim.Paris, "evil")
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(l)
	defer srv.Close()

	clientHost := netsim.AmsterdamSecondary
	binder := &object.Binder{
		Locator: attack.ReorderLocation{
			Genuine: w.LocationTree,
			Rogue: []location.ContactAddress{
				{Address: "paris:evil", Protocol: object.Protocol},
				{Address: "ghost:void", Protocol: object.Protocol},
			},
			ForgeZone:   "europe", // the client's own zone
			ForgeWeight: 1 << 20,
		},
		Dial: w.DialFrom(clientHost),
		Site: clientHost,
		Transport: transport.Config{
			DialTimeout: 300 * time.Millisecond,
			CallTimeout: 300 * time.Millisecond,
			Telemetry:   tel,
		},
	}
	client, err := core.NewClient(binder, core.Options{
		Telemetry: tel,
		Selector:  core.HealthRankedSelector{Zone: "europe"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	genuine := map[string]bool{
		w.Addrs[pub.HomeSite]: true,
		w.Addrs[netsim.Paris]: true,
	}
	for i := 0; i < 4; i++ {
		res, err := client.Fetch(context.Background(), pub.OID, "index.html")
		if err != nil {
			t.Fatalf("fetch %d under location attack: %v", i, err)
		}
		if string(res.Element.Data) != "the genuine page" {
			t.Fatalf("fetch %d ACCEPTED tampered data %q", i, res.Element.Data)
		}
		if !genuine[res.ReplicaAddr] {
			t.Fatalf("fetch %d served from non-genuine replica %s", i, res.ReplicaAddr)
		}
		client.FlushBindings()
	}

	// The attack was visible — the rogue's forged metadata got it tried
	// and its tampering detected — but strictly bounded: detected
	// tampering and the dead dial both count as failure evidence, so the
	// selector demotes the rogues and failovers stop accruing instead of
	// costing every fetch.
	failovers := tel.Failovers.Value()
	if failovers < 2 {
		t.Errorf("failovers_total = %d; forged metadata never got the rogues tried", failovers)
	}
	if failovers > 4 {
		t.Errorf("failovers_total = %d across 4 fetches; re-ranking did not demote the rogues", failovers)
	}
	for _, rogue := range []string{"paris:evil", "ghost:void"} {
		h, ok := tel.Health.Lookup(rogue)
		if !ok || h.ConsecutiveFailures == 0 {
			t.Errorf("no failure evidence recorded against rogue %s", rogue)
		}
	}
}
