package bench_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"time"

	"globedoc/internal/bench"
	"globedoc/internal/core"
	"globedoc/internal/netsim"
)

// sampleReport builds a report with representative Figure-4 and Figure-5
// payloads, exercising the awkward JSON corners: map[int] keys, nested
// maps, and time.Duration fields.
func sampleReport(t *testing.T) *bench.Report {
	t.Helper()
	started := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	r := bench.NewReport(bench.Config{TimeScale: 0.01, Iterations: 3}, started)
	r.Fig4 = &bench.Fig4Result{
		Sizes:   []int{1024, 65536},
		Clients: []string{netsim.Paris},
		Points: map[int]map[string]bench.Fig4Point{
			1024: {
				netsim.Paris: {
					Size:            1024,
					Client:          netsim.Paris,
					OverheadPercent: 42.5,
					Security:        bench.Sample{N: 3, Mean: 30 * time.Millisecond, Std: time.Millisecond},
					Total:           bench.Sample{N: 3, Mean: 70 * time.Millisecond, Std: 2 * time.Millisecond},
					Breakdown: core.Timing{
						NameResolve:  time.Millisecond,
						Bind:         2 * time.Millisecond,
						KeyFetch:     3 * time.Millisecond,
						ElementFetch: 4 * time.Millisecond,
					},
				},
			},
		},
	}
	r.Fig5 = []*bench.Fig5Result{{
		Client: netsim.Ithaca,
		Rows: []bench.Fig5Row{{
			TotalBytes: 40960,
			GlobeDoc:   bench.Sample{N: 3, Mean: 120 * time.Millisecond},
			HTTP:       bench.Sample{N: 3, Mean: 90 * time.Millisecond},
			HTTPS:      bench.Sample{N: 3, Mean: 110 * time.Millisecond},
		}},
	}}
	r.Cache = &bench.CacheResult{
		VCacheEnabled: true,
		ElementBytes:  65536,
		Cold:          bench.CachePhase{Ops: 3, Mean: 40 * time.Millisecond, P50: 39 * time.Millisecond, P95: 44 * time.Millisecond, P99: 45 * time.Millisecond, Max: 45 * time.Millisecond},
		Warm:          bench.CachePhase{Ops: 3, Mean: 50 * time.Microsecond, P50: 48 * time.Microsecond, P95: 60 * time.Microsecond, P99: 61 * time.Microsecond, Max: 61 * time.Microsecond},
		Revalidate: &bench.CachePhase{
			Ops: 3, Mean: 20 * time.Millisecond, P50: 19 * time.Millisecond,
			P95: 22 * time.Millisecond, P99: 23 * time.Millisecond, Max: 23 * time.Millisecond,
		},
		WarmSpeedup:       800,
		Hits:              6,
		Misses:            3,
		Revalidations:     3,
		SigCacheHits:      4,
		ContentSHA:        "da39a3ee5e6b4b0d3255bfef95601890afd80709",
		AblationIdentical: true,
	}
	return r
}

func TestReportRoundTripsThroughJSON(t *testing.T) {
	r := sampleReport(t)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := bench.ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, r) {
		t.Errorf("report did not round-trip:\n got %+v\nwant %+v", got, r)
	}
}

func TestReportMetaDefaults(t *testing.T) {
	r := sampleReport(t)
	if r.Schema != bench.ReportSchema {
		t.Errorf("schema = %q", r.Schema)
	}
	if r.Meta.Seed != bench.WorkloadSeed {
		t.Errorf("seed = %d, want %d", r.Meta.Seed, bench.WorkloadSeed)
	}
	if r.Meta.Iterations != 3 {
		t.Errorf("iterations = %d", r.Meta.Iterations)
	}
	// withDefaults fills the algorithm; it must round-trip through
	// ParseAlgorithm (ReadReport checks), so it cannot be empty.
	if r.Meta.KeyAlgorithm == "" {
		t.Error("key algorithm not recorded")
	}
}

func TestReadReportRejectsWrongSchema(t *testing.T) {
	if _, err := bench.ReadReport(strings.NewReader(`{"schema":"globedoc-bench/999"}`)); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := bench.ReadReport(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
	bad := `{"schema":"` + bench.ReportSchema + `","meta":{"key_algorithm":"rot13"}}`
	if _, err := bench.ReadReport(strings.NewReader(bad)); err == nil {
		t.Fatal("unknown key algorithm accepted")
	}
}
