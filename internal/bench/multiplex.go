package bench

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"time"

	"globedoc/internal/core"
	"globedoc/internal/deploy"
	"globedoc/internal/netsim"
	"globedoc/internal/server"
	"globedoc/internal/telemetry"
	"globedoc/internal/workload"
)

// MuxPhase is the latency distribution of one multiplex-experiment
// phase: a cold single-element fetch, a cold whole-object fetch through
// the batched GetElements exchange, or the serial-RPC ablation.
type MuxPhase struct {
	Ops  int           `json:"ops"`
	Mean time.Duration `json:"latency_mean_ns"`
	P50  time.Duration `json:"latency_p50_ns"`
	P95  time.Duration `json:"latency_p95_ns"`
	P99  time.Duration `json:"latency_p99_ns"`
	Max  time.Duration `json:"latency_max_ns"`
}

func toMuxPhase(samples []time.Duration) MuxPhase {
	s := workload.ComputeLatencyStats(samples)
	return MuxPhase{Ops: s.N, Mean: s.Mean, P50: s.P50, P95: s.P95, P99: s.P99, Max: s.Max}
}

// MultiplexResult is the -experiment multiplex output: cold fetch
// latency for one element vs. the whole wide object over the batched v2
// transport, the serial-RPC ablation for contrast, and the transport
// counters that prove the batch path actually ran.
type MultiplexResult struct {
	// Elements is the width of the measured object; ElementBytes the
	// size of each element.
	Elements     int `json:"elements"`
	ElementBytes int `json:"element_bytes"`

	// SingleCold fetches one element from cold bindings: the full secure
	// pipeline plus one element round trip.
	SingleCold MuxPhase `json:"single_cold"`
	// BatchCold fetches all elements from cold bindings: the same
	// pipeline plus ONE GetElements exchange carrying every element.
	BatchCold MuxPhase `json:"batch_cold"`
	// SerialCold is the ablation: batch fetch disabled and one fetch
	// worker, so every element pays its own round trip in sequence.
	SerialCold MuxPhase `json:"serial_cold"`

	// BatchRatio is BatchCold.Mean / SingleCold.Mean — the acceptance
	// metric (a wide object over the multiplexed transport must cost at
	// most ~2x a single element, not Elements x).
	BatchRatio float64 `json:"batch_ratio"`
	// SerialRatio is SerialCold.Mean / SingleCold.Mean, for contrast.
	SerialRatio float64 `json:"serial_ratio"`

	// Transport counters accumulated across the run.
	BatchFetches  uint64 `json:"batch_fetch_total"`
	BatchElements uint64 `json:"batch_fetch_elements_total"`
	StreamsOpened uint64 `json:"transport_streams_opened_total"`
	NegotiatedV2  uint64 `json:"negotiations_v2"`

	// AblationIdentical reports the in-run check: the serial-RPC client
	// fetched bytes identical to the batched client's, element by
	// element.
	AblationIdentical bool `json:"ablation_identical"`
}

const (
	// muxElements is the object width: wide enough that per-element
	// round trips dominate a serial cold fetch.
	muxElements = 16
	// muxElementBytes keeps transfer time small relative to round trips,
	// which is the regime batching is about.
	muxElementBytes = 4 * workload.KB
)

// RunMultiplex measures the multiplexed transport with batched element
// fetch (the -experiment multiplex entry point). It publishes one
// 16-element document and measures, from cold bindings every sample:
//
//   - single: fetch one element — the secure pipeline plus one element
//     round trip, the baseline;
//   - batch: FetchAll over the v2 transport — the same pipeline plus a
//     single GetElements exchange carrying all 16 elements;
//   - serial: FetchAll with DisableBatchFetch and one worker — every
//     element pays its own sequential round trip, the pre-v2 cost.
//
// The run finishes by checking the batched and serial clients fetched
// byte-identical content.
func RunMultiplex(cfg Config) (*MultiplexResult, error) {
	cfg = cfg.withDefaults()
	clk := &benchClock{t: time.Date(2005, 4, 4, 12, 0, 0, 0, time.UTC)}
	tel := telemetry.New(nil)
	w, err := deploy.NewWorld(deploy.Options{TimeScale: cfg.TimeScale, Telemetry: tel, Clock: clk.Now})
	if err != nil {
		return nil, err
	}
	defer w.Close()
	if _, err := w.StartServer(netsim.AmsterdamPrimary, "srv-ams", nil, nil, server.Limits{}); err != nil {
		return nil, err
	}
	doc := workload.WideDoc(muxElements, muxElementBytes, WorkloadSeed)
	pub, err := w.Publish(doc, deploy.PublishOptions{
		Name:         "multiplex.bench",
		TTL:          time.Hour,
		KeyAlgorithm: cfg.KeyAlgorithm,
		Clock:        clk.Now,
	})
	if err != nil {
		return nil, err
	}

	batched, err := w.NewSecureClientOpts(netsim.Paris, core.Options{Now: clk.Now})
	if err != nil {
		return nil, err
	}
	defer batched.Close()
	serial, err := w.NewSecureClientOpts(netsim.Paris, core.Options{
		Now:               clk.Now,
		DisableBatchFetch: true,
		FetchWorkers:      1,
	})
	if err != nil {
		return nil, err
	}
	defer serial.Close()
	//lint:ignore ctxfirst the benchmark harness is the top of the call tree; there is no caller context to inherit
	ctx := context.Background()

	res := &MultiplexResult{Elements: muxElements, ElementBytes: muxElementBytes}

	// Single-element baseline: cold bindings, one element round trip.
	var single []time.Duration
	for i := 0; i < cfg.Iterations; i++ {
		batched.FlushBindings()
		start := now()
		if _, err := batched.Fetch(ctx, pub.OID, "el-00.bin"); err != nil {
			return nil, fmt.Errorf("multiplex single fetch: %w", err)
		}
		single = append(single, now().Sub(start))
	}
	res.SingleCold = toMuxPhase(single)

	// Batched whole-object fetch: one GetElements exchange per sample.
	content := make(map[string][]byte, muxElements)
	var batch []time.Duration
	for i := 0; i < cfg.Iterations; i++ {
		batched.FlushBindings()
		start := now()
		results, err := batched.FetchAll(ctx, pub.OID)
		if err != nil {
			return nil, fmt.Errorf("multiplex batch fetch: %w", err)
		}
		batch = append(batch, now().Sub(start))
		if len(results) != muxElements {
			return nil, fmt.Errorf("multiplex batch fetch %d returned %d elements, want %d", i, len(results), muxElements)
		}
		for _, r := range results {
			content[r.Element.Name] = r.Element.Data
		}
	}
	res.BatchCold = toMuxPhase(batch)

	// Serial ablation: individual sequential GetElement calls.
	serialContent := make(map[string][]byte, muxElements)
	var ser []time.Duration
	for i := 0; i < cfg.Iterations; i++ {
		serial.FlushBindings()
		start := now()
		results, err := serial.FetchAll(ctx, pub.OID)
		if err != nil {
			return nil, fmt.Errorf("multiplex serial fetch: %w", err)
		}
		ser = append(ser, now().Sub(start))
		if len(results) != muxElements {
			return nil, fmt.Errorf("multiplex serial fetch %d returned %d elements, want %d", i, len(results), muxElements)
		}
		for _, r := range results {
			serialContent[r.Element.Name] = r.Element.Data
		}
	}
	res.SerialCold = toMuxPhase(ser)

	if res.SingleCold.Mean > 0 {
		res.BatchRatio = float64(res.BatchCold.Mean) / float64(res.SingleCold.Mean)
		res.SerialRatio = float64(res.SerialCold.Mean) / float64(res.SingleCold.Mean)
	}

	res.AblationIdentical = len(content) == muxElements && len(serialContent) == muxElements
	for name, data := range content {
		if !bytes.Equal(serialContent[name], data) {
			res.AblationIdentical = false
		}
	}

	res.BatchFetches = tel.BatchFetches.Value()
	res.BatchElements = tel.BatchElements.Value()
	res.StreamsOpened = tel.StreamsOpened.Value()
	res.NegotiatedV2 = tel.Negotiations.With("v2").Value()
	return res, nil
}

// Format renders the multiplex experiment as a human-readable table.
func (r *MultiplexResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Multiplexed transport with batched element fetch (%d x %s elements, client at %s)\n\n",
		r.Elements, fmtSize(r.ElementBytes), netsim.Paris)
	fmt.Fprintf(&b, "  %-14s %6s %12s %12s %12s %12s\n", "phase", "ops", "mean", "p50", "p95", "p99")
	row := func(name string, p MuxPhase) {
		fmt.Fprintf(&b, "  %-14s %6d %12s %12s %12s %12s\n", name, p.Ops,
			p.Mean.Round(time.Microsecond), p.P50.Round(time.Microsecond),
			p.P95.Round(time.Microsecond), p.P99.Round(time.Microsecond))
	}
	row("single cold", r.SingleCold)
	row("batch cold", r.BatchCold)
	row("serial cold", r.SerialCold)
	fmt.Fprintf(&b, "\n  batch ratio (batch cold / single cold): %.2fx (serial ablation: %.2fx)\n",
		r.BatchRatio, r.SerialRatio)
	fmt.Fprintf(&b, "  counters: batch_fetches=%d batch_elements=%d streams_opened=%d negotiations{v2}=%d\n",
		r.BatchFetches, r.BatchElements, r.StreamsOpened, r.NegotiatedV2)
	fmt.Fprintf(&b, "  ablation (serial client fetches identical bytes): %v\n", r.AblationIdentical)
	return b.String()
}
