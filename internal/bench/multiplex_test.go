package bench_test

import (
	"strings"
	"testing"

	"globedoc/internal/bench"
)

func TestRunMultiplexQuick(t *testing.T) {
	res, err := bench.RunMultiplex(quickCfg())
	if err != nil {
		t.Fatalf("RunMultiplex: %v", err)
	}
	if res.Elements != 16 {
		t.Errorf("Elements = %d, want 16", res.Elements)
	}
	if res.SingleCold.Ops != 2 || res.BatchCold.Ops != 2 || res.SerialCold.Ops != 2 {
		t.Errorf("phase ops: single=%d batch=%d serial=%d, want 2 each",
			res.SingleCold.Ops, res.BatchCold.Ops, res.SerialCold.Ops)
	}
	if res.SingleCold.Mean <= 0 || res.BatchCold.Mean <= 0 || res.SerialCold.Mean <= 0 {
		t.Errorf("means: single=%v batch=%v serial=%v",
			res.SingleCold.Mean, res.BatchCold.Mean, res.SerialCold.Mean)
	}
	// Each batch sample issues exactly one GetElements exchange carrying
	// all 16 elements; the single and serial phases issue none.
	if res.BatchFetches != 2 {
		t.Errorf("batch_fetch_total = %d, want 2", res.BatchFetches)
	}
	if res.BatchElements != 32 {
		t.Errorf("batch_fetch_elements_total = %d, want 32", res.BatchElements)
	}
	if res.NegotiatedV2 == 0 {
		t.Error("no v2 negotiation recorded; the run fell back to v1")
	}
	if !res.AblationIdentical {
		t.Error("serial-RPC client fetched different bytes")
	}
	if res.BatchRatio <= 0 || res.SerialRatio <= 0 {
		t.Errorf("ratios: batch=%v serial=%v", res.BatchRatio, res.SerialRatio)
	}
	out := res.Format()
	for _, want := range []string{"single cold", "batch cold", "serial cold", "batch ratio", "ablation"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
}
