package bench_test

import (
	"strings"
	"testing"

	"globedoc/internal/bench"
)

func TestRunCacheQuick(t *testing.T) {
	res, err := bench.RunCache(quickCfg(), false)
	if err != nil {
		t.Fatalf("RunCache: %v", err)
	}
	if !res.VCacheEnabled {
		t.Error("VCacheEnabled = false on an enabled run")
	}
	if res.Cold.Ops != 2 || res.Warm.Ops != 2 {
		t.Errorf("phase ops: cold=%d warm=%d, want 2 each", res.Cold.Ops, res.Warm.Ops)
	}
	if res.Revalidate == nil || res.Revalidate.Ops != 2 {
		t.Errorf("revalidate phase = %+v, want 2 ops", res.Revalidate)
	}
	if res.Cold.Mean <= 0 || res.Warm.Mean <= 0 {
		t.Errorf("means: cold=%v warm=%v", res.Cold.Mean, res.Warm.Mean)
	}
	// The warm phase (2 ops) and each revalidation (2 ops) hit the cache.
	if res.Hits < 4 {
		t.Errorf("vcache hits = %d, want >= 4", res.Hits)
	}
	if res.Revalidations != 2 {
		t.Errorf("revalidations = %d, want 2", res.Revalidations)
	}
	if !res.AblationIdentical {
		t.Error("uncached client fetched different bytes")
	}
	if res.ContentSHA == "" {
		t.Error("content digest not recorded")
	}
	out := res.Format()
	for _, want := range []string{"cold", "warm", "revalidate", "speedup", "ablation"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCacheAblation(t *testing.T) {
	res, err := bench.RunCache(quickCfg(), true)
	if err != nil {
		t.Fatalf("RunCache(disable): %v", err)
	}
	if res.VCacheEnabled {
		t.Error("VCacheEnabled = true on an ablated run")
	}
	if res.Revalidate != nil {
		t.Error("ablated run measured a revalidate phase")
	}
	if res.Hits != 0 || res.Misses != 0 {
		t.Errorf("ablated run touched the cache: hits=%d misses=%d", res.Hits, res.Misses)
	}
	if !res.AblationIdentical {
		t.Error("ablated run bytes differ")
	}
}
