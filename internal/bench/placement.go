package bench

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"time"

	"globedoc/internal/core"
	"globedoc/internal/deploy"
	"globedoc/internal/globeid"
	"globedoc/internal/keys"
	"globedoc/internal/netsim"
	"globedoc/internal/object"
	"globedoc/internal/telemetry"
	"globedoc/internal/transport"
	"globedoc/internal/workload"
)

// Placement-experiment workload shape. The interesting comparison lives
// in the objects WITHOUT a replica on the client's own continent: there
// the location service surfaces all replicas in one ring, sorted by
// (lexicographic) site name, so the ordered ablation routinely tries the
// alphabetically-first far continent while the health-ranked selector
// has RTT estimates telling it better.
const (
	// placementObjects is the total measured object count.
	placementObjects = 16
	// placementFarObjects of them are pinned to the far-mixed placement
	// class: no same-continent replica, but replicas on BOTH other
	// continents. Publishing draws fresh keys until the consistent-hash
	// placement yields this composition, so the workload shape (and the
	// meaning of p99) is stable run to run while every individual
	// placement stays organic.
	placementFarObjects = 4
	// placementElementBytes keeps transfers small so round trips — the
	// thing selection policy controls — dominate each fetch.
	placementElementBytes = 4 * workload.KB
	// placementMaxAttempts bounds the key-drawing loop.
	placementMaxAttempts = 400
)

// PlacementVariant is one selector's measured latency distributions.
type PlacementVariant struct {
	// Selector is the Selector.Name() of the ranking policy measured.
	Selector string `json:"selector"`
	// Cold fetches run the full secure pipeline from flushed bindings.
	Cold MuxPhase `json:"cold"`
	// Warm fetches reuse the cached verified binding (one element round
	// trip to whichever replica the selector bound).
	Warm MuxPhase `json:"warm"`
}

// PlacementResult is the -experiment placement output: cold and warm
// fetch latency over the sharded fleet for the default health-ranked
// selector against the location-order ablation, from one client vantage.
type PlacementResult struct {
	// Servers, Continents and ReplicationFactor describe the fleet.
	Servers           int `json:"servers"`
	Continents        int `json:"continents"`
	ReplicationFactor int `json:"replication_factor"`
	// Objects is the measured object count; FarObjects of them have no
	// replica on the client's continent (the placement class where
	// selection policy decides between the far continents).
	Objects    int `json:"objects"`
	FarObjects int `json:"far_objects"`
	// PublishAttempts is how many keys were drawn to reach the workload
	// composition (rejected draws publish nothing).
	PublishAttempts int `json:"publish_attempts"`
	// Client is the measuring vantage host.
	Client string `json:"client"`

	// HealthRanked is the default selector; Ordered is the ablation that
	// trusts location order blindly (pre-selector behaviour).
	HealthRanked PlacementVariant `json:"health_ranked"`
	Ordered      PlacementVariant `json:"ordered"`

	// ColdP99Ratio and WarmP99Ratio are HealthRanked p99 / Ordered p99 —
	// the acceptance metrics (must be well under 1).
	ColdP99Ratio float64 `json:"cold_p99_ratio"`
	WarmP99Ratio float64 `json:"warm_p99_ratio"`

	// AblationIdentical reports the in-run check: both selectors fetched
	// byte-identical content for every object.
	AblationIdentical bool `json:"ablation_identical"`
}

// placementObject is one published measured object.
type placementObject struct {
	oid     globeid.OID
	name    string
	element string
}

// RunPlacement measures replica selection over the sharded fleet (the
// -experiment placement entry point). It stands up the twelve-server,
// three-continent fleet world, publishes a fixed-composition workload
// through the consistent-hash placement (12 objects with a replica on
// the client's continent, 4 without), and measures cold and warm fetch
// latency from the Europe client twice: once with the default
// health-ranked selector (whose telemetry is first primed with one RTT
// probe per server, standing in for a long-running proxy's accumulated
// history), once with the ordered ablation that takes the location
// service's order as-is. The run finishes by checking both clients
// fetched byte-identical content.
func RunPlacement(cfg Config) (*PlacementResult, error) {
	cfg = cfg.withDefaults()
	clk := &benchClock{t: time.Date(2005, 4, 4, 12, 0, 0, 0, time.UTC)}
	w, err := deploy.NewFleetWorld(deploy.Options{TimeScale: cfg.TimeScale, Clock: clk.Now})
	if err != nil {
		return nil, err
	}
	defer w.Close()

	client := netsim.FleetClient(netsim.ContinentEurope)
	res := &PlacementResult{
		Servers:           len(netsim.FleetServers()),
		Continents:        len(netsim.FleetContinents),
		ReplicationFactor: deploy.FleetReplicationFactor,
		Objects:           placementObjects,
		FarObjects:        placementFarObjects,
		Client:            client,
	}

	objects, attempts, err := publishPlacementWorkload(w, client, cfg, clk)
	if err != nil {
		return nil, err
	}
	res.PublishAttempts = attempts

	//lint:ignore ctxfirst the benchmark harness is the top of the call tree; there is no caller context to inherit
	ctx := context.Background()

	telHR := telemetry.New(nil)
	primeHealth(ctx, w, client, telHR)
	hr, hrBytes, err := measurePlacementVariant(ctx, w, client, cfg, clk, objects, core.Options{
		Now:           clk.Now,
		CacheBindings: true,
		Telemetry:     telHR,
	})
	if err != nil {
		return nil, fmt.Errorf("placement health-ranked variant: %w", err)
	}
	hr.Selector = core.HealthRankedSelector{Zone: netsim.ContinentEurope}.Name()
	res.HealthRanked = hr

	ord, ordBytes, err := measurePlacementVariant(ctx, w, client, cfg, clk, objects, core.Options{
		Now:           clk.Now,
		CacheBindings: true,
		Telemetry:     telemetry.New(nil),
		Selector:      core.OrderedSelector{},
	})
	if err != nil {
		return nil, fmt.Errorf("placement ordered variant: %w", err)
	}
	ord.Selector = core.OrderedSelector{}.Name()
	res.Ordered = ord

	if res.Ordered.Cold.P99 > 0 {
		res.ColdP99Ratio = float64(res.HealthRanked.Cold.P99) / float64(res.Ordered.Cold.P99)
	}
	if res.Ordered.Warm.P99 > 0 {
		res.WarmP99Ratio = float64(res.HealthRanked.Warm.P99) / float64(res.Ordered.Warm.P99)
	}

	res.AblationIdentical = len(hrBytes) == len(objects) && len(ordBytes) == len(objects)
	for oid, data := range hrBytes {
		if !bytes.Equal(ordBytes[oid], data) {
			res.AblationIdentical = false
		}
	}
	return res, nil
}

// publishPlacementWorkload draws object keys until the consistent-hash
// placement yields the fixed workload composition, publishing only the
// accepted draws: nearWant objects with at least one replica on the
// client's continent and farWant objects whose replicas span both other
// continents but miss the client's. Degenerate draws (every replica on
// one far continent) are rejected — they measure placement luck, not
// selection policy.
func publishPlacementWorkload(w *deploy.FleetWorld, client string, cfg Config, clk *benchClock) ([]placementObject, int, error) {
	clientZone := netsim.FleetContinentOf(client)
	nearWant := placementObjects - placementFarObjects
	farWant := placementFarObjects
	var objects []placementObject
	attempts := 0
	for len(objects) < placementObjects {
		attempts++
		if attempts > placementMaxAttempts {
			return nil, attempts, fmt.Errorf("placement workload not reached after %d key draws (have %d/%d)",
				attempts, len(objects), placementObjects)
		}
		key, err := keys.Generate(cfg.KeyAlgorithm)
		if err != nil {
			return nil, attempts, err
		}
		oid := globeid.FromPublicKey(key.Public())
		continents := make(map[string]bool)
		for _, site := range w.Placement.ServersFor(oid) {
			continents[netsim.FleetContinentOf(site)] = true
		}
		accept := false
		switch {
		case continents[clientZone] && nearWant > 0:
			nearWant--
			accept = true
		case !continents[clientZone] && len(continents) > 1 && farWant > 0:
			farWant--
			accept = true
		}
		if !accept {
			continue
		}
		i := len(objects)
		name := fmt.Sprintf("placement-%02d.bench", i)
		doc := workload.WideDoc(1, placementElementBytes, WorkloadSeed+uint64(100+i))
		if _, err := w.PublishPlaced(doc, deploy.PublishOptions{
			Name:         name,
			TTL:          time.Hour,
			OwnerKey:     key,
			KeyAlgorithm: cfg.KeyAlgorithm,
			Clock:        clk.Now,
		}); err != nil {
			return nil, attempts, fmt.Errorf("publishing %s: %w", name, err)
		}
		objects = append(objects, placementObject{oid: oid, name: name, element: doc.Names()[0]})
	}
	return objects, attempts, nil
}

// primeHealth records a few RTT samples per fleet server into tel,
// standing in for the per-address history a long-running client proxy
// accumulates: the health-ranked selector ranks on measured RTT EWMAs,
// and a freshly started benchmark client has none.
func primeHealth(ctx context.Context, w *deploy.FleetWorld, client string, tel *telemetry.Telemetry) {
	for _, site := range netsim.FleetServers() {
		addr := w.Addrs[site]
		oc := object.NewClient(globeid.OID{}, addr, w.DialFrom(client)(addr))
		oc.Transport().Configure(transport.Config{Telemetry: tel})
		for i := 0; i < 2; i++ {
			if err := oc.Ping(ctx); err != nil {
				break // a dead server simply stays unmeasured
			}
		}
		oc.Close()
	}
}

// measurePlacementVariant measures one selector variant: cold fetches
// (bindings flushed before every sample) then warm fetches (cached
// bindings) across every object, returning the two distributions and the
// bytes fetched per object for the ablation check.
func measurePlacementVariant(ctx context.Context, w *deploy.FleetWorld, client string, cfg Config, clk *benchClock, objects []placementObject, opts core.Options) (PlacementVariant, map[globeid.OID][]byte, error) {
	var v PlacementVariant
	c, err := w.NewSecureClientOpts(client, opts)
	if err != nil {
		return v, nil, err
	}
	defer c.Close()

	fetched := make(map[globeid.OID][]byte, len(objects))
	var cold, warm []time.Duration
	for i := 0; i < cfg.Iterations; i++ {
		for _, obj := range objects {
			c.FlushBindings()
			start := now()
			r, err := c.Fetch(ctx, obj.oid, obj.element)
			if err != nil {
				return v, nil, fmt.Errorf("cold fetch %s: %w", obj.name, err)
			}
			cold = append(cold, now().Sub(start))
			fetched[obj.oid] = r.Element.Data
		}
	}
	for i := 0; i < cfg.Iterations; i++ {
		for _, obj := range objects {
			start := now()
			r, err := c.Fetch(ctx, obj.oid, obj.element)
			if err != nil {
				return v, nil, fmt.Errorf("warm fetch %s: %w", obj.name, err)
			}
			warm = append(warm, now().Sub(start))
			if !bytes.Equal(r.Element.Data, fetched[obj.oid]) {
				return v, nil, fmt.Errorf("warm fetch %s returned different bytes than cold", obj.name)
			}
		}
	}
	v.Cold = toMuxPhase(cold)
	v.Warm = toMuxPhase(warm)
	return v, fetched, nil
}

// Format renders the placement experiment as a human-readable table.
func (r *PlacementResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sharded fleet replica selection (%d servers / %d continents, factor %d; %d objects, %d without a %s replica; client at %s)\n\n",
		r.Servers, r.Continents, r.ReplicationFactor, r.Objects, r.FarObjects,
		netsim.FleetContinentOf(r.Client), r.Client)
	fmt.Fprintf(&b, "  %-22s %6s %12s %12s %12s %12s\n", "selector / phase", "ops", "mean", "p50", "p95", "p99")
	row := func(name string, p MuxPhase) {
		fmt.Fprintf(&b, "  %-22s %6d %12s %12s %12s %12s\n", name, p.Ops,
			p.Mean.Round(time.Microsecond), p.P50.Round(time.Microsecond),
			p.P95.Round(time.Microsecond), p.P99.Round(time.Microsecond))
	}
	row(r.HealthRanked.Selector+" cold", r.HealthRanked.Cold)
	row(r.Ordered.Selector+" cold", r.Ordered.Cold)
	row(r.HealthRanked.Selector+" warm", r.HealthRanked.Warm)
	row(r.Ordered.Selector+" warm", r.Ordered.Warm)
	fmt.Fprintf(&b, "\n  p99 ratio (health-ranked / ordered): cold %.2fx, warm %.2fx\n", r.ColdP99Ratio, r.WarmP99Ratio)
	fmt.Fprintf(&b, "  workload: %d key draws for %d accepted placements\n", r.PublishAttempts, r.Objects)
	fmt.Fprintf(&b, "  ablation (ordered client fetches identical bytes): %v\n", r.AblationIdentical)
	return b.String()
}
