package bench_test

import (
	"strings"
	"testing"
	"time"

	"globedoc/internal/bench"
	"globedoc/internal/keys"
	"globedoc/internal/netsim"
	"globedoc/internal/workload"
)

// quickCfg keeps harness tests fast: tiny sizes, no sleeping, Ed25519.
func quickCfg() bench.Config {
	return bench.Config{
		TimeScale:    0,
		Iterations:   2,
		Sizes:        []int{1 * workload.KB, 10 * workload.KB},
		ImageSizes:   []int{1 * workload.KB},
		Clients:      []string{netsim.Paris},
		KeyAlgorithm: keys.Ed25519,
	}
}

func TestCollect(t *testing.T) {
	s := bench.Collect([]time.Duration{time.Second, 3 * time.Second})
	if s.N != 2 || s.Mean != 2*time.Second || s.Std != time.Second {
		t.Errorf("Sample = %+v", s)
	}
	if z := bench.Collect(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty Sample = %+v", z)
	}
}

func TestRunTable1(t *testing.T) {
	out := bench.RunTable1(0)
	for _, want := range []string{"Table 1", "ginger.cs.vu.nl", "amsterdam-primary", "paris", "ithaca"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q", want)
		}
	}
}

func TestRunFig4Quick(t *testing.T) {
	res, err := bench.RunFig4(quickCfg())
	if err != nil {
		t.Fatalf("RunFig4: %v", err)
	}
	if len(res.Sizes) != 2 || len(res.Clients) != 1 {
		t.Fatalf("result shape: %+v", res)
	}
	for _, size := range res.Sizes {
		p := res.Points[size][netsim.Paris]
		if p.OverheadPercent <= 0 || p.OverheadPercent >= 100 {
			t.Errorf("size %d: overhead = %v", size, p.OverheadPercent)
		}
		if p.Total.Mean <= 0 || p.Security.Mean <= 0 {
			t.Errorf("size %d: samples = %+v", size, p)
		}
	}
	out := res.Format()
	if !strings.Contains(out, "Figure 4") || !strings.Contains(out, "1KB") {
		t.Errorf("Format output:\n%s", out)
	}
}

func TestRunFig5Quick(t *testing.T) {
	res, err := bench.RunFig5(netsim.Paris, quickCfg())
	if err != nil {
		t.Fatalf("RunFig5: %v", err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	row := res.Rows[0]
	if row.TotalBytes != 15*workload.KB {
		t.Errorf("TotalBytes = %d", row.TotalBytes)
	}
	if row.GlobeDoc.Mean <= 0 || row.HTTP.Mean <= 0 || row.HTTPS.Mean <= 0 {
		t.Errorf("row = %+v", row)
	}
	out := res.Format(6)
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "Paris") {
		t.Errorf("Format output:\n%s", out)
	}
}

func TestFigureNumber(t *testing.T) {
	if bench.FigureNumber(netsim.AmsterdamSecondary) != 5 ||
		bench.FigureNumber(netsim.Paris) != 6 ||
		bench.FigureNumber(netsim.Ithaca) != 7 {
		t.Error("figure numbering wrong")
	}
	if bench.FigureNumber("mars") != 0 {
		t.Error("unknown client should map to 0")
	}
}

// TestFig4ShapeAtScale runs Figure 4 at a reduced but non-zero time scale
// and asserts the paper's qualitative shape: overhead falls as size
// grows, and at the largest size the LAN client has the highest relative
// overhead.
func TestFig4ShapeAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scaled-latency experiment")
	}
	cfg := bench.Config{
		TimeScale:  0.05, // 5% of real latencies keeps the test quick
		Iterations: 3,
		Sizes:      []int{1 * workload.KB, 1024 * workload.KB},
		Clients:    []string{netsim.AmsterdamSecondary, netsim.Paris, netsim.Ithaca},
	}
	res, err := bench.RunFig4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, client := range cfg.Clients {
		small := res.Points[1*workload.KB][client].OverheadPercent
		large := res.Points[1024*workload.KB][client].OverheadPercent
		if small <= large {
			t.Errorf("%s: overhead did not fall with size: %.1f%% -> %.1f%%",
				netsim.ClientLabel(client), small, large)
		}
	}
	largeAms := res.Points[1024*workload.KB][netsim.AmsterdamSecondary].OverheadPercent
	largeIth := res.Points[1024*workload.KB][netsim.Ithaca].OverheadPercent
	if largeAms <= largeIth {
		t.Errorf("at 1MB, LAN overhead (%.2f%%) should exceed transatlantic (%.2f%%)",
			largeAms, largeIth)
	}
}
