package bench

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"globedoc/internal/core"
	"globedoc/internal/deploy"
	"globedoc/internal/netsim"
	"globedoc/internal/server"
	"globedoc/internal/telemetry"
	"globedoc/internal/workload"
)

// ConcurrentResult is one closed-loop concurrency point: N client
// goroutines fetching the same published object back-to-back through a
// shared secure client whose connection pool is sized to match.
type ConcurrentResult struct {
	// Concurrency is the closed-loop worker count (and the transport
	// pool size used for the run).
	Concurrency int `json:"concurrency"`
	// Ops is the number of successful warm fetches measured.
	Ops int `json:"ops"`
	// Errors counts failed fetches (0 on a healthy testbed).
	Errors int `json:"errors"`
	// Elapsed is the wall time of the measured closed loop.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Throughput is successful fetches per second of wall time.
	Throughput float64 `json:"throughput_ops_per_sec"`
	// Latency quantiles of the successful fetches.
	Mean time.Duration `json:"latency_mean_ns"`
	P50  time.Duration `json:"latency_p50_ns"`
	P95  time.Duration `json:"latency_p95_ns"`
	P99  time.Duration `json:"latency_p99_ns"`
	Max  time.Duration `json:"latency_max_ns"`
	// ColdPipelineRuns is how many full secure-binding pipelines ran
	// during the cold burst that preceded the measurement — with
	// singleflight deduplication this is exactly 1 no matter how many
	// goroutines raced the first fetch.
	ColdPipelineRuns uint64 `json:"cold_pipeline_runs"`
	// ColdSingleflightShared is how many of those racing cold fetches
	// joined the winner's pipeline run instead of running their own.
	ColdSingleflightShared uint64 `json:"cold_singleflight_shared"`
}

// ConcurrentComparison is the -concurrency experiment output: the same
// closed-loop workload at concurrency 1 and at the requested
// concurrency, plus the resulting speedup.
type ConcurrentComparison struct {
	// OpsPerWorker is the number of warm fetches each worker performed.
	OpsPerWorker int                 `json:"ops_per_worker"`
	Serial       *ConcurrentResult   `json:"serial"`
	Parallel     *ConcurrentResult   `json:"parallel"`
	Points       []*ConcurrentResult `json:"points,omitempty"`
	// Speedup is Parallel.Throughput / Serial.Throughput.
	Speedup float64 `json:"speedup"`
}

// RunConcurrent measures one concurrency point. It publishes a 10 KB
// object, then:
//
//  1. Cold burst: `concurrency` goroutines fetch the object at once
//     through a fresh binding-caching client. Exactly one secure-binding
//     pipeline should run (singleflight); the counters recording this
//     are returned in the result.
//  2. Warm closed loop: the same goroutines fetch back-to-back,
//     iterations ops each, measuring throughput and tail latency.
//
// The client's transport pool is sized to `concurrency` so that the
// in-flight RPC bound never serialises the workload.
func RunConcurrent(cfg Config, concurrency int) (*ConcurrentResult, error) {
	cfg = cfg.withDefaults()
	if concurrency < 1 {
		concurrency = 1
	}
	tel := telemetry.New(nil)
	w, err := deploy.NewWorld(deploy.Options{TimeScale: cfg.TimeScale, Telemetry: tel})
	if err != nil {
		return nil, err
	}
	defer w.Close()
	if _, err := w.StartServer(netsim.AmsterdamPrimary, "srv-ams", nil, nil, server.Limits{}); err != nil {
		return nil, err
	}
	doc := workload.SingleElementDoc(10*workload.KB, WorkloadSeed)
	pub, err := w.Publish(doc, deploy.PublishOptions{
		Name:         "concurrent.bench",
		TTL:          24 * time.Hour,
		KeyAlgorithm: cfg.KeyAlgorithm,
	})
	if err != nil {
		return nil, err
	}

	client, err := w.NewSecureClientOpts(netsim.Paris, core.Options{
		CacheBindings: true,
		PoolSize:      concurrency,
	})
	if err != nil {
		return nil, err
	}
	defer client.Close()
	//lint:ignore ctxfirst the benchmark harness is the top of the call tree; there is no caller context to inherit
	ctx := context.Background()

	// Cold burst: all workers race the first fetch of the OID. The
	// pipeline-run and singleflight counters bracket the burst so the
	// result reports exactly how many pipelines the burst cost.
	runsBefore := tel.PipelineRuns.Value()
	sharedBefore := tel.SingleflightShared.Value()
	var wg sync.WaitGroup
	coldErrs := make([]error, concurrency)
	for i := 0; i < concurrency; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, coldErrs[i] = client.Fetch(ctx, pub.OID, "image.bin")
		}(i)
	}
	wg.Wait()
	for _, err := range coldErrs {
		if err != nil {
			return nil, fmt.Errorf("cold burst fetch: %w", err)
		}
	}
	res := &ConcurrentResult{
		Concurrency:            concurrency,
		ColdPipelineRuns:       tel.PipelineRuns.Value() - runsBefore,
		ColdSingleflightShared: tel.SingleflightShared.Value() - sharedBefore,
	}

	// Warm closed loop over the now-cached binding.
	loop := workload.RunClosedLoop(ctx, concurrency, concurrency*cfg.Iterations,
		func(ctx context.Context, _, _ int) error {
			_, err := client.Fetch(ctx, pub.OID, "image.bin")
			return err
		})
	if loop.FirstError != nil {
		return nil, fmt.Errorf("closed loop: %w", loop.FirstError)
	}
	res.Ops = loop.Ops
	res.Errors = loop.Errors
	res.Elapsed = loop.Elapsed
	res.Throughput = loop.Throughput
	res.Mean = loop.Latency.Mean
	res.P50 = loop.Latency.P50
	res.P95 = loop.Latency.P95
	res.P99 = loop.Latency.P99
	res.Max = loop.Latency.Max
	return res, nil
}

// RunConcurrentComparison runs the closed-loop workload at concurrency 1
// and at `concurrency`, returning both points and the throughput
// speedup between them.
func RunConcurrentComparison(cfg Config, concurrency int) (*ConcurrentComparison, error) {
	cfg = cfg.withDefaults()
	serial, err := RunConcurrent(cfg, 1)
	if err != nil {
		return nil, err
	}
	parallel, err := RunConcurrent(cfg, concurrency)
	if err != nil {
		return nil, err
	}
	cmp := &ConcurrentComparison{
		OpsPerWorker: cfg.Iterations,
		Serial:       serial,
		Parallel:     parallel,
		Points:       []*ConcurrentResult{serial, parallel},
	}
	if serial.Throughput > 0 {
		cmp.Speedup = parallel.Throughput / serial.Throughput
	}
	return cmp, nil
}

// Format renders the comparison as a human-readable table.
func (c *ConcurrentComparison) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Concurrent fetch (closed loop, warm bindings, %d ops/worker, client at %s)\n\n",
		c.OpsPerWorker, netsim.Paris)
	fmt.Fprintf(&b, "  %-12s %8s %12s %10s %10s %10s %6s %8s\n",
		"concurrency", "ops", "throughput", "p50", "p95", "p99", "runs", "shared")
	for _, p := range c.Points {
		fmt.Fprintf(&b, "  %-12d %8d %9.1f/s %10s %10s %10s %6d %8d\n",
			p.Concurrency, p.Ops, p.Throughput,
			p.P50.Round(time.Microsecond), p.P95.Round(time.Microsecond),
			p.P99.Round(time.Microsecond),
			p.ColdPipelineRuns, p.ColdSingleflightShared)
	}
	fmt.Fprintf(&b, "\n  speedup (throughput at %d / at 1): %.2fx\n",
		c.Parallel.Concurrency, c.Speedup)
	fmt.Fprintf(&b, "  cold-burst pipeline runs at %d: %d (singleflight shared %d of %d fetches)\n",
		c.Parallel.Concurrency, c.Parallel.ColdPipelineRuns,
		c.Parallel.ColdSingleflightShared, c.Parallel.Concurrency)
	return b.String()
}
