// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (§4) on the simulated testbed:
//
//	Table 1   — the experimental setting (hosts + links);
//	Figure 4  — security overhead (%) vs. element size, per client site;
//	Figures 5–7 — GlobeDoc vs. HTTP vs. HTTPS full-object fetch time for
//	              the 15/105/1005 KB composite objects, per client site.
//
// The harness runs the real protocol stack — secure client, object
// server, naming and location services, baseline HTTP/TLS servers — over
// netsim links, and prints the same rows/series the paper reports.
// DESIGN.md §3 maps each experiment to these entry points; EXPERIMENTS.md
// records measured-vs-paper shapes.
package bench

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"globedoc/internal/core"
	"globedoc/internal/deploy"
	"globedoc/internal/document"
	"globedoc/internal/httpbase"
	"globedoc/internal/keys"
	"globedoc/internal/naming"
	"globedoc/internal/netsim"
	"globedoc/internal/server"
	"globedoc/internal/workload"
)

// now is the wall clock for benchmark timing; a variable so replayed
// runs can substitute a deterministic clock.
var now = time.Now

// Config controls experiment scale.
type Config struct {
	// TimeScale scales simulated link delays (1.0 = the paper's
	// latencies; tests use small values).
	TimeScale float64
	// Iterations per measured point (the paper averaged 24h of samples;
	// we average repeated in-process runs).
	Iterations int
	// Sizes overrides the Figure-4 element sizes (defaults to the
	// paper's six sizes).
	Sizes []int
	// ImageSizes overrides the Figures-5–7 per-image sizes (defaults to
	// the paper's 1/10/100 KB).
	ImageSizes []int
	// Clients overrides the measured client sites (defaults to
	// Amsterdam secondary, Paris, Ithaca).
	Clients []string
	// KeyAlgorithm for object keys (defaults to RSA2048 as in the
	// paper's prototype).
	KeyAlgorithm keys.Algorithm
}

func (c Config) withDefaults() Config {
	if c.Iterations == 0 {
		c.Iterations = 5
	}
	if c.Sizes == nil {
		c.Sizes = workload.Fig4Sizes
	}
	if c.ImageSizes == nil {
		c.ImageSizes = workload.Fig5ImageSizes
	}
	if c.Clients == nil {
		c.Clients = netsim.ClientHosts
	}
	if c.KeyAlgorithm == 0 {
		c.KeyAlgorithm = keys.RSA2048
	}
	return c
}

// Sample aggregates repeated duration measurements.
type Sample struct {
	N    int
	Mean time.Duration
	Std  time.Duration
}

// Collect reduces raw durations to a Sample.
func Collect(values []time.Duration) Sample {
	if len(values) == 0 {
		return Sample{}
	}
	var sum float64
	for _, v := range values {
		sum += float64(v)
	}
	mean := sum / float64(len(values))
	var sq float64
	for _, v := range values {
		d := float64(v) - mean
		sq += d * d
	}
	return Sample{
		N:    len(values),
		Mean: time.Duration(mean),
		Std:  time.Duration(math.Sqrt(sq / float64(len(values)))),
	}
}

// --- Table 1 --------------------------------------------------------------

// RunTable1 renders the experimental setting.
func RunTable1(timeScale float64) string {
	n := netsim.PaperTestbed(timeScale)
	defer n.Close()
	return "Table 1: experimental setting (simulated)\n\n" + netsim.FormatTable1(n)
}

// --- Figure 4 ---------------------------------------------------------------

// Fig4Point is one measured point of Figure 4.
type Fig4Point struct {
	Size            int
	Client          string
	OverheadPercent float64
	Security        Sample
	Total           Sample
	Breakdown       core.Timing // mean per-phase times
}

// Fig4Result is the full figure: points[size][client].
type Fig4Result struct {
	Sizes   []int
	Clients []string
	Points  map[int]map[string]Fig4Point
}

// RunFig4 measures security overhead versus element size for each client
// site, reproducing Figure 4. Every iteration is a cold secure fetch:
// binding cache and name cache are flushed so the client pays the full
// pipeline, as the paper's periodic wget runs did.
func RunFig4(cfg Config) (*Fig4Result, error) {
	cfg = cfg.withDefaults()
	w, err := deploy.NewWorld(deploy.Options{TimeScale: cfg.TimeScale})
	if err != nil {
		return nil, err
	}
	defer w.Close()
	if _, err := w.StartServer(netsim.AmsterdamPrimary, "srv-ams", nil, nil, server.Limits{}); err != nil {
		return nil, err
	}

	// One object per size, all replicated on the Amsterdam primary.
	pubs := make(map[int]*deploy.Publication, len(cfg.Sizes))
	for i, size := range cfg.Sizes {
		doc := workload.SingleElementDoc(size, uint64(i+1))
		pub, err := w.Publish(doc, deploy.PublishOptions{
			Name:         fmt.Sprintf("fig4-%d.bench", size),
			TTL:          24 * time.Hour,
			KeyAlgorithm: cfg.KeyAlgorithm,
		})
		if err != nil {
			return nil, err
		}
		pubs[size] = pub
	}

	result := &Fig4Result{
		Sizes:   cfg.Sizes,
		Clients: cfg.Clients,
		Points:  make(map[int]map[string]Fig4Point),
	}
	for _, size := range cfg.Sizes {
		result.Points[size] = make(map[string]Fig4Point)
		for _, client := range cfg.Clients {
			point, err := measureFig4Point(w, pubs[size], client, size, cfg.Iterations)
			if err != nil {
				return nil, err
			}
			result.Points[size][client] = point
		}
	}
	return result, nil
}

func measureFig4Point(w *deploy.World, pub *deploy.Publication, client string, size, iterations int) (Fig4Point, error) {
	sc := w.NewSecureClient(client)
	defer sc.Close()
	var securities, totals []time.Duration
	var sumTiming core.Timing
	for i := 0; i < iterations; i++ {
		sc.FlushBindings()
		if r, ok := sc.Binder.Names.(*naming.Resolver); ok {
			r.FlushCache()
		}
		//lint:ignore ctxfirst the benchmark harness is the top of the call tree; there is no caller context to inherit
		res, err := sc.FetchNamed(context.Background(), pub.Name, "image.bin")
		if err != nil {
			return Fig4Point{}, fmt.Errorf("fig4 %s/%d: %w", client, size, err)
		}
		securities = append(securities, res.Timing.Security())
		totals = append(totals, res.Timing.Total())
		sumTiming.Add(res.Timing)
	}
	sec := Collect(securities)
	tot := Collect(totals)
	overhead := 0.0
	if tot.Mean > 0 {
		overhead = 100 * float64(sec.Mean) / float64(tot.Mean)
	}
	return Fig4Point{
		Size:            size,
		Client:          client,
		OverheadPercent: overhead,
		Security:        sec,
		Total:           tot,
		Breakdown:       sumTiming.Scale(iterations),
	}, nil
}

// Format renders the figure as the paper's series: one line per client,
// overhead percentage per size.
func (r *Fig4Result) Format() string {
	var b strings.Builder
	b.WriteString("Figure 4: security overhead (%) vs element size\n\n")
	fmt.Fprintf(&b, "%-12s", "Size")
	for _, client := range r.Clients {
		fmt.Fprintf(&b, "%14s", netsim.ClientLabel(client))
	}
	b.WriteString("\n")
	for _, size := range r.Sizes {
		fmt.Fprintf(&b, "%-12s", fmtSize(size))
		for _, client := range r.Clients {
			p := r.Points[size][client]
			fmt.Fprintf(&b, "%13.1f%%", p.OverheadPercent)
		}
		b.WriteString("\n")
	}
	b.WriteString("\nMean totals (per size, per client):\n")
	for _, size := range r.Sizes {
		fmt.Fprintf(&b, "%-12s", fmtSize(size))
		for _, client := range r.Clients {
			p := r.Points[size][client]
			fmt.Fprintf(&b, "%14s", p.Total.Mean.Round(100*time.Microsecond))
		}
		b.WriteString("\n")
	}
	return b.String()
}

func fmtSize(size int) string {
	if size >= 1024*1024 {
		return fmt.Sprintf("%dMB", size/(1024*1024))
	}
	return fmt.Sprintf("%dKB", size/1024)
}

// --- Figures 5–7 -----------------------------------------------------------

// Fig5Row compares the three transports for one composite object.
type Fig5Row struct {
	TotalBytes int
	GlobeDoc   Sample
	HTTP       Sample
	HTTPS      Sample
}

// Fig5Result is the full figure for one client site.
type Fig5Result struct {
	Client string
	Rows   []Fig5Row
}

// RunFig5 reproduces Figures 5 (Amsterdam), 6 (Paris) or 7 (Ithaca)
// depending on client: fetching each composite object in full via the
// secure GlobeDoc pipeline, plain HTTP, and HTTPS, from the given client
// site. Every sample is a cold run: fresh bindings, no connection reuse
// across samples.
func RunFig5(client string, cfg Config) (*Fig5Result, error) {
	cfg = cfg.withDefaults()
	w, err := deploy.NewWorld(deploy.Options{TimeScale: cfg.TimeScale})
	if err != nil {
		return nil, err
	}
	defer w.Close()
	if _, err := w.StartServer(netsim.AmsterdamPrimary, "srv-ams", nil, nil, server.Limits{}); err != nil {
		return nil, err
	}

	result := &Fig5Result{Client: client}
	for i, imageSize := range cfg.ImageSizes {
		doc := workload.CompositeDoc(imageSize, uint64(100+i))
		row, err := measureFig5Row(w, doc, client, i, cfg)
		if err != nil {
			return nil, err
		}
		result.Rows = append(result.Rows, row)
	}
	return result, nil
}

func measureFig5Row(w *deploy.World, doc *document.Document, client string, idx int, cfg Config) (Fig5Row, error) {
	pub, err := w.Publish(doc, deploy.PublishOptions{
		Name:         fmt.Sprintf("fig5-%d.bench", idx),
		TTL:          24 * time.Hour,
		KeyAlgorithm: cfg.KeyAlgorithm,
	})
	if err != nil {
		return Fig5Row{}, err
	}
	elements := doc.Names()

	// Baseline servers share the primary host, like the paper's Apache
	// on the same machine as the GlobeDoc server.
	httpSvc := fmt.Sprintf("http-%d", idx)
	httpsSvc := fmt.Sprintf("https-%d", idx)
	hl, err := w.Net.Listen(netsim.AmsterdamPrimary, httpSvc)
	if err != nil {
		return Fig5Row{}, err
	}
	fs := httpbase.NewFileServer(doc)
	fs.Start(hl)
	defer fs.Close()
	sl, err := w.Net.Listen(netsim.AmsterdamPrimary, httpsSvc)
	if err != nil {
		return Fig5Row{}, err
	}
	ts, err := httpbase.NewTLSFileServer(doc, netsim.AmsterdamPrimary)
	if err != nil {
		return Fig5Row{}, err
	}
	ts.Start(sl)
	defer ts.Close()

	var globedoc, plain, secure []time.Duration
	for i := 0; i < cfg.Iterations; i++ {
		// GlobeDoc: cold secure full-object fetch.
		sc := w.NewSecureClient(client)
		start := now()
		//lint:ignore ctxfirst the benchmark harness is the top of the call tree; there is no caller context to inherit
		if _, err := sc.FetchAll(context.Background(), pub.OID); err != nil {
			sc.Close()
			return Fig5Row{}, fmt.Errorf("fig5 globedoc: %w", err)
		}
		globedoc = append(globedoc, now().Sub(start))
		sc.Close()

		// Plain HTTP (fresh connection per run).
		hc := httpbase.NewClient(w.Net.Dialer(client, netsim.AmsterdamPrimary+":"+httpSvc), nil, netsim.AmsterdamPrimary)
		elapsed, _, err := hc.TimedGetAll(elements)
		if err != nil {
			return Fig5Row{}, fmt.Errorf("fig5 http: %w", err)
		}
		plain = append(plain, elapsed)
		hc.CloseIdle()

		// HTTPS (fresh connection per run: pays the handshake).
		tc := httpbase.NewClient(w.Net.Dialer(client, netsim.AmsterdamPrimary+":"+httpsSvc), ts.Pool, netsim.AmsterdamPrimary)
		elapsed, _, err = tc.TimedGetAll(elements)
		if err != nil {
			return Fig5Row{}, fmt.Errorf("fig5 https: %w", err)
		}
		secure = append(secure, elapsed)
		tc.CloseIdle()
	}
	return Fig5Row{
		TotalBytes: doc.TotalSize(),
		GlobeDoc:   Collect(globedoc),
		HTTP:       Collect(plain),
		HTTPS:      Collect(secure),
	}, nil
}

// Format renders the figure as the paper's bar groups.
func (r *Fig5Result) Format(figureNumber int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %d: performance comparison — %s client\n\n",
		figureNumber, netsim.ClientLabel(r.Client))
	fmt.Fprintf(&b, "%-12s %14s %14s %14s\n", "Object", "GlobeDoc", "HTTP", "HTTPS")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-12s %14s %14s %14s\n",
			fmtSize(row.TotalBytes),
			row.GlobeDoc.Mean.Round(100*time.Microsecond),
			row.HTTP.Mean.Round(100*time.Microsecond),
			row.HTTPS.Mean.Round(100*time.Microsecond))
	}
	return b.String()
}

// FigureNumber maps a client site to the paper's figure number.
func FigureNumber(client string) int {
	switch client {
	case netsim.AmsterdamSecondary:
		return 5
	case netsim.Paris:
		return 6
	case netsim.Ithaca:
		return 7
	default:
		return 0
	}
}
