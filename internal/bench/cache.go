package bench

import (
	"bytes"
	"context"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"time"

	"globedoc/internal/core"
	"globedoc/internal/deploy"
	"globedoc/internal/globeid"
	"globedoc/internal/netsim"
	"globedoc/internal/server"
	"globedoc/internal/telemetry"
	"globedoc/internal/vcache"
	"globedoc/internal/workload"
)

// CachePhase is the latency distribution of one verified-content-cache
// phase: cold (empty cache, full pipeline + element transfer), warm
// (bytes served from the cache against the current certificate), or
// revalidate (certificate lapsed; only a fresh certificate is fetched,
// the cached bytes are reused).
type CachePhase struct {
	Ops  int           `json:"ops"`
	Mean time.Duration `json:"latency_mean_ns"`
	P50  time.Duration `json:"latency_p50_ns"`
	P95  time.Duration `json:"latency_p95_ns"`
	P99  time.Duration `json:"latency_p99_ns"`
	Max  time.Duration `json:"latency_max_ns"`
}

func toCachePhase(samples []time.Duration) CachePhase {
	s := workload.ComputeLatencyStats(samples)
	return CachePhase{Ops: s.N, Mean: s.Mean, P50: s.P50, P95: s.P95, P99: s.P99, Max: s.Max}
}

// CacheResult is the -experiment cache output: cold/warm/revalidate
// fetch latency through the verified-content cache, the cache counters
// accumulated over the run, and the ablation check that a cache-disabled
// client fetches byte-identical content.
type CacheResult struct {
	// VCacheEnabled is false when the run was the -disable-vcache
	// ablation: every fetch pays the full pipeline and Warm/Revalidate
	// measure the uncached warm-binding path.
	VCacheEnabled bool `json:"vcache_enabled"`
	// ElementBytes is the size of the measured element.
	ElementBytes int `json:"element_bytes"`

	Cold CachePhase `json:"cold"`
	Warm CachePhase `json:"warm"`
	// Revalidate is measured only when the cache is enabled: each sample
	// expires the certificate, reissues it, and fetches — paying for a
	// certificate but not for the element bytes.
	Revalidate *CachePhase `json:"revalidate,omitempty"`

	// WarmSpeedup is Cold.Mean / Warm.Mean.
	WarmSpeedup float64 `json:"warm_speedup"`

	// Cache counters accumulated across the whole run.
	Hits          uint64 `json:"vcache_hits"`
	Misses        uint64 `json:"vcache_misses"`
	Revalidations uint64 `json:"vcache_revalidations"`
	SigCacheHits  uint64 `json:"signature_cache_hits"`

	// ContentSHA is the hex digest of the element bytes every measured
	// fetch returned, for cross-run comparison of ablated runs.
	ContentSHA string `json:"content_sha"`
	// AblationIdentical reports the in-run check: a second client with
	// the cache disabled fetched bytes identical to the cached ones.
	AblationIdentical bool `json:"ablation_identical"`
}

// benchClock is a mutable virtual clock shared by the publication and
// the measured client, so certificate validity can be expired on demand
// without real waiting.
type benchClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *benchClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *benchClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// cacheTTL is the certificate validity used by the cache experiment;
// each revalidation sample advances the virtual clock past it.
const cacheTTL = time.Hour

// RunCache measures the verified-content cache (the -experiment cache
// entry point). It publishes one 64 KB element, then measures:
//
//   - cold: bindings flushed and the element evicted before every fetch,
//     so each sample pays the full secure pipeline plus the transfer;
//   - warm: back-to-back fetches against the warm cache — with the cache
//     enabled every sample is served from memory, no RPC at all;
//   - revalidate (enabled runs only): the certificate is expired and
//     reissued before every fetch, so each sample re-runs the binding
//     pipeline but reuses the cached bytes instead of transferring them.
//
// Every run finishes with the ablation check: a cache-disabled client
// fetches the same element and the bytes are compared.
func RunCache(cfg Config, disableVCache bool) (*CacheResult, error) {
	cfg = cfg.withDefaults()
	clk := &benchClock{t: time.Date(2005, 4, 4, 12, 0, 0, 0, time.UTC)}
	tel := telemetry.New(nil)
	w, err := deploy.NewWorld(deploy.Options{TimeScale: cfg.TimeScale, Telemetry: tel, Clock: clk.Now})
	if err != nil {
		return nil, err
	}
	defer w.Close()
	if _, err := w.StartServer(netsim.AmsterdamPrimary, "srv-ams", nil, nil, server.Limits{}); err != nil {
		return nil, err
	}
	const elementBytes = 64 * workload.KB
	doc := workload.SingleElementDoc(elementBytes, WorkloadSeed)
	pub, err := w.Publish(doc, deploy.PublishOptions{
		Name:         "cache.bench",
		TTL:          cacheTTL,
		KeyAlgorithm: cfg.KeyAlgorithm,
		Clock:        clk.Now,
	})
	if err != nil {
		return nil, err
	}

	var vc *vcache.Cache
	if !disableVCache {
		vc = vcache.New(vcache.Config{})
	}
	client, err := w.NewSecureClientOpts(netsim.Paris, core.Options{
		CacheBindings: true,
		VCache:        vc,
		Now:           clk.Now,
	})
	if err != nil {
		return nil, err
	}
	defer client.Close()
	//lint:ignore ctxfirst the benchmark harness is the top of the call tree; there is no caller context to inherit
	ctx := context.Background()

	res := &CacheResult{VCacheEnabled: !disableVCache, ElementBytes: elementBytes}
	var content []byte

	// Cold: every sample starts from an empty binding cache and (when
	// enabled) no cached copy of the element.
	var cold []time.Duration
	for i := 0; i < cfg.Iterations; i++ {
		client.FlushBindings()
		if vc != nil {
			vc.InvalidateOID(pub.OID)
		}
		start := now()
		r, err := client.Fetch(ctx, pub.OID, "image.bin")
		if err != nil {
			return nil, fmt.Errorf("cache cold fetch: %w", err)
		}
		cold = append(cold, now().Sub(start))
		content = r.Element.Data
	}
	res.Cold = toCachePhase(cold)

	// Warm: the binding and (when enabled) the content cache stay hot.
	var warm []time.Duration
	for i := 0; i < cfg.Iterations; i++ {
		start := now()
		r, err := client.Fetch(ctx, pub.OID, "image.bin")
		if err != nil {
			return nil, fmt.Errorf("cache warm fetch: %w", err)
		}
		warm = append(warm, now().Sub(start))
		if vc != nil && !r.FromCache {
			return nil, fmt.Errorf("cache warm fetch %d not served from cache", i)
		}
		if !bytes.Equal(r.Element.Data, content) {
			return nil, fmt.Errorf("cache warm fetch %d returned different bytes", i)
		}
	}
	res.Warm = toCachePhase(warm)
	if res.Warm.Mean > 0 {
		res.WarmSpeedup = float64(res.Cold.Mean) / float64(res.Warm.Mean)
	}

	// Revalidate: expire and reissue the certificate before each sample,
	// so only a fresh certificate crosses the wire.
	if vc != nil {
		var reval []time.Duration
		for i := 0; i < cfg.Iterations; i++ {
			clk.Advance(cacheTTL + time.Second)
			if err := w.Reissue(pub, cacheTTL, clk.Now()); err != nil {
				return nil, fmt.Errorf("cache reissue: %w", err)
			}
			start := now()
			r, err := client.Fetch(ctx, pub.OID, "image.bin")
			if err != nil {
				return nil, fmt.Errorf("cache revalidate fetch: %w", err)
			}
			reval = append(reval, now().Sub(start))
			if !r.FromCache {
				return nil, fmt.Errorf("cache revalidate fetch %d re-transferred the element", i)
			}
			if !bytes.Equal(r.Element.Data, content) {
				return nil, fmt.Errorf("cache revalidate fetch %d returned different bytes", i)
			}
		}
		p := toCachePhase(reval)
		res.Revalidate = &p
	}

	// Ablation: a client with no verified-content cache must fetch
	// byte-identical content.
	plain, err := w.NewSecureClientOpts(netsim.Paris, core.Options{Now: clk.Now})
	if err != nil {
		return nil, err
	}
	defer plain.Close()
	pr, err := plain.Fetch(ctx, pub.OID, "image.bin")
	if err != nil {
		return nil, fmt.Errorf("cache ablation fetch: %w", err)
	}
	res.AblationIdentical = bytes.Equal(pr.Element.Data, content)

	digest := globeid.HashElement(content)
	res.ContentSHA = hex.EncodeToString(digest[:])
	res.Hits = tel.VCacheHits.Value()
	res.Misses = tel.VCacheMisses.Value()
	res.Revalidations = tel.VCacheRevalidations.Value()
	res.SigCacheHits = tel.SigCacheHits.Value()
	return res, nil
}

// Format renders the cache experiment as a human-readable table.
func (r *CacheResult) Format() string {
	var b strings.Builder
	state := "enabled"
	if !r.VCacheEnabled {
		state = "DISABLED (ablation)"
	}
	fmt.Fprintf(&b, "Verified-content cache (%s element, client at %s, cache %s)\n\n",
		fmtSize(r.ElementBytes), netsim.Paris, state)
	fmt.Fprintf(&b, "  %-12s %6s %12s %12s %12s %12s\n", "phase", "ops", "mean", "p50", "p95", "p99")
	row := func(name string, p CachePhase) {
		fmt.Fprintf(&b, "  %-12s %6d %12s %12s %12s %12s\n", name, p.Ops,
			p.Mean.Round(time.Microsecond), p.P50.Round(time.Microsecond),
			p.P95.Round(time.Microsecond), p.P99.Round(time.Microsecond))
	}
	row("cold", r.Cold)
	row("warm", r.Warm)
	if r.Revalidate != nil {
		row("revalidate", *r.Revalidate)
	}
	fmt.Fprintf(&b, "\n  warm speedup (cold mean / warm mean): %.1fx\n", r.WarmSpeedup)
	fmt.Fprintf(&b, "  counters: hits=%d misses=%d revalidations=%d signature_cache_hits=%d\n",
		r.Hits, r.Misses, r.Revalidations, r.SigCacheHits)
	fmt.Fprintf(&b, "  ablation (uncached client fetches identical bytes): %v\n", r.AblationIdentical)
	return b.String()
}
