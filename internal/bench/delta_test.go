package bench_test

import (
	"strings"
	"testing"

	"globedoc/internal/bench"
)

func TestRunDeltaQuick(t *testing.T) {
	res, err := bench.RunDelta(quickCfg())
	if err != nil {
		t.Fatalf("RunDelta: %v", err)
	}
	if res.Elements != 64 || res.ChangedPerUpdate != 1 {
		t.Errorf("Elements=%d ChangedPerUpdate=%d, want 64 and 1", res.Elements, res.ChangedPerUpdate)
	}
	if res.DeltaPull.Ops != 2 || res.FullPull.Ops != 2 {
		t.Errorf("phase ops: delta=%d full=%d, want 2 each", res.DeltaPull.Ops, res.FullPull.Ops)
	}
	// Every pull in the delta run took the delta path.
	if res.DeltaPulls != 2 || res.DeltaDeclines != 0 || res.DeltaFallbacks != 0 {
		t.Errorf("delta run counters: pulls=%d declines=%d fallbacks=%d, want 2/0/0",
			res.DeltaPulls, res.DeltaDeclines, res.DeltaFallbacks)
	}
	// A one-element change to a 64-element document must move far fewer
	// bytes than the full bundle; the gate is 4x, the expectation ~30x.
	if res.ByteRatio < 4 {
		t.Errorf("byte ratio = %.2fx (delta %d vs full %d bytes/pull), want >= 4x",
			res.ByteRatio, res.BytesDeltaPerPull, res.BytesFullPerPull)
	}
	if !res.AblationIdentical {
		t.Error("full-pull ablation replica ended with different bytes")
	}
	out := res.Format()
	for _, want := range []string{"delta", "full", "byte ratio", "ablation"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
}
