package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"globedoc/internal/keys"
)

// ReportSchema identifies the benchmark JSON payload layout. Bump it
// whenever a field changes meaning; consumers must check it before
// reading anything else.
const ReportSchema = "globedoc-bench/1"

// Meta records how a benchmark run was configured — enough to reproduce
// it exactly on the deterministic testbed.
type Meta struct {
	// TimeScale is the simulated-link delay multiplier (1.0 = the
	// paper's latencies).
	TimeScale float64 `json:"time_scale"`
	// Iterations is the sample count per measured point.
	Iterations int `json:"iterations"`
	// Seed is the workload generator base seed (per-object seeds are
	// derived from it deterministically).
	Seed uint64 `json:"seed"`
	// KeyAlgorithm names the object key algorithm (keys.ParseAlgorithm
	// round-trips it).
	KeyAlgorithm string `json:"key_algorithm"`
	// StartedAt is the wall-clock run start.
	StartedAt time.Time `json:"started_at"`
}

// Report is the machine-readable output of a benchmark run: every
// Figure-4 and Figure-5/6/7 series that was measured, plus run metadata.
// Durations (inside Sample and core.Timing) marshal as nanoseconds.
type Report struct {
	Schema string `json:"schema"`
	Meta   Meta   `json:"meta"`
	// Fig4 is the security-overhead figure, when measured.
	Fig4 *Fig4Result `json:"fig4,omitempty"`
	// Fig5 holds one per-client comparison result per measured client
	// site (the paper's Figures 5, 6 and 7).
	Fig5 []*Fig5Result `json:"fig5,omitempty"`
	// Concurrent is the closed-loop concurrency comparison (serial vs.
	// parallel throughput and tail latency), when measured.
	Concurrent *ConcurrentComparison `json:"concurrent,omitempty"`
	// Cache is the verified-content-cache experiment (cold vs. warm vs.
	// revalidate fetch latency), when measured.
	Cache *CacheResult `json:"cache,omitempty"`
	// Multiplex is the batched-element-fetch experiment (wide-object cold
	// fetch vs. single element vs. the serial ablation), when measured.
	Multiplex *MultiplexResult `json:"multiplex,omitempty"`
	// TraceOverhead is the tracing-cost ablation (cold fetch at sample
	// rate 1.0 vs. rate 0), when measured.
	TraceOverhead *TraceOverheadResult `json:"trace_overhead,omitempty"`
	// Placement is the sharded-fleet replica-selection experiment
	// (health-ranked selector vs. the location-order ablation), when
	// measured.
	Placement *PlacementResult `json:"placement,omitempty"`
	// Delta is the Merkle-delta replication experiment (incremental
	// obj.getdelta pull vs. the full-bundle ablation), when measured.
	Delta *DeltaResult `json:"delta,omitempty"`
}

// NewReport returns a Report shell for one run of cfg.
func NewReport(cfg Config, startedAt time.Time) *Report {
	cfg = cfg.withDefaults()
	return &Report{
		Schema: ReportSchema,
		Meta: Meta{
			TimeScale:    cfg.TimeScale,
			Iterations:   cfg.Iterations,
			Seed:         WorkloadSeed,
			KeyAlgorithm: cfg.KeyAlgorithm.String(),
			StartedAt:    startedAt.UTC(),
		},
	}
}

// WorkloadSeed is the base seed for the deterministic workload
// generators (per-object seeds are small offsets from it, as the Run*
// functions choose).
const WorkloadSeed = 1

// WriteJSON writes the report to w, indented.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport parses a Report written by WriteJSON and checks its schema.
func ReadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("bench: parsing report: %w", err)
	}
	if r.Schema != ReportSchema {
		return nil, fmt.Errorf("bench: unsupported report schema %q (want %q)", r.Schema, ReportSchema)
	}
	if _, err := keys.ParseAlgorithm(r.Meta.KeyAlgorithm); err != nil {
		return nil, fmt.Errorf("bench: report metadata: %w", err)
	}
	return &r, nil
}
