package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"globedoc/internal/core"
	"globedoc/internal/deploy"
	"globedoc/internal/globeid"
	"globedoc/internal/netsim"
	"globedoc/internal/server"
	"globedoc/internal/telemetry"
	"globedoc/internal/workload"
)

// TraceOverheadResult is the -experiment traceoverhead output: cold
// single-element fetch latency with tracing fully sampled (rate 1.0,
// every span exported) against the -trace-sample 0 ablation (spans
// timed but never exported), plus the export counters that prove each
// phase ran in the mode it claims.
type TraceOverheadResult struct {
	// ElementBytes is the size of the fetched element.
	ElementBytes int `json:"element_bytes"`

	// SampledCold fetches with sample rate 1.0: the full pipeline with
	// every span exported to the ring and exemplar trace IDs recorded on
	// the latency histogram.
	SampledCold MuxPhase `json:"sampled_cold"`
	// UnsampledCold is the ablation at sample rate 0: identical fetches,
	// spans still timed (core.Timing needs the durations) but dropped at
	// End() instead of exported.
	UnsampledCold MuxPhase `json:"unsampled_cold"`

	// P50Ratio is SampledCold.P50 / UnsampledCold.P50 — the acceptance
	// metric (full tracing must stay within a few percent of the
	// ablation; the simulated link delays dominate either way).
	P50Ratio float64 `json:"p50_ratio"`

	// SpansSampled counts spans exported during the sampled phase; it
	// must be large (client pipeline + server serve spans, per sample).
	SpansSampled uint64 `json:"spans_sampled"`
	// SpansUnsampled counts spans exported during the ablation; it must
	// be zero — nothing errored, so nothing may export at rate 0.
	SpansUnsampled uint64 `json:"spans_unsampled"`
	// ExemplarBuckets counts fetch-latency histogram buckets carrying an
	// exemplar trace ID after the sampled phase (>= 1 proves the
	// histogram→trace link works end to end).
	ExemplarBuckets int `json:"exemplar_buckets"`
}

// traceOverheadElementBytes keeps the element small so per-span
// bookkeeping is as large a fraction of the fetch as the testbed allows
// — the regime where tracing overhead would show first.
const traceOverheadElementBytes = 4 * workload.KB

// tracePhase is one arm of the ablation: an isolated world whose
// client traces at a fixed sample rate.
type tracePhase struct {
	world   *deploy.World
	client  *core.Client
	tel     *telemetry.Telemetry
	oid     globeid.OID
	samples []time.Duration
}

func (p *tracePhase) close() {
	if p.client != nil {
		p.client.Close()
	}
	if p.world != nil {
		p.world.Close()
	}
}

// fetchCold runs one cold fetch and optionally records its latency.
func (p *tracePhase) fetchCold(ctx context.Context, record bool) error {
	p.client.FlushBindings()
	start := now()
	if _, err := p.client.Fetch(ctx, p.oid, "image.bin"); err != nil {
		return err
	}
	if record {
		p.samples = append(p.samples, now().Sub(start))
	}
	return nil
}

func newTracePhase(cfg Config, rate float64) (*tracePhase, error) {
	clk := &benchClock{t: time.Date(2005, 4, 4, 12, 0, 0, 0, time.UTC)}
	tel := telemetry.New(nil)
	w, err := deploy.NewWorld(deploy.Options{TimeScale: cfg.TimeScale, Telemetry: tel, Clock: clk.Now})
	if err != nil {
		return nil, err
	}
	p := &tracePhase{world: w, tel: tel}
	if _, err := w.StartServer(netsim.AmsterdamPrimary, "srv-ams", nil, nil, server.Limits{}); err != nil {
		p.close()
		return nil, err
	}
	doc := workload.SingleElementDoc(traceOverheadElementBytes, WorkloadSeed)
	// Subject gives the object a CA-certified identity the client
	// trusts: nothing on the happy path records an error, so the
	// ablation phase must export exactly zero spans.
	pub, err := w.Publish(doc, deploy.PublishOptions{
		Name:         "traceoverhead.bench",
		Subject:      "GlobeDoc benchmark",
		TTL:          time.Hour,
		KeyAlgorithm: cfg.KeyAlgorithm,
		Clock:        clk.Now,
	})
	if err != nil {
		p.close()
		return nil, err
	}
	p.oid = pub.OID
	sc, err := w.NewSecureClientOpts(netsim.Paris, core.Options{Now: clk.Now, TraceSampleRate: &rate})
	if err != nil {
		p.close()
		return nil, err
	}
	p.client = sc
	return p, nil
}

// RunTraceOverhead measures the cost of distributed tracing (the
// -experiment traceoverhead entry point). It runs the same cold
// single-element secure fetch in two isolated worlds — one tracing at
// sample rate 1.0 (every span exported, exemplars recorded), one at
// rate 0 (the ablation: spans timed but dropped at End) — with the two
// arms' samples interleaved fetch by fetch, so ambient load lands on
// both equally instead of biasing whichever phase ran second. The
// per-phase export totals prove each world ran in its claimed mode.
func RunTraceOverhead(cfg Config) (*TraceOverheadResult, error) {
	cfg = cfg.withDefaults()

	sampled, err := newTracePhase(cfg, 1.0)
	if err != nil {
		return nil, fmt.Errorf("traceoverhead sampled phase: %w", err)
	}
	defer sampled.close()
	unsampled, err := newTracePhase(cfg, 0)
	if err != nil {
		return nil, fmt.Errorf("traceoverhead ablation phase: %w", err)
	}
	defer unsampled.close()

	//lint:ignore ctxfirst the benchmark harness is the top of the call tree; there is no caller context to inherit
	ctx := context.Background()

	// One discarded warm-up fetch per arm absorbs process-level lazy
	// initialization (first-connection setup, page faults) that would
	// otherwise swamp the microsecond-scale effect being measured.
	if err := sampled.fetchCold(ctx, false); err != nil {
		return nil, fmt.Errorf("traceoverhead sampled warm-up: %w", err)
	}
	if err := unsampled.fetchCold(ctx, false); err != nil {
		return nil, fmt.Errorf("traceoverhead ablation warm-up: %w", err)
	}

	for i := 0; i < cfg.Iterations; i++ {
		// Alternate which arm goes first so any cost of having just run
		// a fetch (scheduler state, cache residency) is paid evenly.
		first, second := sampled, unsampled
		if i%2 == 1 {
			first, second = unsampled, sampled
		}
		if err := first.fetchCold(ctx, true); err != nil {
			return nil, fmt.Errorf("traceoverhead fetch %d: %w", i, err)
		}
		if err := second.fetchCold(ctx, true); err != nil {
			return nil, fmt.Errorf("traceoverhead fetch %d: %w", i, err)
		}
	}

	res := &TraceOverheadResult{
		ElementBytes:   traceOverheadElementBytes,
		SampledCold:    toMuxPhase(sampled.samples),
		UnsampledCold:  toMuxPhase(unsampled.samples),
		SpansSampled:   sampled.tel.Ring.Total(),
		SpansUnsampled: unsampled.tel.Ring.Total(),
	}
	for _, b := range sampled.tel.FetchLatency.Snapshot().Buckets {
		if b.ExemplarTraceID != 0 {
			res.ExemplarBuckets++
		}
	}
	if res.UnsampledCold.P50 > 0 {
		res.P50Ratio = float64(res.SampledCold.P50) / float64(res.UnsampledCold.P50)
	}
	return res, nil
}

// Format renders the trace-overhead experiment as a human-readable
// table.
func (r *TraceOverheadResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Trace overhead ablation (%s element, client at %s, cold fetches)\n\n",
		fmtSize(r.ElementBytes), netsim.Paris)
	fmt.Fprintf(&b, "  %-22s %6s %12s %12s %12s %12s\n", "phase", "ops", "mean", "p50", "p95", "p99")
	row := func(name string, p MuxPhase) {
		fmt.Fprintf(&b, "  %-22s %6d %12s %12s %12s %12s\n", name, p.Ops,
			p.Mean.Round(time.Microsecond), p.P50.Round(time.Microsecond),
			p.P95.Round(time.Microsecond), p.P99.Round(time.Microsecond))
	}
	row("sampled (rate 1.0)", r.SampledCold)
	row("ablation (rate 0)", r.UnsampledCold)
	fmt.Fprintf(&b, "\n  p50 ratio (sampled / ablation): %.3fx\n", r.P50Ratio)
	fmt.Fprintf(&b, "  spans exported: sampled=%d ablation=%d; exemplar buckets=%d\n",
		r.SpansSampled, r.SpansUnsampled, r.ExemplarBuckets)
	return b.String()
}
