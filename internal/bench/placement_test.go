package bench_test

import (
	"strings"
	"testing"

	"globedoc/internal/bench"
)

func TestRunPlacementQuick(t *testing.T) {
	res, err := bench.RunPlacement(quickCfg())
	if err != nil {
		t.Fatalf("RunPlacement: %v", err)
	}
	if res.Servers != 12 || res.Continents != 3 || res.ReplicationFactor != 3 {
		t.Errorf("fleet shape: servers=%d continents=%d factor=%d",
			res.Servers, res.Continents, res.ReplicationFactor)
	}
	if res.Objects != 16 || res.FarObjects != 4 {
		t.Errorf("workload: objects=%d far=%d, want 16/4", res.Objects, res.FarObjects)
	}
	if res.PublishAttempts < res.Objects {
		t.Errorf("publish attempts %d < accepted objects %d", res.PublishAttempts, res.Objects)
	}
	wantOps := 16 * 2
	for _, v := range []bench.PlacementVariant{res.HealthRanked, res.Ordered} {
		if v.Cold.Ops != wantOps || v.Warm.Ops != wantOps {
			t.Errorf("%s ops: cold=%d warm=%d, want %d each", v.Selector, v.Cold.Ops, v.Warm.Ops, wantOps)
		}
		if v.Cold.Mean <= 0 || v.Warm.Mean <= 0 {
			t.Errorf("%s means: cold=%v warm=%v", v.Selector, v.Cold.Mean, v.Warm.Mean)
		}
	}
	if res.HealthRanked.Selector != "health-ranked" || res.Ordered.Selector != "ordered" {
		t.Errorf("selector names: %q / %q", res.HealthRanked.Selector, res.Ordered.Selector)
	}
	// At TimeScale 0 the latency ratios are CPU noise, so only their
	// presence is asserted here; scripts/placement_bench.sh gates the
	// real-latency run.
	if res.ColdP99Ratio <= 0 || res.WarmP99Ratio <= 0 {
		t.Errorf("ratios: cold=%v warm=%v", res.ColdP99Ratio, res.WarmP99Ratio)
	}
	if !res.AblationIdentical {
		t.Error("ordered client fetched different bytes")
	}
	out := res.Format()
	for _, want := range []string{"health-ranked cold", "ordered cold", "health-ranked warm", "p99 ratio", "ablation"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
}
