package bench

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"time"

	"globedoc/internal/deploy"
	"globedoc/internal/document"
	"globedoc/internal/globeid"
	"globedoc/internal/keys"
	"globedoc/internal/netsim"
	"globedoc/internal/server"
	"globedoc/internal/workload"
)

// DeltaResult is the -experiment delta output: bytes moved and pull
// latency for keeping a secondary replica of a wide document in sync
// when one element changes per version, via the Merkle-delta path vs.
// the full-bundle ablation.
type DeltaResult struct {
	// Elements is the document width, ElementBytes each element's size,
	// ChangedPerUpdate how many elements each new version rewrites.
	Elements         int `json:"elements"`
	ElementBytes     int `json:"element_bytes"`
	ChangedPerUpdate int `json:"changed_per_update"`

	// DeltaPull times Puller.CheckOnce over obj.getdelta; FullPull is
	// the ablation with the delta path disabled, replaying the identical
	// signed bundles.
	DeltaPull MuxPhase `json:"delta_pull"`
	FullPull  MuxPhase `json:"full_pull"`

	// BytesDeltaPerPull / BytesFullPerPull are wire bytes per pull
	// (request + reply), averaged over the run.
	BytesDeltaPerPull uint64 `json:"bytes_delta_per_pull"`
	BytesFullPerPull  uint64 `json:"bytes_full_per_pull"`
	// ByteRatio is BytesFullPerPull / BytesDeltaPerPull — the acceptance
	// metric (a one-element change must move at least 4x fewer bytes
	// than a full transfer).
	ByteRatio float64 `json:"byte_ratio"`

	// Puller counters from the delta run: every pull must have taken the
	// delta path, with no declines or fallbacks.
	DeltaPulls     uint64 `json:"delta_pulls"`
	DeltaDeclines  uint64 `json:"delta_declines"`
	DeltaFallbacks uint64 `json:"delta_fallbacks"`

	// AblationIdentical reports that the delta-synced secondary and the
	// full-pull secondary ended byte-identical: same marshalled bundle
	// from the same replayed updates.
	AblationIdentical bool `json:"ablation_identical"`
}

const (
	// deltaElements x deltaElementBytes is the replicated document:
	// wide enough that a one-element change makes the full-bundle
	// transfer grossly disproportionate.
	deltaElements     = 64
	deltaElementBytes = 4 * workload.KB
	deltaOwner        = "owner:delta.bench"
)

// deltaBundles precomputes the whole update sequence once: an initial
// 64-element document plus one signed bundle per iteration with a single
// element rewritten. Both measurement runs replay these exact bundles —
// signatures are randomized (RSA-PSS), so re-signing per run would break
// the byte-identical ablation check.
func deltaBundles(cfg Config, iterations int) (globeid.OID, []*server.Bundle, error) {
	owner, err := keys.Generate(cfg.KeyAlgorithm)
	if err != nil {
		return globeid.OID{}, nil, err
	}
	oid := globeid.FromPublicKey(owner.Public())
	doc := workload.WideDoc(deltaElements, deltaElementBytes, WorkloadSeed)
	t0 := time.Date(2005, 4, 4, 12, 0, 0, 0, time.UTC)
	r := workload.NewRand(WorkloadSeed + 1)

	bundles := make([]*server.Bundle, 0, iterations+1)
	issue := func(version uint64) error {
		elems, _ := doc.Snapshot()
		doc.Replace(elems, version)
		icert, err := document.IssueCertificate(doc, oid, owner,
			t0.Add(time.Duration(version)*time.Second), document.UniformTTL(24*time.Hour))
		if err != nil {
			return err
		}
		bundles = append(bundles, server.BundleFromDocument(oid, owner.Public(), doc, icert, nil))
		return nil
	}
	if err := issue(1); err != nil {
		return globeid.OID{}, nil, err
	}
	for i := 1; i <= iterations; i++ {
		// One element changes per version; everything else is untouched.
		name := fmt.Sprintf("el-%02d.bin", i%deltaElements)
		if err := doc.Put(document.Element{
			Name:        name,
			ContentType: "application/octet-stream",
			Data:        r.Bytes(deltaElementBytes),
		}); err != nil {
			return globeid.OID{}, nil, err
		}
		if err := issue(uint64(i + 1)); err != nil {
			return globeid.OID{}, nil, err
		}
	}
	return oid, bundles, nil
}

// runDeltaOnce replays the precomputed bundle sequence into a fresh
// primary/secondary world and times every CheckOnce on the secondary's
// puller, with the delta path on or off.
func runDeltaOnce(cfg Config, oid globeid.OID, bundles []*server.Bundle, disableDelta bool) (phase MuxPhase, bytesPerPull uint64, p *server.Puller, final []byte, err error) {
	w, err := deploy.NewWorld(deploy.Options{TimeScale: cfg.TimeScale})
	if err != nil {
		return MuxPhase{}, 0, nil, nil, err
	}
	defer w.Close()
	primary, err := w.StartServer(netsim.AmsterdamPrimary, "srv-ams", nil, nil, server.Limits{})
	if err != nil {
		return MuxPhase{}, 0, nil, nil, err
	}
	secondary, err := w.StartServer(netsim.Paris, "srv-paris", nil, nil, server.Limits{})
	if err != nil {
		return MuxPhase{}, 0, nil, nil, err
	}
	if err := primary.Install(bundles[0], deltaOwner); err != nil {
		return MuxPhase{}, 0, nil, nil, err
	}
	if err := secondary.Install(bundles[0], deltaOwner); err != nil {
		return MuxPhase{}, 0, nil, nil, err
	}
	puller := server.NewPuller(secondary, oid, deltaOwner,
		w.Addrs[netsim.AmsterdamPrimary], w.DialFrom(netsim.Paris), time.Hour)
	defer puller.Stop()
	puller.DisableDelta = disableDelta

	//lint:ignore ctxfirst the benchmark harness is the top of the call tree; there is no caller context to inherit
	ctx := context.Background()
	var samples []time.Duration
	for _, b := range bundles[1:] {
		if err := primary.Update(b, deltaOwner); err != nil {
			return MuxPhase{}, 0, nil, nil, err
		}
		start := now()
		pulled, err := puller.CheckOnce(ctx)
		if err != nil {
			return MuxPhase{}, 0, nil, nil, fmt.Errorf("delta bench pull: %w", err)
		}
		samples = append(samples, now().Sub(start))
		if !pulled {
			return MuxPhase{}, 0, nil, nil, fmt.Errorf("delta bench: secondary did not pull update %d", b.Version)
		}
	}
	pulls := uint64(len(samples))
	totalBytes := puller.BytesDelta()
	if disableDelta {
		totalBytes = puller.BytesFull()
	}
	fb, err := secondary.ExportBundle(oid)
	if err != nil {
		return MuxPhase{}, 0, nil, nil, err
	}
	return toMuxPhase(samples), totalBytes / pulls, puller, fb.Marshal(), nil
}

// RunDelta measures Merkle-delta replication (the -experiment delta
// entry point). A 64 x 4 KB document is updated once per iteration with
// a single changed element; a secondary replica pulls each update twice,
// from identical signed bundles: once over obj.getdelta (key/cert tables
// plus the one changed element) and once over the full obj.getbundle
// ablation. Reported: wire bytes per pull for each path, the byte ratio
// (acceptance gate: >= 4x), pull latency distributions, and the
// byte-identical ablation check on the resulting replica state.
func RunDelta(cfg Config) (*DeltaResult, error) {
	cfg = cfg.withDefaults()
	oid, bundles, err := deltaBundles(cfg, cfg.Iterations)
	if err != nil {
		return nil, err
	}

	res := &DeltaResult{
		Elements:         deltaElements,
		ElementBytes:     deltaElementBytes,
		ChangedPerUpdate: 1,
	}
	var deltaFinal, fullFinal []byte
	var deltaPuller *server.Puller
	res.DeltaPull, res.BytesDeltaPerPull, deltaPuller, deltaFinal, err = runDeltaOnce(cfg, oid, bundles, false)
	if err != nil {
		return nil, err
	}
	res.DeltaPulls = deltaPuller.DeltaPulls()
	res.DeltaDeclines = deltaPuller.DeltaDeclines()
	res.DeltaFallbacks = deltaPuller.DeltaFallbacks()
	res.FullPull, res.BytesFullPerPull, _, fullFinal, err = runDeltaOnce(cfg, oid, bundles, true)
	if err != nil {
		return nil, err
	}
	if res.BytesDeltaPerPull > 0 {
		res.ByteRatio = float64(res.BytesFullPerPull) / float64(res.BytesDeltaPerPull)
	}
	res.AblationIdentical = len(deltaFinal) > 0 && bytes.Equal(deltaFinal, fullFinal)
	return res, nil
}

// Format renders the delta experiment as a human-readable table.
func (r *DeltaResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Merkle-delta replication (%d x %s elements, %d changed per update, secondary at %s)\n\n",
		r.Elements, fmtSize(r.ElementBytes), r.ChangedPerUpdate, netsim.Paris)
	fmt.Fprintf(&b, "  %-12s %6s %12s %12s %12s %14s\n", "path", "pulls", "mean", "p50", "p99", "bytes/pull")
	row := func(name string, p MuxPhase, bytesPer uint64) {
		fmt.Fprintf(&b, "  %-12s %6d %12s %12s %12s %14d\n", name, p.Ops,
			p.Mean.Round(time.Microsecond), p.P50.Round(time.Microsecond),
			p.P99.Round(time.Microsecond), bytesPer)
	}
	row("delta", r.DeltaPull, r.BytesDeltaPerPull)
	row("full", r.FullPull, r.BytesFullPerPull)
	fmt.Fprintf(&b, "\n  byte ratio (full / delta): %.2fx\n", r.ByteRatio)
	fmt.Fprintf(&b, "  counters: delta_pulls=%d declines=%d fallbacks=%d\n",
		r.DeltaPulls, r.DeltaDeclines, r.DeltaFallbacks)
	fmt.Fprintf(&b, "  ablation (full-pull replica byte-identical): %v\n", r.AblationIdentical)
	return b.String()
}
