package cert_test

import (
	"errors"
	"testing"
	"time"

	"globedoc/internal/cert"
	"globedoc/internal/globeid"
	"globedoc/internal/keys"
	"globedoc/internal/keys/keytest"
)

func newTestCA(t *testing.T, name string) *cert.CA {
	t.Helper()
	return &cert.CA{Name: name, Key: keytest.Ed()}
}

func TestIssueAndVerifyNameCertificate(t *testing.T) {
	ca := newTestCA(t, "Root CA")
	oid := globeid.FromPublicKey(keytest.RSA().Public())
	nc, err := ca.IssueNameCertificate(oid, "Vrije Universiteit", t0, t1)
	if err != nil {
		t.Fatalf("IssueNameCertificate: %v", err)
	}
	ts := cert.NewTrustStore()
	ts.TrustCA("Root CA", ca.Key.Public())
	subject, err := ts.Verify(nc, oid, t0.Add(time.Minute))
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if subject != "Vrije Universiteit" {
		t.Errorf("subject = %q", subject)
	}
}

func TestVerifyRejectsUntrustedCA(t *testing.T) {
	ca := newTestCA(t, "Shady CA")
	oid := globeid.FromPublicKey(keytest.RSA().Public())
	nc, err := ca.IssueNameCertificate(oid, "Fake Bank", t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	ts := cert.NewTrustStore() // empty: user trusts nobody
	if _, err := ts.Verify(nc, oid, t0); !errors.Is(err, cert.ErrUntrustedCA) {
		t.Fatalf("err = %v, want ErrUntrustedCA", err)
	}
}

func TestVerifyRejectsImpersonatedCA(t *testing.T) {
	// Mallory signs a certificate claiming to be "Root CA".
	mallory := newTestCA(t, "Root CA")
	real := newTestCA(t, "Root CA")
	oid := globeid.FromPublicKey(keytest.RSA().Public())
	nc, err := mallory.IssueNameCertificate(oid, "Victim Corp", t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	ts := cert.NewTrustStore()
	ts.TrustCA("Root CA", real.Key.Public()) // user trusts the real key
	if _, err := ts.Verify(nc, oid, t0); !errors.Is(err, cert.ErrNameCertInvalid) {
		t.Fatalf("err = %v, want ErrNameCertInvalid", err)
	}
}

func TestVerifyRejectsWrongObject(t *testing.T) {
	ca := newTestCA(t, "Root CA")
	oid := globeid.FromPublicKey(keytest.RSA().Public())
	otherOID := globeid.FromPublicKey(keytest.Ed().Public())
	nc, err := ca.IssueNameCertificate(oid, "Subject", t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	ts := cert.NewTrustStore()
	ts.TrustCA("Root CA", ca.Key.Public())
	if _, err := ts.Verify(nc, otherOID, t0); !errors.Is(err, cert.ErrNameCertInvalid) {
		t.Fatalf("err = %v, want ErrNameCertInvalid", err)
	}
}

func TestVerifyRejectsExpired(t *testing.T) {
	ca := newTestCA(t, "Root CA")
	oid := globeid.FromPublicKey(keytest.RSA().Public())
	nc, err := ca.IssueNameCertificate(oid, "Subject", t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	ts := cert.NewTrustStore()
	ts.TrustCA("Root CA", ca.Key.Public())
	if _, err := ts.Verify(nc, oid, t1.Add(time.Hour)); !errors.Is(err, cert.ErrNameCertInvalid) {
		t.Fatalf("err = %v, want ErrNameCertInvalid (expired)", err)
	}
}

func TestFirstTrustedPicksFirstMatch(t *testing.T) {
	caA := newTestCA(t, "CA-A")
	caB := newTestCA(t, "CA-B")
	oid := globeid.FromPublicKey(keytest.RSA().Public())
	ncA, _ := caA.IssueNameCertificate(oid, "Subject via A", t0, t1)
	ncB, _ := caB.IssueNameCertificate(oid, "Subject via B", t0, t1)

	ts := cert.NewTrustStore()
	ts.TrustCA("CA-B", caB.Key.Public()) // user only trusts B
	subject, err := ts.FirstTrusted([]*cert.NameCertificate{ncA, ncB}, oid, t0.Add(time.Minute))
	if err != nil {
		t.Fatalf("FirstTrusted: %v", err)
	}
	if subject != "Subject via B" {
		t.Errorf("subject = %q", subject)
	}
}

func TestFirstTrustedNoneMatch(t *testing.T) {
	ca := newTestCA(t, "CA")
	oid := globeid.FromPublicKey(keytest.RSA().Public())
	nc, _ := ca.IssueNameCertificate(oid, "Subject", t0, t1)
	ts := cert.NewTrustStore()
	if _, err := ts.FirstTrusted([]*cert.NameCertificate{nc}, oid, t0); err == nil {
		t.Fatal("FirstTrusted succeeded with empty trust store")
	}
	if _, err := ts.FirstTrusted(nil, oid, t0); err == nil {
		t.Fatal("FirstTrusted succeeded with no certificates")
	}
}

func TestNameCertificateMarshalRoundTrip(t *testing.T) {
	ca := newTestCA(t, "Root CA")
	oid := globeid.FromPublicKey(keytest.RSA().Public())
	nc, err := ca.IssueNameCertificate(oid, "Vrije Universiteit", t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cert.UnmarshalNameCertificate(nc.Marshal())
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	ts := cert.NewTrustStore()
	ts.TrustCA("Root CA", ca.Key.Public())
	subject, err := ts.Verify(got, oid, t0.Add(time.Minute))
	if err != nil {
		t.Fatalf("round-tripped certificate rejected: %v", err)
	}
	if subject != "Vrije Universiteit" {
		t.Errorf("subject = %q", subject)
	}
}

func TestTrustStoreManagement(t *testing.T) {
	ts := cert.NewTrustStore()
	ts.TrustCA("B", keytest.Ed().Public())
	ts.TrustCA("A", keytest.Ed().Public())
	got := ts.TrustedCAs()
	if len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Errorf("TrustedCAs = %v", got)
	}
	ts.RevokeCA("A")
	if got := ts.TrustedCAs(); len(got) != 1 || got[0] != "B" {
		t.Errorf("after revoke: %v", got)
	}
}

func TestNewCA(t *testing.T) {
	ca, err := cert.NewCA("Fresh CA", keys.Ed25519)
	if err != nil {
		t.Fatalf("NewCA: %v", err)
	}
	if ca.Name != "Fresh CA" || ca.Key == nil {
		t.Fatalf("NewCA returned %+v", ca)
	}
}
