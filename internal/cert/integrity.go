// Package cert implements the two certificate types of the GlobeDoc
// security architecture.
//
// An integrity certificate (paper §3.2.2, Fig. 2) is a table, signed with
// the object's private key, with one entry per page element: the element
// name, the SHA-1 hash of its content, and a validity interval. Every
// replica — trusted or not — must store the certificate alongside the
// elements; clients use it to check authenticity, freshness and
// consistency of anything they retrieve.
//
// A name certificate (§3.1.2) is issued by a certificate authority the
// user trusts and binds the object's self-certifying OID to the
// real-world entity behind the object ("Certified as: ...").
package cert

import (
	"crypto/subtle"
	"errors"
	"fmt"
	"sort"
	"time"

	"globedoc/internal/enc"
	"globedoc/internal/globeid"
	"globedoc/internal/keys"
)

// Errors reported by certificate verification. The three security
// properties of paper §3.2.1 map onto the first three errors.
var (
	// ErrAuthenticity means the content or signature is not genuine:
	// the certificate signature does not verify under the object key,
	// or an element's hash does not match its certificate entry.
	ErrAuthenticity = errors.New("cert: authenticity check failed")
	// ErrFreshness means the content is genuine but its validity
	// interval has expired (or not yet begun).
	ErrFreshness = errors.New("cert: freshness check failed")
	// ErrConsistency means the replica returned a different (possibly
	// genuine and fresh) element than the one requested.
	ErrConsistency = errors.New("cert: consistency check failed")
	// ErrUnknownElement means the certificate has no entry for the
	// requested element name.
	ErrUnknownElement = errors.New("cert: element not listed in integrity certificate")
	// ErrBadEncoding is returned for malformed certificate bytes.
	ErrBadEncoding = errors.New("cert: malformed encoding")
)

// ElementEntry is one row of the integrity certificate's table: a page
// element name, the SHA-1 hash of the element content, and the interval
// during which the entry may be accepted as fresh.
type ElementEntry struct {
	Name      string
	Hash      [globeid.Size]byte
	NotBefore time.Time
	Expires   time.Time
}

// IntegrityCertificate is a signed table of element entries for one
// GlobeDoc object. Entries are kept sorted by name so that the canonical
// encoding — and therefore the signature — is deterministic.
type IntegrityCertificate struct {
	ObjectID globeid.OID
	Version  uint64 // monotonically increasing per re-issue
	Issued   time.Time
	Entries  []ElementEntry
	Sig      []byte
}

// signedBytes returns the canonical encoding of everything covered by the
// signature (all fields except Sig itself).
func (c *IntegrityCertificate) signedBytes() []byte {
	w := enc.NewWriter(64 + len(c.Entries)*64)
	w.Raw(c.ObjectID[:])
	w.Uvarint(c.Version)
	w.Time(c.Issued)
	w.Uvarint(uint64(len(c.Entries)))
	for _, e := range c.Entries {
		w.String(e.Name)
		w.Raw(e.Hash[:])
		w.Time(e.NotBefore)
		w.Time(e.Expires)
	}
	return w.Bytes()
}

// Sign canonicalizes the certificate (sorting entries by name), then signs
// it with the object's key pair. Duplicate element names are rejected.
func (c *IntegrityCertificate) Sign(owner *keys.KeyPair) error {
	sort.Slice(c.Entries, func(i, j int) bool { return c.Entries[i].Name < c.Entries[j].Name })
	for i := 1; i < len(c.Entries); i++ {
		if c.Entries[i].Name == c.Entries[i-1].Name {
			return fmt.Errorf("cert: duplicate element entry %q", c.Entries[i].Name)
		}
	}
	sig, err := owner.Sign(c.signedBytes())
	if err != nil {
		return fmt.Errorf("cert: sign integrity certificate: %w", err)
	}
	c.Sig = sig
	return nil
}

// VerifySignature checks that the certificate was signed by the holder of
// objectKey's private half and that it names the expected object. It does
// not check freshness of any entry; that is per-element (see VerifyElement).
func (c *IntegrityCertificate) VerifySignature(oid globeid.OID, objectKey keys.PublicKey) error {
	if c.ObjectID != oid {
		return fmt.Errorf("%w: certificate is for object %s, not %s",
			ErrConsistency, c.ObjectID.Short(), oid.Short())
	}
	if err := objectKey.Verify(c.signedBytes(), c.Sig); err != nil {
		return fmt.Errorf("%w: integrity certificate signature invalid", ErrAuthenticity)
	}
	return nil
}

// VerifySignatureUsing is VerifySignature with the raw signature check
// delegated to verify, which receives the object key, the certificate's
// canonical signed bytes and the signature. It exists so a caller can
// route the check through a memoizing verifier (internal/vcache) without
// this package depending on it; any verify error is classified as
// ErrAuthenticity exactly as in VerifySignature.
func (c *IntegrityCertificate) VerifySignatureUsing(oid globeid.OID, objectKey keys.PublicKey, verify func(keys.PublicKey, []byte, []byte) error) error {
	if c.ObjectID != oid {
		return fmt.Errorf("%w: certificate is for object %s, not %s",
			ErrConsistency, c.ObjectID.Short(), oid.Short())
	}
	if err := verify(objectKey, c.signedBytes(), c.Sig); err != nil {
		return fmt.Errorf("%w: integrity certificate signature invalid", ErrAuthenticity)
	}
	return nil
}

// MaxExpiry returns the latest entry expiry in the certificate — the end
// of the validity window after which no entry can pass CheckFreshness,
// and therefore the natural bound on how long a memoized verdict about
// this certificate is worth keeping. Zero if the table is empty.
func (c *IntegrityCertificate) MaxExpiry() time.Time {
	var max time.Time
	for _, e := range c.Entries {
		if e.Expires.After(max) {
			max = e.Expires
		}
	}
	return max
}

// Lookup returns the entry for the named element.
func (c *IntegrityCertificate) Lookup(name string) (ElementEntry, error) {
	i := sort.Search(len(c.Entries), func(i int) bool { return c.Entries[i].Name >= name })
	if i < len(c.Entries) && c.Entries[i].Name == name {
		return c.Entries[i], nil
	}
	return ElementEntry{}, fmt.Errorf("%w: %q", ErrUnknownElement, name)
}

// VerifyElement performs the paper's three client-side checks (§3.2.2) on
// content returned by a replica for the element named requested:
//
//  1. consistency — the certificate entry consulted is the entry for the
//     element the client asked for;
//  2. authenticity — SHA-1(content) equals the hash in that entry;
//  3. freshness — now falls inside the entry's validity interval.
//
// The certificate's own signature must have been verified beforehand with
// VerifySignature. The three checks are also exported individually
// (CheckConsistency / CheckAuthenticity / CheckFreshness) so the secure
// pipeline can time each as its own tracing span; this method is their
// composition and the single source of truth for their order.
func (c *IntegrityCertificate) VerifyElement(requested string, content []byte, now time.Time) error {
	entry, err := c.CheckConsistency(requested)
	if err != nil {
		return err
	}
	if err := entry.CheckAuthenticity(content); err != nil {
		return err
	}
	return entry.CheckFreshness(now)
}

// CheckConsistency performs the consistency half of VerifyElement: it
// returns the certificate entry for the requested element, failing if the
// certificate has no such entry or the entry names a different element.
func (c *IntegrityCertificate) CheckConsistency(requested string) (ElementEntry, error) {
	entry, err := c.Lookup(requested)
	if err != nil {
		return ElementEntry{}, err
	}
	// Lookup already keyed on the requested name; entry.Name is re-checked
	// defensively in case the certificate was mutated.
	if entry.Name != requested {
		return ElementEntry{}, fmt.Errorf("%w: certificate entry %q does not match request %q",
			ErrConsistency, entry.Name, requested)
	}
	return entry, nil
}

// CheckAuthenticity verifies that SHA-1(content) equals the hash signed
// into this entry.
func (e ElementEntry) CheckAuthenticity(content []byte) error {
	h := globeid.HashElement(content)
	if subtle.ConstantTimeCompare(h[:], e.Hash[:]) != 1 {
		return fmt.Errorf("%w: element %q content hash mismatch", ErrAuthenticity, e.Name)
	}
	return nil
}

// CheckFreshness verifies that now falls inside this entry's validity
// interval.
func (e ElementEntry) CheckFreshness(now time.Time) error {
	if !e.NotBefore.IsZero() && now.Before(e.NotBefore) {
		return fmt.Errorf("%w: element %q not valid before %s", ErrFreshness, e.Name, e.NotBefore)
	}
	if now.After(e.Expires) {
		return fmt.Errorf("%w: element %q expired at %s", ErrFreshness, e.Name, e.Expires)
	}
	return nil
}

// Marshal returns the canonical binary encoding of the certificate,
// including its signature.
func (c *IntegrityCertificate) Marshal() []byte {
	w := enc.NewWriter(128 + len(c.Entries)*64)
	w.BytesPrefixed(c.signedBytes())
	w.BytesPrefixed(c.Sig)
	return w.Bytes()
}

// UnmarshalIntegrityCertificate parses an encoding from Marshal.
func UnmarshalIntegrityCertificate(data []byte) (*IntegrityCertificate, error) {
	outer := enc.NewReader(data)
	body := outer.BytesPrefixed()
	sig := outer.BytesPrefixed()
	if err := outer.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEncoding, err)
	}
	r := enc.NewReader(body)
	var c IntegrityCertificate
	copy(c.ObjectID[:], r.Raw(globeid.Size))
	c.Version = r.Uvarint()
	c.Issued = r.Time()
	n := r.Uvarint()
	if n > 1<<20 {
		return nil, fmt.Errorf("%w: implausible entry count %d", ErrBadEncoding, n)
	}
	c.Entries = make([]ElementEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		var e ElementEntry
		e.Name = r.String()
		copy(e.Hash[:], r.Raw(globeid.Size))
		e.NotBefore = r.Time()
		e.Expires = r.Time()
		c.Entries = append(c.Entries, e)
	}
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEncoding, err)
	}
	c.Sig = append([]byte(nil), sig...)
	return &c, nil
}
