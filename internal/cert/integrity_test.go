package cert_test

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
	"time"

	"globedoc/internal/cert"
	"globedoc/internal/globeid"
	"globedoc/internal/keys"
	"globedoc/internal/keys/keytest"
)

var (
	t0 = time.Date(2005, 4, 4, 12, 0, 0, 0, time.UTC)
	t1 = t0.Add(time.Hour)
)

func newCert(t *testing.T, owner *keys.KeyPair, elems map[string][]byte) (*cert.IntegrityCertificate, globeid.OID) {
	t.Helper()
	oid := globeid.FromPublicKey(owner.Public())
	c := &cert.IntegrityCertificate{ObjectID: oid, Version: 1, Issued: t0}
	for name, data := range elems {
		c.Entries = append(c.Entries, cert.ElementEntry{
			Name:      name,
			Hash:      globeid.HashElement(data),
			NotBefore: t0,
			Expires:   t1,
		})
	}
	if err := c.Sign(owner); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	return c, oid
}

func TestSignAndVerifySignature(t *testing.T) {
	owner := keytest.RSA()
	c, oid := newCert(t, owner, map[string][]byte{"index.html": []byte("<html>")})
	if err := c.VerifySignature(oid, owner.Public()); err != nil {
		t.Fatalf("VerifySignature: %v", err)
	}
}

func TestVerifySignatureRejectsWrongKey(t *testing.T) {
	owner := keytest.RSA()
	other := keytest.Ed()
	c, oid := newCert(t, owner, map[string][]byte{"a": []byte("a")})
	err := c.VerifySignature(oid, other.Public())
	if !errors.Is(err, cert.ErrAuthenticity) {
		t.Fatalf("err = %v, want ErrAuthenticity", err)
	}
}

func TestVerifySignatureRejectsWrongObject(t *testing.T) {
	owner := keytest.RSA()
	c, _ := newCert(t, owner, map[string][]byte{"a": []byte("a")})
	otherOID := globeid.FromPublicKey(keytest.Ed().Public())
	err := c.VerifySignature(otherOID, owner.Public())
	if !errors.Is(err, cert.ErrConsistency) {
		t.Fatalf("err = %v, want ErrConsistency", err)
	}
}

func TestVerifySignatureRejectsMutatedEntry(t *testing.T) {
	owner := keytest.RSA()
	c, oid := newCert(t, owner, map[string][]byte{"a": []byte("genuine")})
	// A malicious replica rewrites the hash to match its fake content.
	c.Entries[0].Hash = globeid.HashElement([]byte("forged"))
	err := c.VerifySignature(oid, owner.Public())
	if !errors.Is(err, cert.ErrAuthenticity) {
		t.Fatalf("err = %v, want ErrAuthenticity", err)
	}
}

func TestVerifyElementAuthenticFreshConsistent(t *testing.T) {
	owner := keytest.RSA()
	content := []byte("hello world")
	c, _ := newCert(t, owner, map[string][]byte{"index.html": content})
	if err := c.VerifyElement("index.html", content, t0.Add(time.Minute)); err != nil {
		t.Fatalf("VerifyElement: %v", err)
	}
}

func TestVerifyElementRejectsTamperedContent(t *testing.T) {
	owner := keytest.RSA()
	c, _ := newCert(t, owner, map[string][]byte{"index.html": []byte("genuine")})
	err := c.VerifyElement("index.html", []byte("tampered"), t0.Add(time.Minute))
	if !errors.Is(err, cert.ErrAuthenticity) {
		t.Fatalf("err = %v, want ErrAuthenticity", err)
	}
}

func TestVerifyElementRejectsExpired(t *testing.T) {
	owner := keytest.RSA()
	content := []byte("content")
	c, _ := newCert(t, owner, map[string][]byte{"index.html": content})
	err := c.VerifyElement("index.html", content, t1.Add(time.Second))
	if !errors.Is(err, cert.ErrFreshness) {
		t.Fatalf("err = %v, want ErrFreshness", err)
	}
}

func TestVerifyElementRejectsNotYetValid(t *testing.T) {
	owner := keytest.RSA()
	content := []byte("content")
	c, _ := newCert(t, owner, map[string][]byte{"index.html": content})
	err := c.VerifyElement("index.html", content, t0.Add(-time.Second))
	if !errors.Is(err, cert.ErrFreshness) {
		t.Fatalf("err = %v, want ErrFreshness", err)
	}
}

func TestVerifyElementRejectsSubstitution(t *testing.T) {
	// A malicious replica answers a request for "index.html" with the
	// (genuine, fresh) bytes of "other.html". The hash check must fail
	// because the client consults the entry for the *requested* name.
	owner := keytest.RSA()
	index := []byte("the index page")
	other := []byte("a different page")
	c, _ := newCert(t, owner, map[string][]byte{"index.html": index, "other.html": other})
	err := c.VerifyElement("index.html", other, t0.Add(time.Minute))
	if !errors.Is(err, cert.ErrAuthenticity) {
		t.Fatalf("err = %v, want ErrAuthenticity (substitution)", err)
	}
}

func TestVerifyElementUnknownName(t *testing.T) {
	owner := keytest.RSA()
	c, _ := newCert(t, owner, map[string][]byte{"a": []byte("a")})
	err := c.VerifyElement("missing.html", []byte("x"), t0)
	if !errors.Is(err, cert.ErrUnknownElement) {
		t.Fatalf("err = %v, want ErrUnknownElement", err)
	}
}

func TestPerElementExpiry(t *testing.T) {
	// Different elements can carry different validity intervals — the
	// capability the paper highlights over r-oSFS's single global one.
	owner := keytest.RSA()
	oid := globeid.FromPublicKey(owner.Public())
	short := []byte("volatile")
	long := []byte("stable")
	c := &cert.IntegrityCertificate{ObjectID: oid, Version: 1, Issued: t0}
	c.Entries = []cert.ElementEntry{
		{Name: "volatile.html", Hash: globeid.HashElement(short), NotBefore: t0, Expires: t0.Add(time.Minute)},
		{Name: "stable.png", Hash: globeid.HashElement(long), NotBefore: t0, Expires: t0.Add(24 * time.Hour)},
	}
	if err := c.Sign(owner); err != nil {
		t.Fatalf("Sign: %v", err)
	}
	at := t0.Add(10 * time.Minute)
	if err := c.VerifyElement("volatile.html", short, at); !errors.Is(err, cert.ErrFreshness) {
		t.Errorf("volatile at +10m: err = %v, want ErrFreshness", err)
	}
	if err := c.VerifyElement("stable.png", long, at); err != nil {
		t.Errorf("stable at +10m: %v", err)
	}
}

func TestSignRejectsDuplicateNames(t *testing.T) {
	owner := keytest.RSA()
	oid := globeid.FromPublicKey(owner.Public())
	c := &cert.IntegrityCertificate{ObjectID: oid, Issued: t0}
	c.Entries = []cert.ElementEntry{
		{Name: "a", Expires: t1},
		{Name: "a", Expires: t1},
	}
	if err := c.Sign(owner); err == nil {
		t.Fatal("Sign accepted duplicate element names")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	owner := keytest.RSA()
	c, oid := newCert(t, owner, map[string][]byte{
		"index.html": []byte("index"),
		"logo.png":   []byte("logo"),
	})
	data := c.Marshal()
	got, err := cert.UnmarshalIntegrityCertificate(data)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if err := got.VerifySignature(oid, owner.Public()); err != nil {
		t.Fatalf("round-tripped certificate does not verify: %v", err)
	}
	if !bytes.Equal(got.Marshal(), data) {
		t.Fatal("re-marshalled encoding differs")
	}
	if len(got.Entries) != 2 || got.Entries[0].Name != "index.html" {
		t.Fatalf("entries corrupted: %+v", got.Entries)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{nil, {0}, {1, 2, 3}, bytes.Repeat([]byte{0xff}, 64)} {
		if _, err := cert.UnmarshalIntegrityCertificate(data); err == nil {
			t.Errorf("Unmarshal(%v) succeeded", data)
		}
	}
}

func TestQuickBitFlippedCertificateRejected(t *testing.T) {
	owner := keytest.Ed() // fast signatures for the property test
	c, oid := newCert(t, owner, map[string][]byte{"index.html": []byte("content")})
	data := c.Marshal()
	f := func(pos uint, bit uint) bool {
		mutated := append([]byte(nil), data...)
		mutated[pos%uint(len(mutated))] ^= 1 << (bit % 8)
		if bytes.Equal(mutated, data) {
			return true
		}
		got, err := cert.UnmarshalIntegrityCertificate(mutated)
		if err != nil {
			return true // malformed: rejected at decode
		}
		return got.VerifySignature(oid, owner.Public()) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRandomContentNeverVerifies(t *testing.T) {
	owner := keytest.Ed()
	genuine := []byte("the one true content")
	c, _ := newCert(t, owner, map[string][]byte{"e": genuine})
	f := func(fake []byte) bool {
		if bytes.Equal(fake, genuine) {
			return true
		}
		return c.VerifyElement("e", fake, t0.Add(time.Minute)) != nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVerifySignatureUsingDelegates(t *testing.T) {
	owner := keytest.RSA()
	c, oid := newCert(t, owner, map[string][]byte{"a": []byte("a")})

	var calls int
	record := func(pk keys.PublicKey, message, sig []byte) error {
		calls++
		return pk.Verify(message, sig)
	}
	if err := c.VerifySignatureUsing(oid, owner.Public(), record); err != nil {
		t.Fatalf("VerifySignatureUsing: %v", err)
	}
	if calls != 1 {
		t.Fatalf("verify func ran %d times, want 1", calls)
	}

	// A verify failure is classified as ErrAuthenticity, like VerifySignature.
	fail := func(keys.PublicKey, []byte, []byte) error { return keys.ErrBadSignature }
	if err := c.VerifySignatureUsing(oid, owner.Public(), fail); !errors.Is(err, cert.ErrAuthenticity) {
		t.Fatalf("err = %v, want ErrAuthenticity", err)
	}

	// The consistency check still runs before any delegation.
	otherOID := globeid.FromPublicKey(keytest.Ed().Public())
	calls = 0
	if err := c.VerifySignatureUsing(otherOID, owner.Public(), record); !errors.Is(err, cert.ErrConsistency) {
		t.Fatalf("err = %v, want ErrConsistency", err)
	}
	if calls != 0 {
		t.Fatal("verify func ran despite consistency failure")
	}
}

func TestMaxExpiry(t *testing.T) {
	owner := keytest.RSA()
	oid := globeid.FromPublicKey(owner.Public())
	c := &cert.IntegrityCertificate{ObjectID: oid, Version: 1, Issued: t0}
	if !c.MaxExpiry().IsZero() {
		t.Fatal("empty certificate should have zero MaxExpiry")
	}
	c.Entries = []cert.ElementEntry{
		{Name: "a", Expires: t0.Add(time.Minute)},
		{Name: "b", Expires: t1},
		{Name: "c", Expires: t0.Add(30 * time.Minute)},
	}
	if got := c.MaxExpiry(); !got.Equal(t1) {
		t.Fatalf("MaxExpiry = %v, want %v", got, t1)
	}
}
