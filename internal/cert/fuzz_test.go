package cert_test

import (
	"bytes"
	"testing"
	"time"

	"globedoc/internal/cert"
	"globedoc/internal/globeid"
	"globedoc/internal/keys/keytest"
)

// FuzzUnmarshalIntegrityCertificate checks the decoder never panics on
// arbitrary bytes and that anything it accepts re-marshals to the same
// encoding (canonical form).
func FuzzUnmarshalIntegrityCertificate(f *testing.F) {
	owner := keytest.Ed()
	oid := globeid.FromPublicKey(owner.Public())
	c := &cert.IntegrityCertificate{ObjectID: oid, Version: 3, Issued: time.Unix(1e9, 0)}
	c.Entries = []cert.ElementEntry{{
		Name: "index.html", Hash: globeid.HashElement([]byte("x")),
		NotBefore: time.Unix(1e9, 0), Expires: time.Unix(2e9, 0),
	}}
	if err := c.Sign(owner); err != nil {
		f.Fatal(err)
	}
	f.Add(c.Marshal())
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := cert.UnmarshalIntegrityCertificate(data)
		if err != nil {
			return
		}
		if !bytes.Equal(got.Marshal(), data) {
			t.Fatalf("accepted non-canonical encoding")
		}
	})
}

// FuzzUnmarshalNameCertificate mirrors the above for name certificates.
func FuzzUnmarshalNameCertificate(f *testing.F) {
	ca := &cert.CA{Name: "CA", Key: keytest.Ed()}
	oid := globeid.FromPublicKey(keytest.Ed().Public())
	nc, err := ca.IssueNameCertificate(oid, "Subject", time.Unix(1e9, 0), time.Unix(2e9, 0))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(nc.Marshal())
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 40))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := cert.UnmarshalNameCertificate(data)
		if err != nil {
			return
		}
		if !bytes.Equal(got.Marshal(), data) {
			t.Fatalf("accepted non-canonical encoding")
		}
	})
}
