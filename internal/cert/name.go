package cert

import (
	"errors"
	"fmt"
	"time"

	"globedoc/internal/enc"
	"globedoc/internal/globeid"
	"globedoc/internal/keys"
)

// Errors reported by name-certificate verification.
var (
	// ErrUntrustedCA means the certificate's issuer is not in the
	// user's trusted-CA keystore.
	ErrUntrustedCA = errors.New("cert: issuing CA not trusted by user")
	// ErrNameCertInvalid means the certificate signature or contents
	// failed verification.
	ErrNameCertInvalid = errors.New("cert: name certificate invalid")
)

// NameCertificate binds a GlobeDoc object's self-certifying OID to the
// real-world entity in charge of the object, vouched for by a certificate
// authority (paper §3.1.2). The proxy displays Subject to the user in a
// "Certified as:" window when the issuing CA is in the user's trust list.
type NameCertificate struct {
	ObjectID  globeid.OID
	Subject   string // real-world entity, e.g. "Vrije Universiteit Amsterdam"
	Issuer    string // CA name, e.g. "ExampleRoot CA"
	NotBefore time.Time
	Expires   time.Time
	Sig       []byte
}

func (nc *NameCertificate) signedBytes() []byte {
	w := enc.NewWriter(128)
	w.Raw(nc.ObjectID[:])
	w.String(nc.Subject)
	w.String(nc.Issuer)
	w.Time(nc.NotBefore)
	w.Time(nc.Expires)
	return w.Bytes()
}

// Marshal returns the canonical binary encoding, including the signature.
func (nc *NameCertificate) Marshal() []byte {
	w := enc.NewWriter(256)
	w.BytesPrefixed(nc.signedBytes())
	w.BytesPrefixed(nc.Sig)
	return w.Bytes()
}

// UnmarshalNameCertificate parses an encoding from Marshal.
func UnmarshalNameCertificate(data []byte) (*NameCertificate, error) {
	outer := enc.NewReader(data)
	body := outer.BytesPrefixed()
	sig := outer.BytesPrefixed()
	if err := outer.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEncoding, err)
	}
	r := enc.NewReader(body)
	var nc NameCertificate
	copy(nc.ObjectID[:], r.Raw(globeid.Size))
	nc.Subject = r.String()
	nc.Issuer = r.String()
	nc.NotBefore = r.Time()
	nc.Expires = r.Time()
	if err := r.Finish(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadEncoding, err)
	}
	nc.Sig = append([]byte(nil), sig...)
	return &nc, nil
}

// CA is a certificate authority: a name and a signing key pair. The
// GlobeDoc design deliberately keeps CAs out of the critical integrity
// path — they only vouch for real-world identity, never for content.
type CA struct {
	Name string
	Key  *keys.KeyPair
}

// NewCA creates a CA with a fresh key pair of the given algorithm.
func NewCA(name string, alg keys.Algorithm) (*CA, error) {
	kp, err := keys.Generate(alg)
	if err != nil {
		return nil, err
	}
	return &CA{Name: name, Key: kp}, nil
}

// IssueNameCertificate signs a binding between oid and subject, valid for
// the given interval.
func (ca *CA) IssueNameCertificate(oid globeid.OID, subject string, notBefore, expires time.Time) (*NameCertificate, error) {
	nc := &NameCertificate{
		ObjectID:  oid,
		Subject:   subject,
		Issuer:    ca.Name,
		NotBefore: notBefore,
		Expires:   expires,
	}
	sig, err := ca.Key.Sign(nc.signedBytes())
	if err != nil {
		return nil, fmt.Errorf("cert: CA %q signing: %w", ca.Name, err)
	}
	nc.Sig = sig
	return nc, nil
}

// TrustStore is the set of CAs a user trusts, keyed by CA name. It wraps
// a keystore and implements the user-controlled trust decision of §3.1.2:
// the user, not the system, decides which CAs may vouch for identities.
type TrustStore struct {
	cas *keys.Keystore
}

// NewTrustStore returns an empty trust store.
func NewTrustStore() *TrustStore {
	return &TrustStore{cas: keys.NewKeystore()}
}

// TrustCA adds a CA's public key under its name.
func (ts *TrustStore) TrustCA(name string, pk keys.PublicKey) {
	ts.cas.Add(name, pk)
}

// RevokeCA removes a CA from the trust list.
func (ts *TrustStore) RevokeCA(name string) {
	ts.cas.Remove(name)
}

// TrustedCAs returns the names of all trusted CAs, sorted.
func (ts *TrustStore) TrustedCAs() []string { return ts.cas.Names() }

// Verify checks a name certificate for object oid at time now: the issuer
// must be a trusted CA, the signature must verify under that CA's key,
// the certificate must name oid, and now must be inside the validity
// interval. On success it returns the certified subject name.
func (ts *TrustStore) Verify(nc *NameCertificate, oid globeid.OID, now time.Time) (string, error) {
	caKey, ok := ts.cas.Get(nc.Issuer)
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUntrustedCA, nc.Issuer)
	}
	if nc.ObjectID != oid {
		return "", fmt.Errorf("%w: certificate is for object %s, not %s",
			ErrNameCertInvalid, nc.ObjectID.Short(), oid.Short())
	}
	if err := caKey.Verify(nc.signedBytes(), nc.Sig); err != nil {
		return "", fmt.Errorf("%w: bad signature from CA %q", ErrNameCertInvalid, nc.Issuer)
	}
	if !nc.NotBefore.IsZero() && now.Before(nc.NotBefore) {
		return "", fmt.Errorf("%w: not valid before %s", ErrNameCertInvalid, nc.NotBefore)
	}
	if now.After(nc.Expires) {
		return "", fmt.Errorf("%w: expired at %s", ErrNameCertInvalid, nc.Expires)
	}
	return nc.Subject, nil
}

// FirstTrusted scans certificates in order and returns the subject of the
// first one that verifies against the trust store, mirroring the proxy
// behaviour in §3.1.2 ("for the first match found, the proxy displays the
// naming information"). It returns ErrUntrustedCA if none verify.
func (ts *TrustStore) FirstTrusted(certs []*NameCertificate, oid globeid.OID, now time.Time) (string, error) {
	var lastErr error = ErrUntrustedCA
	for _, nc := range certs {
		subject, err := ts.Verify(nc, oid, now)
		if err == nil {
			return subject, nil
		}
		lastErr = err
	}
	return "", fmt.Errorf("cert: no acceptable identity certificate: %w", lastErr)
}
