package cert_test

import (
	"fmt"
	"time"

	"globedoc/internal/cert"
	"globedoc/internal/globeid"
	"globedoc/internal/keys"
)

// ExampleIntegrityCertificate shows the owner-side signing flow and the
// client-side verification flow of paper §3.2.2.
func ExampleIntegrityCertificate() {
	// The owner creates the object's key pair; its hash IS the OID.
	owner, _ := keys.Generate(keys.Ed25519)
	oid := globeid.FromPublicKey(owner.Public())

	// Sign a certificate covering one page element.
	content := []byte("<html>hello</html>")
	issued := time.Date(2005, 4, 4, 12, 0, 0, 0, time.UTC)
	c := &cert.IntegrityCertificate{ObjectID: oid, Version: 1, Issued: issued}
	c.Entries = []cert.ElementEntry{{
		Name:      "index.html",
		Hash:      globeid.HashElement(content),
		NotBefore: issued,
		Expires:   issued.Add(time.Hour),
	}}
	if err := c.Sign(owner); err != nil {
		panic(err)
	}

	// A client holding only the OID verifies everything an untrusted
	// replica returns.
	pubKey := owner.Public() // as fetched from the replica
	fmt.Println("key self-certifies:", oid.Verify(pubKey) == nil)
	fmt.Println("certificate genuine:", c.VerifySignature(oid, pubKey) == nil)
	now := issued.Add(10 * time.Minute)
	fmt.Println("element verifies:", c.VerifyElement("index.html", content, now) == nil)
	fmt.Println("tampered rejected:", c.VerifyElement("index.html", []byte("evil"), now) != nil)
	// Output:
	// key self-certifies: true
	// certificate genuine: true
	// element verifies: true
	// tampered rejected: true
}

// ExampleTrustStore shows user-controlled CA trust (§3.1.2).
func ExampleTrustStore() {
	ca, _ := cert.NewCA("Example Root", keys.Ed25519)
	owner, _ := keys.Generate(keys.Ed25519)
	oid := globeid.FromPublicKey(owner.Public())
	issued := time.Date(2005, 4, 4, 12, 0, 0, 0, time.UTC)
	nc, _ := ca.IssueNameCertificate(oid, "Vrije Universiteit", issued, issued.Add(24*time.Hour))

	trust := cert.NewTrustStore()
	trust.TrustCA("Example Root", ca.Key.Public())
	subject, err := trust.Verify(nc, oid, issued.Add(time.Hour))
	fmt.Println(subject, err == nil)
	// Output:
	// Vrije Universiteit true
}
