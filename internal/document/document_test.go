package document_test

import (
	"bytes"
	"errors"
	"testing"
	"testing/fstest"
	"testing/quick"
	"time"

	"globedoc/internal/cert"
	"globedoc/internal/document"
	"globedoc/internal/globeid"
	"globedoc/internal/keys/keytest"
)

func TestPutGetRemove(t *testing.T) {
	d := document.New()
	if err := d.Put(document.Element{Name: "index.html", Data: []byte("<html>")}); err != nil {
		t.Fatalf("Put: %v", err)
	}
	e, err := d.Get("index.html")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(e.Data, []byte("<html>")) {
		t.Errorf("Data = %q", e.Data)
	}
	if e.ContentType != "text/html; charset=utf-8" {
		t.Errorf("ContentType = %q", e.ContentType)
	}
	if err := d.Remove("index.html"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := d.Get("index.html"); !errors.Is(err, document.ErrNoSuchElement) {
		t.Fatalf("Get after Remove: %v", err)
	}
	if err := d.Remove("index.html"); !errors.Is(err, document.ErrNoSuchElement) {
		t.Fatalf("double Remove: %v", err)
	}
}

func TestPutRejectsEmptyName(t *testing.T) {
	d := document.New()
	if err := d.Put(document.Element{Data: []byte("x")}); !errors.Is(err, document.ErrEmptyName) {
		t.Fatalf("err = %v, want ErrEmptyName", err)
	}
}

func TestVersionIncrements(t *testing.T) {
	d := document.New()
	if d.Version() != 0 {
		t.Fatalf("initial version = %d", d.Version())
	}
	d.Put(document.Element{Name: "a", Data: []byte("1")})
	d.Put(document.Element{Name: "b", Data: []byte("2")})
	if d.Version() != 2 {
		t.Fatalf("version after 2 puts = %d", d.Version())
	}
	d.Remove("a")
	if d.Version() != 3 {
		t.Fatalf("version after remove = %d", d.Version())
	}
}

func TestGetReturnsCopy(t *testing.T) {
	d := document.New()
	d.Put(document.Element{Name: "a", Data: []byte("original")})
	e, _ := d.Get("a")
	e.Data[0] = 'X'
	again, _ := d.Get("a")
	if !bytes.Equal(again.Data, []byte("original")) {
		t.Fatal("mutation through Get leaked into document state")
	}
}

func TestPutCopiesCallerData(t *testing.T) {
	d := document.New()
	data := []byte("original")
	d.Put(document.Element{Name: "a", Data: data})
	data[0] = 'X'
	e, _ := d.Get("a")
	if !bytes.Equal(e.Data, []byte("original")) {
		t.Fatal("caller mutation leaked into document state")
	}
}

func TestNamesSortedAndSizes(t *testing.T) {
	d := document.New()
	d.Put(document.Element{Name: "z.png", Data: make([]byte, 10)})
	d.Put(document.Element{Name: "a.html", Data: make([]byte, 5)})
	names := d.Names()
	if len(names) != 2 || names[0] != "a.html" || names[1] != "z.png" {
		t.Errorf("Names = %v", names)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
	if d.TotalSize() != 15 {
		t.Errorf("TotalSize = %d", d.TotalSize())
	}
}

func TestSnapshotAndReplace(t *testing.T) {
	d := document.New()
	d.Put(document.Element{Name: "b", Data: []byte("2")})
	d.Put(document.Element{Name: "a", Data: []byte("1")})
	elems, version := d.Snapshot()
	if version != 2 || len(elems) != 2 || elems[0].Name != "a" {
		t.Fatalf("Snapshot = %v @ %d", elems, version)
	}

	replica := document.New()
	replica.Replace(elems, version)
	if replica.Version() != 2 || replica.Len() != 2 {
		t.Fatalf("Replace: version %d len %d", replica.Version(), replica.Len())
	}
	got, err := replica.Get("b")
	if err != nil || !bytes.Equal(got.Data, []byte("2")) {
		t.Fatalf("Get after Replace: %v %q", err, got.Data)
	}
}

func TestFromFS(t *testing.T) {
	fsys := fstest.MapFS{
		"site/index.html":    {Data: []byte("<html>home</html>")},
		"site/img/logo.png":  {Data: []byte{0x89, 'P', 'N', 'G'}},
		"site/notes/faq.txt": {Data: []byte("faq")},
	}
	d, err := document.FromFS(fsys, "site")
	if err != nil {
		t.Fatalf("FromFS: %v", err)
	}
	names := d.Names()
	want := []string{"img/logo.png", "index.html", "notes/faq.txt"}
	if len(names) != 3 {
		t.Fatalf("Names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("Names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestIssueCertificateCoversAllElements(t *testing.T) {
	owner := keytest.Ed()
	oid := globeid.FromPublicKey(owner.Public())
	d := document.New()
	d.Put(document.Element{Name: "index.html", Data: []byte("page")})
	d.Put(document.Element{Name: "logo.png", Data: []byte("img")})

	issued := time.Date(2005, 4, 4, 12, 0, 0, 0, time.UTC)
	c, err := document.IssueCertificate(d, oid, owner, issued, document.UniformTTL(time.Hour))
	if err != nil {
		t.Fatalf("IssueCertificate: %v", err)
	}
	if err := c.VerifySignature(oid, owner.Public()); err != nil {
		t.Fatalf("VerifySignature: %v", err)
	}
	if len(c.Entries) != 2 {
		t.Fatalf("entries = %d", len(c.Entries))
	}
	for _, name := range d.Names() {
		e, _ := d.Get(name)
		if err := c.VerifyElement(name, e.Data, issued.Add(time.Minute)); err != nil {
			t.Errorf("VerifyElement(%q): %v", name, err)
		}
	}
	if c.Version != d.Version() {
		t.Errorf("certificate version %d != document version %d", c.Version, d.Version())
	}
}

func TestIssueCertificatePerElementTTL(t *testing.T) {
	owner := keytest.Ed()
	oid := globeid.FromPublicKey(owner.Public())
	d := document.New()
	d.Put(document.Element{Name: "news.html", Data: []byte("breaking")})
	d.Put(document.Element{Name: "logo.png", Data: []byte("logo")})
	issued := time.Date(2005, 4, 4, 12, 0, 0, 0, time.UTC)
	ttl := func(name string) time.Duration {
		if name == "news.html" {
			return time.Minute
		}
		return 24 * time.Hour
	}
	c, err := document.IssueCertificate(d, oid, owner, issued, ttl)
	if err != nil {
		t.Fatal(err)
	}
	news, _ := c.Lookup("news.html")
	logo, _ := c.Lookup("logo.png")
	if !news.Expires.Equal(issued.Add(time.Minute)) {
		t.Errorf("news expires %v", news.Expires)
	}
	if !logo.Expires.Equal(issued.Add(24 * time.Hour)) {
		t.Errorf("logo expires %v", logo.Expires)
	}
	at := issued.Add(10 * time.Minute)
	newsData, _ := d.Get("news.html")
	if err := c.VerifyElement("news.html", newsData.Data, at); !errors.Is(err, cert.ErrFreshness) {
		t.Errorf("stale news accepted: %v", err)
	}
}

func TestGuessContentType(t *testing.T) {
	cases := map[string]string{
		"x.png":  "image/png",
		"x.bin":  "application/octet-stream",
		"x.jpeg": "image/jpeg",
	}
	for name, want := range cases {
		if got := document.GuessContentType(name); got != want && name != "x.jpeg" {
			t.Errorf("GuessContentType(%q) = %q, want %q", name, got, want)
		}
	}
}

func TestQuickDocumentStateMachine(t *testing.T) {
	// Property: after any sequence of puts of distinct names, every name
	// is retrievable with its latest content and Len matches.
	f := func(names []string, payload byte) bool {
		d := document.New()
		seen := make(map[string][]byte)
		for i, n := range names {
			if n == "" {
				continue
			}
			data := []byte{payload, byte(i)}
			if d.Put(document.Element{Name: n, Data: data}) != nil {
				return false
			}
			seen[n] = data
		}
		if d.Len() != len(seen) {
			return false
		}
		for n, want := range seen {
			e, err := d.Get(n)
			if err != nil || !bytes.Equal(e.Data, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
