package document_test

import (
	"testing"

	"globedoc/internal/document"
)

func TestParseHybrid(t *testing.T) {
	cases := []struct {
		path    string
		wantOK  bool
		wantObj string
		wantEl  string
	}{
		{"/GlobeDoc/vu.nl/home/index.html", true, "vu.nl/home", "index.html"},
		{"/GlobeDoc/site!img/logo.png", true, "site", "img/logo.png"},
		{"/GlobeDoc/a/b", true, "a", "b"},
		{"/GlobeDoc/", false, "", ""},
		{"/GlobeDoc/noelement", false, "", ""},
		{"/GlobeDoc/obj/", false, "", ""},
		{"/regular/path.html", false, "", ""},
		{"", false, "", ""},
		{"/GlobeDoc/!x", false, "", ""},
		{"/GlobeDoc/x!", false, "", ""},
	}
	for _, c := range cases {
		ref, ok := document.ParseHybrid(c.path)
		if ok != c.wantOK {
			t.Errorf("ParseHybrid(%q) ok = %v, want %v", c.path, ok, c.wantOK)
			continue
		}
		if ok && (ref.ObjectName != c.wantObj || ref.Element != c.wantEl) {
			t.Errorf("ParseHybrid(%q) = %+v, want {%q %q}", c.path, ref, c.wantObj, c.wantEl)
		}
	}
}

func TestHybridRefString(t *testing.T) {
	ref := document.HybridRef{ObjectName: "vu.nl/home", Element: "index.html"}
	if got := ref.String(); got != "/GlobeDoc/vu.nl/home/index.html" {
		t.Errorf("String = %q", got)
	}
	back, ok := document.ParseHybrid(ref.String())
	if !ok || back != ref {
		t.Errorf("round trip = %+v, %v", back, ok)
	}
}

func TestExtractLinks(t *testing.T) {
	html := []byte(`<html>
		<a href="other.html">rel</a>
		<img src='img/logo.png'>
		<a href="http://proxy.example/GlobeDoc/vu.nl/news/story.html">abs hybrid</a>
		<a href="https://example.com/plain.html">abs plain</a>
	</html>`)
	links := document.ExtractLinks(html)
	var rel, hybrid, plainAbs int
	for _, l := range links {
		switch {
		case l.Relative:
			rel++
		case l.Hybrid != nil:
			hybrid++
			if l.Hybrid.ObjectName != "vu.nl/news" || l.Hybrid.Element != "story.html" {
				t.Errorf("hybrid ref = %+v", l.Hybrid)
			}
		default:
			plainAbs++
		}
	}
	if rel != 2 || hybrid != 1 || plainAbs != 1 {
		t.Errorf("rel=%d hybrid=%d plainAbs=%d, links=%v", rel, hybrid, plainAbs, links)
	}
}

func TestExtractLinksEmptyAndMalformed(t *testing.T) {
	if got := document.ExtractLinks(nil); len(got) != 0 {
		t.Errorf("links from nil = %v", got)
	}
	if got := document.ExtractLinks([]byte(`<a href=>`)); len(got) != 0 {
		t.Errorf("links from malformed = %v", got)
	}
	if got := document.ExtractLinks([]byte(`<a href="unterminated`)); len(got) != 0 {
		t.Errorf("links from unterminated = %v", got)
	}
}

func TestSiteDanglingLinks(t *testing.T) {
	site := document.NewSite("vu.nl")
	doc := document.New()
	doc.Put(document.Element{Name: "index.html", ContentType: "text/html",
		Data: []byte(`<a href="present.html">ok</a><a href="missing.html">bad</a>`)})
	doc.Put(document.Element{Name: "present.html", ContentType: "text/html", Data: []byte("x")})
	if err := site.Add("home", doc); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := site.Add("home", doc); err == nil {
		t.Fatal("duplicate Add succeeded")
	}
	dangling := site.DanglingLinks()
	got := dangling["home/index.html"]
	if len(got) != 1 || got[0] != "missing.html" {
		t.Errorf("dangling = %v", dangling)
	}
}
