// Package document implements the GlobeDoc Web document model (paper §2).
//
// A Web document is a collection of logically related Web resources — its
// page elements (HTML files, images, applets, ...). A Web site is a
// collection of related documents. Each document is encapsulated in a
// Globe distributed shared object whose state is the element set and
// which is accessed and modified on a per-element basis.
package document

import (
	"errors"
	"fmt"
	"io/fs"
	"mime"
	"path"
	"sort"
	"strings"
	"sync"
	"time"

	"globedoc/internal/cert"
	"globedoc/internal/globeid"
	"globedoc/internal/keys"
)

// Errors reported by the document model.
var (
	ErrNoSuchElement = errors.New("document: no such element")
	ErrEmptyName     = errors.New("document: element name must not be empty")
)

// Element is one page element of a Web document: an addressable resource
// with a MIME content type and raw content bytes.
type Element struct {
	Name        string
	ContentType string
	Data        []byte
}

// Size returns the content length in bytes.
func (e Element) Size() int { return len(e.Data) }

// Hash returns the SHA-1 hash of the element content, as recorded in
// integrity certificates.
func (e Element) Hash() [globeid.Size]byte { return globeid.HashElement(e.Data) }

// Document is the replicable state of one GlobeDoc object: a named set of
// page elements plus a version counter bumped on every mutation. Document
// is safe for concurrent use.
type Document struct {
	mu       sync.RWMutex
	elements map[string]Element
	version  uint64
}

// New returns an empty document at version 0.
func New() *Document {
	return &Document{elements: make(map[string]Element)}
}

// Version returns the current state version. Every successful Put or
// Remove increments it.
func (d *Document) Version() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.version
}

// Put inserts or replaces an element. If the element's ContentType is
// empty it is guessed from the name's extension.
func (d *Document) Put(e Element) error {
	if e.Name == "" {
		return ErrEmptyName
	}
	if e.ContentType == "" {
		e.ContentType = GuessContentType(e.Name)
	}
	e.Data = append([]byte(nil), e.Data...)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.elements[e.Name] = e
	d.version++
	return nil
}

// Get returns a copy of the named element.
func (d *Document) Get(name string) (Element, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	e, ok := d.elements[name]
	if !ok {
		return Element{}, fmt.Errorf("%w: %q", ErrNoSuchElement, name)
	}
	e.Data = append([]byte(nil), e.Data...)
	return e, nil
}

// Remove deletes the named element.
func (d *Document) Remove(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.elements[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNoSuchElement, name)
	}
	delete(d.elements, name)
	d.version++
	return nil
}

// Names returns the sorted element names.
func (d *Document) Names() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	names := make([]string, 0, len(d.elements))
	for name := range d.elements {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Len reports the number of elements.
func (d *Document) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.elements)
}

// TotalSize reports the summed content length of all elements.
func (d *Document) TotalSize() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	total := 0
	for _, e := range d.elements {
		total += len(e.Data)
	}
	return total
}

// Snapshot returns copies of all elements, sorted by name, together with
// the version they correspond to.
func (d *Document) Snapshot() ([]Element, uint64) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]Element, 0, len(d.elements))
	for _, e := range d.elements {
		e.Data = append([]byte(nil), e.Data...)
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, d.version
}

// Replace atomically substitutes the full element set, as when a replica
// installs state pushed from the primary, and sets the version.
func (d *Document) Replace(elements []Element, version uint64) {
	m := make(map[string]Element, len(elements))
	for _, e := range elements {
		e.Data = append([]byte(nil), e.Data...)
		m[e.Name] = e
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.elements = m
	d.version = version
}

// GuessContentType maps a file extension to a MIME type, defaulting to
// application/octet-stream.
func GuessContentType(name string) string {
	if ct := mime.TypeByExtension(path.Ext(name)); ct != "" {
		return ct
	}
	switch strings.ToLower(path.Ext(name)) {
	case ".html", ".htm":
		return "text/html; charset=utf-8"
	case ".txt":
		return "text/plain; charset=utf-8"
	case ".png":
		return "image/png"
	case ".jpg", ".jpeg":
		return "image/jpeg"
	case ".gif":
		return "image/gif"
	case ".css":
		return "text/css"
	case ".js":
		return "text/javascript"
	default:
		return "application/octet-stream"
	}
}

// FromFS loads every file under root in fsys as an element of a new
// document, using slash-separated paths relative to root as element names.
func FromFS(fsys fs.FS, root string) (*Document, error) {
	d := New()
	err := fs.WalkDir(fsys, root, func(p string, entry fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if entry.IsDir() {
			return nil
		}
		data, err := fs.ReadFile(fsys, p)
		if err != nil {
			return err
		}
		name := strings.TrimPrefix(strings.TrimPrefix(p, root), "/")
		if name == "" {
			name = path.Base(p)
		}
		return d.Put(Element{Name: name, Data: data})
	})
	if err != nil {
		return nil, fmt.Errorf("document: loading from fs: %w", err)
	}
	return d, nil
}

// IssueCertificate produces a signed integrity certificate covering the
// document's current elements. Each entry is valid from issued until
// issued+ttl(name); ttl is consulted per element, enabling the per-element
// freshness constraints that distinguish GlobeDoc from hash-tree designs
// such as r-oSFS (paper §5).
func IssueCertificate(d *Document, oid globeid.OID, owner *keys.KeyPair, issued time.Time, ttl func(name string) time.Duration) (*cert.IntegrityCertificate, error) {
	elements, version := d.Snapshot()
	c := &cert.IntegrityCertificate{
		ObjectID: oid,
		Version:  version,
		Issued:   issued,
	}
	for _, e := range elements {
		c.Entries = append(c.Entries, cert.ElementEntry{
			Name:      e.Name,
			Hash:      e.Hash(),
			NotBefore: issued,
			Expires:   issued.Add(ttl(e.Name)),
		})
	}
	if err := c.Sign(owner); err != nil {
		return nil, err
	}
	return c, nil
}

// UniformTTL returns a ttl function assigning the same validity duration
// to every element.
func UniformTTL(d time.Duration) func(string) time.Duration {
	return func(string) time.Duration { return d }
}
