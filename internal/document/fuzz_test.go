package document_test

import (
	"strings"
	"testing"

	"globedoc/internal/document"
)

// FuzzParseHybrid checks hybrid-URL parsing never panics and that any
// accepted parse round-trips through the reference when re-rendered.
func FuzzParseHybrid(f *testing.F) {
	f.Add("/GlobeDoc/vu.nl/home/index.html")
	f.Add("/GlobeDoc/site!img/logo.png")
	f.Add("/GlobeDoc/")
	f.Add("not-a-hybrid")
	f.Add("/GlobeDoc/a!")
	f.Fuzz(func(t *testing.T, path string) {
		ref, ok := document.ParseHybrid(path)
		if !ok {
			return
		}
		if ref.ObjectName == "" || ref.Element == "" {
			t.Fatalf("accepted ref with empty component: %+v from %q", ref, path)
		}
		// A ref without the explicit separator must re-render to a path
		// that parses back to itself.
		if !strings.Contains(path, "!") && !strings.Contains(ref.Element, "/") {
			back, ok := document.ParseHybrid(ref.String())
			if !ok || back != ref {
				t.Fatalf("round trip failed: %+v -> %q -> %+v (%v)", ref, ref.String(), back, ok)
			}
		}
	})
}

// FuzzExtractLinks checks the HTML link scanner never panics on
// arbitrary input.
func FuzzExtractLinks(f *testing.F) {
	f.Add([]byte(`<a href="x.html">x</a>`))
	f.Add([]byte(`<img src='y.png'>`))
	f.Add([]byte(`href=`))
	f.Add([]byte(nil))
	f.Fuzz(func(t *testing.T, html []byte) {
		for _, link := range document.ExtractLinks(html) {
			if link.Target == "" {
				t.Fatal("extracted empty link target")
			}
		}
	})
}
