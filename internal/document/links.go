package document

import (
	"fmt"
	"strings"
)

// HybridPrefix is the path prefix that marks a URL as referring to a
// GlobeDoc object. Standard browsers do not understand GlobeDoc names, so
// hybrid URLs embed the object name and page-element name in an ordinary
// URL that the user's proxy intercepts (paper §2.1).
const HybridPrefix = "/GlobeDoc/"

// HybridRef is a parsed hybrid URL: which GlobeDoc object and which page
// element inside it.
type HybridRef struct {
	ObjectName string // human-readable object name resolved by the naming service
	Element    string // page element within the object
}

// String renders the reference as a hybrid URL path.
func (h HybridRef) String() string {
	return HybridPrefix + h.ObjectName + "/" + h.Element
}

// ParseHybrid parses a URL path of the form /GlobeDoc/<object>/<element>.
// The object name may itself contain slashes; the element is the final
// path component unless the object name is registered with an explicit
// separator "!": /GlobeDoc/a/b!x/y.html names object "a/b" and element
// "x/y.html".
func ParseHybrid(urlPath string) (HybridRef, bool) {
	if !strings.HasPrefix(urlPath, HybridPrefix) {
		return HybridRef{}, false
	}
	rest := strings.TrimPrefix(urlPath, HybridPrefix)
	if rest == "" {
		return HybridRef{}, false
	}
	if obj, elem, ok := strings.Cut(rest, "!"); ok {
		elem = strings.TrimPrefix(elem, "/")
		if obj == "" || elem == "" {
			return HybridRef{}, false
		}
		return HybridRef{ObjectName: obj, Element: elem}, true
	}
	i := strings.LastIndex(rest, "/")
	if i <= 0 || i == len(rest)-1 {
		return HybridRef{}, false
	}
	return HybridRef{ObjectName: rest[:i], Element: rest[i+1:]}, true
}

// Link is a hyperlink found in an HTML page element. A relative link
// refers to another element of the same GlobeDoc object; an absolute link
// (one that parses as a hybrid URL) refers to an element of another
// object (paper §2).
type Link struct {
	Target   string     // raw href/src attribute value
	Relative bool       // true if the target names an element of the same object
	Hybrid   *HybridRef // non-nil if the target is an absolute hybrid URL
}

// ExtractLinks scans HTML content for href and src attributes and
// classifies each as relative (same object) or absolute. It is a
// deliberately small scanner, not a full HTML parser: GlobeDoc only needs
// link topology, not the DOM.
func ExtractLinks(html []byte) []Link {
	var links []Link
	s := string(html)
	for _, attr := range []string{"href=", "src="} {
		rest := s
		for {
			// asciiLower preserves byte offsets (unlike strings.ToLower,
			// which may resize non-ASCII runes), so i indexes rest too.
			i := strings.Index(asciiLower(rest), attr)
			if i < 0 {
				break
			}
			rest = rest[i+len(attr):]
			if len(rest) == 0 {
				break
			}
			quote := rest[0]
			if quote != '"' && quote != '\'' {
				continue
			}
			end := strings.IndexByte(rest[1:], quote)
			if end < 0 {
				break
			}
			target := rest[1 : 1+end]
			rest = rest[1+end:]
			if target == "" {
				continue
			}
			links = append(links, classifyLink(target))
		}
	}
	return links
}

// asciiLower lowercases only ASCII letters, preserving string length so
// indices into the result are valid in the original.
func asciiLower(s string) string {
	hasUpper := false
	for i := 0; i < len(s); i++ {
		if s[i] >= 'A' && s[i] <= 'Z' {
			hasUpper = true
			break
		}
	}
	if !hasUpper {
		return s
	}
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

func classifyLink(target string) Link {
	if ref, ok := ParseHybrid(pathOf(target)); ok {
		return Link{Target: target, Relative: false, Hybrid: &ref}
	}
	if strings.Contains(target, "://") || strings.HasPrefix(target, "//") {
		return Link{Target: target, Relative: false}
	}
	return Link{Target: target, Relative: true}
}

// pathOf strips scheme and host from an absolute URL, returning the path.
func pathOf(target string) string {
	if i := strings.Index(target, "://"); i >= 0 {
		rest := target[i+3:]
		if j := strings.IndexByte(rest, '/'); j >= 0 {
			return rest[j:]
		}
		return "/"
	}
	return target
}

// Site is a collection of related Web documents under a common name
// prefix, mirroring the paper's site/document distinction (§2).
type Site struct {
	Name      string
	Documents map[string]*Document // object name -> document
}

// NewSite returns an empty site.
func NewSite(name string) *Site {
	return &Site{Name: name, Documents: make(map[string]*Document)}
}

// Add registers doc under objectName. Registering the same name twice is
// an error.
func (s *Site) Add(objectName string, doc *Document) error {
	if _, ok := s.Documents[objectName]; ok {
		return fmt.Errorf("document: site %q already has object %q", s.Name, objectName)
	}
	s.Documents[objectName] = doc
	return nil
}

// DanglingLinks returns, for every HTML element in every document of the
// site, the relative links that do not resolve to an element of the same
// document — the site-integrity check a publisher runs before signing.
func (s *Site) DanglingLinks() map[string][]string {
	dangling := make(map[string][]string)
	for objName, doc := range s.Documents {
		for _, elemName := range doc.Names() {
			e, err := doc.Get(elemName)
			if err != nil || !strings.HasPrefix(e.ContentType, "text/html") {
				continue
			}
			for _, link := range ExtractLinks(e.Data) {
				if !link.Relative {
					continue
				}
				target := strings.TrimPrefix(link.Target, "./")
				if _, err := doc.Get(target); err != nil {
					key := objName + "/" + elemName
					dangling[key] = append(dangling[key], link.Target)
				}
			}
		}
	}
	return dangling
}
