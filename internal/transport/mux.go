package transport

// Client-side stream multiplexing for transport v2.
//
// A muxConn is one negotiated v2 connection carrying many concurrent
// calls: each call reserves a stream ID, writes one request frame, and
// parks on a per-stream channel until the connection's read loop
// delivers the matching response frame. Responses arrive in whatever
// order the server finishes them, so one slow call never blocks its
// siblings — the pool's one-call-per-connection rule is replaced by a
// per-connection stream budget.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"globedoc/internal/telemetry"
)

// DefaultStreamBudget is the per-connection concurrent-stream bound
// used when PoolConfig.StreamBudget is zero.
const DefaultStreamBudget = 32

// errFellBackToV1 is an internal sentinel: dialling for a v2 stream
// discovered (and latched) that the peer only speaks v1, so the caller
// must re-route the call through the classic path.
var errFellBackToV1 = errors.New("transport: peer negotiated down to v1")

type muxResult struct {
	payload []byte
	err     error
}

// muxConn is one negotiated v2 connection shared by many streams.
type muxConn struct {
	c    *Client
	conn net.Conn

	wmu sync.Mutex // serialises frame writes

	mu        sync.Mutex
	streams   map[uint32]chan muxResult // in-flight calls by stream ID
	nextID    uint32
	inflight  int       // reserved stream slots (also counts calls mid-setup)
	idleSince time.Time // when inflight last dropped to zero
	draining  bool      // Close was called mid-flight: close when drained
	dead      bool
	deadErr   error
}

// register reserves a fresh stream ID and its response channel.
func (mc *muxConn) register() (uint32, chan muxResult, error) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if mc.dead {
		return 0, nil, mc.deadErr
	}
	mc.nextID++
	id := mc.nextID
	ch := make(chan muxResult, 1)
	mc.streams[id] = ch
	return id, ch, nil
}

// forget abandons a stream whose caller gave up (timeout or
// cancellation); a late response frame for it is dropped by readLoop.
func (mc *muxConn) forget(id uint32) {
	mc.mu.Lock()
	delete(mc.streams, id)
	mc.mu.Unlock()
}

// fail marks the connection dead, closes it and delivers err to every
// pending stream. Idempotent: only the first failure counts.
func (mc *muxConn) fail(err error) {
	mc.mu.Lock()
	if mc.dead {
		mc.mu.Unlock()
		return
	}
	mc.dead = true
	mc.deadErr = err
	pending := mc.streams
	mc.streams = make(map[uint32]chan muxResult)
	mc.mu.Unlock()
	mc.conn.Close()
	for _, ch := range pending {
		ch <- muxResult{err: err}
	}
	telemetry.Or(mc.c.Telemetry).PoolConns.Add(-1)
	mc.c.muxWake()
}

// readLoop is the single reader of a v2 connection: it matches response
// frames to waiting streams by ID. Responses for unknown streams are
// dropped (the caller timed out first); any read error or protocol
// violation kills the connection and fails every pending stream. conn
// is the shutdown handle: closing it (fail, Client.Close) unblocks the
// read and ends the loop.
func (mc *muxConn) readLoop(conn net.Conn) {
	for {
		f, err := readV2Frame(conn)
		if err != nil {
			mc.fail(fmt.Errorf("%w (%v)", ErrClosed, err))
			return
		}
		if f.Type != frameResponse {
			mc.fail(fmt.Errorf("%w: unexpected frame type 0x%02x from server", ErrProtocol, f.Type))
			return
		}
		mc.c.BytesReceived.Add(uint64(len(f.Payload)) + 4 + v2FrameOverhead)
		mc.mu.Lock()
		ch, ok := mc.streams[f.StreamID]
		if ok {
			delete(mc.streams, f.StreamID)
		}
		mc.mu.Unlock()
		if ok {
			ch <- muxResult{payload: f.Payload} // buffered: never blocks
		}
	}
}

// muxWake wakes every caller waiting in acquireStream for stream
// capacity; waiters re-check the pool state and park again if nothing
// is free for them.
func (c *Client) muxWake() {
	c.muxMu.Lock()
	c.muxWakeLocked()
	c.muxMu.Unlock()
}

func (c *Client) muxWakeLocked() {
	if c.muxNotify != nil {
		close(c.muxNotify)
		c.muxNotify = nil
	}
}

// attemptMux performs one call attempt over a multiplexed stream.
// reused reports whether the stream rode an already-open connection.
func (c *Client) attemptMux(ctx context.Context, sc telemetry.SpanContext, op string, body []byte) (resp []byte, reused bool, err error) {
	mc, reused, err := c.acquireStream(ctx)
	if err != nil {
		return nil, false, err
	}
	defer c.releaseStream(mc)
	resp, err = c.muxRoundTrip(ctx, mc, sc, op, body)
	return resp, reused, err
}

// acquireStream reserves a stream slot on a v2 connection: it prefers
// the least-loaded live connection with budget headroom, dials a new
// connection while the MaxConns bound has headroom, and otherwise
// blocks until a sibling stream finishes or ctx is cancelled. On
// discovering a v1-only peer it latches the downgrade and returns
// errFellBackToV1.
func (c *Client) acquireStream(ctx context.Context) (*muxConn, bool, error) {
	tel := telemetry.Or(c.Telemetry)
	budget := c.Pool.streamBudget()
	c.mu.Lock()
	c.closed = false // a call after Close reopens the pool, as in v1
	c.mu.Unlock()
	c.muxMu.Lock()
	for {
		if err := ctx.Err(); err != nil {
			c.muxMu.Unlock()
			return nil, false, fmt.Errorf("transport: awaiting stream slot: %w", err)
		}
		if c.Version != V2 && byte(c.peerVersion.Load()) == V1 {
			// A concurrent dial latched the downgrade while we waited.
			c.muxMu.Unlock()
			return nil, false, errFellBackToV1
		}
		now := c.clock().Now()
		// Drop dead conns from the list and lazily reap idle ones that
		// outlived IdleTimeout, exactly like the v1 pool.
		kept := c.muxConns[:0]
		var reaped []*muxConn
		for _, mc := range c.muxConns {
			mc.mu.Lock()
			if mc.dead {
				mc.mu.Unlock()
				continue
			}
			if c.Pool.IdleTimeout > 0 && mc.inflight == 0 && now.Sub(mc.idleSince) > c.Pool.IdleTimeout {
				mc.dead = true
				mc.deadErr = ErrClosed
				mc.mu.Unlock()
				reaped = append(reaped, mc)
				continue
			}
			mc.mu.Unlock()
			kept = append(kept, mc)
		}
		c.muxConns = kept
		for _, mc := range reaped {
			mc.conn.Close() // readLoop's fail() sees dead and no-ops
			tel.PoolIdleClosed.Inc()
			tel.PoolConns.Add(-1)
		}

		// Least-loaded live conn with stream headroom wins.
		var best *muxConn
		bestLoad := 0
		for _, mc := range c.muxConns {
			mc.mu.Lock()
			ok := !mc.dead && mc.inflight < budget
			load := mc.inflight
			mc.mu.Unlock()
			if ok && (best == nil || load < bestLoad) {
				best, bestLoad = mc, load
			}
		}
		if best != nil {
			best.mu.Lock()
			if !best.dead && best.inflight < budget {
				best.inflight++
				best.mu.Unlock()
				c.muxMu.Unlock()
				tel.PoolReuse.Inc()
				return best, true, nil
			}
			best.mu.Unlock()
			continue // raced with conn death; re-scan
		}

		// Dials are singleflight: a cold burst coalesces onto the one
		// connection being negotiated instead of racing a dial per call
		// (waiters park below and re-check when the dial lands). Another
		// dial starts only once every live conn is stream-saturated.
		if c.muxDialing == 0 && len(c.muxConns) < c.Pool.maxConns() {
			c.muxDialing++
			c.muxMu.Unlock()
			mc, err := c.dialMux(ctx)
			c.muxMu.Lock()
			c.muxDialing--
			c.muxWakeLocked() // a dial slot or fresh stream capacity opened up
			if err != nil {
				c.muxMu.Unlock()
				return nil, false, err
			}
			mc.inflight = 1
			c.muxConns = append(c.muxConns, mc)
			c.muxMu.Unlock()
			return mc, false, nil
		}

		// Every conn is saturated and the conn bound is reached: park
		// until capacity frees up or ctx is cancelled.
		if c.muxNotify == nil {
			c.muxNotify = make(chan struct{})
		}
		ready := c.muxNotify
		c.muxMu.Unlock()
		select {
		case <-ready:
		case <-ctx.Done():
		}
		c.muxMu.Lock()
	}
}

// releaseStream returns a stream slot to its connection. The last
// stream out closes the conn when a Close-initiated drain is pending,
// or when idle pooling is disabled (MaxIdle < 0) — the v1 rule that no
// warm connection outlives its calls.
func (c *Client) releaseStream(mc *muxConn) {
	mc.mu.Lock()
	mc.inflight--
	if mc.inflight == 0 {
		mc.idleSince = c.clock().Now()
	}
	drained := mc.inflight == 0 && !mc.dead && (mc.draining || c.Pool.maxIdle() == 0)
	if drained {
		mc.dead = true
		mc.deadErr = ErrClosed
	}
	mc.mu.Unlock()
	if drained {
		mc.conn.Close()
		telemetry.Or(c.Telemetry).PoolConns.Add(-1)
	}
	c.muxWake()
}

// dialMux dials and negotiates one v2 connection. The negotiation
// exchange is bounded by DialTimeout and ctx — a peer that accepts the
// connection but never answers the preamble must not hang the caller. A
// peer that hangs up on the preamble (a pre-negotiation v1 server
// reading it as an oversized length header) or negotiates down to v1
// latches the downgrade; any other I/O failure stays an error so a
// flaky network cannot silently pin the client to v1 — at worst a
// genuine reset downgrades to v1, which every v2 server still speaks.
func (c *Client) dialMux(ctx context.Context) (*muxConn, error) {
	tel := telemetry.Or(c.Telemetry)
	conn, err := c.dialContext(ctx)
	if err != nil {
		return nil, fmt.Errorf("transport: dial: %w", err)
	}
	tel.PoolDials.Inc()
	// The negotiation exchange is part of a call attempt, so it honours
	// both the dial and the call budget (whichever is tighter) plus ctx.
	var deadline time.Time
	if c.DialTimeout > 0 {
		deadline = c.clock().Now().Add(c.DialTimeout)
	}
	if c.CallTimeout > 0 {
		if d := c.clock().Now().Add(c.CallTimeout); deadline.IsZero() || d.Before(deadline) {
			deadline = d
		}
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	armed := false
	if !deadline.IsZero() {
		if err := conn.SetDeadline(deadline); err != nil {
			conn.Close()
			return nil, fmt.Errorf("transport: arming negotiation deadline: %w", err)
		}
		armed = true
	}
	stopWatch := watchCancel(ctx, conn)
	_, werr := conn.Write(clientPreamble(MaxSupportedVersion))
	var accept [preambleLen]byte
	var rerr error
	if werr == nil {
		_, rerr = io.ReadFull(conn, accept[:])
	}
	stopWatch()
	if werr != nil || rerr != nil {
		conn.Close()
		ioErr := werr
		if ioErr == nil {
			ioErr = rerr
		}
		if isPeerRejection(ioErr) && ctx.Err() == nil {
			if c.Version == V2 {
				return nil, Permanent(fmt.Errorf("%w (peer hung up on the v2 preamble: %v)", ErrVersionMismatch, ioErr))
			}
			c.peerVersion.Store(uint32(V1))
			tel.Negotiations.With("fallback").Inc()
			return nil, errFellBackToV1
		}
		return nil, ctxError(ctx, fmt.Errorf("transport: version negotiation: %w", ioErr))
	}
	agreed, err := parseAccept(accept[:], MaxSupportedVersion)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if agreed < V2 {
		// A negotiation-aware peer that tops out at v1. The conn now
		// expects classic frames; close it and re-route — the latch
		// means only the first contact pays the extra dial. Answering a
		// well-formed accept proves the peer post-dates the trace
		// trailer, so traced v1 calls may carry their context to it
		// (the hangup fallback above latches no such proof).
		conn.Close()
		tel.Negotiations.With(versionLabel(agreed)).Inc()
		if c.Version == V2 {
			return nil, Permanent(fmt.Errorf("%w: peer negotiated v%d", ErrVersionMismatch, agreed))
		}
		c.peerVersion.Store(uint32(agreed))
		c.peerTrailerAware.Store(true)
		return nil, errFellBackToV1
	}
	if armed {
		if err := conn.SetDeadline(time.Time{}); err != nil {
			conn.Close()
			return nil, fmt.Errorf("transport: clearing negotiation deadline: %w", err)
		}
	}
	c.peerVersion.Store(uint32(agreed))
	tel.Negotiations.With(versionLabel(agreed)).Inc()
	tel.PoolConns.Add(1)
	mc := &muxConn{
		c:         c,
		conn:      conn,
		streams:   make(map[uint32]chan muxResult),
		idleSince: c.clock().Now(),
	}
	go mc.readLoop(mc.conn)
	return mc, nil
}

// isPeerRejection reports whether a negotiation failure looks like a
// pre-v2 peer tearing the connection down (it read the preamble as an
// oversized v1 frame) rather than an unreachable network: any I/O error
// except a deadline expiry. Timeouts stay hard errors — silence is
// ambiguous and must not latch a downgrade.
func isPeerRejection(err error) bool {
	return err != nil && !errors.Is(err, os.ErrDeadlineExceeded)
}

// muxRoundTrip performs one framed exchange on a reserved stream. A
// stream that times out abandons only itself: the connection and its
// sibling streams stay healthy (a genuinely dead conn is detected by
// the read loop and fails everything at once).
func (c *Client) muxRoundTrip(ctx context.Context, mc *muxConn, sc telemetry.SpanContext, op string, body []byte) ([]byte, error) {
	tel := telemetry.Or(c.Telemetry)
	id, ch, err := mc.register()
	if err != nil {
		return nil, ctxError(ctx, fmt.Errorf("transport: send %q: %w", op, err))
	}
	tel.StreamsOpened.Inc()
	tel.StreamsActive.Add(1)
	defer tel.StreamsActive.Add(-1)

	var deadline time.Time
	if c.CallTimeout > 0 {
		deadline = c.clock().Now().Add(c.CallTimeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	// v2 carries the trace context in the frame header extension, not
	// the request envelope — hence the zero sc to encodeRequest.
	req := encodeRequest(op, body, telemetry.SpanContext{})
	mc.wmu.Lock()
	var werr error
	if !deadline.IsZero() {
		werr = mc.conn.SetWriteDeadline(deadline)
	}
	if werr == nil {
		werr = writeV2Frame(mc.conn, v2Frame{Type: frameRequest, StreamID: id, Payload: req, Trace: sc})
	}
	if werr == nil && !deadline.IsZero() {
		werr = mc.conn.SetWriteDeadline(time.Time{})
	}
	mc.wmu.Unlock()
	if werr != nil {
		mc.forget(id)
		// A failed or half-finished write leaves the shared conn in an
		// unknown framing state: kill it for everyone.
		mc.fail(fmt.Errorf("%w (send failed: %v)", ErrClosed, werr))
		return nil, ctxError(ctx, fmt.Errorf("transport: send %q: %w", op, werr))
	}
	c.BytesSent.Add(uint64(len(req)) + 4 + v2FrameOverhead)

	var timeout <-chan time.Time
	if c.CallTimeout > 0 {
		timeout = c.clock().After(c.CallTimeout)
	}
	select {
	case r := <-ch:
		if r.err != nil {
			return nil, ctxError(ctx, fmt.Errorf("transport: receive %q: %w", op, r.err))
		}
		return decodeResponse(op, r.payload)
	case <-ctx.Done():
		mc.forget(id)
		return nil, fmt.Errorf("transport: awaiting %q: %w", op, ctx.Err())
	case <-timeout:
		mc.forget(id)
		return nil, fmt.Errorf("transport: awaiting %q on stream %d: %w", op, id, os.ErrDeadlineExceeded)
	}
}
