package transport_test

import (
	"errors"
	"os"
	"testing"
	"time"

	"globedoc/internal/clock"
	"globedoc/internal/netsim"
	"globedoc/internal/transport"
)

func TestBackoffGrowsAndCaps(t *testing.T) {
	p := &transport.RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    40 * time.Millisecond,
		Multiplier:  2,
	}
	want := []time.Duration{10, 20, 40, 40}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w*time.Millisecond {
			t.Errorf("Backoff(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
	if got := p.Backoff(0); got != 0 {
		t.Errorf("Backoff(0) = %v, want 0", got)
	}
}

func TestBackoffJitterIsSeededAndBounded(t *testing.T) {
	mk := func(seed int64) *transport.RetryPolicy {
		return &transport.RetryPolicy{
			MaxAttempts: 8,
			BaseDelay:   100 * time.Millisecond,
			Multiplier:  1,
			Jitter:      0.5,
			Seed:        seed,
		}
	}
	a, b := mk(7), mk(7)
	for i := 1; i <= 8; i++ {
		da, db := a.Backoff(i), b.Backoff(i)
		if da != db {
			t.Fatalf("same seed diverged at retry %d: %v vs %v", i, da, db)
		}
		// delay * (1 - J/2 + J*u) with J=0.5 lies in [75ms, 125ms).
		if da < 75*time.Millisecond || da >= 125*time.Millisecond {
			t.Fatalf("jittered backoff %v outside [75ms, 125ms)", da)
		}
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"remote refusal", &transport.RemoteError{Op: "x", Message: "no"}, false},
		{"conn reset", netsim.ErrConnReset, true},
		{"deadline", os.ErrDeadlineExceeded, true},
		{"dial timeout", transport.ErrDialTimeout, true},
		{"frame too large", transport.ErrFrameTooLarge, true},
	}
	for _, tc := range cases {
		if got := transport.Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestDoStopsOnSuccessAndOnPermanentError(t *testing.T) {
	p := &transport.RetryPolicy{MaxAttempts: 5}

	calls := 0
	err := p.Do(func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want success after 3", err, calls)
	}

	calls = 0
	remote := &transport.RemoteError{Op: "op", Message: "denied"}
	err = p.Do(func() error { calls++; return remote })
	if !errors.Is(err, remote) || calls != 1 {
		t.Fatalf("Do = %v after %d calls, want immediate remote error", err, calls)
	}

	calls = 0
	err = p.Do(func() error { calls++; return errors.New("always") })
	if err == nil || calls != 5 {
		t.Fatalf("Do = %v after %d calls, want failure after MaxAttempts", err, calls)
	}
}

func TestDoSleepsBackoffOnInjectedClock(t *testing.T) {
	fake := clock.NewFake(time.Unix(0, 0))
	p := &transport.RetryPolicy{
		MaxAttempts: 3,
		BaseDelay:   100 * time.Millisecond,
		Multiplier:  2,
		Clock:       fake,
	}
	done := make(chan error, 1)
	go func() { done <- p.Do(func() error { return errors.New("transient") }) }()
	for {
		select {
		case err := <-done:
			if err == nil {
				t.Fatal("Do succeeded unexpectedly")
			}
			// 100ms + 200ms of backoff must have elapsed on the fake clock.
			if got := fake.Now().Sub(time.Unix(0, 0)); got < 300*time.Millisecond {
				t.Fatalf("fake clock advanced %v, want >= 300ms", got)
			}
			return
		default:
			fake.Advance(50 * time.Millisecond)
			time.Sleep(time.Millisecond)
		}
	}
}
