package transport_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"testing/quick"

	"globedoc/internal/telemetry"
	"globedoc/internal/transport"
)

// startServer launches a transport server on a real loopback listener and
// returns a dialer for it plus a cleanup-registered server.
func startServer(t *testing.T, setup func(*transport.Server)) transport.DialFunc {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := transport.NewServer()
	setup(srv)
	srv.Start(l)
	t.Cleanup(srv.Close)
	addr := l.Addr().String()
	return func() (net.Conn, error) { return net.Dial("tcp", addr) }
}

func TestCallRoundTrip(t *testing.T) {
	dial := startServer(t, func(s *transport.Server) {
		s.Handle("echo", func(body []byte) ([]byte, error) {
			return append([]byte("echo:"), body...), nil
		})
	})
	c := transport.NewClient(dial)
	defer c.Close()
	resp, err := c.Call(context.Background(), "echo", []byte("hello"))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if !bytes.Equal(resp, []byte("echo:hello")) {
		t.Errorf("resp = %q", resp)
	}
}

func TestCallCancelledCtxDoesNotRecordHealthFailure(t *testing.T) {
	// A cancelled or expired caller context says nothing about the
	// replica: a burst of cancelled requests must not raise a healthy
	// address's consecutive-failure count and demote it in failover
	// ordering.
	tel := telemetry.New(nil)
	dial := startServer(t, func(s *transport.Server) {
		s.Handle("echo", func(body []byte) ([]byte, error) { return body, nil })
	})
	const addr = "paris:objsvc"
	c := transport.NewClient(dial).Configure(transport.Config{Telemetry: tel, Addr: addr})
	defer c.Close()
	if _, err := c.Call(context.Background(), "echo", []byte("x")); err != nil {
		t.Fatalf("seeding call: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Call(ctx, "echo", nil); err == nil {
		t.Fatal("call with cancelled ctx succeeded")
	}
	h, ok := tel.Health.Lookup(addr)
	if !ok {
		t.Fatalf("no health state recorded for %q", addr)
	}
	if h.ConsecutiveFailures != 0 {
		t.Errorf("cancelled call recorded %d consecutive failures, want 0", h.ConsecutiveFailures)
	}
	if h.Samples != 1 {
		t.Errorf("samples = %d, want 1 (the successful seeding call only)", h.Samples)
	}
}

func TestRemoteError(t *testing.T) {
	dial := startServer(t, func(s *transport.Server) {
		s.Handle("fail", func(body []byte) ([]byte, error) {
			return nil, errors.New("deliberate failure")
		})
	})
	c := transport.NewClient(dial)
	defer c.Close()
	_, err := c.Call(context.Background(), "fail", nil)
	var remote *transport.RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if remote.Op != "fail" || remote.Message != "deliberate failure" {
		t.Errorf("remote = %+v", remote)
	}
}

func TestUnknownOperation(t *testing.T) {
	dial := startServer(t, func(s *transport.Server) {})
	c := transport.NewClient(dial)
	defer c.Close()
	_, err := c.Call(context.Background(), "nonexistent", nil)
	var remote *transport.RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
}

func TestConnectionReuse(t *testing.T) {
	var mu sync.Mutex
	conns := 0
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := transport.NewServer()
	srv.Handle("ping", func(body []byte) ([]byte, error) { return []byte("pong"), nil })
	srv.Start(l)
	t.Cleanup(srv.Close)
	addr := l.Addr().String()
	c := transport.NewClient(func() (net.Conn, error) {
		mu.Lock()
		conns++
		mu.Unlock()
		return net.Dial("tcp", addr)
	})
	defer c.Close()
	for i := 0; i < 5; i++ {
		if _, err := c.Call(context.Background(), "ping", nil); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if conns != 1 {
		t.Errorf("dialed %d times, want 1", conns)
	}
	if c.Calls.Load() != 5 {
		t.Errorf("Calls = %d, want 5", c.Calls.Load())
	}
}

func TestRedialAfterServerRestart(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	srv := transport.NewServer()
	srv.Handle("ping", func(body []byte) ([]byte, error) { return []byte("pong"), nil })
	srv.Start(l)

	c := transport.NewClient(func() (net.Conn, error) { return net.Dial("tcp", addr) })
	defer c.Close()
	if _, err := c.Call(context.Background(), "ping", nil); err != nil {
		t.Fatalf("first call: %v", err)
	}

	// Restart the server on the same port; the pooled connection dies.
	srv.Close()
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	srv2 := transport.NewServer()
	srv2.Handle("ping", func(body []byte) ([]byte, error) { return []byte("pong2"), nil })
	srv2.Start(l2)
	t.Cleanup(srv2.Close)

	resp, err := c.Call(context.Background(), "ping", nil)
	if err != nil {
		t.Fatalf("call after restart: %v", err)
	}
	if !bytes.Equal(resp, []byte("pong2")) {
		t.Errorf("resp = %q", resp)
	}
}

func TestLargeBody(t *testing.T) {
	dial := startServer(t, func(s *transport.Server) {
		s.Handle("size", func(body []byte) ([]byte, error) {
			return []byte(fmt.Sprint(len(body))), nil
		})
	})
	c := transport.NewClient(dial)
	defer c.Close()
	body := make([]byte, 1<<20)
	resp, err := c.Call(context.Background(), "size", body)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if string(resp) != fmt.Sprint(len(body)) {
		t.Errorf("resp = %s", resp)
	}
}

func TestConcurrentCallers(t *testing.T) {
	dial := startServer(t, func(s *transport.Server) {
		s.Handle("echo", func(body []byte) ([]byte, error) { return body, nil })
	})
	c := transport.NewClient(dial)
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			msg := []byte(fmt.Sprintf("msg-%d", i))
			resp, err := c.Call(context.Background(), "echo", msg)
			if err != nil {
				errs <- err
				return
			}
			if !bytes.Equal(resp, msg) {
				errs <- fmt.Errorf("resp %q for %q", resp, msg)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestByteCounters(t *testing.T) {
	dial := startServer(t, func(s *transport.Server) {
		s.Handle("echo", func(body []byte) ([]byte, error) { return body, nil })
	})
	c := transport.NewClient(dial)
	defer c.Close()
	if _, err := c.Call(context.Background(), "echo", make([]byte, 1000)); err != nil {
		t.Fatal(err)
	}
	if c.BytesSent.Load() < 1000 {
		t.Errorf("BytesSent = %d, want >= 1000", c.BytesSent.Load())
	}
	if c.BytesReceived.Load() < 1000 {
		t.Errorf("BytesReceived = %d, want >= 1000", c.BytesReceived.Load())
	}
}

func TestDialFailure(t *testing.T) {
	c := transport.NewClient(func() (net.Conn, error) {
		return nil, errors.New("network unreachable")
	})
	if _, err := c.Call(context.Background(), "ping", nil); err == nil {
		t.Fatal("Call succeeded with failing dialer")
	}
}

func TestQuickEchoArbitraryBytes(t *testing.T) {
	dial := startServer(t, func(s *transport.Server) {
		s.Handle("echo", func(body []byte) ([]byte, error) { return body, nil })
	})
	c := transport.NewClient(dial)
	defer c.Close()
	f := func(body []byte) bool {
		resp, err := c.Call(context.Background(), "echo", body)
		return err == nil && bytes.Equal(resp, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOpsListing(t *testing.T) {
	srv := transport.NewServer()
	srv.Handle("a", func([]byte) ([]byte, error) { return nil, nil })
	srv.Handle("b", func([]byte) ([]byte, error) { return nil, nil })
	ops := srv.Ops()
	if len(ops) != 2 {
		t.Errorf("Ops = %v", ops)
	}
}

func TestServerRequestCounter(t *testing.T) {
	var srv *transport.Server
	dial := startServer(t, func(s *transport.Server) {
		srv = s
		s.Handle("ping", func(body []byte) ([]byte, error) { return nil, nil })
	})
	c := transport.NewClient(dial)
	defer c.Close()
	for i := 0; i < 3; i++ {
		if _, err := c.Call(context.Background(), "ping", nil); err != nil {
			t.Fatal(err)
		}
	}
	if srv.Requests.Load() != 3 {
		t.Errorf("Requests = %d, want 3", srv.Requests.Load())
	}
}
