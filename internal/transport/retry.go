package transport

// Retry-with-backoff policy shared by every RPC call site.
//
// GlobeDoc's client-side operations are all idempotent reads of signed or
// self-certifying data, so retrying them is always safe: a repeated read
// can at worst return the same verifiable answer twice. The only errors
// NOT worth retrying are RemoteErrors — the server received the request
// and consciously refused it; asking again changes nothing.
//
// Backoff is exponential with jitter, and both the clock and the jitter
// randomness are injectable so tests replay retry schedules
// deterministically.

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"globedoc/internal/clock"
)

// RetryPolicy governs how many times an operation is attempted and how
// long to wait between attempts. The zero value means "one attempt, no
// retry"; use DefaultRetryPolicy for sensible production defaults. A
// single policy may be shared by many clients; it is safe for concurrent
// use.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts, including the first.
	// Values below 1 behave as 1 (no retry).
	MaxAttempts int
	// BaseDelay is the wait before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (0 = uncapped).
	MaxDelay time.Duration
	// Multiplier grows the delay between consecutive retries
	// (values <= 1 mean constant delay).
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized, in
	// [0, 1]: the actual wait is delay * (1 - Jitter/2 + Jitter*u) for
	// uniform u. Jitter de-synchronizes clients hammering a recovering
	// replica.
	Jitter float64
	// Clock is the time source for backoff sleeps (nil = real clock).
	Clock clock.Clock
	// Seed fixes the jitter randomness (0 = a fixed default seed), so a
	// chaos run's retry schedule is reproducible.
	Seed int64

	mu  sync.Mutex
	rng *rand.Rand
}

// DefaultRetryPolicy returns the policy used when callers enable retries
// without tuning: 4 attempts, 2 ms initial backoff doubling to a 250 ms
// cap, half-jittered.
func DefaultRetryPolicy() *RetryPolicy {
	return &RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   2 * time.Millisecond,
		MaxDelay:    250 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.5,
	}
}

// Attempts returns the effective number of attempts (at least 1).
func (p *RetryPolicy) Attempts() int {
	if p == nil || p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

func (p *RetryPolicy) clock() clock.Clock {
	if p.Clock != nil {
		return p.Clock
	}
	return clock.Real
}

func (p *RetryPolicy) random() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rng == nil {
		seed := p.Seed
		if seed == 0 {
			seed = 1
		}
		p.rng = rand.New(rand.NewSource(seed))
	}
	return p.rng.Float64()
}

// Backoff returns the wait before the given retry (retry 1 is the wait
// between the first and second attempts). Successive calls consume the
// policy's jitter stream.
func (p *RetryPolicy) Backoff(retry int) time.Duration {
	if retry < 1 || p.BaseDelay <= 0 {
		return 0
	}
	d := float64(p.BaseDelay)
	if p.Multiplier > 1 {
		for i := 1; i < retry; i++ {
			d *= p.Multiplier
			if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
				d = float64(p.MaxDelay)
				break
			}
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		d *= 1 - p.Jitter/2 + p.Jitter*p.random()
	}
	return time.Duration(d)
}

// Do runs f up to Attempts times, sleeping the backoff between attempts,
// until f succeeds or fails with a non-retryable error. It returns the
// last error.
func (p *RetryPolicy) Do(f func() error) error {
	var err error
	for attempt := 0; attempt < p.Attempts(); attempt++ {
		if attempt > 0 {
			p.clock().Sleep(p.Backoff(attempt))
		}
		err = f()
		if err == nil || !Retryable(err) {
			return err
		}
	}
	return err
}

// Retryable reports whether an error is worth retrying. Remote errors —
// the server answered, refusing — are permanent: the replica holds its
// answer and a retry buys nothing (failing over to a different replica is
// the caller's job). So is anything wrapped by Permanent. Everything else
// (dial failures, timeouts, resets, short reads, corrupted frames) is
// transient network behaviour.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	var remote *RemoteError
	if errors.As(err, &remote) {
		return false
	}
	var perm *permanentError
	return !errors.As(err, &perm)
}

// permanentError marks an error that RetryPolicy.Do must not retry.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so RetryPolicy.Do (and Retryable) treat it as not
// worth retrying — for callers whose closures can fail in ways
// retrying cannot fix, like a security check rejecting a replica's data.
// The wrapped error still matches errors.Is/As through Unwrap.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}
