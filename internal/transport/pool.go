package transport

import (
	"context"
	"fmt"
	"net"
	"time"

	"globedoc/internal/telemetry"
)

// DefaultMaxConns is the per-client connection bound used when
// PoolConfig.MaxConns is zero.
const DefaultMaxConns = 4

// PoolConfig bounds a Client's connection pool.
type PoolConfig struct {
	// MaxConns bounds how many calls may be in flight at once — each
	// in-flight call holds one connection. 0 means DefaultMaxConns.
	MaxConns int
	// MaxIdle bounds how many warm connections are kept for reuse after
	// their call returns. 0 means MaxConns; negative disables idle
	// pooling entirely (every connection closes after its call).
	MaxIdle int
	// IdleTimeout, when positive, discards idle connections that have
	// sat unused longer than this. Reaping is lazy: a stale conn is
	// closed when a call would otherwise reuse it.
	IdleTimeout time.Duration
	// StreamBudget bounds concurrent streams per negotiated-v2
	// connection (0 = DefaultStreamBudget). It replaces the v1
	// one-call-per-connection rule: a v2 client carries up to
	// MaxConns × StreamBudget calls in flight. Ignored for v1 conns.
	StreamBudget int
}

func (p PoolConfig) maxConns() int {
	if p.MaxConns > 0 {
		return p.MaxConns
	}
	return DefaultMaxConns
}

func (p PoolConfig) streamBudget() int {
	if p.StreamBudget > 0 {
		return p.StreamBudget
	}
	return DefaultStreamBudget
}

func (p PoolConfig) maxIdle() int {
	switch {
	case p.MaxIdle > 0:
		return p.MaxIdle
	case p.MaxIdle < 0:
		return 0
	}
	return p.maxConns()
}

// idleConn is a warm pooled connection and when it went idle.
type idleConn struct {
	conn  net.Conn
	since time.Time
}

// acquire checks a connection out of the pool: it first waits for an
// in-flight slot (bounding concurrent calls at Pool.MaxConns), then
// reuses the most recently parked idle connection — lazily reaping any
// that outlived IdleTimeout — or dials a new one. reused reports whether
// the returned conn served an earlier call.
func (c *Client) acquire(ctx context.Context) (conn net.Conn, reused bool, err error) {
	c.mu.Lock()
	c.closed = false
	if c.slots == nil {
		c.slots = make(chan struct{}, c.Pool.maxConns())
	}
	slots := c.slots
	c.mu.Unlock()

	select {
	case slots <- struct{}{}:
	default:
		select {
		case slots <- struct{}{}:
		case <-ctx.Done():
			return nil, false, fmt.Errorf("transport: awaiting connection slot: %w", ctx.Err())
		}
	}

	tel := telemetry.Or(c.Telemetry)
	now := c.clock().Now()
	c.mu.Lock()
	for len(c.idle) > 0 {
		ic := c.idle[len(c.idle)-1]
		c.idle = c.idle[:len(c.idle)-1]
		if c.Pool.IdleTimeout > 0 && now.Sub(ic.since) > c.Pool.IdleTimeout {
			c.mu.Unlock()
			ic.conn.Close()
			tel.PoolIdleClosed.Inc()
			tel.PoolConns.Add(-1)
			c.mu.Lock()
			continue
		}
		c.mu.Unlock()
		tel.PoolReuse.Inc()
		return ic.conn, true, nil
	}
	c.mu.Unlock()

	conn, err = c.dialContext(ctx)
	if err != nil {
		c.releaseSlot()
		return nil, false, fmt.Errorf("transport: dial: %w", err)
	}
	tel.PoolDials.Inc()
	tel.PoolConns.Add(1)
	return conn, false, nil
}

// release returns a healthy connection to the idle pool (or closes it
// when the pool is full or the client was closed) and frees its
// in-flight slot.
func (c *Client) release(conn net.Conn) {
	now := c.clock().Now()
	c.mu.Lock()
	if !c.closed && len(c.idle) < c.Pool.maxIdle() {
		c.idle = append(c.idle, idleConn{conn: conn, since: now})
		c.mu.Unlock()
		c.releaseSlot()
		return
	}
	c.mu.Unlock()
	conn.Close()
	telemetry.Or(c.Telemetry).PoolConns.Add(-1)
	c.releaseSlot()
}

// discard closes a broken connection and frees its in-flight slot.
func (c *Client) discard(conn net.Conn) {
	conn.Close()
	telemetry.Or(c.Telemetry).PoolConns.Add(-1)
	c.releaseSlot()
}

func (c *Client) releaseSlot() {
	select {
	case <-c.slots:
	default:
	}
}

// dialContext runs dial, bounded by DialTimeout and ctx. The underlying
// DialFunc has no cancellation surface, so on timeout or cancellation
// the late connection (if any) is closed when it eventually arrives.
func (c *Client) dialContext(ctx context.Context) (net.Conn, error) {
	if c.DialTimeout <= 0 && ctx.Done() == nil {
		return c.dial()
	}
	type result struct {
		conn net.Conn
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		conn, err := c.dial()
		ch <- result{conn, err}
	}()
	reapLate := func() {
		go func() {
			if r := <-ch; r.conn != nil {
				r.conn.Close()
			}
		}()
	}
	var timeout <-chan time.Time
	if c.DialTimeout > 0 {
		t := time.NewTimer(c.DialTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case r := <-ch:
		return r.conn, r.err
	case <-timeout:
		reapLate()
		return nil, fmt.Errorf("%w after %v", ErrDialTimeout, c.DialTimeout)
	case <-ctx.Done():
		reapLate()
		return nil, ctx.Err()
	}
}

// Close closes every idle pooled connection and marks the client closed:
// in-flight calls finish, but their connections are closed on return
// instead of being pooled. Multiplexed conns with streams in flight
// drain — the last stream to finish closes them. A later Call reopens
// the pool.
func (c *Client) Close() {
	c.mu.Lock()
	c.closed = true
	idle := c.idle
	c.idle = nil
	c.mu.Unlock()
	tel := telemetry.Or(c.Telemetry)
	for _, ic := range idle {
		ic.conn.Close()
		tel.PoolConns.Add(-1)
	}
	c.muxMu.Lock()
	mconns := c.muxConns
	c.muxConns = nil
	c.muxWakeLocked()
	c.muxMu.Unlock()
	for _, mc := range mconns {
		mc.mu.Lock()
		if mc.dead {
			mc.mu.Unlock()
			continue
		}
		if mc.inflight > 0 {
			mc.draining = true
			mc.mu.Unlock()
			continue
		}
		mc.dead = true
		mc.deadErr = ErrClosed
		mc.mu.Unlock()
		mc.conn.Close()
		tel.PoolConns.Add(-1)
	}
}

// ConnsInUse reports how many connections are currently serving calls —
// a test and debugging aid. For v1 that is one per in-flight call; a
// multiplexed conn counts once however many streams it carries.
func (c *Client) ConnsInUse() int {
	c.mu.Lock()
	n := 0
	if c.slots != nil {
		n = len(c.slots)
	}
	c.mu.Unlock()
	c.muxMu.Lock()
	for _, mc := range c.muxConns {
		mc.mu.Lock()
		if !mc.dead && mc.inflight > 0 {
			n++
		}
		mc.mu.Unlock()
	}
	c.muxMu.Unlock()
	return n
}

// IdleConns reports how many warm connections are parked for reuse:
// v1 pooled conns plus multiplexed conns with no streams in flight.
func (c *Client) IdleConns() int {
	c.mu.Lock()
	n := len(c.idle)
	c.mu.Unlock()
	c.muxMu.Lock()
	for _, mc := range c.muxConns {
		mc.mu.Lock()
		if !mc.dead && mc.inflight == 0 {
			n++
		}
		mc.mu.Unlock()
	}
	c.muxMu.Unlock()
	return n
}
