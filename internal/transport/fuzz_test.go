package transport

// Fuzz targets for the v2 wire surface an untrusted peer controls: the
// multiplexed frame decoder and the version-negotiation preamble parser.
// Both are driven from raw bytes exactly as they arrive off a
// connection; the properties checked are memory-safety (no panics, no
// unbounded allocation) and encode/decode round-trip consistency.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"globedoc/internal/telemetry"
)

func FuzzFrameDecode(f *testing.F) {
	// Well-formed request and response frames, and the classic traps:
	// truncated header, unknown type, reserved flags, huge length.
	ok := func(t byte, id uint32, payload []byte) []byte {
		var buf bytes.Buffer
		if err := writeV2Frame(&buf, v2Frame{Type: t, StreamID: id, Payload: payload}); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	okTraced := func(t byte, id uint32, payload []byte, sc telemetry.SpanContext) []byte {
		var buf bytes.Buffer
		if err := writeV2Frame(&buf, v2Frame{Type: t, StreamID: id, Payload: payload, Trace: sc}); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(ok(frameRequest, 1, []byte("hello")))
	f.Add(ok(frameResponse, 0xFFFFFFFF, nil))
	f.Add(okTraced(frameRequest, 7, []byte("traced"), telemetry.SpanContext{TraceID: 42, SpanID: 43, Sampled: true}))
	f.Add(okTraced(frameRequest, 8, nil, telemetry.SpanContext{TraceID: 1, SpanID: 1}))
	f.Add([]byte{0, 0, 0, 3, 1, 0, 0})                                           // length below header size
	f.Add([]byte{0, 0, 0, 6, 9, 0, 0, 0, 0, 1})                                  // unknown frame type
	f.Add([]byte{0, 0, 0, 6, 1, 0x80, 0, 0, 0, 1})                               // reserved flags set
	f.Add([]byte{0, 0, 0, 6, 1, 0x03, 0, 0, 0, 1})                               // trace flag plus a reserved bit
	f.Add([]byte{0, 0, 0, 8, 1, 0x01, 0, 0, 0, 1, 0, 0})                         // trace flag with truncated extension
	f.Add(append([]byte{0, 0, 0, 23, 1, 0x01, 0, 0, 0, 1}, make([]byte, 17)...)) // trace extension with zero IDs
	f.Add(append([]byte{0, 0, 0, 23, 1, 0x01, 0, 0, 0, 1},
		[]byte{0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 1, 0x30}...)) // reserved trace flag bits
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // absurd length prefix
	f.Add([]byte("GD\xF2\x02"))           // a preamble is not a frame

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := readV2Frame(bytes.NewReader(data))
		if err != nil {
			// Every rejection must be a typed error, never a panic; the
			// only acceptable classes are framing violations, size bounds
			// and plain truncation.
			if !errors.Is(err, ErrProtocol) && !errors.Is(err, ErrFrameTooLarge) &&
				!errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("readV2Frame(%x) = unexpected error class %v", data, err)
			}
			return
		}
		// Decoded frames obey the invariants the mux relies on...
		if fr.Type != frameRequest && fr.Type != frameResponse {
			t.Fatalf("accepted frame with type 0x%02x", fr.Type)
		}
		if fr.Flags&^knownFlags != 0 {
			t.Fatalf("accepted frame with reserved flags 0x%02x", fr.Flags)
		}
		if fr.Flags&flagTrace != 0 && !fr.Trace.Valid() {
			t.Fatalf("accepted trace-flagged frame with invalid context %+v", fr.Trace)
		}
		if fr.Flags&flagTrace == 0 && fr.Trace.Valid() {
			t.Fatalf("unflagged frame decoded a trace context %+v", fr.Trace)
		}
		if len(fr.Payload) > MaxFrame {
			t.Fatalf("accepted %d-byte payload above MaxFrame", len(fr.Payload))
		}
		// ...and round-trip: re-encoding reproduces the consumed bytes.
		var buf bytes.Buffer
		if err := writeV2Frame(&buf, fr); err != nil {
			t.Fatalf("re-encoding accepted frame: %v", err)
		}
		consumed := 4 + binary.BigEndian.Uint32(data[:4])
		if !bytes.Equal(buf.Bytes(), data[:consumed]) {
			t.Fatalf("round-trip mismatch:\n in %x\nout %x", data[:consumed], buf.Bytes())
		}
	})
}

func FuzzVersionNegotiation(f *testing.F) {
	f.Add([]byte("GD\xF2\x01"), byte(2))
	f.Add([]byte("GD\xF2\x02"), byte(2))
	f.Add([]byte("GD\xF2\x00"), byte(2)) // version zero is not negotiable
	f.Add([]byte("GD\xF3\x02"), byte(2)) // wrong magic
	f.Add([]byte("GET "), byte(2))       // an HTTP client, say
	f.Add([]byte{}, byte(1))
	f.Add([]byte("GD\xF2\x7F"), byte(2)) // accept above proposal

	f.Fuzz(func(t *testing.T, raw []byte, proposed byte) {
		v, ok := parsePreamble(raw)
		if ok {
			if len(raw) != preambleLen || raw[0] != preambleMagic[0] || raw[1] != preambleMagic[1] || raw[2] != preambleMagic[2] {
				t.Fatalf("parsePreamble accepted non-preamble bytes %x", raw)
			}
			if v < V1 {
				t.Fatalf("parsePreamble accepted invalid version %d", v)
			}
			// Round-trip: re-encoding the parsed version reproduces raw.
			if !bytes.Equal(clientPreamble(v), raw) {
				t.Fatalf("preamble round-trip mismatch: %x -> v%d -> %x", raw, v, clientPreamble(v))
			}
		}
		agreed, err := parseAccept(raw, proposed)
		if err == nil {
			if !ok {
				t.Fatalf("parseAccept accepted bytes parsePreamble rejects: %x", raw)
			}
			if agreed > proposed {
				t.Fatalf("parseAccept agreed on version %d above proposal %d", agreed, proposed)
			}
			if agreed < V1 {
				t.Fatalf("parseAccept agreed on invalid version %d", agreed)
			}
		} else if !errors.Is(err, ErrProtocol) {
			t.Fatalf("parseAccept(%x, %d) = unexpected error class %v", raw, proposed, err)
		}
	})
}
