// Package transport implements the length-prefixed binary RPC protocol
// spoken between GlobeDoc proxies, object servers, the naming service and
// the location service.
//
// A call is one framed request (operation name + opaque body) answered by
// one framed response (status + error string + opaque body). Bodies are
// encoded by the callers with package enc, keeping this layer free of any
// knowledge of the messages it carries.
//
// The protocol is intentionally simple: one outstanding call per
// connection, client-side connection reuse, and a hard frame-size limit
// as a defence against malicious peers — remember that GlobeDoc clients
// routinely talk to untrusted servers.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"globedoc/internal/enc"
)

// MaxFrame is the largest frame either side will accept. It bounds the
// memory an untrusted peer can make us allocate.
const MaxFrame = 16 << 20 // 16 MiB

// Errors reported by the transport.
var (
	ErrFrameTooLarge = errors.New("transport: frame exceeds maximum size")
	ErrClosed        = errors.New("transport: connection closed")
)

// RemoteError is an error string returned by the far side of a call. It
// is distinguished from local transport failures so callers can tell "the
// server refused" from "the network broke".
type RemoteError struct {
	Op      string
	Message string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("transport: remote error from %q: %s", e.Op, e.Message)
}

// writeFrame sends a length-prefixed payload with a single Write call, so
// the network simulator charges one latency per frame.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	frame := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	copy(frame[4:], payload)
	_, err := w.Write(frame)
	return err
}

// readFrame receives one length-prefixed payload.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

func encodeRequest(op string, body []byte) []byte {
	w := enc.NewWriter(16 + len(op) + len(body))
	w.String(op)
	w.BytesPrefixed(body)
	return w.Bytes()
}

func decodeRequest(payload []byte) (op string, body []byte, err error) {
	r := enc.NewReader(payload)
	op = r.String()
	body = r.BytesPrefixed()
	if err := r.Finish(); err != nil {
		return "", nil, err
	}
	return op, body, nil
}

func encodeResponse(body []byte, callErr error) []byte {
	w := enc.NewWriter(16 + len(body))
	if callErr != nil {
		w.Byte(1)
		w.String(callErr.Error())
		w.BytesPrefixed(nil)
	} else {
		w.Byte(0)
		w.String("")
		w.BytesPrefixed(body)
	}
	return w.Bytes()
}

func decodeResponse(op string, payload []byte) ([]byte, error) {
	r := enc.NewReader(payload)
	status := r.Byte()
	msg := r.String()
	body := r.BytesPrefixed()
	if err := r.Finish(); err != nil {
		return nil, err
	}
	if status != 0 {
		return nil, &RemoteError{Op: op, Message: msg}
	}
	return body, nil
}

// Handler processes one request body and returns a response body. Errors
// are transported to the caller as RemoteError.
type Handler func(body []byte) ([]byte, error)

// Server dispatches framed requests to registered handlers.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]Handler

	listeners sync.Map // net.Listener -> struct{}
	conns     sync.Map // net.Conn -> struct{}
	closed    atomic.Bool
	wg        sync.WaitGroup

	// Requests counts handled calls, for tests and load metrics.
	Requests atomic.Uint64
}

// NewServer returns a server with no handlers registered.
func NewServer() *Server {
	return &Server{handlers: make(map[string]Handler)}
}

// Handle registers h for the given operation name, replacing any previous
// handler.
func (s *Server) Handle(op string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[op] = h
}

// Ops returns the registered operation names (unordered).
func (s *Server) Ops() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ops := make([]string, 0, len(s.handlers))
	for op := range s.handlers {
		ops = append(ops, op)
	}
	return ops
}

// Serve accepts connections on l until l is closed or the server is shut
// down. Each connection is served on its own goroutine; calls on a
// connection are processed sequentially.
func (s *Server) Serve(l net.Listener) error {
	s.listeners.Store(l, struct{}{})
	defer s.listeners.Delete(l)
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Start runs Serve on its own goroutine and returns immediately.
func (s *Server) Start(l net.Listener) {
	go func() { _ = s.Serve(l) }()
}

func (s *Server) serveConn(conn net.Conn) {
	s.conns.Store(conn, struct{}{})
	defer s.conns.Delete(conn)
	defer conn.Close()
	for {
		payload, err := readFrame(conn)
		if err != nil {
			return
		}
		op, body, err := decodeRequest(payload)
		var respBody []byte
		if err == nil {
			s.mu.RLock()
			h, ok := s.handlers[op]
			s.mu.RUnlock()
			if !ok {
				err = fmt.Errorf("unknown operation %q", op)
			} else {
				s.Requests.Add(1)
				respBody, err = h(body)
			}
		}
		if werr := writeFrame(conn, encodeResponse(respBody, err)); werr != nil {
			return
		}
	}
}

// Close stops accepting connections on all listeners passed to Serve,
// closes every active connection, and waits for connection goroutines to
// exit.
func (s *Server) Close() {
	s.closed.Store(true)
	s.listeners.Range(func(key, _ any) bool {
		key.(net.Listener).Close()
		return true
	})
	s.conns.Range(func(key, _ any) bool {
		key.(net.Conn).Close()
		return true
	})
	s.wg.Wait()
}

// DialFunc opens a connection to a fixed peer. The network simulator and
// plain net.Dial both fit this shape.
type DialFunc func() (net.Conn, error)

// Client issues calls to one server, reusing a single connection and
// transparently redialling after failures.
type Client struct {
	dial DialFunc

	mu   sync.Mutex
	conn net.Conn

	// BytesSent and BytesReceived count frame payload bytes, used by the
	// benchmark harness to report protocol overhead.
	BytesSent     atomic.Uint64
	BytesReceived atomic.Uint64
	// Calls counts completed calls.
	Calls atomic.Uint64
}

// NewClient returns a client that connects lazily using dial.
func NewClient(dial DialFunc) *Client {
	return &Client{dial: dial}
}

// Call sends op with body and waits for the response. It retries once on
// a stale pooled connection.
func (c *Client) Call(op string, body []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := c.callLocked(op, body, c.conn != nil)
	if err != nil {
		return nil, err
	}
	c.Calls.Add(1)
	return resp, nil
}

func (c *Client) callLocked(op string, body []byte, mayRetry bool) ([]byte, error) {
	if c.conn == nil {
		conn, err := c.dial()
		if err != nil {
			return nil, fmt.Errorf("transport: dial: %w", err)
		}
		c.conn = conn
	}
	req := encodeRequest(op, body)
	if err := writeFrame(c.conn, req); err != nil {
		c.resetLocked()
		if mayRetry {
			return c.callLocked(op, body, false)
		}
		return nil, fmt.Errorf("transport: send %q: %w", op, err)
	}
	c.BytesSent.Add(uint64(len(req)) + 4)
	payload, err := readFrame(c.conn)
	if err != nil {
		c.resetLocked()
		if mayRetry {
			return c.callLocked(op, body, false)
		}
		return nil, fmt.Errorf("transport: receive %q: %w", op, err)
	}
	c.BytesReceived.Add(uint64(len(payload)) + 4)
	return decodeResponse(op, payload)
}

func (c *Client) resetLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
	}
}

// Close drops the pooled connection.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.resetLocked()
}
