// Package transport implements the length-prefixed binary RPC protocol
// spoken between GlobeDoc proxies, object servers, the naming service and
// the location service.
//
// A call is one framed request (operation name + opaque body) answered by
// one framed response (status + error string + opaque body). Bodies are
// encoded by the callers with package enc, keeping this layer free of any
// knowledge of the messages it carries.
//
// The protocol is intentionally simple: one outstanding call per
// connection, client-side connection reuse, and a hard frame-size limit
// as a defence against malicious peers — remember that GlobeDoc clients
// routinely talk to untrusted servers.
package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"globedoc/internal/clock"
	"globedoc/internal/enc"
	"globedoc/internal/telemetry"
)

// MaxFrame is the largest frame either side will accept. It bounds the
// memory an untrusted peer can make us allocate.
const MaxFrame = 16 << 20 // 16 MiB

// Errors reported by the transport.
var (
	ErrFrameTooLarge = errors.New("transport: frame exceeds maximum size")
	ErrClosed        = errors.New("transport: connection closed")
	ErrDialTimeout   = errors.New("transport: dial timed out")
)

// RemoteError is an error string returned by the far side of a call. It
// is distinguished from local transport failures so callers can tell "the
// server refused" from "the network broke".
type RemoteError struct {
	Op      string
	Message string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("transport: remote error from %q: %s", e.Op, e.Message)
}

// unknownOpPrefix starts the error message a Server returns for an
// unregistered operation. IsUnknownOp matches on it, so it is part of the
// wire contract: clients probe for newer operations (e.g. loc.lookup2)
// and latch a fallback when the peer predates them.
const unknownOpPrefix = "unknown operation "

// IsUnknownOp reports whether err is a remote refusal for an operation
// the serving process does not implement — the signal version-probing
// clients use to fall back to an older wire operation.
func IsUnknownOp(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && strings.HasPrefix(re.Message, unknownOpPrefix)
}

// writeFrame sends a length-prefixed payload with a single Write call, so
// the network simulator charges one latency per frame.
func writeFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	frame := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	copy(frame[4:], payload)
	_, err := w.Write(frame)
	return err
}

// readFrame receives one length-prefixed payload.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	return readFrameBody(r, hdr[:])
}

// readFrameBody receives the payload of a v1 frame whose 4-byte length
// header has already been consumed — the server peeks the first bytes
// of every connection to detect the v2 negotiation preamble and hands
// the header here when the peer turned out to speak v1.
func readFrameBody(r io.Reader, hdr []byte) ([]byte, error) {
	n := binary.BigEndian.Uint32(hdr)
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// encodeRequest encodes a v1 request envelope. A valid sc is appended
// as a fixed-width trailing trace-context extension (trace ID, parent
// span ID, trace flags) after the body — v2 carries the same context in
// the frame header instead, so v2 requests pass the zero sc here.
func encodeRequest(op string, body []byte, sc telemetry.SpanContext) []byte {
	w := enc.NewWriter(16 + len(op) + len(body) + traceExtLen)
	w.String(op)
	w.BytesPrefixed(body)
	if sc.Valid() {
		w.Uint64(sc.TraceID)
		w.Uint64(sc.SpanID)
		var tf byte
		if sc.Sampled {
			tf = traceFlagSampled
		}
		w.Byte(tf)
	}
	return w.Bytes()
}

func decodeRequest(payload []byte) (op string, body []byte, sc telemetry.SpanContext, err error) {
	r := enc.NewReader(payload)
	op = r.String()
	body = r.BytesPrefixed()
	if r.Err() == nil && r.Remaining() == traceExtLen {
		// Optional trace-context trailer from a tracing v1 peer.
		sc.TraceID = r.Uint64()
		sc.SpanID = r.Uint64()
		sc.Sampled = r.Byte()&traceFlagSampled != 0
	}
	if err := r.Finish(); err != nil {
		return "", nil, telemetry.SpanContext{}, err
	}
	if sc != (telemetry.SpanContext{}) && !sc.Valid() {
		return "", nil, telemetry.SpanContext{}, fmt.Errorf("request %q carries trace context with zero trace or span ID", op)
	}
	return op, body, sc, nil
}

func encodeResponse(body []byte, callErr error) []byte {
	w := enc.NewWriter(16 + len(body))
	if callErr != nil {
		w.Byte(1)
		w.String(callErr.Error())
		w.BytesPrefixed(nil)
	} else {
		w.Byte(0)
		w.String("")
		w.BytesPrefixed(body)
	}
	return w.Bytes()
}

func decodeResponse(op string, payload []byte) ([]byte, error) {
	r := enc.NewReader(payload)
	status := r.Byte()
	msg := r.String()
	body := r.BytesPrefixed()
	if err := r.Finish(); err != nil {
		return nil, err
	}
	if status != 0 {
		return nil, &RemoteError{Op: op, Message: msg}
	}
	return body, nil
}

// Handler processes one request body and returns a response body. Errors
// are transported to the caller as RemoteError.
type Handler func(body []byte) ([]byte, error)

// HandlerCtx is a Handler that also receives the request's context,
// which carries the adopted trace context (telemetry.SpanContextFrom)
// so server-side spans started under it join the caller's distributed
// trace.
type HandlerCtx func(ctx context.Context, body []byte) ([]byte, error)

// DefaultServerStreams bounds concurrently executing handlers per v2
// connection when Server.StreamLimit is zero.
const DefaultServerStreams = 64

// Server dispatches framed requests to registered handlers.
type Server struct {
	// IdleTimeout, when positive, bounds how long a connection may sit
	// between frames (and how long a response write may take) before the
	// server drops it — a defence against stalled or half-dead peers
	// pinning goroutines forever. A v2 connection with streams in flight
	// is not idle: the timer only runs while no handler is active. Set
	// before Serve.
	IdleTimeout time.Duration
	// MaxVersion caps the protocol version the server will negotiate
	// (0 = MaxSupportedVersion). V1 yields a negotiation-aware server
	// that still refuses multiplexing. Set before Serve.
	MaxVersion byte
	// DisableNegotiation makes the server behave like a pre-v2 build:
	// the preamble is read as an oversized v1 length header and the
	// connection dropped. Compatibility tests use it to stand in for old
	// deployments. Set before Serve.
	DisableNegotiation bool
	// StreamLimit bounds concurrently executing handlers per v2
	// connection (0 = DefaultServerStreams); excess frames wait in the
	// read loop, applying backpressure. Set before Serve.
	StreamLimit int
	// Telemetry records per-operation serve counts and spans; nil falls
	// back to the process-wide telemetry.Default(). Set before Serve.
	Telemetry *telemetry.Telemetry
	// Clock is the time source for idle deadlines (nil = real clock).
	Clock clock.Clock

	mu       sync.RWMutex
	handlers map[string]HandlerCtx

	listeners sync.Map // net.Listener -> struct{}
	conns     sync.Map // net.Conn -> struct{}
	closed    atomic.Bool
	wg        sync.WaitGroup

	// Requests counts handled calls, for tests and load metrics.
	Requests atomic.Uint64
}

// NewServer returns a server with no handlers registered.
func NewServer() *Server {
	return &Server{handlers: make(map[string]HandlerCtx)}
}

// Handle registers h for the given operation name, replacing any previous
// handler.
func (s *Server) Handle(op string, h Handler) {
	s.HandleCtx(op, func(_ context.Context, body []byte) ([]byte, error) { return h(body) })
}

// HandleCtx registers a context-aware handler for the given operation
// name, replacing any previous handler.
func (s *Server) HandleCtx(op string, h HandlerCtx) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[op] = h
}

// Ops returns the registered operation names (unordered).
func (s *Server) Ops() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ops := make([]string, 0, len(s.handlers))
	for op := range s.handlers {
		ops = append(ops, op)
	}
	return ops
}

// Serve accepts connections on l until l is closed or the server is shut
// down. Each connection is served on its own goroutine; calls on a
// connection are processed sequentially.
func (s *Server) Serve(l net.Listener) error {
	s.listeners.Store(l, struct{}{})
	defer s.listeners.Delete(l)
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.closed.Load() {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.serveConn(conn)
		}()
	}
}

// Start runs Serve on its own goroutine and returns immediately.
func (s *Server) Start(l net.Listener) {
	go func() { _ = s.Serve(l) }()
}

// clock returns the server's time source.
func (s *Server) clock() clock.Clock {
	if s.Clock != nil {
		return s.Clock
	}
	return clock.Real
}

// maxVersion returns the highest protocol version this server will
// agree to.
func (s *Server) maxVersion() byte {
	if s.MaxVersion >= V1 {
		return s.MaxVersion
	}
	return MaxSupportedVersion
}

// serveConn peeks the connection's first four bytes: a negotiation
// preamble selects the agreed protocol version, anything else is the
// length header of a classic v1 frame.
func (s *Server) serveConn(conn net.Conn) {
	s.conns.Store(conn, struct{}{})
	defer s.conns.Delete(conn)
	defer conn.Close()
	if s.IdleTimeout > 0 {
		// A failed SetDeadline means the conn is already dead; an
		// unarmed idle timeout must not pin this goroutine forever.
		if err := conn.SetDeadline(s.clock().Now().Add(s.IdleTimeout)); err != nil {
			return
		}
	}
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return
	}
	if !s.DisableNegotiation {
		if proposed, ok := parsePreamble(hdr[:]); ok {
			agreed := s.maxVersion()
			if proposed < agreed {
				agreed = proposed
			}
			if _, err := conn.Write(clientPreamble(agreed)); err != nil {
				return
			}
			telemetry.Or(s.Telemetry).Negotiations.With(versionLabel(agreed)).Inc()
			if agreed >= V2 {
				s.serveV2(conn)
			} else {
				s.serveV1(conn, nil)
			}
			return
		}
	}
	s.serveV1(conn, hdr[:])
}

// serveV1 runs the classic one-call-at-a-time loop. preread, when
// non-nil, is the already-consumed length header of the first frame.
func (s *Server) serveV1(conn net.Conn, preread []byte) {
	for {
		var payload []byte
		var err error
		if preread != nil {
			// The idle deadline for this first frame was armed before
			// the header was peeked.
			payload, err = readFrameBody(conn, preread)
			preread = nil
		} else {
			if s.IdleTimeout > 0 {
				if derr := conn.SetDeadline(s.clock().Now().Add(s.IdleTimeout)); derr != nil {
					return
				}
			}
			payload, err = readFrame(conn)
		}
		if err != nil {
			return
		}
		resp := s.dispatch(payload, telemetry.SpanContext{})
		if s.IdleTimeout > 0 {
			if derr := conn.SetDeadline(s.clock().Now().Add(s.IdleTimeout)); derr != nil {
				return
			}
		}
		if werr := writeFrame(conn, resp); werr != nil {
			return
		}
	}
}

// serveV2 runs the multiplexed loop: each request frame is handled on
// its own goroutine and answered on the stream it arrived on, so one
// slow handler never blocks responses for its siblings. Any frame that
// is not a well-formed request — including a re-sent negotiation
// preamble attempting a mid-connection downgrade — drops the
// connection.
func (s *Server) serveV2(conn net.Conn) {
	if s.IdleTimeout > 0 {
		// Clear the negotiation deadline; from here on reads and writes
		// are armed separately so a parked handler on one stream cannot
		// leave a stale deadline that kills sibling traffic.
		if err := conn.SetDeadline(time.Time{}); err != nil {
			return
		}
	}
	limit := s.StreamLimit
	if limit <= 0 {
		limit = DefaultServerStreams
	}
	sem := make(chan struct{}, limit)
	var (
		wmu    sync.Mutex
		active atomic.Int64
		wg     sync.WaitGroup
	)
	defer wg.Wait()
	for {
		if s.IdleTimeout > 0 {
			var deadline time.Time // zero: no idle reaping while streams are active
			if active.Load() == 0 {
				deadline = s.clock().Now().Add(s.IdleTimeout)
			}
			if err := conn.SetReadDeadline(deadline); err != nil {
				return
			}
		}
		f, err := readV2Frame(conn)
		if err != nil {
			return
		}
		if f.Type != frameRequest {
			return
		}
		sem <- struct{}{} // backpressure: bound concurrent handlers
		active.Add(1)
		wg.Add(1)
		go func(f v2Frame) {
			defer wg.Done()
			resp := s.dispatch(f.Payload, f.Trace)
			wmu.Lock()
			var werr error
			if s.IdleTimeout > 0 {
				werr = conn.SetWriteDeadline(s.clock().Now().Add(s.IdleTimeout))
			}
			if werr == nil {
				werr = writeV2Frame(conn, v2Frame{Type: frameResponse, StreamID: f.StreamID, Payload: resp})
			}
			wmu.Unlock()
			if active.Add(-1) == 0 && s.IdleTimeout > 0 && werr == nil {
				// The conn just quiesced: restart the idle clock under
				// the blocked read loop (SetReadDeadline takes effect on
				// an in-progress Read).
				werr = conn.SetReadDeadline(s.clock().Now().Add(s.IdleTimeout))
			}
			<-sem
			if werr != nil {
				conn.Close() // unblocks the read loop; conn is unusable
			}
		}(f)
	}
}

// dispatch decodes one request payload, runs its handler and returns
// the encoded response. Shared by the v1 loop and every v2 stream.
// frameTrace is the span context a v2 frame header carried (the zero
// value for v1, whose context rides in the request envelope instead);
// either way, a valid incoming context is adopted so the rpc.serve span
// — and every handler span under it — exports with the caller's trace
// ID.
func (s *Server) dispatch(payload []byte, frameTrace telemetry.SpanContext) []byte {
	op, body, sc, err := decodeRequest(payload)
	if frameTrace.Valid() {
		sc = frameTrace
	}
	var respBody []byte
	if err == nil {
		s.mu.RLock()
		h, ok := s.handlers[op]
		s.mu.RUnlock()
		if !ok {
			err = fmt.Errorf("%s%q", unknownOpPrefix, op)
		} else {
			s.Requests.Add(1)
			tel := telemetry.Or(s.Telemetry)
			sp := tel.Tracer.StartSpanFrom("rpc.serve", sc)
			sp.Annotate("op", op)
			if sc.Valid() {
				// The parent span lives in the calling process: mark the
				// boundary for the trace renderer.
				sp.Annotate("remote", "true")
			}
			//lint:ignore ctxfirst the server is this process's request-tree root: there is no upstream ctx to inherit, and cancellation arrives as connection teardown, not ctx propagation
			ctx := telemetry.ContextWith(context.Background(), sp.Context())
			respBody, err = h(ctx, body)
			outcome := "ok"
			if err != nil {
				outcome = "error"
			}
			sp.Annotate("outcome", outcome)
			sp.End()
			tel.RPCServed.With(op, outcome).Inc()
		}
	}
	return encodeResponse(respBody, err)
}

// Close stops accepting connections on all listeners passed to Serve,
// closes every active connection, and waits for connection goroutines to
// exit.
func (s *Server) Close() {
	s.closed.Store(true)
	s.listeners.Range(func(key, _ any) bool {
		key.(net.Listener).Close()
		return true
	})
	s.conns.Range(func(key, _ any) bool {
		key.(net.Conn).Close()
		return true
	})
	s.wg.Wait()
}

// DialFunc opens a connection to a fixed peer. The network simulator and
// plain net.Dial both fit this shape.
type DialFunc func() (net.Conn, error)

// Client issues calls to one server over a bounded pool of connections.
// Each call checks a connection out of the pool (reusing an idle one or
// dialling), performs one framed exchange on it, and returns it. Calls
// from different goroutines therefore proceed in parallel up to the
// pool's connection bound instead of serialising on a single conn.
type Client struct {
	dial DialFunc

	// DialTimeout bounds each connection attempt (0 = unbounded).
	DialTimeout time.Duration
	// CallTimeout bounds each call attempt end to end — request write
	// through response read (0 = unbounded). A stalled or half-dead
	// replica then costs one timeout, not a hang.
	CallTimeout time.Duration
	// Retry, when set, governs redialling and re-issuing after transient
	// failures with exponential backoff. When nil, the legacy behaviour
	// applies: one immediate retry, and only when the failure hit a
	// reused (possibly stale) pooled connection.
	Retry *RetryPolicy
	// Telemetry records per-op call counts, retry counts, pool activity
	// and spans; nil falls back to the process-wide telemetry.Default().
	Telemetry *telemetry.Telemetry
	// Pool bounds the connection pool; the zero value means up to
	// DefaultMaxConns concurrent connections with no idle reaping.
	Pool PoolConfig
	// Clock is the time source for call deadlines and idle-conn age
	// checks (nil = real clock). Tests inject a fake so deadline and
	// reaping behaviour replays deterministically.
	Clock clock.Clock
	// Version pins the wire protocol: 0 negotiates on first contact
	// (preferring v2, falling back to v1 against pre-negotiation
	// servers), V1 forces classic framing with no preamble, V2 refuses
	// peers that cannot speak v2. The negotiation outcome is latched for
	// the client's lifetime. Set before the first call.
	Version byte
	// Addr, when set, is the contact address this client dials, used
	// purely as the telemetry key for per-address replica health: every
	// call attempt records a success (with its RTT) or failure sample
	// into Telemetry.Health under this label. Empty disables health
	// recording. Set before the first call.
	Addr string

	mu     sync.Mutex
	slots  chan struct{} // in-flight call permits; cap latched on first use
	idle   []idleConn    // LIFO stack of warm connections
	closed bool          // set by Close; cleared by the next acquire

	// v2 multiplexing state (see mux.go).
	peerVersion atomic.Uint32 // latched negotiation outcome (0 = unknown)
	// peerTrailerAware latches that the v1 peer is positively known to
	// tolerate the trace-context request-envelope trailer: only a
	// negotiation-aware server capped at v1 proves it (it answered a
	// well-formed accept, so it post-dates the trailer). A pre-v2 peer's
	// decoder rejects trailing envelope bytes, so without this proof a
	// traced v1 call drops its context at the process boundary instead.
	peerTrailerAware atomic.Bool
	muxMu            sync.Mutex
	muxConns         []*muxConn    // live negotiated-v2 connections
	muxDialing       int           // dials in flight, counted against MaxConns
	muxNotify        chan struct{} // closed+replaced when stream capacity frees up

	// BytesSent and BytesReceived count frame payload bytes, used by the
	// benchmark harness to report protocol overhead.
	BytesSent     atomic.Uint64
	BytesReceived atomic.Uint64
	// Calls counts completed calls.
	Calls atomic.Uint64
	// Retries counts extra attempts beyond the first, per call site.
	Retries atomic.Uint64
}

// NewClient returns a client that connects lazily using dial.
func NewClient(dial DialFunc) *Client {
	return &Client{dial: dial}
}

// Configure applies cfg's timeouts, retry policy, telemetry and pool
// bounds to the client and returns it. Configure before the first call;
// the pool's size is latched when the first call runs.
func (c *Client) Configure(cfg Config) *Client {
	c.DialTimeout = cfg.DialTimeout
	c.CallTimeout = cfg.CallTimeout
	c.Retry = cfg.Retry
	c.Telemetry = cfg.Telemetry
	c.Pool = cfg.Pool
	c.Version = cfg.Version
	if cfg.Addr != "" {
		// An empty cfg.Addr preserves an address set at construction
		// (object.NewClient knows it; a shared Config does not).
		c.Addr = cfg.Addr
	}
	return c
}

// Config bundles the robustness and observability knobs threaded through
// every RPC call site: attempt timeouts, the retry policy, the telemetry
// sink and the connection-pool bounds. The zero Config leaves a client
// with unbounded waits, legacy single-retry semantics, the shared
// default telemetry and a DefaultMaxConns-sized pool.
type Config struct {
	DialTimeout time.Duration
	CallTimeout time.Duration
	Retry       *RetryPolicy
	Telemetry   *telemetry.Telemetry
	Pool        PoolConfig
	// Version pins the wire protocol (see Client.Version): 0 negotiates
	// preferring v2, V1 forces classic framing, V2 requires v2.
	Version byte
	// Addr labels health samples with the peer's contact address (see
	// Client.Addr). Empty leaves any address set at construction.
	Addr string
}

// Call sends op with body and waits for the response. ctx cancellation
// aborts slot acquisition, dialling and the in-flight exchange (the
// connection is closed rather than returned to the pool). With a
// RetryPolicy configured it retries transient failures with backoff;
// otherwise it retries once when the failure hit a reused pooled
// connection. Every call is recorded as one rpc.call span (annotated
// with the attempt count) and one rpc_calls_total{op,outcome} increment;
// extra attempts also count into rpc_retries_total. When ctx carries a
// span context the rpc.call span joins that trace, and the span's own
// context rides the wire so the server's rpc.serve span joins it too.
// Every attempt additionally records a per-address health sample when
// Addr is set — except attempts that failed only because ctx was
// already cancelled or past its deadline, which say nothing about the
// replica and are not held against it.
func (c *Client) Call(ctx context.Context, op string, body []byte) ([]byte, error) {
	if ctx == nil {
		//lint:ignore ctxfirst nil-ctx compatibility: legacy callers predate the ctx-first API and a nil ctx must mean "no cancellation", not a panic
		ctx = context.Background()
	}
	tel := telemetry.Or(c.Telemetry)
	caller := telemetry.SpanContextFrom(ctx)
	sp := tel.Tracer.StartSpanFrom("rpc.call", caller)
	sp.Annotate("op", op)
	attempts := 1

	// When the caller is tracing, the rpc.call span is the wire-
	// propagated parent: the server's rpc.serve span nests under it,
	// completing the client→server tree. A call outside any trace stays
	// untraced on the wire (the peer starts its own root, unmarked).
	var wire telemetry.SpanContext
	if caller.Valid() {
		wire = sp.Context()
	}
	run := func() ([]byte, bool, error) {
		start := c.clock().Now()
		resp, reused, err := c.attempt(ctx, wire, op, body)
		switch {
		case err == nil:
			tel.Health.RecordSuccess(c.Addr, c.clock().Now().Sub(start))
		case ctx.Err() == nil:
			// A caller-side cancellation or expired deadline says nothing
			// about the replica's health; only attempts the caller still
			// wanted count as failure evidence.
			tel.Health.RecordFailure(c.Addr)
		}
		return resp, reused, err
	}

	var resp []byte
	var err error
	if c.Retry == nil {
		// Legacy semantics: one immediate retry, only for failures on a
		// connection that might simply have gone stale in the pool.
		var reused bool
		resp, reused, err = run()
		if err != nil && reused && Retryable(err) && ctx.Err() == nil {
			c.Retries.Add(1)
			tel.RPCRetries.Inc()
			attempts++
			resp, _, err = run()
		}
	} else {
		for attempt := 0; attempt < c.Retry.Attempts(); attempt++ {
			if attempt > 0 {
				c.Retries.Add(1)
				tel.RPCRetries.Inc()
				attempts++
				c.Retry.clock().Sleep(c.Retry.Backoff(attempt))
			}
			resp, _, err = run()
			if err == nil || !Retryable(err) || ctx.Err() != nil {
				break
			}
		}
	}
	if err == nil {
		c.Calls.Add(1)
	}

	outcome := "ok"
	if err != nil {
		outcome = "error"
		sp.Annotate("error", err.Error())
	}
	sp.Annotate("attempts", strconv.Itoa(attempts))
	sp.Annotate("outcome", outcome)
	sp.End()
	tel.RPCCalls.With(op, outcome).Inc()
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// attempt routes one call attempt to the negotiated protocol: v2
// multiplexed streams by default, classic v1 framing when pinned or
// when negotiation latched a v1-only peer. A fallback discovered
// mid-dial re-routes the same attempt through the v1 path. sc is the
// trace context to propagate (frame extension on v2, envelope trailer
// on v1) — but the trailer is only emitted toward a peer that latched
// peerTrailerAware: a genuinely old server's decoder rejects trailing
// envelope bytes, so against one (or a pinned-V1 peer of unknown
// vintage) the trace ends at the process boundary instead of failing
// every traced call.
func (c *Client) attempt(ctx context.Context, sc telemetry.SpanContext, op string, body []byte) (resp []byte, reused bool, err error) {
	if !c.useV1() {
		resp, reused, err = c.attemptMux(ctx, sc, op, body)
		if !errors.Is(err, errFellBackToV1) {
			return resp, reused, err
		}
	}
	if !c.peerTrailerAware.Load() {
		sc = telemetry.SpanContext{}
	}
	return c.attemptV1(ctx, sc, op, body)
}

// useV1 reports whether calls must speak classic v1 framing: either the
// client is pinned to V1, or auto-negotiation already learned the peer
// cannot speak v2.
func (c *Client) useV1() bool {
	if c.Version == V1 {
		return true
	}
	return c.Version != V2 && byte(c.peerVersion.Load()) == V1
}

// attemptV1 performs one complete v1 call attempt: check a connection
// out of the pool (dialling if necessary), exchange one frame pair, and
// return the connection. Transport-level failures discard the
// connection so a retry dials fresh; remote errors keep it warm. reused
// reports whether the attempt ran on a pooled (possibly stale)
// connection.
func (c *Client) attemptV1(ctx context.Context, sc telemetry.SpanContext, op string, body []byte) (resp []byte, reused bool, err error) {
	conn, reused, err := c.acquire(ctx)
	if err != nil {
		return nil, false, err
	}
	resp, err = c.exchange(ctx, conn, sc, op, body)
	if err != nil && Retryable(err) {
		// The stream is broken or in an unknown state (includes a
		// malformed, possibly corrupted, response): drop the conn.
		c.discard(conn)
		return nil, reused, err
	}
	c.release(conn)
	return resp, reused, err
}

// exchange runs one framed request/response on conn, bounded by the
// tighter of CallTimeout and ctx's deadline; ctx cancellation force-fails
// the in-flight I/O.
func (c *Client) exchange(ctx context.Context, conn net.Conn, sc telemetry.SpanContext, op string, body []byte) ([]byte, error) {
	armed, err := c.armDeadline(ctx, conn)
	if err != nil {
		return nil, ctxError(ctx, fmt.Errorf("transport: arming deadline for %q: %w", op, err))
	}
	stopWatch := watchCancel(ctx, conn)
	req := encodeRequest(op, body, sc)
	if err := writeFrame(conn, req); err != nil {
		stopWatch()
		return nil, ctxError(ctx, fmt.Errorf("transport: send %q: %w", op, err))
	}
	c.BytesSent.Add(uint64(len(req)) + 4)
	payload, err := readFrame(conn)
	stopWatch()
	if err != nil {
		return nil, ctxError(ctx, fmt.Errorf("transport: receive %q: %w", op, err))
	}
	c.BytesReceived.Add(uint64(len(payload)) + 4)
	if armed {
		// A conn whose deadline cannot be cleared must not be pooled:
		// the stale deadline would poison the next call on it. The
		// error is retryable, so attempt discards the conn.
		if err := conn.SetDeadline(time.Time{}); err != nil {
			return nil, fmt.Errorf("transport: clearing deadline after %q: %w", op, err)
		}
	}
	return decodeResponse(op, payload)
}

// clock returns the client's time source.
func (c *Client) clock() clock.Clock {
	if c.Clock != nil {
		return c.Clock
	}
	return clock.Real
}

// armDeadline sets conn's deadline to the tighter of CallTimeout and
// ctx's deadline, reporting whether any deadline was armed.
func (c *Client) armDeadline(ctx context.Context, conn net.Conn) (bool, error) {
	var deadline time.Time
	if c.CallTimeout > 0 {
		deadline = c.clock().Now().Add(c.CallTimeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	if deadline.IsZero() {
		return false, nil
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return false, err
	}
	return true, nil
}

// watchCancel force-expires conn's deadline when ctx is cancelled, so a
// blocked read or write returns promptly. The returned stop function
// must be called before conn is reused or pooled; it waits for the
// watcher to exit so no late SetDeadline can poison a pooled conn.
func watchCancel(ctx context.Context, conn net.Conn) (stop func()) {
	done := ctx.Done()
	if done == nil {
		return func() {}
	}
	stopped := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		select {
		case <-done:
			// Best-effort poison: if SetDeadline fails the conn is
			// already torn down, which achieves the same thing.
			_ = conn.SetDeadline(time.Unix(1, 0)) // far past: fail I/O now
		case <-stopped:
		}
	}()
	return func() {
		close(stopped)
		<-exited
	}
}

// ctxError folds ctx's cancellation cause into err so callers can
// errors.Is against context.Canceled / context.DeadlineExceeded when the
// I/O failure was cancellation-induced.
func ctxError(ctx context.Context, err error) error {
	if cerr := ctx.Err(); cerr != nil {
		return fmt.Errorf("%w (%v)", cerr, err)
	}
	return err
}
