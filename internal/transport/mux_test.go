package transport_test

// v2 multiplexing semantics: the per-connection stream budget replaces
// the v1 one-call-per-slot rule, saturation waits honour the caller's
// context, and a stream that times out abandons only itself — sibling
// streams and the connection survive (no head-of-line blocking, no
// poisoned pool).

import (
	"context"
	"errors"
	"os"
	"sync"
	"testing"
	"time"

	"globedoc/internal/clock"
	"globedoc/internal/transport"
)

func TestMuxStreamBudgetBoundsConnections(t *testing.T) {
	// Budget 2 per conn, 6 concurrent parked calls: the pool must open
	// exactly ceil(6/2) = 3 connections, never more.
	release := make(chan struct{})
	dial, arrived := parkingServer(t, release)
	cd := &countingDial{dial: dial}
	c := transport.NewClient(cd.fn())
	c.Pool = transport.PoolConfig{MaxConns: 8, StreamBudget: 2}
	defer c.Close()

	const calls = 6
	var wg sync.WaitGroup
	errs := make([]error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Call(context.Background(), "park", nil)
		}(i)
	}
	for i := 0; i < calls; i++ {
		<-arrived // all six calls are concurrently in flight
	}
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if got := cd.count.Load(); got != 3 {
		t.Errorf("6 calls at budget 2 dialed %d conns, want 3", got)
	}
}

func TestMuxSaturationWaitCancelledByContext(t *testing.T) {
	// One conn, one stream: a second call must wait for stream capacity
	// and honour its context while waiting.
	release := make(chan struct{})
	defer close(release)
	dial, arrived := parkingServer(t, release)
	c := transport.NewClient(dial)
	c.Pool = transport.PoolConfig{MaxConns: 1, StreamBudget: 1}
	defer c.Close()

	go func() {
		_, _ = c.Call(context.Background(), "park", nil)
	}()
	<-arrived // the parked call owns the only stream slot

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := c.Call(ctx, "park", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded while awaiting a stream slot", err)
	}
}

func TestMuxSlowStreamDoesNotBlockSiblings(t *testing.T) {
	// The HoL property: with every call multiplexed onto ONE connection,
	// fast calls complete while a slow sibling stream is still parked.
	release := make(chan struct{})
	dial, arrived := parkingServer(t, release)
	cd := &countingDial{dial: dial}
	c := transport.NewClient(cd.fn())
	c.Pool = transport.PoolConfig{MaxConns: 1}
	defer c.Close()

	slowDone := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), "park", nil)
		slowDone <- err
	}()
	<-arrived // the slow stream is in flight

	for i := 0; i < 5; i++ {
		if _, err := c.Call(context.Background(), "ping", nil); err != nil {
			t.Fatalf("fast call %d behind a parked stream: %v", i, err)
		}
	}
	close(release)
	if err := <-slowDone; err != nil {
		t.Fatalf("slow call: %v", err)
	}
	if got := cd.count.Load(); got != 1 {
		t.Fatalf("dialed %d conns, want 1 (fast calls must share the slow stream's conn)", got)
	}
}

func TestMuxStreamTimeoutAbandonsOnlyItself(t *testing.T) {
	// A stream whose CallTimeout fires gives up alone: the connection
	// stays pooled and siblings keep completing on it. The timeout runs
	// on the injectable clock, so no real time is slept.
	release := make(chan struct{})
	defer close(release)
	dial, arrived := parkingServer(t, release)
	cd := &countingDial{dial: dial}
	// The fake clock starts at the real present so armed conn write
	// deadlines (kernel real-time) land in the future, not in 1970.
	clk := clock.NewFake(time.Now())
	c := transport.NewClient(cd.fn()).Configure(transport.Config{
		CallTimeout: 30 * time.Second,
	})
	c.Clock = clk
	c.Pool = transport.PoolConfig{MaxConns: 1}
	defer c.Close()

	timedOut := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), "park", nil)
		timedOut <- err
	}()
	<-arrived // the doomed stream is parked server-side
	// Wait until the caller is parked in its timeout select, then fire
	// the fake-clock timer.
	for clk.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	clk.Advance(31 * time.Second)
	err := <-timedOut
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded from the stream timeout", err)
	}
	// The conn must still be healthy for new streams.
	for i := 0; i < 3; i++ {
		if _, err := c.Call(context.Background(), "ping", nil); err != nil {
			t.Fatalf("call %d after a sibling stream timed out: %v", i, err)
		}
	}
	if got := cd.count.Load(); got != 1 {
		t.Errorf("dialed %d conns, want 1 (a stream timeout must not poison the conn)", got)
	}
}
