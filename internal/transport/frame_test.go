package transport

// Unit tests for the v2 frame parser's size bound. The length prefilter
// in readV2Frame budgets for the optional trace extension whether or
// not the frame carries one, so an untraced frame can reach the parser
// with up to traceExtLen payload bytes above MaxFrame — the exact bound
// is parseV2Frame's job, keeping decode∘encode the identity (writeV2Frame
// refuses such payloads too).

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"globedoc/internal/telemetry"
)

func TestParseV2FramePayloadBound(t *testing.T) {
	build := func(traced bool, payloadLen int) []byte {
		body := make([]byte, 0, v2FrameOverhead+traceExtLen+payloadLen)
		var flags byte
		if traced {
			flags = flagTrace
		}
		body = append(body, frameRequest, flags)
		body = binary.BigEndian.AppendUint32(body, 1)
		if traced {
			body = appendTraceExt(body, telemetry.SpanContext{TraceID: 1, SpanID: 2, Sampled: true})
		}
		return append(body, make([]byte, payloadLen)...)
	}
	for _, tc := range []struct {
		name    string
		traced  bool
		payload int
		wantErr error
	}{
		{"untraced at bound", false, MaxFrame, nil},
		{"untraced above bound", false, MaxFrame + 1, ErrFrameTooLarge},
		{"traced at bound", true, MaxFrame, nil},
		{"traced above bound", true, MaxFrame + 1, ErrFrameTooLarge},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f, err := parseV2Frame(build(tc.traced, tc.payload))
			if tc.wantErr != nil {
				if !errors.Is(err, tc.wantErr) {
					t.Fatalf("err = %v, want %v", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("parseV2Frame: %v", err)
			}
			if len(f.Payload) != tc.payload {
				t.Fatalf("payload = %d bytes, want %d", len(f.Payload), tc.payload)
			}
			// Every accepted frame must re-encode.
			if err := writeV2Frame(io.Discard, f); err != nil {
				t.Fatalf("re-encoding accepted frame: %v", err)
			}
		})
	}

	// End to end: an untraced frame one byte over MaxFrame fits inside
	// readV2Frame's length prefilter but must still be rejected.
	body := build(false, MaxFrame+1)
	var wire bytes.Buffer
	binary.Write(&wire, binary.BigEndian, uint32(len(body)))
	wire.Write(body)
	if _, err := readV2Frame(&wire); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("readV2Frame err = %v, want ErrFrameTooLarge", err)
	}
}
