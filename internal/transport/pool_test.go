package transport_test

import (
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"globedoc/internal/clock"
	"globedoc/internal/transport"
)

// countingDial wraps a DialFunc and counts how many connections it made.
type countingDial struct {
	dial  transport.DialFunc
	count atomic.Int64
}

func (d *countingDial) fn() transport.DialFunc {
	return func() (net.Conn, error) {
		d.count.Add(1)
		return d.dial()
	}
}

// parkingServer starts a server whose "park" handler signals arrival on
// the returned channel and then blocks until release is closed — the
// deterministic replacement for sleep-and-poll synchronisation.
func parkingServer(t *testing.T, release <-chan struct{}) (transport.DialFunc, <-chan struct{}) {
	t.Helper()
	arrived := make(chan struct{}, 64)
	dial := startServer(t, func(s *transport.Server) {
		s.Handle("park", func(body []byte) ([]byte, error) {
			arrived <- struct{}{}
			<-release
			return nil, nil
		})
		s.Handle("ping", func(body []byte) ([]byte, error) { return []byte("pong"), nil })
	})
	return dial, arrived
}

func TestPoolReusesIdleConnection(t *testing.T) {
	dial := startServer(t, func(s *transport.Server) {
		s.Handle("ping", func(body []byte) ([]byte, error) { return nil, nil })
	})
	cd := &countingDial{dial: dial}
	c := transport.NewClient(cd.fn())
	defer c.Close()

	for i := 0; i < 10; i++ {
		if _, err := c.Call(context.Background(), "ping", nil); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if got := cd.count.Load(); got != 1 {
		t.Errorf("sequential calls dialed %d connections, want 1 (pooled reuse)", got)
	}
	if idle := c.IdleConns(); idle != 1 {
		t.Errorf("IdleConns = %d, want 1", idle)
	}
	if inUse := c.ConnsInUse(); inUse != 0 {
		t.Errorf("ConnsInUse = %d after all calls returned, want 0", inUse)
	}
}

func TestPoolBoundsConcurrentConnections(t *testing.T) {
	// Handlers park until released so all in-flight calls overlap; the
	// pool must never open more than MaxConns connections. Pinned to v1
	// (one call per conn) — the v2 stream budget has its own bounds
	// test in mux_test.go.
	release := make(chan struct{})
	dial, arrived := parkingServer(t, release)
	cd := &countingDial{dial: dial}
	c := transport.NewClient(cd.fn())
	c.Pool = transport.PoolConfig{MaxConns: 3}
	c.Version = transport.V1
	defer c.Close()

	const calls = 12
	var wg sync.WaitGroup
	errs := make([]error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Call(context.Background(), "park", nil)
		}(i)
	}
	// Let the first wave occupy every slot, then drain.
	for i := 0; i < 3; i++ {
		<-arrived
	}
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if got := cd.count.Load(); got > 3 {
		t.Errorf("%d concurrent calls dialed %d connections, want <= MaxConns=3", calls, got)
	}
}

func TestPoolIdleTimeoutReapsStaleConns(t *testing.T) {
	dial := startServer(t, func(s *transport.Server) {
		s.Handle("ping", func(body []byte) ([]byte, error) { return nil, nil })
	})
	cd := &countingDial{dial: dial}
	clk := clock.NewFake(time.Unix(1_000_000, 0))
	c := transport.NewClient(cd.fn())
	c.Pool = transport.PoolConfig{IdleTimeout: 10 * time.Millisecond}
	c.Clock = clk
	defer c.Close()

	if _, err := c.Call(context.Background(), "ping", nil); err != nil {
		t.Fatal(err)
	}
	clk.Advance(30 * time.Millisecond)
	if _, err := c.Call(context.Background(), "ping", nil); err != nil {
		t.Fatal(err)
	}
	if got := cd.count.Load(); got != 2 {
		t.Errorf("dialed %d connections, want 2 (stale idle conn reaped, fresh dial)", got)
	}
}

func TestPoolNegativeMaxIdleDisablesPooling(t *testing.T) {
	dial := startServer(t, func(s *transport.Server) {
		s.Handle("ping", func(body []byte) ([]byte, error) { return nil, nil })
	})
	cd := &countingDial{dial: dial}
	c := transport.NewClient(cd.fn())
	c.Pool = transport.PoolConfig{MaxIdle: -1}
	defer c.Close()

	for i := 0; i < 3; i++ {
		if _, err := c.Call(context.Background(), "ping", nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := cd.count.Load(); got != 3 {
		t.Errorf("dialed %d connections with MaxIdle=-1, want 3 (no pooling)", got)
	}
	if idle := c.IdleConns(); idle != 0 {
		t.Errorf("IdleConns = %d, want 0", idle)
	}
}

func TestPoolSlotWaitCancelledByContext(t *testing.T) {
	// v1 semantics: one call per conn, so with MaxConns=1 a second call
	// waits for the slot and must honour ctx while waiting. (A v2
	// client would multiplex the second call onto the same conn; the
	// stream-saturation wait has its own test in mux_test.go.)
	release := make(chan struct{})
	defer close(release)
	dial, arrived := parkingServer(t, release)
	c := transport.NewClient(dial)
	c.Pool = transport.PoolConfig{MaxConns: 1}
	c.Version = transport.V1
	defer c.Close()

	go func() {
		_, _ = c.Call(context.Background(), "park", nil)
	}()
	<-arrived // the parked call owns the only slot

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := c.Call(ctx, "park", nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded while waiting for a slot", err)
	}
}

func TestCallContextCancelInFlight(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	dial, arrived := parkingServer(t, release)
	c := transport.NewClient(dial)
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(ctx, "park", nil)
		done <- err
	}()
	<-arrived // the request reached the handler; cancel it in flight
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled call never returned")
	}
}

func TestCloseWhileInFlightDoesNotLeakConns(t *testing.T) {
	release := make(chan struct{})
	dial, arrived := parkingServer(t, release)
	c := transport.NewClient(dial)
	defer c.Close()

	done := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), "park", nil)
		done <- err
	}()
	<-arrived // the call is in flight on its conn
	c.Close()
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("in-flight call after Close: %v", err)
	}
	// The in-flight conn must have been closed on return, not pooled.
	if idle := c.IdleConns(); idle != 0 {
		t.Errorf("IdleConns = %d after Close raced an in-flight call, want 0", idle)
	}
}

func TestPoolConnNotPoisonedAfterContextTimeout(t *testing.T) {
	// A v1 call that times out poisons its connection (discarded); the
	// next call must succeed on a fresh conn, and a successful call
	// must not leave a stale deadline armed on the pooled conn.
	slow := make(chan struct{})
	dial := startServer(t, func(s *transport.Server) {
		s.Handle("slow", func(body []byte) ([]byte, error) {
			<-slow
			return []byte("late"), nil
		})
		s.Handle("ping", func(body []byte) ([]byte, error) { return []byte("pong"), nil })
	})
	c := transport.NewClient(dial)
	c.Version = transport.V1 // v1 arms real conn deadlines; v2 streams never touch read deadlines
	defer c.Close()
	defer close(slow)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := c.Call(ctx, "slow", nil); err == nil {
		t.Fatal("slow call under a 30ms ctx succeeded")
	}
	// Fresh conn: fast call works.
	if _, err := c.Call(context.Background(), "ping", nil); err != nil {
		t.Fatalf("call after timeout: %v", err)
	}
	// Reused pooled conn: still healthy long after the earlier deadline.
	// This wait must be real time — conn deadlines live in the kernel's
	// clock, not the injectable one — and only needs to outlast the
	// 30ms deadline armed above, so it cannot flake, only detect.
	time.Sleep(50 * time.Millisecond)
	if _, err := c.Call(context.Background(), "ping", nil); err != nil {
		t.Fatalf("reused-conn call: %v", err)
	}
}
