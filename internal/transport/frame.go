package transport

// Transport v2: negotiated, stream-multiplexed framing.
//
// A v2 connection opens with a 4-byte client preamble — the 3-byte magic
// "GD\xF2" followed by the highest version the client speaks — answered
// by a server accept of the same shape carrying the agreed version
// (never above the proposal). After agreement, every frame is
//
//	uint32 length | type byte | flags byte | uint32 streamID | payload
//
// where length covers everything after itself. Requests and responses
// from many concurrent calls interleave on one connection, matched by
// stream ID; responses may arrive in any order. The flags byte is a bit
// set: bit 0x01 marks a trace-context extension (17 bytes — trace ID,
// parent span ID, trace flags) between the frame header and the
// payload; all other bits are reserved and must be zero.
//
// The magic's first byte (0x47) makes the preamble, read as a v1 length
// header, decode to ~1.2 GiB — far above MaxFrame — so a pre-negotiation
// v1 server deterministically rejects it and hangs up instead of
// stalling. The client's fallback path keys on exactly that hangup.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"

	"globedoc/internal/telemetry"
)

// Protocol versions. V1 is the original length-prefixed one-call-per-
// connection protocol; V2 adds the negotiated preamble and stream-
// multiplexed frames.
const (
	V1 byte = 1
	V2 byte = 2
	// MaxSupportedVersion is the highest version this build speaks.
	MaxSupportedVersion = V2
)

// Protocol-violation errors. ErrProtocol marks malformed v2 traffic (a
// peer breaking framing rules); ErrVersionMismatch means negotiation
// concluded the peer cannot speak a version the caller requires.
var (
	ErrProtocol        = errors.New("transport: protocol violation")
	ErrVersionMismatch = errors.New("transport: peer cannot speak required protocol version")
)

// preambleLen is the size of both the client preamble and the server
// accept: 3 magic bytes plus a version byte.
const preambleLen = 4

var preambleMagic = [3]byte{'G', 'D', 0xF2}

// clientPreamble encodes the version-negotiation opener proposing
// version v. The server accept has the same layout, so it doubles as
// the accept encoder.
func clientPreamble(v byte) []byte {
	return []byte{preambleMagic[0], preambleMagic[1], preambleMagic[2], v}
}

// parsePreamble reports whether b is a well-formed negotiation preamble
// (or accept) and extracts its version byte. A version of zero is not a
// valid proposal, so such bytes fall through to v1 framing.
func parsePreamble(b []byte) (version byte, ok bool) {
	if len(b) != preambleLen {
		return 0, false
	}
	if b[0] != preambleMagic[0] || b[1] != preambleMagic[1] || b[2] != preambleMagic[2] {
		return 0, false
	}
	if b[3] < V1 {
		return 0, false
	}
	return b[3], true
}

// parseAccept validates a server accept against the client's proposal:
// it must be a well-formed preamble whose version does not exceed what
// the client offered.
func parseAccept(b []byte, proposed byte) (byte, error) {
	v, ok := parsePreamble(b)
	if !ok {
		return 0, fmt.Errorf("%w: malformed negotiation accept % x", ErrProtocol, b)
	}
	if v > proposed {
		return 0, fmt.Errorf("%w: server accepted version %d above proposal %d", ErrProtocol, v, proposed)
	}
	return v, nil
}

// versionLabel renders a version byte as a telemetry label.
func versionLabel(v byte) string {
	switch v {
	case V1:
		return "v1"
	case V2:
		return "v2"
	}
	return strconv.Itoa(int(v))
}

// v2 frame types. Anything else is a protocol violation and drops the
// connection.
const (
	frameRequest  byte = 1
	frameResponse byte = 2
)

// v2FrameOverhead is the fixed header inside a v2 frame's length-
// delimited body: type, flags and stream ID.
const v2FrameOverhead = 6

// v2 frame flag bits. flagTrace marks the trace-context extension;
// every other bit is reserved and rejected.
const (
	flagTrace        byte = 0x01
	knownFlags            = flagTrace
	traceExtLen           = 17 // trace ID u64 | parent span ID u64 | trace flags byte
	traceFlagSampled      = 0x01
)

// v2Frame is one parsed multiplexed frame.
type v2Frame struct {
	Type     byte
	Flags    byte
	StreamID uint32
	Payload  []byte
	// Trace is the propagated span context when the frame carried the
	// flagTrace extension (requests only; the zero value means untraced).
	Trace telemetry.SpanContext
}

// appendTraceExt encodes sc as the 17-byte trace-context extension.
func appendTraceExt(buf []byte, sc telemetry.SpanContext) []byte {
	var ext [traceExtLen]byte
	binary.BigEndian.PutUint64(ext[0:8], sc.TraceID)
	binary.BigEndian.PutUint64(ext[8:16], sc.SpanID)
	if sc.Sampled {
		ext[16] = traceFlagSampled
	}
	return append(buf, ext[:]...)
}

// parseTraceExt decodes the 17-byte trace-context extension.
func parseTraceExt(ext []byte) telemetry.SpanContext {
	return telemetry.SpanContext{
		TraceID: binary.BigEndian.Uint64(ext[0:8]),
		SpanID:  binary.BigEndian.Uint64(ext[8:16]),
		Sampled: ext[16]&traceFlagSampled != 0,
	}
}

// writeV2Frame sends one v2 frame with a single Write call, so the
// network simulator charges one latency per frame. A valid f.Trace is
// written as the trace-context extension with flagTrace set.
func writeV2Frame(w io.Writer, f v2Frame) error {
	if len(f.Payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	ext := 0
	if f.Trace.Valid() {
		f.Flags |= flagTrace
		ext = traceExtLen
	}
	buf := make([]byte, 0, 4+v2FrameOverhead+ext+len(f.Payload))
	buf = binary.BigEndian.AppendUint32(buf, uint32(v2FrameOverhead+ext+len(f.Payload)))
	buf = append(buf, f.Type, f.Flags)
	buf = binary.BigEndian.AppendUint32(buf, f.StreamID)
	if ext > 0 {
		buf = appendTraceExt(buf, f.Trace)
	}
	buf = append(buf, f.Payload...)
	_, err := w.Write(buf)
	return err
}

// readV2Frame receives and validates one v2 frame.
func readV2Frame(r io.Reader) (v2Frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return v2Frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame+v2FrameOverhead+traceExtLen {
		return v2Frame{}, ErrFrameTooLarge
	}
	if n < v2FrameOverhead {
		return v2Frame{}, fmt.Errorf("%w: v2 frame length %d below header size", ErrProtocol, n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return v2Frame{}, err
	}
	return parseV2Frame(body)
}

// parseV2Frame decodes a frame body (everything after the length
// prefix), enforcing the framing invariants an untrusted peer might
// break: known type, known flag bits only, complete header, a
// complete, canonical trace extension when flagged (reserved trace
// flag bits must be zero), and a payload within MaxFrame after the
// extension is stripped — the readV2Frame length prefilter budgets for
// the extension whether or not the frame carries one, so the exact
// bound is enforced here. Together these make decode∘encode the
// identity on every accepted frame.
func parseV2Frame(body []byte) (v2Frame, error) {
	if len(body) < v2FrameOverhead {
		return v2Frame{}, fmt.Errorf("%w: truncated v2 frame header (%d bytes)", ErrProtocol, len(body))
	}
	f := v2Frame{
		Type:     body[0],
		Flags:    body[1],
		StreamID: binary.BigEndian.Uint32(body[2:6]),
		Payload:  body[6:],
	}
	if f.Type != frameRequest && f.Type != frameResponse {
		return v2Frame{}, fmt.Errorf("%w: unknown v2 frame type 0x%02x", ErrProtocol, f.Type)
	}
	if f.Flags&^knownFlags != 0 {
		return v2Frame{}, fmt.Errorf("%w: reserved v2 flag bits 0x%02x set", ErrProtocol, f.Flags&^knownFlags)
	}
	if f.Flags&flagTrace != 0 {
		if len(f.Payload) < traceExtLen {
			return v2Frame{}, fmt.Errorf("%w: truncated trace-context extension (%d bytes)", ErrProtocol, len(f.Payload))
		}
		if tf := f.Payload[traceExtLen-1]; tf&^traceFlagSampled != 0 {
			return v2Frame{}, fmt.Errorf("%w: reserved trace flag bits 0x%02x set", ErrProtocol, tf&^traceFlagSampled)
		}
		f.Trace = parseTraceExt(f.Payload[:traceExtLen])
		f.Payload = f.Payload[traceExtLen:]
		if !f.Trace.Valid() {
			return v2Frame{}, fmt.Errorf("%w: trace-context extension with zero trace or span ID", ErrProtocol)
		}
	}
	if len(f.Payload) > MaxFrame {
		return v2Frame{}, ErrFrameTooLarge
	}
	return f, nil
}
